#include "src/core/two_level_cache.h"

#include <gtest/gtest.h>

namespace tpftl {
namespace {

TwoLevelCacheOptions Opts(uint64_t budget, uint64_t entries_per_page = 128) {
  TwoLevelCacheOptions o;
  o.budget_bytes = budget;
  o.entry_bytes = 6;
  o.node_overhead_bytes = 16;
  o.entries_per_page = entries_per_page;
  return o;
}

TEST(TwoLevelCacheTest, EmptyCache) {
  TwoLevelCache cache(Opts(1024));
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.node_count(), 0u);
  EXPECT_EQ(cache.bytes_used(), 0u);
  EXPECT_FALSE(cache.Lookup(5).has_value());
  EXPECT_FALSE(cache.PickVictim(true).has_value());
}

TEST(TwoLevelCacheTest, InsertAndLookup) {
  TwoLevelCache cache(Opts(1024));
  EXPECT_TRUE(cache.Insert(5, 500, false));  // New TP node.
  EXPECT_EQ(cache.Lookup(5), 500u);
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.node_count(), 1u);
}

TEST(TwoLevelCacheTest, EntriesClusterIntoTpNodes) {
  TwoLevelCache cache(Opts(4096, 128));
  // Slots 0..3 of page 0 and slot 0 of page 1.
  EXPECT_TRUE(cache.Insert(0, 10, false));
  EXPECT_FALSE(cache.Insert(1, 11, false));  // Same node — no new node.
  EXPECT_FALSE(cache.Insert(2, 12, false));
  EXPECT_TRUE(cache.Insert(128, 20, false));  // Different translation page.
  EXPECT_EQ(cache.node_count(), 2u);
  EXPECT_EQ(cache.entry_count(), 4u);
}

TEST(TwoLevelCacheTest, ByteAccounting) {
  TwoLevelCache cache(Opts(4096, 128));
  cache.Insert(0, 1, false);
  EXPECT_EQ(cache.bytes_used(), 16u + 6u);  // Node overhead + entry.
  cache.Insert(1, 2, false);
  EXPECT_EQ(cache.bytes_used(), 16u + 12u);
  cache.Insert(128, 3, false);
  EXPECT_EQ(cache.bytes_used(), 32u + 18u);
  cache.Evict(0, 0);
  EXPECT_EQ(cache.bytes_used(), 32u + 12u);
  cache.Evict(0, 1);  // Node 0 now empty — overhead released.
  EXPECT_EQ(cache.bytes_used(), 16u + 6u);
}

TEST(TwoLevelCacheTest, CostOfInsertAccountsForNewNode) {
  TwoLevelCache cache(Opts(4096, 128));
  EXPECT_EQ(cache.CostOfInsert(0), 22u);  // 16 + 6 for a fresh node.
  cache.Insert(0, 1, false);
  EXPECT_EQ(cache.CostOfInsert(1), 6u);    // Existing node.
  EXPECT_EQ(cache.CostOfInsert(128), 22u);
}

TEST(TwoLevelCacheTest, UpdateChangesValueAndDirtyBit) {
  TwoLevelCache cache(Opts(1024));
  cache.Insert(7, 70, false);
  EXPECT_TRUE(cache.Update(7, 71, true));
  EXPECT_EQ(cache.Peek(7), 71u);
  EXPECT_EQ(cache.dirty_entry_count(), 1u);
  EXPECT_EQ(cache.DirtyCountOf(0), 1u);
  EXPECT_FALSE(cache.Update(8, 80, true));  // Absent.
}

TEST(TwoLevelCacheTest, PeekHasNoSideEffects) {
  TwoLevelCache cache(Opts(1024, 128));
  cache.Insert(0, 10, false);
  cache.Insert(1, 11, false);
  // Entry 0 is LRU within the node; Peek must not refresh it.
  const auto victim_before = cache.PickVictim(false);
  cache.Peek(0);
  const auto victim_after = cache.PickVictim(false);
  ASSERT_TRUE(victim_before && victim_after);
  EXPECT_EQ(victim_before->lpn, victim_after->lpn);
}

TEST(TwoLevelCacheTest, VictimIsLruEntryOfColdestNode) {
  TwoLevelCache cache(Opts(4096, 128));
  cache.Insert(0, 10, false);    // Node 0.
  cache.Insert(128, 20, false);  // Node 1.
  cache.Insert(129, 21, false);
  // Heat node 0 with repeated lookups; node 1 stays cold.
  for (int i = 0; i < 10; ++i) {
    cache.Lookup(0);
  }
  const auto victim = cache.PickVictim(false);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->vtpn, 1u);
  EXPECT_EQ(victim->lpn, 128u);  // LRU entry within node 1.
}

TEST(TwoLevelCacheTest, CleanFirstSkipsDirtyEntries) {
  TwoLevelCache cache(Opts(4096, 128));
  cache.Insert(0, 10, true);   // Dirty, LRU-most.
  cache.Insert(1, 11, false);  // Clean.
  cache.Insert(2, 12, true);   // Dirty, MRU.
  const auto clean_first = cache.PickVictim(true);
  ASSERT_TRUE(clean_first.has_value());
  EXPECT_EQ(clean_first->lpn, 1u);
  EXPECT_FALSE(clean_first->dirty);
  // Without clean-first the plain LRU entry is chosen even though dirty.
  const auto plain = cache.PickVictim(false);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->lpn, 0u);
  EXPECT_TRUE(plain->dirty);
}

TEST(TwoLevelCacheTest, CleanFirstFallsBackToDirtyLru) {
  TwoLevelCache cache(Opts(4096, 128));
  cache.Insert(0, 10, true);
  cache.Insert(1, 11, true);
  const auto victim = cache.PickVictim(true);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->lpn, 0u);
  EXPECT_TRUE(victim->dirty);
}

TEST(TwoLevelCacheTest, EvictRemovesEmptyNode) {
  TwoLevelCache cache(Opts(4096, 128));
  cache.Insert(0, 10, false);
  cache.Insert(1, 11, false);
  EXPECT_FALSE(cache.Evict(0, 0));  // Node survives.
  EXPECT_TRUE(cache.Evict(0, 1));   // Node vanishes.
  EXPECT_EQ(cache.node_count(), 0u);
  EXPECT_FALSE(cache.NodeCached(0));
}

TEST(TwoLevelCacheTest, DirtyEntriesOfReturnsMappingUpdates) {
  TwoLevelCache cache(Opts(4096, 128));
  cache.Insert(128 + 3, 33, true);
  cache.Insert(128 + 4, 44, false);
  cache.Insert(128 + 5, 55, true);
  const auto updates = cache.DirtyEntriesOf(1);
  ASSERT_EQ(updates.size(), 2u);
  uint64_t lpns = 0;
  for (const auto& u : updates) {
    lpns += u.lpn;
    EXPECT_TRUE(u.lpn == 131 || u.lpn == 133);
  }
  EXPECT_EQ(lpns, 131u + 133u);
  EXPECT_TRUE(cache.DirtyEntriesOf(7).empty());
}

TEST(TwoLevelCacheTest, MarkAllCleanResetsDirtyBits) {
  TwoLevelCache cache(Opts(4096, 128));
  cache.Insert(3, 33, true);
  cache.Insert(4, 44, true);
  cache.Insert(5, 55, false);
  EXPECT_EQ(cache.MarkAllClean(0), 2u);
  EXPECT_EQ(cache.dirty_entry_count(), 0u);
  EXPECT_EQ(cache.DirtyCountOf(0), 0u);
  EXPECT_TRUE(cache.DirtyEntriesOf(0).empty());
  EXPECT_EQ(cache.MarkAllClean(0), 0u);
}

TEST(TwoLevelCacheTest, CachedPredecessorsCountsConsecutiveRun) {
  TwoLevelCache cache(Opts(4096, 128));
  cache.Insert(10, 1, false);
  cache.Insert(11, 1, false);
  cache.Insert(12, 1, false);
  EXPECT_EQ(cache.CachedPredecessors(13), 3u);
  EXPECT_EQ(cache.CachedPredecessors(12), 2u);
  EXPECT_EQ(cache.CachedPredecessors(10), 0u);
  EXPECT_EQ(cache.CachedPredecessors(50), 0u);
  // A hole breaks the run.
  cache.Insert(15, 1, false);
  EXPECT_EQ(cache.CachedPredecessors(16), 1u);
}

TEST(TwoLevelCacheTest, CachedPredecessorsStopAtPageBoundary) {
  TwoLevelCache cache(Opts(4096, 128));
  cache.Insert(127, 1, false);  // Last slot of page 0.
  cache.Insert(128, 1, false);  // First slot of page 1.
  // Slot 0 of page 1 has no in-page predecessor.
  EXPECT_EQ(cache.CachedPredecessors(129), 1u);
  EXPECT_EQ(cache.CachedPredecessors(128), 0u);
}

TEST(TwoLevelCacheTest, PageHotnessAverageOrdersNodes) {
  TwoLevelCache cache(Opts(8192, 128));
  // Node 0: one hot entry + three stale ones → mediocre average.
  cache.Insert(0, 1, false);
  cache.Insert(1, 1, false);
  cache.Insert(2, 1, false);
  cache.Insert(3, 1, false);
  // Node 1: two recently touched entries → high average.
  cache.Insert(128, 1, false);
  cache.Insert(129, 1, false);
  cache.Lookup(3);  // Node 0's MRU entry is the hottest single entry...
  cache.Lookup(128);
  cache.Lookup(129);
  // ...but node 0's *average* is dragged down by the stale entries, so it is
  // the coldest node and supplies the victim (§4.2).
  const auto victim = cache.PickVictim(false);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->vtpn, 0u);
}

TEST(TwoLevelCacheTest, ForEachNodeReportsOccupancy) {
  TwoLevelCache cache(Opts(4096, 128));
  cache.Insert(0, 1, true);
  cache.Insert(1, 1, false);
  cache.Insert(128, 1, true);
  uint64_t nodes = 0;
  uint64_t entries = 0;
  uint64_t dirty = 0;
  cache.ForEachNode([&](Vtpn, uint64_t e, uint64_t d) {
    ++nodes;
    entries += e;
    dirty += d;
  });
  EXPECT_EQ(nodes, 2u);
  EXPECT_EQ(entries, 3u);
  EXPECT_EQ(dirty, 2u);
}

TEST(TwoLevelCacheTest, HasSpaceForRespectsBudget) {
  TwoLevelCache cache(Opts(16 + 6 * 2, 128));  // Room for one node + 2 entries.
  EXPECT_TRUE(cache.HasSpaceFor(0));
  cache.Insert(0, 1, false);
  EXPECT_TRUE(cache.HasSpaceFor(1));
  cache.Insert(1, 1, false);
  EXPECT_FALSE(cache.HasSpaceFor(2));
  EXPECT_FALSE(cache.HasSpaceFor(128));  // Needs a new node: even bigger.
}

TEST(TwoLevelCacheDeathTest, DoubleInsertAborts) {
  TwoLevelCache cache(Opts(1024));
  cache.Insert(5, 1, false);
  EXPECT_DEATH(cache.Insert(5, 2, false), "already-cached");
}

TEST(TwoLevelCacheDeathTest, EvictAbsentEntryAborts) {
  TwoLevelCache cache(Opts(1024));
  cache.Insert(5, 1, false);
  EXPECT_DEATH(cache.Evict(0, 9), "non-cached");
  EXPECT_DEATH(cache.Evict(3, 0), "non-cached");
}

TEST(TwoLevelCacheTest, StressOrderInvariant) {
  // Randomized churn: the victim must always come from the node whose
  // average hotness is minimal.
  TwoLevelCache cache(Opts(4096, 16));
  uint64_t seed = 12345;
  auto next = [&seed]() {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return seed >> 33;
  };
  for (int i = 0; i < 5000; ++i) {
    const Lpn lpn = next() % 256;
    if (cache.Contains(lpn)) {
      cache.Lookup(lpn);
    } else {
      while (!cache.HasSpaceFor(lpn)) {
        const auto victim = cache.PickVictim(false);
        ASSERT_TRUE(victim.has_value());
        cache.Evict(victim->vtpn, victim->slot);
      }
      cache.Insert(lpn, next(), next() % 2 == 0);
    }
  }
  EXPECT_LE(cache.bytes_used(), cache.budget_bytes());
  EXPECT_GT(cache.entry_count(), 0u);
}

}  // namespace
}  // namespace tpftl
