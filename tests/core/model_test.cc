#include "src/core/model.h"

#include <gtest/gtest.h>

namespace tpftl {
namespace {

ModelParams PaperParams() {
  ModelParams p;
  p.hr = 0.8;
  p.prd = 0.5;
  p.rw = 0.8;
  p.hgcr = 0.5;
  p.vd = 16.0;
  p.vt = 16.0;
  p.np = 64.0;
  p.tfr = 25.0;
  p.tfw = 200.0;
  p.tfe = 1500.0;
  return p;
}

TEST(ModelTest, Eq1PerfectCacheCostsNothing) {
  ModelParams p = PaperParams();
  p.hr = 1.0;
  EXPECT_DOUBLE_EQ(ModelTranslationTime(p), 0.0);
}

TEST(ModelTest, Eq1MissOnlyCostsOneRead) {
  ModelParams p = PaperParams();
  p.hr = 0.0;
  p.prd = 0.0;
  EXPECT_DOUBLE_EQ(ModelTranslationTime(p), p.tfr);
}

TEST(ModelTest, Eq1FullFormula) {
  ModelParams p = PaperParams();
  // (1 - 0.8) * [25 + 0.5 * 225] = 0.2 * 137.5 = 27.5.
  EXPECT_DOUBLE_EQ(ModelTranslationTime(p), 27.5);
}

TEST(ModelTest, Eq1MonotoneInHrAndPrd) {
  ModelParams p = PaperParams();
  const double base = ModelTranslationTime(p);
  p.hr = 0.9;
  EXPECT_LT(ModelTranslationTime(p), base);
  p = PaperParams();
  p.prd = 0.9;
  EXPECT_GT(ModelTranslationTime(p), base);
}

TEST(ModelTest, Eq7GcCount) {
  ModelParams p = PaperParams();
  // Ngcd = Npa * Rw / (Np - Vd) = 1000 * 0.8 / 48.
  EXPECT_DOUBLE_EQ(ModelGcDataCount(p, 1000.0), 800.0 / 48.0);
}

TEST(ModelTest, Eq8TranslationWrites) {
  ModelParams p = PaperParams();
  EXPECT_DOUBLE_EQ(ModelTranslationWrites(p, 1000.0), 0.2 * 0.5 * 1000.0);
}

TEST(ModelTest, Eq10GcDataTime) {
  ModelParams p = PaperParams();
  // Rw * [Vd * (2 - Hgcr) * (Tfr + Tfw) + Tfe] / (Np - Vd)
  const double expected = 0.8 * (16.0 * 1.5 * 225.0 + 1500.0) / 48.0;
  EXPECT_DOUBLE_EQ(ModelGcDataTime(p), expected);
}

TEST(ModelTest, Eq11GcTranslationTime) {
  ModelParams p = PaperParams();
  const double rate = 0.2 * 0.5 + 0.8 * 16.0 * 0.5 / 48.0;
  const double expected = rate * (16.0 * 225.0 + 1500.0) / 48.0;
  EXPECT_DOUBLE_EQ(ModelGcTranslationTime(p), expected);
}

TEST(ModelTest, Eq13WriteAmplification) {
  ModelParams p = PaperParams();
  const double expected =
      1.0 + 0.2 * 0.5 * 64.0 / (48.0 * 0.8) + (1.0 + 0.5 * 64.0 / 48.0) * 16.0 / 48.0;
  EXPECT_DOUBLE_EQ(ModelWriteAmplification(p), expected);
}

TEST(ModelTest, Eq13IdealFtlHasGcOnlyAmplification) {
  ModelParams p = PaperParams();
  p.hr = 1.0;
  p.prd = 0.0;
  p.hgcr = 1.0;
  // Only valid-page relocation remains: 1 + Vd / (Np - Vd).
  EXPECT_DOUBLE_EQ(ModelWriteAmplification(p), 1.0 + 16.0 / 48.0);
}

TEST(ModelTest, Eq13NoGarbageNoAmplification) {
  ModelParams p = PaperParams();
  p.hr = 1.0;
  p.prd = 0.0;
  p.vd = 0.0;
  p.vt = 0.0;
  p.hgcr = 1.0;
  EXPECT_DOUBLE_EQ(ModelWriteAmplification(p), 1.0);
}

TEST(ModelTest, Eq13ReadOnlyGuard) {
  ModelParams p = PaperParams();
  p.rw = 0.0;
  EXPECT_DOUBLE_EQ(ModelWriteAmplification(p), 1.0);
}

TEST(ModelTest, FromStatsExtractsSymbols) {
  AtStats s;
  s.lookups = 100;
  s.hits = 80;
  s.misses = 20;
  s.evictions = 10;
  s.dirty_evictions = 5;
  s.host_page_reads = 20;
  s.host_page_writes = 80;
  s.gc_hits = 3;
  s.gc_misses = 1;
  s.gc_data_blocks = 2;
  s.gc_data_migrations = 32;
  s.gc_trans_blocks = 1;
  s.gc_trans_migrations = 8;
  FlashGeometry g;
  const ModelParams p = ModelParams::FromStats(s, g);
  EXPECT_DOUBLE_EQ(p.hr, 0.8);
  EXPECT_DOUBLE_EQ(p.prd, 0.5);
  EXPECT_DOUBLE_EQ(p.rw, 0.8);
  EXPECT_DOUBLE_EQ(p.hgcr, 0.75);
  EXPECT_DOUBLE_EQ(p.vd, 16.0);
  EXPECT_DOUBLE_EQ(p.vt, 8.0);
  EXPECT_DOUBLE_EQ(p.np, 64.0);
}

TEST(ModelTest, AtStatsDerivedMetrics) {
  AtStats s;
  s.lookups = 10;
  s.hits = 7;
  s.evictions = 4;
  s.dirty_evictions = 1;
  s.host_page_writes = 100;
  s.trans_writes_at = 10;
  s.trans_writes_gc = 5;
  s.gc_data_migrations = 35;
  EXPECT_DOUBLE_EQ(s.hit_ratio(), 0.7);
  EXPECT_DOUBLE_EQ(s.dirty_replacement_probability(), 0.25);
  EXPECT_DOUBLE_EQ(s.write_amplification(), 1.5);
}

}  // namespace
}  // namespace tpftl
