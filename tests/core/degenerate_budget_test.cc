// Degenerate mapping-cache budgets (PR 2 left these CHECK-failing): a TPFTL
// whose entry budget cannot hold even one TP node + entry must degrade to an
// uncached write-through FTL instead of dying — every Translate pays the
// flash read, every CommitMapping rewrites the translation page immediately
// — and stay exactly consistent with a shadow map throughout.

#include <unordered_map>

#include <gtest/gtest.h>

#include "src/core/tpftl.h"
#include "src/util/rng.h"
#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::MakeWorld;
using testing::World;

// Drives random reads/writes/trims against a shadow map, verifying Probe()
// after every operation. Exercises GC (write churn over a small device).
void DriveAndVerify(Tpftl& ftl, uint64_t logical_pages, uint64_t ops, uint64_t seed) {
  Rng rng(seed);
  std::unordered_map<Lpn, bool> written;
  for (uint64_t i = 0; i < ops; ++i) {
    const Lpn lpn = rng.Below(logical_pages);
    const uint64_t dice = rng.Below(100);
    if (dice < 60) {
      ftl.WritePage(lpn);
      written[lpn] = true;
    } else if (dice < 90) {
      ftl.ReadPage(lpn);
    } else {
      ftl.TrimPage(lpn);
      written[lpn] = false;
    }
    const auto it = written.find(lpn);
    const bool mapped = it != written.end() && it->second;
    ASSERT_EQ(ftl.Probe(lpn) != kInvalidPpn, mapped) << "lpn " << lpn << " after op " << i;
  }
  for (const auto& [lpn, mapped] : written) {
    ASSERT_EQ(ftl.Probe(lpn) != kInvalidPpn, mapped) << "lpn " << lpn;
  }
}

// Entry budget = cache_bytes - GTD bytes. MakeWorld's 1024 logical pages and
// 128-entry translation pages give an 8-page GTD = 32 bytes.
uint64_t CacheBytesForEntryBudget(const World& w, uint64_t entry_budget) {
  const uint64_t translation_pages =
      (w.env.logical_pages + w.geometry.entries_per_translation_page() - 1) /
      w.geometry.entries_per_translation_page();
  return translation_pages * 4 + entry_budget;
}

TEST(DegenerateBudgetTest, ZeroEntryBudgetRunsUncached) {
  World w = MakeWorld();
  w.env.cache_bytes = CacheBytesForEntryBudget(w, 0);
  Tpftl ftl(w.env);
  DriveAndVerify(ftl, w.env.logical_pages, 4000, 11);
  // Nothing was ever cached: every lookup after the first op missed, and
  // every write rewrote its translation page.
  EXPECT_EQ(ftl.cache_entry_count(), 0u);
  EXPECT_EQ(ftl.cache_bytes_used(), 0u);
  EXPECT_EQ(ftl.stats().hits, 0u);
  EXPECT_GT(ftl.stats().trans_writes_at, 0u);
}

TEST(DegenerateBudgetTest, OneByteBudgetRunsUncached) {
  World w = MakeWorld();
  w.env.cache_bytes = CacheBytesForEntryBudget(w, 1);
  Tpftl ftl(w.env);
  DriveAndVerify(ftl, w.env.logical_pages, 2500, 12);
  EXPECT_EQ(ftl.cache_entry_count(), 0u);
  EXPECT_EQ(ftl.stats().hits, 0u);
}

TEST(DegenerateBudgetTest, ExactlyOneNodeBudgetCachesOneEntry) {
  World w = MakeWorld();
  TpftlOptions options;
  const uint64_t one_node = options.node_overhead_bytes + options.entry_bytes;
  w.env.cache_bytes = CacheBytesForEntryBudget(w, one_node);
  Tpftl ftl(w.env);
  DriveAndVerify(ftl, w.env.logical_pages, 2500, 13);
  // The single slot is used and never exceeded.
  EXPECT_LE(ftl.cache_entry_count(), 1u);
  EXPECT_LE(ftl.cache_bytes_used(), one_node);
  // Back-to-back ops on one LPN hit the single cached entry.
  ftl.WritePage(7);
  const uint64_t hits_before = ftl.stats().hits;
  ftl.ReadPage(7);
  EXPECT_EQ(ftl.stats().hits, hits_before + 1);
  EXPECT_EQ(ftl.cache_entry_count(), 1u);
}

TEST(DegenerateBudgetTest, JustBelowOneNodeRunsUncached) {
  World w = MakeWorld();
  TpftlOptions options;
  w.env.cache_bytes =
      CacheBytesForEntryBudget(w, options.node_overhead_bytes + options.entry_bytes - 1);
  Tpftl ftl(w.env);
  DriveAndVerify(ftl, w.env.logical_pages, 1500, 14);
  EXPECT_EQ(ftl.cache_entry_count(), 0u);
}

}  // namespace
}  // namespace tpftl
