#include "src/core/tpftl.h"

#include <gtest/gtest.h>

#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::MakeWorld;
using testing::World;

TpftlOptions NoTechniques() { return TpftlOptions::FromLabel("--"); }

// GTD 32 B; budget 160 B → one 16 B node + 24 entries, or a few nodes less.
World SmallTpftlWorld(uint64_t cache_bytes = 192) { return MakeWorld(1024, cache_bytes); }

TEST(TpftlOptionsTest, LabelRoundTrip) {
  EXPECT_EQ(TpftlOptions{}.Label(), "rsbc");
  EXPECT_EQ(NoTechniques().Label(), "--");
  for (const std::string label : {"r", "s", "b", "c", "bc", "rs", "rsbc"}) {
    EXPECT_EQ(TpftlOptions::FromLabel(label).Label(), label);
  }
}

TEST(TpftlTest, MissThenHit) {
  World w = SmallTpftlWorld();
  Tpftl ftl(w.env, NoTechniques());
  ftl.ReadPage(0);
  EXPECT_EQ(ftl.stats().misses, 1u);
  EXPECT_EQ(ftl.stats().trans_reads_at, 1u);
  ftl.ReadPage(0);
  EXPECT_EQ(ftl.stats().hits, 1u);
}

TEST(TpftlTest, CompressedEntriesAreSixBytes) {
  World w = SmallTpftlWorld();
  Tpftl ftl(w.env, NoTechniques());
  ftl.ReadPage(0);
  ftl.ReadPage(1);
  EXPECT_EQ(ftl.cache_bytes_used(), 16u + 2 * 6u);
  EXPECT_EQ(ftl.cache().node_count(), 1u);
}

TEST(TpftlTest, BatchUpdateFlushesAllDirtyCoResidents) {
  World w = SmallTpftlWorld(/*cache_bytes=*/32 + 16 + 4 * 6);  // Exactly 4 entries, 1 node.
  TpftlOptions opts = TpftlOptions::FromLabel("b");
  Tpftl ftl(w.env, opts);
  // Four dirty entries on translation page 0 fill the cache.
  for (Lpn lpn = 0; lpn < 4; ++lpn) {
    ftl.WritePage(lpn);
  }
  ASSERT_EQ(ftl.stats().evictions, 0u);
  ASSERT_EQ(ftl.cache().dirty_entry_count(), 4u);
  // Fifth entry (same page) forces a dirty eviction: ONE translation page
  // write cleans all four dirty entries; three stay cached, now clean.
  ftl.ReadPage(10);
  EXPECT_EQ(ftl.stats().dirty_evictions, 1u);
  EXPECT_EQ(ftl.stats().trans_writes_at, 1u);
  EXPECT_EQ(ftl.stats().batch_writebacks, 4u);
  EXPECT_EQ(ftl.cache().dirty_entry_count(), 0u);
  // Persisted table now reflects the flushed mappings.
  for (Lpn lpn = 1; lpn < 4; ++lpn) {
    EXPECT_EQ(ftl.translation_store().Persisted(lpn), ftl.Probe(lpn));
  }
  // The subsequent eviction is of a clean entry — Prd collapses (§4.4).
  ftl.ReadPage(20);
  EXPECT_EQ(ftl.stats().dirty_evictions, 1u);
}

TEST(TpftlTest, WithoutBatchUpdateEveryDirtyEvictionWrites) {
  World w = SmallTpftlWorld(32 + 16 + 4 * 6);
  Tpftl ftl(w.env, NoTechniques());
  for (Lpn lpn = 0; lpn < 4; ++lpn) {
    ftl.WritePage(lpn);
  }
  ftl.ReadPage(10);
  ftl.ReadPage(20);
  // Two evictions, both dirty, each with its own writeback.
  EXPECT_EQ(ftl.stats().dirty_evictions, 2u);
  EXPECT_EQ(ftl.stats().trans_writes_at, 2u);
}

TEST(TpftlTest, CleanFirstEvictsCleanEntriesBeforeDirty) {
  World w = SmallTpftlWorld(32 + 16 + 4 * 6);
  TpftlOptions opts = TpftlOptions::FromLabel("c");
  Tpftl ftl(w.env, opts);
  ftl.WritePage(0);  // Dirty.
  ftl.ReadPage(1);   // Clean.
  ftl.ReadPage(2);   // Clean.
  ftl.ReadPage(3);   // Clean.
  // Two more loads: clean victims are chosen, the dirty entry survives.
  ftl.ReadPage(10);
  ftl.ReadPage(11);
  EXPECT_EQ(ftl.stats().evictions, 2u);
  EXPECT_EQ(ftl.stats().dirty_evictions, 0u);
  EXPECT_EQ(ftl.stats().trans_writes_at, 0u);
  EXPECT_EQ(ftl.cache().dirty_entry_count(), 1u);
}

TEST(TpftlTest, RequestPrefetchTurnsARequestIntoOneMiss) {
  World w = SmallTpftlWorld();
  TpftlOptions opts = TpftlOptions::FromLabel("r");
  Tpftl ftl(w.env, opts);
  // A 6-page request: BeginRequest then per-page accesses, as the SSD does.
  IoRequest req;
  req.offset_bytes = 20 * 512;
  req.size_bytes = 6 * 512;
  req.kind = IoKind::kRead;
  ftl.BeginRequest(req);
  for (Lpn lpn = 20; lpn < 26; ++lpn) {
    ftl.ReadPage(lpn);
  }
  EXPECT_EQ(ftl.stats().misses, 1u);  // §4.3: one request, one miss at most.
  EXPECT_EQ(ftl.stats().hits, 5u);
  EXPECT_EQ(ftl.stats().trans_reads_at, 1u);
}

TEST(TpftlTest, WithoutRequestPrefetchEveryPageMisses) {
  World w = SmallTpftlWorld();
  Tpftl ftl(w.env, NoTechniques());
  IoRequest req;
  req.offset_bytes = 20 * 512;
  req.size_bytes = 6 * 512;
  req.kind = IoKind::kRead;
  ftl.BeginRequest(req);
  for (Lpn lpn = 20; lpn < 26; ++lpn) {
    ftl.ReadPage(lpn);
  }
  EXPECT_EQ(ftl.stats().misses, 6u);
}

TEST(TpftlTest, RequestPrefetchStopsAtTranslationPageBoundary) {
  World w = SmallTpftlWorld();
  TpftlOptions opts = TpftlOptions::FromLabel("r");
  Tpftl ftl(w.env, opts);
  // Request spans LPNs 126..130 across the TP 0 / TP 1 boundary (128).
  IoRequest req;
  req.offset_bytes = 126 * 512;
  req.size_bytes = 5 * 512;
  req.kind = IoKind::kRead;
  ftl.BeginRequest(req);
  for (Lpn lpn = 126; lpn < 131; ++lpn) {
    ftl.ReadPage(lpn);
  }
  // §4.5 rule 1: one miss per translation page touched — exactly two.
  EXPECT_EQ(ftl.stats().misses, 2u);
  EXPECT_EQ(ftl.stats().trans_reads_at, 2u);
}

TEST(TpftlTest, SelectivePrefetchActivatesOnSequentialPhase) {
  World w = SmallTpftlWorld(/*cache_bytes=*/32 + 400);
  TpftlOptions opts = TpftlOptions::FromLabel("s");
  Tpftl ftl(w.env, opts);
  // Populate many TP nodes with random reads, then switch to a sequential
  // sweep: nodes collapse, the counter goes negative, prefetch activates.
  for (Lpn lpn = 0; lpn < 1024; lpn += 130) {
    ftl.ReadPage(lpn);
  }
  for (Lpn lpn = 256; lpn < 380; ++lpn) {
    ftl.ReadPage(lpn);
  }
  EXPECT_TRUE(ftl.prefetcher().active());
  // Once active, a miss with cached predecessors prefetches successors:
  // the next sequential reads mostly hit.
  const uint64_t misses_before = ftl.stats().misses;
  for (Lpn lpn = 380; lpn < 384; ++lpn) {
    ftl.ReadPage(lpn);
  }
  EXPECT_LT(ftl.stats().misses - misses_before, 4u);
}

TEST(TpftlTest, GcMissBatchFlushesCachedDirtyEntries) {
  // Small cache + churn → GC with misses; with 'b' on, a GC-miss rewrite of
  // a cached page also cleans that page's cached dirty entries.
  World w = MakeWorld(1024, /*cache_bytes=*/32 + 300, /*total_blocks=*/84);
  TpftlOptions opts = TpftlOptions::FromLabel("b");
  Tpftl ftl(w.env, opts);
  testing::DriveRandomOps(ftl, 1024, 6000, 0.9, 5);
  EXPECT_GT(ftl.stats().gc_data_blocks, 0u);
  // The invariant: flash write attribution balances.
  const AtStats& s = ftl.stats();
  EXPECT_EQ(w.flash->stats().page_writes,
            s.host_page_writes + s.trans_writes_at + s.trans_writes_gc + s.gc_data_migrations);
}

TEST(TpftlTest, ConsistencyUnderChurnAllConfigs) {
  for (const std::string label : {"--", "r", "s", "b", "c", "bc", "rs", "rsbc"}) {
    World w = MakeWorld(1024, /*cache_bytes=*/32 + 256, /*total_blocks=*/84);
    Tpftl ftl(w.env, TpftlOptions::FromLabel(label));
    auto written = testing::DriveRandomOps(ftl, 1024, 5000, 0.75, 43);
    for (const auto& [lpn, _] : written) {
      const Ppn ppn = ftl.Probe(lpn);
      ASSERT_NE(ppn, kInvalidPpn) << "config " << label << " lpn " << lpn;
      ASSERT_EQ(w.flash->OobTag(ppn), lpn) << "config " << label;
      ASSERT_EQ(w.flash->StateOf(ppn), PageState::kValid) << "config " << label;
    }
  }
}

TEST(TpftlTest, CacheStaysWithinBudget) {
  World w = SmallTpftlWorld();
  Tpftl ftl(w.env, TpftlOptions{});
  testing::DriveRandomOps(ftl, 1024, 4000, 0.6, 47);
  EXPECT_LE(ftl.cache().bytes_used(), ftl.cache().budget_bytes());
}

TEST(TpftlTest, CommitAfterTranslateMarksEntryDirty) {
  World w = SmallTpftlWorld();
  Tpftl ftl(w.env, NoTechniques());
  ftl.WritePage(9);
  EXPECT_EQ(ftl.cache().dirty_entry_count(), 1u);
  EXPECT_EQ(ftl.cache().Peek(9), ftl.Probe(9));
}

TEST(TpftlTest, PrefetchedEntriesAreClean) {
  World w = SmallTpftlWorld();
  TpftlOptions opts = TpftlOptions::FromLabel("r");
  Tpftl ftl(w.env, opts);
  IoRequest req;
  req.offset_bytes = 0;
  req.size_bytes = 4 * 512;
  req.kind = IoKind::kRead;
  ftl.BeginRequest(req);
  ftl.ReadPage(0);  // Prefetches 1..3.
  EXPECT_EQ(ftl.cache().entry_count(), 4u);
  EXPECT_EQ(ftl.cache().dirty_entry_count(), 0u);
}

}  // namespace
}  // namespace tpftl
