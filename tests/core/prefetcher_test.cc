#include "src/core/prefetcher.h"

#include <gtest/gtest.h>

namespace tpftl {
namespace {

TEST(PrefetcherTest, StartsInactiveWithZeroCounter) {
  SelectivePrefetcher p(3);
  EXPECT_FALSE(p.active());
  EXPECT_EQ(p.counter(), 0);
  EXPECT_EQ(p.threshold(), 3);
}

TEST(PrefetcherTest, ActivatesAfterThresholdEvictions) {
  SelectivePrefetcher p(3);
  p.OnNodeEvicted();
  p.OnNodeEvicted();
  EXPECT_FALSE(p.active());  // |counter| = 2 < 3.
  p.OnNodeEvicted();
  EXPECT_TRUE(p.active());   // Net -3: sequential phase detected.
  EXPECT_EQ(p.counter(), 0); // Counter resets on a flip (§4.3).
  EXPECT_EQ(p.activations(), 1u);
}

TEST(PrefetcherTest, DeactivatesAfterThresholdLoads) {
  SelectivePrefetcher p(3);
  for (int i = 0; i < 3; ++i) {
    p.OnNodeEvicted();
  }
  ASSERT_TRUE(p.active());
  for (int i = 0; i < 3; ++i) {
    p.OnNodeLoaded();
  }
  EXPECT_FALSE(p.active());
  EXPECT_EQ(p.deactivations(), 1u);
}

TEST(PrefetcherTest, MixedTrafficDoesNotFlip) {
  SelectivePrefetcher p(3);
  // Alternating loads/evictions never reach |3|.
  for (int i = 0; i < 50; ++i) {
    p.OnNodeLoaded();
    p.OnNodeEvicted();
  }
  EXPECT_FALSE(p.active());
  EXPECT_EQ(p.activations(), 0u);
}

TEST(PrefetcherTest, PositiveSaturationWhileInactiveIsIdempotent) {
  SelectivePrefetcher p(3);
  for (int i = 0; i < 9; ++i) {
    p.OnNodeLoaded();
  }
  EXPECT_FALSE(p.active());
  EXPECT_EQ(p.deactivations(), 0u);  // Was never active.
  // Still activates promptly once the trend reverses.
  for (int i = 0; i < 3; ++i) {
    p.OnNodeEvicted();
  }
  EXPECT_TRUE(p.active());
}

TEST(PrefetcherTest, ThresholdOneFlipsImmediately) {
  SelectivePrefetcher p(1);
  p.OnNodeEvicted();
  EXPECT_TRUE(p.active());
  p.OnNodeLoaded();
  EXPECT_FALSE(p.active());
}

TEST(PrefetcherTest, RepeatedCyclesCountFlips) {
  SelectivePrefetcher p(2);
  for (int cycle = 0; cycle < 4; ++cycle) {
    p.OnNodeEvicted();
    p.OnNodeEvicted();
    p.OnNodeLoaded();
    p.OnNodeLoaded();
  }
  EXPECT_EQ(p.activations(), 4u);
  EXPECT_EQ(p.deactivations(), 4u);
}

}  // namespace
}  // namespace tpftl
