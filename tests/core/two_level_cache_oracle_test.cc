// Oracle test: a naive reference implementation of the page-level-hotness
// bookkeeping (§4.2) mirrors every cache operation; at each step the cache's
// victim choice must match the reference's "coldest node, LRU entry" answer.

#include <deque>
#include <map>
#include <unordered_map>

#include <gtest/gtest.h>

#include "src/core/two_level_cache.h"
#include "src/util/rng.h"

namespace tpftl {
namespace {

constexpr uint64_t kEntriesPerPage = 16;

// Reference model: explicit hot values, recency lists, exact averages.
class Oracle {
 public:
  struct Entry {
    uint64_t hot = 0;
    bool dirty = false;
  };

  void Insert(Lpn lpn, bool dirty) {
    auto& node = nodes_[lpn / kEntriesPerPage];
    node.recency.push_front(lpn);
    node.entries[lpn] = Entry{++clock_, dirty};
  }

  void Touch(Lpn lpn) {
    auto& node = nodes_[lpn / kEntriesPerPage];
    node.entries[lpn].hot = ++clock_;
    auto& r = node.recency;
    for (auto it = r.begin(); it != r.end(); ++it) {
      if (*it == lpn) {
        r.erase(it);
        break;
      }
    }
    r.push_front(lpn);
  }

  bool Contains(Lpn lpn) const {
    const auto node = nodes_.find(lpn / kEntriesPerPage);
    return node != nodes_.end() && node->second.entries.contains(lpn);
  }

  void Evict(Lpn lpn) {
    auto& node = nodes_[lpn / kEntriesPerPage];
    node.entries.erase(lpn);
    auto& r = node.recency;
    for (auto it = r.begin(); it != r.end(); ++it) {
      if (*it == lpn) {
        r.erase(it);
        break;
      }
    }
    if (node.entries.empty()) {
      nodes_.erase(lpn / kEntriesPerPage);
    }
  }

  // Coldest node by average hotness (ties → lower vtpn); LRU entry within.
  Lpn ExpectedVictim() const {
    double best_avg = 0.0;
    Vtpn best_vtpn = kInvalidVtpn;
    for (const auto& [vtpn, node] : nodes_) {
      double sum = 0.0;
      for (const auto& [lpn, e] : node.entries) {
        sum += static_cast<double>(e.hot);
      }
      const double avg = sum / static_cast<double>(node.entries.size());
      if (best_vtpn == kInvalidVtpn || avg < best_avg ||
          (avg == best_avg && vtpn < best_vtpn)) {
        best_avg = avg;
        best_vtpn = vtpn;
      }
    }
    return nodes_.at(best_vtpn).recency.back();
  }

  bool empty() const { return nodes_.empty(); }

 private:
  struct Node {
    std::map<Lpn, Entry> entries;
    std::deque<Lpn> recency;  // MRU at front.
  };
  std::map<Vtpn, Node> nodes_;
  uint64_t clock_ = 0;
};

TEST(TwoLevelCacheOracleTest, VictimAlwaysMatchesReferenceModel) {
  TwoLevelCacheOptions options;
  options.budget_bytes = 1 << 20;  // No internal eviction pressure.
  options.entries_per_page = kEntriesPerPage;
  TwoLevelCache cache(options);
  Oracle oracle;
  Rng rng(321);

  for (int step = 0; step < 20000; ++step) {
    const Lpn lpn = rng.Below(256);  // 16 nodes × 16 slots.
    const double dice = rng.NextDouble();
    if (dice < 0.45) {
      if (cache.Contains(lpn)) {
        ASSERT_TRUE(cache.Lookup(lpn).has_value());
        oracle.Touch(lpn);
      } else {
        cache.Insert(lpn, lpn, rng.Chance(0.5));
        oracle.Insert(lpn, false);
      }
    } else if (dice < 0.75 && cache.entry_count() > 0) {
      // Evict exactly what the cache would pick — and check it against the
      // reference first.
      const auto victim = cache.PickVictim(/*clean_first=*/false);
      ASSERT_TRUE(victim.has_value());
      ASSERT_EQ(victim->lpn, oracle.ExpectedVictim()) << "step " << step;
      cache.Evict(victim->vtpn, victim->slot);
      oracle.Evict(victim->lpn);
    } else if (cache.Contains(lpn)) {
      ASSERT_TRUE(cache.Update(lpn, lpn + 1, rng.Chance(0.5)));
      oracle.Touch(lpn);
    }
    ASSERT_EQ(cache.entry_count() == 0, oracle.empty());
  }
}

}  // namespace
}  // namespace tpftl
