// Oracle tests: naive reference implementations of the two-level cache's
// observable semantics (§4.1–§4.4) mirror every cache operation; at each
// step the cache's answers must match the reference exactly.
//
// Two layers:
//   * VictimAlwaysMatchesReferenceModel — the original page-level-hotness
//     oracle (coldest node by average hotness, LRU entry within).
//   * DifferentialTest — a full-state differential fuzz: ~100k mixed
//     Insert/Lookup/Update/Evict/PickVictim/MarkAllClean ops against a
//     byte-accounting reference model, asserting identical observable state
//     (bytes_used, victim choices in both clean-first modes, dirty counts,
//     entry values) at every step. This is the guardrail for the
//     slab/intrusive-list/lazy-ordering hot-path implementation.

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/two_level_cache.h"
#include "src/util/rng.h"

namespace tpftl {
namespace {

constexpr uint64_t kEntriesPerPage = 16;

// Reference model: explicit hot values, recency lists, exact averages.
class Oracle {
 public:
  struct Entry {
    uint64_t hot = 0;
    bool dirty = false;
  };

  void Insert(Lpn lpn, bool dirty) {
    auto& node = nodes_[lpn / kEntriesPerPage];
    node.recency.push_front(lpn);
    node.entries[lpn] = Entry{++clock_, dirty};
  }

  void Touch(Lpn lpn) {
    auto& node = nodes_[lpn / kEntriesPerPage];
    node.entries[lpn].hot = ++clock_;
    auto& r = node.recency;
    for (auto it = r.begin(); it != r.end(); ++it) {
      if (*it == lpn) {
        r.erase(it);
        break;
      }
    }
    r.push_front(lpn);
  }

  bool Contains(Lpn lpn) const {
    const auto node = nodes_.find(lpn / kEntriesPerPage);
    return node != nodes_.end() && node->second.entries.contains(lpn);
  }

  void Evict(Lpn lpn) {
    auto& node = nodes_[lpn / kEntriesPerPage];
    node.entries.erase(lpn);
    auto& r = node.recency;
    for (auto it = r.begin(); it != r.end(); ++it) {
      if (*it == lpn) {
        r.erase(it);
        break;
      }
    }
    if (node.entries.empty()) {
      nodes_.erase(lpn / kEntriesPerPage);
    }
  }

  // Coldest node by average hotness (ties → lower vtpn); LRU entry within.
  Lpn ExpectedVictim() const {
    double best_avg = 0.0;
    Vtpn best_vtpn = kInvalidVtpn;
    for (const auto& [vtpn, node] : nodes_) {
      double sum = 0.0;
      for (const auto& [lpn, e] : node.entries) {
        sum += static_cast<double>(e.hot);
      }
      const double avg = sum / static_cast<double>(node.entries.size());
      if (best_vtpn == kInvalidVtpn || avg < best_avg ||
          (avg == best_avg && vtpn < best_vtpn)) {
        best_avg = avg;
        best_vtpn = vtpn;
      }
    }
    return nodes_.at(best_vtpn).recency.back();
  }

  bool empty() const { return nodes_.empty(); }

 private:
  struct Node {
    std::map<Lpn, Entry> entries;
    std::deque<Lpn> recency;  // MRU at front.
  };
  std::map<Vtpn, Node> nodes_;
  uint64_t clock_ = 0;
};

TEST(TwoLevelCacheOracleTest, VictimAlwaysMatchesReferenceModel) {
  TwoLevelCacheOptions options;
  options.budget_bytes = 1 << 20;  // No internal eviction pressure.
  options.entries_per_page = kEntriesPerPage;
  TwoLevelCache cache(options);
  Oracle oracle;
  Rng rng(321);

  for (int step = 0; step < 20000; ++step) {
    const Lpn lpn = rng.Below(256);  // 16 nodes × 16 slots.
    const double dice = rng.NextDouble();
    if (dice < 0.45) {
      if (cache.Contains(lpn)) {
        ASSERT_TRUE(cache.Lookup(lpn).has_value());
        oracle.Touch(lpn);
      } else {
        cache.Insert(lpn, lpn, rng.Chance(0.5));
        oracle.Insert(lpn, false);
      }
    } else if (dice < 0.75 && cache.entry_count() > 0) {
      // Evict exactly what the cache would pick — and check it against the
      // reference first.
      const auto victim = cache.PickVictim(/*clean_first=*/false);
      ASSERT_TRUE(victim.has_value());
      ASSERT_EQ(victim->lpn, oracle.ExpectedVictim()) << "step " << step;
      cache.Evict(victim->vtpn, victim->slot);
      oracle.Evict(victim->lpn);
    } else if (cache.Contains(lpn)) {
      ASSERT_TRUE(cache.Update(lpn, lpn + 1, rng.Chance(0.5)));
      oracle.Touch(lpn);
    }
    ASSERT_EQ(cache.entry_count() == 0, oracle.empty());
  }
}

// ---------------------------------------------------------------------------
// Full-state differential reference: every observable of TwoLevelCache,
// implemented the naive way (flat maps, recomputed averages, linear scans).

class RefCache {
 public:
  struct Entry {
    Ppn ppn = kInvalidPpn;
    uint64_t hot = 0;
    bool dirty = false;
  };

  struct ExpectedVictim {
    Vtpn vtpn;
    Lpn lpn;
    bool dirty;
  };

  RefCache(uint64_t budget, uint64_t entry_bytes, uint64_t node_bytes, uint64_t epp)
      : budget_(budget), entry_bytes_(entry_bytes), node_bytes_(node_bytes), epp_(epp) {}

  bool Contains(Lpn lpn) const {
    const auto it = nodes_.find(lpn / epp_);
    return it != nodes_.end() && it->second.entries.contains(lpn % epp_);
  }

  std::optional<Ppn> Peek(Lpn lpn) const {
    const auto it = nodes_.find(lpn / epp_);
    if (it == nodes_.end()) {
      return std::nullopt;
    }
    const auto e = it->second.entries.find(lpn % epp_);
    return e == it->second.entries.end() ? std::nullopt : std::make_optional(e->second.ppn);
  }

  void Insert(Lpn lpn, Ppn ppn, bool dirty) {
    auto [it, created] = nodes_.try_emplace(lpn / epp_);
    if (created) {
      bytes_ += node_bytes_;
    }
    Node& node = it->second;
    node.entries[lpn % epp_] = Entry{ppn, ++clock_, dirty};
    node.recency.push_front(lpn % epp_);
    bytes_ += entry_bytes_;
  }

  void Touch(Lpn lpn, std::optional<Ppn> new_ppn, std::optional<bool> new_dirty) {
    Node& node = nodes_.at(lpn / epp_);
    Entry& e = node.entries.at(lpn % epp_);
    e.hot = ++clock_;
    if (new_ppn) {
      e.ppn = *new_ppn;
    }
    if (new_dirty) {
      e.dirty = *new_dirty;
    }
    auto& r = node.recency;
    r.erase(std::find(r.begin(), r.end(), lpn % epp_));
    r.push_front(lpn % epp_);
  }

  void Evict(Vtpn vtpn, uint64_t slot) {
    Node& node = nodes_.at(vtpn);
    node.entries.erase(slot);
    auto& r = node.recency;
    r.erase(std::find(r.begin(), r.end(), slot));
    bytes_ -= entry_bytes_;
    if (node.entries.empty()) {
      nodes_.erase(vtpn);
      bytes_ -= node_bytes_;
    }
  }

  uint64_t MarkAllClean(Vtpn vtpn) {
    const auto it = nodes_.find(vtpn);
    if (it == nodes_.end()) {
      return 0;
    }
    uint64_t cleaned = 0;
    for (auto& [slot, e] : it->second.entries) {
      cleaned += e.dirty ? 1 : 0;
      e.dirty = false;
    }
    return cleaned;
  }

  uint64_t CostOfInsert(Lpn lpn) const {
    return entry_bytes_ + (nodes_.contains(lpn / epp_) ? 0 : node_bytes_);
  }
  bool HasSpaceFor(Lpn lpn) const { return bytes_ + CostOfInsert(lpn) <= budget_; }

  std::optional<ExpectedVictim> PickVictim(bool clean_first) const {
    if (nodes_.empty()) {
      return std::nullopt;
    }
    // Coldest node: minimal average hotness, ties to the lower vtpn.
    double best_avg = 0.0;
    Vtpn best = kInvalidVtpn;
    for (const auto& [vtpn, node] : nodes_) {
      double sum = 0.0;
      for (const auto& [slot, e] : node.entries) {
        sum += static_cast<double>(e.hot);
      }
      const double avg = sum / static_cast<double>(node.entries.size());
      if (best == kInvalidVtpn || avg < best_avg || (avg == best_avg && vtpn < best)) {
        best_avg = avg;
        best = vtpn;
      }
    }
    const Node& node = nodes_.at(best);
    uint64_t slot = node.recency.back();
    if (clean_first) {
      for (auto it = node.recency.rbegin(); it != node.recency.rend(); ++it) {
        if (!node.entries.at(*it).dirty) {
          slot = *it;
          break;
        }
      }
    }
    return ExpectedVictim{best, best * epp_ + slot, node.entries.at(slot).dirty};
  }

  uint64_t CachedPredecessors(Lpn lpn) const {
    const auto it = nodes_.find(lpn / epp_);
    if (it == nodes_.end()) {
      return 0;
    }
    uint64_t slot = lpn % epp_;
    uint64_t count = 0;
    while (slot > 0 && it->second.entries.contains(slot - 1)) {
      --slot;
      ++count;
    }
    return count;
  }

  std::vector<MappingUpdate> DirtyEntriesOf(Vtpn vtpn) const {
    std::vector<MappingUpdate> updates;
    const auto it = nodes_.find(vtpn);
    if (it == nodes_.end()) {
      return updates;
    }
    for (const auto& [slot, e] : it->second.entries) {
      if (e.dirty) {
        updates.push_back({vtpn * epp_ + slot, e.ppn});
      }
    }
    return updates;
  }

  uint64_t DirtyCountOf(Vtpn vtpn) const { return DirtyEntriesOf(vtpn).size(); }

  uint64_t bytes_used() const { return bytes_; }
  uint64_t node_count() const { return nodes_.size(); }
  uint64_t entry_count() const {
    uint64_t n = 0;
    for (const auto& [vtpn, node] : nodes_) {
      n += node.entries.size();
    }
    return n;
  }
  uint64_t dirty_entry_count() const {
    uint64_t n = 0;
    for (const auto& [vtpn, node] : nodes_) {
      n += DirtyCountOf(vtpn);
    }
    return n;
  }

  std::vector<Vtpn> CachedVtpns() const {
    std::vector<Vtpn> vtpns;
    for (const auto& [vtpn, node] : nodes_) {
      vtpns.push_back(vtpn);
    }
    return vtpns;
  }

 private:
  struct Node {
    std::map<uint64_t, Entry> entries;  // slot → entry.
    std::deque<uint64_t> recency;       // Slots, MRU at front.
  };

  uint64_t budget_;
  uint64_t entry_bytes_;
  uint64_t node_bytes_;
  uint64_t epp_;
  std::map<Vtpn, Node> nodes_;
  uint64_t clock_ = 0;
  uint64_t bytes_ = 0;
};

std::vector<MappingUpdate> SortedBySlot(std::vector<MappingUpdate> updates) {
  std::sort(updates.begin(), updates.end(),
            [](const MappingUpdate& a, const MappingUpdate& b) { return a.lpn < b.lpn; });
  return updates;
}

TEST(TwoLevelCacheDifferentialTest, HundredThousandMixedOpsMatchReference) {
  constexpr uint64_t kBudget = 2048;  // ~300 entries: constant churn.
  TwoLevelCacheOptions options;
  options.budget_bytes = kBudget;
  options.entries_per_page = kEntriesPerPage;
  TwoLevelCache cache(options);
  RefCache ref(kBudget, options.entry_bytes, options.node_overhead_bytes, kEntriesPerPage);
  Rng rng(98765);

  const auto check_victims = [&](int step) {
    for (const bool clean_first : {false, true}) {
      const auto got = cache.PickVictim(clean_first);
      const auto want = ref.PickVictim(clean_first);
      ASSERT_EQ(got.has_value(), want.has_value()) << "step " << step;
      if (got.has_value()) {
        ASSERT_EQ(got->vtpn, want->vtpn) << "step " << step << " clean_first=" << clean_first;
        ASSERT_EQ(got->lpn, want->lpn) << "step " << step << " clean_first=" << clean_first;
        ASSERT_EQ(got->dirty, want->dirty) << "step " << step << " clean_first=" << clean_first;
      }
    }
  };

  for (int step = 0; step < 100000; ++step) {
    const Lpn lpn = rng.Below(64 * kEntriesPerPage);
    const double dice = rng.NextDouble();
    if (dice < 0.40) {
      // Access: hit → Lookup/touch; miss → evict-to-fit then Insert.
      if (cache.Contains(lpn)) {
        const auto got = cache.Lookup(lpn);
        const auto want = ref.Peek(lpn);
        ASSERT_EQ(got, want) << "step " << step;
        ref.Touch(lpn, std::nullopt, std::nullopt);
      } else {
        const bool clean_first = rng.Chance(0.5);
        while (!cache.HasSpaceFor(lpn)) {
          ASSERT_EQ(cache.HasSpaceFor(lpn), ref.HasSpaceFor(lpn)) << "step " << step;
          const auto victim = cache.PickVictim(clean_first);
          const auto want = ref.PickVictim(clean_first);
          ASSERT_TRUE(victim.has_value());
          ASSERT_EQ(victim->lpn, want->lpn) << "step " << step;
          cache.Evict(victim->vtpn, victim->slot);
          ref.Evict(want->vtpn, want->lpn % kEntriesPerPage);
        }
        const Ppn ppn = rng.Next();
        const bool dirty = rng.Chance(0.5);
        cache.Insert(lpn, ppn, dirty);
        ref.Insert(lpn, ppn, dirty);
      }
    } else if (dice < 0.55) {
      // Update an entry if cached (value + dirty flip).
      const bool cached = cache.Contains(lpn);
      ASSERT_EQ(cached, ref.Contains(lpn)) << "step " << step;
      const Ppn ppn = rng.Next();
      const bool dirty = rng.Chance(0.5);
      ASSERT_EQ(cache.Update(lpn, ppn, dirty), cached) << "step " << step;
      if (cached) {
        ref.Touch(lpn, ppn, dirty);
      }
    } else if (dice < 0.70) {
      check_victims(step);
    } else if (dice < 0.80 && cache.entry_count() > 0) {
      // Evict exactly what the cache would pick.
      const bool clean_first = rng.Chance(0.5);
      const auto victim = cache.PickVictim(clean_first);
      const auto want = ref.PickVictim(clean_first);
      ASSERT_TRUE(victim.has_value());
      ASSERT_EQ(victim->lpn, want->lpn) << "step " << step;
      cache.Evict(victim->vtpn, victim->slot);
      ref.Evict(want->vtpn, want->lpn % kEntriesPerPage);
    } else if (dice < 0.90) {
      // Batch writeback of one (possibly absent) node.
      const Vtpn vtpn = lpn / kEntriesPerPage;
      ASSERT_EQ(SortedBySlot(cache.DirtyEntriesOf(vtpn)).size(),
                ref.DirtyEntriesOf(vtpn).size())
          << "step " << step;
      const auto got = SortedBySlot(cache.DirtyEntriesOf(vtpn));
      const auto want = ref.DirtyEntriesOf(vtpn);  // std::map order: already by slot.
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].lpn, want[i].lpn) << "step " << step;
        ASSERT_EQ(got[i].ppn, want[i].ppn) << "step " << step;
      }
      ASSERT_EQ(cache.MarkAllClean(vtpn), ref.MarkAllClean(vtpn)) << "step " << step;
    } else {
      ASSERT_EQ(cache.CachedPredecessors(lpn), ref.CachedPredecessors(lpn)) << "step " << step;
      ASSERT_EQ(cache.Peek(lpn), ref.Peek(lpn)) << "step " << step;
    }

    // Aggregate observable state must match after every op.
    ASSERT_EQ(cache.bytes_used(), ref.bytes_used()) << "step " << step;
    ASSERT_EQ(cache.entry_count(), ref.entry_count()) << "step " << step;
    ASSERT_EQ(cache.node_count(), ref.node_count()) << "step " << step;
    ASSERT_EQ(cache.dirty_entry_count(), ref.dirty_entry_count()) << "step " << step;
    ASSERT_LE(cache.bytes_used(), cache.budget_bytes() + options.entry_bytes +
                                      options.node_overhead_bytes)
        << "step " << step;

    if (step % 1000 == 0) {
      // Deep check: per-node dirty counts and occupancy.
      for (const Vtpn vtpn : ref.CachedVtpns()) {
        ASSERT_TRUE(cache.NodeCached(vtpn)) << "step " << step;
        ASSERT_EQ(cache.DirtyCountOf(vtpn), ref.DirtyCountOf(vtpn)) << "step " << step;
      }
      uint64_t nodes_seen = 0;
      cache.ForEachNode([&](Vtpn vtpn, uint64_t entries, uint64_t dirty) {
        ++nodes_seen;
        (void)entries;
        ASSERT_EQ(dirty, ref.DirtyCountOf(vtpn)) << "step " << step;
      });
      ASSERT_EQ(nodes_seen, ref.node_count()) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace tpftl
