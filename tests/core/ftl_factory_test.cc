#include "src/core/ftl_factory.h"

#include <gtest/gtest.h>

#include "src/testing/world.h"

namespace tpftl {
namespace {

TEST(FtlFactoryTest, NamesRoundTrip) {
  for (const FtlKind kind : {FtlKind::kOptimal, FtlKind::kDftl, FtlKind::kCdftl, FtlKind::kSftl,
                             FtlKind::kTpftl, FtlKind::kBlockFtl, FtlKind::kFast, FtlKind::kZftl,
                             FtlKind::kLearned}) {
    const auto parsed = FtlKindByName(FtlKindName(kind));
    ASSERT_TRUE(parsed.has_value()) << FtlKindName(kind);
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(FtlFactoryTest, NameLookupIsCaseInsensitiveWithAliases) {
  EXPECT_EQ(FtlKindByName("TPFTL"), FtlKind::kTpftl);
  EXPECT_EQ(FtlKindByName("sftl"), FtlKind::kSftl);
  EXPECT_EQ(FtlKindByName("S-FTL"), FtlKind::kSftl);
  EXPECT_EQ(FtlKindByName("block"), FtlKind::kBlockFtl);
  EXPECT_EQ(FtlKindByName("learned"), FtlKind::kLearned);
  EXPECT_EQ(FtlKindByName("LearnedFTL"), FtlKind::kLearned);
  EXPECT_FALSE(FtlKindByName("nvme").has_value());
}

TEST(FtlFactoryTest, CreatesEveryKind) {
  for (const FtlKind kind : {FtlKind::kOptimal, FtlKind::kDftl, FtlKind::kCdftl, FtlKind::kSftl,
                             FtlKind::kTpftl, FtlKind::kBlockFtl, FtlKind::kFast, FtlKind::kZftl,
                             FtlKind::kLearned}) {
    testing::World w = testing::MakeWorld(1024, 32 + 640);
    auto ftl = CreateFtl(kind, w.env);
    ASSERT_NE(ftl, nullptr);
    EXPECT_EQ(ftl->name(), FtlKindName(kind));
    ftl->WritePage(7);
    EXPECT_NE(ftl->Probe(7), kInvalidPpn);
  }
}

TEST(FtlFactoryTest, TpftlOptionsAreForwarded) {
  testing::World w = testing::MakeWorld(1024, 32 + 640);
  auto ftl = CreateFtl(FtlKind::kTpftl, w.env, TpftlOptions::FromLabel("bc"));
  auto* tpftl = dynamic_cast<Tpftl*>(ftl.get());
  ASSERT_NE(tpftl, nullptr);
  EXPECT_EQ(tpftl->options().Label(), "bc");
  EXPECT_FALSE(tpftl->options().request_prefetch);
  EXPECT_TRUE(tpftl->options().batch_update);
}

}  // namespace
}  // namespace tpftl
