// Malformed-input matrix for the SPC/MSR parsers and the format
// auto-detector: CRLF line endings, trailing blank lines, truncated final
// records, numeric garbage/overflow, and ambiguous leading lines must never
// crash, never silently drop well-formed records, and always account for the
// bad ones in the malformed counter.

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "src/trace/msr_parser.h"
#include "src/trace/spc_parser.h"
#include "src/trace/trace_io.h"

namespace tpftl {
namespace {

TEST(SpcMalformedTest, CrlfLineEndingsParseCleanly) {
  SpcParser parser;
  uint64_t bad = 0;
  const auto reqs = parser.ParseText("0,1,512,W,1.0\r\n0,2,512,R,2.0\r\n0,3,512,W,3.0\r\n", &bad);
  ASSERT_EQ(reqs.size(), 3u);
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(reqs[0].offset_bytes, 512u);
  EXPECT_DOUBLE_EQ(reqs[2].arrival_us, 3.0e6);
}

TEST(SpcMalformedTest, TrailingBlankAndCrOnlyLinesAreNotMalformed) {
  SpcParser parser;
  uint64_t bad = 0;
  const auto reqs = parser.ParseText("0,1,512,W,1.0\n\n\r\n   \n", &bad);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(bad, 0u);
}

TEST(SpcMalformedTest, TruncatedFinalRecordIsCountedNotDropped) {
  SpcParser parser;
  uint64_t bad = 0;
  // The file was cut mid-write: last line lacks the opcode and timestamp,
  // and has no trailing newline.
  const auto reqs = parser.ParseText("0,1,512,W,1.0\n0,2,512,R,2.0\n0,3,51", &bad);
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(bad, 1u);
  EXPECT_EQ(reqs[1].offset_bytes, 2u * 512);
}

TEST(SpcMalformedTest, NumericGarbageAndOverflowAreRejected) {
  SpcParser parser;
  EXPECT_FALSE(parser.ParseLine("0,12x3,512,W,1.0").has_value());
  EXPECT_FALSE(parser.ParseLine("0,99999999999999999999999,512,W,1.0").has_value());
  EXPECT_FALSE(parser.ParseLine("0,1,512,W,notatime").has_value());
  EXPECT_FALSE(parser.ParseLine("0,1,512,,1.0").has_value());
  // Whitespace padding inside fields is tolerated.
  EXPECT_TRUE(parser.ParseLine(" 0 , 1 , 512 , W , 1.0 ").has_value());
}

TEST(MsrMalformedTest, CrlfLineEndingsParseCleanly) {
  MsrParser parser;
  uint64_t bad = 0;
  const auto reqs = parser.ParseText(
      "128166372003061629,ts,0,Write,0,4096,0\r\n"
      "128166372003061729,ts,0,Read,4096,4096,0\r\n",
      &bad);
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(bad, 0u);
  EXPECT_DOUBLE_EQ(reqs[1].arrival_us, 10.0);  // CR must not break the size field.
  EXPECT_EQ(reqs[1].size_bytes, 4096u);
}

TEST(MsrMalformedTest, TruncatedFinalRecordIsCountedNotDropped) {
  MsrParser parser;
  uint64_t bad = 0;
  const auto reqs = parser.ParseText(
      "128166372003061629,ts,0,Write,0,4096,0\n"
      "128166372003061729,ts,0,Rea",
      &bad);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(bad, 1u);
}

TEST(MsrMalformedTest, HeaderRowIsCountedMalformedRecordsStillParse) {
  MsrParser parser;
  uint64_t bad = 0;
  const auto reqs = parser.ParseText(
      "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\r\n"
      "128166372003061629,ts,0,Write,0,4096,0\r\n",
      &bad);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(bad, 1u);
}

TEST(DetectFormatMalformedTest, HeaderRowDoesNotBlindTheDetector) {
  // The first non-comment line is an MSR header whose Type field is the
  // literal word "Type" — unclassifiable; the records below decide.
  EXPECT_EQ(DetectFormat("Timestamp,Hostname,DiskNumber,Type,Offset,Size\n"
                         "128166372003061629,ts,0,Write,0,4096,0\n"),
            TraceFormat::kMsr);
  EXPECT_EQ(DetectFormat("asu,lba,size,op,ts\n0,1,512,W,1.0\n"), TraceFormat::kSpc);
}

TEST(DetectFormatMalformedTest, TruncatedLeadingRecordIsSkipped) {
  EXPECT_EQ(DetectFormat("0,1,51\n0,1,512,W,1.0\n"), TraceFormat::kSpc);
}

TEST(DetectFormatMalformedTest, CrlfAndBlankPrefixAreTolerated) {
  EXPECT_EQ(DetectFormat("\r\n\r\n# header\r\n0,1,512,W,1.0\r\n"), TraceFormat::kSpc);
  EXPECT_EQ(DetectFormat("\r\n128166372003061629,ts,0,Read,0,4096,0\r\n"), TraceFormat::kMsr);
}

TEST(DetectFormatMalformedTest, AllGarbageStaysUnknown) {
  EXPECT_EQ(DetectFormat("not,a,trace\nstill,not,one\n"), TraceFormat::kUnknown);
  EXPECT_EQ(DetectFormat("# only\n# comments\n"), TraceFormat::kUnknown);
  EXPECT_EQ(DetectFormat("\r\n \n"), TraceFormat::kUnknown);
}

TEST(TraceIoMalformedTest, LoadsCrlfFileWithHeaderAndTruncatedTail) {
  const std::string path = ::testing::TempDir() + "/malformed.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "Timestamp,Hostname,DiskNumber,Type,Offset,Size\r\n"
        << "128166372003061629,ts,0,Write,0,4096,0\r\n"
        << "128166372003061729,ts,0,Read,4096,4096,0\r\n"
        << "128166372003061829,ts,0,Wri";  // Cut mid-record, no newline.
  }
  const auto loaded = LoadTraceFile(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->format, TraceFormat::kMsr);
  ASSERT_EQ(loaded->requests.size(), 2u);
  EXPECT_EQ(loaded->malformed_lines, 2u);  // Header + truncated tail.
}

TEST(TraceIoMalformedTest, FileWithNoParsableRecordFails) {
  const std::string path = ::testing::TempDir() + "/garbage.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "only,garbage,here\r\n\r\n";
  }
  EXPECT_FALSE(LoadTraceFile(path).has_value());
}

}  // namespace
}  // namespace tpftl
