// Robustness: arbitrary garbage fed to the trace parsers must never crash,
// never emit a request from a malformed line, and always terminate.

#include <string>

#include <gtest/gtest.h>

#include "src/trace/msr_parser.h"
#include "src/trace/spc_parser.h"
#include "src/trace/trace_io.h"
#include "src/util/rng.h"

namespace tpftl {
namespace {

std::string RandomLine(Rng& rng) {
  static constexpr char kAlphabet[] = "0123456789,.-RWw rw\tReadWrite#\\\"x";
  std::string line;
  const uint64_t len = rng.Below(60);
  for (uint64_t i = 0; i < len; ++i) {
    line += kAlphabet[rng.Below(sizeof(kAlphabet) - 1)];
  }
  return line;
}

TEST(ParserFuzzTest, SpcParserSurvivesGarbage) {
  SpcParser parser;
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const std::string line = RandomLine(rng);
    const auto req = parser.ParseLine(line);
    if (req.has_value()) {
      // Anything accepted must be internally sane.
      EXPECT_GT(req->size_bytes, 0u);
      EXPECT_GE(req->arrival_us, 0.0);
    }
  }
}

TEST(ParserFuzzTest, MsrParserSurvivesGarbage) {
  MsrParser parser;
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    const auto req = parser.ParseLine(RandomLine(rng));
    if (req.has_value()) {
      EXPECT_GT(req->size_bytes, 0u);
    }
  }
}

TEST(ParserFuzzTest, ParseTextNeverLosesCountOfLines) {
  SpcParser parser;
  Rng rng(3);
  for (int round = 0; round < 200; ++round) {
    std::string text;
    uint64_t nonempty = 0;
    const uint64_t lines = rng.Below(30);
    for (uint64_t i = 0; i < lines; ++i) {
      std::string line = RandomLine(rng);
      bool blank = true;
      for (const char c : line) {
        if (c != ' ' && c != '\t') {
          blank = false;
          break;
        }
      }
      nonempty += blank ? 0 : 1;
      text += line + "\n";
    }
    uint64_t malformed = 0;
    const auto parsed = parser.ParseText(text, &malformed);
    EXPECT_EQ(parsed.size() + malformed, nonempty);
  }
}

TEST(ParserFuzzTest, DetectFormatSurvivesGarbage) {
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    std::string text;
    for (uint64_t l = 0; l < rng.Below(5); ++l) {
      text += RandomLine(rng) + "\n";
    }
    // Must return *something* without crashing.
    const TraceFormat format = DetectFormat(text);
    (void)format;
  }
}

TEST(ParserFuzzTest, TruncatedRealLinesAreRejectedNotMisparsed) {
  SpcParser spc;
  const std::string full = "0,20941264,8192,W,0.551706";
  for (size_t cut = 0; cut < full.size(); ++cut) {
    const auto req = spc.ParseLine(full.substr(0, cut));
    if (cut < 19) {  // Up to "0,20941264,8192,W," — no timestamp digits yet.
      EXPECT_FALSE(req.has_value()) << "accepted truncation at " << cut;
    }
    // From 19 on, the prefix is a legitimately shorter timestamp ("0", "0.5",
    // ...), which SHOULD parse.
  }
  MsrParser msr;
  const std::string msr_full = "128166372003061629,ts,0,Write,665600,8192,1331";
  for (size_t cut = 0; cut < 30; ++cut) {
    EXPECT_FALSE(msr.ParseLine(msr_full.substr(0, cut)).has_value());
  }
}

}  // namespace
}  // namespace tpftl
