#include <gtest/gtest.h>

#include "src/trace/msr_parser.h"
#include "src/trace/spc_parser.h"
#include "src/trace/trace_io.h"

namespace tpftl {
namespace {

TEST(SpcParserTest, ParsesFinancialStyleLine) {
  SpcParser parser;
  const auto req = parser.ParseLine("0,20941264,8192,W,0.551706");
  ASSERT_TRUE(req.has_value());
  EXPECT_TRUE(req->is_write());
  EXPECT_EQ(req->offset_bytes, 20941264ULL * 512);
  EXPECT_EQ(req->size_bytes, 8192u);
  EXPECT_DOUBLE_EQ(req->arrival_us, 551706.0);
}

TEST(SpcParserTest, ReadOpcodeLowercase) {
  SpcParser parser;
  const auto req = parser.ParseLine("1,100,512,r,1.0");
  ASSERT_TRUE(req.has_value());
  EXPECT_FALSE(req->is_write());
}

TEST(SpcParserTest, RejectsMalformedLines) {
  SpcParser parser;
  EXPECT_FALSE(parser.ParseLine("").has_value());
  EXPECT_FALSE(parser.ParseLine("# comment").has_value());
  EXPECT_FALSE(parser.ParseLine("0,abc,512,W,1.0").has_value());
  EXPECT_FALSE(parser.ParseLine("0,1,512,X,1.0").has_value());
  EXPECT_FALSE(parser.ParseLine("0,1,512").has_value());
}

TEST(SpcParserTest, AsuFilterDropsOtherUnits) {
  SpcParserOptions options;
  options.asu_filter = 1;
  SpcParser parser(options);
  EXPECT_FALSE(parser.ParseLine("0,100,512,W,1.0").has_value());
  EXPECT_TRUE(parser.ParseLine("1,100,512,W,1.0").has_value());
}

TEST(SpcParserTest, ZeroSizeBecomesOneSector) {
  SpcParser parser;
  const auto req = parser.ParseLine("0,100,0,W,1.0");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->size_bytes, 512u);
}

TEST(SpcParserTest, ParseTextCountsMalformed) {
  SpcParser parser;
  uint64_t bad = 0;
  const auto reqs = parser.ParseText("0,1,512,W,1.0\njunk\n0,2,512,R,2.0\n", &bad);
  EXPECT_EQ(reqs.size(), 2u);
  EXPECT_EQ(bad, 1u);
}

TEST(MsrParserTest, ParsesMsrStyleLine) {
  MsrParser parser;
  const auto req =
      parser.ParseLine("128166372003061629,ts,0,Write,665600,8192,1331");
  ASSERT_TRUE(req.has_value());
  EXPECT_TRUE(req->is_write());
  EXPECT_EQ(req->offset_bytes, 665600u);
  EXPECT_EQ(req->size_bytes, 8192u);
  EXPECT_DOUBLE_EQ(req->arrival_us, 0.0);  // Rebased to trace start.
}

TEST(MsrParserTest, RebasesTimestamps) {
  MsrParser parser;
  parser.ParseLine("128166372003061629,ts,0,Write,0,512,0");
  const auto second = parser.ParseLine("128166372003061729,ts,0,Read,512,512,0");
  ASSERT_TRUE(second.has_value());
  EXPECT_DOUBLE_EQ(second->arrival_us, 10.0);  // 100 ticks of 100 ns = 10 µs.
}

TEST(MsrParserTest, DiskFilter) {
  MsrParserOptions options;
  options.disk_filter = 1;
  MsrParser parser(options);
  EXPECT_FALSE(parser.ParseLine("1,ts,0,Write,0,512,0").has_value());
  EXPECT_TRUE(parser.ParseLine("2,ts,1,Write,0,512,0").has_value());
}

TEST(MsrParserTest, RejectsUnknownType) {
  MsrParser parser;
  EXPECT_FALSE(parser.ParseLine("1,ts,0,Trim,0,512,0").has_value());
}

TEST(DetectFormatTest, DistinguishesFormats) {
  EXPECT_EQ(DetectFormat("0,20941264,8192,W,0.551706\n"), TraceFormat::kSpc);
  EXPECT_EQ(DetectFormat("128166372003061629,ts,0,Write,665600,8192,1331\n"),
            TraceFormat::kMsr);
  EXPECT_EQ(DetectFormat("hello world\n"), TraceFormat::kUnknown);
  EXPECT_EQ(DetectFormat(""), TraceFormat::kUnknown);
  // Leading comments are skipped.
  EXPECT_EQ(DetectFormat("# header\n0,1,512,R,0.5\n"), TraceFormat::kSpc);
}

TEST(TraceIoTest, SaveLoadRoundTrip) {
  std::vector<IoRequest> requests;
  for (int i = 0; i < 10; ++i) {
    IoRequest r;
    r.arrival_us = i * 1000.0;
    r.offset_bytes = static_cast<uint64_t>(i) * 4096;
    r.size_bytes = 4096;
    r.kind = i % 2 == 0 ? IoKind::kWrite : IoKind::kRead;
    requests.push_back(r);
  }
  const std::string path = ::testing::TempDir() + "/roundtrip.spc";
  ASSERT_TRUE(SaveTraceSpc(path, requests));
  const auto loaded = LoadTraceFile(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->format, TraceFormat::kSpc);
  EXPECT_EQ(loaded->malformed_lines, 0u);
  ASSERT_EQ(loaded->requests.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(loaded->requests[i].offset_bytes, requests[i].offset_bytes);
    EXPECT_EQ(loaded->requests[i].size_bytes, requests[i].size_bytes);
    EXPECT_EQ(loaded->requests[i].kind, requests[i].kind);
    EXPECT_NEAR(loaded->requests[i].arrival_us, requests[i].arrival_us, 1.0);
  }
}

TEST(TraceIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadTraceFile("/nonexistent/path/trace.spc").has_value());
}

TEST(RequestTest, PageArithmetic) {
  IoRequest r;
  r.offset_bytes = 4096 + 100;
  r.size_bytes = 4096;
  EXPECT_EQ(r.FirstLpn(4096), 1u);
  EXPECT_EQ(r.LastLpn(4096), 2u);  // Unaligned: spills into the next page.
  EXPECT_EQ(r.PageCount(4096), 2u);
  IoRequest zero;
  zero.offset_bytes = 0;
  zero.size_bytes = 0;
  EXPECT_EQ(zero.PageCount(4096), 1u);
}

}  // namespace
}  // namespace tpftl
