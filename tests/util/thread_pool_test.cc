#include "src/util/thread_pool.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace tpftl {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not deadlock.
}

TEST(ThreadPoolTest, PoolIsReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, EachTaskSeesItsOwnArgument) {
  ThreadPool pool(3);
  std::vector<int> results(50, -1);
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&results, i] { results[i] = i * i; });
  }
  pool.Wait();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): destruction must still complete all queued tasks.
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, ZeroThreadsResolvesToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

}  // namespace
}  // namespace tpftl
