#include "src/util/table.h"

#include <sstream>

#include <gtest/gtest.h>

namespace tpftl {
namespace {

TEST(TableTest, PrintsTitleHeadersAndRows) {
  Table t("Demo");
  t.SetColumns({"FTL", "Hr", "Prd"});
  t.AddRow({"DFTL", "0.80", "0.50"});
  t.AddRow({"TPFTL", "0.92", "0.03"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("FTL"), std::string::npos);
  EXPECT_NE(out.find("TPFTL"), std::string::npos);
  EXPECT_NE(out.find("0.03"), std::string::npos);
}

TEST(TableTest, DoubleRowFormatsDecimals) {
  Table t("Demo");
  t.SetColumns({"name", "a", "b"});
  t.AddRow("x", {1.23456, 2.0}, 2);
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "name,a,b\nx,1.23,2.00\n");
}

TEST(TableTest, CsvRoundTripShape) {
  Table t("T");
  t.SetColumns({"c1", "c2"});
  t.AddRow({"v1", "v2"});
  t.AddRow({"v3", "v4"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "c1,c2\nv1,v2\nv3,v4\n");
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableDeathTest, RowArityMismatchAborts) {
  Table t("T");
  t.SetColumns({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "row arity");
}

}  // namespace
}  // namespace tpftl
