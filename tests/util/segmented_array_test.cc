#include "src/util/segmented_array.h"

#include <cstdint>
#include <utility>

#include "gtest/gtest.h"

namespace tpftl {
namespace {

TEST(SegmentedArrayTest, DenseModeBehavesLikeFlatArray) {
  SegmentedArray<uint64_t> a(100, 7);
  EXPECT_TRUE(a.dense());
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a.total_segments(), 1u);
  EXPECT_EQ(a.materialized_segments(), 1u);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Get(i), 7u);
  }
  a.Set(3, 42);
  a.Set(99, 43);
  EXPECT_EQ(a.Get(3), 42u);
  EXPECT_EQ(a.Get(99), 43u);
  EXPECT_EQ(a.Span(3, 2)[0], 42u);
}

TEST(SegmentedArrayTest, SparseMaterializesOnlyWrittenSegments) {
  SegmentedArray<uint32_t> a(1024, 5, 64);
  EXPECT_FALSE(a.dense());
  EXPECT_EQ(a.total_segments(), 16u);
  EXPECT_EQ(a.materialized_segments(), 0u);

  // Reads and default-valued writes never allocate.
  EXPECT_EQ(a.Get(500), 5u);
  a.Set(500, 5);
  EXPECT_EQ(a.materialized_segments(), 0u);

  a.Set(500, 9);
  EXPECT_EQ(a.materialized_segments(), 1u);
  EXPECT_EQ(a.Get(500), 9u);
  EXPECT_EQ(a.Get(501), 5u);  // Same segment, still default.
  EXPECT_EQ(a.Get(0), 5u);    // Different segment, untouched.

  a.Set(1023, 11);
  EXPECT_EQ(a.materialized_segments(), 2u);
  EXPECT_EQ(a.Get(1023), 11u);
}

TEST(SegmentedArrayTest, SpanServesSharedDefaultSegmentWithoutAllocating) {
  SegmentedArray<uint32_t> a(1024, 5, 64);
  const uint32_t* span = a.Span(128, 64);
  for (uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(span[i], 5u);
  }
  EXPECT_EQ(a.materialized_segments(), 0u);

  a.Set(130, 77);
  const uint32_t* live = a.Span(128, 64);
  EXPECT_EQ(live[2], 77u);
  EXPECT_EQ(live[0], 5u);
}

TEST(SegmentedArrayTest, PartialTailSegment) {
  SegmentedArray<uint8_t> a(100, 0, 64);  // Tail segment covers 36 elements.
  EXPECT_EQ(a.total_segments(), 2u);
  a.Set(99, 1);
  EXPECT_EQ(a.Get(99), 1u);
  EXPECT_EQ(a.materialized_segments(), 1u);
}

TEST(SegmentedArrayTest, DeepCopyIsIndependent) {
  SegmentedArray<uint64_t> a(256, 0, 64);
  a.Set(10, 100);
  SegmentedArray<uint64_t> b(a);
  b.Set(10, 200);
  b.Set(200, 300);
  EXPECT_EQ(a.Get(10), 100u);
  EXPECT_EQ(a.Get(200), 0u);
  EXPECT_EQ(a.materialized_segments(), 1u);
  EXPECT_EQ(b.Get(10), 200u);
  EXPECT_EQ(b.Get(200), 300u);
  EXPECT_EQ(b.materialized_segments(), 2u);

  // Copy-assign and move keep the dense fast path intact.
  SegmentedArray<uint64_t> c(8, 1);
  c = a;
  EXPECT_EQ(c.Get(10), 100u);
  SegmentedArray<uint64_t> d(std::move(c));
  EXPECT_EQ(d.Get(10), 100u);

  SegmentedArray<uint64_t> dense(16, 3);
  dense.Set(4, 9);
  SegmentedArray<uint64_t> dense_copy(dense);
  EXPECT_TRUE(dense_copy.dense());
  dense_copy.Set(4, 10);
  EXPECT_EQ(dense.Get(4), 9u);
  EXPECT_EQ(dense_copy.Get(4), 10u);
}

TEST(SegmentedArrayTest, NextMaterializedSegmentSkipsHoles) {
  SegmentedArray<uint64_t> a(1024, 0, 64);
  EXPECT_EQ(a.NextMaterializedSegment(0), a.total_segments());
  a.Set(3 * 64, 1);
  a.Set(9 * 64 + 5, 2);
  EXPECT_EQ(a.NextMaterializedSegment(0), 3u);
  EXPECT_EQ(a.NextMaterializedSegment(4), 9u);
  EXPECT_EQ(a.NextMaterializedSegment(10), a.total_segments());
}

}  // namespace
}  // namespace tpftl
