#include "src/util/str.h"

#include <gtest/gtest.h>

namespace tpftl {
namespace {

TEST(SplitTest, BasicSplit) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, PreservesEmptyFields) {
  const auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, NoDelimiter) {
  const auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitTest, EmptyString) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(TrimTest, TrimsAllWhitespaceKinds) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\r\nx\r\n"), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(ParseU64Test, ValidNumbers) {
  EXPECT_EQ(ParseU64("0"), 0u);
  EXPECT_EQ(ParseU64("42"), 42u);
  EXPECT_EQ(ParseU64(" 42 "), 42u);
  EXPECT_EQ(ParseU64("18446744073709551615"), ~0ULL);
}

TEST(ParseU64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseU64("").has_value());
  EXPECT_FALSE(ParseU64("abc").has_value());
  EXPECT_FALSE(ParseU64("12x").has_value());
  EXPECT_FALSE(ParseU64("-1").has_value());
  EXPECT_FALSE(ParseU64("18446744073709551616").has_value());  // Overflow.
}

TEST(ParseI64Test, SignedValues) {
  EXPECT_EQ(ParseI64("-5"), -5);
  EXPECT_EQ(ParseI64("7"), 7);
  EXPECT_FALSE(ParseI64("5.5").has_value());
}

TEST(ParseDoubleTest, ValidDoubles) {
  EXPECT_DOUBLE_EQ(*ParseDouble("0.551706"), 0.551706);
  EXPECT_DOUBLE_EQ(*ParseDouble("3"), 3.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1.5"), -1.5);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("x").has_value());
  EXPECT_FALSE(ParseDouble("1.5junk").has_value());
}

TEST(EqualsIgnoreCaseTest, Comparisons) {
  EXPECT_TRUE(EqualsIgnoreCase("Read", "READ"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("Read", "Write"));
  EXPECT_FALSE(EqualsIgnoreCase("Read", "Reads"));
}

TEST(FormatBytesTest, HumanReadable) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(8704), "8.5 KiB");
  EXPECT_EQ(FormatBytes(512ULL << 20), "512 MiB");
  EXPECT_EQ(FormatBytes(16ULL << 30), "16 GiB");
}

TEST(FormatDoubleTest, FixedDecimals) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace tpftl
