#include "src/util/zipf.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace tpftl {
namespace {

TEST(ZipfTest, SingleElementAlwaysZero) {
  ZipfGenerator zipf(1, 1.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf.Sample(rng), 0u);
  }
}

TEST(ZipfTest, SamplesStayInRange) {
  ZipfGenerator zipf(100, 0.9);
  Rng rng(2);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 100u);
  }
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  constexpr uint64_t kN = 16;
  ZipfGenerator zipf(kN, 0.0);
  Rng rng(3);
  std::vector<int> counts(kN, 0);
  constexpr int kSamples = 160000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / kN, kSamples / kN * 0.1);
  }
}

// For Zipf with exponent theta, P(0)/P(k) == (k + 1)^theta.
TEST(ZipfTest, SkewMatchesTheory) {
  constexpr uint64_t kN = 1000;
  constexpr double kTheta = 1.0;
  ZipfGenerator zipf(kN, kTheta);
  Rng rng(4);
  std::vector<int> counts(kN, 0);
  constexpr int kSamples = 2000000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  // Rank 0 vs rank 9: expected ratio 10^theta = 10.
  const double ratio = static_cast<double>(counts[0]) / static_cast<double>(counts[9]);
  EXPECT_NEAR(ratio, 10.0, 1.5);
  // Monotone non-increasing head.
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[63]);
}

TEST(ZipfTest, HigherThetaConcentratesMass) {
  constexpr uint64_t kN = 10000;
  Rng rng(5);
  auto head_mass = [&](double theta) {
    ZipfGenerator zipf(kN, theta);
    int head = 0;
    constexpr int kSamples = 200000;
    for (int i = 0; i < kSamples; ++i) {
      head += zipf.Sample(rng) < 100 ? 1 : 0;
    }
    return static_cast<double>(head) / kSamples;
  };
  const double low = head_mass(0.5);
  const double high = head_mass(1.2);
  EXPECT_GT(high, low + 0.2);
}

TEST(ZipfTest, ThetaOneBoundaryWorks) {
  ZipfGenerator zipf(64, 1.0);
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 64u);
  }
}

TEST(ZipfTest, DeterministicGivenRngSeed) {
  ZipfGenerator zipf(512, 0.8);
  Rng a(77);
  Rng b(77);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(zipf.Sample(a), zipf.Sample(b));
  }
}

}  // namespace
}  // namespace tpftl
