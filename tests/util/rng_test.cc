#include "src/util/rng.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace tpftl {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng rng(7);
  const uint64_t first = rng.Next();
  rng.Next();
  rng.Seed(7);
  EXPECT_EQ(rng.Next(), first);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Below(1), 0u);
  }
}

TEST(RngTest, BelowCoversAllValues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.Below(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, BelowIsApproximatelyUniform) {
  Rng rng(42);
  constexpr uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.Below(kBuckets)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.Range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(21);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(22);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    sum += rng.NextDouble();
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, ChanceMatchesProbability) {
  Rng rng(32);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    hits += rng.Chance(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

}  // namespace
}  // namespace tpftl
