#include "src/util/histogram.h"

#include <gtest/gtest.h>

namespace tpftl {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h(16);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.CdfAt(10), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

TEST(HistogramTest, CountsExactValues) {
  Histogram h(16);
  h.Add(3);
  h.Add(3);
  h.Add(7);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.CountAt(3), 2u);
  EXPECT_EQ(h.CountAt(7), 1u);
  EXPECT_EQ(h.CountAt(0), 0u);
}

TEST(HistogramTest, MeanIncludesOverflowedValues) {
  Histogram h(4);
  h.Add(2);
  h.Add(10);  // Clamped into the cap bucket for counting, exact for the mean.
  EXPECT_DOUBLE_EQ(h.Mean(), 6.0);
  EXPECT_EQ(h.CountAt(4), 1u);
}

TEST(HistogramTest, CdfIsMonotone) {
  Histogram h(32);
  for (uint64_t v = 0; v < 32; ++v) {
    h.Add(v);
  }
  double prev = -1.0;
  for (uint64_t v = 0; v < 32; ++v) {
    const double c = h.CdfAt(v);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(h.CdfAt(31), 1.0);
  EXPECT_DOUBLE_EQ(h.CdfAt(1000), 1.0);
}

TEST(HistogramTest, QuantileMatchesDistribution) {
  Histogram h(100);
  for (uint64_t v = 1; v <= 100; ++v) {
    h.Add(v);
  }
  EXPECT_NEAR(h.Quantile(0.5), 50, 2);
  EXPECT_NEAR(h.Quantile(0.9), 90, 2);
  EXPECT_EQ(h.Quantile(1.0), 100u);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a(8);
  Histogram b(8);
  a.Add(1);
  b.Add(1);
  b.Add(2);
  a.Merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.CountAt(1), 2u);
  EXPECT_EQ(a.CountAt(2), 1u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h(8);
  h.Add(5);
  h.Reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.CountAt(5), 0u);
}

TEST(HistogramTest, OverflowCountsClampedSamples) {
  Histogram h(4);
  h.Add(4);  // At the cap: exact, not an overflow.
  EXPECT_EQ(h.overflow(), 0u);
  h.Add(5);
  h.Add(100);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.CountAt(4), 3u);  // Cap bucket aggregates all three.
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, MergePropagatesOverflow) {
  Histogram a(4);
  Histogram b(4);
  a.Add(9);
  b.Add(9);
  b.Add(2);
  a.Merge(b);
  EXPECT_EQ(a.overflow(), 2u);
}

TEST(HistogramTest, ResetClearsOverflow) {
  Histogram h(4);
  h.Add(9);
  h.Reset();
  EXPECT_EQ(h.overflow(), 0u);
}

}  // namespace
}  // namespace tpftl
