#include "src/util/running_stats.h"

#include <gtest/gtest.h>

namespace tpftl {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // Sample variance.
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats s;
  s.Add(-3.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.Add(1.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

}  // namespace
}  // namespace tpftl
