#include "src/util/logging.h"

#include <gtest/gtest.h>

namespace tpftl {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(previous_); }
  LogLevel previous_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kOff);
  EXPECT_EQ(GetLogLevel(), LogLevel::kOff);
}

TEST_F(LoggingTest, BelowThresholdDoesNotEvaluateSinkButStreamsSafely) {
  SetLogLevel(LogLevel::kOff);
  // Must compile and run without emitting; values still stream type-safely.
  TPFTL_LOG(kDebug) << "value " << 42 << " and " << 3.14;
  TPFTL_LOG(kError) << "suppressed too";
  SUCCEED();
}

TEST_F(LoggingTest, EmitsToStderrAtOrAboveThreshold) {
  SetLogLevel(LogLevel::kWarning);
  ::testing::internal::CaptureStderr();
  TPFTL_LOG(kWarning) << "warn-line";
  TPFTL_LOG(kInfo) << "info-dropped";
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[WARN] warn-line"), std::string::npos);
  EXPECT_EQ(err.find("info-dropped"), std::string::npos);
}

}  // namespace
}  // namespace tpftl
