// Block endurance and bad-block retirement (§1: limited erase cycles).

#include <gtest/gtest.h>

#include "src/ftl/block_manager.h"
#include "src/ftl/optimal_ftl.h"
#include "src/util/rng.h"
#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::SmallGeometry;

TEST(EnduranceTest, UnlimitedByDefault) {
  NandFlash flash(SmallGeometry());
  for (int i = 0; i < 100; ++i) {
    Ppn ppn = kInvalidPpn;
    flash.ProgramPage(0, 1, &ppn);
    flash.InvalidatePage(ppn);
    flash.EraseBlock(0);
  }
  EXPECT_FALSE(flash.IsWornOut(0));
}

TEST(EnduranceTest, WearsOutAtBudget) {
  FlashGeometry g = SmallGeometry();
  g.max_erase_cycles = 3;
  NandFlash flash(g);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(flash.IsWornOut(0));
    Ppn ppn = kInvalidPpn;
    flash.ProgramPage(0, 1, &ppn);
    flash.InvalidatePage(ppn);
    flash.EraseBlock(0);
  }
  EXPECT_TRUE(flash.IsWornOut(0));
  EXPECT_FALSE(flash.IsWornOut(1));
}

TEST(EnduranceTest, BlockManagerRetiresWornBlocks) {
  FlashGeometry g = SmallGeometry(8);
  g.max_erase_cycles = 1;
  NandFlash flash(g);
  BlockManager bm(&flash, 1);
  // Fill one block, kill it, collect it: its single allowed erase is spent,
  // so it must not reappear in the free pool.
  std::vector<Ppn> ppns;
  for (uint64_t i = 0; i < g.pages_per_block; ++i) {
    Ppn p = kInvalidPpn;
    bm.Program(BlockPool::kData, i, &p);
    ppns.push_back(p);
  }
  for (const Ppn p : ppns) {
    bm.Invalidate(p);
  }
  const BlockId victim = bm.PickVictim();
  ASSERT_NE(victim, kInvalidBlock);
  const uint64_t free_before = bm.free_block_count();
  bm.EraseAndFree(victim);
  EXPECT_EQ(bm.free_block_count(), free_before);  // Retired, not freed.
  EXPECT_EQ(bm.bad_block_count(), 1u);
  EXPECT_EQ(bm.PoolOf(victim), BlockPool::kNone);
}

// Pre-consumes all but one erase cycle of `block`, leaving it erased/free.
void PreWear(NandFlash& flash, BlockId block, uint64_t cycles) {
  for (uint64_t i = 0; i < cycles; ++i) {
    Ppn ppn = kInvalidPpn;
    flash.ProgramPage(block, 0, &ppn);
    flash.InvalidatePage(ppn);
    flash.EraseBlock(block);
  }
}

TEST(EnduranceTest, DeviceOperatesWhileSparesLast) {
  // Blocks near the end of their life retire as traffic recycles them; the
  // FTL keeps serving on the remaining pool and stays consistent.
  testing::World w = testing::MakeWorld(1024, 64, /*total_blocks=*/96);
  w.geometry.max_erase_cycles = 50;
  w.flash = std::make_unique<NandFlash>(w.geometry);
  w.env.flash = w.flash.get();
  for (BlockId b = 70; b < 80; ++b) {
    PreWear(*w.flash, b, 49);  // One recycle away from retirement.
  }
  OptimalFtl ftl(w.env);
  for (Lpn lpn = 0; lpn < 1024; ++lpn) {
    ftl.WritePage(lpn);
  }
  Rng rng(8);
  for (int i = 0; i < 8000; ++i) {
    ftl.WritePage(rng.Below(128));  // Hot churn recycles the spare rotation.
  }
  EXPECT_GT(ftl.block_manager().bad_block_count(), 0u);
  EXPECT_LE(ftl.block_manager().bad_block_count(), 10u);
  for (Lpn lpn = 0; lpn < 1024; ++lpn) {
    ASSERT_NE(ftl.Probe(lpn), kInvalidPpn);
  }
}

TEST(EnduranceTest, WearAwarePolicyNeverRetiresMoreBlocks) {
  // Victim selection is where wear awareness protects worn blocks. Its
  // quality sacrifice is survival-bounded (a worn block is still taken when
  // no near-equivalent victim exists), so the guarantee is one-sided: under
  // identical traffic it never retires MORE blocks than greedy, and the
  // wear-spread narrowing is covered by GcPolicyTest.WearAwareNarrowsWearSpread.
  auto bad_after_traffic = [](GcPolicy policy) -> uint64_t {
    testing::World w = testing::MakeWorld(1024, 64, 96);
    w.geometry.max_erase_cycles = 60;
    w.flash = std::make_unique<NandFlash>(w.geometry);
    w.env.flash = w.flash.get();
    w.env.gc_policy = policy;
    w.env.wear_spread_limit = 4;
    for (BlockId b = 70; b < 80; ++b) {
      PreWear(*w.flash, b, 59);
    }
    OptimalFtl ftl(w.env);
    for (Lpn lpn = 0; lpn < 1024; ++lpn) {
      ftl.WritePage(lpn);
    }
    Rng rng(9);
    for (uint64_t i = 0; i < 8000; ++i) {
      ftl.WritePage(rng.Below(128));
    }
    return ftl.block_manager().bad_block_count();
  };
  const uint64_t greedy = bad_after_traffic(GcPolicy::kGreedy);
  const uint64_t wear_aware = bad_after_traffic(GcPolicy::kWearAware);
  EXPECT_LE(wear_aware, greedy);
}

}  // namespace
}  // namespace tpftl
