// Per-die timeline model and bit-sliced addressing.
//
// The multi-die contract: ops on distinct dies issued in the same request
// window overlap (request finish = max over dies), ops on the same die
// serialize, and the single-die configuration never touches the timeline
// machinery at all (bit-identity with the flat device).

#include <gtest/gtest.h>

#include "src/flash/geometry.h"
#include "src/flash/nand.h"
#include "src/testing/world.h"

namespace tpftl {
namespace {

FlashGeometry ParallelSmall(uint64_t total_blocks, uint32_t channels, uint32_t dies,
                            uint32_t planes = 1) {
  FlashGeometry g = testing::SmallGeometry(total_blocks);
  g.channels = channels;
  g.dies_per_channel = dies;
  g.planes_per_die = planes;
  return g;
}

TEST(GeometryBitSlice, DieStripesOverLowBlockBits) {
  const FlashGeometry g = ParallelSmall(96, 2, 2);
  ASSERT_EQ(g.total_dies(), 4u);
  ASSERT_TRUE(g.ParallelLayoutValid());
  // Consecutive block ids visit every die before repeating.
  EXPECT_EQ(g.DieOfBlock(0), 0u);
  EXPECT_EQ(g.DieOfBlock(1), 1u);
  EXPECT_EQ(g.DieOfBlock(2), 2u);
  EXPECT_EQ(g.DieOfBlock(3), 3u);
  EXPECT_EQ(g.DieOfBlock(4), 0u);
  // Dies interleave channel-first.
  EXPECT_EQ(g.ChannelOfDie(0), 0u);
  EXPECT_EQ(g.ChannelOfDie(1), 1u);
  EXPECT_EQ(g.ChannelOfDie(2), 0u);
  EXPECT_EQ(g.ChannelOfDie(3), 1u);
}

TEST(GeometryBitSlice, DecomposeComposeRoundTripsEveryPage) {
  const FlashGeometry g = ParallelSmall(64, 2, 2, 2);
  ASSERT_TRUE(g.ParallelLayoutValid());
  for (Ppn ppn = 0; ppn < g.total_pages(); ++ppn) {
    const FlashAddress a = g.DecomposePpn(ppn);
    EXPECT_LT(a.channel, g.channels);
    EXPECT_LT(a.die, g.dies_per_channel);
    EXPECT_LT(a.plane, g.planes_per_die);
    EXPECT_LT(a.page, g.pages_per_block);
    EXPECT_EQ(g.ComposePpn(a), ppn);
    EXPECT_EQ(a.channel, g.ChannelOfDie(g.DieOf(ppn)));
  }
}

TEST(GeometryBitSlice, SingleDieCollapsesToFlatLayout) {
  const FlashGeometry g = testing::SmallGeometry(96);
  ASSERT_EQ(g.total_dies(), 1u);
  for (Ppn ppn : {Ppn{0}, Ppn{17}, Ppn{96 * 16 - 1}}) {
    EXPECT_EQ(g.DieOf(ppn), 0u);
    const FlashAddress a = g.DecomposePpn(ppn);
    EXPECT_EQ(a.channel, 0u);
    EXPECT_EQ(a.die, 0u);
    EXPECT_EQ(a.plane, 0u);
    EXPECT_EQ(a.block, g.BlockOf(ppn));
    EXPECT_EQ(a.page, g.OffsetOf(ppn));
  }
}

TEST(GeometryParallel, MakeGeometryParallelStripesUniformly) {
  const FlashGeometry g = MakeGeometryParallel(64ULL << 20, 2, 4);
  EXPECT_EQ(g.total_dies(), 8u);
  EXPECT_EQ(g.total_blocks % 8, 0u);
  // The default 1×1×1 is bit-identical to MakeGeometry.
  const FlashGeometry flat = MakeGeometryParallel(64ULL << 20, 1, 1);
  EXPECT_EQ(flat.total_blocks, MakeGeometry(64ULL << 20).total_blocks);
}

TEST(ParallelTiming, IndependentDiesOverlapInOneRequest) {
  const FlashGeometry g = ParallelSmall(96, 1, 4);
  NandFlash flash(g);
  ASSERT_TRUE(flash.multi_die());
  // Program one page on each of the four dies (blocks 0..3 are dies 0..3)
  // inside a single request window anchored at t = 0.
  flash.BeginRequestAt(0.0);
  for (BlockId b = 0; b < 4; ++b) {
    Ppn ppn = kInvalidPpn;
    flash.ProgramPage(b, /*oob_tag=*/b, &ppn, OobKind::kData);
    ASSERT_NE(ppn, kInvalidPpn);
  }
  // Overlapped: the request finishes after ONE program latency, not four.
  EXPECT_DOUBLE_EQ(flash.request_finish_us(), g.page_write_us);
  for (uint32_t d = 0; d < 4; ++d) {
    EXPECT_DOUBLE_EQ(flash.die_free_at(d), g.page_write_us);
    EXPECT_DOUBLE_EQ(flash.die_busy_us(d), g.page_write_us);
  }
}

TEST(ParallelTiming, SameDieSerializesWithinARequest) {
  const FlashGeometry g = ParallelSmall(96, 1, 4);
  NandFlash flash(g);
  flash.BeginRequestAt(0.0);
  Ppn ppn = kInvalidPpn;
  flash.ProgramPage(0, 1, &ppn, OobKind::kData);
  flash.ProgramPage(0, 2, &ppn, OobKind::kData);  // Same block → same die.
  EXPECT_DOUBLE_EQ(flash.request_finish_us(), 2 * g.page_write_us);
  EXPECT_DOUBLE_EQ(flash.die_free_at(0), 2 * g.page_write_us);
  EXPECT_DOUBLE_EQ(flash.die_busy_us(1), 0.0);
}

TEST(ParallelTiming, LaterRequestQueuesBehindBusyDie) {
  const FlashGeometry g = ParallelSmall(96, 1, 2);
  NandFlash flash(g);
  flash.BeginRequestAt(0.0);
  Ppn ppn = kInvalidPpn;
  flash.ProgramPage(0, 1, &ppn, OobKind::kData);  // Die 0 busy until 200.
  // A request arriving at t = 50 touching die 0 waits for it; die 1 is idle.
  flash.BeginRequestAt(50.0);
  flash.ProgramPage(0, 2, &ppn, OobKind::kData);   // die 0: starts at 200.
  flash.ProgramPage(1, 3, &ppn, OobKind::kData);   // die 1: starts at 50.
  EXPECT_DOUBLE_EQ(flash.die_free_at(0), 2 * g.page_write_us);
  EXPECT_DOUBLE_EQ(flash.die_free_at(1), 50.0 + g.page_write_us);
  EXPECT_DOUBLE_EQ(flash.request_finish_us(), 2 * g.page_write_us);
}

TEST(ParallelTiming, ReadsProgramsErasesAllChargeTheirDie) {
  const FlashGeometry g = ParallelSmall(96, 2, 2);
  NandFlash flash(g);
  flash.BeginRequestAt(0.0);
  Ppn ppn = kInvalidPpn;
  flash.ProgramPage(5, 1, &ppn, OobKind::kData);  // Block 5 → die 1.
  flash.ReadPage(ppn);
  flash.InvalidatePage(ppn);
  flash.EraseBlock(5);
  const MicroSec expect = g.page_write_us + g.page_read_us + g.block_erase_us;
  EXPECT_DOUBLE_EQ(flash.die_busy_us(1), expect);
  EXPECT_DOUBLE_EQ(flash.die_free_at(1), expect);
  EXPECT_DOUBLE_EQ(flash.die_busy_us(0), 0.0);
}

TEST(ParallelTiming, SingleDieDeviceKeepsTimelinesDormant) {
  const FlashGeometry g = testing::SmallGeometry(96);
  NandFlash flash(g);
  EXPECT_FALSE(flash.multi_die());
  Ppn ppn = kInvalidPpn;
  flash.ProgramPage(0, 1, &ppn, OobKind::kData);
  flash.ReadPage(ppn);
  // The legacy scalar path never advances the (single) die timeline.
  EXPECT_DOUBLE_EQ(flash.die_free_at(0), 0.0);
  EXPECT_DOUBLE_EQ(flash.die_busy_us(0), 0.0);
}

TEST(ParallelTiming, ResetStatsClearsBusyButKeepsTimeline) {
  const FlashGeometry g = ParallelSmall(96, 1, 2);
  NandFlash flash(g);
  flash.BeginRequestAt(0.0);
  Ppn ppn = kInvalidPpn;
  flash.ProgramPage(0, 1, &ppn, OobKind::kData);
  flash.ResetStats();
  // Busy accounting restarts; the physical busy-until horizon persists so
  // post-reset requests still queue behind in-flight work.
  EXPECT_DOUBLE_EQ(flash.die_busy_us(0), 0.0);
  EXPECT_DOUBLE_EQ(flash.die_free_at(0), g.page_write_us);
}

TEST(ParallelTiming, GeometryRejectsNonUniformStriping) {
  FlashGeometry g = testing::SmallGeometry(97);  // 97 % 4 != 0.
  g.dies_per_channel = 4;
  EXPECT_DEATH({ NandFlash flash(g); }, "stripe uniformly");
}

}  // namespace
}  // namespace tpftl
