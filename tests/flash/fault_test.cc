// NAND fault injection and power-cut snapshot/restore (flash/fault.h).

#include <gtest/gtest.h>

#include "src/flash/fault.h"
#include "src/flash/nand.h"
#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::SmallGeometry;

TEST(FaultTest, ProgramFailureConsumesThePageWithTornOob) {
  NandFlash flash(SmallGeometry(8));
  FaultPlan plan;
  plan.fail_program_at = {2};
  flash.InstallFaultPlan(plan);

  Ppn p1 = kInvalidPpn;
  flash.ProgramPage(0, /*oob_tag=*/11, &p1);
  ASSERT_NE(p1, kInvalidPpn);
  EXPECT_GT(flash.OobSeq(p1), 0u);
  EXPECT_EQ(flash.OobKindOf(p1), OobKind::kData);

  // Op 2 fails: the page is consumed as unreadable, no PPN handed out.
  Ppn p2 = kInvalidPpn;
  const MicroSec t = flash.ProgramPage(0, /*oob_tag=*/22, &p2);
  EXPECT_EQ(p2, kInvalidPpn);
  EXPECT_GT(t, 0.0);  // Failed programs still cost device time.
  const Ppn burned = flash.geometry().PpnOf(0, 1);
  EXPECT_EQ(flash.StateOf(burned), PageState::kInvalid);
  EXPECT_EQ(flash.OobSeq(burned), 0u);
  EXPECT_EQ(flash.OobKindOf(burned), OobKind::kNone);
  EXPECT_EQ(flash.stats().program_failures, 1u);

  // The retry (op 3) lands on the next page.
  Ppn p3 = kInvalidPpn;
  flash.ProgramPage(0, /*oob_tag=*/22, &p3);
  EXPECT_EQ(p3, flash.geometry().PpnOf(0, 2));
  EXPECT_EQ(flash.OobTag(p3), 22u);
}

TEST(FaultTest, ProbabilisticFailuresAreSeedDeterministic) {
  auto run = [](uint64_t seed) {
    NandFlash flash(SmallGeometry(8));
    FaultPlan plan;
    plan.seed = seed;
    plan.program_fail_prob = 0.3;
    flash.InstallFaultPlan(plan);
    std::vector<bool> failed;
    for (int i = 0; i < 32; ++i) {
      Ppn ppn = kInvalidPpn;
      flash.ProgramPage(i / 16, static_cast<uint64_t>(i), &ppn);
      failed.push_back(ppn == kInvalidPpn);
    }
    return failed;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // Different seed, different pattern.
}

TEST(FaultTest, EraseFailureMarksTheBlockBadAndKeepsContents) {
  NandFlash flash(SmallGeometry(8));
  Ppn ppn = kInvalidPpn;
  flash.ProgramPage(0, 5, &ppn);
  flash.InvalidatePage(ppn);

  FaultPlan plan;
  plan.fail_erase_at = {flash.op_index() + 1};
  flash.InstallFaultPlan(plan);
  flash.EraseBlock(0);
  EXPECT_TRUE(flash.IsBad(0));
  EXPECT_EQ(flash.StateOf(ppn), PageState::kInvalid);  // Contents intact.
  EXPECT_EQ(flash.stats().erase_failures, 1u);
  EXPECT_EQ(flash.stats().block_erases, 0u);
}

TEST(FaultTest, FactoryBadBlocksAreMarkedAtInstall) {
  NandFlash flash(SmallGeometry(8));
  FaultPlan plan;
  plan.bad_blocks = {3, 5};
  flash.InstallFaultPlan(plan);
  EXPECT_TRUE(flash.IsBad(3));
  EXPECT_TRUE(flash.IsBad(5));
  EXPECT_FALSE(flash.IsBad(0));
}

TEST(FaultTest, FailIndicesForTheWrongOpKindNeverFire) {
  NandFlash flash(SmallGeometry(8));
  FaultPlan plan;
  plan.fail_erase_at = {1};  // Op 1 will be a program; must not fail it.
  flash.InstallFaultPlan(plan);
  Ppn ppn = kInvalidPpn;
  flash.ProgramPage(0, 1, &ppn);
  EXPECT_NE(ppn, kInvalidPpn);
  EXPECT_EQ(flash.stats().program_failures, 0u);
  EXPECT_EQ(flash.stats().erase_failures, 0u);
}

TEST(FaultTest, PowerCutRestoreRollsBackToTheCutInstant) {
  NandFlash flash(SmallGeometry(8));
  FaultPlan plan;
  plan.power_cut_at_op = 3;
  flash.InstallFaultPlan(plan);

  Ppn p1 = kInvalidPpn, p2 = kInvalidPpn, p3 = kInvalidPpn, p4 = kInvalidPpn;
  flash.ProgramPage(0, 1, &p1);
  flash.ProgramPage(0, 2, &p2);
  EXPECT_FALSE(flash.power_cut_triggered());
  flash.ProgramPage(0, 3, &p3);  // The cut op: this program is torn.
  EXPECT_TRUE(flash.power_cut_triggered());
  // Simulation continues normally past the cut; everything is discarded.
  flash.ProgramPage(0, 4, &p4);
  flash.InvalidatePage(p1);
  const uint64_t writes_before_restore = flash.stats().page_writes;
  ASSERT_EQ(writes_before_restore, 4u);

  flash.RestoreToCutInstant();
  EXPECT_FALSE(flash.power_cut_triggered());
  // Pre-cut state survives, including OOB.
  EXPECT_EQ(flash.StateOf(p1), PageState::kValid);
  EXPECT_EQ(flash.OobTag(p2), 2u);
  // The cut program is torn: consumed, unreadable.
  EXPECT_EQ(flash.StateOf(p3), PageState::kInvalid);
  EXPECT_EQ(flash.OobSeq(p3), 0u);
  EXPECT_EQ(flash.OobKindOf(p3), OobKind::kNone);
  // The post-cut program is undone.
  EXPECT_EQ(flash.StateOf(p4), PageState::kFree);
  EXPECT_EQ(flash.stats().page_writes, 2u);

  // Power is back: the plan is gone, new programs succeed and sequence
  // numbers continue past the pre-cut ones.
  Ppn p5 = kInvalidPpn;
  flash.ProgramPage(0, 5, &p5);
  ASSERT_NE(p5, kInvalidPpn);
  EXPECT_GT(flash.OobSeq(p5), flash.OobSeq(p2));
}

TEST(FaultTest, PowerCutOnAnEraseDiscardsTheErase) {
  NandFlash flash(SmallGeometry(8));
  Ppn ppn = kInvalidPpn;
  flash.ProgramPage(0, 9, &ppn);
  flash.InvalidatePage(ppn);

  FaultPlan plan;
  plan.power_cut_at_op = flash.op_index() + 1;
  flash.InstallFaultPlan(plan);
  flash.EraseBlock(0);
  ASSERT_TRUE(flash.power_cut_triggered());
  flash.RestoreToCutInstant();
  // The interrupted erase never happened: contents and erase count intact.
  EXPECT_EQ(flash.StateOf(ppn), PageState::kInvalid);
  EXPECT_EQ(flash.block(0).erase_count(), 0u);
}

TEST(FaultTest, OobSequenceNumbersAreDeviceWideMonotonic) {
  NandFlash flash(SmallGeometry(8));
  uint64_t last_seq = 0;
  for (int i = 0; i < 24; ++i) {
    Ppn ppn = kInvalidPpn;
    flash.ProgramPage(static_cast<BlockId>(i % 3), static_cast<uint64_t>(i), &ppn,
                      i % 2 == 0 ? OobKind::kData : OobKind::kTranslation);
    ASSERT_NE(ppn, kInvalidPpn);
    EXPECT_GT(flash.OobSeq(ppn), last_seq);
    last_seq = flash.OobSeq(ppn);
    EXPECT_EQ(flash.OobKindOf(ppn), i % 2 == 0 ? OobKind::kData : OobKind::kTranslation);
  }
}

}  // namespace
}  // namespace tpftl
