// Device metadata log: dirty-block journaling, checkpoint epochs, torn and
// corrupted records, trims, billing, and power-cut rollback (flash/meta.h).

#include <gtest/gtest.h>

#include "src/flash/fault.h"
#include "src/flash/meta.h"
#include "src/flash/nand.h"
#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::SmallGeometry;

TEST(MetaLogTest, JournalsFirstProgramPerBlockPerEpoch) {
  NandFlash flash(SmallGeometry(8));
  flash.EnableMetaJournal(true);

  Ppn ppn = kInvalidPpn;
  flash.ProgramPage(2, 11, &ppn);
  flash.ProgramPage(2, 12, &ppn);  // Same block, same epoch: no new record.
  flash.ProgramPage(5, 13, &ppn, OobKind::kTranslation);

  ASSERT_EQ(flash.meta_log().size(), 2u);
  const MetaRecord& first = flash.meta_log()[0];
  EXPECT_EQ(first.seq, 1u);
  EXPECT_EQ(first.type, MetaRecordType::kBlockDirty);
  ASSERT_EQ(first.payload.size(), 2u);
  EXPECT_EQ(first.payload[0], 2u);
  EXPECT_EQ(first.payload[1], static_cast<uint64_t>(OobKind::kData));
  EXPECT_TRUE(MetaRecordVerifies(first));

  const MetaRecord& second = flash.meta_log()[1];
  EXPECT_EQ(second.seq, 2u);
  EXPECT_EQ(second.payload[0], 5u);
  EXPECT_EQ(second.payload[1], static_cast<uint64_t>(OobKind::kTranslation));

  // A checkpoint advances the epoch: the next program re-journals its block.
  flash.AppendMetaRecord(MetaRecordType::kCheckpoint, {0, 0});
  EXPECT_EQ(flash.meta_epoch(), 1u);
  flash.ProgramPage(2, 14, &ppn);
  ASSERT_EQ(flash.meta_log().size(), 4u);
  EXPECT_EQ(flash.meta_log()[3].payload[0], 2u);
  EXPECT_EQ(flash.meta_log()[3].seq, 4u);
}

TEST(MetaLogTest, JournalDisabledByDefault) {
  NandFlash flash(SmallGeometry(8));
  Ppn ppn = kInvalidPpn;
  flash.ProgramPage(0, 1, &ppn);
  EXPECT_TRUE(flash.meta_log().empty());
  EXPECT_EQ(flash.stats().meta_appends, 0u);
}

TEST(MetaLogTest, EraseResetsBlockSummaryAndRejournalsWithNewKind) {
  NandFlash flash(SmallGeometry(8));
  flash.EnableMetaJournal(true);

  Ppn ppn = kInvalidPpn;
  flash.ProgramPage(3, 7, &ppn);
  EXPECT_EQ(flash.block_newest_seq(3), flash.OobSeq(ppn));
  flash.InvalidatePage(ppn);
  flash.EraseBlock(3);
  EXPECT_EQ(flash.block_newest_seq(3), 0u);

  // Still the same epoch, but the erase cleared the block's journal mark:
  // its re-allocation (possibly to a different pool) journals again.
  flash.ProgramPage(3, 8, &ppn, OobKind::kTranslation);
  ASSERT_EQ(flash.meta_log().size(), 2u);
  EXPECT_EQ(flash.meta_log()[1].payload[0], 3u);
  EXPECT_EQ(flash.meta_log()[1].payload[1], static_cast<uint64_t>(OobKind::kTranslation));
  EXPECT_EQ(flash.block_newest_seq(3), flash.OobSeq(ppn));
}

TEST(MetaLogTest, AppendBillingIsByteProportionalAndSeparateFromPageWrites) {
  NandFlash flash(SmallGeometry(8));
  const FlashStats before = flash.stats();
  const MicroSec t = flash.AppendMetaRecord(MetaRecordType::kCheckpoint, {1, 0, 5, 7, 9});
  const uint64_t bytes = flash.meta_log()[0].size_bytes();
  EXPECT_EQ(bytes, 8u * (4u + 5u));
  EXPECT_DOUBLE_EQ(t, flash.geometry().page_write_us * static_cast<double>(bytes) /
                          static_cast<double>(flash.geometry().page_size_bytes));
  EXPECT_EQ(flash.stats().meta_appends, 1u);
  EXPECT_EQ(flash.stats().meta_bytes_written, bytes);
  EXPECT_EQ(flash.stats().page_writes, before.page_writes);
  EXPECT_DOUBLE_EQ(flash.stats().busy_time_us, before.busy_time_us + t);
}

TEST(MetaLogTest, TrimDropsRecordsBeforeSeq) {
  NandFlash flash(SmallGeometry(8));
  flash.AppendMetaRecord(MetaRecordType::kBlockDirty, {0, 1});
  flash.AppendMetaRecord(MetaRecordType::kBlockDirty, {1, 1});
  flash.AppendMetaRecord(MetaRecordType::kCheckpoint, {0, 0});
  flash.TrimMetaLogBefore(3);
  ASSERT_EQ(flash.meta_log().size(), 1u);
  EXPECT_EQ(flash.meta_log()[0].seq, 3u);
  EXPECT_EQ(flash.meta_log()[0].type, MetaRecordType::kCheckpoint);
  EXPECT_EQ(flash.stats().meta_trims, 1u);
  // Seqs keep counting past the trim — no gap is introduced.
  flash.AppendMetaRecord(MetaRecordType::kBlockDirty, {2, 1});
  EXPECT_EQ(flash.meta_log()[1].seq, 4u);
}

TEST(MetaLogTest, PowerCutOnAppendLeavesTornTailAfterRestore) {
  NandFlash flash(SmallGeometry(8));
  flash.EnableMetaJournal(true);
  Ppn ppn = kInvalidPpn;
  flash.ProgramPage(0, 1, &ppn);  // Ops 1 (journal append) + 2 (program).

  FaultPlan plan;
  plan.power_cut_at_op = 3;  // The journal append for block 1.
  flash.InstallFaultPlan(plan);
  flash.ProgramPage(1, 2, &ppn);  // Append torn at op 3; program is op 4.
  ASSERT_TRUE(flash.power_cut_triggered());
  // Post-cut activity that must be rolled back wholesale.
  flash.ProgramPage(4, 3, &ppn);

  flash.RestoreToCutInstant();
  ASSERT_EQ(flash.meta_log().size(), 2u);
  EXPECT_TRUE(MetaRecordVerifies(flash.meta_log()[0]));
  const MetaRecord& torn = flash.meta_log()[1];
  EXPECT_EQ(torn.seq, 2u);
  EXPECT_FALSE(MetaRecordVerifies(torn));
  // The guarded program (op 4) never happened: WAL ordering holds.
  EXPECT_EQ(flash.block(1).free_pages(), flash.geometry().pages_per_block);
  EXPECT_EQ(flash.block(4).free_pages(), flash.geometry().pages_per_block);
  // The torn append still consumed its sequence number.
  flash.AppendMetaRecord(MetaRecordType::kCheckpoint, {0, 0});
  EXPECT_EQ(flash.meta_log().back().seq, 3u);
}

TEST(MetaLogTest, PowerCutOnTornCheckpointRollsEpochBack) {
  NandFlash flash(SmallGeometry(8));
  FaultPlan plan;
  plan.power_cut_at_op = 1;
  flash.InstallFaultPlan(plan);
  flash.AppendMetaRecord(MetaRecordType::kCheckpoint, {0, 0});
  ASSERT_TRUE(flash.power_cut_triggered());
  flash.RestoreToCutInstant();
  EXPECT_EQ(flash.meta_epoch(), 0u);  // The torn checkpoint never counted.
  ASSERT_EQ(flash.meta_log().size(), 1u);
  EXPECT_FALSE(MetaRecordVerifies(flash.meta_log()[0]));
}

TEST(MetaLogTest, PowerCutOnTrimDiscardsItWholesale) {
  NandFlash flash(SmallGeometry(8));
  flash.AppendMetaRecord(MetaRecordType::kBlockDirty, {0, 1});
  flash.AppendMetaRecord(MetaRecordType::kCheckpoint, {0, 0});
  FaultPlan plan;
  plan.power_cut_at_op = 3;
  flash.InstallFaultPlan(plan);
  flash.TrimMetaLogBefore(2);
  ASSERT_TRUE(flash.power_cut_triggered());
  flash.RestoreToCutInstant();
  ASSERT_EQ(flash.meta_log().size(), 2u);  // Trim rolled back; no torn state.
  EXPECT_TRUE(MetaRecordVerifies(flash.meta_log()[0]));
  EXPECT_TRUE(MetaRecordVerifies(flash.meta_log()[1]));
}

TEST(MetaLogTest, TestHooksModelBitRotAndSequenceGaps) {
  NandFlash flash(SmallGeometry(8));
  flash.AppendMetaRecord(MetaRecordType::kBlockDirty, {0, 1});
  flash.AppendMetaRecord(MetaRecordType::kBlockDirty, {1, 1});
  flash.AppendMetaRecord(MetaRecordType::kBlockDirty, {2, 1});

  flash.TestOnlyCorruptMetaRecord(1);
  EXPECT_TRUE(MetaRecordVerifies(flash.meta_log()[0]));
  EXPECT_FALSE(MetaRecordVerifies(flash.meta_log()[1]));

  flash.TestOnlyDropMetaRecord(1);
  ASSERT_EQ(flash.meta_log().size(), 2u);
  EXPECT_EQ(flash.meta_log()[0].seq, 1u);
  EXPECT_EQ(flash.meta_log()[1].seq, 3u);  // Gap: 2 is missing.
}

TEST(MetaLogTest, CheckpointFoldsGtdDeltasIntoDirectory) {
  NandFlash flash(SmallGeometry(8));
  EXPECT_EQ(flash.checkpoint_gtd_ppn(0), kInvalidPpn);
  flash.AppendMetaRecord(MetaRecordType::kCheckpoint, {2, 0, /*vtpn=*/0, 10, 5,
                                                       /*vtpn=*/3, 20, 6});
  EXPECT_EQ(flash.checkpoint_gtd_ppn(0), 10u);
  EXPECT_EQ(flash.checkpoint_gtd_seq(0), 5u);
  EXPECT_EQ(flash.checkpoint_gtd_ppn(3), 20u);
  EXPECT_EQ(flash.checkpoint_gtd_ppn(1), kInvalidPpn);

  // Deltas are cumulative: the next checkpoint only touches what it names.
  flash.AppendMetaRecord(MetaRecordType::kCheckpoint, {1, 0, /*vtpn=*/0, 11, 7});
  EXPECT_EQ(flash.checkpoint_gtd_ppn(0), 11u);
  EXPECT_EQ(flash.checkpoint_gtd_ppn(3), 20u);
  EXPECT_EQ(flash.meta_records_since_checkpoint(), 0u);

  // A torn checkpoint's fold rolls back with the cut.
  FaultPlan plan;
  plan.power_cut_at_op = flash.op_index() + 1;
  flash.InstallFaultPlan(plan);
  flash.AppendMetaRecord(MetaRecordType::kCheckpoint, {1, 0, /*vtpn=*/0, 12, 8});
  flash.RestoreToCutInstant();
  EXPECT_EQ(flash.checkpoint_gtd_ppn(0), 11u);
  EXPECT_FALSE(MetaRecordVerifies(flash.meta_log().back()));
}

TEST(MetaLogTest, BlockPoolKindTracksReadablePages) {
  NandFlash flash(SmallGeometry(8));
  EXPECT_EQ(flash.block_pool_kind(2), OobKind::kNone);
  Ppn ppn = kInvalidPpn;
  flash.ProgramPage(2, 1, &ppn, OobKind::kTranslation);
  EXPECT_EQ(flash.block_pool_kind(2), OobKind::kTranslation);
  flash.InvalidatePage(ppn);
  flash.EraseBlock(2);
  EXPECT_EQ(flash.block_pool_kind(2), OobKind::kNone);
  flash.ProgramPage(2, 1, &ppn);
  EXPECT_EQ(flash.block_pool_kind(2), OobKind::kData);

  // A torn-only block stays kNone (no readable pages).
  FaultPlan plan;
  plan.fail_program_at = {flash.op_index() + 1};
  flash.InstallFaultPlan(plan);
  flash.ProgramPage(6, 9, &ppn);
  EXPECT_EQ(ppn, kInvalidPpn);
  EXPECT_EQ(flash.block_pool_kind(6), OobKind::kNone);
  EXPECT_EQ(flash.block_newest_seq(6), 0u);
}

TEST(MetaLogTest, PersistedMirrorSurvivesOnlyUpToTheCut) {
  NandFlash flash(SmallGeometry(8));
  flash.SetPersistedMapping(5, 100);
  EXPECT_EQ(flash.PersistedMapping(5), 100u);
  EXPECT_EQ(flash.PersistedMapping(6), kInvalidPpn);

  FaultPlan plan;
  plan.power_cut_at_op = 1;
  flash.InstallFaultPlan(plan);
  Ppn ppn = kInvalidPpn;
  flash.ProgramPage(0, 1, &ppn);  // The cut op.
  flash.SetPersistedMapping(5, 200);  // After the cut: rolled back.
  flash.RestoreToCutInstant();
  EXPECT_EQ(flash.PersistedMapping(5), 100u);
}

TEST(MetaLogTest, SparseGeometryKeepsResidentSegmentsProportionalToFootprint) {
  FlashGeometry g = SmallGeometry(64);
  g.sparse_segment_pages = g.entries_per_translation_page();
  NandFlash flash(g);
  const uint64_t before = flash.ResidentSegments();
  Ppn ppn = kInvalidPpn;
  flash.ProgramPage(0, 1, &ppn);
  EXPECT_GT(flash.ResidentSegments(), before);
  EXPECT_LT(flash.ResidentSegments(), 6 * flash.geometry().total_pages() /
                                          g.sparse_segment_pages);
}

}  // namespace
}  // namespace tpftl
