#include "src/flash/nand.h"

#include <gtest/gtest.h>

#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::SmallGeometry;

TEST(NandTest, ProgramReturnsSequentialPpns) {
  NandFlash flash(SmallGeometry());
  Ppn a = kInvalidPpn;
  Ppn b = kInvalidPpn;
  flash.ProgramPage(3, 100, &a);
  flash.ProgramPage(3, 101, &b);
  EXPECT_EQ(a, 3u * 16);
  EXPECT_EQ(b, 3u * 16 + 1);
  EXPECT_EQ(flash.OobTag(a), 100u);
  EXPECT_EQ(flash.OobTag(b), 101u);
  EXPECT_EQ(flash.StateOf(a), PageState::kValid);
}

TEST(NandTest, LatenciesMatchGeometry) {
  const FlashGeometry g = SmallGeometry();
  NandFlash flash(g);
  Ppn ppn = kInvalidPpn;
  EXPECT_DOUBLE_EQ(flash.ProgramPage(0, 1, &ppn), g.page_write_us);
  EXPECT_DOUBLE_EQ(flash.ReadPage(ppn), g.page_read_us);
  flash.InvalidatePage(ppn);
  EXPECT_DOUBLE_EQ(flash.EraseBlock(0), g.block_erase_us);
}

TEST(NandTest, StatsAccumulate) {
  const FlashGeometry g = SmallGeometry();
  NandFlash flash(g);
  Ppn ppn = kInvalidPpn;
  flash.ProgramPage(0, 1, &ppn);
  flash.ReadPage(ppn);
  flash.ReadPage(ppn);
  flash.InvalidatePage(ppn);
  flash.EraseBlock(0);
  EXPECT_EQ(flash.stats().page_writes, 1u);
  EXPECT_EQ(flash.stats().page_reads, 2u);
  EXPECT_EQ(flash.stats().block_erases, 1u);
  EXPECT_DOUBLE_EQ(flash.stats().busy_time_us,
                   g.page_write_us + 2 * g.page_read_us + g.block_erase_us);
}

TEST(NandTest, ResetStatsKeepsBlockEraseCounters) {
  NandFlash flash(SmallGeometry());
  Ppn ppn = kInvalidPpn;
  flash.ProgramPage(0, 1, &ppn);
  flash.InvalidatePage(ppn);
  flash.EraseBlock(0);
  flash.ResetStats();
  EXPECT_EQ(flash.stats().block_erases, 0u);
  EXPECT_EQ(flash.TotalEraseCount(), 1u);
  EXPECT_EQ(flash.MaxEraseCount(), 1u);
}

TEST(NandTest, ReadOfInvalidPageIsAllowed) {
  // FTLs read just-superseded translation pages during read-modify-write.
  NandFlash flash(SmallGeometry());
  Ppn ppn = kInvalidPpn;
  flash.ProgramPage(0, 1, &ppn);
  flash.InvalidatePage(ppn);
  EXPECT_NO_FATAL_FAILURE(flash.ReadPage(ppn));
}

// Per-page misuse checks are TPFTL_DCHECK (off in plain release builds, on
// in debug/TPFTL_HARDENED); per-block erase validation stays TPFTL_CHECK.
#if TPFTL_DCHECK_IS_ON

TEST(NandDeathTest, ReadOfFreePageAborts) {
  NandFlash flash(SmallGeometry());
  EXPECT_DEATH(flash.ReadPage(0), "unprogrammed");
}

TEST(NandDeathTest, EraseBeforeWriteIsEnforced) {
  // The defining NAND constraint: no in-place overwrite. Programming the
  // same physical page twice without an erase must abort.
  NandFlash flash(SmallGeometry());
  flash.ProgramPageAt(5, 1);
  EXPECT_DEATH(flash.ProgramPageAt(5, 2), "non-free");
}

#endif  // TPFTL_DCHECK_IS_ON

TEST(NandDeathTest, EraseWithValidPagesAborts) {
  NandFlash flash(SmallGeometry());
  Ppn ppn = kInvalidPpn;
  flash.ProgramPage(0, 1, &ppn);
  EXPECT_DEATH(flash.EraseBlock(0), "valid pages");
}

TEST(NandTest, EraseEnablesReprogramming) {
  NandFlash flash(SmallGeometry());
  Ppn ppn = kInvalidPpn;
  flash.ProgramPage(7, 1, &ppn);
  flash.InvalidatePage(ppn);
  flash.EraseBlock(7);
  Ppn again = kInvalidPpn;
  flash.ProgramPage(7, 2, &again);
  EXPECT_EQ(again, ppn);
  EXPECT_EQ(flash.OobTag(again), 2u);
}

TEST(NandTest, TotalAndMaxEraseCounts) {
  NandFlash flash(SmallGeometry());
  for (int round = 0; round < 3; ++round) {
    Ppn ppn = kInvalidPpn;
    flash.ProgramPage(0, 1, &ppn);
    flash.InvalidatePage(ppn);
    flash.EraseBlock(0);
  }
  Ppn ppn = kInvalidPpn;
  flash.ProgramPage(1, 1, &ppn);
  flash.InvalidatePage(ppn);
  flash.EraseBlock(1);
  EXPECT_EQ(flash.TotalEraseCount(), 4u);
  EXPECT_EQ(flash.MaxEraseCount(), 3u);
}

}  // namespace
}  // namespace tpftl
