#include "src/flash/block.h"

#include <gtest/gtest.h>

namespace tpftl {
namespace {

// Block is a view into a PageStateArena; a one-block arena reproduces the
// old standalone-block semantics exactly.
struct ArenaBlock {
  explicit ArenaBlock(uint64_t pages_per_block) : arena(1, pages_per_block) {}
  PageStateArena arena;
  Block block() { return arena.block(0); }
};

TEST(BlockTest, FreshBlockIsAllFree) {
  ArenaBlock a(16);
  Block b = a.block();
  EXPECT_TRUE(b.HasFreePage());
  EXPECT_EQ(b.free_pages(), 16u);
  EXPECT_EQ(b.valid_pages(), 0u);
  EXPECT_EQ(b.invalid_pages(), 0u);
  EXPECT_EQ(b.erase_count(), 0u);
  for (uint64_t o = 0; o < 16; ++o) {
    EXPECT_EQ(b.StateOf(o), PageState::kFree);
  }
}

TEST(BlockTest, ProgramIsSequential) {
  ArenaBlock a(4);
  Block b = a.block();
  EXPECT_EQ(b.Program(), 0u);
  EXPECT_EQ(b.Program(), 1u);
  EXPECT_EQ(b.Program(), 2u);
  EXPECT_EQ(b.StateOf(1), PageState::kValid);
  EXPECT_EQ(b.valid_pages(), 3u);
  EXPECT_EQ(b.free_pages(), 1u);
}

TEST(BlockTest, InvalidateTransitionsState) {
  ArenaBlock a(4);
  Block b = a.block();
  b.Program();
  b.Invalidate(0);
  EXPECT_EQ(b.StateOf(0), PageState::kInvalid);
  EXPECT_EQ(b.valid_pages(), 0u);
  EXPECT_EQ(b.invalid_pages(), 1u);
}

TEST(BlockTest, EraseResetsAndCounts) {
  ArenaBlock a(4);
  Block b = a.block();
  for (int i = 0; i < 4; ++i) {
    b.Program();
  }
  for (uint64_t o = 0; o < 4; ++o) {
    b.Invalidate(o);
  }
  b.Erase();
  EXPECT_EQ(b.erase_count(), 1u);
  EXPECT_EQ(b.free_pages(), 4u);
  EXPECT_EQ(b.valid_pages(), 0u);
  EXPECT_EQ(b.StateOf(0), PageState::kFree);
  // Programmable again after erase.
  EXPECT_EQ(b.Program(), 0u);
}

TEST(BlockTest, ProgramAtOutOfOrder) {
  ArenaBlock a(8);
  Block b = a.block();
  b.ProgramAt(5);
  EXPECT_EQ(b.StateOf(5), PageState::kValid);
  EXPECT_EQ(b.valid_pages(), 1u);
  EXPECT_EQ(b.free_pages(), 7u);
  b.ProgramAt(2);
  EXPECT_EQ(b.valid_pages(), 2u);
}

TEST(BlockTest, ViewsShareArenaState) {
  // Two views of the same block observe the same counters and states.
  PageStateArena arena(2, 8);
  Block a = arena.block(0);
  Block b = arena.block(0);
  a.Program();
  EXPECT_EQ(b.valid_pages(), 1u);
  EXPECT_EQ(b.StateOf(0), PageState::kValid);
  // A neighbouring block's state is untouched (padded word layout).
  EXPECT_EQ(arena.block(1).valid_pages(), 0u);
  EXPECT_EQ(arena.block(1).StateOf(0), PageState::kFree);
}

TEST(BlockTest, NonWordMultipleBlockSizeIsIsolated) {
  // 16 pages < one 32-state word: erase of one block must not leak into the
  // next block's packed states.
  PageStateArena arena(3, 16);
  Block b0 = arena.block(0);
  Block b1 = arena.block(1);
  for (int i = 0; i < 16; ++i) {
    b0.Program();
    b1.Program();
  }
  for (uint64_t o = 0; o < 16; ++o) {
    b0.Invalidate(o);
  }
  b0.Erase();
  EXPECT_EQ(b0.free_pages(), 16u);
  EXPECT_EQ(b1.valid_pages(), 16u);
  for (uint64_t o = 0; o < 16; ++o) {
    EXPECT_EQ(b1.StateOf(o), PageState::kValid);
  }
}

// Interior (per-op) misuse checks are TPFTL_DCHECK: compiled out of plain
// release builds, active in debug and TPFTL_HARDENED builds.
#if TPFTL_DCHECK_IS_ON

TEST(BlockDeathTest, ProgramFullBlockAborts) {
  ArenaBlock a(2);
  Block b = a.block();
  b.Program();
  b.Program();
  EXPECT_DEATH(b.Program(), "full block");
}

TEST(BlockDeathTest, DoubleProgramAtAborts) {
  ArenaBlock a(4);
  Block b = a.block();
  b.ProgramAt(1);
  EXPECT_DEATH(b.ProgramAt(1), "non-free");
}

TEST(BlockDeathTest, InvalidateFreePageAborts) {
  ArenaBlock a(4);
  Block b = a.block();
  EXPECT_DEATH(b.Invalidate(0), "non-valid");
}

TEST(BlockDeathTest, DoubleInvalidateAborts) {
  ArenaBlock a(4);
  Block b = a.block();
  b.Program();
  b.Invalidate(0);
  EXPECT_DEATH(b.Invalidate(0), "non-valid");
}

#endif  // TPFTL_DCHECK_IS_ON

}  // namespace
}  // namespace tpftl
