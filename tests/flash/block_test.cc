#include "src/flash/block.h"

#include <gtest/gtest.h>

namespace tpftl {
namespace {

TEST(BlockTest, FreshBlockIsAllFree) {
  Block b(16);
  EXPECT_TRUE(b.HasFreePage());
  EXPECT_EQ(b.free_pages(), 16u);
  EXPECT_EQ(b.valid_pages(), 0u);
  EXPECT_EQ(b.invalid_pages(), 0u);
  EXPECT_EQ(b.erase_count(), 0u);
  for (uint64_t o = 0; o < 16; ++o) {
    EXPECT_EQ(b.StateOf(o), PageState::kFree);
  }
}

TEST(BlockTest, ProgramIsSequential) {
  Block b(4);
  EXPECT_EQ(b.Program(), 0u);
  EXPECT_EQ(b.Program(), 1u);
  EXPECT_EQ(b.Program(), 2u);
  EXPECT_EQ(b.StateOf(1), PageState::kValid);
  EXPECT_EQ(b.valid_pages(), 3u);
  EXPECT_EQ(b.free_pages(), 1u);
}

TEST(BlockTest, InvalidateTransitionsState) {
  Block b(4);
  b.Program();
  b.Invalidate(0);
  EXPECT_EQ(b.StateOf(0), PageState::kInvalid);
  EXPECT_EQ(b.valid_pages(), 0u);
  EXPECT_EQ(b.invalid_pages(), 1u);
}

TEST(BlockTest, EraseResetsAndCounts) {
  Block b(4);
  for (int i = 0; i < 4; ++i) {
    b.Program();
  }
  for (uint64_t o = 0; o < 4; ++o) {
    b.Invalidate(o);
  }
  b.Erase();
  EXPECT_EQ(b.erase_count(), 1u);
  EXPECT_EQ(b.free_pages(), 4u);
  EXPECT_EQ(b.valid_pages(), 0u);
  EXPECT_EQ(b.StateOf(0), PageState::kFree);
  // Programmable again after erase.
  EXPECT_EQ(b.Program(), 0u);
}

TEST(BlockTest, ProgramAtOutOfOrder) {
  Block b(8);
  b.ProgramAt(5);
  EXPECT_EQ(b.StateOf(5), PageState::kValid);
  EXPECT_EQ(b.valid_pages(), 1u);
  EXPECT_EQ(b.free_pages(), 7u);
  b.ProgramAt(2);
  EXPECT_EQ(b.valid_pages(), 2u);
}

TEST(BlockDeathTest, ProgramFullBlockAborts) {
  Block b(2);
  b.Program();
  b.Program();
  EXPECT_DEATH(b.Program(), "full block");
}

TEST(BlockDeathTest, DoubleProgramAtAborts) {
  Block b(4);
  b.ProgramAt(1);
  EXPECT_DEATH(b.ProgramAt(1), "non-free");
}

TEST(BlockDeathTest, InvalidateFreePageAborts) {
  Block b(4);
  EXPECT_DEATH(b.Invalidate(0), "non-valid");
}

TEST(BlockDeathTest, DoubleInvalidateAborts) {
  Block b(4);
  b.Program();
  b.Invalidate(0);
  EXPECT_DEATH(b.Invalidate(0), "non-valid");
}

}  // namespace
}  // namespace tpftl
