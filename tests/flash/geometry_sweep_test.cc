// Geometry generality: the whole stack must work for any sane page size /
// block size combination, not just the Table 3 defaults.

#include <tuple>

#include <gtest/gtest.h>

#include "src/core/ftl_factory.h"
#include "src/util/rng.h"

namespace tpftl {
namespace {

using Param = std::tuple<uint64_t /*page_size*/, uint64_t /*pages_per_block*/>;

class GeometrySweepTest : public ::testing::TestWithParam<Param> {};

TEST_P(GeometrySweepTest, TpftlStaysConsistentAcrossGeometries) {
  const auto [page_size, pages_per_block] = GetParam();
  FlashGeometry g;
  g.page_size_bytes = page_size;
  g.pages_per_block = pages_per_block;
  g.total_blocks = 96;
  const uint64_t logical_pages = 48 * pages_per_block;  // Half the device + spare.
  NandFlash flash(g);
  FtlEnv env;
  env.flash = &flash;
  env.logical_pages = logical_pages;
  // Budget scaled with the table: GTD + room for ~12 % of the entries.
  env.cache_bytes = PaperCacheBytes(g, logical_pages) + logical_pages;
  auto ftl = CreateFtl(FtlKind::kTpftl, env);

  Rng rng(logical_pages ^ page_size);
  std::vector<bool> written(logical_pages, false);
  for (uint64_t i = 0; i < logical_pages * 4; ++i) {
    const Lpn lpn = rng.Below(logical_pages);
    if (rng.Chance(0.8)) {
      ftl->WritePage(lpn);
      written[lpn] = true;
    } else {
      ftl->ReadPage(lpn);
    }
  }
  for (Lpn lpn = 0; lpn < logical_pages; ++lpn) {
    if (!written[lpn]) {
      continue;
    }
    const Ppn ppn = ftl->Probe(lpn);
    ASSERT_NE(ppn, kInvalidPpn) << "page " << page_size << " ppb " << pages_per_block;
    ASSERT_EQ(flash.OobTag(ppn), lpn);
    ASSERT_EQ(flash.StateOf(ppn), PageState::kValid);
  }
  // Entries per translation page follows the geometry.
  EXPECT_EQ(g.entries_per_translation_page(), page_size / 4);
}

TEST_P(GeometrySweepTest, DftlStaysConsistentAcrossGeometries) {
  const auto [page_size, pages_per_block] = GetParam();
  FlashGeometry g;
  g.page_size_bytes = page_size;
  g.pages_per_block = pages_per_block;
  g.total_blocks = 96;
  const uint64_t logical_pages = 48 * pages_per_block;
  NandFlash flash(g);
  FtlEnv env;
  env.flash = &flash;
  env.logical_pages = logical_pages;
  env.cache_bytes = PaperCacheBytes(g, logical_pages) + logical_pages;
  auto ftl = CreateFtl(FtlKind::kDftl, env);

  Rng rng(7777);
  for (uint64_t i = 0; i < logical_pages * 3; ++i) {
    ftl->WritePage(rng.Below(logical_pages));
  }
  const AtStats& s = ftl->stats();
  EXPECT_EQ(flash.stats().page_writes,
            s.host_page_writes + s.trans_writes_at + s.trans_writes_gc + s.gc_data_migrations);
}

INSTANTIATE_TEST_SUITE_P(Geometries, GeometrySweepTest,
                         ::testing::Values(Param{512, 16}, Param{512, 32}, Param{2048, 16},
                                           Param{2048, 64}, Param{4096, 32}, Param{4096, 64},
                                           Param{8192, 64}),
                         [](const ::testing::TestParamInfo<Param>& info) {
                           return "page" + std::to_string(std::get<0>(info.param)) + "_ppb" +
                                  std::to_string(std::get<1>(info.param));
                         });

}  // namespace
}  // namespace tpftl
