#include "src/flash/geometry.h"

#include <gtest/gtest.h>

namespace tpftl {
namespace {

TEST(GeometryTest, Table3Defaults) {
  FlashGeometry g;
  EXPECT_EQ(g.page_size_bytes, 4096u);
  EXPECT_EQ(g.pages_per_block, 64u);           // 256 KiB blocks.
  EXPECT_EQ(g.block_size_bytes(), 256u * 1024);
  EXPECT_DOUBLE_EQ(g.page_read_us, 25.0);
  EXPECT_DOUBLE_EQ(g.page_write_us, 200.0);
  EXPECT_DOUBLE_EQ(g.block_erase_us, 1500.0);
  EXPECT_EQ(g.entries_per_translation_page(), 1024u);  // §3.2.
}

TEST(GeometryTest, AddressConversionsRoundTrip) {
  FlashGeometry g;
  g.total_blocks = 100;
  for (const Ppn ppn : {0ULL, 63ULL, 64ULL, 6399ULL}) {
    EXPECT_EQ(g.PpnOf(g.BlockOf(ppn), g.OffsetOf(ppn)), ppn);
  }
  EXPECT_EQ(g.BlockOf(64), 1u);
  EXPECT_EQ(g.OffsetOf(64), 0u);
}

TEST(GeometryTest, VtpnSlotConversions) {
  FlashGeometry g;
  EXPECT_EQ(g.VtpnOf(0), 0u);
  EXPECT_EQ(g.VtpnOf(1023), 0u);
  EXPECT_EQ(g.VtpnOf(1024), 1u);
  EXPECT_EQ(g.SlotOf(1025), 1u);
}

TEST(GeometryTest, MakeGeometryProvisionsOverhead) {
  // 512 MB logical (paper's Financial configuration).
  const FlashGeometry g = MakeGeometry(512ULL << 20, 0.15);
  const uint64_t logical_blocks = (512ULL << 20) / g.block_size_bytes();
  EXPECT_EQ(logical_blocks, 2048u);
  // Must hold all logical blocks + 15 % OP + translation pages (128 pages →
  // 2 blocks) + translation spare.
  EXPECT_GT(g.total_blocks, logical_blocks + logical_blocks * 15 / 100);
  EXPECT_LT(g.total_blocks, logical_blocks + logical_blocks / 4);
}

TEST(GeometryTest, LogicalPagesArithmetic) {
  const FlashGeometry g = MakeGeometry(512ULL << 20);
  EXPECT_EQ(LogicalPages(g, 512ULL << 20), 131072u);
}

}  // namespace
}  // namespace tpftl
