// Tests for the multi-tenant open-loop frontend and the TRIM-heavy
// filesystem-aging generator.

#include "src/workload/tenant_mix.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "src/trace/request.h"

namespace tpftl {
namespace {

constexpr uint64_t kMiB = 1ULL << 20;

std::vector<TenantSpec> ThreeTenantSpecs(uint64_t requests) {
  std::vector<TenantSpec> specs;
  specs.push_back(YcsbTenant('A', 8 * kMiB, requests, 101));
  specs[0].arrival.kind = ArrivalKind::kDiurnal;
  specs[0].arrival.seed = 11;
  specs[0].arrival.rate_rps = 2000.0;
  specs[0].arrival.day_us = 1e6;

  specs.push_back(StreamerTenant(8 * kMiB, requests / 2, 202));
  specs[1].lba_offset_bytes = 8 * kMiB;
  specs[1].arrival.seed = 22;
  specs[1].arrival.rate_rps = 500.0;

  specs.push_back(AgingTenant(8 * kMiB, requests / 2, 303));
  specs[2].lba_offset_bytes = 16 * kMiB;
  specs[2].arrival.kind = ArrivalKind::kOnOff;
  specs[2].arrival.seed = 33;
  specs[2].arrival.rate_rps = 4000.0;
  return specs;
}

std::vector<IoRequest> DrainAll(TraceSource& src) {
  std::vector<IoRequest> out;
  IoRequest req;
  while (src.Next(&req)) {
    out.push_back(req);
  }
  return out;
}

bool SameRequest(const IoRequest& a, const IoRequest& b) {
  return a.arrival_us == b.arrival_us && a.offset_bytes == b.offset_bytes &&
         a.size_bytes == b.size_bytes && a.kind == b.kind &&
         a.tenant == b.tenant;
}

TEST(TenantMixTest, DeterministicAndRewindable) {
  TenantMixSource a(ThreeTenantSpecs(2000));
  TenantMixSource b(ThreeTenantSpecs(2000));
  const std::vector<IoRequest> sa = DrainAll(a);
  const std::vector<IoRequest> sb = DrainAll(b);
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    ASSERT_TRUE(SameRequest(sa[i], sb[i])) << "request " << i;
  }
  a.Rewind();
  const std::vector<IoRequest> sc = DrainAll(a);
  ASSERT_EQ(sa.size(), sc.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    ASSERT_TRUE(SameRequest(sa[i], sc[i])) << "request " << i;
  }
}

TEST(TenantMixTest, MergeIsTimeOrderedAndComplete) {
  TenantMixSource mix(ThreeTenantSpecs(2000));
  ASSERT_EQ(mix.tenant_count(), 3u);
  ASSERT_TRUE(mix.SizeHint().has_value());
  EXPECT_EQ(*mix.SizeHint(), 2000u + 1000u + 1000u);

  const std::vector<IoRequest> stream = DrainAll(mix);
  EXPECT_EQ(stream.size(), 4000u);

  std::vector<uint64_t> per_tenant(3, 0);
  MicroSec prev = -1.0;
  for (const IoRequest& req : stream) {
    EXPECT_GE(req.arrival_us, prev);
    prev = req.arrival_us;
    ASSERT_LT(req.tenant, 3);
    ++per_tenant[req.tenant];
  }
  EXPECT_EQ(per_tenant[0], 2000u);
  EXPECT_EQ(per_tenant[1], 1000u);
  EXPECT_EQ(per_tenant[2], 1000u);
}

TEST(TenantMixTest, RequestsStayInsideTenantLbaWindows) {
  TenantMixSource mix(ThreeTenantSpecs(2000));
  const std::vector<IoRequest> stream = DrainAll(mix);
  for (const IoRequest& req : stream) {
    const TenantSpec& spec = mix.spec(req.tenant);
    EXPECT_GE(req.offset_bytes, spec.lba_offset_bytes);
    EXPECT_LE(req.offset_bytes + req.size_bytes,
              spec.lba_offset_bytes + spec.ops.address_space_bytes)
        << "tenant " << req.tenant;
  }
  EXPECT_EQ(mix.RequiredDeviceBytes(), 24 * kMiB);
}

// Each tenant's substream must be exactly the standalone generator's stream,
// shifted by the LBA offset and re-stamped with the arrival process — the
// merge may not perturb op shapes.
TEST(TenantMixTest, SubstreamMatchesStandaloneGenerator) {
  const std::vector<TenantSpec> specs = ThreeTenantSpecs(2000);
  TenantMixSource mix(specs);
  const std::vector<IoRequest> stream = DrainAll(mix);

  // Tenant 1 is synthetic (the streamer): compare against its own generator.
  SyntheticWorkload standalone(specs[1].ops);
  auto arrivals = MakeArrivalProcess(specs[1].arrival);
  IoRequest want;
  size_t matched = 0;
  for (const IoRequest& got : stream) {
    if (got.tenant != 1) {
      continue;
    }
    ASSERT_TRUE(standalone.Next(&want));
    EXPECT_EQ(got.offset_bytes, want.offset_bytes + specs[1].lba_offset_bytes);
    EXPECT_EQ(got.size_bytes, want.size_bytes);
    EXPECT_EQ(got.kind, want.kind);
    EXPECT_DOUBLE_EQ(got.arrival_us, arrivals->NextUs());
    ++matched;
  }
  EXPECT_EQ(matched, 1000u);
  EXPECT_FALSE(standalone.Next(&want));
}

TEST(AgingWorkloadTest, ExtentGranularChurnWithLiveOnlyTrims) {
  WorkloadConfig config;
  config.address_space_bytes = 16 * kMiB;
  config.num_requests = 5000;
  config.seed = 7;
  AgingWorkload aging(config, /*extent_pages=*/64, /*trim_fraction=*/0.35);
  const uint64_t extent_bytes = 64 * config.page_size;
  ASSERT_EQ(aging.extent_count(), 16 * kMiB / extent_bytes);

  std::vector<bool> live(aging.extent_count(), false);
  uint64_t trims = 0;
  IoRequest req;
  uint64_t seen = 0;
  while (aging.Next(&req)) {
    ++seen;
    // Whole-extent, extent-aligned ops only.
    ASSERT_EQ(req.offset_bytes % extent_bytes, 0u);
    ASSERT_EQ(req.size_bytes, extent_bytes);
    const uint64_t extent = req.offset_bytes / extent_bytes;
    ASSERT_LT(extent, aging.extent_count());
    if (req.is_trim()) {
      // TRIMs must only ever target live extents.
      ASSERT_TRUE(live[extent]) << "trimmed a dead extent " << extent;
      live[extent] = false;
      ++trims;
    } else {
      ASSERT_EQ(req.kind, IoKind::kWrite);
      live[extent] = true;
    }
  }
  EXPECT_EQ(seen, 5000u);
  // Realized TRIM share tracks the configured fraction (loose: early steps
  // have an empty live set and must write).
  const double trim_share = static_cast<double>(trims) / seen;
  EXPECT_GT(trim_share, 0.25);
  EXPECT_LT(trim_share, 0.45);
}

TEST(AgingWorkloadTest, DeterministicRewind) {
  WorkloadConfig config;
  config.address_space_bytes = 4 * kMiB;
  config.num_requests = 1000;
  config.seed = 9;
  AgingWorkload aging(config, 16, 0.35);
  const std::vector<IoRequest> first = DrainAll(aging);
  aging.Rewind();
  const std::vector<IoRequest> second = DrainAll(aging);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ASSERT_TRUE(SameRequest(first[i], second[i])) << "request " << i;
  }
}

TEST(TenantPresetTest, PresetsMatchTheirContracts) {
  const TenantSpec a = YcsbTenant('A', 8 * kMiB, 1000, 1);
  EXPECT_DOUBLE_EQ(a.ops.write_ratio, 0.5);
  const TenantSpec b = YcsbTenant('b', 8 * kMiB, 1000, 1);
  EXPECT_DOUBLE_EQ(b.ops.write_ratio, 0.05);
  const TenantSpec c = YcsbTenant('C', 8 * kMiB, 1000, 1);
  EXPECT_DOUBLE_EQ(c.ops.write_ratio, 0.0);
  EXPECT_DOUBLE_EQ(c.ops.zipf_theta, 0.99);

  const TenantSpec s = StreamerTenant(8 * kMiB, 1000, 1, 1.0);
  EXPECT_DOUBLE_EQ(s.ops.write_ratio, 1.0);
  EXPECT_DOUBLE_EQ(s.ops.seq_write_fraction, 1.0);

  const TenantSpec g = AgingTenant(8 * kMiB, 1000, 1);
  EXPECT_EQ(g.ops_kind, TenantSpec::Ops::kAging);
  EXPECT_GT(g.aging_trim_fraction, 0.0);
}

}  // namespace
}  // namespace tpftl
