#include "src/workload/generator.h"

#include <gtest/gtest.h>

#include "src/workload/profiles.h"

namespace tpftl {
namespace {

WorkloadConfig SmallConfig() {
  WorkloadConfig c;
  c.address_space_bytes = 64ULL << 20;
  c.num_requests = 20000;
  c.seed = 9;
  c.write_ratio = 0.7;
  c.zipf_theta = 1.0;
  c.mean_random_bytes = 4096;
  return c;
}

TEST(GeneratorTest, ProducesExactlyNumRequests) {
  SyntheticWorkload source(SmallConfig());
  IoRequest req;
  uint64_t count = 0;
  while (source.Next(&req)) {
    ++count;
  }
  EXPECT_EQ(count, 20000u);
  EXPECT_FALSE(source.Next(&req));
}

TEST(GeneratorTest, RewindReproducesIdenticalStream) {
  SyntheticWorkload source(SmallConfig());
  std::vector<IoRequest> first;
  IoRequest req;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(source.Next(&req));
    first.push_back(req);
  }
  source.Rewind();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(source.Next(&req));
    EXPECT_EQ(req.offset_bytes, first[i].offset_bytes);
    EXPECT_EQ(req.size_bytes, first[i].size_bytes);
    EXPECT_EQ(req.kind, first[i].kind);
    EXPECT_DOUBLE_EQ(req.arrival_us, first[i].arrival_us);
  }
}

TEST(GeneratorTest, RequestsStayInAddressSpace) {
  WorkloadConfig c = SmallConfig();
  c.seq_read_fraction = 0.4;
  c.seq_write_fraction = 0.4;
  SyntheticWorkload source(c);
  IoRequest req;
  while (source.Next(&req)) {
    EXPECT_LT(req.offset_bytes, c.address_space_bytes);
    EXPECT_LE(req.offset_bytes + req.size_bytes, c.address_space_bytes);
    EXPECT_GT(req.size_bytes, 0u);
  }
}

TEST(GeneratorTest, ArrivalsAreMonotone) {
  SyntheticWorkload source(SmallConfig());
  IoRequest req;
  double last = -1.0;
  while (source.Next(&req)) {
    EXPECT_GE(req.arrival_us, last);
    last = req.arrival_us;
  }
}

TEST(GeneratorTest, WriteRatioMatchesTarget) {
  const auto trace = MaterializeWorkload(SmallConfig());
  const auto features = AnalyzeTrace(trace.requests());
  EXPECT_NEAR(features.write_ratio, 0.7, 0.02);
}

TEST(GeneratorTest, MeanRequestSizeTracksConfig) {
  WorkloadConfig c = SmallConfig();
  c.mean_random_bytes = 3584;
  const auto trace = MaterializeWorkload(c);
  const auto features = AnalyzeTrace(trace.requests());
  EXPECT_NEAR(features.mean_request_bytes, 3584, 600);
}

TEST(GeneratorTest, SequentialFractionIncreasesWithConfig) {
  WorkloadConfig random_cfg = SmallConfig();
  random_cfg.seq_write_fraction = 0.0;
  WorkloadConfig seq_cfg = SmallConfig();
  seq_cfg.seq_write_fraction = 0.5;
  const auto f_random = AnalyzeTrace(MaterializeWorkload(random_cfg).requests());
  const auto f_seq = AnalyzeTrace(MaterializeWorkload(seq_cfg).requests());
  EXPECT_GT(f_seq.seq_write_fraction, f_random.seq_write_fraction + 0.25);
}

TEST(GeneratorTest, ZipfSkewShrinksWorkingSet) {
  WorkloadConfig uniform_cfg = SmallConfig();
  uniform_cfg.zipf_theta = 0.0;
  WorkloadConfig skewed_cfg = SmallConfig();
  skewed_cfg.zipf_theta = 1.3;
  const auto f_uniform = AnalyzeTrace(MaterializeWorkload(uniform_cfg).requests());
  const auto f_skewed = AnalyzeTrace(MaterializeWorkload(skewed_cfg).requests());
  EXPECT_LT(f_skewed.distinct_pages, f_uniform.distinct_pages / 2);
}

TEST(GeneratorTest, DifferentSeedsProduceDifferentStreams) {
  WorkloadConfig a = SmallConfig();
  WorkloadConfig b = SmallConfig();
  b.seed = 10;
  SyntheticWorkload sa(a);
  SyntheticWorkload sb(b);
  IoRequest ra;
  IoRequest rb;
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    sa.Next(&ra);
    sb.Next(&rb);
    same += ra.offset_bytes == rb.offset_bytes ? 1 : 0;
  }
  EXPECT_LT(same, 10);
}

TEST(ProfilesTest, Table4ParametersAreEncoded) {
  const auto fin1 = Financial1Profile(1000);
  EXPECT_EQ(fin1.address_space_bytes, 512ULL << 20);
  EXPECT_DOUBLE_EQ(fin1.write_ratio, 0.779);
  const auto fin2 = Financial2Profile(1000);
  EXPECT_DOUBLE_EQ(fin2.write_ratio, 0.18);
  const auto ts = MsrTsProfile(1000);
  EXPECT_EQ(ts.address_space_bytes, 16ULL << 30);
  EXPECT_DOUBLE_EQ(ts.seq_read_fraction, 0.472);
  const auto src = MsrSrcProfile(1000);
  EXPECT_DOUBLE_EQ(src.write_ratio, 0.887);
}

TEST(ProfilesTest, LookupByName) {
  EXPECT_TRUE(ProfileByName("financial1").has_value());
  EXPECT_TRUE(ProfileByName("MSR-TS").has_value());
  EXPECT_TRUE(ProfileByName("src").has_value());
  EXPECT_FALSE(ProfileByName("bogus").has_value());
  EXPECT_EQ(ProfileByName("fin2")->name, "Financial2");
}

TEST(ProfilesTest, PaperWorkloadsReturnsAllFour) {
  const auto workloads = PaperWorkloads(100);
  ASSERT_EQ(workloads.size(), 4u);
  EXPECT_EQ(workloads[0].name, "Financial1");
  EXPECT_EQ(workloads[3].name, "MSR-src");
  for (const auto& w : workloads) {
    EXPECT_EQ(w.num_requests, 100u);
  }
}

TEST(ProfilesTest, FinancialProfileHitsTable4Features) {
  // The generator must deliver the Table 4 aggregates for Financial1.
  auto cfg = Financial1Profile(30000);
  cfg.address_space_bytes = 512ULL << 20;
  const auto features = AnalyzeTrace(MaterializeWorkload(cfg).requests());
  EXPECT_NEAR(features.write_ratio, 0.779, 0.02);
  EXPECT_NEAR(features.mean_request_bytes, 3584, 800);
}

}  // namespace
}  // namespace tpftl
