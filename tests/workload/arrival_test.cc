// Statistical tests for the open-loop arrival processes.
//
// These generators are the trust anchor for every serving-harness claim, so
// each one gets checked against its defining statistics, not just smoked:
// Poisson inter-arrival mean and CV, the diurnal curve's integral over whole
// days, and the on/off process's duty cycle. Tolerances are set several
// standard errors wide at the sample sizes used, so the tests are
// deterministic in practice (and exactly reproducible: fixed seeds).

#include "src/workload/arrival.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"

namespace tpftl {
namespace {

std::vector<MicroSec> Draw(ArrivalProcess& p, size_t n) {
  std::vector<MicroSec> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(p.NextUs());
  }
  return out;
}

ArrivalConfig ConfigFor(ArrivalKind kind) {
  ArrivalConfig c;
  c.kind = kind;
  c.seed = 1234;
  c.rate_rps = 5000.0;
  c.day_us = 1e6;  // Compressed one-second "day" for the diurnal kind.
  c.peak_to_trough = 4.0;
  c.mean_on_us = 10'000.0;
  c.mean_off_us = 30'000.0;
  return c;
}

TEST(ArrivalDeterminismTest, SameSeedSameStream) {
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kDiurnal, ArrivalKind::kOnOff}) {
    SCOPED_TRACE(ArrivalKindName(kind));
    const ArrivalConfig config = ConfigFor(kind);
    auto a = MakeArrivalProcess(config);
    auto b = MakeArrivalProcess(config);
    const std::vector<MicroSec> sa = Draw(*a, 5000);
    const std::vector<MicroSec> sb = Draw(*b, 5000);
    ASSERT_EQ(sa, sb);

    // Rewind replays the exact same timestamps.
    a->Rewind();
    EXPECT_EQ(Draw(*a, 5000), sa);

    // A different seed produces a different stream.
    ArrivalConfig other = config;
    other.seed = 4321;
    EXPECT_NE(Draw(*MakeArrivalProcess(other), 5000), sa);
  }
}

TEST(ArrivalDeterminismTest, StrictlyIncreasing) {
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kDiurnal, ArrivalKind::kOnOff}) {
    SCOPED_TRACE(ArrivalKindName(kind));
    auto p = MakeArrivalProcess(ConfigFor(kind));
    MicroSec prev = 0.0;
    for (int i = 0; i < 20000; ++i) {
      const MicroSec t = p->NextUs();
      ASSERT_GT(t, prev);
      prev = t;
    }
  }
}

TEST(PoissonArrivalsTest, InterarrivalMeanAndCv) {
  ArrivalConfig config = ConfigFor(ArrivalKind::kPoisson);
  config.rate_rps = 2000.0;  // Mean gap 500 µs.
  PoissonArrivals p(config);

  constexpr size_t kSamples = 100'000;
  const std::vector<MicroSec> arrivals = Draw(p, kSamples);
  double sum = 0.0;
  double sum_sq = 0.0;
  MicroSec prev = 0.0;
  for (const MicroSec t : arrivals) {
    const double gap = t - prev;
    sum += gap;
    sum_sq += gap * gap;
    prev = t;
  }
  const double mean = sum / kSamples;
  const double variance = sum_sq / kSamples - mean * mean;
  const double cv = std::sqrt(variance) / mean;

  // Standard error of the mean at n=100k is ~0.32% of the mean; 2% is >6σ.
  EXPECT_NEAR(mean, 500.0, 500.0 * 0.02);
  // Exponential gaps have CV exactly 1.
  EXPECT_NEAR(cv, 1.0, 0.03);
}

TEST(DiurnalArrivalsTest, IntegratesToDailyRequestCount) {
  ArrivalConfig config = ConfigFor(ArrivalKind::kDiurnal);
  config.rate_rps = 2000.0;
  config.day_us = 1e6;
  DiurnalArrivals p(config);
  EXPECT_DOUBLE_EQ(p.DailyRequestCount(), 2000.0);

  // Count arrivals over 50 whole days; the nonhomogeneous rate must
  // integrate to DailyRequestCount() per day (thinning preserves the mean).
  constexpr int kDays = 50;
  const double horizon_us = kDays * config.day_us;
  uint64_t count = 0;
  while (p.NextUs() <= horizon_us) {
    ++count;
  }
  const double per_day = static_cast<double>(count) / kDays;
  // ~100k arrivals total → SE ≈ 0.32%; 2% is far outside noise.
  EXPECT_NEAR(per_day, p.DailyRequestCount(), p.DailyRequestCount() * 0.02);
}

TEST(DiurnalArrivalsTest, RateFollowsTheCurve) {
  ArrivalConfig config = ConfigFor(ArrivalKind::kDiurnal);
  config.rate_rps = 2000.0;
  config.day_us = 1e6;
  config.peak_to_trough = 4.0;
  config.peak_phase = 0.0;  // Peak at the start of each day.
  DiurnalArrivals p(config);

  // The configured curve itself: peak/trough ratio and mean preserved.
  EXPECT_NEAR(p.RateAt(0.0) / p.RateAt(config.day_us / 2), 4.0, 1e-9);
  EXPECT_NEAR((p.RateAt(0.0) + p.RateAt(config.day_us / 2)) / 2.0,
              config.rate_rps, 1e-9);

  // Empirically: quarter-day bins around the peak vs around the trough.
  // With a = 0.6 each quarter integrates to 0.25 ± 0.6·sqrt(2)/(2π) of a
  // day's arrivals, so the peak quarter carries ~3.35x the trough quarter.
  constexpr int kDays = 50;
  const double horizon_us = kDays * config.day_us;
  uint64_t peak_bin = 0;
  uint64_t trough_bin = 0;
  for (;;) {
    const MicroSec t = p.NextUs();
    if (t > horizon_us) {
      break;
    }
    const double phase = std::fmod(t, config.day_us) / config.day_us;
    if (phase < 0.125 || phase >= 0.875) {
      ++peak_bin;
    } else if (phase >= 0.375 && phase < 0.625) {
      ++trough_bin;
    }
  }
  ASSERT_GT(trough_bin, 0u);
  const double ratio =
      static_cast<double>(peak_bin) / static_cast<double>(trough_bin);
  // Analytic ratio of the two quarter-day integrals (~25 SE of margin).
  EXPECT_NEAR(ratio, 3.35, 0.25);
}

TEST(OnOffArrivalsTest, DutyCycleMatchesSpec) {
  ArrivalConfig config = ConfigFor(ArrivalKind::kOnOff);
  config.rate_rps = 10'000.0;   // ~100 arrivals per mean ON segment.
  config.mean_on_us = 10'000.0;
  config.mean_off_us = 30'000.0;  // Duty cycle 0.25.
  config.off_rate_rps = 0.0;
  OnOffArrivals p(config);

  // Drive through ~2000 ON/OFF cycles.
  Draw(p, 200'000);
  const double on = p.on_time_us();
  const double off = p.off_time_us();
  ASSERT_GT(on, 0.0);
  ASSERT_GT(off, 0.0);
  const double duty = on / (on + off);
  // ~2000 exponential segments each way → SE of the duty ratio ≈ 0.006.
  EXPECT_NEAR(duty, 0.25, 0.03);
  EXPECT_NEAR(on / (on + off) * (config.mean_on_us + config.mean_off_us) /
                  config.mean_on_us,
              1.0, 0.12);
}

TEST(OnOffArrivalsTest, BurstsAreDenseAndGapsAreSilent) {
  ArrivalConfig config = ConfigFor(ArrivalKind::kOnOff);
  config.rate_rps = 10'000.0;
  config.mean_on_us = 10'000.0;
  config.mean_off_us = 30'000.0;
  config.off_rate_rps = 0.0;
  OnOffArrivals p(config);

  // With off_rate 0, every inter-arrival gap is either a within-burst gap
  // (mean 100 µs) or spans at least one full OFF segment. Count gaps well
  // beyond the within-burst scale: their share must match the chance a gap
  // crosses a segment boundary (~1 in 100), not Poisson tail odds.
  const std::vector<MicroSec> arrivals = Draw(p, 100'000);
  uint64_t long_gaps = 0;
  MicroSec prev = 0.0;
  for (const MicroSec t : arrivals) {
    if (t - prev > 5'000.0) {
      ++long_gaps;
    }
    prev = t;
  }
  const double share = static_cast<double>(long_gaps) / arrivals.size();
  // Pure Poisson at 10k rps would see e^-50 ≈ 0 such gaps; the burst
  // process sees one per ON segment (~1%).
  EXPECT_GT(share, 0.003);
  EXPECT_LT(share, 0.03);
}

}  // namespace
}  // namespace tpftl
