// Shared fixtures: a miniature flash world small enough for exhaustive
// checking, plus a shadow-mapped random-operation driver used by the
// consistency suites.

#ifndef TESTS_TESTING_TEST_WORLD_H_
#define TESTS_TESTING_TEST_WORLD_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/flash/geometry.h"
#include "src/flash/nand.h"
#include "src/ftl/demand_ftl.h"
#include "src/ftl/ftl.h"
#include "src/util/rng.h"

namespace tpftl::testing {

// A small geometry: 512 B pages (128 entries per translation page), 16-page
// blocks. Dynamics (multi-translation-page working sets, frequent GC) show
// up within a few thousand operations.
inline FlashGeometry SmallGeometry(uint64_t total_blocks = 96) {
  FlashGeometry g;
  g.page_size_bytes = 512;
  g.pages_per_block = 16;
  g.total_blocks = total_blocks;
  return g;
}

// A world bundles flash + env for one FTL under test.
struct World {
  FlashGeometry geometry;
  std::unique_ptr<NandFlash> flash;
  FtlEnv env;
};

inline World MakeWorld(uint64_t logical_pages = 1024, uint64_t cache_bytes = 2048,
                       uint64_t total_blocks = 96, uint64_t gc_threshold = 6) {
  World w;
  w.geometry = SmallGeometry(total_blocks);
  w.flash = std::make_unique<NandFlash>(w.geometry);
  w.env.flash = w.flash.get();
  w.env.logical_pages = logical_pages;
  w.env.cache_bytes = cache_bytes;
  w.env.gc_threshold = gc_threshold;
  return w;
}

// Drives `ftl` with `ops` random page reads/writes (write probability
// `write_ratio`) while mirroring every write into a shadow map, verifying
// after each operation that Probe() agrees with the shadow map for the
// touched page. Returns the shadow map for final full-table verification.
inline std::unordered_map<Lpn, bool> DriveRandomOps(Ftl& ftl, uint64_t logical_pages,
                                                    uint64_t ops, double write_ratio,
                                                    uint64_t seed) {
  Rng rng(seed);
  std::unordered_map<Lpn, bool> written;
  for (uint64_t i = 0; i < ops; ++i) {
    const Lpn lpn = rng.Below(logical_pages);
    if (rng.Chance(write_ratio)) {
      ftl.WritePage(lpn);
      written[lpn] = true;
    } else {
      ftl.ReadPage(lpn);
    }
  }
  return written;
}

}  // namespace tpftl::testing

#endif  // TESTS_TESTING_TEST_WORLD_H_
