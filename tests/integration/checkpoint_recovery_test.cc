// Differential proof for checkpointed recovery (src/ftl/checkpoint.h).
//
// For every FTL kind and several randomized cut points, two worlds replay
// the identical workload with checkpointing enabled and are cut at the same
// device op. One recovers through TryCheckpointRecovery, the other is forced
// through ScanForRecovery (CheckpointConfig::force_scan_recovery). The two
// boots must be bit-equivalent: identical recovered mapping for every LPN
// and an identical device afterwards (page states, OOB words, block
// bookkeeping and the metadata log — both worlds run the same recovery
// epilogue). A twin world re-running the checkpointed boot must reproduce
// the mapping, the device digest and the recovery report exactly.
//
// The fallback ladder is exercised at FTL level too: an empty journal, a
// bit-flipped interior record and a sequence gap each demote the boot to the
// full scan (used_checkpoint == false) with the same recovered mapping,
// while a *naturally* torn tail — a cut landing on the meta append itself —
// is truncated and the boot stays checkpointed.

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/ftl_factory.h"
#include "src/flash/fault.h"
#include "src/flash/meta.h"
#include "src/ftl/recovery.h"
#include "src/testing/world.h"
#include "src/util/rng.h"

namespace tpftl {
namespace {

using testing::MakeWorld;
using testing::World;

constexpr uint64_t kLogicalPages = 1024;
constexpr uint64_t kCacheBytes = 32 + 280;
constexpr uint64_t kTotalBlocks = 96;
constexpr uint64_t kWorkloadOps = 4000;
constexpr uint64_t kCheckpointInterval = 32;

void DriveWorkload(Ftl& ftl, NandFlash& flash, uint64_t ops) {
  Rng rng(777);
  for (uint64_t i = 0; i < ops; ++i) {
    const Lpn lpn = rng.Below(kLogicalPages);
    const uint64_t dice = rng.Below(100);
    if (dice < 65) {
      ftl.WritePage(lpn);
    } else if (dice < 92) {
      ftl.ReadPage(lpn);
    } else {
      ftl.TrimPage(lpn);
    }
    if (flash.power_cut_triggered()) {
      return;
    }
  }
}

// FNV-1a over everything recovery is allowed to touch: per-page state + OOB,
// per-block bookkeeping, and the full metadata log. Equal digests mean the
// two boots left bit-identical devices behind.
uint64_t DeviceDigest(const NandFlash& flash) {
  uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  const FlashGeometry& g = flash.geometry();
  for (Ppn ppn = 0; ppn < g.total_pages(); ++ppn) {
    mix(static_cast<uint64_t>(flash.StateOf(ppn)));
    if (flash.StateOf(ppn) != PageState::kFree) {
      mix(flash.OobTag(ppn));
      mix(flash.OobSeq(ppn));
      mix(static_cast<uint64_t>(flash.OobKindOf(ppn)));
    }
  }
  for (BlockId b = 0; b < g.total_blocks; ++b) {
    mix(flash.block(b).erase_count());
    mix(flash.block_newest_seq(b));
    mix(static_cast<uint64_t>(flash.block_pool_kind(b)));
  }
  for (const MetaRecord& rec : flash.meta_log()) {
    mix(rec.seq);
    mix(static_cast<uint64_t>(rec.type));
    mix(rec.checksum);
    for (const uint64_t w : rec.payload) {
      mix(w);
    }
  }
  return h;
}

// Independent ground truth, reimplemented (not ScanForRecovery — that is on
// trial here): per-LPN winner by OOB seq over the valid data pages.
std::map<Lpn, Ppn> WinnerScan(const NandFlash& flash) {
  std::map<Lpn, Ppn> winners;
  std::map<Lpn, uint64_t> best_seq;
  const FlashGeometry& g = flash.geometry();
  for (Ppn ppn = 0; ppn < g.total_pages(); ++ppn) {
    if (flash.StateOf(ppn) != PageState::kValid ||
        flash.OobKindOf(ppn) != OobKind::kData) {
      continue;
    }
    const uint64_t seq = flash.OobSeq(ppn);
    const auto lpn = static_cast<Lpn>(flash.OobTag(ppn));
    if (seq > best_seq[lpn]) {
      best_seq[lpn] = seq;
      winners[lpn] = ppn;
    }
  }
  return winners;
}

struct BootedWorld {
  World world;
  std::unique_ptr<Ftl> ftl;
};

World MakeCheckpointedWorld() {
  World world = MakeWorld(kLogicalPages, kCacheBytes, kTotalBlocks);
  world.env.checkpoint.enabled = true;
  world.env.checkpoint.interval_host_ops = kCheckpointInterval;
  return world;
}

// Replays the workload with checkpointing on, cuts at `cut_op`, restores the
// device and leaves it un-recovered (callers may tamper with the meta log
// before booting).
World CrashAt(FtlKind kind, uint64_t cut_op, bool journal_during_run = true) {
  World world = MakeCheckpointedWorld();
  world.env.checkpoint.enabled = journal_during_run;
  FaultPlan plan;
  plan.power_cut_at_op = cut_op;
  world.flash->InstallFaultPlan(plan);
  {
    auto crashed = CreateFtl(kind, world.env);
    DriveWorkload(*crashed, *world.flash, kWorkloadOps);
    EXPECT_TRUE(world.flash->power_cut_triggered())
        << "cut op " << cut_op << " never reached";
  }  // The crashed FTL's RAM dies with the power.
  world.flash->RestoreToCutInstant();
  world.env.checkpoint.enabled = true;  // Recovery always sees the knob on.
  return world;
}

class CheckpointRecoveryTest : public ::testing::TestWithParam<FtlKind> {
 protected:
  // Learns [first usable cut, last op] from a fault-free checkpointed run.
  void LearnOpRange() {
    World ref = MakeCheckpointedWorld();
    auto ftl = CreateFtl(GetParam(), ref.env);
    post_ctor_op_ = ref.flash->op_index();
    DriveWorkload(*ftl, *ref.flash, kWorkloadOps);
    end_op_ = ref.flash->op_index();
    ASSERT_GT(end_op_, post_ctor_op_ + 10);
  }

  BootedWorld Recover(World world, bool force_scan) {
    BootedWorld booted;
    booted.world = std::move(world);
    booted.world.env.recover_from_flash = true;
    booted.world.env.checkpoint.force_scan_recovery = force_scan;
    booted.ftl = CreateFtl(GetParam(), booted.world.env);
    return booted;
  }

  BootedWorld RunWithCut(uint64_t cut_op, bool force_scan) {
    return Recover(CrashAt(GetParam(), cut_op), force_scan);
  }

  static void ExpectSameMapping(const Ftl& a, const Ftl& b) {
    for (Lpn lpn = 0; lpn < kLogicalPages; ++lpn) {
      ASSERT_EQ(a.Probe(lpn), b.Probe(lpn)) << "lpn " << lpn;
    }
  }

  // A cut right after a checkpoint leaves a one-record journal; the tamper
  // tests need interior records, so walk forward until the restored log has
  // at least `min_records` fully verifiable entries.
  uint64_t FindCutWithJournalRecords(size_t min_records) {
    uint64_t cut_op = post_ctor_op_ + (end_op_ - post_ctor_op_) / 2;
    for (int tries = 0; tries < 64 && cut_op < end_op_; ++tries, ++cut_op) {
      World world = CrashAt(GetParam(), cut_op);
      const std::vector<MetaRecord>& log = world.flash->meta_log();
      if (log.size() >= min_records && MetaRecordVerifies(log.back())) {
        return cut_op;
      }
    }
    ADD_FAILURE() << "no cut with " << min_records << " journal records found";
    return end_op_ - 1;
  }

  uint64_t post_ctor_op_ = 0;
  uint64_t end_op_ = 0;
};

TEST_P(CheckpointRecoveryTest, BitEquivalentToScanAtRandomCuts) {
  LearnOpRange();
  Rng rng(57 + static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 5; ++i) {
    const uint64_t cut_op = i == 0 ? end_op_ - rng.Below(10)
                                   : post_ctor_op_ + 1 +
                                         rng.Below(end_op_ - post_ctor_op_);
    BootedWorld ck = RunWithCut(cut_op, /*force_scan=*/false);
    BootedWorld sc = RunWithCut(cut_op, /*force_scan=*/true);

    ASSERT_NE(ck.ftl->recovery_report(), nullptr);
    ASSERT_NE(sc.ftl->recovery_report(), nullptr);
    const RecoveryReport& ck_report = *ck.ftl->recovery_report();
    const RecoveryReport& sc_report = *sc.ftl->recovery_report();
    EXPECT_TRUE(ck_report.used_checkpoint) << "cut op " << cut_op;
    EXPECT_FALSE(sc_report.used_checkpoint) << "cut op " << cut_op;

    // Bit-equivalence: identical mapping and an identical device afterwards
    // (both boots run the same rebuild and the same epilogue checkpoint).
    ExpectSameMapping(*ck.ftl, *sc.ftl);
    EXPECT_EQ(DeviceDigest(*ck.world.flash), DeviceDigest(*sc.world.flash))
        << "cut op " << cut_op;
    EXPECT_EQ(ck_report.data_mappings, sc_report.data_mappings);
    EXPECT_EQ(ck_report.translation_pages_found, sc_report.translation_pages_found);
    EXPECT_EQ(ck_report.blocks_free, sc_report.blocks_free);
    EXPECT_EQ(ck_report.bad_blocks, sc_report.bad_blocks);

    // The point of the feature: the checkpointed boot reads OOB from the
    // journaled dirty window only, never more than the scan touches.
    EXPECT_LE(ck_report.pages_scanned, sc_report.pages_scanned);
    EXPECT_GT(ck_report.checkpoint_bytes_read, 0u);

    // Twin-world determinism: same cut, fresh world, identical everything.
    BootedWorld twin = RunWithCut(cut_op, /*force_scan=*/false);
    ExpectSameMapping(*ck.ftl, *twin.ftl);
    EXPECT_EQ(DeviceDigest(*ck.world.flash), DeviceDigest(*twin.world.flash));
    const RecoveryReport& twin_report = *twin.ftl->recovery_report();
    EXPECT_EQ(twin_report.pages_scanned, ck_report.pages_scanned);
    EXPECT_EQ(twin_report.journal_records_replayed, ck_report.journal_records_replayed);
    EXPECT_EQ(twin_report.checkpoint_bytes_read, ck_report.checkpoint_bytes_read);
    EXPECT_EQ(twin_report.blocks_rescanned, ck_report.blocks_rescanned);
    EXPECT_EQ(twin_report.data_mappings, ck_report.data_mappings);

    // The checkpointed boot yields a fully working device.
    DriveWorkload(*ck.ftl, *ck.world.flash, 1200);
    const std::map<Lpn, Ppn> after = WinnerScan(*ck.world.flash);
    for (Lpn lpn = 0; lpn < kLogicalPages; ++lpn) {
      const Ppn ppn = ck.ftl->Probe(lpn);
      const auto it = after.find(lpn);
      ASSERT_EQ(ppn != kInvalidPpn, it != after.end()) << "lpn " << lpn;
      if (ppn != kInvalidPpn) {
        ASSERT_EQ(ck.world.flash->StateOf(ppn), PageState::kValid) << "lpn " << lpn;
        ASSERT_EQ(ck.world.flash->OobTag(ppn), lpn);
      }
    }
  }
}

TEST_P(CheckpointRecoveryTest, EmptyJournalFallsBackToScan) {
  LearnOpRange();
  // The crashed run never journaled (checkpointing off), but the recovering
  // boot has it on: nothing to replay, so the boot must scan — and then
  // checkpoint, so the *next* boot would replay.
  const uint64_t cut_op = post_ctor_op_ + (end_op_ - post_ctor_op_) / 2;
  World world = CrashAt(GetParam(), cut_op, /*journal_during_run=*/false);
  ASSERT_TRUE(world.flash->meta_log().empty());
  BootedWorld booted = Recover(std::move(world), /*force_scan=*/false);
  ASSERT_NE(booted.ftl->recovery_report(), nullptr);
  EXPECT_FALSE(booted.ftl->recovery_report()->used_checkpoint);
  EXPECT_GT(booted.ftl->recovery_report()->pages_scanned, 0u);
  // The epilogue checkpoint armed the journal for future boots.
  EXPECT_FALSE(booted.world.flash->meta_log().empty());
}

TEST_P(CheckpointRecoveryTest, BitFlippedInteriorRecordFallsBackToScan) {
  LearnOpRange();
  const uint64_t cut_op = FindCutWithJournalRecords(3);
  World tampered = CrashAt(GetParam(), cut_op);
  World pristine = CrashAt(GetParam(), cut_op);
  ASSERT_GE(tampered.flash->meta_log().size(), 3u);
  // Any interior record failing its checksum is unrecoverable corruption —
  // truncation is only legal at the tail.
  tampered.flash->TestOnlyCorruptMetaRecord(0);
  BootedWorld fell_back = Recover(std::move(tampered), /*force_scan=*/false);
  BootedWorld scanned = Recover(std::move(pristine), /*force_scan=*/true);
  ASSERT_NE(fell_back.ftl->recovery_report(), nullptr);
  EXPECT_FALSE(fell_back.ftl->recovery_report()->used_checkpoint);
  ExpectSameMapping(*fell_back.ftl, *scanned.ftl);
}

TEST_P(CheckpointRecoveryTest, SequenceGapFallsBackToScan) {
  LearnOpRange();
  const uint64_t cut_op = FindCutWithJournalRecords(3);
  World tampered = CrashAt(GetParam(), cut_op);
  World pristine = CrashAt(GetParam(), cut_op);
  ASSERT_GE(tampered.flash->meta_log().size(), 3u);
  // Dropping a middle record leaves verifiable neighbours with a seq gap:
  // lost history, so the whole journal is distrusted.
  tampered.flash->TestOnlyDropMetaRecord(1);
  BootedWorld fell_back = Recover(std::move(tampered), /*force_scan=*/false);
  BootedWorld scanned = Recover(std::move(pristine), /*force_scan=*/true);
  ASSERT_NE(fell_back.ftl->recovery_report(), nullptr);
  EXPECT_FALSE(fell_back.ftl->recovery_report()->used_checkpoint);
  ExpectSameMapping(*fell_back.ftl, *scanned.ftl);
}

TEST_P(CheckpointRecoveryTest, NaturallyTornTailIsTruncatedNotFatal) {
  LearnOpRange();
  // Hunt for cuts that land on the meta append itself: after restore, the
  // torn record sits at the tail with a failing checksum. The generator
  // walks cut candidates until it has seen a few.
  Rng rng(91 + static_cast<uint64_t>(GetParam()));
  int torn_found = 0;
  int tried = 0;
  uint64_t cut_op = post_ctor_op_ + 1 + rng.Below((end_op_ - post_ctor_op_) / 2);
  while (torn_found < 2 && tried < 120 && cut_op < end_op_) {
    World world = CrashAt(GetParam(), cut_op);
    const std::vector<MetaRecord>& log = world.flash->meta_log();
    const bool torn_tail = !log.empty() && !MetaRecordVerifies(log.back());
    if (!torn_tail) {
      ++tried;
      ++cut_op;
      continue;
    }
    ++torn_found;
    ++tried;
    World pristine = CrashAt(GetParam(), cut_op);
    BootedWorld ck = Recover(std::move(world), /*force_scan=*/false);
    BootedWorld sc = Recover(std::move(pristine), /*force_scan=*/true);
    ASSERT_NE(ck.ftl->recovery_report(), nullptr);
    // A torn tail is truncated, not fatal: with the boot checkpoint always
    // present in the valid prefix, recovery stays on the checkpointed path.
    EXPECT_TRUE(ck.ftl->recovery_report()->used_checkpoint) << "cut op " << cut_op;
    ExpectSameMapping(*ck.ftl, *sc.ftl);
    EXPECT_EQ(DeviceDigest(*ck.world.flash), DeviceDigest(*sc.world.flash))
        << "cut op " << cut_op;
    // The epilogue physically removed the torn record — the next boot must
    // not see it as interior corruption.
    for (const MetaRecord& rec : ck.world.flash->meta_log()) {
      EXPECT_TRUE(MetaRecordVerifies(rec));
    }
    cut_op += 1 + rng.Below(20);
  }
  EXPECT_GE(torn_found, 1) << "no cut landed on a meta append in " << tried
                           << " tries";
}

INSTANTIATE_TEST_SUITE_P(AllFtls, CheckpointRecoveryTest,
                         ::testing::Values(FtlKind::kOptimal, FtlKind::kDftl,
                                           FtlKind::kCdftl, FtlKind::kSftl,
                                           FtlKind::kTpftl, FtlKind::kBlockFtl,
                                           FtlKind::kFast, FtlKind::kZftl,
                                           FtlKind::kLearned),
                         [](const ::testing::TestParamInfo<FtlKind>& param_info) {
                           std::string name = FtlKindName(param_info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace tpftl
