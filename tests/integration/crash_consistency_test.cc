// Crash-consistency differential checker (the recovery counterpart of
// recovery_test.cc's steady-state invariant).
//
// For every FTL kind: run a seeded workload once fault-free to learn the
// device's operation-index range, then replay it in fresh worlds with a
// power cut injected at randomized operation indices. After each cut the
// device is rolled back to the cut instant (NandFlash::RestoreToCutInstant),
// the crashed FTL is discarded, and a fresh FTL is constructed with
// recover_from_flash. The recovered mapping must equal an independent
// test-side OOB winner scan of the surviving flash — i.e. the pre-cut
// history minus exactly the provably-unpersisted window (the one torn
// program; everything durable before the cut survives). Recovery must be
// deterministic (two worlds, same cut → identical mapping and report), and
// the recovered FTL must remain fully usable afterwards.

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/ftl_factory.h"
#include "src/flash/fault.h"
#include "src/ftl/recovery.h"
#include "src/util/rng.h"
#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::MakeWorld;
using testing::World;

constexpr uint64_t kLogicalPages = 1024;
constexpr uint64_t kCacheBytes = 32 + 280;
constexpr uint64_t kTotalBlocks = 96;
constexpr uint64_t kWorkloadOps = 4000;

// The deterministic workload every world replays: mixed writes, reads and
// trims over a uniform working set. Stops early once the power cut fires.
void DriveWorkload(Ftl& ftl, NandFlash& flash, uint64_t ops) {
  Rng rng(777);
  for (uint64_t i = 0; i < ops; ++i) {
    const Lpn lpn = rng.Below(kLogicalPages);
    const uint64_t dice = rng.Below(100);
    if (dice < 65) {
      ftl.WritePage(lpn);
    } else if (dice < 92) {
      ftl.ReadPage(lpn);
    } else {
      ftl.TrimPage(lpn);
    }
    if (flash.power_cut_triggered()) {
      return;
    }
  }
}

// Independent ground truth: the per-LPN winner by OOB sequence number over
// the valid data pages. Deliberately reimplemented here (simple two-pass
// form) rather than calling ScanForRecovery — that is the code under test.
std::map<Lpn, Ppn> WinnerScan(const NandFlash& flash) {
  std::map<Lpn, Ppn> winners;
  std::map<Lpn, uint64_t> best_seq;
  const FlashGeometry& g = flash.geometry();
  for (Ppn ppn = 0; ppn < g.total_pages(); ++ppn) {
    if (flash.StateOf(ppn) != PageState::kValid) {
      continue;
    }
    if (flash.OobKindOf(ppn) != OobKind::kData) {
      continue;
    }
    const uint64_t seq = flash.OobSeq(ppn);
    EXPECT_GT(seq, 0u) << "valid page with unreadable OOB, ppn " << ppn;
    const auto lpn = static_cast<Lpn>(flash.OobTag(ppn));
    if (seq > best_seq[lpn]) {
      best_seq[lpn] = seq;
      winners[lpn] = ppn;
    }
  }
  return winners;
}

struct CrashRun {
  World world;
  std::unique_ptr<Ftl> recovered;
  std::map<Lpn, Ppn> expected;  // Test-side winner scan at the cut instant.
};

// Replays the workload in a fresh world, cuts power at `cut_op`, restores
// the flash to the cut instant and recovers a fresh FTL from it.
CrashRun RunWithCut(FtlKind kind, uint64_t cut_op) {
  CrashRun run;
  run.world = MakeWorld(kLogicalPages, kCacheBytes, kTotalBlocks);
  FaultPlan plan;
  plan.power_cut_at_op = cut_op;
  run.world.flash->InstallFaultPlan(plan);

  {
    auto crashed = CreateFtl(kind, run.world.env);
    DriveWorkload(*crashed, *run.world.flash, kWorkloadOps);
    EXPECT_TRUE(run.world.flash->power_cut_triggered())
        << "cut op " << cut_op << " never reached";
  }  // The crashed FTL's RAM state dies with the power.

  run.world.flash->RestoreToCutInstant();
  WinnerScan(*run.world.flash).swap(run.expected);

  run.world.env.recover_from_flash = true;
  run.recovered = CreateFtl(kind, run.world.env);
  return run;
}

void ExpectMappingMatches(const Ftl& ftl, const std::map<Lpn, Ppn>& expected) {
  for (Lpn lpn = 0; lpn < kLogicalPages; ++lpn) {
    const auto it = expected.find(lpn);
    ASSERT_EQ(ftl.Probe(lpn), it == expected.end() ? kInvalidPpn : it->second)
        << "lpn " << lpn;
  }
}

// Block-mapped FTLs (BlockFTL, FAST) may legitimately relocate surviving
// pages while recovering — a cut mid-merge leaves an LBN split across blocks
// and recovery finishes the consolidation. For them the guarantee is weaker
// than PPN identity: exactly the surviving LPNs stay mapped, and each maps to
// a valid flash page still carrying its tag.
void ExpectMappingEquivalent(const Ftl& ftl, const NandFlash& flash,
                             const std::map<Lpn, Ppn>& expected) {
  for (Lpn lpn = 0; lpn < kLogicalPages; ++lpn) {
    const Ppn ppn = ftl.Probe(lpn);
    ASSERT_EQ(ppn != kInvalidPpn, expected.count(lpn) != 0) << "lpn " << lpn;
    if (ppn != kInvalidPpn) {
      ASSERT_EQ(flash.StateOf(ppn), PageState::kValid) << "lpn " << lpn;
      ASSERT_EQ(flash.OobTag(ppn), lpn);
    }
  }
}

bool RecoveryRelocates(FtlKind kind) {
  return kind == FtlKind::kBlockFtl || kind == FtlKind::kFast;
}

class CrashConsistencyTest : public ::testing::TestWithParam<FtlKind> {};

TEST_P(CrashConsistencyTest, RecoveryRebuildsTheSurvivingMapping) {
  // Learn the op-index range from a fault-free reference run; cuts must land
  // after FTL construction (formatting) so recovery is what is being tested,
  // not construction-time crashes.
  World ref = MakeWorld(kLogicalPages, kCacheBytes, kTotalBlocks);
  uint64_t post_ctor_op = 0;
  uint64_t end_op = 0;
  {
    auto ftl = CreateFtl(GetParam(), ref.env);
    post_ctor_op = ref.flash->op_index();
    DriveWorkload(*ftl, *ref.flash, kWorkloadOps);
    end_op = ref.flash->op_index();
  }
  ASSERT_GT(end_op, post_ctor_op + 10);

  Rng rng(31 + static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 4; ++i) {
    // Cut points spread across the run, including one right near the end.
    const uint64_t cut_op = i == 0 ? end_op - rng.Below(10)
                                   : post_ctor_op + 1 + rng.Below(end_op - post_ctor_op);
    CrashRun run = RunWithCut(GetParam(), cut_op);
    ASSERT_NE(run.recovered->recovery_report(), nullptr);

    // The recovered view equals the flash's surviving winners — by exact PPN
    // for page-mapped FTLs, by surviving-LPN set for relocating ones.
    if (RecoveryRelocates(GetParam())) {
      ExpectMappingEquivalent(*run.recovered, *run.world.flash, run.expected);
    } else {
      ExpectMappingMatches(*run.recovered, run.expected);
    }

    // Report sanity: everything durable was scanned and counted.
    const RecoveryReport& report = *run.recovered->recovery_report();
    EXPECT_EQ(report.data_mappings, run.expected.size()) << "cut op " << cut_op;
    EXPECT_GT(report.pages_scanned, 0u);
    EXPECT_GT(report.scan_time_us, 0.0);

    // Determinism: an independent world with the same cut recovers to the
    // identical mapping and report.
    CrashRun twin = RunWithCut(GetParam(), cut_op);
    ASSERT_EQ(twin.expected, run.expected) << "cut op " << cut_op;
    for (Lpn lpn = 0; lpn < kLogicalPages; ++lpn) {
      ASSERT_EQ(twin.recovered->Probe(lpn), run.recovered->Probe(lpn)) << "lpn " << lpn;
    }
    const RecoveryReport& twin_report = *twin.recovered->recovery_report();
    EXPECT_EQ(twin_report.pages_scanned, report.pages_scanned);
    EXPECT_EQ(twin_report.data_mappings, report.data_mappings);
    EXPECT_EQ(twin_report.torn_pages, report.torn_pages);
    EXPECT_EQ(twin_report.unpersisted_window, report.unpersisted_window);
    EXPECT_EQ(twin_report.translation_rewrites, report.translation_rewrites);

    // The recovered FTL is a fully working device: drive more traffic, then
    // re-verify the steady-state OOB invariant both ways.
    DriveWorkload(*run.recovered, *run.world.flash, 1500);
    std::map<Lpn, Ppn> after;
    WinnerScan(*run.world.flash).swap(after);
    ExpectMappingMatches(*run.recovered, after);
  }
}

// TRIM under power cut: the cut lands right between a TRIM and the lazy
// persistence of its mapping metadata (for demand FTLs the cached
// translation entry is only rewritten to flash on a later eviction). The
// invalidate itself is durable — it happened before the cut instant — so
// recovery must never resurrect a trimmed LPN from a stale translation
// page or any other surviving copy.
//
// Victims live at the top of the LPN space and the filler stream draws
// from below it, so after its TRIM a victim is provably never rewritten.
constexpr Lpn kTrimVictims[] = {901, 923, 987, 1014};
constexpr uint64_t kFillerSpan = 890;  // Filler writes stay below victims.

void DriveTrimWorkload(Ftl& ftl, NandFlash& flash,
                       std::vector<uint64_t>* trim_ops) {
  Rng rng(4242);
  const auto filler = [&](uint64_t n) {
    for (uint64_t i = 0; i < n && !flash.power_cut_triggered(); ++i) {
      ftl.WritePage(rng.Below(kFillerSpan));
    }
  };
  for (const Lpn victim : kTrimVictims) {
    if (flash.power_cut_triggered()) {
      return;
    }
    ftl.WritePage(victim);
  }
  filler(200);
  for (const Lpn victim : kTrimVictims) {
    if (flash.power_cut_triggered()) {
      return;
    }
    ftl.TrimPage(victim);
    if (trim_ops != nullptr) {
      trim_ops->push_back(flash.op_index());
    }
    filler(60);  // Enough traffic that lazy metadata persistence is pending.
  }
  filler(200);
}

TEST_P(CrashConsistencyTest, CutAfterTrimNeverResurrectsTrimmedLpns) {
  // Reference run: learn the op index of every TRIM.
  std::vector<uint64_t> trim_ops;
  {
    World ref = MakeWorld(kLogicalPages, kCacheBytes, kTotalBlocks);
    auto ftl = CreateFtl(GetParam(), ref.env);
    DriveTrimWorkload(*ftl, *ref.flash, &trim_ops);
  }
  ASSERT_EQ(trim_ops.size(), std::size(kTrimVictims));

  for (size_t i = 0; i < std::size(kTrimVictims); ++i) {
    // Cut during the first program after TRIM #i: the trim's invalidate is
    // durable (it precedes the cut instant), its metadata persistence is not.
    World world = MakeWorld(kLogicalPages, kCacheBytes, kTotalBlocks);
    FaultPlan plan;
    plan.power_cut_at_op = trim_ops[i] + 1;
    world.flash->InstallFaultPlan(plan);
    {
      auto crashed = CreateFtl(GetParam(), world.env);
      DriveTrimWorkload(*crashed, *world.flash, nullptr);
      ASSERT_TRUE(world.flash->power_cut_triggered())
          << "cut op " << plan.power_cut_at_op << " never reached";
    }
    world.flash->RestoreToCutInstant();
    const std::map<Lpn, Ppn> winners = WinnerScan(*world.flash);

    world.env.recover_from_flash = true;
    auto recovered = CreateFtl(GetParam(), world.env);
    ASSERT_NE(recovered->recovery_report(), nullptr);
    for (size_t j = 0; j <= i; ++j) {
      const Lpn victim = kTrimVictims[j];
      ASSERT_EQ(winners.count(victim), 0u)
          << "flash still holds a valid winner for trimmed lpn " << victim;
      ASSERT_EQ(recovered->Probe(victim), kInvalidPpn)
          << "recovery resurrected trimmed lpn " << victim << " (cut after trim #"
          << i << ")";
    }
    // Victims trimmed after the cut are still live at the cut instant.
    for (size_t j = i + 1; j < std::size(kTrimVictims); ++j) {
      ASSERT_NE(recovered->Probe(kTrimVictims[j]), kInvalidPpn)
          << "lpn " << kTrimVictims[j] << " lost before its trim";
    }
    // The recovered device stays usable: the trimmed LPN can be rewritten.
    recovered->WritePage(kTrimVictims[i]);
    EXPECT_NE(recovered->Probe(kTrimVictims[i]), kInvalidPpn);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFtls, CrashConsistencyTest,
                         ::testing::Values(FtlKind::kOptimal, FtlKind::kDftl, FtlKind::kCdftl,
                                           FtlKind::kSftl, FtlKind::kTpftl, FtlKind::kBlockFtl,
                                           FtlKind::kFast, FtlKind::kZftl, FtlKind::kLearned),
                         [](const ::testing::TestParamInfo<FtlKind>& param_info) {
                           std::string name = FtlKindName(param_info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace tpftl
