// Cross-FTL property suite: every FTL flavor must preserve the logical →
// physical mapping invariants under random churn with garbage collection.

#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "src/core/ftl_factory.h"
#include "src/util/rng.h"
#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::MakeWorld;
using testing::World;

struct Flavor {
  std::string label;  // For test naming.
  FtlKind kind;
  std::string tpftl_config;  // Only for kTpftl.
};

class FtlConsistencyTest : public ::testing::TestWithParam<Flavor> {};

std::unique_ptr<Ftl> MakeFlavor(const Flavor& flavor, const FtlEnv& env) {
  return CreateFtl(flavor.kind, env, TpftlOptions::FromLabel(flavor.tpftl_config));
}

// After arbitrary churn, the full mapping must satisfy:
//   1. Probe(lpn) is valid exactly for written LPNs;
//   2. the mapped physical page is in state kValid and OOB-tagged with lpn;
//   3. no two LPNs share a physical page.
TEST_P(FtlConsistencyTest, MappingInvariantsHoldUnderChurn) {
  World w = MakeWorld(1024, /*cache_bytes=*/32 + 280, /*total_blocks=*/96);
  auto ftl = MakeFlavor(GetParam(), w.env);

  Rng rng(2024);
  std::map<Lpn, uint64_t> version;  // Shadow: lpn → write count.
  for (int i = 0; i < 8000; ++i) {
    const Lpn lpn = rng.Below(1024);
    if (rng.Chance(0.75)) {
      ftl->WritePage(lpn);
      ++version[lpn];
    } else {
      ftl->ReadPage(lpn);
    }
  }

  std::set<Ppn> seen;
  for (Lpn lpn = 0; lpn < 1024; ++lpn) {
    const Ppn ppn = ftl->Probe(lpn);
    if (version.contains(lpn)) {
      ASSERT_NE(ppn, kInvalidPpn) << "written lpn " << lpn << " lost its mapping";
      ASSERT_EQ(w.flash->StateOf(ppn), PageState::kValid) << "lpn " << lpn;
      ASSERT_EQ(w.flash->OobTag(ppn), lpn) << "lpn " << lpn;
      ASSERT_TRUE(seen.insert(ppn).second) << "ppn " << ppn << " mapped twice";
    } else {
      ASSERT_EQ(ppn, kInvalidPpn) << "never-written lpn " << lpn << " got mapped";
    }
  }
}

TEST_P(FtlConsistencyTest, GarbageCollectionRunsAndReclaims) {
  World w = MakeWorld(1024, 32 + 280, /*total_blocks=*/84);
  auto ftl = MakeFlavor(GetParam(), w.env);
  // Write 4x the logical space: GC must have reclaimed blocks.
  Rng rng(7);
  for (int i = 0; i < 4096; ++i) {
    ftl->WritePage(rng.Below(1024));
  }
  EXPECT_GT(w.flash->TotalEraseCount(), 0u);
  // The device never deadlocks: every write found a free page (reaching
  // here without a CHECK abort proves it), and erase counts are sane.
  EXPECT_LT(w.flash->MaxEraseCount(), 4096u);
}

TEST_P(FtlConsistencyTest, StatsAreInternallyCoherent) {
  World w = MakeWorld(1024, 32 + 280, 96);
  auto ftl = MakeFlavor(GetParam(), w.env);
  Rng rng(99);
  uint64_t reads = 0;
  uint64_t writes = 0;
  for (int i = 0; i < 5000; ++i) {
    const Lpn lpn = rng.Below(1024);
    if (rng.Chance(0.6)) {
      ftl->WritePage(lpn);
      ++writes;
    } else {
      ftl->ReadPage(lpn);
      ++reads;
    }
  }
  const AtStats& s = ftl->stats();
  EXPECT_EQ(s.host_page_reads, reads);
  EXPECT_EQ(s.host_page_writes, writes);
  // Every lookup is a cache hit, a translation-path miss, or (LearnedFTL
  // only) a verified model prediction; model *misses* fall through into the
  // translation path and are already counted in `misses`.
  EXPECT_EQ(s.hits + s.misses + s.model_hits, s.lookups);
  EXPECT_GE(s.lookups, reads + writes);
  EXPECT_LE(s.dirty_evictions, s.evictions);
  EXPECT_GE(s.hit_ratio(), 0.0);
  EXPECT_LE(s.hit_ratio(), 1.0);
  EXPECT_GE(s.write_amplification(), 1.0);
  // GC accounting: hits + misses == migrated data pages.
  EXPECT_EQ(s.gc_hits + s.gc_misses, s.gc_data_migrations);
}

TEST_P(FtlConsistencyTest, FlashWriteAttributionBalances) {
  World w = MakeWorld(1024, 32 + 280, 96);
  auto ftl = MakeFlavor(GetParam(), w.env);
  Rng rng(41);
  for (int i = 0; i < 6000; ++i) {
    ftl->WritePage(rng.Below(1024));
  }
  const AtStats& s = ftl->stats();
  EXPECT_EQ(w.flash->stats().page_writes,
            s.host_page_writes + s.trans_writes_at + s.trans_writes_gc + s.gc_data_migrations);
}

TEST_P(FtlConsistencyTest, SequentialOverwriteIsStable) {
  World w = MakeWorld(1024, 32 + 280, 96);
  auto ftl = MakeFlavor(GetParam(), w.env);
  for (int round = 0; round < 5; ++round) {
    for (Lpn lpn = 0; lpn < 1024; ++lpn) {
      ftl->WritePage(lpn);
    }
  }
  for (Lpn lpn = 0; lpn < 1024; ++lpn) {
    const Ppn ppn = ftl->Probe(lpn);
    ASSERT_NE(ppn, kInvalidPpn);
    ASSERT_EQ(w.flash->OobTag(ppn), lpn);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFtls, FtlConsistencyTest,
    ::testing::Values(Flavor{"Optimal", FtlKind::kOptimal, ""},
                      Flavor{"DFTL", FtlKind::kDftl, ""},
                      Flavor{"CDFTL", FtlKind::kCdftl, ""},
                      Flavor{"SFTL", FtlKind::kSftl, ""},
                      Flavor{"BlockFTL", FtlKind::kBlockFtl, ""},
                      Flavor{"FAST", FtlKind::kFast, ""},
                      Flavor{"ZFTL", FtlKind::kZftl, ""},
                      Flavor{"LearnedFTL", FtlKind::kLearned, ""},
                      Flavor{"TPFTL_none", FtlKind::kTpftl, "--"},
                      Flavor{"TPFTL_b", FtlKind::kTpftl, "b"},
                      Flavor{"TPFTL_c", FtlKind::kTpftl, "c"},
                      Flavor{"TPFTL_bc", FtlKind::kTpftl, "bc"},
                      Flavor{"TPFTL_rs", FtlKind::kTpftl, "rs"},
                      Flavor{"TPFTL_full", FtlKind::kTpftl, "rsbc"}),
    [](const ::testing::TestParamInfo<Flavor>& info) { return info.param.label; });

}  // namespace
}  // namespace tpftl
