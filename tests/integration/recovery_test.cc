// Power-loss recovery invariant: real FTLs rebuild their mapping table after
// a crash by scanning flash out-of-band metadata. Whatever an FTL's cache
// and persisted table say, a full OOB scan of the valid data pages must
// reconstruct exactly the same logical→physical mapping — this is the
// ground-truth view of the flash array, independent of any FTL bookkeeping.

#include <unordered_map>

#include <gtest/gtest.h>

#include "src/core/ftl_factory.h"
#include "src/ftl/block_manager.h"
#include "src/util/rng.h"
#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::MakeWorld;
using testing::World;

class RecoveryTest : public ::testing::TestWithParam<FtlKind> {};

TEST_P(RecoveryTest, OobScanReconstructsTheExactMapping) {
  World w = MakeWorld(1024, 32 + 280, 96);
  auto ftl = CreateFtl(GetParam(), w.env);
  Rng rng(1234);
  for (int i = 0; i < 7000; ++i) {
    const Lpn lpn = rng.Below(1024);
    if (rng.Chance(0.8)) {
      ftl->WritePage(lpn);
    } else {
      ftl->ReadPage(lpn);
    }
  }

  // Identify data blocks. Demand FTLs expose pool information through the
  // block manager; block/hybrid FTLs only ever hold data.
  const auto* demand = dynamic_cast<const DemandFtl*>(ftl.get());
  auto is_data_block = [&](BlockId block) {
    return demand == nullptr || demand->block_manager().PoolOf(block) == BlockPool::kData;
  };

  std::unordered_map<Lpn, Ppn> rebuilt;
  const FlashGeometry& g = w.flash->geometry();
  for (BlockId block = 0; block < g.total_blocks; ++block) {
    if (!is_data_block(block)) {
      continue;
    }
    for (uint64_t offset = 0; offset < g.pages_per_block; ++offset) {
      const Ppn ppn = g.PpnOf(block, offset);
      if (w.flash->StateOf(ppn) != PageState::kValid) {
        continue;
      }
      const auto lpn = static_cast<Lpn>(w.flash->OobTag(ppn));
      ASSERT_TRUE(rebuilt.emplace(lpn, ppn).second) << "two valid pages claim lpn " << lpn;
    }
  }

  // The rebuilt table matches the FTL's own view, in both directions.
  for (const auto& [lpn, ppn] : rebuilt) {
    ASSERT_EQ(ftl->Probe(lpn), ppn) << "lpn " << lpn;
  }
  for (Lpn lpn = 0; lpn < 1024; ++lpn) {
    const Ppn ppn = ftl->Probe(lpn);
    if (ppn != kInvalidPpn) {
      const auto it = rebuilt.find(lpn);
      ASSERT_TRUE(it != rebuilt.end()) << "lpn " << lpn << " mapped but not on flash";
      ASSERT_EQ(it->second, ppn);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFtls, RecoveryTest,
                         ::testing::Values(FtlKind::kOptimal, FtlKind::kDftl, FtlKind::kCdftl,
                                           FtlKind::kSftl, FtlKind::kTpftl, FtlKind::kBlockFtl,
                                           FtlKind::kFast, FtlKind::kZftl, FtlKind::kLearned),
                         [](const ::testing::TestParamInfo<FtlKind>& info) {
                           std::string name = FtlKindName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace tpftl
