// SimCheck ctest entry: every FTL through every schedule profile, bounded
// and deterministic, plus the harness's own validation — a deliberately
// sabotaged FTL must be caught, shrunk to a tiny repro, and the repro must
// replay to the identical divergence. Knobs:
//
//   TPFTL_SIMCHECK_OPS        — ops per (FTL, profile) run (default 1500;
//                               verify.sh --simcheck and the nightly CI job
//                               raise it).
//   TPFTL_SIMCHECK_REPRO_DIR  — where failing runs drop .simcheck repro
//                               files (default simcheck-repros/ under the
//                               test working directory; CI uploads it).

#include <cstdlib>
#include <filesystem>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "src/testing/repro.h"
#include "src/testing/schedule.h"
#include "src/testing/shrink.h"
#include "src/testing/simcheck.h"

namespace tpftl::simcheck {
namespace {

constexpr uint64_t kSeed = 20260807;

uint64_t OpsFromEnv() {
  const char* env = std::getenv("TPFTL_SIMCHECK_OPS");
  if (env != nullptr) {
    const uint64_t parsed = std::strtoull(env, nullptr, 10);
    if (parsed > 0) {
      return parsed;
    }
  }
  return 1500;
}

std::string ReproDir() {
  const char* env = std::getenv("TPFTL_SIMCHECK_REPRO_DIR");
  const std::string dir = env != nullptr ? env : "simcheck-repros";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

using Param = std::tuple<FtlKind, std::string>;

class SimCheckTest : public ::testing::TestWithParam<Param> {};

TEST_P(SimCheckTest, ProfileRunsCleanAndDeterministically) {
  const auto [kind, profile_name] = GetParam();
  const SimProfile profile = ProfileByName(profile_name);
  const uint64_t ops = OpsFromEnv();

  const CheckOutcome outcome = CheckFtl(kind, profile, kSeed, ops, ReproDir());
  ASSERT_TRUE(outcome.result.ok)
      << outcome.result.message << "\n  shrunk to " << outcome.shrunk_ops.size()
      << " ops -> " << outcome.shrunk_result.message << "\n  repro: "
      << (outcome.repro_path.empty() ? "(not written)" : outcome.repro_path);
  EXPECT_EQ(outcome.result.steps_executed, ops);
  EXPECT_GT(outcome.result.deep_checks, 0u);
  if (profile.power_cut_prob > 0.0) {
    // The generator guarantees a cut in the first half of the schedule, so
    // recovery must have been exercised.
    EXPECT_GE(outcome.result.power_cuts, 1u) << "power cut never fired";
    EXPECT_EQ(outcome.result.recoveries, outcome.result.power_cuts);
  }

  // Determinism: the same (kind, profile, seed, ops) quadruple reaches the
  // same verdict and the bit-identical end state.
  const std::vector<SimOp> schedule = GenerateSchedule(profile, kSeed, ops);
  const SimResult replay = RunSchedule(kind, profile, kSeed, schedule);
  EXPECT_TRUE(replay.ok);
  EXPECT_EQ(replay.final_digest, outcome.result.final_digest);
  EXPECT_EQ(replay.power_cuts, outcome.result.power_cuts);
  EXPECT_EQ(replay.steps_executed, outcome.result.steps_executed);
}

INSTANTIATE_TEST_SUITE_P(
    AllFtls, SimCheckTest,
    ::testing::Combine(
        ::testing::Values(FtlKind::kOptimal, FtlKind::kDftl, FtlKind::kCdftl,
                          FtlKind::kSftl, FtlKind::kTpftl, FtlKind::kBlockFtl,
                          FtlKind::kFast, FtlKind::kZftl, FtlKind::kLearned),
        ::testing::Values(std::string("plain"), std::string("faulty"),
                          std::string("powercut"), std::string("buffered"),
                          std::string("parallel"), std::string("checkpointed"),
                          std::string("aging"))),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = std::string(FtlKindName(std::get<0>(info.param))) + "_" +
                         std::get<1>(info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

// The net must catch fish: sabotage the FTL (drop every mapping commit for
// one LPN via the test-only hook), confirm SimCheck flags it, shrinks the
// schedule to a handful of ops, and the serialized repro replays to the
// exact same divergence point.
TEST(SimCheckSelfValidation, SeededBugIsCaughtShrunkAndReplays) {
  SimProfile profile = ProfileByName("plain");
  const uint64_t ops = 800;
  std::vector<SimOp> schedule = GenerateSchedule(profile, 99, ops);
  // Sabotage the first written LPN so the bug is guaranteed reachable.
  Lpn victim = kInvalidLpn;
  for (const SimOp& op : schedule) {
    if (op.kind == OpKind::kWrite) {
      victim = op.lpn;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidLpn);
  profile.sabotage_drop_commit_lpn = victim;

  const SimResult failure = RunSchedule(FtlKind::kDftl, profile, 99, schedule);
  ASSERT_FALSE(failure.ok) << "sabotaged FTL passed the oracle";

  const ShrinkResult shrunk = ShrinkSchedule(FtlKind::kDftl, profile, 99, schedule);
  ASSERT_FALSE(shrunk.failure.ok);
  EXPECT_LE(shrunk.ops.size(), 25u) << "shrinker left " << shrunk.ops.size() << " ops";

  Repro repro;
  repro.kind = FtlKind::kDftl;
  repro.profile = profile;
  repro.seed = 99;
  repro.ops = shrunk.ops;
  const std::string text = SerializeRepro(repro);
  Repro parsed;
  std::string error;
  ASSERT_TRUE(ParseRepro(text, &parsed, &error)) << error;
  ASSERT_EQ(parsed.ops.size(), repro.ops.size());

  const SimResult replay =
      RunSchedule(parsed.kind, parsed.profile, parsed.seed, parsed.ops);
  ASSERT_FALSE(replay.ok);
  EXPECT_EQ(replay.failed_step, shrunk.failure.failed_step);
  EXPECT_EQ(replay.message, shrunk.failure.message);
}

// Checked-in corpus: seed schedules that once exercised interesting
// interleavings replay clean forever (clean_*.simcheck), and the recorded
// sabotage repro keeps failing — proof the oracle stays armed
// (failing_*.simcheck).
TEST(SimCheckCorpus, CheckedInReprosReplayToTheirRecordedVerdicts) {
  const std::filesystem::path corpus = std::filesystem::path(TPFTL_SOURCE_DIR) /
                                       "tests" / "corpus";
  ASSERT_TRUE(std::filesystem::is_directory(corpus)) << corpus;
  uint64_t seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus)) {
    if (entry.path().extension() != ".simcheck") {
      continue;
    }
    ++seen;
    Repro repro;
    std::string error;
    ASSERT_TRUE(ReadReproFile(entry.path().string(), &repro, &error))
        << entry.path() << ": " << error;
    const SimResult verdict =
        RunSchedule(repro.kind, repro.profile, repro.seed, repro.ops);
    const std::string name = entry.path().filename().string();
    if (name.rfind("failing_", 0) == 0) {
      EXPECT_FALSE(verdict.ok) << name << " no longer fails — the oracle lost teeth";
    } else {
      EXPECT_TRUE(verdict.ok) << name << ": " << verdict.message;
    }
  }
  EXPECT_GE(seen, 3u) << "corpus went missing";
}

}  // namespace
}  // namespace tpftl::simcheck
