// Idle-time (background) garbage collection.

#include <gtest/gtest.h>

#include "src/ftl/dftl.h"
#include "src/ssd/runner.h"
#include "src/util/rng.h"
#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::MakeWorld;
using testing::World;

TEST(BackgroundGcTest, NoOpWhenFreePoolIsComfortable) {
  World w = MakeWorld(1024, 32 + 280, 96);
  Dftl ftl(w.env);
  EXPECT_DOUBLE_EQ(ftl.BackgroundGc(1e9), 0.0);  // Fresh device: nothing to do.
}

TEST(BackgroundGcTest, ReclaimsTowardSoftWatermarkWithinBudget) {
  World w = MakeWorld(1024, 32 + 280, /*total_blocks=*/84, /*gc_threshold=*/6);
  Dftl ftl(w.env);
  Rng rng(3);
  // Hot overwrites manufacture cheap garbage: blocks full of dead pages.
  for (int i = 0; i < 4000; ++i) {
    ftl.WritePage(rng.Below(128));
  }
  const uint64_t free_before = ftl.block_manager().free_block_count();
  ASSERT_LT(free_before, 12u);  // Below the soft watermark (2 × threshold).
  const MicroSec spent = ftl.BackgroundGc(1e9);
  EXPECT_GT(spent, 0.0);
  EXPECT_GE(ftl.block_manager().free_block_count(), free_before);
  // With an unlimited budget it either reaches the watermark or runs out of
  // cheap (≤ three-quarter-valid) victims.
  const bool reached = ftl.block_manager().free_block_count() >= 12;
  const BlockId next = const_cast<BlockManager&>(ftl.block_manager()).PickVictim();
  const bool only_expensive_left =
      next == kInvalidBlock || w.flash->block(next).valid_pages() > 12;
  EXPECT_TRUE(reached || only_expensive_left);
}

TEST(BackgroundGcTest, RespectsTimeBudget) {
  World w = MakeWorld(1024, 32 + 280, 84, 6);
  Dftl ftl(w.env);
  Rng rng(4);
  for (int i = 0; i < 3000; ++i) {
    ftl.WritePage(rng.Below(1024));
  }
  // A budget smaller than one erase: at most one collection happens, and the
  // overshoot is bounded by a single collection's cost.
  const MicroSec spent = ftl.BackgroundGc(10.0);
  const MicroSec one_collection_bound =
      w.geometry.block_erase_us +
      static_cast<double>(w.geometry.pages_per_block) * 3 *
          (w.geometry.page_read_us + w.geometry.page_write_us);
  EXPECT_LE(spent, one_collection_bound);
}

TEST(BackgroundGcTest, MappingsStayConsistent) {
  World w = MakeWorld(1024, 32 + 280, 84, 6);
  Dftl ftl(w.env);
  Rng rng(5);
  std::vector<bool> written(1024, false);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 300; ++i) {
      const Lpn lpn = rng.Below(1024);
      ftl.WritePage(lpn);
      written[lpn] = true;
    }
    ftl.BackgroundGc(50000.0);
  }
  for (Lpn lpn = 0; lpn < 1024; ++lpn) {
    if (!written[lpn]) {
      continue;
    }
    const Ppn ppn = ftl.Probe(lpn);
    ASSERT_NE(ppn, kInvalidPpn);
    ASSERT_EQ(w.flash->OobTag(ppn), lpn);
  }
}

TEST(BackgroundGcTest, SsdIdleGapsAbsorbGcWork) {
  // With large idle gaps, background GC should strictly reduce the maximum
  // (GC-cascade) response time versus foreground-only GC.
  auto run = [](bool background) {
    ExperimentConfig config;
    config.workload.name = "bg-gc";
    config.workload.address_space_bytes = 32ULL << 20;
    config.workload.num_requests = 20000;
    config.workload.write_ratio = 0.95;
    config.workload.zipf_theta = 1.4;
    config.workload.chunk_pages = 16;
    config.workload.mean_interarrival_us = 20000.0;  // Plenty of idle time.
    config.ftl_kind = FtlKind::kDftl;
    config.background_gc = background;
    return RunExperiment(config);
  };
  const RunReport foreground = run(false);
  const RunReport background = run(true);
  EXPECT_LT(background.max_response_us, foreground.max_response_us);
  EXPECT_LE(background.mean_response_us, foreground.mean_response_us);
  // Total flash work is not magically reduced — only moved off the path.
  EXPECT_NEAR(static_cast<double>(background.flash.page_writes),
              static_cast<double>(foreground.flash.page_writes),
              static_cast<double>(foreground.flash.page_writes) * 0.2);
}

}  // namespace
}  // namespace tpftl
