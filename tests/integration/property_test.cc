// Property sweeps (parameterized): invariants that must hold for every FTL
// at every cache size under every workload style.

#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "src/ssd/runner.h"

namespace tpftl {
namespace {

WorkloadConfig StyledWorkload(const std::string& style, uint64_t requests) {
  WorkloadConfig c;
  c.name = style;
  c.address_space_bytes = 16ULL << 20;  // 4096 pages.
  c.num_requests = requests;
  c.seed = 3;
  c.chunk_pages = 16;
  if (style == "random-write") {
    c.write_ratio = 0.9;
    c.zipf_theta = 1.1;
  } else if (style == "read-mostly") {
    c.write_ratio = 0.1;
    c.zipf_theta = 1.1;
  } else if (style == "sequential") {
    c.write_ratio = 0.7;
    c.seq_read_fraction = 0.6;
    c.seq_write_fraction = 0.6;
    c.mean_seq_bytes = 32 * 1024;
    c.zipf_theta = 0.9;
  } else {  // "uniform"
    c.write_ratio = 0.5;
    c.zipf_theta = 0.0;
  }
  return c;
}

using Param = std::tuple<FtlKind, std::string>;

class FtlPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(FtlPropertyTest, MetricsStayInTheirDomains) {
  const auto [kind, style] = GetParam();
  ExperimentConfig config;
  config.workload = StyledWorkload(style, 4000);
  config.ftl_kind = kind;
  const RunReport r = RunExperiment(config);

  EXPECT_GE(r.hit_ratio, 0.0);
  EXPECT_LE(r.hit_ratio, 1.0);
  EXPECT_GE(r.prd, 0.0);
  EXPECT_LE(r.prd, 1.0);
  EXPECT_GE(r.write_amplification, 1.0);
  EXPECT_GE(r.mean_response_us, 0.0);
  EXPECT_LE(r.mean_response_us, r.max_response_us);
  EXPECT_EQ(r.stats.hits + r.stats.misses, r.stats.lookups);
  EXPECT_LE(r.stats.dirty_evictions, r.stats.evictions);
  EXPECT_EQ(r.stats.gc_hits + r.stats.gc_misses, r.stats.gc_data_migrations);
}

TEST_P(FtlPropertyTest, FlashWriteAttributionBalances) {
  const auto [kind, style] = GetParam();
  ExperimentConfig config;
  config.workload = StyledWorkload(style, 4000);
  config.ftl_kind = kind;
  const RunReport r = RunExperiment(config);
  EXPECT_EQ(r.flash.page_writes, r.stats.host_page_writes + r.stats.trans_writes_at +
                                     r.stats.trans_writes_gc + r.stats.gc_data_migrations);
}

TEST_P(FtlPropertyTest, BiggerCacheNeverHurtsHitRatio) {
  const auto [kind, style] = GetParam();
  if (kind == FtlKind::kOptimal) {
    GTEST_SKIP() << "optimal has no cache-size axis";
  }
  ExperimentConfig config;
  config.workload = StyledWorkload(style, 4000);
  config.ftl_kind = kind;
  config.cache_bytes = 1024;
  const RunReport small = RunExperiment(config);
  config.cache_bytes = 64 * 1024;
  const RunReport big = RunExperiment(config);
  // Allow a whisker of noise; the trend must not invert materially.
  EXPECT_GE(big.hit_ratio + 0.02, small.hit_ratio)
      << FtlKindName(kind) << " on " << style;
  EXPECT_LE(big.trans_reads, small.trans_reads + small.trans_reads / 10 + 16);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FtlPropertyTest,
    ::testing::Combine(::testing::Values(FtlKind::kDftl, FtlKind::kCdftl, FtlKind::kSftl,
                                         FtlKind::kTpftl, FtlKind::kOptimal),
                       ::testing::Values(std::string("random-write"), std::string("read-mostly"),
                                         std::string("sequential"), std::string("uniform"))),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = std::string(FtlKindName(std::get<0>(info.param))) + "_" +
                         std::get<1>(info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

// TPFTL-specific invariants across all 16 technique combinations.
class TpftlConfigPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TpftlConfigPropertyTest, EveryTechniqueComboIsSoundAndBounded) {
  TpftlOptions options;
  const int bits = GetParam();
  options.request_prefetch = (bits & 1) != 0;
  options.selective_prefetch = (bits & 2) != 0;
  options.batch_update = (bits & 4) != 0;
  options.clean_first = (bits & 8) != 0;

  ExperimentConfig config;
  config.workload = StyledWorkload("random-write", 3000);
  config.ftl_kind = FtlKind::kTpftl;
  config.tpftl_options = options;
  const RunReport r = RunExperiment(config);
  EXPECT_GE(r.hit_ratio, 0.0);
  EXPECT_LE(r.prd, 1.0);
  EXPECT_EQ(r.flash.page_writes, r.stats.host_page_writes + r.stats.trans_writes_at +
                                     r.stats.trans_writes_gc + r.stats.gc_data_migrations);
  if (options.batch_update) {
    // Batch update must keep Prd far below the no-technique baseline (§4.4).
    EXPECT_LT(r.prd, 0.25) << "config " << options.Label();
  }
}

INSTANTIATE_TEST_SUITE_P(AllCombos, TpftlConfigPropertyTest, ::testing::Range(0, 16));

}  // namespace
}  // namespace tpftl
