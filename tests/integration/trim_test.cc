// TRIM/deallocate semantics, across every FTL and through the SSD layer.

#include <gtest/gtest.h>

#include "src/core/ftl_factory.h"
#include "src/ssd/ssd.h"
#include "src/util/rng.h"
#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::MakeWorld;
using testing::World;

class TrimTest : public ::testing::TestWithParam<FtlKind> {};

TEST_P(TrimTest, TrimDropsMappingAndFreesThePage) {
  World w = MakeWorld(1024, 32 + 280, 96);
  auto ftl = CreateFtl(GetParam(), w.env);
  ftl->WritePage(5);
  const Ppn ppn = ftl->Probe(5);
  ASSERT_NE(ppn, kInvalidPpn);
  ftl->TrimPage(5);
  EXPECT_EQ(ftl->Probe(5), kInvalidPpn);
  EXPECT_EQ(w.flash->StateOf(ppn), PageState::kInvalid);  // Garbage now.
  // Reading a trimmed page is free (nothing mapped).
  EXPECT_DOUBLE_EQ(ftl->ReadPage(5), 0.0);
}

TEST_P(TrimTest, TrimOfUnmappedPageIsHarmless) {
  World w = MakeWorld(1024, 32 + 280, 96);
  auto ftl = CreateFtl(GetParam(), w.env);
  EXPECT_NO_FATAL_FAILURE(ftl->TrimPage(7));
  EXPECT_EQ(ftl->Probe(7), kInvalidPpn);
}

TEST_P(TrimTest, RewriteAfterTrimWorks) {
  World w = MakeWorld(1024, 32 + 280, 96);
  auto ftl = CreateFtl(GetParam(), w.env);
  ftl->WritePage(9);
  ftl->TrimPage(9);
  ftl->WritePage(9);
  const Ppn ppn = ftl->Probe(9);
  ASSERT_NE(ppn, kInvalidPpn);
  EXPECT_EQ(w.flash->OobTag(ppn), 9u);
  EXPECT_EQ(w.flash->StateOf(ppn), PageState::kValid);
}

TEST_P(TrimTest, TrimSurvivesChurnAndGc) {
  World w = MakeWorld(1024, 32 + 280, /*total_blocks=*/84);
  auto ftl = CreateFtl(GetParam(), w.env);
  Rng rng(77);
  std::vector<int> state(1024, 0);  // 0 unmapped, 1 mapped.
  for (int i = 0; i < 8000; ++i) {
    const Lpn lpn = rng.Below(1024);
    const double dice = rng.NextDouble();
    if (dice < 0.6) {
      ftl->WritePage(lpn);
      state[lpn] = 1;
    } else if (dice < 0.75) {
      ftl->TrimPage(lpn);
      state[lpn] = 0;
    } else {
      ftl->ReadPage(lpn);
    }
  }
  for (Lpn lpn = 0; lpn < 1024; ++lpn) {
    const Ppn ppn = ftl->Probe(lpn);
    if (state[lpn] == 1) {
      ASSERT_NE(ppn, kInvalidPpn) << FtlKindName(GetParam()) << " lpn " << lpn;
      ASSERT_EQ(w.flash->OobTag(ppn), lpn);
      ASSERT_EQ(w.flash->StateOf(ppn), PageState::kValid);
    } else {
      ASSERT_EQ(ppn, kInvalidPpn) << FtlKindName(GetParam()) << " lpn " << lpn;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFtls, TrimTest,
                         ::testing::Values(FtlKind::kOptimal, FtlKind::kDftl, FtlKind::kCdftl,
                                           FtlKind::kSftl, FtlKind::kTpftl, FtlKind::kBlockFtl,
                                           FtlKind::kFast, FtlKind::kZftl, FtlKind::kLearned),
                         [](const ::testing::TestParamInfo<FtlKind>& info) {
                           std::string name = FtlKindName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(TrimSsdTest, TrimRequestFlowsThroughTheDevice) {
  SsdConfig config;
  config.logical_bytes = 16ULL << 20;
  Ssd ssd(config);
  IoRequest w;
  w.offset_bytes = 0;
  w.size_bytes = 4 * 4096;
  w.kind = IoKind::kWrite;
  ssd.Submit(w);
  ASSERT_NE(ssd.ftl().Probe(0), kInvalidPpn);

  IoRequest trim = w;
  trim.kind = IoKind::kTrim;
  trim.arrival_us = 1e6;
  ssd.Submit(trim);
  for (Lpn lpn = 0; lpn < 4; ++lpn) {
    EXPECT_EQ(ssd.ftl().Probe(lpn), kInvalidPpn);
  }
}

TEST(TrimSsdTest, TrimDiscardsBufferedCopies) {
  SsdConfig config;
  config.logical_bytes = 16ULL << 20;
  config.write_buffer.capacity_pages = 16;
  Ssd ssd(config);
  IoRequest w;
  w.offset_bytes = 0;
  w.size_bytes = 4096;
  w.kind = IoKind::kWrite;
  ssd.Submit(w);
  EXPECT_EQ(ssd.write_buffer().dirty_count(), 1u);

  IoRequest trim = w;
  trim.kind = IoKind::kTrim;
  ssd.Submit(trim);
  EXPECT_EQ(ssd.write_buffer().dirty_count(), 0u);
  EXPECT_EQ(ssd.write_buffer().size(), 0u);
  // The trimmed page never reaches flash.
  IoRequest r = w;
  r.kind = IoKind::kRead;
  ssd.Submit(r);
  EXPECT_EQ(ssd.ftl().Probe(0), kInvalidPpn);
}

TEST(TrimSsdTest, TrimmedSpaceMakesGcCheaper) {
  // The point of TRIM: dead data does not get migrated. Fill, then trim half
  // the drive, then overwrite — the trimmed variant migrates fewer pages.
  auto run = [](bool with_trim) {
    World w = MakeWorld(1024, 32 + 280, /*total_blocks=*/84);
    auto ftl = CreateFtl(FtlKind::kTpftl, w.env);
    for (Lpn lpn = 0; lpn < 1024; ++lpn) {
      ftl->WritePage(lpn);
    }
    if (with_trim) {
      for (Lpn lpn = 512; lpn < 1024; ++lpn) {
        ftl->TrimPage(lpn);
      }
    }
    Rng rng(5);
    for (int i = 0; i < 4000; ++i) {
      ftl->WritePage(rng.Below(512));
    }
    return ftl->stats().gc_data_migrations;
  };
  EXPECT_LT(run(true), run(false));
}

}  // namespace
}  // namespace tpftl
