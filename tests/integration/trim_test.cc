// TRIM/deallocate semantics, across every FTL and through the SSD layer.

#include <gtest/gtest.h>

#include "src/core/ftl_factory.h"
#include "src/ssd/ssd.h"
#include "src/util/rng.h"
#include "src/testing/world.h"
#include "src/workload/tenant_mix.h"

namespace tpftl {
namespace {

using testing::MakeWorld;
using testing::World;

class TrimTest : public ::testing::TestWithParam<FtlKind> {};

TEST_P(TrimTest, TrimDropsMappingAndFreesThePage) {
  World w = MakeWorld(1024, 32 + 280, 96);
  auto ftl = CreateFtl(GetParam(), w.env);
  ftl->WritePage(5);
  const Ppn ppn = ftl->Probe(5);
  ASSERT_NE(ppn, kInvalidPpn);
  ftl->TrimPage(5);
  EXPECT_EQ(ftl->Probe(5), kInvalidPpn);
  EXPECT_EQ(w.flash->StateOf(ppn), PageState::kInvalid);  // Garbage now.
  // Reading a trimmed page is free (nothing mapped).
  EXPECT_DOUBLE_EQ(ftl->ReadPage(5), 0.0);
}

TEST_P(TrimTest, TrimOfUnmappedPageIsHarmless) {
  World w = MakeWorld(1024, 32 + 280, 96);
  auto ftl = CreateFtl(GetParam(), w.env);
  EXPECT_NO_FATAL_FAILURE(ftl->TrimPage(7));
  EXPECT_EQ(ftl->Probe(7), kInvalidPpn);
}

TEST_P(TrimTest, RewriteAfterTrimWorks) {
  World w = MakeWorld(1024, 32 + 280, 96);
  auto ftl = CreateFtl(GetParam(), w.env);
  ftl->WritePage(9);
  ftl->TrimPage(9);
  ftl->WritePage(9);
  const Ppn ppn = ftl->Probe(9);
  ASSERT_NE(ppn, kInvalidPpn);
  EXPECT_EQ(w.flash->OobTag(ppn), 9u);
  EXPECT_EQ(w.flash->StateOf(ppn), PageState::kValid);
}

TEST_P(TrimTest, TrimSurvivesChurnAndGc) {
  World w = MakeWorld(1024, 32 + 280, /*total_blocks=*/84);
  auto ftl = CreateFtl(GetParam(), w.env);
  Rng rng(77);
  std::vector<int> state(1024, 0);  // 0 unmapped, 1 mapped.
  for (int i = 0; i < 8000; ++i) {
    const Lpn lpn = rng.Below(1024);
    const double dice = rng.NextDouble();
    if (dice < 0.6) {
      ftl->WritePage(lpn);
      state[lpn] = 1;
    } else if (dice < 0.75) {
      ftl->TrimPage(lpn);
      state[lpn] = 0;
    } else {
      ftl->ReadPage(lpn);
    }
  }
  for (Lpn lpn = 0; lpn < 1024; ++lpn) {
    const Ppn ppn = ftl->Probe(lpn);
    if (state[lpn] == 1) {
      ASSERT_NE(ppn, kInvalidPpn) << FtlKindName(GetParam()) << " lpn " << lpn;
      ASSERT_EQ(w.flash->OobTag(ppn), lpn);
      ASSERT_EQ(w.flash->StateOf(ppn), PageState::kValid);
    } else {
      ASSERT_EQ(ppn, kInvalidPpn) << FtlKindName(GetParam()) << " lpn " << lpn;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFtls, TrimTest,
                         ::testing::Values(FtlKind::kOptimal, FtlKind::kDftl, FtlKind::kCdftl,
                                           FtlKind::kSftl, FtlKind::kTpftl, FtlKind::kBlockFtl,
                                           FtlKind::kFast, FtlKind::kZftl, FtlKind::kLearned),
                         [](const ::testing::TestParamInfo<FtlKind>& info) {
                           std::string name = FtlKindName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// The serving harness's fs-aging preset (workload/tenant_mix.h) is a
// TRIM-heavy stream of whole-extent file writes and deletes. Replaying it
// against the device must leave exactly the model's live set mapped:
// trimmed LPNs are never resurrected, every live LPN has a valid page
// tagged with it, and a full physical recount of valid data pages matches
// the model — for every FTL.
TEST_P(TrimTest, AgingPresetNeverResurrectsTrimmedExtents) {
  WorkloadConfig workload;
  workload.address_space_bytes = 8ULL << 20;
  workload.num_requests = 2000;
  workload.seed = 123;
  constexpr uint64_t kExtentPages = 32;
  AgingWorkload aging(workload, kExtentPages, /*trim_fraction=*/0.4);

  SsdConfig config;
  config.logical_bytes = workload.address_space_bytes;
  config.ftl_kind = GetParam();
  Ssd ssd(config);

  // Shadow model: which extents are live after the replayed stream.
  std::vector<bool> live(aging.extent_count(), false);
  const uint64_t extent_bytes = kExtentPages * workload.page_size;
  IoRequest req;
  uint64_t trims = 0;
  while (aging.Next(&req)) {
    ssd.Submit(req);
    const uint64_t extent = req.offset_bytes / extent_bytes;
    live[extent] = !req.is_trim();
    trims += req.is_trim() ? 1 : 0;
  }
  ASSERT_GT(trims, 0u);

  uint64_t model_live_pages = 0;
  for (uint64_t extent = 0; extent < aging.extent_count(); ++extent) {
    for (uint64_t i = 0; i < kExtentPages; ++i) {
      const Lpn lpn = extent * kExtentPages + i;
      const Ppn ppn = ssd.ftl().Probe(lpn);
      if (live[extent]) {
        ++model_live_pages;
        ASSERT_NE(ppn, kInvalidPpn)
            << FtlKindName(GetParam()) << " lost live lpn " << lpn;
        ASSERT_EQ(ssd.flash().OobTag(ppn), lpn);
        ASSERT_EQ(ssd.flash().StateOf(ppn), PageState::kValid);
      } else {
        ASSERT_EQ(ppn, kInvalidPpn)
            << FtlKindName(GetParam()) << " resurrected trimmed lpn " << lpn;
      }
    }
  }

  // Full physical recount: the valid data pages on flash are exactly the
  // model's live pages — no leaked valid copies anywhere.
  uint64_t valid_data_pages = 0;
  for (Ppn ppn = 0; ppn < ssd.geometry().total_pages(); ++ppn) {
    if (ssd.flash().OobKindOf(ppn) == OobKind::kData &&
        ssd.flash().StateOf(ppn) == PageState::kValid) {
      ++valid_data_pages;
    }
  }
  EXPECT_EQ(valid_data_pages, model_live_pages) << FtlKindName(GetParam());
}

TEST(TrimSsdTest, TrimRequestFlowsThroughTheDevice) {
  SsdConfig config;
  config.logical_bytes = 16ULL << 20;
  Ssd ssd(config);
  IoRequest w;
  w.offset_bytes = 0;
  w.size_bytes = 4 * 4096;
  w.kind = IoKind::kWrite;
  ssd.Submit(w);
  ASSERT_NE(ssd.ftl().Probe(0), kInvalidPpn);

  IoRequest trim = w;
  trim.kind = IoKind::kTrim;
  trim.arrival_us = 1e6;
  ssd.Submit(trim);
  for (Lpn lpn = 0; lpn < 4; ++lpn) {
    EXPECT_EQ(ssd.ftl().Probe(lpn), kInvalidPpn);
  }
}

TEST(TrimSsdTest, TrimDiscardsBufferedCopies) {
  SsdConfig config;
  config.logical_bytes = 16ULL << 20;
  config.write_buffer.capacity_pages = 16;
  Ssd ssd(config);
  IoRequest w;
  w.offset_bytes = 0;
  w.size_bytes = 4096;
  w.kind = IoKind::kWrite;
  ssd.Submit(w);
  EXPECT_EQ(ssd.write_buffer().dirty_count(), 1u);

  IoRequest trim = w;
  trim.kind = IoKind::kTrim;
  ssd.Submit(trim);
  EXPECT_EQ(ssd.write_buffer().dirty_count(), 0u);
  EXPECT_EQ(ssd.write_buffer().size(), 0u);
  // The trimmed page never reaches flash.
  IoRequest r = w;
  r.kind = IoKind::kRead;
  ssd.Submit(r);
  EXPECT_EQ(ssd.ftl().Probe(0), kInvalidPpn);
}

TEST(TrimSsdTest, TrimmedSpaceMakesGcCheaper) {
  // The point of TRIM: dead data does not get migrated. Fill, then trim half
  // the drive, then overwrite — the trimmed variant migrates fewer pages.
  auto run = [](bool with_trim) {
    World w = MakeWorld(1024, 32 + 280, /*total_blocks=*/84);
    auto ftl = CreateFtl(FtlKind::kTpftl, w.env);
    for (Lpn lpn = 0; lpn < 1024; ++lpn) {
      ftl->WritePage(lpn);
    }
    if (with_trim) {
      for (Lpn lpn = 512; lpn < 1024; ++lpn) {
        ftl->TrimPage(lpn);
      }
    }
    Rng rng(5);
    for (int i = 0; i < 4000; ++i) {
      ftl->WritePage(rng.Below(512));
    }
    return ftl->stats().gc_data_migrations;
  };
  EXPECT_LT(run(true), run(false));
}

}  // namespace
}  // namespace tpftl
