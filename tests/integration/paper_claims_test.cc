// Reproduction shape tests: the paper's §5 claims, asserted at reduced scale
// so the whole suite stays fast. These are the qualitative results that must
// hold for the reproduction to be faithful — who wins, in which direction —
// not the absolute values (which depend on the synthetic traces; see
// EXPERIMENTS.md for the full-scale numbers).

#include <gtest/gtest.h>

#include "src/ssd/runner.h"
#include "src/workload/profiles.h"

namespace tpftl {
namespace {

// Financial1-like, shrunk to 128 MB / 20k requests for test speed. The hot
// chunks shrink with the device so the hot set stays dispersed *within*
// translation pages (the full-scale profile uses whole-page chunks over 128
// translation pages; at 32 translation pages that would trivially favor
// whole-page caching and distort the S-FTL comparison).
WorkloadConfig MiniFinancial() {
  WorkloadConfig c = Financial1Profile(20000);
  c.name = "mini-fin";
  c.address_space_bytes = 128ULL << 20;
  c.chunk_pages = 16;
  return c;
}

// MSR-like: sequential-leaning large requests, 128 MB.
WorkloadConfig MiniMsr() {
  WorkloadConfig c = MsrTsProfile(20000);
  c.name = "mini-msr";
  c.address_space_bytes = 128ULL << 20;
  return c;
}

RunReport RunMini(const WorkloadConfig& w, FtlKind kind, const std::string& tpftl_label = "rsbc") {
  ExperimentConfig config;
  config.workload = w;
  config.ftl_kind = kind;
  config.tpftl_options = TpftlOptions::FromLabel(tpftl_label);
  return RunExperiment(config);
}

class PaperClaims : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fin_dftl_ = new RunReport(RunMini(MiniFinancial(), FtlKind::kDftl));
    fin_tpftl_ = new RunReport(RunMini(MiniFinancial(), FtlKind::kTpftl));
    fin_sftl_ = new RunReport(RunMini(MiniFinancial(), FtlKind::kSftl));
    fin_optimal_ = new RunReport(RunMini(MiniFinancial(), FtlKind::kOptimal));
    msr_dftl_ = new RunReport(RunMini(MiniMsr(), FtlKind::kDftl));
    msr_tpftl_ = new RunReport(RunMini(MiniMsr(), FtlKind::kTpftl));
  }
  static void TearDownTestSuite() {
    for (const RunReport* r :
         {fin_dftl_, fin_tpftl_, fin_sftl_, fin_optimal_, msr_dftl_, msr_tpftl_}) {
      delete r;
    }
  }
  static const RunReport* fin_dftl_;
  static const RunReport* fin_tpftl_;
  static const RunReport* fin_sftl_;
  static const RunReport* fin_optimal_;
  static const RunReport* msr_dftl_;
  static const RunReport* msr_tpftl_;
};

const RunReport* PaperClaims::fin_dftl_ = nullptr;
const RunReport* PaperClaims::fin_tpftl_ = nullptr;
const RunReport* PaperClaims::fin_sftl_ = nullptr;
const RunReport* PaperClaims::fin_optimal_ = nullptr;
const RunReport* PaperClaims::msr_dftl_ = nullptr;
const RunReport* PaperClaims::msr_tpftl_ = nullptr;

// §5.2.1 / Fig. 6(a): TPFTL's probability of replacing a dirty entry is
// near zero; DFTL's is high in write-dominant workloads.
TEST_F(PaperClaims, TpftlPrdIsNearZero) {
  EXPECT_LT(fin_tpftl_->prd, 0.10);
  EXPECT_LT(msr_tpftl_->prd, 0.10);
  EXPECT_GT(fin_dftl_->prd, 0.40);
  EXPECT_GT(msr_dftl_->prd, 0.40);
}

// Fig. 6(b): TPFTL never loses to DFTL on hit ratio.
TEST_F(PaperClaims, TpftlHitRatioAtLeastDftl) {
  EXPECT_GE(fin_tpftl_->hit_ratio + 0.01, fin_dftl_->hit_ratio);
  EXPECT_GE(msr_tpftl_->hit_ratio + 0.01, msr_dftl_->hit_ratio);
}

// §1 headline: TPFTL reduces translation page writes (random writes caused
// by address translation) massively versus DFTL.
TEST_F(PaperClaims, TpftlCutsTranslationWrites) {
  EXPECT_LT(fin_tpftl_->trans_writes, fin_dftl_->trans_writes * 8 / 10);
  EXPECT_LT(msr_tpftl_->trans_writes, msr_dftl_->trans_writes * 6 / 10);
}

// Fig. 6(c): fewer translation page reads too.
TEST_F(PaperClaims, TpftlCutsTranslationReads) {
  EXPECT_LT(fin_tpftl_->trans_reads, fin_dftl_->trans_reads);
  EXPECT_LT(msr_tpftl_->trans_reads, msr_dftl_->trans_reads);
}

// Fig. 6(e): response-time ordering Optimal ≤ TPFTL ≤ DFTL.
TEST_F(PaperClaims, ResponseTimeOrdering) {
  EXPECT_LE(fin_optimal_->mean_response_us, fin_tpftl_->mean_response_us);
  EXPECT_LT(fin_tpftl_->mean_response_us, fin_dftl_->mean_response_us);
  EXPECT_LT(msr_tpftl_->mean_response_us, msr_dftl_->mean_response_us);
}

// Fig. 6(f) / 7(a): lower write amplification and fewer erases.
TEST_F(PaperClaims, TpftlImprovesLifetime) {
  EXPECT_LT(fin_tpftl_->write_amplification, fin_dftl_->write_amplification);
  EXPECT_LE(fin_tpftl_->block_erases, fin_dftl_->block_erases);
  EXPECT_LE(msr_tpftl_->block_erases, msr_dftl_->block_erases);
}

// §5.2.2 note: S-FTL eliminates the RMW read on whole-page writebacks, so
// its translation-read reduction relative to TPFTL exceeds its write
// reduction; and on random workloads TPFTL holds the hit-ratio edge.
TEST_F(PaperClaims, TpftlBeatsSftlOnRandomWorkloads) {
  EXPECT_GE(fin_tpftl_->hit_ratio + 0.02, fin_sftl_->hit_ratio);
  EXPECT_LE(fin_tpftl_->mean_response_us, fin_sftl_->mean_response_us * 1.05);
}

// Fig. 7(b): batch update is the dominant Prd reducer.
TEST_F(PaperClaims, BatchUpdateDominatesPrdReduction) {
  const RunReport none = RunMini(MiniFinancial(), FtlKind::kTpftl, "--");
  const RunReport b = RunMini(MiniFinancial(), FtlKind::kTpftl, "b");
  const RunReport c = RunMini(MiniFinancial(), FtlKind::kTpftl, "c");
  EXPECT_LT(b.prd, none.prd * 0.3);
  // Clean-first alone achieves only a small decrease (§5.2.5: rare clean
  // entries in a write-dominant stream).
  EXPECT_GT(c.prd, b.prd);
}

// Fig. 7(c): the prefetchers carry the hit-ratio gains.
TEST_F(PaperClaims, PrefetchingRaisesHitRatio) {
  const RunReport none = RunMini(MiniMsr(), FtlKind::kTpftl, "--");
  const RunReport rs = RunMini(MiniMsr(), FtlKind::kTpftl, "rs");
  EXPECT_GT(rs.hit_ratio, none.hit_ratio + 0.01);
}

// Fig. 8(c)/9: a full-table cache drives Prd to zero and Hr to one.
TEST_F(PaperClaims, FullTableCacheIsPerfect) {
  ExperimentConfig config;
  config.workload = MiniFinancial();
  config.ftl_kind = FtlKind::kTpftl;
  config.cache_bytes = config.workload.total_pages() * 8;
  const RunReport r = RunExperiment(config);
  EXPECT_GT(r.hit_ratio, 0.999);
  EXPECT_LT(r.prd, 0.001);
}

}  // namespace
}  // namespace tpftl
