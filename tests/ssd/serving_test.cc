// Open-loop serving driver tests.
//
// The anchor is a differential: an open-loop replay whose offered rate is far
// below device capacity never queues, so its per-request latencies and final
// device state must match the closed-loop QD=1 driver request for request —
// for every FTL. That pins RunServing's timing arithmetic (epoch clamping,
// admission, extraction) to the already-trusted closed-loop path. The
// remaining tests exercise what only an open loop can show: backlog growth
// under overload and bounded-queue drops.

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "src/ssd/runner.h"
#include "src/trace/vector_trace.h"
#include "src/workload/generator.h"

namespace tpftl {
namespace {

constexpr FtlKind kAllFtls[] = {
    FtlKind::kOptimal, FtlKind::kDftl,     FtlKind::kCdftl,
    FtlKind::kSftl,    FtlKind::kTpftl,    FtlKind::kBlockFtl,
    FtlKind::kFast,    FtlKind::kZftl,     FtlKind::kLearned,
};

WorkloadConfig MixedWorkload(uint64_t requests) {
  WorkloadConfig c;
  c.name = "serving-diff";
  c.address_space_bytes = 16ULL << 20;
  c.num_requests = requests;
  c.seed = 77;
  c.write_ratio = 0.7;
  c.zipf_theta = 1.0;
  c.chunk_pages = 16;
  return c;
}

// The same op stream re-stamped with the given inter-arrival gap.
VectorTrace TraceWithGap(const WorkloadConfig& workload, MicroSec gap_us) {
  VectorTrace trace = MaterializeWorkload(workload);
  MicroSec t = 0.0;
  for (IoRequest& req : trace.mutable_requests()) {
    t += gap_us;
    req.arrival_us = t;
  }
  return trace;
}

// FNV-1a over the full logical→physical mapping (Probe is side-effect-free).
uint64_t MappingDigest(const Ssd& ssd) {
  uint64_t h = 1469598103934665603ULL;
  for (Lpn lpn = 0; lpn < ssd.logical_pages(); ++lpn) {
    h ^= static_cast<uint64_t>(ssd.ftl().Probe(lpn)) + 1;
    h *= 1099511628211ULL;
  }
  return h;
}

TEST(ServingDifferentialTest, UnderloadedOpenLoopMatchesClosedLoopQd1) {
  constexpr uint64_t kRequests = 1200;
  const WorkloadConfig workload = MixedWorkload(kRequests);
  // 10 s between arrivals: service times are sub-millisecond even with GC,
  // so the open-loop device is always idle when a request arrives.
  VectorTrace trace = TraceWithGap(workload, 1e7);

  for (const FtlKind kind : kAllFtls) {
    SCOPED_TRACE(FtlKindName(kind));
    ExperimentConfig config;
    config.workload = workload;
    config.ftl_kind = kind;

    // Per-request latency = delta of the running response-time sum.
    std::vector<double> open_lat, closed_lat;
    uint64_t open_digest = 0, closed_digest = 0;

    double open_prev = 0.0;
    ServingConfig serving;  // warmup 0, never drop, untagged.
    const ServingReport open = RunServing(
        config, trace, serving,
        [&](const Ssd& ssd, uint64_t index) {
          const double sum = ssd.response_stats().sum();
          open_lat.push_back(sum - open_prev);
          open_prev = sum;
          if (index == kRequests) {
            open_digest = MappingDigest(ssd);
          }
        });

    double closed_prev = 0.0;
    ClosedLoopConfig loop;
    loop.queue_depth = 1;
    const ClosedLoopReport closed = RunClosedLoop(
        config, trace, loop,
        [&](const Ssd& ssd, uint64_t index) {
          const double sum = ssd.response_stats().sum();
          closed_lat.push_back(sum - closed_prev);
          closed_prev = sum;
          if (index == kRequests) {
            closed_digest = MappingDigest(ssd);
          }
        });

    // Nothing dropped, everything measured.
    ASSERT_EQ(open.offered, kRequests);
    ASSERT_EQ(open.served, kRequests);
    ASSERT_EQ(open.dropped, 0u);
    ASSERT_EQ(closed.measured, kRequests);

    // Request-for-request identical latencies.
    ASSERT_EQ(open_lat.size(), closed_lat.size());
    for (size_t i = 0; i < open_lat.size(); ++i) {
      ASSERT_DOUBLE_EQ(open_lat[i], closed_lat[i]) << "request " << i;
    }

    // Identical final device state and aggregate counters.
    EXPECT_EQ(open_digest, closed_digest);
    EXPECT_EQ(open.report.stats.host_page_writes,
              closed.report.stats.host_page_writes);
    EXPECT_EQ(open.report.stats.gc_data_migrations,
              closed.report.stats.gc_data_migrations);
    EXPECT_EQ(open.report.trans_reads, closed.report.trans_reads);
    EXPECT_EQ(open.report.trans_writes, closed.report.trans_writes);
    EXPECT_EQ(open.report.block_erases, closed.report.block_erases);
    EXPECT_DOUBLE_EQ(open.report.mean_response_us,
                     closed.report.mean_response_us);
    EXPECT_DOUBLE_EQ(open.report.p99_response_us,
                     closed.report.p99_response_us);

    // An idle device never queues; the only residual work at the end is
    // the final request itself, still in service when it arrived.
    EXPECT_DOUBLE_EQ(open.peak_queue_us, 0.0);
    EXPECT_DOUBLE_EQ(open.final_backlog_us, open_lat.back());
    // Offered ≈ achieved (both spans end at the last event).
    EXPECT_NEAR(open.achieved_rps, open.offered_rps,
                open.offered_rps * 0.01);
  }
}

TEST(ServingTest, OverloadBuildsBacklogAndCapsAchievedRate) {
  const WorkloadConfig workload = MixedWorkload(2000);
  // 10 µs between arrivals: far above capacity (a flash program alone is an
  // order of magnitude slower), so backlog must grow without bound.
  VectorTrace trace = TraceWithGap(workload, 10.0);

  ExperimentConfig config;
  config.workload = workload;
  config.ftl_kind = FtlKind::kTpftl;
  ServingConfig serving;  // max_queue 0: admit everything.
  const ServingReport r = RunServing(config, trace, serving);

  EXPECT_EQ(r.offered, 2000u);
  EXPECT_EQ(r.served, 2000u);
  EXPECT_EQ(r.dropped, 0u);
  // The queue kept growing: the worst arrival saw a large backlog and the
  // device was still draining when arrivals stopped.
  EXPECT_GT(r.peak_queue_us, 10'000.0);
  EXPECT_GT(r.final_backlog_us, 0.0);
  EXPECT_GT(r.makespan_us, r.arrival_span_us);
  EXPECT_LT(r.achieved_rps, r.offered_rps * 0.5);
  // Open-loop latencies are dominated by queueing, not service.
  EXPECT_GT(r.report.p99_response_us, r.peak_queue_us * 0.5);
}

TEST(ServingTest, BoundedQueueDropsInsteadOfQueueing) {
  const WorkloadConfig workload = MixedWorkload(2000);
  VectorTrace trace = TraceWithGap(workload, 10.0);

  ExperimentConfig config;
  config.workload = workload;
  config.ftl_kind = FtlKind::kTpftl;
  ServingConfig serving;
  serving.max_queue_us = 20'000.0;
  const ServingReport r = RunServing(config, trace, serving);

  EXPECT_EQ(r.offered, 2000u);
  EXPECT_GT(r.dropped, 0u);
  EXPECT_EQ(r.served + r.dropped, r.offered);
  EXPECT_EQ(r.report.requests, r.served);
  // Served requests never saw more than the bound (plus one in-flight
  // request's service time, which is why the assertion uses slack).
  EXPECT_LT(r.report.max_response_us, 40'000.0);
}

TEST(ServingTest, WarmupRequestsAreNotMeasured) {
  const WorkloadConfig workload = MixedWorkload(1000);
  VectorTrace trace = TraceWithGap(workload, 1000.0);

  ExperimentConfig config;
  config.workload = workload;
  config.ftl_kind = FtlKind::kDftl;
  ServingConfig serving;
  serving.warmup_requests = 400;
  const ServingReport r = RunServing(config, trace, serving);
  EXPECT_EQ(r.offered, 600u);
  EXPECT_EQ(r.served, 600u);
  EXPECT_EQ(r.report.requests, 600u);
}

}  // namespace
}  // namespace tpftl
