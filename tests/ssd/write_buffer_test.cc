#include "src/ssd/write_buffer.h"

#include <gtest/gtest.h>

#include "src/ssd/ssd.h"

namespace tpftl {
namespace {

WriteBufferConfig Cfg(uint64_t capacity, double window = 0.5) {
  WriteBufferConfig c;
  c.capacity_pages = capacity;
  c.clean_window_fraction = window;
  return c;
}

TEST(WriteBufferTest, DisabledByDefault) {
  WriteBuffer buffer(WriteBufferConfig{});
  EXPECT_FALSE(buffer.enabled());
  EXPECT_FALSE(buffer.ServeRead(0));
}

TEST(WriteBufferTest, WriteThenReadHits) {
  WriteBuffer buffer(Cfg(4));
  EXPECT_EQ(buffer.PutWrite(10), kInvalidLpn);
  EXPECT_TRUE(buffer.ServeRead(10));
  EXPECT_EQ(buffer.stats().read_hits, 1u);
  EXPECT_EQ(buffer.dirty_count(), 1u);
}

TEST(WriteBufferTest, OverwriteAbsorbedInRam) {
  WriteBuffer buffer(Cfg(4));
  buffer.PutWrite(10);
  EXPECT_EQ(buffer.PutWrite(10), kInvalidLpn);
  EXPECT_EQ(buffer.stats().write_hits, 1u);
  EXPECT_EQ(buffer.size(), 1u);
  EXPECT_EQ(buffer.dirty_count(), 1u);
}

TEST(WriteBufferTest, CleanFirstEviction) {
  WriteBuffer buffer(Cfg(3, /*window=*/1.0));
  buffer.PutWrite(1);                       // Dirty, will be LRU.
  EXPECT_EQ(buffer.AdmitClean(2), kInvalidLpn);
  EXPECT_EQ(buffer.AdmitClean(3), kInvalidLpn);
  // Buffer full. Next insert must drop a CLEAN page, not flush the dirty one.
  EXPECT_EQ(buffer.PutWrite(4), kInvalidLpn);
  EXPECT_EQ(buffer.stats().clean_drops, 1u);
  EXPECT_EQ(buffer.stats().flushes, 0u);
  EXPECT_TRUE(buffer.ServeRead(1));  // The dirty page survived.
}

TEST(WriteBufferTest, AllDirtyForcesFlushOfLru) {
  WriteBuffer buffer(Cfg(2));
  buffer.PutWrite(1);
  buffer.PutWrite(2);
  EXPECT_EQ(buffer.PutWrite(3), 1u);  // LRU dirty page 1 flushed.
  EXPECT_EQ(buffer.stats().flushes, 1u);
  EXPECT_FALSE(buffer.ServeRead(1));
  EXPECT_TRUE(buffer.ServeRead(2));
}

TEST(WriteBufferTest, WindowLimitsCleanSearch) {
  // Window of 1: only the single LRU-most entry is inspected. A clean page
  // deeper in the stack does not save the dirty LRU entry.
  WriteBuffer buffer(Cfg(3, /*window=*/0.34));  // ceil → 1 entry.
  buffer.PutWrite(1);     // Will be LRU, dirty.
  buffer.AdmitClean(2);   // Clean, middle.
  buffer.PutWrite(3);
  EXPECT_EQ(buffer.PutWrite(4), 1u);  // Flushes dirty LRU despite clean #2.
}

TEST(WriteBufferTest, DrainDirtyReturnsAllDirtyPages) {
  WriteBuffer buffer(Cfg(8));
  buffer.PutWrite(1);
  buffer.PutWrite(2);
  buffer.AdmitClean(3);
  const auto drained = buffer.DrainDirty();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_EQ(buffer.dirty_count(), 0u);
  EXPECT_EQ(buffer.size(), 1u);  // Clean page 3 remains.
  EXPECT_FALSE(buffer.ServeRead(1));
}

TEST(WriteBufferTest, SsdIntegrationAbsorbsHotWrites) {
  SsdConfig with_buffer;
  with_buffer.logical_bytes = 16ULL << 20;
  with_buffer.write_buffer.capacity_pages = 256;
  Ssd buffered(with_buffer);
  SsdConfig without = with_buffer;
  without.write_buffer.capacity_pages = 0;
  Ssd raw(without);

  IoRequest req;
  req.size_bytes = 4096;
  req.kind = IoKind::kWrite;
  for (int i = 0; i < 2000; ++i) {
    req.offset_bytes = static_cast<uint64_t>(i % 64) * 4096;  // 64-page hot set.
    req.arrival_us = i * 1000.0;
    buffered.Submit(req);
    raw.Submit(req);
  }
  // The buffer absorbs nearly all overwrites of the hot set.
  EXPECT_LT(buffered.flash().stats().page_writes, raw.flash().stats().page_writes / 10);
  EXPECT_GT(buffered.write_buffer().stats().write_hits, 1900u);
}

TEST(WriteBufferTest, SsdIntegrationReadAfterWriteIsRamHit) {
  SsdConfig config;
  config.logical_bytes = 16ULL << 20;
  config.write_buffer.capacity_pages = 16;
  Ssd ssd(config);
  IoRequest w;
  w.offset_bytes = 0;
  w.size_bytes = 4096;
  w.kind = IoKind::kWrite;
  ssd.Submit(w);
  IoRequest r = w;
  r.kind = IoKind::kRead;
  r.arrival_us = 1e6;
  const MicroSec response = ssd.Submit(r);
  EXPECT_DOUBLE_EQ(response, 0.0);  // Pure RAM service.
  EXPECT_EQ(ssd.write_buffer().stats().read_hits, 1u);
}

}  // namespace
}  // namespace tpftl
