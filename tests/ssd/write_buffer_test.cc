#include "src/ssd/write_buffer.h"

#include <gtest/gtest.h>

#include "src/ssd/ssd.h"

namespace tpftl {
namespace {

WriteBufferConfig Cfg(uint64_t capacity, double window = 0.5) {
  WriteBufferConfig c;
  c.capacity_pages = capacity;
  c.clean_window_fraction = window;
  return c;
}

TEST(WriteBufferTest, DisabledByDefault) {
  WriteBuffer buffer(WriteBufferConfig{});
  EXPECT_FALSE(buffer.enabled());
  EXPECT_FALSE(buffer.ServeRead(0));
}

TEST(WriteBufferTest, WriteThenReadHits) {
  WriteBuffer buffer(Cfg(4));
  EXPECT_EQ(buffer.PutWrite(10), kInvalidLpn);
  EXPECT_TRUE(buffer.ServeRead(10));
  EXPECT_EQ(buffer.stats().read_hits, 1u);
  EXPECT_EQ(buffer.dirty_count(), 1u);
}

TEST(WriteBufferTest, OverwriteAbsorbedInRam) {
  WriteBuffer buffer(Cfg(4));
  buffer.PutWrite(10);
  EXPECT_EQ(buffer.PutWrite(10), kInvalidLpn);
  EXPECT_EQ(buffer.stats().write_hits, 1u);
  EXPECT_EQ(buffer.size(), 1u);
  EXPECT_EQ(buffer.dirty_count(), 1u);
}

TEST(WriteBufferTest, CleanFirstEviction) {
  WriteBuffer buffer(Cfg(3, /*window=*/1.0));
  buffer.PutWrite(1);                       // Dirty, will be LRU.
  EXPECT_EQ(buffer.AdmitClean(2), kInvalidLpn);
  EXPECT_EQ(buffer.AdmitClean(3), kInvalidLpn);
  // Buffer full. Next insert must drop a CLEAN page, not flush the dirty one.
  EXPECT_EQ(buffer.PutWrite(4), kInvalidLpn);
  EXPECT_EQ(buffer.stats().clean_drops, 1u);
  EXPECT_EQ(buffer.stats().flushes, 0u);
  EXPECT_TRUE(buffer.ServeRead(1));  // The dirty page survived.
}

TEST(WriteBufferTest, AllDirtyForcesFlushOfLru) {
  WriteBuffer buffer(Cfg(2));
  buffer.PutWrite(1);
  buffer.PutWrite(2);
  EXPECT_EQ(buffer.PutWrite(3), 1u);  // LRU dirty page 1 flushed.
  EXPECT_EQ(buffer.stats().flushes, 1u);
  EXPECT_FALSE(buffer.ServeRead(1));
  EXPECT_TRUE(buffer.ServeRead(2));
}

TEST(WriteBufferTest, WindowLimitsCleanSearch) {
  // Window of 1: only the single LRU-most entry is inspected. A clean page
  // deeper in the stack does not save the dirty LRU entry.
  WriteBuffer buffer(Cfg(3, /*window=*/0.34));  // ceil → 1 entry.
  buffer.PutWrite(1);     // Will be LRU, dirty.
  buffer.AdmitClean(2);   // Clean, middle.
  buffer.PutWrite(3);
  EXPECT_EQ(buffer.PutWrite(4), 1u);  // Flushes dirty LRU despite clean #2.
}

TEST(WriteBufferTest, DrainDirtyReturnsAllDirtyPages) {
  WriteBuffer buffer(Cfg(8));
  buffer.PutWrite(1);
  buffer.PutWrite(2);
  buffer.AdmitClean(3);
  const auto drained = buffer.DrainDirty();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_EQ(buffer.dirty_count(), 0u);
  EXPECT_EQ(buffer.size(), 1u);  // Clean page 3 remains.
  EXPECT_FALSE(buffer.ServeRead(1));
}

TEST(WriteBufferTest, DrainDirtyPreservesRecencyOrder) {
  // Flush ordering: DrainDirty walks MRU → LRU, so the most recently
  // written page drains first, and a refresh (overwrite) reorders the
  // drain. Downstream this makes the flush order deterministic for replay.
  WriteBuffer buffer(Cfg(8));
  buffer.PutWrite(1);
  buffer.PutWrite(2);
  buffer.PutWrite(3);
  buffer.PutWrite(1);  // Refresh: 1 becomes MRU again.
  const auto drained = buffer.DrainDirty();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0], 1u);
  EXPECT_EQ(drained[1], 3u);
  EXPECT_EQ(drained[2], 2u);
}

TEST(WriteBufferTest, ReadHitRefreshesRecency) {
  // A read hit moves the page to MRU, changing the eviction victim: page 1
  // would be the LRU flush victim, but reading it pushes page 2 to the tail.
  WriteBuffer buffer(Cfg(2));
  buffer.PutWrite(1);
  buffer.PutWrite(2);
  EXPECT_TRUE(buffer.ServeRead(1));
  EXPECT_EQ(buffer.PutWrite(3), 2u);  // 2 is now LRU and gets flushed.
  EXPECT_TRUE(buffer.ServeRead(1));
}

TEST(WriteBufferTest, AllDirtyBackpressureFlushesOnEveryInsert) {
  // Buffer-full backpressure: once every slot is dirty, each new write
  // must flush exactly one page — the buffer cannot absorb the burst.
  WriteBuffer buffer(Cfg(4));
  for (Lpn lpn = 0; lpn < 4; ++lpn) {
    EXPECT_EQ(buffer.PutWrite(lpn), kInvalidLpn);
  }
  uint64_t forced_flushes = 0;
  for (Lpn lpn = 100; lpn < 110; ++lpn) {
    const Lpn flushed = buffer.PutWrite(lpn);
    ASSERT_NE(flushed, kInvalidLpn) << "full dirty buffer absorbed a write";
    ++forced_flushes;
  }
  EXPECT_EQ(forced_flushes, 10u);
  EXPECT_EQ(buffer.stats().flushes, 10u);
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.dirty_count(), 4u);
}

TEST(WriteBufferTest, DiscardDropsDirtyPageWithoutFlush) {
  // TRIM semantics: a discarded dirty page is simply gone — it must not be
  // drained later, and the flush counter must not move.
  WriteBuffer buffer(Cfg(4));
  buffer.PutWrite(1);
  buffer.PutWrite(2);
  buffer.Discard(1);
  EXPECT_EQ(buffer.dirty_count(), 1u);
  EXPECT_FALSE(buffer.ServeRead(1));
  const auto drained = buffer.DrainDirty();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0], 2u);
  EXPECT_EQ(buffer.stats().flushes, 1u);
  buffer.Discard(99);  // Absent LPN is a no-op.
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(WriteBufferTest, ZeroWindowFractionStillInspectsLruEntry) {
  // clean_window_fraction = 0 clamps to a one-entry window: a clean page at
  // the exact LRU position is still preferred over flushing a dirty one.
  WriteBuffer buffer(Cfg(2, /*window=*/0.0));
  buffer.AdmitClean(1);  // Will be LRU and clean.
  buffer.PutWrite(2);
  EXPECT_EQ(buffer.PutWrite(3), kInvalidLpn);  // Drops clean 1, no flush.
  EXPECT_EQ(buffer.stats().clean_drops, 1u);
  EXPECT_EQ(buffer.stats().flushes, 0u);
}

TEST(WriteBufferTest, FullWindowFindsCleanPageAnywhere) {
  // clean_window_fraction = 1: the whole stack is scanned, so a clean page
  // even at the MRU end saves every dirty page from a flush.
  WriteBuffer buffer(Cfg(4, /*window=*/1.0));
  buffer.PutWrite(1);
  buffer.PutWrite(2);
  buffer.PutWrite(3);
  buffer.AdmitClean(4);  // Clean page sits at MRU.
  EXPECT_EQ(buffer.PutWrite(5), kInvalidLpn);
  EXPECT_EQ(buffer.stats().clean_drops, 1u);
  EXPECT_EQ(buffer.stats().flushes, 0u);
  EXPECT_FALSE(buffer.ServeRead(4));
}

TEST(WriteBufferTest, AdmitCleanAtCapacityEvicts) {
  // Read-miss admission applies the same CFLRU policy as writes: admitting
  // a clean page into a full all-dirty buffer flushes the LRU dirty page.
  WriteBuffer buffer(Cfg(2));
  buffer.PutWrite(1);
  buffer.PutWrite(2);
  EXPECT_EQ(buffer.AdmitClean(3), 1u);
  EXPECT_EQ(buffer.stats().flushes, 1u);
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.dirty_count(), 1u);
}

TEST(WriteBufferTest, SsdIntegrationAbsorbsHotWrites) {
  SsdConfig with_buffer;
  with_buffer.logical_bytes = 16ULL << 20;
  with_buffer.write_buffer.capacity_pages = 256;
  Ssd buffered(with_buffer);
  SsdConfig without = with_buffer;
  without.write_buffer.capacity_pages = 0;
  Ssd raw(without);

  IoRequest req;
  req.size_bytes = 4096;
  req.kind = IoKind::kWrite;
  for (int i = 0; i < 2000; ++i) {
    req.offset_bytes = static_cast<uint64_t>(i % 64) * 4096;  // 64-page hot set.
    req.arrival_us = i * 1000.0;
    buffered.Submit(req);
    raw.Submit(req);
  }
  // The buffer absorbs nearly all overwrites of the hot set.
  EXPECT_LT(buffered.flash().stats().page_writes, raw.flash().stats().page_writes / 10);
  EXPECT_GT(buffered.write_buffer().stats().write_hits, 1900u);
}

TEST(WriteBufferTest, SsdIntegrationReadAfterWriteIsRamHit) {
  SsdConfig config;
  config.logical_bytes = 16ULL << 20;
  config.write_buffer.capacity_pages = 16;
  Ssd ssd(config);
  IoRequest w;
  w.offset_bytes = 0;
  w.size_bytes = 4096;
  w.kind = IoKind::kWrite;
  ssd.Submit(w);
  IoRequest r = w;
  r.kind = IoKind::kRead;
  r.arrival_us = 1e6;
  const MicroSec response = ssd.Submit(r);
  EXPECT_DOUBLE_EQ(response, 0.0);  // Pure RAM service.
  EXPECT_EQ(ssd.write_buffer().stats().read_hits, 1u);
}

}  // namespace
}  // namespace tpftl
