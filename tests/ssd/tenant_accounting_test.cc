// Per-tenant QoS accounting: the property the serving harness leans on is
// that the tenant lanes are an exact partition of the device's global
// statistics — response histograms merge bucket-wise to the global
// distribution, and every page/GC/erase counter sums to the global total.
// Checked on the flat device and through the sharded front-end's registry
// merge, plus the Chrome-trace tenant-lane export.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/trace_event.h"
#include "src/ssd/sharded.h"
#include "src/ssd/ssd.h"
#include "src/workload/tenant_mix.h"

namespace tpftl {
namespace {

constexpr uint64_t kMiB = 1ULL << 20;

// Write-heavy three-tenant mix (YCSB-A churn, pure-ingest streamer, and the
// TRIM-heavy ager) on disjoint 8 MiB windows: exercises reads, writes,
// trims, and — on a preconditioned device — plenty of GC.
std::vector<TenantSpec> MixSpecs(uint64_t requests) {
  std::vector<TenantSpec> specs;
  specs.push_back(YcsbTenant('A', 8 * kMiB, requests, 11));
  specs[0].arrival.rate_rps = 5000.0;
  specs.push_back(StreamerTenant(8 * kMiB, requests / 2, 22));
  specs[1].lba_offset_bytes = 8 * kMiB;
  specs[1].arrival.seed = 2;
  specs[1].arrival.rate_rps = 2000.0;
  specs.push_back(AgingTenant(8 * kMiB, requests / 2, 33));
  specs[2].lba_offset_bytes = 16 * kMiB;
  specs[2].arrival.seed = 3;
  specs[2].arrival.rate_rps = 2000.0;
  return specs;
}

uint64_t TenantCounter(const obs::MetricsRegistry& metrics, uint32_t tenant,
                       std::string_view suffix) {
  const obs::Counter* c =
      metrics.FindCounter(TenantMetricName(tenant, suffix));
  return c != nullptr ? c->value() : 0;
}

TEST(TenantAccountingTest, LanesPartitionTheGlobalsExactly) {
  TenantMixSource mix(MixSpecs(3000));
  SsdConfig config;
  config.logical_bytes = mix.RequiredDeviceBytes();
  config.ftl_kind = FtlKind::kTpftl;
  config.tenant_count = mix.tenant_count();
  config.trace_phases = true;
  Ssd ssd(config);
  ssd.FillSequential();
  ssd.ResetStats();

  IoRequest req;
  uint64_t submitted = 0;
  while (mix.Next(&req)) {
    ssd.Submit(req);
    ++submitted;
  }
  ASSERT_EQ(submitted, 3000u + 1500u + 1500u);

  const obs::MetricsRegistry& metrics = ssd.metrics();

  // Counters: each lane sums to the matching global, exactly.
  uint64_t requests = 0, written = 0, trimmed = 0, gc = 0, erases = 0;
  obs::LatencyHistogram merged;
  double gc_us = 0.0;
  for (uint32_t t = 0; t < ssd.tenant_count(); ++t) {
    requests += TenantCounter(metrics, t, "requests");
    written += TenantCounter(metrics, t, "pages_written");
    trimmed += TenantCounter(metrics, t, "pages_trimmed");
    gc += TenantCounter(metrics, t, "gc_migrations");
    erases += TenantCounter(metrics, t, "block_erases");
    merged.MergeFrom(
        *metrics.FindHistogram(TenantMetricName(t, "response_us")));
    gc_us += ssd.tenant_phase_times(t).PhaseUs(obs::Phase::kGc);
  }
  EXPECT_EQ(requests, ssd.requests_served());
  EXPECT_EQ(written, ssd.ftl().stats().host_page_writes);
  EXPECT_GT(trimmed, 0u);
  EXPECT_EQ(gc, ssd.ftl().stats().gc_data_migrations +
                    ssd.ftl().stats().gc_trans_migrations);
  EXPECT_GT(gc, 0u) << "mix too gentle: no GC means the delta attribution "
                       "path went untested";
  EXPECT_EQ(erases, ssd.flash().stats().block_erases);

  // Histograms: bucket-wise merge reproduces the global distribution.
  const obs::LatencyHistogram& global = ssd.response_histogram();
  EXPECT_EQ(merged.total(), global.total());
  EXPECT_DOUBLE_EQ(merged.min(), global.min());
  EXPECT_DOUBLE_EQ(merged.max(), global.max());
  EXPECT_NEAR(merged.sum(), global.sum(), global.sum() * 1e-12);
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(merged.Quantile(q), global.Quantile(q)) << "q=" << q;
  }

  // Phase attribution: tenant GC times sum to the device's GC phase.
  EXPECT_DOUBLE_EQ(gc_us, ssd.phase_times().PhaseUs(obs::Phase::kGc));
}

TEST(TenantAccountingTest, ResetStatsClearsTheLanes) {
  TenantMixSource mix(MixSpecs(500));
  SsdConfig config;
  config.logical_bytes = mix.RequiredDeviceBytes();
  config.tenant_count = mix.tenant_count();
  Ssd ssd(config);
  IoRequest req;
  while (mix.Next(&req)) {
    ssd.Submit(req);
  }
  ASSERT_GT(TenantCounter(ssd.metrics(), 0, "requests"), 0u);
  ssd.ResetStats();
  for (uint32_t t = 0; t < ssd.tenant_count(); ++t) {
    EXPECT_EQ(TenantCounter(ssd.metrics(), t, "requests"), 0u);
    EXPECT_EQ(
        ssd.metrics().FindHistogram(TenantMetricName(t, "response_us"))->total(),
        0u);
  }
}

TEST(TenantAccountingTest, ShardedFrontEndMergesLanesExactly) {
  // The same partition property must survive the sharded front-end: each
  // shard accounts its own sub-requests, and MergeMetricsInto must fold the
  // lanes into totals that match the summed shard globals.
  TenantMixSource mix(MixSpecs(2000));
  ShardedConfig config;
  config.base.logical_bytes = mix.RequiredDeviceBytes();
  config.base.tenant_count = mix.tenant_count();
  config.shards = 4;
  config.threads = 2;
  ShardedSsd ssd(config);
  ssd.FillSequential();
  ssd.ResetStats();

  IoRequest req;
  while (mix.Next(&req)) {
    ssd.Submit(req);
  }
  ssd.Drain();

  obs::MetricsRegistry merged;
  ssd.MergeMetricsInto(&merged);

  uint64_t lane_requests = 0, lane_written = 0, lane_erases = 0;
  obs::LatencyHistogram lane_hist;
  for (uint32_t t = 0; t < mix.tenant_count(); ++t) {
    lane_requests += TenantCounter(merged, t, "requests");
    lane_written += TenantCounter(merged, t, "pages_written");
    lane_erases += TenantCounter(merged, t, "block_erases");
    lane_hist.MergeFrom(
        *merged.FindHistogram(TenantMetricName(t, "response_us")));
  }

  uint64_t global_written = 0, global_erases = 0;
  for (uint32_t s = 0; s < ssd.shards(); ++s) {
    global_written += ssd.shard(s).ftl().stats().host_page_writes;
    global_erases += ssd.shard(s).flash().stats().block_erases;
  }
  EXPECT_EQ(lane_requests, ssd.TotalRequestsServed());
  EXPECT_EQ(lane_written, global_written);
  EXPECT_EQ(lane_erases, global_erases);

  const obs::LatencyHistogram* global_hist =
      merged.FindHistogram("ssd.response_us");
  ASSERT_NE(global_hist, nullptr);
  EXPECT_EQ(lane_hist.total(), global_hist->total());
  EXPECT_DOUBLE_EQ(lane_hist.max(), global_hist->max());
  for (const double q : {0.5, 0.99}) {
    EXPECT_DOUBLE_EQ(lane_hist.Quantile(q), global_hist->Quantile(q));
  }
}

TEST(TenantAccountingTest, ChromeTraceGetsOneLanePerTenant) {
  TenantMixSource mix(MixSpecs(200));
  SsdConfig config;
  config.logical_bytes = mix.RequiredDeviceBytes();
  config.tenant_count = mix.tenant_count();
  config.trace_phases = true;
  config.trace_span_requests = 64;
  Ssd ssd(config);
  IoRequest req;
  while (mix.Next(&req)) {
    ssd.Submit(req);
  }

  // Records carry their tenant, and the export names one process per lane.
  bool saw_nonzero_tenant = false;
  for (const obs::RequestTraceRecord& rec : ssd.trace_log().records()) {
    saw_nonzero_tenant |= rec.tenant != 0;
  }
  ASSERT_TRUE(saw_nonzero_tenant);

  std::ostringstream out;
  obs::WriteChromeTrace(out, ssd.trace_log(), "serving");
  const std::string json = out.str();
  EXPECT_NE(json.find("\"serving tenant 1\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 2"), std::string::npos);
}

}  // namespace
}  // namespace tpftl
