// Closed-loop (queue-depth) driving over a multi-die device.
//
// Three properties pin down the BENCH_e2e v2 sweep machinery: deeper queues
// scale simulated throughput on independent dies, the per-QD warm-up reset
// keeps the warm-up backlog out of the measured latencies (the closed-loop
// saturation artifact), and die-utilization accounting tracks queue depth.
//
// The scaling cases run read-only with a cache that covers every mapping so
// each request touches exactly the dies holding its data pages — with
// translation traffic or GC in the mix a single request already fans out
// across dies, which is real overlap but hides the queue-depth effect these
// tests isolate. A separate GC-heavy case covers the mixed path.

#include <gtest/gtest.h>

#include "src/ssd/runner.h"
#include "src/workload/generator.h"

namespace tpftl {
namespace {

ExperimentConfig ReadOnlyConfig(uint32_t dies) {
  ExperimentConfig config;
  config.workload.name = "qd-sweep";
  config.workload.address_space_bytes = 32ULL << 20;
  config.workload.num_requests = 8000;
  config.workload.seed = 7;
  config.workload.write_ratio = 0.0;
  config.workload.zipf_theta = 0.0;  // Uniform: requests spread across dies.
  config.ftl_kind = FtlKind::kDftl;
  config.cache_bytes = 8ULL << 20;  // Covers all mappings: no trans traffic.
  config.channels = 1;
  config.dies_per_channel = dies;
  config.warmup_fraction = 0.0;  // The closed loop does its own warm-up.
  return config;
}

ClosedLoopReport DriveClosedLoop(const ExperimentConfig& config,
                                 uint32_t queue_depth, uint64_t warmup,
                                 uint64_t measured) {
  SyntheticWorkload trace(config.workload);
  ClosedLoopConfig loop;
  loop.queue_depth = queue_depth;
  loop.warmup_requests = warmup;
  loop.measured_requests = measured;
  return RunClosedLoop(config, trace, loop);
}

TEST(ClosedLoopTest, DeeperQueueScalesThroughputOnMultiDie) {
  const ClosedLoopReport flat = DriveClosedLoop(ReadOnlyConfig(1), 1, 500, 4000);
  const ExperimentConfig config = ReadOnlyConfig(4);
  const ClosedLoopReport qd1 = DriveClosedLoop(config, 1, 500, 4000);
  const ClosedLoopReport qd8 = DriveClosedLoop(config, 8, 500, 4000);
  ASSERT_GT(qd1.sim_requests_per_sec, 0.0);
  // Eight outstanding single-die requests over four independent dies must
  // deliver well beyond what one outstanding request can.
  EXPECT_GE(qd8.sim_requests_per_sec, 1.8 * qd1.sim_requests_per_sec)
      << "QD1 " << qd1.sim_requests_per_sec << " req/s, QD8 "
      << qd8.sim_requests_per_sec << " req/s";
  // And the four-die device at depth must beat the flat device by ~the die
  // count (3x leaves headroom for die-collision losses).
  EXPECT_GE(qd8.sim_requests_per_sec, 3.0 * flat.sim_requests_per_sec)
      << "flat " << flat.sim_requests_per_sec << " req/s, 4-die QD8 "
      << qd8.sim_requests_per_sec << " req/s";
  EXPECT_EQ(qd8.measured, 4000u);
  EXPECT_LT(qd8.makespan_us, qd1.makespan_us);
}

TEST(ClosedLoopTest, SingleDieGainsNothingFromQueueDepth) {
  const ExperimentConfig config = ReadOnlyConfig(1);
  const ClosedLoopReport qd1 = DriveClosedLoop(config, 1, 200, 2000);
  const ClosedLoopReport qd8 = DriveClosedLoop(config, 8, 200, 2000);
  // One die serializes everything: deeper queues add queueing delay but the
  // simulated throughput cannot move.
  EXPECT_NEAR(qd8.sim_requests_per_sec, qd1.sim_requests_per_sec,
              0.02 * qd1.sim_requests_per_sec);
  EXPECT_GT(qd8.report.mean_response_us, 4.0 * qd1.report.mean_response_us);
}

// GC-heavy mixed traffic still benefits from dies even at QD1 (translation
// reads, evictions, and GC migrations fan out within a request).
TEST(ClosedLoopTest, MixedWriteTrafficStillScalesWithDies) {
  ExperimentConfig flat = ReadOnlyConfig(1);
  flat.cache_bytes = 0;  // Paper-default cache: translation traffic is live.
  flat.workload.write_ratio = 0.25;
  ExperimentConfig striped = flat;
  striped.dies_per_channel = 4;
  const ClosedLoopReport one = DriveClosedLoop(flat, 8, 500, 4000);
  const ClosedLoopReport four = DriveClosedLoop(striped, 8, 500, 4000);
  EXPECT_GE(four.sim_requests_per_sec, 1.5 * one.sim_requests_per_sec)
      << "1-die " << one.sim_requests_per_sec << " req/s, 4-die "
      << four.sim_requests_per_sec << " req/s";
}

// Regression for the saturated-queue warm-up artifact (ROADMAP item 5): in a
// closed loop at deep QD the queue is permanently full, so without the
// per-QD ResetStats the backlog accumulated during warm-up would bill every
// measured request for queueing delay that grows with warm-up length. With
// the epoch reset, measured mean response must be insensitive to how long
// the warm-up ran (the workload is stationary read-only, so there is no
// physical drift to excuse a difference).
TEST(ClosedLoopTest, WarmupLengthDoesNotInflateMeasuredLatency) {
  const ExperimentConfig config = ReadOnlyConfig(4);
  const ClosedLoopReport short_warmup = DriveClosedLoop(config, 16, 200, 2500);
  const ClosedLoopReport long_warmup = DriveClosedLoop(config, 16, 3000, 2500);
  ASSERT_GT(short_warmup.report.mean_response_us, 0.0);
  EXPECT_LE(long_warmup.report.mean_response_us,
            1.25 * short_warmup.report.mean_response_us)
      << "warm-up backlog leaked into the measured window: "
      << long_warmup.report.mean_response_us << " us after 3000 warm-up vs "
      << short_warmup.report.mean_response_us << " us after 200";
}

TEST(ClosedLoopTest, DieUtilizationTracksQueueDepth) {
  const ExperimentConfig config = ReadOnlyConfig(4);
  const ClosedLoopReport qd1 = DriveClosedLoop(config, 1, 500, 4000);
  const ClosedLoopReport qd8 = DriveClosedLoop(config, 8, 500, 4000);
  ASSERT_EQ(qd1.die_utilization.size(), 4u);
  ASSERT_EQ(qd8.die_utilization.size(), 4u);
  double busy1 = 0.0;
  double busy8 = 0.0;
  for (uint32_t d = 0; d < 4; ++d) {
    EXPECT_GE(qd1.die_utilization[d], 0.0);
    EXPECT_LE(qd1.die_utilization[d], 1.0);
    EXPECT_LE(qd8.die_utilization[d], 1.0);
    busy1 += qd1.die_utilization[d];
    busy8 += qd8.die_utilization[d];
  }
  // Deep queues keep nearly all four dies busy; a lone request cannot.
  EXPECT_GT(busy8, busy1);
  EXPECT_GT(busy8, 3.0);
}

}  // namespace
}  // namespace tpftl
