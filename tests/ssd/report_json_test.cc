#include "src/ssd/report_json.h"

#include <gtest/gtest.h>

namespace tpftl {
namespace {

RunReport SampleReport() {
  RunReport r;
  r.workload_name = "Financial1";
  r.ftl_name = "TPFTL";
  r.requests = 1000;
  r.hit_ratio = 0.875;
  r.prd = 0.015;
  r.write_amplification = 2.5;
  r.mean_response_us = 812.5;
  r.p50_response_us = 600.25;
  r.p99_response_us = 5000.5;
  r.phases.Charge(obs::Phase::kTranslation, obs::FlashOp::kRead, 25.0);
  r.queue_us_total = 1500.0;
  r.trans_reads = 42;
  r.trans_writes = 7;
  r.block_erases = 3;
  r.stats.lookups = 1100;
  r.stats.hits = 960;
  r.stats.static_level_blocks = 4;
  r.stats.switch_merges = 11;
  r.stats.partial_merges = 6;
  r.stats.full_merges = 2;
  r.flash.page_writes = 1234;
  r.erase_min = 1;
  r.erase_max = 9;
  r.erase_mean = 3.5;
  r.erase_variance = 1.25;
  r.bad_blocks = 2;
  r.stream_writes = {700, 300};
  return r;
}

TEST(ReportJsonTest, ContainsAllTopLevelFields) {
  const std::string json = ReportToJson(SampleReport());
  for (const char* key :
       {"\"workload\":\"Financial1\"", "\"ftl\":\"TPFTL\"", "\"requests\":1000",
        "\"hit_ratio\":0.875", "\"prd\":0.015", "\"write_amplification\":2.5",
        "\"trans_reads\":42", "\"trans_writes\":7", "\"block_erases\":3",
        "\"lookups\":1100", "\"page_writes\":1234", "\"p50_response_us\":600.25",
        "\"p99_response_us\":5000.5", "\"phases\":", "\"queue_us\":1500",
        "\"translation_us\":25", "\"translation_ops\":1", "\"gc_victim_scans\":0",
        "\"erase_min\":1", "\"erase_max\":9", "\"erase_mean\":3.5",
        "\"erase_variance\":1.25", "\"bad_blocks\":2", "\"stream_writes\":[700,300]",
        "\"static_level_blocks\":4", "\"switch_merges\":11", "\"partial_merges\":6",
        "\"full_merges\":2"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key << " in " << json;
  }
}

TEST(ReportJsonTest, ProducesBalancedJson) {
  const std::string json = ReportToJson(SampleReport());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  int depth = 0;
  bool in_string = false;
  for (const char c : json) {
    if (c == '"') {
      in_string = !in_string;
    }
    if (!in_string) {
      depth += c == '{' ? 1 : 0;
      depth -= c == '}' ? 1 : 0;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(ReportJsonTest, EscapesSpecialCharacters) {
  RunReport r = SampleReport();
  r.workload_name = "trace \"v2\"\\path";
  const std::string json = ReportToJson(r);
  EXPECT_NE(json.find("\\\"v2\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\path"), std::string::npos);
}

}  // namespace
}  // namespace tpftl
