#include "src/ssd/ssd.h"

#include <gtest/gtest.h>

namespace tpftl {
namespace {

SsdConfig SmallSsd(FtlKind kind = FtlKind::kTpftl) {
  SsdConfig c;
  c.logical_bytes = 16ULL << 20;  // 4096 pages, 64 logical blocks.
  c.ftl_kind = kind;
  return c;
}

TEST(SsdTest, PaperCacheDefaultApplies) {
  Ssd ssd(SmallSsd());
  // Block-level table: 64 blocks * 4 B; GTD: 4 translation pages * 4 B.
  EXPECT_EQ(ssd.cache_bytes(), 64u * 4 + 4u * 4);
  EXPECT_EQ(ssd.logical_pages(), 4096u);
}

TEST(SsdTest, PaperConfigurationsMatchSection51) {
  // 512 MB → 8.5 KiB cache; 16 GB → 272 KiB cache (§5.1).
  const FlashGeometry g512 = MakeGeometry(512ULL << 20);
  EXPECT_EQ(PaperCacheBytes(g512, LogicalPages(g512, 512ULL << 20)), 8704u);
  const FlashGeometry g16 = MakeGeometry(16ULL << 30);
  EXPECT_EQ(PaperCacheBytes(g16, LogicalPages(g16, 16ULL << 30)), 278528u);
}

TEST(SsdTest, TinyDeviceBelowGcThresholdStillServes) {
  // A 6 MiB device gets a 4-block spare pool — below the default GC
  // threshold of 8 — so NeedsGc() is permanently true once the logical
  // space is full. GC must recognise that every candidate is fully valid
  // and serve at the remaining headroom instead of livelocking on net-zero
  // collections. (This is exactly the state a sharded front-end puts small
  // shards in: the spare pool is sliced along with the logical space.)
  SsdConfig config;
  config.logical_bytes = 6ULL << 20;
  config.ftl_kind = FtlKind::kTpftl;
  Ssd ssd(config);
  ssd.FillSequential();
  IoRequest req;
  req.kind = IoKind::kWrite;
  req.size_bytes = 4096;
  for (int i = 0; i < 2000; ++i) {
    req.offset_bytes = (static_cast<uint64_t>(i) * 37 % ssd.logical_pages()) * 4096;
    ssd.Submit(req);
  }
  EXPECT_EQ(ssd.requests_served(), 2000u);
  for (Lpn lpn = 0; lpn < ssd.logical_pages(); ++lpn) {
    ASSERT_NE(ssd.ftl().Probe(lpn), kInvalidPpn) << "lpn " << lpn;
  }
}

TEST(SsdTest, SubmitSplitsRequestIntoPageAccesses) {
  Ssd ssd(SmallSsd());
  IoRequest req;
  req.offset_bytes = 0;
  req.size_bytes = 3 * 4096;
  req.kind = IoKind::kWrite;
  req.arrival_us = 0.0;
  ssd.Submit(req);
  EXPECT_EQ(ssd.ftl().stats().host_page_writes, 3u);
  EXPECT_NE(ssd.ftl().Probe(0), kInvalidPpn);
  EXPECT_NE(ssd.ftl().Probe(2), kInvalidPpn);
  EXPECT_EQ(ssd.ftl().Probe(3), kInvalidPpn);
}

TEST(SsdTest, UnalignedRequestTouchesSpilloverPage) {
  Ssd ssd(SmallSsd());
  IoRequest req;
  req.offset_bytes = 4096 - 512;
  req.size_bytes = 1024;  // Crosses the page boundary.
  req.kind = IoKind::kWrite;
  ssd.Submit(req);
  EXPECT_EQ(ssd.ftl().stats().host_page_writes, 2u);
  EXPECT_NE(ssd.ftl().Probe(0), kInvalidPpn);
  EXPECT_NE(ssd.ftl().Probe(1), kInvalidPpn);
}

TEST(SsdTest, ResponseTimeIsServicePlusQueue) {
  Ssd ssd(SmallSsd(FtlKind::kOptimal));
  IoRequest w1;
  w1.offset_bytes = 0;
  w1.size_bytes = 4096;
  w1.kind = IoKind::kWrite;
  w1.arrival_us = 0.0;
  const MicroSec r1 = ssd.Submit(w1);
  // Optimal FTL: one data page write, no translation cost, no queue.
  EXPECT_DOUBLE_EQ(r1, ssd.geometry().page_write_us);

  // A simultaneous second request queues behind the first.
  IoRequest w2 = w1;
  w2.offset_bytes = 4096;
  const MicroSec r2 = ssd.Submit(w2);
  EXPECT_DOUBLE_EQ(r2, 2 * ssd.geometry().page_write_us);

  // A late-arriving request sees an idle device again.
  IoRequest w3 = w1;
  w3.offset_bytes = 8192;
  w3.arrival_us = 10000.0;
  const MicroSec r3 = ssd.Submit(w3);
  EXPECT_DOUBLE_EQ(r3, ssd.geometry().page_write_us);
}

TEST(SsdTest, DemandFtlMissesCostMoreThanOptimal) {
  Ssd optimal(SmallSsd(FtlKind::kOptimal));
  Ssd dftl(SmallSsd(FtlKind::kDftl));
  IoRequest req;
  req.offset_bytes = 0;
  req.size_bytes = 4096;
  req.kind = IoKind::kRead;
  const MicroSec t_opt = optimal.Submit(req);
  const MicroSec t_dftl = dftl.Submit(req);
  EXPECT_GT(t_dftl, t_opt);  // The miss pays a translation page read.
}

TEST(SsdTest, FillSequentialMapsEveryPage) {
  Ssd ssd(SmallSsd());
  ssd.FillSequential();
  for (Lpn lpn = 0; lpn < ssd.logical_pages(); lpn += 97) {
    EXPECT_NE(ssd.ftl().Probe(lpn), kInvalidPpn);
  }
  EXPECT_EQ(ssd.requests_served(), 0u);  // Preconditioning is not traffic.
}

TEST(SsdTest, ResetStatsClearsCountersKeepsMappings) {
  Ssd ssd(SmallSsd());
  ssd.FillSequential();
  IoRequest req;
  req.offset_bytes = 0;
  req.size_bytes = 4096;
  req.kind = IoKind::kWrite;
  ssd.Submit(req);
  ssd.ResetStats();
  EXPECT_EQ(ssd.ftl().stats().host_page_writes, 0u);
  EXPECT_EQ(ssd.flash().stats().page_writes, 0u);
  EXPECT_EQ(ssd.requests_served(), 0u);
  EXPECT_NE(ssd.ftl().Probe(0), kInvalidPpn);  // Mapping survives.
}

TEST(SsdTest, AgeRandomFragmentsPlacementButKeepsMappings) {
  Ssd ssd(SmallSsd());
  ssd.FillSequential();
  // Fresh fill: physical placement is sequential.
  EXPECT_EQ(ssd.ftl().Probe(1), ssd.ftl().Probe(0) + 1);
  ssd.AgeRandom(0.5);
  // Every page still mapped and consistent.
  uint64_t displaced = 0;
  Ppn prev = ssd.ftl().Probe(0);
  for (Lpn lpn = 1; lpn < ssd.logical_pages(); ++lpn) {
    const Ppn ppn = ssd.ftl().Probe(lpn);
    ASSERT_NE(ppn, kInvalidPpn);
    ASSERT_EQ(ssd.flash().OobTag(ppn), lpn);
    displaced += ppn != prev + 1 ? 1 : 0;
    prev = ppn;
  }
  // Substantially fragmented: a large share of successor pairs broke.
  EXPECT_GT(displaced, ssd.logical_pages() / 4);
}

TEST(SsdTest, AgeRandomIsDeterministic) {
  Ssd a(SmallSsd());
  Ssd b(SmallSsd());
  a.FillSequential();
  b.FillSequential();
  a.AgeRandom(0.3, 77);
  b.AgeRandom(0.3, 77);
  for (Lpn lpn = 0; lpn < a.logical_pages(); lpn += 53) {
    EXPECT_EQ(a.ftl().Probe(lpn), b.ftl().Probe(lpn));
  }
}

TEST(SsdTest, ResponseStatsTrackSubmissions) {
  Ssd ssd(SmallSsd());
  IoRequest req;
  req.offset_bytes = 0;
  req.size_bytes = 4096;
  req.kind = IoKind::kWrite;
  for (int i = 0; i < 10; ++i) {
    req.arrival_us = i * 100000.0;
    req.offset_bytes = static_cast<uint64_t>(i) * 4096;
    ssd.Submit(req);
  }
  EXPECT_EQ(ssd.requests_served(), 10u);
  EXPECT_EQ(ssd.response_stats().count(), 10u);
  EXPECT_GT(ssd.response_stats().mean(), 0.0);
  EXPECT_EQ(ssd.response_histogram().total(), 10u);
}

}  // namespace
}  // namespace tpftl
