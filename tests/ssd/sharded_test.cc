// ShardedSsd: randomized differential against the single-device reference,
// thread-count independence, LPN-interleaved routing, and exact stat merging.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/ssd/sharded.h"
#include "src/ssd/ssd.h"
#include "src/util/rng.h"

namespace tpftl {
namespace {

constexpr uint64_t kLogicalBytes = 16ULL << 20;  // 4096 pages globally.
constexpr uint64_t kPageSize = 4096;
constexpr uint64_t kLogicalPages = kLogicalBytes / kPageSize;

SsdConfig BaseConfig(FtlKind kind) {
  SsdConfig config;
  config.logical_bytes = kLogicalBytes;
  config.ftl_kind = kind;
  config.gc_threshold = 4;
  return config;
}

// A deterministic mixed op stream: single- and multi-page reads, writes, and
// trims over a hot-skewed address space, with monotone arrivals.
std::vector<IoRequest> MakeStream(uint64_t ops, uint64_t seed) {
  Rng rng(seed);
  std::vector<IoRequest> stream;
  stream.reserve(ops);
  MicroSec clock = 0.0;
  for (uint64_t i = 0; i < ops; ++i) {
    IoRequest r;
    const Lpn lpn = rng.Chance(0.6) ? rng.Below(kLogicalPages / 8)
                                    : rng.Below(kLogicalPages);
    const uint64_t pages = 1 + rng.Below(6);  // Sub-request splits exercised.
    r.offset_bytes = lpn * kPageSize;
    r.size_bytes = pages * kPageSize;
    const double dice = rng.NextDouble();
    r.kind = dice < 0.55 ? IoKind::kWrite
                         : (dice < 0.92 ? IoKind::kRead : IoKind::kTrim);
    clock += rng.NextDouble() * 40.0;
    r.arrival_us = clock;
    stream.push_back(r);
  }
  return stream;
}

// Host-visible ground truth: which LPNs hold data after the stream.
std::vector<bool> ShadowMapped(const std::vector<IoRequest>& stream) {
  std::vector<bool> mapped(kLogicalPages, false);
  for (const IoRequest& r : stream) {
    if (r.kind == IoKind::kRead) {
      continue;
    }
    const Lpn first = r.FirstLpn(kPageSize) % kLogicalPages;
    const uint64_t pages = std::min(r.PageCount(kPageSize), kLogicalPages);
    for (uint64_t i = 0; i < pages; ++i) {
      mapped[(first + i) % kLogicalPages] = r.kind == IoKind::kWrite;
    }
  }
  return mapped;
}

class ShardedDifferentialTest : public ::testing::TestWithParam<FtlKind> {};

// The sharded front-end and a single flat device are fed the same op stream;
// their host-visible mapped state must agree exactly (with each other and
// with the shadow model), regardless of how GC and placement diverge inside.
TEST_P(ShardedDifferentialTest, MatchesSingleDeviceReference) {
  const FtlKind kind = GetParam();
  const std::vector<IoRequest> stream = MakeStream(2500, 0xD1FF + static_cast<int>(kind));

  Ssd reference(BaseConfig(kind));

  ShardedConfig sharded_config;
  sharded_config.base = BaseConfig(kind);
  sharded_config.base.dies_per_channel = 2;  // Multi-die inside each shard.
  sharded_config.shards = 4;
  sharded_config.threads = 2;
  ShardedSsd sharded(sharded_config);
  ASSERT_EQ(sharded.logical_pages(), kLogicalPages);

  for (const IoRequest& r : stream) {
    reference.Submit(r);
    sharded.Submit(r);
  }
  sharded.Drain();

  const std::vector<bool> shadow = ShadowMapped(stream);
  uint64_t mapped_count = 0;
  for (Lpn lpn = 0; lpn < kLogicalPages; ++lpn) {
    const bool ref_mapped = reference.ftl().Probe(lpn) != kInvalidPpn;
    const bool sharded_mapped = sharded.Probe(lpn) != kInvalidPpn;
    ASSERT_EQ(ref_mapped, shadow[lpn]) << "reference diverged at lpn " << lpn;
    ASSERT_EQ(sharded_mapped, shadow[lpn]) << "sharded diverged at lpn " << lpn;
    mapped_count += sharded_mapped ? 1 : 0;
  }
  EXPECT_GT(mapped_count, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllFtls, ShardedDifferentialTest,
    ::testing::Values(FtlKind::kOptimal, FtlKind::kDftl, FtlKind::kCdftl,
                      FtlKind::kSftl, FtlKind::kTpftl, FtlKind::kBlockFtl,
                      FtlKind::kFast, FtlKind::kZftl, FtlKind::kLearned),
    [](const ::testing::TestParamInfo<FtlKind>& info) {
      std::string name = FtlKindName(info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

// Worker-thread count must not change any host-visible state or any per-shard
// statistic: each shard's op stream is identical, only wall-clock differs.
TEST(ShardedSsdTest, ThreadCountDoesNotChangeStateOrStats) {
  const std::vector<IoRequest> stream = MakeStream(1500, 0xBEEF);
  auto run = [&](uint32_t threads) {
    ShardedConfig config;
    config.base = BaseConfig(FtlKind::kDftl);
    config.shards = 4;
    config.threads = threads;
    auto sharded = std::make_unique<ShardedSsd>(config);
    for (const IoRequest& r : stream) {
      sharded->Submit(r);
    }
    sharded->Drain();
    return sharded;
  };
  const auto one = run(1);
  const auto four = run(4);
  ASSERT_EQ(four->threads(), 4u);
  for (Lpn lpn = 0; lpn < kLogicalPages; ++lpn) {
    ASSERT_EQ(one->Probe(lpn), four->Probe(lpn)) << "lpn " << lpn;
  }
  ASSERT_EQ(one->TotalRequestsServed(), four->TotalRequestsServed());
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(one->shard(s).requests_served(), four->shard(s).requests_served());
    EXPECT_EQ(one->shard(s).flash().stats().page_writes,
              four->shard(s).flash().stats().page_writes);
    EXPECT_EQ(one->shard(s).flash().stats().block_erases,
              four->shard(s).flash().stats().block_erases);
  }
}

// Interleaved routing: global LPN g lives on shard g mod S at local g / S.
TEST(ShardedSsdTest, RoutesLpnsByInterleaving) {
  ShardedConfig config;
  config.base = BaseConfig(FtlKind::kOptimal);
  config.shards = 4;
  config.threads = 1;
  ShardedSsd sharded(config);

  const Lpn global = 4093;  // shard 1, local 1023.
  IoRequest r;
  r.offset_bytes = global * kPageSize;
  r.size_bytes = kPageSize;
  r.kind = IoKind::kWrite;
  sharded.Submit(r);
  sharded.Drain();

  EXPECT_NE(sharded.Probe(global), kInvalidPpn);
  EXPECT_NE(sharded.shard(global % 4).ftl().Probe(global / 4), kInvalidPpn);
  for (uint32_t s = 0; s < 4; ++s) {
    if (s != global % 4) {
      EXPECT_EQ(sharded.shard(s).ftl().Probe(global / 4), kInvalidPpn);
    }
  }
}

// Merged registry == exact sum of per-shard registries (counts and totals).
TEST(ShardedSsdTest, MergesPerShardMetricsExactly) {
  ShardedConfig config;
  config.base = BaseConfig(FtlKind::kTpftl);
  config.shards = 4;
  config.threads = 4;
  ShardedSsd sharded(config);
  for (const IoRequest& r : MakeStream(1200, 0xCAFE)) {
    sharded.Submit(r);
  }
  sharded.Drain();

  obs::MetricsRegistry merged;
  sharded.MergeMetricsInto(&merged);
  const obs::LatencyHistogram* hist = merged.FindHistogram("ssd.response_us");
  ASSERT_NE(hist, nullptr);
  uint64_t expect_count = 0;
  double expect_sum = 0.0;
  for (uint32_t s = 0; s < 4; ++s) {
    expect_count += sharded.shard(s).response_histogram().total();
    expect_sum += sharded.shard(s).response_histogram().sum();
  }
  EXPECT_EQ(hist->total(), expect_count);
  EXPECT_DOUBLE_EQ(hist->sum(), expect_sum);
  EXPECT_EQ(expect_count, sharded.TotalRequestsServed());
}

// FillSequential preconditions every shard; afterwards every LPN is mapped.
TEST(ShardedSsdTest, ParallelFillMapsEveryPage) {
  ShardedConfig config;
  config.base = BaseConfig(FtlKind::kDftl);
  config.shards = 2;
  config.threads = 2;
  ShardedSsd sharded(config);
  sharded.FillSequential();
  for (Lpn lpn = 0; lpn < kLogicalPages; lpn += 7) {
    ASSERT_NE(sharded.Probe(lpn), kInvalidPpn) << "lpn " << lpn;
  }
  sharded.ResetStats();
  EXPECT_EQ(sharded.TotalRequestsServed(), 0u);
}

}  // namespace
}  // namespace tpftl
