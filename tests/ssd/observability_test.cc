// End-to-end checks for the observability layer: phase attribution must add
// up to the measured response times, tracing must not perturb the simulation,
// and the ResetStats epoch must keep warm-up queueing out of measured stats.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/ssd/runner.h"
#include "src/ssd/ssd.h"
#include "src/trace/vector_trace.h"

namespace tpftl {
namespace {

WorkloadConfig GcHeavyWorkload() {
  WorkloadConfig c;
  c.name = "obs";
  c.address_space_bytes = 16ULL << 20;
  c.num_requests = 4000;
  c.seed = 9;
  c.write_ratio = 0.8;  // Heavy writes so GC and flush phases are exercised.
  c.zipf_theta = 1.1;
  c.chunk_pages = 8;
  return c;
}

// Phase-attribution tests only exist when the obs layer is compiled in; with
// -DTPFTL_OBS=OFF every ChargeFlash is a no-op and the phase table stays
// empty by design. The epoch tests further down are tracing-independent.
#if TPFTL_OBS_ENABLED

// Acceptance criterion: queue + per-phase flash time must reconstruct the
// total measured response time within 0.1%. This is the property that makes
// the phase breakdown trustworthy — any NAND op not routed through
// obs::ChargeFlash, or any double-billed scope, breaks it.
TEST(ObservabilityTest, PhaseSumMatchesResponseTotal) {
  for (const FtlKind kind :
       {FtlKind::kOptimal, FtlKind::kDftl, FtlKind::kTpftl, FtlKind::kBlockFtl,
        FtlKind::kFast, FtlKind::kZftl, FtlKind::kLearned}) {
    ExperimentConfig config;
    config.workload = GcHeavyWorkload();
    config.ftl_kind = kind;
    config.trace_phases = true;
    config.write_buffer.capacity_pages = 64;  // Exercise the flush phase.
    const RunReport report = RunExperiment(config);

    const double reconstructed = report.queue_us_total + report.phases.ServiceUs();
    ASSERT_GT(report.response_total_us, 0.0);
    EXPECT_NEAR(reconstructed, report.response_total_us,
                report.response_total_us * 0.001)
        << report.ftl_name;
    // Background GC was off: nothing may be booked there.
    EXPECT_DOUBLE_EQ(report.phases.PhaseUs(obs::Phase::kBackground), 0.0)
        << report.ftl_name;
  }
}

TEST(ObservabilityTest, PhaseSumHoldsWithBackgroundGc) {
  ExperimentConfig config;
  config.workload = GcHeavyWorkload();
  config.ftl_kind = FtlKind::kTpftl;
  config.trace_phases = true;
  config.background_gc = true;
  const RunReport report = RunExperiment(config);
  // Background GC runs in idle gaps: it appears in the phase table but never
  // in response time, so the identity still holds on ServiceUs.
  const double reconstructed = report.queue_us_total + report.phases.ServiceUs();
  EXPECT_NEAR(reconstructed, report.response_total_us,
              report.response_total_us * 0.001);
}

// Acceptance criterion: tracing is observation only. The same experiment with
// trace_phases on and off must produce bit-identical timing results.
TEST(ObservabilityTest, TracingDoesNotPerturbTiming) {
  ExperimentConfig config;
  config.workload = GcHeavyWorkload();
  config.ftl_kind = FtlKind::kTpftl;
  config.write_buffer.capacity_pages = 64;

  config.trace_phases = false;
  const RunReport off = RunExperiment(config);
  config.trace_phases = true;
  config.trace_span_requests = 32;
  const RunReport on = RunExperiment(config);

  EXPECT_EQ(off.requests, on.requests);
  EXPECT_EQ(off.mean_response_us, on.mean_response_us);
  EXPECT_EQ(off.response_total_us, on.response_total_us);
  EXPECT_EQ(off.p50_response_us, on.p50_response_us);
  EXPECT_EQ(off.p99_response_us, on.p99_response_us);
  EXPECT_EQ(off.p999_response_us, on.p999_response_us);
  EXPECT_EQ(off.max_response_us, on.max_response_us);
  EXPECT_EQ(off.trans_reads, on.trans_reads);
  EXPECT_EQ(off.trans_writes, on.trans_writes);
  EXPECT_EQ(off.block_erases, on.block_erases);
  EXPECT_EQ(off.hit_ratio, on.hit_ratio);
  // And the traced run actually filled its sinks.
  EXPECT_GT(on.phases.ServiceUs(), 0.0);
  EXPECT_DOUBLE_EQ(off.phases.ServiceUs(), 0.0);
}

TEST(ObservabilityTest, SpanCaptureFillsTheTraceLog) {
  ExperimentConfig config;
  config.workload = GcHeavyWorkload();
  config.workload.num_requests = 500;
  config.ftl_kind = FtlKind::kDftl;
  config.trace_phases = true;
  config.trace_span_requests = 16;

  // The SSD only lives for the duration of the run: inspect the trace log
  // from inside the observer on the last measured request.
  bool checked = false;
  const RunReport report = RunExperiment(config, [&](const Ssd& ssd, uint64_t index) {
    if (index != 450) {  // 500 requests, 10% warm-up → 450 measured.
      return;
    }
    checked = true;
    const obs::RequestTraceLog& log = ssd.trace_log();
    EXPECT_EQ(log.records().size(), 16u);
    EXPECT_EQ(log.dropped(), 450u - 16u);
    for (const obs::RequestTraceRecord& rec : log.records()) {
      // Absolute stamps are consistent and span durations reconstruct the
      // request's service time.
      EXPECT_GE(rec.start_us, rec.arrival_us);
      EXPECT_GE(rec.finish_us, rec.start_us);
      EXPECT_DOUBLE_EQ(rec.queue_us, rec.start_us - rec.arrival_us);
      double span_total = 0.0;
      for (const obs::Span& span : rec.spans) {
        span_total += span.dur_us;
      }
      EXPECT_NEAR(span_total, rec.finish_us - rec.start_us, 1e-6);
      EXPECT_NEAR(span_total, rec.phases.ServiceUs(), 1e-6);
    }
  });
  EXPECT_TRUE(checked);
  EXPECT_EQ(report.requests, 450u);
}

// Same regression at the runner level: a deliberately saturated trace (every
// request arrives at t=0) crossing the warm-up boundary. The first measured
// response must be ~one service time, not warm-up-count service times.
TEST(ObservabilityTest, WarmupQueueBacklogDoesNotLeakIntoMeasurement) {
  constexpr int kRequests = 200;  // 100 warm-up + 100 measured.
  std::vector<IoRequest> requests;
  for (int i = 0; i < kRequests; ++i) {
    IoRequest r;
    r.arrival_us = 0.0;  // Fully saturated queue.
    r.offset_bytes = static_cast<uint64_t>(i) * 4096;
    r.size_bytes = 4096;
    r.kind = IoKind::kRead;  // Reads on a preconditioned device: service = S.
    requests.push_back(r);
  }
  VectorTrace trace(std::move(requests));

  ExperimentConfig config;
  config.workload = GcHeavyWorkload();
  config.workload.num_requests = kRequests;
  config.ftl_kind = FtlKind::kOptimal;
  config.warmup_fraction = 0.5;
  config.trace_phases = true;
  const RunReport report = RunTrace(config, trace);

  ASSERT_EQ(report.requests, 100u);
  const double S = report.phases.ServiceUs() / 100.0;  // Per-request service.
  ASSERT_GT(S, 0.0);
  // k-th measured response is k*S: mean = 50.5*S, min = S, max = 100*S. The
  // old accounting reported 101*S .. 200*S (mean 150.5*S).
  EXPECT_NEAR(report.mean_response_us, 50.5 * S, 50.5 * S * 1e-9);
  EXPECT_DOUBLE_EQ(report.response_hist.min(), S);
  EXPECT_DOUBLE_EQ(report.response_hist.max(), 100.0 * S);
  EXPECT_DOUBLE_EQ(report.max_response_us, 100.0 * S);
  // Queue identity still holds under saturation.
  EXPECT_NEAR(report.queue_us_total + report.phases.ServiceUs(),
              report.response_total_us, report.response_total_us * 0.001);
}

#endif  // TPFTL_OBS_ENABLED

// Regression (Ssd level): responses measured after ResetStats must not be
// billed for queueing delay inherited from pre-reset traffic. With the old
// accounting, a queue of N backlogged writes before the reset inflated the
// k-th post-reset response from k*S to (N+k)*S.
TEST(ObservabilityTest, ResetStatsStartsANewQueueingEpoch) {
  SsdConfig ssd_config;
  ssd_config.logical_bytes = 16ULL << 20;
  ssd_config.ftl_kind = FtlKind::kOptimal;
  Ssd ssd(ssd_config);
  const double S = ssd.geometry().page_write_us;

  IoRequest req;
  req.size_bytes = 4096;
  req.kind = IoKind::kWrite;
  req.arrival_us = 0.0;
  // Warm-up: four simultaneous writes build a 4S backlog.
  for (int i = 0; i < 4; ++i) {
    req.offset_bytes = static_cast<uint64_t>(i) * 4096;
    ssd.Submit(req);
  }
  ssd.ResetStats();

  // Four more simultaneous writes whose arrival predates the epoch. Their
  // physics is unchanged (they still run after the backlog drains) but the
  // measured responses start from the epoch: S, 2S, 3S, 4S.
  std::vector<double> responses;
  for (int i = 4; i < 8; ++i) {
    req.offset_bytes = static_cast<uint64_t>(i) * 4096;
    responses.push_back(ssd.Submit(req));
  }
  ASSERT_EQ(responses.size(), 4u);
  for (int k = 0; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(responses[static_cast<size_t>(k)], (k + 1) * S) << "k=" << k;
  }
  EXPECT_DOUBLE_EQ(ssd.response_stats().max(), 4 * S);
}

// Device-metrics mirror: with checkpointing enabled, journal/checkpoint
// activity shows up in the registry; with it disabled, the mirrored counters
// stay zero and a sparse device still reports its resident arena segments.
TEST(ObservabilityTest, CheckpointActivityIsMirroredIntoMetrics) {
  SsdConfig ssd_config;
  ssd_config.logical_bytes = 16ULL << 20;
  ssd_config.ftl_kind = FtlKind::kTpftl;
  ssd_config.checkpoint.enabled = true;
  ssd_config.checkpoint.interval_host_ops = 64;
  Ssd ssd(ssd_config);

  IoRequest req;
  req.size_bytes = 4096;
  req.kind = IoKind::kWrite;
  req.arrival_us = 0.0;
  for (int i = 0; i < 512; ++i) {
    req.offset_bytes = static_cast<uint64_t>(i % 64) * 4096;
    ssd.Submit(req);
  }
  obs::MetricsRegistry& m = ssd.metrics();
  EXPECT_GT(m.counter("flash.journal_appends")->value(), 0u);
  EXPECT_GT(m.counter("flash.checkpoint_bytes_written")->value(), 0u);
  EXPECT_EQ(m.counter("flash.journal_appends")->value(),
            ssd.flash().stats().meta_appends);
  EXPECT_EQ(m.counter("flash.checkpoint_bytes_written")->value(),
            ssd.flash().stats().meta_bytes_written);
  // Dense device: every backing array is one eager segment.
  EXPECT_GT(m.gauge("flash.resident_segments")->value(), 0.0);

  // ResetStats clears the mirrored counters along with the flash stats.
  ssd.ResetStats();
  EXPECT_EQ(m.counter("flash.journal_appends")->value(), 0u);
  EXPECT_EQ(m.counter("flash.checkpoint_bytes_written")->value(), 0u);
}

TEST(ObservabilityTest, SparseDeviceReportsResidentSegmentsNotCapacity) {
  SsdConfig ssd_config;
  ssd_config.logical_bytes = 1ULL << 30;  // 1 GB virtual.
  ssd_config.ftl_kind = FtlKind::kDftl;
  ssd_config.sparse_segment_pages = 1 << 12;  // 4096-page arena segments.
  Ssd ssd(ssd_config);

  const double before = ssd.metrics().gauge("flash.resident_segments")->value();
  IoRequest req;
  req.size_bytes = 4096;
  req.kind = IoKind::kWrite;
  req.arrival_us = 0.0;
  for (int i = 0; i < 256; ++i) {
    req.offset_bytes = static_cast<uint64_t>(i) * 4096;
    ssd.Submit(req);
  }
  // Force a sync without requiring checkpointing: ResetStats re-seeds the
  // gauge from the device.
  ssd.ResetStats();
  const double after = ssd.metrics().gauge("flash.resident_segments")->value();
  EXPECT_GT(after, 0.0);
  EXPECT_GE(after, before);
  // A 256-page footprint on a 1 GB device must stay far below the dense
  // segment population (6 arrays × total_pages/4096 segments each).
  const double dense_segments = 6.0 *
      static_cast<double>(ssd.geometry().total_pages()) / 4096.0;
  EXPECT_LT(after, dense_segments / 4.0);
}

}  // namespace
}  // namespace tpftl
