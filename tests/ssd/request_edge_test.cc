// Host-request edge cases at the SSD boundary.

#include <gtest/gtest.h>

#include "src/ssd/ssd.h"

namespace tpftl {
namespace {

SsdConfig SmallSsd() {
  SsdConfig c;
  c.logical_bytes = 16ULL << 20;  // 4096 pages.
  c.ftl_kind = FtlKind::kOptimal;
  return c;
}

TEST(RequestEdgeTest, ZeroSizeRequestTouchesOnePage) {
  Ssd ssd(SmallSsd());
  IoRequest req;
  req.offset_bytes = 4096 * 7;
  req.size_bytes = 0;
  req.kind = IoKind::kWrite;
  ssd.Submit(req);
  EXPECT_EQ(ssd.ftl().stats().host_page_writes, 1u);
  EXPECT_NE(ssd.ftl().Probe(7), kInvalidPpn);
}

TEST(RequestEdgeTest, RequestBeyondDeviceWrapsDeterministically) {
  Ssd ssd(SmallSsd());
  IoRequest req;
  req.offset_bytes = (16ULL << 20) + 4096;  // One page past the end.
  req.size_bytes = 4096;
  req.kind = IoKind::kWrite;
  ssd.Submit(req);
  // Wraps modulo the logical space: lands on LPN 1.
  EXPECT_NE(ssd.ftl().Probe(1), kInvalidPpn);
}

TEST(RequestEdgeTest, RequestLargerThanDeviceIsClamped) {
  Ssd ssd(SmallSsd());
  IoRequest req;
  req.offset_bytes = 0;
  req.size_bytes = 64ULL << 20;  // 4× the device.
  req.kind = IoKind::kWrite;
  ssd.Submit(req);
  // Clamped to one pass over the logical space.
  EXPECT_EQ(ssd.ftl().stats().host_page_writes, ssd.logical_pages());
}

TEST(RequestEdgeTest, RequestStraddlingTheEndWraps) {
  Ssd ssd(SmallSsd());
  IoRequest req;
  req.offset_bytes = (16ULL << 20) - 4096;  // Last page.
  req.size_bytes = 2 * 4096;                // Spills past the end.
  req.kind = IoKind::kWrite;
  ssd.Submit(req);
  EXPECT_NE(ssd.ftl().Probe(ssd.logical_pages() - 1), kInvalidPpn);
  EXPECT_NE(ssd.ftl().Probe(0), kInvalidPpn);  // Wrapped page.
}

TEST(RequestEdgeTest, BackToBackArrivalTimesQueueCorrectly) {
  Ssd ssd(SmallSsd());
  IoRequest req;
  req.size_bytes = 4096;
  req.kind = IoKind::kWrite;
  // Three simultaneous arrivals: responses accumulate service time.
  MicroSec last = 0.0;
  for (int i = 0; i < 3; ++i) {
    req.offset_bytes = static_cast<uint64_t>(i) * 4096;
    const MicroSec r = ssd.Submit(req);
    EXPECT_GT(r, last);
    last = r;
  }
  EXPECT_DOUBLE_EQ(last, 3 * ssd.geometry().page_write_us);
}

TEST(RequestEdgeTest, ReadOfNeverWrittenRangeIsInstant) {
  Ssd ssd(SmallSsd());
  IoRequest req;
  req.offset_bytes = 1 << 20;
  req.size_bytes = 32 * 4096;
  req.kind = IoKind::kRead;
  EXPECT_DOUBLE_EQ(ssd.Submit(req), 0.0);
  EXPECT_EQ(ssd.flash().stats().page_reads, 0u);
}

}  // namespace
}  // namespace tpftl
