#include "src/ssd/runner.h"

#include <gtest/gtest.h>

#include "src/trace/vector_trace.h"
#include "src/workload/generator.h"

namespace tpftl {
namespace {

WorkloadConfig TinyWorkload() {
  WorkloadConfig c;
  c.name = "tiny";
  c.address_space_bytes = 16ULL << 20;
  c.num_requests = 3000;
  c.seed = 5;
  c.write_ratio = 0.7;
  c.zipf_theta = 1.0;
  c.chunk_pages = 16;
  return c;
}

TEST(RunnerTest, ReportFieldsArePopulated) {
  ExperimentConfig config;
  config.workload = TinyWorkload();
  config.ftl_kind = FtlKind::kTpftl;
  const RunReport report = RunExperiment(config);
  EXPECT_EQ(report.workload_name, "tiny");
  EXPECT_EQ(report.ftl_name, "TPFTL");
  EXPECT_EQ(report.requests, 2700u);  // 10 % warm-up excluded.
  EXPECT_GT(report.hit_ratio, 0.0);
  EXPECT_LE(report.hit_ratio, 1.0);
  EXPECT_GE(report.prd, 0.0);
  EXPECT_LE(report.prd, 1.0);
  EXPECT_GE(report.write_amplification, 1.0);
  EXPECT_GT(report.mean_response_us, 0.0);
  EXPECT_GT(report.cache_bytes_budget, 0u);
}

TEST(RunnerTest, WarmupRequestsAreExcludedFromStats) {
  ExperimentConfig config;
  config.workload = TinyWorkload();
  config.warmup_fraction = 0.5;
  const RunReport report = RunExperiment(config, nullptr);
  EXPECT_EQ(report.requests, 1500u);
  // Page accesses ≈ requests (1-page mean): far fewer than the full trace.
  EXPECT_LT(report.stats.user_page_accesses(), 3000u);
}

TEST(RunnerTest, ZeroWarmupMeasuresEverything) {
  ExperimentConfig config;
  config.workload = TinyWorkload();
  config.warmup_fraction = 0.0;
  const RunReport report = RunExperiment(config);
  EXPECT_EQ(report.requests, 3000u);
}

TEST(RunnerTest, ObserverSeesEveryMeasuredRequest) {
  ExperimentConfig config;
  config.workload = TinyWorkload();
  uint64_t calls = 0;
  uint64_t last_index = 0;
  RunExperiment(config, [&](const Ssd&, uint64_t index) {
    ++calls;
    last_index = index;
  });
  EXPECT_EQ(calls, 2700u);
  EXPECT_EQ(last_index, 2700u);
}

TEST(RunnerTest, WarmupSizesFromTraceLengthNotConfiguredCount) {
  // File-backed traces routinely disagree with the configured request count.
  // Regression: warm-up used to be sized from config.workload.num_requests,
  // so a trace shorter than warmup_fraction * configured count was swallowed
  // whole as warm-up and nothing was measured.
  ExperimentConfig config;
  config.workload = TinyWorkload();
  config.workload.num_requests = 300;
  VectorTrace trace = MaterializeWorkload(config.workload);
  ASSERT_EQ(trace.requests().size(), 300u);
  ASSERT_EQ(trace.SizeHint(), std::optional<uint64_t>(300));

  // Claim ten times more requests than the trace holds; 50 % warm-up of the
  // configured count (1500) would exceed the whole trace.
  config.workload.num_requests = 3000;
  config.warmup_fraction = 0.5;
  const RunReport report = RunTrace(config, trace, nullptr);
  EXPECT_EQ(report.requests, 150u);  // Half of the real 300, not zero.
}

TEST(RunnerTest, DeterministicAcrossRuns) {
  ExperimentConfig config;
  config.workload = TinyWorkload();
  const RunReport a = RunExperiment(config);
  const RunReport b = RunExperiment(config);
  EXPECT_EQ(a.trans_reads, b.trans_reads);
  EXPECT_EQ(a.trans_writes, b.trans_writes);
  EXPECT_EQ(a.block_erases, b.block_erases);
  EXPECT_DOUBLE_EQ(a.mean_response_us, b.mean_response_us);
  EXPECT_DOUBLE_EQ(a.hit_ratio, b.hit_ratio);
}

TEST(RunnerTest, OptimalDominatesDftl) {
  // The optimal FTL must beat DFTL on every §5 metric (Table 2's premise).
  ExperimentConfig config;
  config.workload = TinyWorkload();
  config.ftl_kind = FtlKind::kOptimal;
  const RunReport optimal = RunExperiment(config);
  config.ftl_kind = FtlKind::kDftl;
  const RunReport dftl = RunExperiment(config);
  EXPECT_LE(optimal.mean_response_us, dftl.mean_response_us);
  EXPECT_LE(optimal.write_amplification, dftl.write_amplification);
  EXPECT_LE(optimal.block_erases, dftl.block_erases);
  EXPECT_EQ(optimal.trans_reads, 0u);
  EXPECT_GT(dftl.trans_reads, 0u);
}

TEST(RunSweepTest, MatchesSerialExecutionBitExactly) {
  // Four configs spanning FTLs and cache sizes; the parallel sweep must
  // produce reports identical to serial RunExperiment calls (same seeds,
  // no shared state), in config order.
  std::vector<ExperimentConfig> configs;
  for (const FtlKind kind : {FtlKind::kDftl, FtlKind::kTpftl}) {
    for (const uint64_t cache_bytes : {0ULL, 32ULL * 1024}) {
      ExperimentConfig config;
      config.workload = TinyWorkload();
      config.ftl_kind = kind;
      config.cache_bytes = cache_bytes;
      configs.push_back(config);
    }
  }

  const std::vector<RunReport> parallel = RunSweep(configs, /*threads=*/4);
  ASSERT_EQ(parallel.size(), configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    const RunReport serial = RunExperiment(configs[i]);
    EXPECT_EQ(parallel[i].workload_name, serial.workload_name) << "config " << i;
    EXPECT_EQ(parallel[i].ftl_name, serial.ftl_name) << "config " << i;
    EXPECT_EQ(parallel[i].requests, serial.requests) << "config " << i;
    EXPECT_EQ(parallel[i].trans_reads, serial.trans_reads) << "config " << i;
    EXPECT_EQ(parallel[i].trans_writes, serial.trans_writes) << "config " << i;
    EXPECT_EQ(parallel[i].block_erases, serial.block_erases) << "config " << i;
    EXPECT_EQ(parallel[i].cache_bytes_used, serial.cache_bytes_used) << "config " << i;
    EXPECT_EQ(parallel[i].cache_entries, serial.cache_entries) << "config " << i;
    EXPECT_EQ(parallel[i].hit_ratio, serial.hit_ratio) << "config " << i;
    EXPECT_EQ(parallel[i].prd, serial.prd) << "config " << i;
    EXPECT_EQ(parallel[i].mean_response_us, serial.mean_response_us) << "config " << i;
    EXPECT_EQ(parallel[i].p99_response_us, serial.p99_response_us) << "config " << i;
    EXPECT_EQ(parallel[i].write_amplification, serial.write_amplification) << "config " << i;
  }
}

TEST(RunSweepTest, ObserverSeesEveryIndexExactlyOnce) {
  std::vector<ExperimentConfig> configs(3);
  for (auto& config : configs) {
    config.workload = TinyWorkload();
    config.workload.num_requests = 500;
  }
  std::vector<int> seen(configs.size(), 0);
  RunSweep(configs, 2, [&seen](size_t index, const RunReport& report) {
    ASSERT_LT(index, seen.size());
    EXPECT_EQ(report.workload_name, "tiny");
    ++seen[index];
  });
  for (const int count : seen) {
    EXPECT_EQ(count, 1);
  }
}

TEST(RunSweepTest, EmptyConfigListYieldsEmptyReports) {
  EXPECT_TRUE(RunSweep({}, 4).empty());
}

TEST(RunnerTest, RunTraceAcceptsExplicitTrace) {
  std::vector<IoRequest> requests;
  for (int i = 0; i < 100; ++i) {
    IoRequest r;
    r.arrival_us = i * 1000.0;
    r.offset_bytes = (static_cast<uint64_t>(i) * 7919) % 4096 * 4096;
    r.size_bytes = 4096;
    r.kind = IoKind::kWrite;
    requests.push_back(r);
  }
  VectorTrace trace(std::move(requests));
  ExperimentConfig config;
  config.workload = TinyWorkload();
  config.workload.num_requests = 100;
  const RunReport report = RunTrace(config, trace);
  EXPECT_EQ(report.requests, 90u);
  EXPECT_GT(report.stats.host_page_writes, 0u);
}

TEST(RunnerTest, CacheBytesOverrideIsHonored) {
  ExperimentConfig config;
  config.workload = TinyWorkload();
  config.cache_bytes = 64 * 1024;
  config.ftl_kind = FtlKind::kDftl;
  const RunReport big = RunExperiment(config);
  config.cache_bytes = 0;  // Paper default: 272 B for 16 MB.
  const RunReport small = RunExperiment(config);
  EXPECT_EQ(big.cache_bytes_budget, 64u * 1024);
  EXPECT_GT(big.hit_ratio, small.hit_ratio);
}

}  // namespace
}  // namespace tpftl
