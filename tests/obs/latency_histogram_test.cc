#include "src/obs/latency_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/util/rng.h"

namespace tpftl::obs {
namespace {

// Exact quantile of a sorted sample set using the same rank convention as
// LatencyHistogram (smallest value with at least ceil(q * n) samples <= it).
double ExactQuantile(std::vector<double> sorted, double q) {
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<size_t>(std::ceil(q * n));
  rank = std::clamp<size_t>(rank, 1, sorted.size());
  return sorted[rank - 1];
}

// The headline regression: the old LogHistogram reported q=0.5 of all-25 µs
// samples as 31 (the [16, 31] bucket's upper bound). The replacement must
// report ~25.
TEST(LatencyHistogramTest, ConstantSamplesReportTheirValue) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) {
    h.Add(25.0);
  }
  EXPECT_NEAR(h.Quantile(0.5), 25.0, 25.0 * 0.02);
  EXPECT_NEAR(h.Quantile(0.99), 25.0, 25.0 * 0.02);
  EXPECT_DOUBLE_EQ(h.min(), 25.0);
  EXPECT_DOUBLE_EQ(h.max(), 25.0);
}

TEST(LatencyHistogramTest, LegacyLog2UpperBound) {
  EXPECT_EQ(Log2UpperBound(0), 0u);
  EXPECT_EQ(Log2UpperBound(1), 1u);
  EXPECT_EQ(Log2UpperBound(25), 31u);
  EXPECT_EQ(Log2UpperBound(1000), 1023u);
  EXPECT_EQ(Log2UpperBound(1024), 2047u);
}

// Acceptance criterion: p50/p90/p99/p99.9 within 2% of exact sorted-sample
// quantiles on randomized latency distributions spanning the 25 µs .. 100 ms
// range an SSD simulation produces.
TEST(LatencyHistogramTest, RandomizedQuantileErrorWithinTwoPercent) {
  Rng rng(0xC0FFEE);
  for (int dist = 0; dist < 4; ++dist) {
    LatencyHistogram h;
    std::vector<double> samples;
    samples.reserve(20000);
    for (int i = 0; i < 20000; ++i) {
      double v = 0.0;
      switch (dist) {
        case 0:  // Uniform 25 µs .. 1 ms.
          v = 25.0 + rng.NextDouble() * 975.0;
          break;
        case 1:  // Log-uniform 10 µs .. 100 ms (heavy dynamic range).
          v = 10.0 * std::pow(10.0, rng.NextDouble() * 4.0);
          break;
        case 2:  // Bimodal: fast reads + rare slow GC-bound tails.
          v = rng.NextDouble() < 0.95 ? 25.0 + rng.NextDouble() * 10.0
                                      : 2000.0 + rng.NextDouble() * 6000.0;
          break;
        default:  // Exponential-ish, mean ~200 µs.
          v = -200.0 * std::log(1.0 - rng.NextDouble() * 0.9999);
          break;
      }
      samples.push_back(v);
      h.Add(v);
    }
    std::sort(samples.begin(), samples.end());
    for (const double q : {0.50, 0.90, 0.99, 0.999}) {
      const double exact = ExactQuantile(samples, q);
      const double approx = h.Quantile(q);
      EXPECT_NEAR(approx, exact, exact * 0.02)
          << "dist=" << dist << " q=" << q;
    }
    EXPECT_DOUBLE_EQ(h.min(), samples.front());
    EXPECT_DOUBLE_EQ(h.max(), samples.back());
  }
}

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(LatencyHistogramTest, MeanAndSumAreExact) {
  LatencyHistogram h;
  h.Add(100.0);
  h.Add(300.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 200.0);
  EXPECT_DOUBLE_EQ(h.sum(), 400.0);
}

TEST(LatencyHistogramTest, QuantileClampedToObservedRange) {
  LatencyHistogram h;
  h.Add(1000.0);
  // A single sample: every quantile is that sample, not a bucket midpoint
  // above or below it.
  EXPECT_DOUBLE_EQ(h.Quantile(0.001), 1000.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1000.0);
}

TEST(LatencyHistogramTest, MergeMatchesCombinedRecording) {
  Rng rng(42);
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram combined;
  for (int i = 0; i < 5000; ++i) {
    const double v = 10.0 + rng.NextDouble() * 10000.0;
    if (i % 2 == 0) {
      a.Add(v);
    } else {
      b.Add(v);
    }
    combined.Add(v);
  }
  a.MergeFrom(b);
  EXPECT_EQ(a.total(), combined.total());
  // Sums differ only by floating-point association order.
  EXPECT_NEAR(a.sum(), combined.sum(), combined.sum() * 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), combined.Quantile(q));
  }
}

TEST(LatencyHistogramTest, ResetClears) {
  LatencyHistogram h;
  h.Add(123.0);
  h.Reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(LatencyHistogramTest, SubMicrosecondResolution) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) {
    h.Add(0.5);
  }
  EXPECT_NEAR(h.Quantile(0.5), 0.5, 1.0 / LatencyHistogram::kScale);
}

}  // namespace
}  // namespace tpftl::obs
