#include "src/obs/phase.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/obs/trace_event.h"

namespace tpftl::obs {
namespace {

TEST(PhaseTraceTest, NoContextMeansNoCharges) {
  // No ScopedRequestContext installed: charging is a no-op and must not
  // crash (this is the disabled-path contract every NAND op relies on).
  ChargeFlash(FlashOp::kRead, 25.0);
  CountGcVictimScan();
  EmitInstant("noop");
  EXPECT_FALSE(TracingActive());
}

// Tests of tracing *behavior* only exist when the layer is compiled in;
// with -DTPFTL_OBS=OFF every entry point is a no-op by design.
#if TPFTL_OBS_ENABLED

TEST(PhaseTraceTest, ChargesBookToCurrentPhase) {
  PhaseTimes times;
  ScopedRequestContext ctx(&times, nullptr);
  ChargeFlash(FlashOp::kRead, 25.0);  // Default phase: user.
  {
    ScopedPhase phase(Phase::kTranslation);
    ChargeFlash(FlashOp::kRead, 25.0);
    ChargeFlash(FlashOp::kProgram, 200.0);
  }
  ChargeFlash(FlashOp::kProgram, 200.0);  // Back to user.

  EXPECT_DOUBLE_EQ(times.OpUs(Phase::kUser, FlashOp::kRead), 25.0);
  EXPECT_DOUBLE_EQ(times.OpUs(Phase::kUser, FlashOp::kProgram), 200.0);
  EXPECT_DOUBLE_EQ(times.PhaseUs(Phase::kTranslation), 225.0);
  EXPECT_EQ(times.OpCount(Phase::kTranslation, FlashOp::kRead), 1u);
  EXPECT_EQ(times.OpCount(Phase::kTranslation, FlashOp::kProgram), 1u);
  EXPECT_DOUBLE_EQ(times.ServiceUs(), 450.0);
}

TEST(PhaseTraceTest, NestedScopesRestore) {
  PhaseTimes times;
  ScopedRequestContext ctx(&times, nullptr);
  {
    ScopedPhase outer(Phase::kGc);
    {
      ScopedPhase inner(Phase::kTranslation);
      ChargeFlash(FlashOp::kRead, 1.0);
    }
    ChargeFlash(FlashOp::kRead, 2.0);  // Restored to GC.
  }
  ChargeFlash(FlashOp::kRead, 4.0);  // Restored to user.
  EXPECT_DOUBLE_EQ(times.PhaseUs(Phase::kTranslation), 1.0);
  EXPECT_DOUBLE_EQ(times.PhaseUs(Phase::kGc), 2.0);
  EXPECT_DOUBLE_EQ(times.PhaseUs(Phase::kUser), 4.0);
}

TEST(PhaseTraceTest, PinnedScopeWinsOverInnerScopes) {
  PhaseTimes times;
  ScopedRequestContext ctx(&times, nullptr);
  {
    // A write-buffer flush pins: GC triggered by the flushed write must be
    // billed to flush, keeping phase shares disjoint.
    ScopedPhase flush(Phase::kFlush, /*pin=*/true);
    ChargeFlash(FlashOp::kProgram, 200.0);
    {
      ScopedPhase gc(Phase::kGc);  // No-op: context is pinned.
      ChargeFlash(FlashOp::kErase, 1500.0);
    }
    ChargeFlash(FlashOp::kProgram, 200.0);  // Still flush.
  }
  ChargeFlash(FlashOp::kRead, 25.0);  // Pin released with the scope.
  EXPECT_DOUBLE_EQ(times.PhaseUs(Phase::kFlush), 1900.0);
  EXPECT_DOUBLE_EQ(times.PhaseUs(Phase::kGc), 0.0);
  EXPECT_DOUBLE_EQ(times.PhaseUs(Phase::kUser), 25.0);
}

TEST(PhaseTraceTest, BackgroundExcludedFromService) {
  PhaseTimes times;
  ScopedRequestContext ctx(&times, nullptr);
  {
    ScopedPhase bg(Phase::kBackground, /*pin=*/true);
    ChargeFlash(FlashOp::kErase, 1500.0);
  }
  ChargeFlash(FlashOp::kRead, 25.0);
  EXPECT_DOUBLE_EQ(times.ServiceUs(), 25.0);
  EXPECT_DOUBLE_EQ(times.TotalUs(), 1525.0);
}

TEST(PhaseTraceTest, VictimScanCounter) {
  PhaseTimes times;
  ScopedRequestContext ctx(&times, nullptr);
  CountGcVictimScan();
  CountGcVictimScan();
  EXPECT_EQ(times.gc_victim_scans, 2u);
}

TEST(PhaseTraceTest, ContextEndsWithScope) {
  PhaseTimes times;
  {
    ScopedRequestContext ctx(&times, nullptr);
    EXPECT_TRUE(TracingActive());
  }
  EXPECT_FALSE(TracingActive());
  ChargeFlash(FlashOp::kRead, 25.0);
  EXPECT_EQ(times.PhaseOps(Phase::kUser), 0u);
}

TEST(PhaseTraceTest, SpansMergeAdjacentSamePhaseCharges) {
  PhaseTimes times;
  RequestSpans spans;
  ScopedRequestContext ctx(&times, &spans);
  {
    ScopedPhase t(Phase::kTranslation);
    ChargeFlash(FlashOp::kRead, 25.0);
  }
  ChargeFlash(FlashOp::kProgram, 200.0);
  ChargeFlash(FlashOp::kProgram, 200.0);  // Extends the open user span.
  EmitInstant("marker");
  {
    ScopedPhase g(Phase::kGc);
    ChargeFlash(FlashOp::kErase, 1500.0);
  }

  ASSERT_EQ(spans.spans().size(), 3u);
  EXPECT_EQ(spans.spans()[0].phase, Phase::kTranslation);
  EXPECT_DOUBLE_EQ(spans.spans()[0].start_us, 0.0);
  EXPECT_DOUBLE_EQ(spans.spans()[0].dur_us, 25.0);
  EXPECT_EQ(spans.spans()[1].phase, Phase::kUser);
  EXPECT_DOUBLE_EQ(spans.spans()[1].start_us, 25.0);
  EXPECT_DOUBLE_EQ(spans.spans()[1].dur_us, 400.0);
  EXPECT_EQ(spans.spans()[1].ops[static_cast<size_t>(FlashOp::kProgram)], 2u);
  EXPECT_EQ(spans.spans()[2].phase, Phase::kGc);
  EXPECT_DOUBLE_EQ(spans.spans()[2].start_us, 425.0);
  ASSERT_EQ(spans.instants().size(), 1u);
  EXPECT_STREQ(spans.instants()[0].name, "marker");
  EXPECT_DOUBLE_EQ(spans.instants()[0].at_us, 425.0);
  EXPECT_DOUBLE_EQ(spans.cursor_us(), 1925.0);
}

#endif  // TPFTL_OBS_ENABLED

TEST(PhaseTraceTest, TraceLogCapacityAndDrops) {
  RequestTraceLog log(2);
  EXPECT_TRUE(log.WantsMore());
  log.Add({});
  log.Add({});
  EXPECT_FALSE(log.WantsMore());
  log.Add({});
  EXPECT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.dropped(), 1u);
  log.Clear();
  EXPECT_TRUE(log.WantsMore());
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(PhaseTraceTest, ChromeTraceExportIsBalancedJson) {
  RequestTraceLog log(4);
  RequestTraceRecord rec;
  rec.index = 0;
  rec.lpn = 42;
  rec.length = 2;
  rec.is_write = true;
  rec.arrival_us = 100.0;
  rec.start_us = 150.0;
  rec.finish_us = 600.0;
  rec.queue_us = 50.0;
  rec.spans.push_back({Phase::kTranslation, 0.0, 25.0, {1, 0, 0}});
  rec.spans.push_back({Phase::kUser, 25.0, 400.0, {0, 2, 0}});
  rec.instants.push_back({"cache_miss", 0.0});
  log.Add(rec);

  std::ostringstream os;
  WriteChromeTrace(os, log, "ssd \"quoted\" label");
  const std::string json = os.str();

  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      ++depth;
    } else if (!in_string && (c == '}' || c == ']')) {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"queue\""), std::string::npos);
  EXPECT_NE(json.find("\"translation\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_miss\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
}

}  // namespace
}  // namespace tpftl::obs
