#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace tpftl::obs {
namespace {

TEST(MetricsRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* c = reg.counter("requests");
  c->Increment(3);
  EXPECT_EQ(reg.counter("requests"), c);  // Same object on re-lookup.
  EXPECT_EQ(reg.counter("requests")->value(), 3u);
  EXPECT_EQ(reg.FindCounter("requests"), c);
  EXPECT_EQ(reg.FindCounter("absent"), nullptr);
}

TEST(MetricsRegistryTest, GaugeSetAddAndPeakMerge) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.gauge("depth")->Set(4.0);
  b.gauge("depth")->Set(9.0);
  b.gauge("depth")->Add(1.0);
  a.MergeFrom(b);
  EXPECT_DOUBLE_EQ(a.gauge("depth")->value(), 10.0);  // Peak wins.
}

TEST(MetricsRegistryTest, MergeCreatesMissingMetrics) {
  MetricsRegistry a;
  MetricsRegistry b;
  b.counter("only_in_b")->Increment(7);
  b.histogram("lat")->Add(50.0);
  a.MergeFrom(b);
  ASSERT_NE(a.FindCounter("only_in_b"), nullptr);
  EXPECT_EQ(a.FindCounter("only_in_b")->value(), 7u);
  ASSERT_NE(a.FindHistogram("lat"), nullptr);
  EXPECT_EQ(a.FindHistogram("lat")->total(), 1u);
}

TEST(MetricsRegistryTest, ResetValuesKeepsRegistrations) {
  MetricsRegistry reg;
  Counter* c = reg.counter("ops");
  c->Increment(5);
  reg.histogram("lat")->Add(10.0);
  reg.ResetValues();
  EXPECT_EQ(c->value(), 0u);  // Cached pointer still live, value zeroed.
  EXPECT_EQ(reg.FindHistogram("lat")->total(), 0u);
}

TEST(MetricsRegistryTest, IterationIsNameOrdered) {
  MetricsRegistry reg;
  reg.counter("zeta");
  reg.counter("alpha");
  reg.counter("mid");
  std::vector<std::string> names;
  for (const auto& [name, counter] : reg.counters()) {
    names.push_back(name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

// The RunSweep model: each worker thread owns a shard registry (no sharing,
// no locking), and the shards merge into one deterministic aggregate. The
// merged result must equal a serial run over all samples regardless of
// thread count or completion order.
TEST(MetricsRegistryTest, MergeAcrossSweepThreadsMatchesSerial) {
  constexpr int kShards = 8;
  constexpr int kSamplesPerShard = 10000;

  std::vector<std::unique_ptr<MetricsRegistry>> shards;
  for (int s = 0; s < kShards; ++s) {
    shards.push_back(std::make_unique<MetricsRegistry>());
  }

  ThreadPool pool(4);
  for (int s = 0; s < kShards; ++s) {
    pool.Submit([s, &shards] {
      MetricsRegistry& reg = *shards[s];
      Rng rng(1000 + static_cast<uint64_t>(s));
      for (int i = 0; i < kSamplesPerShard; ++i) {
        reg.counter("requests")->Increment();
        reg.histogram("response_us")->Add(20.0 + rng.NextDouble() * 5000.0);
      }
      reg.gauge("peak_depth")->Set(static_cast<double>(s));
    });
  }
  pool.Wait();

  // Serial reference over the same per-shard sample streams.
  MetricsRegistry serial;
  for (int s = 0; s < kShards; ++s) {
    Rng rng(1000 + static_cast<uint64_t>(s));
    for (int i = 0; i < kSamplesPerShard; ++i) {
      serial.counter("requests")->Increment();
      serial.histogram("response_us")->Add(20.0 + rng.NextDouble() * 5000.0);
    }
  }

  MetricsRegistry merged;
  for (const auto& shard : shards) {
    merged.MergeFrom(*shard);
  }

  EXPECT_EQ(merged.counter("requests")->value(),
            static_cast<uint64_t>(kShards) * kSamplesPerShard);
  EXPECT_EQ(merged.counter("requests")->value(),
            serial.counter("requests")->value());
  const LatencyHistogram* m = merged.FindHistogram("response_us");
  const LatencyHistogram* ref = serial.FindHistogram("response_us");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->total(), ref->total());
  // Shard-then-merge vs interleaved: same samples, different FP association.
  EXPECT_NEAR(m->sum(), ref->sum(), ref->sum() * 1e-12);
  EXPECT_DOUBLE_EQ(m->min(), ref->min());
  EXPECT_DOUBLE_EQ(m->max(), ref->max());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(m->Quantile(q), ref->Quantile(q)) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(merged.gauge("peak_depth")->value(), kShards - 1.0);
}

}  // namespace
}  // namespace tpftl::obs
