#include "src/ftl/block_manager.h"

#include <gtest/gtest.h>

#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::SmallGeometry;

class BlockManagerTest : public ::testing::Test {
 protected:
  BlockManagerTest() : flash_(SmallGeometry(/*total_blocks=*/8)), bm_(&flash_, 2) {}

  NandFlash flash_;
  BlockManager bm_;
};

TEST_F(BlockManagerTest, StartsWithAllBlocksFree) {
  EXPECT_EQ(bm_.free_block_count(), 8u);
  EXPECT_FALSE(bm_.NeedsGc());
  EXPECT_EQ(bm_.PickVictim(), kInvalidBlock);
}

TEST_F(BlockManagerTest, ProgramAllocatesActiveBlockPerPool) {
  Ppn data_ppn = kInvalidPpn;
  Ppn trans_ppn = kInvalidPpn;
  bm_.Program(BlockPool::kData, 1, &data_ppn);
  bm_.Program(BlockPool::kTranslation, 2, &trans_ppn);
  EXPECT_NE(flash_.geometry().BlockOf(data_ppn), flash_.geometry().BlockOf(trans_ppn));
  EXPECT_EQ(bm_.PoolOf(flash_.geometry().BlockOf(data_ppn)), BlockPool::kData);
  EXPECT_EQ(bm_.PoolOf(flash_.geometry().BlockOf(trans_ppn)), BlockPool::kTranslation);
  EXPECT_EQ(bm_.free_block_count(), 6u);
  EXPECT_EQ(bm_.pool_block_count(BlockPool::kData), 1u);
  EXPECT_EQ(bm_.pool_block_count(BlockPool::kTranslation), 1u);
}

TEST_F(BlockManagerTest, SequentialProgramsFillOneBlockThenNext) {
  const uint64_t per_block = flash_.geometry().pages_per_block;
  Ppn first = kInvalidPpn;
  bm_.Program(BlockPool::kData, 0, &first);
  for (uint64_t i = 1; i < per_block; ++i) {
    Ppn p = kInvalidPpn;
    bm_.Program(BlockPool::kData, i, &p);
    EXPECT_EQ(p, first + i);
  }
  Ppn next = kInvalidPpn;
  bm_.Program(BlockPool::kData, 99, &next);
  EXPECT_NE(flash_.geometry().BlockOf(next), flash_.geometry().BlockOf(first));
}

TEST_F(BlockManagerTest, NeedsGcWhenFreeDropsToThreshold) {
  // Fill blocks until only the threshold (2) remains free.
  const uint64_t per_block = flash_.geometry().pages_per_block;
  for (uint64_t b = 0; b < 6; ++b) {
    for (uint64_t i = 0; i < per_block; ++i) {
      Ppn p = kInvalidPpn;
      bm_.Program(BlockPool::kData, i, &p);
    }
  }
  EXPECT_EQ(bm_.free_block_count(), 2u);
  EXPECT_TRUE(bm_.NeedsGc());
}

TEST_F(BlockManagerTest, GreedyVictimHasFewestValidPages) {
  const uint64_t per_block = flash_.geometry().pages_per_block;
  // Fill two blocks; invalidate more pages in the second.
  std::vector<Ppn> first_block;
  std::vector<Ppn> second_block;
  for (uint64_t i = 0; i < per_block; ++i) {
    Ppn p = kInvalidPpn;
    bm_.Program(BlockPool::kData, i, &p);
    first_block.push_back(p);
  }
  for (uint64_t i = 0; i < per_block; ++i) {
    Ppn p = kInvalidPpn;
    bm_.Program(BlockPool::kData, i, &p);
    second_block.push_back(p);
  }
  bm_.Invalidate(first_block[0]);
  for (int i = 0; i < 5; ++i) {
    bm_.Invalidate(second_block[i]);
  }
  EXPECT_EQ(bm_.PickVictim(), flash_.geometry().BlockOf(second_block[0]));
}

TEST_F(BlockManagerTest, ActiveBlockIsNeverAVictim) {
  // Program a single page: the active block is partially written and must
  // not be offered as a GC victim even though it has garbage.
  Ppn p = kInvalidPpn;
  bm_.Program(BlockPool::kData, 0, &p);
  bm_.Invalidate(p);
  EXPECT_EQ(bm_.PickVictim(), kInvalidBlock);
}

TEST_F(BlockManagerTest, EraseAndFreeReturnsBlockToFreeList) {
  const uint64_t per_block = flash_.geometry().pages_per_block;
  std::vector<Ppn> ppns;
  for (uint64_t i = 0; i < per_block; ++i) {
    Ppn p = kInvalidPpn;
    bm_.Program(BlockPool::kData, i, &p);
    ppns.push_back(p);
  }
  for (const Ppn p : ppns) {
    bm_.Invalidate(p);
  }
  const BlockId victim = bm_.PickVictim();
  ASSERT_NE(victim, kInvalidBlock);
  const uint64_t free_before = bm_.free_block_count();
  bm_.EraseAndFree(victim);
  EXPECT_EQ(bm_.free_block_count(), free_before + 1);
  EXPECT_EQ(bm_.PoolOf(victim), BlockPool::kNone);
  EXPECT_EQ(bm_.PickVictim(), kInvalidBlock);
  EXPECT_EQ(bm_.pool_block_count(BlockPool::kData), 0u);
}

TEST_F(BlockManagerTest, PoolRestrictedVictim) {
  const uint64_t per_block = flash_.geometry().pages_per_block;
  std::vector<Ppn> data_ppns;
  std::vector<Ppn> trans_ppns;
  for (uint64_t i = 0; i < per_block; ++i) {
    Ppn p = kInvalidPpn;
    bm_.Program(BlockPool::kData, i, &p);
    data_ppns.push_back(p);
    bm_.Program(BlockPool::kTranslation, i, &p);
    trans_ppns.push_back(p);
  }
  bm_.Invalidate(data_ppns[0]);
  bm_.Invalidate(trans_ppns[0]);
  bm_.Invalidate(trans_ppns[1]);
  EXPECT_EQ(bm_.PoolOf(bm_.PickVictim(BlockPool::kData)), BlockPool::kData);
  EXPECT_EQ(bm_.PoolOf(bm_.PickVictim(BlockPool::kTranslation)), BlockPool::kTranslation);
  // Global greedy picks the translation block (2 invalid vs 1).
  EXPECT_EQ(bm_.PickVictim(), flash_.geometry().BlockOf(trans_ppns[0]));
}

TEST_F(BlockManagerTest, VictimTracksInvalidationsAfterRetirement) {
  const uint64_t per_block = flash_.geometry().pages_per_block;
  std::vector<Ppn> a_pages;
  std::vector<Ppn> b_pages;
  for (uint64_t i = 0; i < per_block; ++i) {
    Ppn p = kInvalidPpn;
    bm_.Program(BlockPool::kData, i, &p);
    a_pages.push_back(p);
  }
  for (uint64_t i = 0; i < per_block; ++i) {
    Ppn p = kInvalidPpn;
    bm_.Program(BlockPool::kData, i, &p);
    b_pages.push_back(p);
  }
  bm_.Invalidate(a_pages[0]);
  EXPECT_EQ(bm_.PickVictim(), flash_.geometry().BlockOf(a_pages[0]));
  // Now make block B strictly emptier; the pick must follow.
  bm_.Invalidate(b_pages[0]);
  bm_.Invalidate(b_pages[1]);
  EXPECT_EQ(bm_.PickVictim(), flash_.geometry().BlockOf(b_pages[0]));
}

TEST_F(BlockManagerTest, FreePagesUpperBoundAccounting) {
  const uint64_t total_pages = 8 * flash_.geometry().pages_per_block;
  EXPECT_EQ(bm_.FreePagesUpperBound(), total_pages);
  Ppn p = kInvalidPpn;
  bm_.Program(BlockPool::kData, 0, &p);
  EXPECT_EQ(bm_.FreePagesUpperBound(), total_pages - 1);
}

}  // namespace
}  // namespace tpftl
