// BlockManager under injected NAND faults (flash/fault.h): randomized
// program/invalidate/GC churn with probabilistic program and erase failures
// must keep every structural invariant intact — bucket membership and age
// order, erase histogram, pool counters, and per-block page-state counters
// (BlockManager::CheckInvariants). Failed programs must be absorbed by the
// retry loop; failed erases must retire blocks without corrupting the pools.

#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "src/flash/fault.h"
#include "src/ftl/block_manager.h"
#include "src/util/rng.h"
#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::SmallGeometry;

class BlockManagerFaultTest : public ::testing::TestWithParam<GcPolicy> {};

// A miniature FTL loop over the manager: overwrite random tags, collect when
// the free level demands it, and cross-check the structures continuously.
TEST_P(BlockManagerFaultTest, InvariantsSurviveRandomFaultChurn) {
  NandFlash flash(SmallGeometry(96));
  FaultPlan plan;
  plan.seed = 99;
  plan.program_fail_prob = 0.05;
  plan.erase_fail_prob = 0.02;
  plan.bad_blocks = {7, 40};
  flash.InstallFaultPlan(plan);

  BlockManager bm(&flash, /*gc_threshold=*/6, GetParam());
  ASSERT_TRUE(bm.CheckInvariants());
  EXPECT_EQ(bm.bad_block_count(), 2u);

  Rng rng(4321);
  constexpr uint64_t kTags = 600;
  std::unordered_map<uint64_t, Ppn> live;  // tag → current valid copy.

  auto collect_one = [&] {
    const BlockId victim = bm.PickVictim();
    ASSERT_NE(victim, kInvalidBlock);
    const FlashGeometry& g = flash.geometry();
    const BlockPool pool = bm.PoolOf(victim);
    for (uint64_t off = 0; off < g.pages_per_block; ++off) {
      const Ppn ppn = g.PpnOf(victim, off);
      if (flash.StateOf(ppn) != PageState::kValid) {
        continue;
      }
      const uint64_t tag = flash.OobTag(ppn);
      flash.ReadPage(ppn);
      Ppn new_ppn = kInvalidPpn;
      bm.Program(pool, tag, &new_ppn);
      ASSERT_NE(new_ppn, kInvalidPpn);
      bm.Invalidate(ppn);
      live[tag] = new_ppn;
    }
    bm.EraseAndFree(victim);
  };

  for (int step = 0; step < 3000; ++step) {
    const uint64_t tag = rng.Below(kTags);
    const BlockPool pool = rng.Chance(0.15) ? BlockPool::kTranslation : BlockPool::kData;
    Ppn ppn = kInvalidPpn;
    // The retry loop must always land the program despite injected failures.
    bm.Program(pool, tag, &ppn);
    ASSERT_NE(ppn, kInvalidPpn);
    if (const auto it = live.find(tag); it != live.end()) {
      bm.Invalidate(it->second);
    }
    live[tag] = ppn;
    while (bm.NeedsGc()) {
      collect_one();
    }
    if (step % 101 == 0) {
      ASSERT_TRUE(bm.CheckInvariants());
    }
  }
  ASSERT_TRUE(bm.CheckInvariants());

  // Every live tag still resolves to a valid page carrying it.
  for (const auto& [tag, ppn] : live) {
    ASSERT_EQ(flash.StateOf(ppn), PageState::kValid);
    ASSERT_EQ(flash.OobTag(ppn), tag);
  }
  // Failures actually fired (otherwise this test exercises nothing) and
  // failed erases were turned into retired blocks.
  EXPECT_GT(flash.stats().program_failures, 0u);
  EXPECT_GE(bm.bad_block_count(), 2u + flash.stats().erase_failures);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, BlockManagerFaultTest,
                         ::testing::Values(GcPolicy::kGreedy, GcPolicy::kCostBenefit,
                                           GcPolicy::kWearAware),
                         [](const ::testing::TestParamInfo<GcPolicy>& info) {
                           switch (info.param) {
                             case GcPolicy::kGreedy:
                               return "Greedy";
                             case GcPolicy::kCostBenefit:
                               return "CostBenefit";
                             case GcPolicy::kWearAware:
                               return "WearAware";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace tpftl
