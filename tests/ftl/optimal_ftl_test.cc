#include "src/ftl/optimal_ftl.h"

#include <gtest/gtest.h>

#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::MakeWorld;
using testing::World;

TEST(OptimalFtlTest, TranslationIsAlwaysAHitAndFree) {
  World w = MakeWorld(1024, /*cache_bytes=*/64);
  OptimalFtl ftl(w.env);
  ftl.WritePage(10);
  ftl.ReadPage(10);
  ftl.ReadPage(999);
  EXPECT_EQ(ftl.stats().lookups, 3u);
  EXPECT_EQ(ftl.stats().hits, 3u);
  EXPECT_EQ(ftl.stats().misses, 0u);
  EXPECT_DOUBLE_EQ(ftl.stats().hit_ratio(), 1.0);
}

TEST(OptimalFtlTest, NeverTouchesTranslationPages) {
  World w = MakeWorld(1024, 64);
  OptimalFtl ftl(w.env);
  testing::DriveRandomOps(ftl, 1024, 5000, 0.8, 7);
  EXPECT_EQ(ftl.stats().trans_reads_total(), 0u);
  EXPECT_EQ(ftl.stats().trans_writes_total(), 0u);
  EXPECT_EQ(ftl.stats().evictions, 0u);
  EXPECT_DOUBLE_EQ(ftl.stats().dirty_replacement_probability(), 0.0);
  EXPECT_EQ(ftl.stats().gc_trans_blocks, 0u);
}

TEST(OptimalFtlTest, GcUpdatesAreAllHits) {
  World w = MakeWorld(1024, 64);
  OptimalFtl ftl(w.env);
  for (int round = 0; round < 8; ++round) {
    for (Lpn lpn = 0; lpn < 1024; ++lpn) {
      ftl.WritePage(lpn);
    }
  }
  EXPECT_GT(ftl.stats().gc_data_blocks, 0u);
  EXPECT_EQ(ftl.stats().gc_misses, 0u);
}

TEST(OptimalFtlTest, WriteAmplificationIsPureGc) {
  World w = MakeWorld(1024, 64);
  OptimalFtl ftl(w.env);
  testing::DriveRandomOps(ftl, 1024, 8000, 1.0, 13);
  const AtStats& s = ftl.stats();
  const double wa = s.write_amplification();
  EXPECT_GE(wa, 1.0);
  EXPECT_DOUBLE_EQ(
      wa, 1.0 + static_cast<double>(s.gc_data_migrations) /
                    static_cast<double>(s.host_page_writes));
}

TEST(OptimalFtlTest, ProbeMatchesShadowMap) {
  World w = MakeWorld(1024, 64);
  OptimalFtl ftl(w.env);
  auto written = testing::DriveRandomOps(ftl, 1024, 4000, 0.6, 19);
  for (Lpn lpn = 0; lpn < 1024; ++lpn) {
    const bool mapped = ftl.Probe(lpn) != kInvalidPpn;
    EXPECT_EQ(mapped, written.contains(lpn)) << "lpn " << lpn;
  }
}

}  // namespace
}  // namespace tpftl
