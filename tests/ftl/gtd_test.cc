#include "src/ftl/gtd.h"

#include <gtest/gtest.h>

namespace tpftl {
namespace {

TEST(GtdTest, StartsUnmapped) {
  Gtd gtd(8);
  EXPECT_EQ(gtd.size(), 8u);
  for (Vtpn v = 0; v < 8; ++v) {
    EXPECT_EQ(gtd.Lookup(v), kInvalidPtpn);
  }
}

TEST(GtdTest, UpdateAndLookup) {
  Gtd gtd(8);
  gtd.Update(3, 777);
  EXPECT_EQ(gtd.Lookup(3), 777u);
  EXPECT_EQ(gtd.Lookup(2), kInvalidPtpn);
  gtd.Update(3, 778);  // Relocation overwrites.
  EXPECT_EQ(gtd.Lookup(3), 778u);
}

TEST(GtdTest, SizeBytesIsFourPerEntry) {
  // §5.1's cache arithmetic depends on this: 128 translation pages → 512 B.
  EXPECT_EQ(Gtd(128).size_bytes(), 512u);
  EXPECT_EQ(Gtd(4096).size_bytes(), 16u * 1024);
}

TEST(GtdDeathTest, OutOfRangeAborts) {
  Gtd gtd(4);
  EXPECT_DEATH(gtd.Lookup(4), "");
  EXPECT_DEATH(gtd.Update(9, 1), "");
}

}  // namespace
}  // namespace tpftl
