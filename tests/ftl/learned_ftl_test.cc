#include "src/ftl/learned_ftl.h"

#include <gtest/gtest.h>

#include "src/ftl/plr.h"
#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::DriveRandomOps;
using testing::MakeWorld;
using testing::World;

// --- PLR segment training ---

std::vector<PlrPoint> LinearRun(size_t n, Lpn first_lpn, Ppn first_ppn) {
  std::vector<PlrPoint> run;
  for (size_t i = 0; i < n; ++i) {
    run.push_back({first_lpn + i, first_ppn + i});
  }
  return run;
}

TEST(PlrTest, PerfectRunFitsOneExactSegment) {
  const auto run = LinearRun(16, 100, 5000);
  const auto segs = TrainPlr(run, /*error_bound=*/2, /*min_run_points=*/4);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].first_lpn, 100u);
  EXPECT_EQ(segs[0].last_lpn, 115u);
  for (const PlrPoint& p : run) {
    EXPECT_TRUE(segs[0].Covers(p.lpn));
    EXPECT_EQ(segs[0].Predict(p.lpn), p.ppn);  // Slope 1: no rounding slack needed.
  }
}

TEST(PlrTest, EveryCoveredPointIsWithinTheErrorBound) {
  // Monotone but non-linear: stride alternates 1 and 3 in ppn.
  std::vector<PlrPoint> run;
  Ppn ppn = 200;
  for (Lpn lpn = 0; lpn < 24; ++lpn) {
    run.push_back({lpn, ppn});
    ppn += (lpn % 2 == 0) ? 1 : 3;
  }
  const uint32_t bound = 2;
  const auto segs = TrainPlr(run, bound, /*min_run_points=*/4);
  ASSERT_FALSE(segs.empty());
  for (const PlrPoint& p : run) {
    for (const PlrSegment& seg : segs) {
      if (!seg.Covers(p.lpn)) {
        continue;
      }
      const auto predicted = static_cast<int64_t>(seg.Predict(p.lpn));
      const auto actual = static_cast<int64_t>(p.ppn);
      EXPECT_LE(std::abs(predicted - actual), static_cast<int64_t>(bound))
          << "lpn " << p.lpn;
    }
  }
}

TEST(PlrTest, RunsShorterThanMinPointsTrainNothing) {
  EXPECT_TRUE(TrainPlr(LinearRun(3, 0, 0), 2, /*min_run_points=*/4).empty());
  EXPECT_TRUE(TrainPlr({}, 2, 4).empty());
}

TEST(PlrTest, IndexEvictsLruUnderBudgetAndErasesOverlaps) {
  LearnedIndex index(2 * LearnedIndex::kSegmentBytes);  // Two segments.
  ASSERT_TRUE(index.enabled());
  const auto seg = [](Lpn first, Lpn last, Ppn ppn) {
    PlrSegment s;
    s.first_lpn = first;
    s.last_lpn = last;
    s.first_ppn = ppn;
    s.slope = 1.0;
    return s;
  };
  index.Insert(seg(0, 9, 100));
  index.Insert(seg(20, 29, 200));
  index.Insert(seg(40, 49, 300));  // Over budget: LRU evicts untouched [0, 9].
  EXPECT_EQ(index.segment_count(), 2u);
  EXPECT_EQ(index.Lookup(5), nullptr);
  EXPECT_NE(index.Lookup(25), nullptr);
  EXPECT_NE(index.Lookup(45), nullptr);
  index.Insert(seg(25, 34, 400));  // Overlaps [20, 29]: the old segment goes.
  EXPECT_EQ(index.segment_count(), 2u);
  EXPECT_EQ(index.Lookup(21), nullptr);
  ASSERT_NE(index.Lookup(30), nullptr);
  EXPECT_EQ(index.Lookup(30)->first_ppn, 400u);
}

TEST(PlrTest, TouchedSegmentSurvivesInsertChurn) {
  LearnedIndex index(2 * LearnedIndex::kSegmentBytes);  // Two segments.
  const auto seg = [](Lpn first, Lpn last, Ppn ppn) {
    PlrSegment s;
    s.first_lpn = first;
    s.last_lpn = last;
    s.first_ppn = ppn;
    s.slope = 1.0;
    return s;
  };
  index.Insert(seg(0, 9, 100));
  index.Insert(seg(20, 29, 200));
  // A verified hit touches [0, 9]; the next insert must evict [20, 29], the
  // true LRU, even though [0, 9] was inserted earlier.
  index.Touch(5);
  index.Insert(seg(40, 49, 300));
  EXPECT_NE(index.Lookup(5), nullptr);
  EXPECT_EQ(index.Lookup(25), nullptr);
  EXPECT_NE(index.Lookup(45), nullptr);
  // EraseCovering drops exactly the covering segment.
  index.EraseCovering(45);
  EXPECT_EQ(index.Lookup(45), nullptr);
  EXPECT_NE(index.Lookup(5), nullptr);
  EXPECT_EQ(index.segment_count(), 1u);
}

TEST(PlrTest, ZeroBudgetIndexStaysEmpty) {
  LearnedIndex index(0);
  EXPECT_FALSE(index.enabled());
  PlrSegment s;
  s.first_lpn = 0;
  s.last_lpn = 9;
  s.first_ppn = 0;
  s.slope = 1.0;
  index.Insert(s);
  EXPECT_EQ(index.segment_count(), 0u);
  EXPECT_EQ(index.Lookup(5), nullptr);
}

// --- LearnedFtl ---

// 288 B cache = 32 B GTD (8 translation pages) + 256 B entry budget. With
// model_budget_fraction 0.5 that is 8 segments (128 B) + a 16-entry CMT.
World SmallLearnedWorld() { return MakeWorld(1024, /*cache_bytes=*/288); }

LearnedFtlOptions TestOptions() {
  LearnedFtlOptions o;
  o.model_budget_fraction = 0.5;
  return o;
}

// Fills LPNs [0, n) sequentially, then floods the CMT with reads of distant
// unwritten LPNs so every entry from the fill is evicted and a subsequent
// read must go through the model or the translation path.
void FillAndEvict(LearnedFtl& ftl, Lpn n) {
  for (Lpn lpn = 0; lpn < n; ++lpn) {
    ftl.WritePage(lpn);
  }
  for (Lpn lpn = 500; lpn < 500 + 24; ++lpn) {
    ftl.ReadPage(lpn);
  }
}

TEST(LearnedFtlTest, SequentialFillTrainsSegments) {
  World w = SmallLearnedWorld();
  LearnedFtl ftl(w.env, TestOptions());
  // 32 pages = two full 16-page blocks, each finalized as it fills.
  for (Lpn lpn = 0; lpn < 32; ++lpn) {
    ftl.WritePage(lpn);
  }
  EXPECT_GE(ftl.model_segment_count(), 2u);
  EXPECT_GE(ftl.stats().model_retrains, 2u);
}

TEST(LearnedFtlTest, VerifiedModelHitCostsNoTranslationRead) {
  World w = SmallLearnedWorld();
  LearnedFtl ftl(w.env, TestOptions());
  FillAndEvict(ftl, 32);
  const AtStats before = ftl.stats();
  const uint64_t flash_reads_before = w.flash->stats().page_reads;
  ftl.ReadPage(5);
  const AtStats& after = ftl.stats();
  EXPECT_EQ(after.model_hits, before.model_hits + 1);
  EXPECT_EQ(after.model_misses, before.model_misses);
  // A sequential block trains an exact segment: the first probe verifies, and
  // that probe *is* the data read — one flash read total, zero translation
  // reads. DFTL's same miss costs two (translation page + data).
  EXPECT_EQ(after.trans_reads_at, before.trans_reads_at);
  EXPECT_EQ(after.model_probe_reads, before.model_probe_reads);
  EXPECT_EQ(w.flash->stats().page_reads, flash_reads_before + 1);
}

TEST(LearnedFtlTest, StaleSegmentFallsBackToTranslationPath) {
  World w = SmallLearnedWorld();
  LearnedFtl ftl(w.env, TestOptions());
  for (Lpn lpn = 0; lpn < 32; ++lpn) {
    ftl.WritePage(lpn);
  }
  // Relocate LPN 5. The open accumulator has not finalized, so the segment
  // covering [0, 15] still predicts 5's old (now invalid) page.
  ftl.WritePage(5);
  for (Lpn lpn = 500; lpn < 500 + 24; ++lpn) {
    ftl.ReadPage(lpn);  // Evict every CMT entry from the fill.
  }
  const AtStats before = ftl.stats();
  ftl.ReadPage(5);
  const AtStats& after = ftl.stats();
  // Every probe in the ±error_bound window fails OOB verification, so the
  // lookup pays the probes *and* the translation read — slower, never wrong.
  EXPECT_EQ(after.model_misses, before.model_misses + 1);
  EXPECT_EQ(after.model_hits, before.model_hits);
  EXPECT_GT(after.model_probe_reads, before.model_probe_reads);
  EXPECT_EQ(after.trans_reads_at, before.trans_reads_at + 1);
  const Ppn ppn = ftl.Probe(5);
  ASSERT_NE(ppn, kInvalidPpn);
  EXPECT_EQ(w.flash->OobTag(ppn), 5u);
  EXPECT_EQ(w.flash->StateOf(ppn), PageState::kValid);
}

TEST(LearnedFtlTest, HarvestedSpanServesSequentialScan) {
  World w = SmallLearnedWorld();
  LearnedFtl ftl(w.env, TestOptions());
  // 12 pages: less than one 16-page block, so write-path training never
  // fires; the only way the model can learn this run is the harvest.
  FillAndEvict(ftl, 12);
  const AtStats before = ftl.stats();
  ftl.ReadPage(0);  // Miss: one translation read, which harvests [0, 11].
  EXPECT_EQ(ftl.stats().trans_reads_at, before.trans_reads_at + 1);
  EXPECT_GT(ftl.model_segment_count(), 0u);
  const uint64_t flash_reads_before = w.flash->stats().page_reads;
  for (Lpn lpn = 1; lpn < 12; ++lpn) {
    ftl.ReadPage(lpn);  // The harvested segment serves the rest of the scan.
  }
  const AtStats& after = ftl.stats();
  EXPECT_EQ(after.model_hits, before.model_hits + 11);
  EXPECT_EQ(after.trans_reads_at, before.trans_reads_at + 1);  // Still just one.
  // A fresh sequential run predicts exactly: each read costs only its own
  // data read, with no failed probes and no translation traffic.
  EXPECT_EQ(after.model_probe_reads, before.model_probe_reads);
  EXPECT_EQ(w.flash->stats().page_reads, flash_reads_before + 11);
}

TEST(LearnedFtlTest, FailedVerificationErasesTheStaleSegment) {
  World w = SmallLearnedWorld();
  LearnedFtl ftl(w.env, TestOptions());
  for (Lpn lpn = 0; lpn < 32; ++lpn) {
    ftl.WritePage(lpn);
  }
  ftl.WritePage(5);  // The trained segment over [0, 15] goes stale at 5.
  for (Lpn lpn = 500; lpn < 500 + 24; ++lpn) {
    ftl.ReadPage(lpn);
  }
  ftl.ReadPage(5);  // Probes fail; the covering segment must be erased.
  EXPECT_EQ(ftl.stats().model_misses, 1u);
  EXPECT_GT(ftl.stats().model_probe_reads, 0u);
  EXPECT_EQ(ftl.model().Lookup(5), nullptr);
  // Evict 5's fresh CMT entry, then re-read: without the stale segment there
  // is nothing left to probe — no new model miss, no new wasted reads.
  const uint64_t probe_reads = ftl.stats().model_probe_reads;
  for (Lpn lpn = 600; lpn < 600 + 24; ++lpn) {
    ftl.ReadPage(lpn);
  }
  ftl.ReadPage(5);
  EXPECT_EQ(ftl.stats().model_misses, 1u);
  EXPECT_EQ(ftl.stats().model_probe_reads, probe_reads);
  const Ppn ppn = ftl.Probe(5);
  ASSERT_NE(ppn, kInvalidPpn);
  EXPECT_EQ(w.flash->OobTag(ppn), 5u);
}

TEST(LearnedFtlTest, GcEraseInvalidatesCoveringSegments) {
  // Tiny device: GC fires after a few rounds of churn, long before segment
  // LRU pressure could evict anything (only four distinct LPN ranges train).
  World w = MakeWorld(/*logical_pages=*/64, /*cache_bytes=*/288,
                      /*total_blocks=*/16, /*gc_threshold=*/4);
  LearnedFtl ftl(w.env, TestOptions());
  for (Lpn lpn = 0; lpn < 16; ++lpn) {
    ftl.WritePage(lpn);  // Trains a segment over [0, 15] → the first block.
  }
  ASSERT_NE(ftl.model().Lookup(5), nullptr);
  for (Lpn lpn = 0; lpn < 16; ++lpn) {
    ftl.TrimPage(lpn);  // Fully invalid: the block is GC's cheapest victim.
  }
  ASSERT_NE(ftl.model().Lookup(5), nullptr);  // Trim alone keeps the segment.
  // Churn the rest of the space until GC runs. Retraining [16, 63] only
  // overlap-replaces those ranges — the [0, 15] segment can vanish solely
  // through the GC-erase hook.
  for (int round = 0; round < 64 && ftl.stats().gc_data_blocks == 0; ++round) {
    for (Lpn lpn = 16; lpn < 64 && ftl.stats().gc_data_blocks == 0; ++lpn) {
      ftl.WritePage(lpn);
    }
  }
  ASSERT_GT(ftl.stats().gc_data_blocks, 0u);
  // The erased block's covering segment is gone — no stale probes left — and
  // live ranges still resolve through the model where trained.
  EXPECT_EQ(ftl.model().Lookup(5), nullptr);
  for (Lpn lpn = 16; lpn < 64; ++lpn) {
    const Ppn ppn = ftl.Probe(lpn);
    ASSERT_NE(ppn, kInvalidPpn) << "lpn " << lpn;
    EXPECT_EQ(w.flash->OobTag(ppn), lpn);
  }
}

TEST(LearnedFtlTest, GcMigrationRetrainsTheModel) {
  World w = MakeWorld(1024, /*cache_bytes=*/288, /*total_blocks=*/96,
                      /*gc_threshold=*/6);
  LearnedFtl ftl(w.env, TestOptions());
  const uint64_t retrains_baseline = ftl.stats().model_retrains;
  // Random overwrites over a small space force data-block GC; GcMigrateSorted
  // moves survivors in LPN order, and every migration feeds the trainer.
  const auto shadow = DriveRandomOps(ftl, /*logical_pages=*/512, /*ops=*/6000,
                                     /*write_ratio=*/0.9, /*seed=*/1234);
  ASSERT_GT(ftl.stats().gc_data_blocks, 0u);
  EXPECT_GT(ftl.stats().model_retrains, retrains_baseline);
  // The model never compromises correctness: the full shadow map agrees.
  for (const auto& [lpn, written] : shadow) {
    if (!written) {
      continue;
    }
    const Ppn ppn = ftl.Probe(lpn);
    ASSERT_NE(ppn, kInvalidPpn) << "lpn " << lpn;
    ASSERT_EQ(w.flash->OobTag(ppn), lpn);
  }
}

TEST(LearnedFtlTest, ProbeNeverConsultsTheModel) {
  World w = SmallLearnedWorld();
  LearnedFtl ftl(w.env, TestOptions());
  FillAndEvict(ftl, 32);
  const AtStats before = ftl.stats();
  // Probe is the oracle's view: it must read the durable chain (CMT or
  // persisted table), never a learned shortcut, and must cost no stats.
  for (Lpn lpn = 0; lpn < 32; ++lpn) {
    const Ppn ppn = ftl.Probe(lpn);
    ASSERT_NE(ppn, kInvalidPpn);
    EXPECT_EQ(w.flash->OobTag(ppn), lpn);
  }
  EXPECT_EQ(ftl.stats().model_hits, before.model_hits);
  EXPECT_EQ(ftl.stats().model_probe_reads, before.model_probe_reads);
  EXPECT_EQ(ftl.stats().lookups, before.lookups);
}

}  // namespace
}  // namespace tpftl
