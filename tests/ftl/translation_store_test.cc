#include "src/ftl/translation_store.h"

#include <gtest/gtest.h>

#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::SmallGeometry;

class TranslationStoreTest : public ::testing::Test {
 protected:
  // 1024 logical pages / 128 entries per 512 B translation page = 8 pages.
  TranslationStoreTest()
      : flash_(SmallGeometry()), bm_(&flash_, 2), store_(&bm_, 1024) {
    store_.Format();
  }

  NandFlash flash_;
  BlockManager bm_;
  TranslationStore store_;
};

TEST_F(TranslationStoreTest, FormatWritesAllTranslationPages) {
  EXPECT_EQ(store_.translation_pages(), 8u);
  EXPECT_EQ(store_.entries_per_page(), 128u);
  EXPECT_EQ(flash_.stats().page_writes, 8u);
  for (Vtpn v = 0; v < 8; ++v) {
    const Ptpn ptpn = store_.gtd().Lookup(v);
    ASSERT_NE(ptpn, kInvalidPtpn);
    EXPECT_EQ(flash_.StateOf(ptpn), PageState::kValid);
    EXPECT_EQ(flash_.OobTag(ptpn), v);
  }
}

TEST_F(TranslationStoreTest, FreshTableIsAllInvalid) {
  for (Lpn lpn = 0; lpn < 1024; lpn += 37) {
    EXPECT_EQ(store_.Persisted(lpn), kInvalidPpn);
  }
}

TEST_F(TranslationStoreTest, ReadTranslationPageCostsOneRead) {
  const uint64_t reads_before = flash_.stats().page_reads;
  const MicroSec t = store_.ReadTranslationPage(3);
  EXPECT_DOUBLE_EQ(t, flash_.geometry().page_read_us);
  EXPECT_EQ(flash_.stats().page_reads, reads_before + 1);
}

TEST_F(TranslationStoreTest, RewriteAppliesUpdatesAndRelocates) {
  const Ptpn old_ptpn = store_.gtd().Lookup(2);
  const std::vector<MappingUpdate> updates = {{2 * 128 + 5, 777}, {2 * 128 + 6, 778}};
  const auto r = store_.RewriteTranslationPage(2, updates, /*have_full_content=*/false);
  EXPECT_TRUE(r.did_read);
  EXPECT_DOUBLE_EQ(r.time, flash_.geometry().page_read_us + flash_.geometry().page_write_us);
  EXPECT_EQ(store_.Persisted(2 * 128 + 5), 777u);
  EXPECT_EQ(store_.Persisted(2 * 128 + 6), 778u);
  EXPECT_EQ(store_.Persisted(2 * 128 + 7), kInvalidPpn);
  // Old physical page invalidated, GTD repointed.
  EXPECT_EQ(flash_.StateOf(old_ptpn), PageState::kInvalid);
  EXPECT_NE(store_.gtd().Lookup(2), old_ptpn);
  EXPECT_EQ(flash_.StateOf(store_.gtd().Lookup(2)), PageState::kValid);
}

TEST_F(TranslationStoreTest, RewriteWithFullContentSkipsRead) {
  const std::vector<MappingUpdate> updates = {{5, 42}};
  const auto r = store_.RewriteTranslationPage(0, updates, /*have_full_content=*/true);
  EXPECT_FALSE(r.did_read);
  EXPECT_DOUBLE_EQ(r.time, flash_.geometry().page_write_us);
}

TEST_F(TranslationStoreTest, PersistedPageSpanMatchesEntries) {
  const std::vector<MappingUpdate> updates = {{128 + 3, 99}};
  store_.RewriteTranslationPage(1, updates, false);
  const auto page = store_.PersistedPage(1);
  ASSERT_EQ(page.size(), 128u);
  EXPECT_EQ(page[3], 99u);
  EXPECT_EQ(page[4], kInvalidPpn);
}

TEST_F(TranslationStoreTest, MigrateTranslationPagePreservesContent) {
  const std::vector<MappingUpdate> updates = {{4 * 128 + 1, 555}};
  store_.RewriteTranslationPage(4, updates, false);
  const Ptpn before = store_.gtd().Lookup(4);
  const MicroSec t = store_.MigrateTranslationPage(before);
  EXPECT_DOUBLE_EQ(t, flash_.geometry().page_read_us + flash_.geometry().page_write_us);
  EXPECT_EQ(flash_.StateOf(before), PageState::kInvalid);
  const Ptpn after = store_.gtd().Lookup(4);
  EXPECT_NE(after, before);
  EXPECT_EQ(flash_.OobTag(after), 4u);
  EXPECT_EQ(store_.Persisted(4 * 128 + 1), 555u);
}

TEST_F(TranslationStoreTest, VtpnSlotHelpers) {
  EXPECT_EQ(store_.VtpnOf(0), 0u);
  EXPECT_EQ(store_.VtpnOf(127), 0u);
  EXPECT_EQ(store_.VtpnOf(128), 1u);
  EXPECT_EQ(store_.SlotOf(130), 2u);
}

TEST_F(TranslationStoreTest, RepeatedRewritesTriggerGcSurvival) {
  // Hammer one translation page until translation blocks must be collected;
  // content must survive arbitrarily many relocations. (GC of translation
  // blocks is exercised by the FTL suites; here we only verify the store
  // keeps GTD/contents coherent across many rewrites.)
  for (uint64_t i = 0; i < 40; ++i) {
    const std::vector<MappingUpdate> updates = {{7 * 128 + (i % 128), i}};
    store_.RewriteTranslationPage(7, updates, false);
    // Manually reclaim fully-invalid translation blocks like a tiny GC.
    while (bm_.NeedsGc()) {
      const BlockId victim = bm_.PickVictim();
      ASSERT_NE(victim, kInvalidBlock);
      for (uint64_t off = 0; off < flash_.geometry().pages_per_block; ++off) {
        const Ppn ppn = flash_.geometry().PpnOf(victim, off);
        if (flash_.StateOf(ppn) == PageState::kValid) {
          store_.MigrateTranslationPage(ppn);
        }
      }
      bm_.EraseAndFree(victim);
    }
  }
  EXPECT_EQ(store_.Persisted(7 * 128 + 39 % 128), 39u);
}

TEST(TranslationStoreDeathTest, UpdateOutsidePageAborts) {
  NandFlash flash(SmallGeometry());
  BlockManager bm(&flash, 2);
  TranslationStore store(&bm, 1024);
  store.Format();
  const std::vector<MappingUpdate> updates = {{300, 1}};  // vtpn 2, not 0.
  EXPECT_DEATH(store.RewriteTranslationPage(0, updates, false), "outside");
}

TEST(TranslationStoreDeathTest, UseBeforeFormatAborts) {
  NandFlash flash(SmallGeometry());
  BlockManager bm(&flash, 2);
  TranslationStore store(&bm, 1024);
  EXPECT_DEATH(store.ReadTranslationPage(0), "formatted");
}

}  // namespace
}  // namespace tpftl
