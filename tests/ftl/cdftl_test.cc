#include "src/ftl/cdftl.h"

#include <gtest/gtest.h>

#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::MakeWorld;
using testing::World;

// GTD 32 B + budget 600 B → CTP: 1 × 512 B page, CMT: 11 × 8 B entries.
World SmallCdftlWorld() { return MakeWorld(1024, /*cache_bytes=*/632); }

TEST(CdftlTest, CapacitySplit) {
  World w = SmallCdftlWorld();
  Cdftl ftl(w.env);
  EXPECT_EQ(ftl.ctp_page_capacity(), 1u);
  EXPECT_EQ(ftl.cmt_entry_capacity(), 11u);
}

TEST(CdftlTest, CtpServesSameTranslationPageWithoutFlash) {
  World w = SmallCdftlWorld();
  Cdftl ftl(w.env);
  ftl.ReadPage(0);  // Miss: loads TP 0 into the CTP, entry 0 into the CMT.
  EXPECT_EQ(ftl.stats().misses, 1u);
  const uint64_t reads_before = w.flash->stats().page_reads;
  ftl.ReadPage(1);  // Same translation page: CTP hit, no flash access.
  EXPECT_EQ(ftl.stats().hits, 1u);
  EXPECT_EQ(ftl.stats().misses, 1u);
  EXPECT_EQ(w.flash->stats().page_reads, reads_before);
}

TEST(CdftlTest, DistinctTranslationPagesMissSeparately) {
  World w = SmallCdftlWorld();
  Cdftl ftl(w.env);
  ftl.ReadPage(0);
  ftl.ReadPage(128);  // Different TP — CTP capacity 1, so a real miss.
  EXPECT_EQ(ftl.stats().misses, 2u);
}

TEST(CdftlTest, DirtyCmtVictimFoldsIntoCachedPage) {
  World w = SmallCdftlWorld();
  Cdftl ftl(w.env);
  ftl.WritePage(3);  // Dirty entry in CMT; TP 0 is CTP-resident.
  const Ppn mapped = ftl.Probe(3);
  // Fill the CMT with reads from the same translation page so the dirty
  // entry is evicted by fold-in, with no flash write.
  const uint64_t trans_writes_before = ftl.stats().trans_writes_at;
  for (Lpn lpn = 10; lpn < 30; ++lpn) {
    ftl.ReadPage(lpn);
  }
  EXPECT_EQ(ftl.stats().trans_writes_at, trans_writes_before);
  EXPECT_EQ(ftl.Probe(3), mapped);  // Served from the CTP copy.
}

TEST(CdftlTest, DirtyCtpPageEvictionWritesWholePageWithoutRead) {
  World w = SmallCdftlWorld();
  Cdftl ftl(w.env);
  ftl.WritePage(3);
  // Fold the dirty entry into the CTP page.
  for (Lpn lpn = 10; lpn < 30; ++lpn) {
    ftl.ReadPage(lpn);
  }
  const Ppn mapped = ftl.Probe(3);
  const uint64_t reads_before = w.flash->stats().page_reads;
  const uint64_t writes_before = ftl.stats().trans_writes_at;
  // Pull in another translation page: evicts the dirty CTP page.
  ftl.ReadPage(512);
  EXPECT_EQ(ftl.stats().trans_writes_at, writes_before + 1);
  // Exactly one read (the new page load) — the writeback needed none.
  EXPECT_EQ(w.flash->stats().page_reads, reads_before + 1);
  EXPECT_EQ(ftl.translation_store().Persisted(3), mapped);
}

TEST(CdftlTest, ColdDirtyEntriesResistEviction) {
  World w = SmallCdftlWorld();
  Cdftl ftl(w.env);
  // Dirty an entry of TP 0 while TP 0 is cached, then displace TP 0 from the
  // CTP so the dirty entry's page is gone.
  ftl.WritePage(3);
  ftl.ReadPage(512);  // TP 4 replaces TP 0 in the single-page CTP.
  // Stream clean reads from TP 4 through the CMT: the dirty entry for LPN 3
  // should be skipped (its page is not cached) while clean entries evict.
  for (Lpn lpn = 513; lpn < 530; ++lpn) {
    ftl.ReadPage(lpn);
  }
  EXPECT_EQ(ftl.stats().dirty_evictions, 0u);
  EXPECT_EQ(ftl.Probe(3), ftl.Probe(3));  // Still resolvable.
}

TEST(CdftlTest, ConsistencyUnderChurn) {
  World w = SmallCdftlWorld();
  Cdftl ftl(w.env);
  auto written = testing::DriveRandomOps(ftl, 1024, 4000, 0.7, 17);
  for (const auto& [lpn, _] : written) {
    const Ppn ppn = ftl.Probe(lpn);
    ASSERT_NE(ppn, kInvalidPpn);
    EXPECT_EQ(w.flash->OobTag(ppn), lpn);
    EXPECT_EQ(w.flash->StateOf(ppn), PageState::kValid);
  }
}

TEST(CdftlTest, FlashWriteAttributionBalances) {
  World w = SmallCdftlWorld();
  Cdftl ftl(w.env);
  testing::DriveRandomOps(ftl, 1024, 3000, 0.8, 23);
  const AtStats& s = ftl.stats();
  EXPECT_EQ(w.flash->stats().page_writes,
            s.host_page_writes + s.trans_writes_at + s.trans_writes_gc + s.gc_data_migrations);
}

}  // namespace
}  // namespace tpftl
