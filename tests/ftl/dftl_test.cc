#include "src/ftl/dftl.h"

#include <gtest/gtest.h>

#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::MakeWorld;
using testing::World;

// 8-entry CMT: GTD is 8 translation pages * 4 B = 32 B; 32 + 64 = 96 B cache.
World SmallDftlWorld() { return MakeWorld(1024, /*cache_bytes=*/96); }

TEST(DftlTest, ColdMissCostsOneTranslationRead) {
  World w = SmallDftlWorld();
  Dftl ftl(w.env);
  const MicroSec t = ftl.ReadPage(0);
  EXPECT_EQ(ftl.stats().lookups, 1u);
  EXPECT_EQ(ftl.stats().misses, 1u);
  EXPECT_EQ(ftl.stats().trans_reads_at, 1u);
  // Unwritten page: translation read only, no data read.
  EXPECT_DOUBLE_EQ(t, w.geometry.page_read_us);
  EXPECT_EQ(w.flash->stats().page_reads, 1u);
}

TEST(DftlTest, CachedEntryHitIsFree) {
  World w = SmallDftlWorld();
  Dftl ftl(w.env);
  ftl.ReadPage(42);
  const uint64_t reads_before = w.flash->stats().page_reads;
  const MicroSec t = ftl.ReadPage(42);
  EXPECT_EQ(ftl.stats().hits, 1u);
  EXPECT_DOUBLE_EQ(t, 0.0);
  EXPECT_EQ(w.flash->stats().page_reads, reads_before);
}

TEST(DftlTest, WriteMapsPageAndTagsOob) {
  World w = SmallDftlWorld();
  Dftl ftl(w.env);
  ftl.WritePage(5);
  const Ppn ppn = ftl.Probe(5);
  ASSERT_NE(ppn, kInvalidPpn);
  EXPECT_EQ(w.flash->StateOf(ppn), PageState::kValid);
  EXPECT_EQ(w.flash->OobTag(ppn), 5u);
}

TEST(DftlTest, OverwriteInvalidatesOldPage) {
  World w = SmallDftlWorld();
  Dftl ftl(w.env);
  ftl.WritePage(5);
  const Ppn old_ppn = ftl.Probe(5);
  ftl.WritePage(5);
  const Ppn new_ppn = ftl.Probe(5);
  EXPECT_NE(new_ppn, old_ppn);
  EXPECT_EQ(w.flash->StateOf(old_ppn), PageState::kInvalid);
  EXPECT_EQ(w.flash->StateOf(new_ppn), PageState::kValid);
}

TEST(DftlTest, CleanEvictionsCostNoFlashWrites) {
  World w = SmallDftlWorld();
  Dftl ftl(w.env);
  // Read 16 distinct pages through an 8-entry cache: 8 clean evictions.
  for (Lpn lpn = 0; lpn < 16; ++lpn) {
    ftl.ReadPage(lpn * 64);  // Spread across all 8 translation pages.
  }
  EXPECT_GE(ftl.stats().evictions, 8u);
  EXPECT_EQ(ftl.stats().dirty_evictions, 0u);
  EXPECT_EQ(ftl.stats().trans_writes_at, 0u);
}

TEST(DftlTest, DirtyEvictionWritesBackExactlyOneEntry) {
  World w = SmallDftlWorld();
  Dftl ftl(w.env);
  // Dirty the whole 8-entry cache with writes to the same translation page.
  for (Lpn lpn = 0; lpn < 8; ++lpn) {
    ftl.WritePage(lpn);
  }
  ASSERT_EQ(ftl.stats().evictions, 0u);
  const uint64_t writes_before = ftl.stats().trans_writes_at;
  // The 9th entry evicts one dirty victim → exactly one translation page
  // read-modify-write, the other 7 dirty co-residents stay dirty (§3.2).
  ftl.ReadPage(1000);
  EXPECT_EQ(ftl.stats().evictions, 1u);
  EXPECT_EQ(ftl.stats().dirty_evictions, 1u);
  EXPECT_EQ(ftl.stats().trans_writes_at, writes_before + 1);
  // Next eviction again pays a writeback: Prd stays high for DFTL.
  ftl.ReadPage(900);
  EXPECT_EQ(ftl.stats().dirty_evictions, 2u);
}

TEST(DftlTest, EvictedDirtyEntryIsPersisted) {
  World w = SmallDftlWorld();
  Dftl ftl(w.env);
  ftl.WritePage(3);
  const Ppn mapped = ftl.Probe(3);
  // Evict everything by streaming reads through the cache.
  for (Lpn lpn = 100; lpn < 130; ++lpn) {
    ftl.ReadPage(lpn);
  }
  // Entry 3 must now come from flash and still be correct.
  EXPECT_EQ(ftl.Probe(3), mapped);
  EXPECT_EQ(ftl.translation_store().Persisted(3), mapped);
}

TEST(DftlTest, SlruProtectsReReferencedEntries) {
  World w = SmallDftlWorld();
  Dftl ftl(w.env);
  ftl.ReadPage(7);
  ftl.ReadPage(7);  // Promoted to the protected segment.
  // Stream 20 cold single-touch pages through the probationary segment.
  for (Lpn lpn = 200; lpn < 220; ++lpn) {
    ftl.ReadPage(lpn);
  }
  const uint64_t misses_before = ftl.stats().misses;
  ftl.ReadPage(7);
  EXPECT_EQ(ftl.stats().misses, misses_before);  // Still cached.
}

TEST(DftlTest, GcHitUpdatesCachedEntryInPlace) {
  // Big cache (all entries fit) → every GC mapping update is a cache hit.
  World w = MakeWorld(1024, /*cache_bytes=*/32 + 1024 * 8, /*total_blocks=*/96);
  Dftl ftl(w.env);
  for (int round = 0; round < 6; ++round) {
    for (Lpn lpn = 0; lpn < 1024; ++lpn) {
      ftl.WritePage(lpn);
    }
  }
  EXPECT_GT(ftl.stats().gc_data_blocks, 0u);
  EXPECT_EQ(ftl.stats().gc_misses, 0u);
  // Consistency after GC-driven migrations.
  for (Lpn lpn = 0; lpn < 1024; ++lpn) {
    const Ppn ppn = ftl.Probe(lpn);
    ASSERT_NE(ppn, kInvalidPpn);
    EXPECT_EQ(w.flash->OobTag(ppn), lpn);
    EXPECT_EQ(w.flash->StateOf(ppn), PageState::kValid);
  }
}

TEST(DftlTest, OccupancyIntrospection) {
  World w = SmallDftlWorld();
  Dftl ftl(w.env);
  ftl.WritePage(0);   // TP 0, dirty.
  ftl.ReadPage(1);    // TP 0, clean.
  ftl.WritePage(128); // TP 1, dirty.
  const auto occupancy = ftl.OccupancyByPage();
  ASSERT_EQ(occupancy.size(), 2u);
  EXPECT_EQ(ftl.CachedTranslationPages(), 2u);
  EXPECT_EQ(occupancy.at(0).entries, 2u);
  EXPECT_EQ(occupancy.at(0).dirty_entries, 1u);
  EXPECT_EQ(occupancy.at(1).entries, 1u);
  EXPECT_EQ(occupancy.at(1).dirty_entries, 1u);
}

TEST(DftlTest, CacheNeverExceedsBudget) {
  World w = SmallDftlWorld();
  Dftl ftl(w.env);
  for (Lpn lpn = 0; lpn < 500; ++lpn) {
    ftl.WritePage((lpn * 37) % 1024);
  }
  EXPECT_LE(ftl.cache_entry_count(), 8u);
  EXPECT_LE(ftl.cache_bytes_used(), ftl.entry_cache_budget_bytes());
}

TEST(DftlTest, FlashWriteAttributionBalances) {
  World w = SmallDftlWorld();
  Dftl ftl(w.env);
  for (Lpn lpn = 0; lpn < 2000; ++lpn) {
    ftl.WritePage((lpn * 101) % 1024);
  }
  const AtStats& s = ftl.stats();
  // Every physical page write is attributable: host data, translation
  // writebacks (AT + GC), or GC data migrations.
  EXPECT_EQ(w.flash->stats().page_writes,
            s.host_page_writes + s.trans_writes_at + s.trans_writes_gc + s.gc_data_migrations);
}

}  // namespace
}  // namespace tpftl
