// Wear-aware recovery differential (the aging counterpart of
// crash_consistency_test.cc): drive a wear-limited, fault-injected device
// into mid-life, cut power at randomized instants, and rebuild a fresh
// BlockManager from the surviving flash. The rebuilt candidate erase-count
// histogram must equal a from-scratch recount over the scan — slot by slot,
// not just in total — and the next wear-aware victim must be drawn from the
// recounted candidate set. The reference classification is deliberately
// reimplemented here in its simple direct form (sort partials, newest win)
// rather than shared with RecoverFromScan, which is the code under test.

#include <algorithm>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/ftl_factory.h"
#include "src/flash/fault.h"
#include "src/ftl/block_manager.h"
#include "src/ftl/recovery.h"
#include "src/testing/world.h"
#include "src/util/rng.h"

namespace tpftl {
namespace {

using testing::MakeWorld;
using testing::World;

constexpr uint64_t kLogicalPages = 1024;
constexpr uint64_t kCacheBytes = 32 + 280;
constexpr uint64_t kTotalBlocks = 96;
constexpr uint64_t kTranslationPages = 8;  // 1024 LPNs / 128 per page.
constexpr uint64_t kGcThreshold = 6;
constexpr uint64_t kMaxEraseCycles = 12;
constexpr uint32_t kStreams = 2;
constexpr uint64_t kWorkloadOps = 6000;

World AgingWorld() {
  World w = MakeWorld(kLogicalPages, kCacheBytes, kTotalBlocks, kGcThreshold,
                      /*dies=*/1, kMaxEraseCycles);
  w.env.gc_policy = GcPolicy::kWearAware;
  w.env.data_streams = kStreams;
  return w;
}

// Write-heavy churn over a skewed working set: wears blocks unevenly so the
// erase histogram has real spread by the time the cut lands. Stops at the
// cut or once the device reports end-of-life.
void DriveAgingWorkload(Ftl& ftl, NandFlash& flash, uint64_t ops) {
  Rng rng(4242);
  for (uint64_t i = 0; i < ops; ++i) {
    if (flash.power_cut_triggered() || ftl.worn_out()) {
      return;
    }
    const Lpn lpn = rng.Below(100) < 70 ? rng.Below(kLogicalPages / 8)
                                        : rng.Below(kLogicalPages);
    if (rng.Below(100) < 85) {
      ftl.WritePage(lpn);
    } else {
      ftl.TrimPage(lpn);
    }
  }
}

// Independent recount of what RecoverFromScan must rebuild: the newest
// partially-written data blocks (up to kStreams) and the newest translation
// partial resume as actives; every other non-bad block with programmed pages
// is a GC candidate, counted into the histogram at its current erase count.
struct Reference {
  std::set<BlockId> candidates;
  std::vector<uint32_t> hist;
  uint64_t min_erase = ~0ULL;
};

Reference Recount(const NandFlash& flash, const OobScanResult& scan) {
  const FlashGeometry& g = flash.geometry();
  Reference ref;
  std::vector<std::pair<uint64_t, BlockId>> data_partials;   // (max_seq, id)
  std::vector<std::pair<uint64_t, BlockId>> trans_partials;  // (max_seq, id)
  for (BlockId b = 0; b < g.total_blocks; ++b) {
    if (flash.IsBad(b) || scan.blocks[b].programmed == 0) {
      continue;
    }
    if (scan.blocks[b].programmed < g.pages_per_block) {
      auto& partials = scan.blocks[b].pool == OobKind::kTranslation
                           ? trans_partials
                           : data_partials;
      partials.push_back({scan.blocks[b].max_seq, b});
      continue;
    }
    ref.candidates.insert(b);
  }
  // The newest (up to kStreams) data partials and the newest translation
  // partial resume as actives; any older partials re-enter the candidate
  // buckets.
  std::sort(data_partials.begin(), data_partials.end());
  std::sort(trans_partials.begin(), trans_partials.end());
  const uint64_t actives = std::min<uint64_t>(data_partials.size(), kStreams);
  for (uint64_t i = 0; i < data_partials.size() - actives; ++i) {
    ref.candidates.insert(data_partials[i].second);
  }
  for (uint64_t i = 0; i + 1 < trans_partials.size(); ++i) {
    ref.candidates.insert(trans_partials[i].second);
  }
  for (const BlockId b : ref.candidates) {
    const uint64_t erase = flash.block(b).erase_count();
    if (erase >= ref.hist.size()) {
      ref.hist.resize(erase + 1, 0);
    }
    ++ref.hist[erase];
    ref.min_erase = std::min(ref.min_erase, erase);
  }
  return ref;
}

void ExpectHistogramMatches(const std::vector<uint32_t>& got,
                            const std::vector<uint32_t>& want) {
  const uint64_t slots = std::max(got.size(), want.size());
  for (uint64_t e = 0; e < slots; ++e) {
    const uint32_t g = e < got.size() ? got[e] : 0;
    const uint32_t w = e < want.size() ? want[e] : 0;
    EXPECT_EQ(g, w) << "erase-count slot " << e;
  }
}

TEST(BlockManagerRecoveryTest, AgingCrashHistogramMatchesRecount) {
  // Learn the op-index range from a fault-free reference run so cuts land
  // mid-workload, after construction-time formatting.
  uint64_t post_ctor_op = 0;
  uint64_t end_op = 0;
  {
    World ref = AgingWorld();
    auto ftl = CreateFtl(FtlKind::kDftl, ref.env);
    post_ctor_op = ref.flash->op_index();
    DriveAgingWorkload(*ftl, *ref.flash, kWorkloadOps);
    end_op = ref.flash->op_index();
  }
  ASSERT_GT(end_op, post_ctor_op + 100);

  Rng rng(1337);
  for (int i = 0; i < 4; ++i) {
    const uint64_t cut_op = post_ctor_op + 1 + rng.Below(end_op - post_ctor_op);
    World w = AgingWorld();
    FaultPlan plan;
    plan.seed = 7;
    plan.program_fail_prob = 0.002;
    plan.erase_fail_prob = 0.001;
    plan.power_cut_at_op = cut_op;
    w.flash->InstallFaultPlan(plan);
    {
      auto crashed = CreateFtl(FtlKind::kDftl, w.env);
      DriveAgingWorkload(*crashed, *w.flash, kWorkloadOps);
      ASSERT_TRUE(w.flash->power_cut_triggered()) << "cut op " << cut_op;
    }
    w.flash->RestoreToCutInstant();

    const OobScanResult scan =
        ScanForRecovery(*w.flash, kLogicalPages, kTranslationPages);
    const Reference ref = Recount(*w.flash, scan);

    BlockManagerOptions options;
    options.data_streams = kStreams;
    BlockManager bm(w.flash.get(), kGcThreshold, GcPolicy::kWearAware,
                    /*wear_spread_limit=*/16, options);
    bm.RecoverFromScan(scan);

    ASSERT_TRUE(bm.CheckInvariants()) << "cut op " << cut_op;
    EXPECT_EQ(bm.candidate_count(), ref.candidates.size()) << "cut op " << cut_op;
    ExpectHistogramMatches(bm.candidate_erase_histogram(), ref.hist);
    EXPECT_EQ(bm.MinCandidateErase(), ref.min_erase) << "cut op " << cut_op;

    // The next wear-aware victim must come from the recounted candidate set.
    const BlockId victim = bm.PickVictim();
    if (!ref.candidates.empty()) {
      ASSERT_NE(victim, kInvalidBlock);
      EXPECT_TRUE(ref.candidates.count(victim) != 0)
          << "victim " << victim << " is not a recounted candidate";
    } else {
      EXPECT_EQ(victim, kInvalidBlock);
    }

    // Determinism: a second manager rebuilt from the same scan agrees on the
    // histogram and the victim choice exactly.
    BlockManager twin(w.flash.get(), kGcThreshold, GcPolicy::kWearAware,
                      /*wear_spread_limit=*/16, options);
    twin.RecoverFromScan(scan);
    EXPECT_EQ(twin.candidate_count(), bm.candidate_count());
    ExpectHistogramMatches(twin.candidate_erase_histogram(),
                           bm.candidate_erase_histogram());
    EXPECT_EQ(twin.PickVictim(), victim);
  }
}

}  // namespace
}  // namespace tpftl
