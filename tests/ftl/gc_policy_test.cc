#include <gtest/gtest.h>

#include "src/ftl/block_manager.h"
#include "src/ftl/optimal_ftl.h"
#include "src/util/rng.h"
#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::MakeWorld;
using testing::SmallGeometry;
using testing::World;

// Fills `count` blocks through `bm` and returns the programmed PPNs.
std::vector<Ppn> FillBlocks(BlockManager& bm, uint64_t count) {
  const uint64_t per_block = bm.flash().geometry().pages_per_block;
  std::vector<Ppn> ppns;
  for (uint64_t i = 0; i < count * per_block; ++i) {
    Ppn p = kInvalidPpn;
    bm.Program(BlockPool::kData, i, &p);
    ppns.push_back(p);
  }
  return ppns;
}

TEST(GcPolicyTest, ReclaimableCandidateTracksInvalidPages) {
  NandFlash flash(SmallGeometry(8));
  BlockManager bm(&flash, 1);
  EXPECT_FALSE(bm.HasReclaimableCandidate());  // No candidates yet.
  const auto ppns = FillBlocks(bm, 2);
  // Candidates exist but every page is valid: collecting one nets zero
  // free pages, so nothing is reclaimable.
  EXPECT_FALSE(bm.HasReclaimableCandidate());
  bm.Invalidate(ppns[0]);
  EXPECT_TRUE(bm.HasReclaimableCandidate());
}

TEST(GcPolicyTest, CostBenefitPrefersOldGarbage) {
  NandFlash flash(SmallGeometry(8));
  BlockManager bm(&flash, 1, GcPolicy::kCostBenefit);
  const auto ppns = FillBlocks(bm, 2);
  const uint64_t per_block = flash.geometry().pages_per_block;
  // Block A: garbage created first (older), same amount as block B.
  bm.Invalidate(ppns[0]);
  bm.Invalidate(ppns[1]);
  // Pad the clock with unrelated activity (few enough programs that the
  // translation active block never retires into the candidate set), then
  // dirty block B.
  for (int i = 0; i < 7; ++i) {
    Ppn p = kInvalidPpn;
    bm.Program(BlockPool::kTranslation, 999, &p);
    bm.Invalidate(p);
  }
  bm.Invalidate(ppns[per_block]);
  bm.Invalidate(ppns[per_block + 1]);
  // Equal utilization → the older block A wins on age.
  EXPECT_EQ(bm.PickVictim(), flash.geometry().BlockOf(ppns[0]));
}

TEST(GcPolicyTest, CostBenefitStillAvoidsFullBlocks) {
  NandFlash flash(SmallGeometry(8));
  BlockManager bm(&flash, 1, GcPolicy::kCostBenefit);
  const auto ppns = FillBlocks(bm, 2);
  const uint64_t per_block = flash.geometry().pages_per_block;
  // Block A: ancient but fully valid. Block B: recent with lots of garbage.
  for (int i = 0; i < 7; ++i) {
    Ppn p = kInvalidPpn;
    bm.Program(BlockPool::kTranslation, 999, &p);
    bm.Invalidate(p);
  }
  for (uint64_t i = 0; i < per_block - 1; ++i) {
    bm.Invalidate(ppns[per_block + i]);
  }
  EXPECT_EQ(bm.PickVictim(), flash.geometry().BlockOf(ppns[per_block]));
}

TEST(GcPolicyTest, WearAwareSkipsWornBlocks) {
  NandFlash flash(SmallGeometry(8));
  BlockManager bm(&flash, 1, GcPolicy::kWearAware, /*wear_spread_limit=*/2);
  // Pre-wear block 0 far beyond the limit.
  for (int i = 0; i < 10; ++i) {
    Ppn p = kInvalidPpn;
    flash.ProgramPage(0, 1, &p);
    flash.InvalidatePage(p);
    flash.EraseBlock(0);
  }
  const auto ppns = FillBlocks(bm, 2);  // Blocks 0 and 1 (free list order).
  const uint64_t per_block = flash.geometry().pages_per_block;
  // Block 0 (worn) has MORE garbage — greedy would take it.
  bm.Invalidate(ppns[0]);
  bm.Invalidate(ppns[1]);
  bm.Invalidate(ppns[per_block]);
  const BlockId greedy_choice = flash.geometry().BlockOf(ppns[0]);
  ASSERT_EQ(greedy_choice, 0u);
  // Wear-aware refuses block 0 (erase count 10 > min 0 + limit 2).
  EXPECT_EQ(bm.PickVictim(), flash.geometry().BlockOf(ppns[per_block]));
}

TEST(GcPolicyTest, WearAwareFallsBackWhenNoAlternative) {
  NandFlash flash(SmallGeometry(8));
  BlockManager bm(&flash, 1, GcPolicy::kWearAware, 0);
  const auto ppns = FillBlocks(bm, 1);
  bm.Invalidate(ppns[0]);
  // Single candidate: returned despite any wear consideration.
  EXPECT_NE(bm.PickVictim(), kInvalidBlock);
}

TEST(GcPolicyTest, AllPoliciesKeepFtlConsistent) {
  for (const GcPolicy policy :
       {GcPolicy::kGreedy, GcPolicy::kCostBenefit, GcPolicy::kWearAware}) {
    World w = MakeWorld(1024, 64, /*total_blocks=*/84);
    w.env.gc_policy = policy;
    OptimalFtl ftl(w.env);
    auto written = testing::DriveRandomOps(ftl, 1024, 6000, 0.9, 61);
    for (const auto& [lpn, _] : written) {
      const Ppn ppn = ftl.Probe(lpn);
      ASSERT_NE(ppn, kInvalidPpn);
      ASSERT_EQ(w.flash->OobTag(ppn), lpn);
    }
    EXPECT_GT(w.flash->TotalEraseCount(), 0u);
  }
}

TEST(GcPolicyTest, WearAwareNarrowsWearSpread) {
  // Hot/cold split: a small hot region absorbs all writes. Greedy grinds the
  // same garbage-rich blocks; wear-aware must bound max-min erase spread.
  auto run = [](GcPolicy policy) {
    World w = MakeWorld(1024, 64, /*total_blocks=*/80);
    w.env.gc_policy = policy;
    OptimalFtl ftl(w.env);
    for (Lpn lpn = 0; lpn < 1024; ++lpn) {
      ftl.WritePage(lpn);  // Fill.
    }
    Rng rng(5);
    for (int i = 0; i < 30000; ++i) {
      ftl.WritePage(rng.Below(64));  // 6 % hot region.
    }
    uint64_t min_erase = ~0ULL;
    uint64_t max_erase = 0;
    for (BlockId b = 0; b < w.geometry.total_blocks; ++b) {
      min_erase = std::min(min_erase, w.flash->block(b).erase_count());
      max_erase = std::max(max_erase, w.flash->block(b).erase_count());
    }
    return max_erase - min_erase;
  };
  const uint64_t greedy_spread = run(GcPolicy::kGreedy);
  const uint64_t wear_spread = run(GcPolicy::kWearAware);
  EXPECT_LT(wear_spread, greedy_spread);
}

}  // namespace
}  // namespace tpftl
