// Randomized differential test: BlockManager's incrementally maintained
// victim selection (intrusive bucket lists, tail tie-breaks, erase-count
// histogram) against a naive full-scan reference model that recomputes every
// pick from first principles. 50k mixed Program / Invalidate / PickVictim /
// EraseAndFree operations per GC policy.
//
// The reference mirrors the documented deterministic semantics:
//   * within a bucket, candidates are ordered by last_touched (the op-clock
//     stamp of the block's most recent program or invalidate), so "bucket
//     tail" == candidate with the minimum stamp;
//   * greedy picks the minimum-valid bucket's tail;
//   * cost-benefit evaluates each bucket's tail, v ascending, strict max;
//   * wear-aware takes the least-worn under-cap block within the quality
//     margin (scanning tail→head, v ascending, first-improvement wins,
//     early exit at the candidate minimum), falling back to the least-worn
//     candidate when nothing qualifies.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/ftl/block_manager.h"
#include "src/util/rng.h"
#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::SmallGeometry;

// Full-scan reference model. Reads NAND state (valid/erase counts) straight
// from the flash views and keeps only its own op-clock stamps.
class ReferenceModel {
 public:
  ReferenceModel(const NandFlash& flash, const BlockManager& bm, uint64_t wear_spread_limit)
      : flash_(flash),
        bm_(bm),
        wear_spread_limit_(wear_spread_limit),
        last_touched_(flash.geometry().total_blocks, 0) {}

  void Touch(BlockId block) { last_touched_[block] = ++op_clock_; }

  // A block is a candidate iff it is allocated and fully programmed: the
  // manager retires the active block the moment its last page is written and
  // removes victims on EraseAndFree (pool returns to kNone).
  bool IsCandidate(BlockId block) const {
    return bm_.PoolOf(block) != BlockPool::kNone &&
           flash_.block(block).write_cursor() == flash_.geometry().pages_per_block;
  }

  std::vector<BlockId> CandidatesOldestFirst(uint64_t valid) const {
    std::vector<BlockId> out;
    for (BlockId b = 0; b < flash_.geometry().total_blocks; ++b) {
      if (IsCandidate(b) && flash_.block(b).valid_pages() == valid) {
        out.push_back(b);
      }
    }
    std::sort(out.begin(), out.end(), [this](BlockId a, BlockId b) {
      return last_touched_[a] < last_touched_[b];
    });
    return out;
  }

  uint64_t MinErase() const {
    uint64_t min_erase = ~0ULL;
    for (BlockId b = 0; b < flash_.geometry().total_blocks; ++b) {
      if (IsCandidate(b)) {
        min_erase = std::min(min_erase, flash_.block(b).erase_count());
      }
    }
    return min_erase;
  }

  BlockId PickGreedy() const {
    const uint64_t per_block = flash_.geometry().pages_per_block;
    for (uint64_t v = 0; v <= per_block; ++v) {
      const auto bucket = CandidatesOldestFirst(v);
      if (!bucket.empty()) {
        return bucket.front();  // Oldest stamp == the intrusive list's tail.
      }
    }
    return kInvalidBlock;
  }

  BlockId PickCostBenefit() const {
    const uint64_t per_block = flash_.geometry().pages_per_block;
    BlockId best = kInvalidBlock;
    double best_score = -1.0;
    for (uint64_t v = 0; v <= per_block; ++v) {
      const auto bucket = CandidatesOldestFirst(v);
      if (bucket.empty()) {
        continue;
      }
      const BlockId block = bucket.front();
      const double u = static_cast<double>(v) / static_cast<double>(per_block);
      const double age = static_cast<double>(op_clock_ - last_touched_[block]) + 1.0;
      const double score = u == 0.0 ? age * 1e9 : age * (1.0 - u) / (2.0 * u);
      if (score > best_score) {
        best_score = score;
        best = block;
      }
    }
    return best;
  }

  BlockId PickWearAware() const {
    const BlockId greedy = PickGreedy();
    if (greedy == kInvalidBlock) {
      return kInvalidBlock;
    }
    const uint64_t per_block = flash_.geometry().pages_per_block;
    const uint64_t min_erase = MinErase();
    const uint64_t greedy_valid = flash_.block(greedy).valid_pages();
    const uint64_t margin = per_block / 8;
    BlockId best = kInvalidBlock;
    uint64_t best_erase = min_erase + wear_spread_limit_ + 1;
    for (uint64_t v = greedy_valid; v <= greedy_valid + margin && v <= per_block; ++v) {
      for (const BlockId block : CandidatesOldestFirst(v)) {
        const uint64_t erase = flash_.block(block).erase_count();
        if (erase < best_erase) {
          if (erase == min_erase) {
            return block;
          }
          best = block;
          best_erase = erase;
        }
      }
    }
    if (best != kInvalidBlock) {
      return best;
    }
    // Static-leveling fallback: least-worn candidate, same scan order.
    for (uint64_t v = 0; v <= per_block; ++v) {
      for (const BlockId block : CandidatesOldestFirst(v)) {
        if (flash_.block(block).erase_count() == min_erase) {
          return block;
        }
      }
    }
    return kInvalidBlock;
  }

  BlockId Pick(GcPolicy policy) const {
    switch (policy) {
      case GcPolicy::kGreedy:
        return PickGreedy();
      case GcPolicy::kCostBenefit:
        return PickCostBenefit();
      case GcPolicy::kWearAware:
        return PickWearAware();
    }
    return kInvalidBlock;
  }

 private:
  const NandFlash& flash_;
  const BlockManager& bm_;
  uint64_t wear_spread_limit_;
  uint64_t op_clock_ = 0;
  std::vector<uint64_t> last_touched_;
};

void DriveDifferential(GcPolicy policy, uint64_t seed) {
  constexpr uint64_t kOps = 50'000;
  constexpr uint64_t kWearSpreadLimit = 3;
  NandFlash flash(SmallGeometry(24));
  BlockManager bm(&flash, /*gc_threshold=*/3, policy, kWearSpreadLimit);
  ReferenceModel ref(flash, bm, kWearSpreadLimit);
  Rng rng(seed);
  std::vector<Ppn> live;
  uint64_t tag = 0;
  uint64_t picks_compared = 0;

  auto collect_victim = [&] {
    const BlockId victim = bm.PickVictim();
    ASSERT_EQ(victim, ref.Pick(policy)) << "policy " << static_cast<int>(policy);
    if (victim == kInvalidBlock) {
      return;
    }
    // Migrate-free GC: invalidate the victim's remaining valid pages (the
    // real GC loop would rewrite them elsewhere first), then erase.
    const FlashGeometry& g = flash.geometry();
    for (uint64_t offset = 0; offset < g.pages_per_block; ++offset) {
      const Ppn ppn = g.PpnOf(victim, offset);
      if (flash.StateOf(ppn) == PageState::kValid) {
        bm.Invalidate(ppn);
        ref.Touch(victim);
        live.erase(std::remove(live.begin(), live.end(), ppn), live.end());
      }
    }
    bm.EraseAndFree(victim);
  };

  for (uint64_t i = 0; i < kOps; ++i) {
    const uint64_t r = rng.Below(100);
    if (r < 55) {
      while (bm.NeedsGc()) {
        collect_victim();
      }
      const BlockPool pool = r < 45 ? BlockPool::kData : BlockPool::kTranslation;
      Ppn ppn = kInvalidPpn;
      bm.Program(pool, tag++, &ppn);
      ref.Touch(flash.geometry().BlockOf(ppn));
      live.push_back(ppn);
    } else if (r < 85) {
      if (!live.empty()) {
        const size_t idx = rng.Below(live.size());
        const Ppn ppn = live[idx];
        bm.Invalidate(ppn);
        ref.Touch(flash.geometry().BlockOf(ppn));
        live[idx] = live.back();
        live.pop_back();
      }
    } else if (r < 95) {
      ASSERT_EQ(bm.PickVictim(), ref.Pick(policy)) << "policy " << static_cast<int>(policy);
      ASSERT_EQ(bm.MinCandidateErase(), ref.MinErase());
      ++picks_compared;
    } else {
      collect_victim();
    }
  }
  EXPECT_GT(picks_compared, 1000u);
  EXPECT_GT(flash.TotalEraseCount(), 100u);
}

TEST(BlockManagerOracleTest, GreedyMatchesFullScanReference) {
  DriveDifferential(GcPolicy::kGreedy, 101);
}

TEST(BlockManagerOracleTest, CostBenefitMatchesFullScanReference) {
  DriveDifferential(GcPolicy::kCostBenefit, 202);
}

TEST(BlockManagerOracleTest, WearAwareMatchesFullScanReference) {
  DriveDifferential(GcPolicy::kWearAware, 303);
}

}  // namespace
}  // namespace tpftl
