#include "src/ftl/sftl.h"

#include <gtest/gtest.h>

#include "src/testing/world.h"
#include "src/util/rng.h"

namespace tpftl {
namespace {

using testing::MakeWorld;
using testing::World;

// GTD 32 B + 1000 B budget → dirty buffer 12 entries (96 B), 904 B for pages.
World SmallSftlWorld() { return MakeWorld(1024, /*cache_bytes=*/1032); }

TEST(SftlTest, FreshTranslationPageCompressesToOneRun) {
  World w = SmallSftlWorld();
  Sftl ftl(w.env);
  ftl.ReadPage(0);  // Loads TP 0: all slots invalid → a single run.
  EXPECT_EQ(ftl.cached_pages(), 1u);
  // Header (8) + 1 run (8) = 16 bytes.
  EXPECT_EQ(ftl.cache_bytes_used(), 16u);
}

TEST(SftlTest, SequentialMappingsStayCompressed) {
  World w = SmallSftlWorld();
  Sftl ftl(w.env);
  // Sequential fill: PPNs of TP 0 become consecutive.
  for (Lpn lpn = 0; lpn < 128; ++lpn) {
    ftl.WritePage(lpn);
  }
  // The cached page holds 128 sequentially-mapped entries in few runs: far
  // smaller than 128 * 8 B.
  EXPECT_LT(ftl.cache_bytes_used(), 200u);
}

TEST(SftlTest, WholePageHitsAfterOneMiss) {
  World w = SmallSftlWorld();
  Sftl ftl(w.env);
  ftl.ReadPage(0);
  const uint64_t misses_before = ftl.stats().misses;
  for (Lpn lpn = 1; lpn < 128; ++lpn) {
    ftl.ReadPage(lpn);
  }
  EXPECT_EQ(ftl.stats().misses, misses_before);  // All served from the page.
}

TEST(SftlTest, RandomUpdatesInflateCompressedSize) {
  World w = SmallSftlWorld();
  Sftl ftl(w.env);
  ftl.ReadPage(0);
  const uint64_t before = ftl.cache_bytes_used();
  // Scattered writes fragment the PPN sequence of TP 0.
  for (const Lpn lpn : {5, 60, 100, 20, 90}) {
    ftl.WritePage(lpn);
  }
  EXPECT_GT(ftl.cache_bytes_used(), before);
}

TEST(SftlTest, SparseDirtyPageParksEntriesInBuffer) {
  World w = SmallSftlWorld();
  Sftl ftl(w.env);
  ftl.WritePage(3);  // One dirty slot on TP 0 (sparse: ≤ threshold 8).
  const Ppn mapped = ftl.Probe(3);
  const uint64_t trans_writes_before = ftl.stats().trans_writes_at;
  // Fragment other pages heavily so TP 0 gets evicted for space.
  for (Lpn lpn = 128; lpn < 1024; lpn += 3) {
    ftl.WritePage(lpn);
  }
  // TP 0's lone dirty entry went to the buffer at some point — the mapping
  // survives and no single-entry eviction forced a whole-page write for it.
  EXPECT_EQ(ftl.Probe(3), mapped);
  (void)trans_writes_before;  // Buffer flushes may have occurred; consistency is the check.
}

TEST(SftlTest, BufferHitCountsAsCacheHit) {
  // Tiny page budget forces TP 0 out quickly; its dirty entry lands in the
  // buffer and must be served from there as a hit.
  World w = MakeWorld(1024, /*cache_bytes=*/32 + 200);
  Sftl ftl(w.env);
  ftl.WritePage(3);
  // Load a different page and fragment it so TP 0 is evicted.
  for (const Lpn lpn : {200, 260, 230, 210, 250}) {
    ftl.WritePage(lpn);
  }
  if (ftl.dirty_buffer_entries() > 0) {
    const uint64_t hits_before = ftl.stats().hits;
    const uint64_t reads_before = w.flash->stats().page_reads;
    ftl.ReadPage(3);
    EXPECT_GT(ftl.stats().hits, hits_before);
    // The data page read happens, but no translation page read.
    EXPECT_LE(w.flash->stats().page_reads, reads_before + 1);
  }
}

TEST(SftlTest, DenselyDirtyPageWritesBackWithoutRead) {
  World w = SmallSftlWorld();
  Sftl ftl(w.env);
  // Dirty > sparse_dirty_threshold (8) scattered slots of TP 0.
  for (const Lpn lpn : {1, 15, 30, 45, 60, 75, 90, 105, 120, 8, 22}) {
    ftl.WritePage(lpn);
  }
  const uint64_t dirty_evictions_before = ftl.stats().dirty_evictions;
  // Force TP 0 out by loading and fragmenting other pages.
  for (Lpn lpn = 128; lpn < 640; lpn += 5) {
    ftl.WritePage(lpn);
  }
  EXPECT_GT(ftl.stats().dirty_evictions, dirty_evictions_before);
  // All mappings must persist.
  for (const Lpn lpn : {1, 15, 30, 45, 60, 75, 90, 105, 120, 8, 22}) {
    EXPECT_NE(ftl.Probe(lpn), kInvalidPpn);
  }
}

TEST(SftlTest, ConsistencyUnderChurn) {
  World w = SmallSftlWorld();
  Sftl ftl(w.env);
  auto written = testing::DriveRandomOps(ftl, 1024, 4000, 0.7, 31);
  for (const auto& [lpn, _] : written) {
    const Ppn ppn = ftl.Probe(lpn);
    ASSERT_NE(ppn, kInvalidPpn);
    EXPECT_EQ(w.flash->OobTag(ppn), lpn);
    EXPECT_EQ(w.flash->StateOf(ppn), PageState::kValid);
  }
}

TEST(SftlTest, FlashWriteAttributionBalances) {
  World w = SmallSftlWorld();
  Sftl ftl(w.env);
  testing::DriveRandomOps(ftl, 1024, 3000, 0.8, 37);
  const AtStats& s = ftl.stats();
  EXPECT_EQ(w.flash->stats().page_writes,
            s.host_page_writes + s.trans_writes_at + s.trans_writes_gc + s.gc_data_migrations);
}

TEST(SftlTest, IncrementalRunAccountingMatchesRecomputation) {
  // The per-slot run/byte bookkeeping is incremental (neighbor deltas);
  // verify it never drifts from a from-scratch recount under heavy churn.
  World w = SmallSftlWorld();
  Sftl ftl(w.env);
  Rng rng(73);
  for (int i = 0; i < 3000; ++i) {
    const Lpn lpn = rng.Below(1024);
    if (rng.Chance(0.7)) {
      ftl.WritePage(lpn);
    } else {
      ftl.ReadPage(lpn);
    }
    if (i % 100 == 0) {
      ASSERT_TRUE(ftl.CheckRunInvariant()) << "after op " << i;
    }
  }
  EXPECT_TRUE(ftl.CheckRunInvariant());
}

TEST(SftlTest, CacheBytesRespectBudgetAfterLoads) {
  World w = SmallSftlWorld();
  Sftl ftl(w.env);
  testing::DriveRandomOps(ftl, 1024, 2000, 0.5, 41);
  // Pages can inflate in place between loads, but occupancy stays bounded by
  // the uncompressed size of the worst case and is rebalanced on each load.
  EXPECT_GT(ftl.cache_bytes_used(), 0u);
  EXPECT_LE(ftl.dirty_buffer_entries(), 12u);
}

}  // namespace
}  // namespace tpftl
