#include "src/ftl/block_ftl.h"

#include <gtest/gtest.h>

#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::MakeWorld;
using testing::World;

TEST(BlockFtlTest, SequentialFillNeedsNoMerges) {
  World w = MakeWorld(1024, 64);
  BlockFtl ftl(w.env);
  for (Lpn lpn = 0; lpn < 1024; ++lpn) {
    ftl.WritePage(lpn);
  }
  EXPECT_EQ(ftl.stats().gc_data_blocks, 0u);
  EXPECT_EQ(w.flash->stats().page_writes, 1024u);
  EXPECT_DOUBLE_EQ(ftl.stats().write_amplification(), 1.0);
}

TEST(BlockFtlTest, PagesLandAtFixedOffsets) {
  World w = MakeWorld(1024, 64);
  BlockFtl ftl(w.env);
  ftl.WritePage(18);  // Block 1, offset 2 in 16-page blocks.
  const Ppn ppn = ftl.Probe(18);
  ASSERT_NE(ppn, kInvalidPpn);
  EXPECT_EQ(w.flash->geometry().OffsetOf(ppn), 2u);
  EXPECT_EQ(w.flash->OobTag(ppn), 18u);
}

TEST(BlockFtlTest, OverwriteOpensReplacementBlockWithoutMerging) {
  World w = MakeWorld(1024, 64);
  BlockFtl ftl(w.env);
  // Fill one logical block, then overwrite one of its pages: the new copy
  // lands at its home offset in a replacement block, deferring the merge.
  for (Lpn lpn = 0; lpn < 16; ++lpn) {
    ftl.WritePage(lpn);
  }
  const Ppn untouched = ftl.Probe(0);
  const Ppn before = ftl.Probe(5);
  ftl.WritePage(5);
  EXPECT_EQ(ftl.stats().gc_data_blocks, 0u);
  EXPECT_EQ(ftl.stats().gc_data_migrations, 0u);
  EXPECT_EQ(w.flash->stats().block_erases, 0u);
  EXPECT_EQ(ftl.Probe(0), untouched);  // Rest of the block stays put.
  const Ppn after = ftl.Probe(5);
  ASSERT_NE(after, kInvalidPpn);
  EXPECT_NE(after, before);
  EXPECT_EQ(w.flash->geometry().OffsetOf(after), 5u);  // Offset-stable.
  EXPECT_EQ(w.flash->OobTag(after), 5u);
}

TEST(BlockFtlTest, SpentReplacementSlotForcesPartialMerge) {
  World w = MakeWorld(1024, 64);
  BlockFtl ftl(w.env);
  for (Lpn lpn = 0; lpn < 16; ++lpn) {
    ftl.WritePage(lpn);
  }
  ftl.WritePage(5);  // Opens the replacement.
  ftl.WritePage(5);  // Slot spent: collapse home into the replacement.
  EXPECT_EQ(ftl.stats().gc_data_blocks, 1u);
  EXPECT_EQ(ftl.stats().partial_merges, 1u);
  EXPECT_EQ(ftl.stats().switch_merges, 0u);
  EXPECT_EQ(ftl.stats().gc_data_migrations, 15u);  // Home survivors relocated.
  EXPECT_EQ(w.flash->stats().block_erases, 1u);
  // Every page of the logical block remains mapped and offset-stable.
  for (Lpn lpn = 0; lpn < 16; ++lpn) {
    const Ppn ppn = ftl.Probe(lpn);
    ASSERT_NE(ppn, kInvalidPpn);
    EXPECT_EQ(w.flash->geometry().OffsetOf(ppn), lpn);
    EXPECT_EQ(w.flash->OobTag(ppn), lpn);
  }
}

TEST(BlockFtlTest, FullOverwriteSwitchMergesForFree) {
  World w = MakeWorld(1024, 64);
  BlockFtl ftl(w.env);
  for (int round = 0; round < 2; ++round) {
    for (Lpn lpn = 0; lpn < 16; ++lpn) {
      ftl.WritePage(lpn);
    }
  }
  // Round two fully superseded the home block inside the replacement, so
  // the next collision collapses the pair with zero copies.
  ftl.WritePage(0);
  EXPECT_EQ(ftl.stats().switch_merges, 1u);
  EXPECT_EQ(ftl.stats().partial_merges, 0u);
  EXPECT_EQ(ftl.stats().gc_data_migrations, 0u);
  EXPECT_EQ(w.flash->stats().block_erases, 1u);
}

TEST(BlockFtlTest, RandomOverwritesAmplifyWrites) {
  World w = MakeWorld(1024, 64);
  BlockFtl ftl(w.env);
  testing::DriveRandomOps(ftl, 1024, 2000, 1.0, 3);
  // Random writes at block granularity still amplify (§2.1), but replacement
  // blocks soak up repeat overwrites — far from the old merge-per-write
  // catastrophe, yet nowhere near page-level WA.
  EXPECT_GT(ftl.stats().write_amplification(), 1.5);
  EXPECT_LT(ftl.stats().write_amplification(), 8.0);
}

TEST(BlockFtlTest, MergeMixIsPinnedUnderChurn) {
  World w = MakeWorld(1024, 64);
  BlockFtl ftl(w.env);
  testing::DriveRandomOps(ftl, 1024, 2000, 1.0, 3);
  // Deterministic workload, deterministic merge mix. Partial merges dominate
  // random churn; switch merges need a fully superseded home, which random
  // single-page overwrites rarely produce. A change here means the
  // replacement policy changed — re-derive, don't just re-pin.
  EXPECT_EQ(ftl.stats().gc_data_blocks,
            ftl.stats().switch_merges + ftl.stats().partial_merges);
  EXPECT_GT(ftl.stats().partial_merges, 0u);
  EXPECT_EQ(ftl.stats().full_merges, 0u);  // BlockFtl never full-merges.
  const uint64_t kExpectedSwitch = 6;
  const uint64_t kExpectedPartial = 1044;
  EXPECT_EQ(ftl.stats().switch_merges, kExpectedSwitch);
  EXPECT_EQ(ftl.stats().partial_merges, kExpectedPartial);
}

TEST(BlockFtlTest, ReadOfUnwrittenPageIsFree) {
  World w = MakeWorld(1024, 64);
  BlockFtl ftl(w.env);
  EXPECT_DOUBLE_EQ(ftl.ReadPage(500), 0.0);
  ftl.WritePage(512);  // Same logical block region untouched elsewhere.
  EXPECT_DOUBLE_EQ(ftl.ReadPage(513), 0.0);  // Mapped block, unwritten slot.
  EXPECT_GT(ftl.ReadPage(512), 0.0);
}

TEST(BlockFtlTest, ConsistencyUnderChurn) {
  World w = MakeWorld(1024, 64);
  BlockFtl ftl(w.env);
  auto written = testing::DriveRandomOps(ftl, 1024, 3000, 0.7, 11);
  for (const auto& [lpn, _] : written) {
    const Ppn ppn = ftl.Probe(lpn);
    ASSERT_NE(ppn, kInvalidPpn);
    EXPECT_EQ(w.flash->OobTag(ppn), lpn);
  }
}

}  // namespace
}  // namespace tpftl
