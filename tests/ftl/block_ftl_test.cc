#include "src/ftl/block_ftl.h"

#include <gtest/gtest.h>

#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::MakeWorld;
using testing::World;

TEST(BlockFtlTest, SequentialFillNeedsNoMerges) {
  World w = MakeWorld(1024, 64);
  BlockFtl ftl(w.env);
  for (Lpn lpn = 0; lpn < 1024; ++lpn) {
    ftl.WritePage(lpn);
  }
  EXPECT_EQ(ftl.stats().gc_data_blocks, 0u);
  EXPECT_EQ(w.flash->stats().page_writes, 1024u);
  EXPECT_DOUBLE_EQ(ftl.stats().write_amplification(), 1.0);
}

TEST(BlockFtlTest, PagesLandAtFixedOffsets) {
  World w = MakeWorld(1024, 64);
  BlockFtl ftl(w.env);
  ftl.WritePage(18);  // Block 1, offset 2 in 16-page blocks.
  const Ppn ppn = ftl.Probe(18);
  ASSERT_NE(ppn, kInvalidPpn);
  EXPECT_EQ(w.flash->geometry().OffsetOf(ppn), 2u);
  EXPECT_EQ(w.flash->OobTag(ppn), 18u);
}

TEST(BlockFtlTest, OverwriteForcesCopyMerge) {
  World w = MakeWorld(1024, 64);
  BlockFtl ftl(w.env);
  // Fill one logical block, then overwrite one of its pages.
  for (Lpn lpn = 0; lpn < 16; ++lpn) {
    ftl.WritePage(lpn);
  }
  const Ppn before = ftl.Probe(0);
  ftl.WritePage(5);
  EXPECT_EQ(ftl.stats().gc_data_blocks, 1u);
  EXPECT_EQ(ftl.stats().gc_data_migrations, 15u);  // All survivors relocated.
  EXPECT_EQ(w.flash->stats().block_erases, 1u);
  // Every page of the logical block remains mapped and offset-stable.
  for (Lpn lpn = 0; lpn < 16; ++lpn) {
    const Ppn ppn = ftl.Probe(lpn);
    ASSERT_NE(ppn, kInvalidPpn);
    EXPECT_EQ(w.flash->geometry().OffsetOf(ppn), lpn);
    EXPECT_EQ(w.flash->OobTag(ppn), lpn);
  }
  EXPECT_NE(ftl.Probe(0), before);  // Whole block relocated.
}

TEST(BlockFtlTest, RandomOverwritesAmplifyWrites) {
  World w = MakeWorld(1024, 64);
  BlockFtl ftl(w.env);
  testing::DriveRandomOps(ftl, 1024, 2000, 1.0, 3);
  // Random writes at block granularity are catastrophic (§2.1): most writes
  // trigger a 16-page merge.
  EXPECT_GT(ftl.stats().write_amplification(), 4.0);
}

TEST(BlockFtlTest, ReadOfUnwrittenPageIsFree) {
  World w = MakeWorld(1024, 64);
  BlockFtl ftl(w.env);
  EXPECT_DOUBLE_EQ(ftl.ReadPage(500), 0.0);
  ftl.WritePage(512);  // Same logical block region untouched elsewhere.
  EXPECT_DOUBLE_EQ(ftl.ReadPage(513), 0.0);  // Mapped block, unwritten slot.
  EXPECT_GT(ftl.ReadPage(512), 0.0);
}

TEST(BlockFtlTest, ConsistencyUnderChurn) {
  World w = MakeWorld(1024, 64);
  BlockFtl ftl(w.env);
  auto written = testing::DriveRandomOps(ftl, 1024, 3000, 0.7, 11);
  for (const auto& [lpn, _] : written) {
    const Ppn ppn = ftl.Probe(lpn);
    ASSERT_NE(ppn, kInvalidPpn);
    EXPECT_EQ(w.flash->OobTag(ppn), lpn);
  }
}

}  // namespace
}  // namespace tpftl
