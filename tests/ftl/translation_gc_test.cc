// Translation-block garbage collection (§3.1's Ngct/Nmt path): heavy dirty
// writeback traffic relocates translation pages until translation blocks
// must be collected; the GTD must follow every relocation.

#include <gtest/gtest.h>

#include "src/ftl/dftl.h"
#include "src/util/rng.h"
#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::MakeWorld;
using testing::World;

TEST(TranslationGcTest, TranslationBlocksAreCollectedUnderWritebackPressure) {
  // Tiny cache → constant dirty evictions → translation pages rewritten
  // constantly → translation pool churns.
  World w = MakeWorld(1024, /*cache_bytes=*/32 + 64, /*total_blocks=*/96);
  Dftl ftl(w.env);
  Rng rng(9);
  for (int i = 0; i < 20000; ++i) {
    ftl.WritePage(rng.Below(1024));
  }
  const AtStats& s = ftl.stats();
  EXPECT_GT(s.gc_trans_blocks, 0u);
  EXPECT_GT(s.gc_trans_migrations, 0u);
  // Translation migrations are part of the translation write/read totals.
  EXPECT_GE(s.trans_writes_gc, s.gc_trans_migrations);
  EXPECT_GE(s.trans_reads_gc, s.gc_trans_migrations);
}

TEST(TranslationGcTest, GtdStaysCoherentAcrossTranslationGc) {
  World w = MakeWorld(1024, 32 + 64, 96);
  Dftl ftl(w.env);
  Rng rng(10);
  for (int i = 0; i < 20000; ++i) {
    ftl.WritePage(rng.Below(1024));
  }
  ASSERT_GT(ftl.stats().gc_trans_blocks, 0u);
  // Every GTD entry points at a valid flash page OOB-tagged with its VTPN.
  const TranslationStore& store = ftl.translation_store();
  for (Vtpn vtpn = 0; vtpn < store.translation_pages(); ++vtpn) {
    const Ptpn ptpn = store.gtd().Lookup(vtpn);
    ASSERT_NE(ptpn, kInvalidPtpn);
    ASSERT_EQ(w.flash->StateOf(ptpn), PageState::kValid);
    ASSERT_EQ(w.flash->OobTag(ptpn), vtpn);
  }
  // And exactly one valid translation page exists per VTPN.
  uint64_t valid_translation_pages = 0;
  for (BlockId b = 0; b < w.geometry.total_blocks; ++b) {
    if (ftl.block_manager().PoolOf(b) != BlockPool::kTranslation) {
      continue;
    }
    for (uint64_t off = 0; off < w.geometry.pages_per_block; ++off) {
      if (w.flash->StateOf(w.geometry.PpnOf(b, off)) == PageState::kValid) {
        ++valid_translation_pages;
      }
    }
  }
  EXPECT_EQ(valid_translation_pages, store.translation_pages());
}

TEST(TranslationGcTest, MappingsSurviveTranslationGc) {
  World w = MakeWorld(1024, 32 + 64, 96);
  Dftl ftl(w.env);
  Rng rng(11);
  std::vector<bool> written(1024, false);
  for (int i = 0; i < 20000; ++i) {
    const Lpn lpn = rng.Below(1024);
    ftl.WritePage(lpn);
    written[lpn] = true;
  }
  ASSERT_GT(ftl.stats().gc_trans_blocks, 0u);
  for (Lpn lpn = 0; lpn < 1024; ++lpn) {
    if (!written[lpn]) {
      continue;
    }
    const Ppn ppn = ftl.Probe(lpn);
    ASSERT_NE(ppn, kInvalidPpn);
    ASSERT_EQ(w.flash->OobTag(ppn), lpn);
  }
}

}  // namespace
}  // namespace tpftl
