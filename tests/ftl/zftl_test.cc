#include "src/ftl/zftl.h"

#include <gtest/gtest.h>

#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::MakeWorld;
using testing::World;

// GTD 32 B + 700 B budget → tier-2: one 512 B page; tier-1: 23 × 8 B entries.
World SmallZftlWorld() { return MakeWorld(1024, /*cache_bytes=*/732); }

ZftlOptions FourZones() {
  ZftlOptions o;
  o.zones = 4;  // 256 pages (2 translation pages) per zone.
  return o;
}

TEST(ZftlTest, CapacitySplit) {
  World w = SmallZftlWorld();
  Zftl ftl(w.env, FourZones());
  EXPECT_EQ(ftl.zone_count(), 4u);
  EXPECT_EQ(ftl.tier1_capacity(), 23u);
}

TEST(ZftlTest, Tier2ServesActiveTranslationPage) {
  World w = SmallZftlWorld();
  Zftl ftl(w.env, FourZones());
  ftl.ReadPage(0);  // Miss loads TP 0 into tier-2.
  EXPECT_EQ(ftl.stats().misses, 1u);
  const uint64_t reads_before = w.flash->stats().page_reads;
  ftl.ReadPage(50);  // Same translation page, same zone → tier-2 hit.
  EXPECT_EQ(ftl.stats().hits, 1u);
  EXPECT_EQ(w.flash->stats().page_reads, reads_before);
}

TEST(ZftlTest, FirstAccessIsNotAZoneSwitch) {
  World w = SmallZftlWorld();
  Zftl ftl(w.env, FourZones());
  ftl.ReadPage(0);
  EXPECT_EQ(ftl.zone_switches(), 0u);
  EXPECT_EQ(ftl.active_zone(), 0u);
}

TEST(ZftlTest, CrossZoneAccessSwitchesAndFlushes) {
  World w = SmallZftlWorld();
  Zftl ftl(w.env, FourZones());
  ftl.WritePage(3);  // Zone 0; dirty state in cache.
  const Ppn mapped = ftl.Probe(3);
  ftl.ReadPage(600);  // Zone 2: switch — all zone-0 state must flush.
  EXPECT_EQ(ftl.zone_switches(), 1u);
  EXPECT_EQ(ftl.active_zone(), 2u);
  // The dirty mapping for LPN 3 was persisted during the switch.
  EXPECT_EQ(ftl.translation_store().Persisted(3), mapped);
  EXPECT_EQ(ftl.Probe(3), mapped);
}

TEST(ZftlTest, ZonePingPongIsCumbersome) {
  // The §2.2 critique: alternating zones incurs constant switch overhead.
  World w = SmallZftlWorld();
  Zftl ftl(w.env, FourZones());
  for (int i = 0; i < 10; ++i) {
    ftl.ReadPage(0);    // Zone 0.
    ftl.ReadPage(600);  // Zone 2.
  }
  EXPECT_EQ(ftl.zone_switches(), 19u);
  // Every access after the first is a fresh miss: nothing survives a switch.
  EXPECT_EQ(ftl.stats().hits, 0u);
}

TEST(ZftlTest, Tier1BatchEviction) {
  World w = SmallZftlWorld();
  Zftl ftl(w.env, FourZones());
  // Tier-1 is fed by misses; alternating between zone 0's two translation
  // pages makes every write a tier-2 swap miss, so each inserts one dirty
  // tier-1 entry. The 24th insert overflows the 23-entry tier and must
  // batch-evict the LRU entry's whole translation-page group with a single
  // translation write.
  for (Lpn i = 0; i < 12; ++i) {
    ftl.WritePage(i);        // TP 0, zone 0.
    ftl.WritePage(128 + i);  // TP 1, zone 0.
  }
  EXPECT_GE(ftl.stats().evictions, 12u);    // The entire TP-0 group left.
  EXPECT_EQ(ftl.stats().dirty_evictions, 1u);  // ...as ONE batched writeback.
  EXPECT_EQ(ftl.stats().trans_writes_at, 1u);
  // Flushed mappings are persisted and still resolvable.
  EXPECT_EQ(ftl.translation_store().Persisted(0), ftl.Probe(0));
}

TEST(ZftlTest, ConsistencyUnderChurn) {
  World w = SmallZftlWorld();
  Zftl ftl(w.env, FourZones());
  auto written = testing::DriveRandomOps(ftl, 1024, 4000, 0.7, 53);
  for (const auto& [lpn, _] : written) {
    const Ppn ppn = ftl.Probe(lpn);
    ASSERT_NE(ppn, kInvalidPpn);
    ASSERT_EQ(w.flash->OobTag(ppn), lpn);
    ASSERT_EQ(w.flash->StateOf(ppn), PageState::kValid);
  }
}

TEST(ZftlTest, FlashWriteAttributionBalances) {
  World w = SmallZftlWorld();
  Zftl ftl(w.env, FourZones());
  testing::DriveRandomOps(ftl, 1024, 3000, 0.8, 59);
  const AtStats& s = ftl.stats();
  EXPECT_EQ(w.flash->stats().page_writes,
            s.host_page_writes + s.trans_writes_at + s.trans_writes_gc + s.gc_data_migrations);
}

}  // namespace
}  // namespace tpftl
