#include "src/ftl/heat.h"

#include <gtest/gtest.h>

namespace tpftl {
namespace {

// 256 LPNs → a 64-write decay window (the logical_pages / 4 floor).
constexpr uint64_t kPages = 256;
constexpr uint64_t kWindow = 64;

TEST(HeatClassifierTest, UnwrittenPagesAreColdest) {
  HeatClassifier heat(kPages, 3);
  for (Lpn lpn = 0; lpn < kPages; lpn += 17) {
    EXPECT_EQ(heat.StreamOf(lpn), 2u);
  }
}

TEST(HeatClassifierTest, RepeatWritesClimbTheTiers) {
  HeatClassifier heat(kPages, 3);
  // Thresholds double per tier: 2 writes reach stream 1, 4 reach stream 0.
  EXPECT_EQ(heat.OnWrite(9), 2u);
  EXPECT_EQ(heat.OnWrite(9), 1u);
  EXPECT_EQ(heat.OnWrite(9), 1u);
  EXPECT_EQ(heat.OnWrite(9), 0u);
  EXPECT_EQ(heat.StreamOf(9), 0u);
  // A single write elsewhere stays cold.
  EXPECT_EQ(heat.OnWrite(100), 2u);
}

TEST(HeatClassifierTest, StreamOfDoesNotRecordHeat) {
  HeatClassifier heat(kPages, 2);
  heat.OnWrite(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(heat.StreamOf(5), 1u);  // Classification never self-heats.
  }
  EXPECT_EQ(heat.OnWrite(5), 0u);  // The second real write goes hot.
}

TEST(HeatClassifierTest, IdleLpnsDecayBackToCold) {
  HeatClassifier heat(kPages, 2);
  heat.OnWrite(7);
  heat.OnWrite(7);
  ASSERT_EQ(heat.StreamOf(7), 0u);
  // Let a full epoch of unrelated traffic pass: the count halves per epoch,
  // so after one window LPN 7 drops below the hot threshold.
  for (uint64_t i = 0; i < kWindow; ++i) {
    heat.OnWrite(200);
  }
  EXPECT_EQ(heat.StreamOf(7), 1u);
  // Eight epochs later the count is fully zeroed, stamp wrap included.
  for (uint64_t i = 0; i < 8 * kWindow; ++i) {
    heat.OnWrite(201);
  }
  EXPECT_EQ(heat.StreamOf(7), 1u);
}

TEST(HeatClassifierTest, CountSaturatesWithoutOverflow) {
  HeatClassifier heat(kPages, 4);
  for (int i = 0; i < 1000; ++i) {
    heat.OnWrite(3);
  }
  EXPECT_EQ(heat.StreamOf(3), 0u);  // Pinned hottest, no 8-bit wrap to cold.
}

TEST(HeatClassifierTest, SingleStreamAlwaysReturnsZero) {
  HeatClassifier heat(kPages, 1);
  EXPECT_EQ(heat.OnWrite(0), 0u);
  EXPECT_EQ(heat.StreamOf(0), 0u);
  EXPECT_EQ(heat.StreamOf(42), 0u);
}

TEST(HeatClassifierTest, SparseBackingOnlyMaterializesTouchedSegments) {
  // TB-scale shape: a huge logical space with a small sparse segment size.
  const uint64_t logical = 1ULL << 32;
  HeatClassifier heat(logical, 2, /*sparse_segment_pages=*/4096);
  EXPECT_EQ(heat.bytes_used(), 0u);
  heat.OnWrite(0);
  heat.OnWrite(logical - 1);
  // Two touched segments, not four billion entries.
  EXPECT_EQ(heat.bytes_used(), 2u * 4096 * sizeof(uint16_t));
  EXPECT_EQ(heat.StreamOf(123456789), 1u);  // Untouched space reads cold.
}

}  // namespace
}  // namespace tpftl
