// Hot/cold stream separation and the wear-leveling policy layer: the
// BlockManager-level allocation/trigger mechanics, and the end-to-end
// promise that turning leveling on narrows the erase-count spread on a
// skewed churn workload (while leveling-off stays the legacy behavior).

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/ftl_factory.h"
#include "src/ftl/block_manager.h"
#include "src/testing/world.h"
#include "src/util/rng.h"

namespace tpftl {
namespace {

using testing::MakeWorld;
using testing::World;

TEST(WearLevelingTest, StreamsKeepSeparateActiveBlocks) {
  World w = MakeWorld();
  BlockManagerOptions options;
  options.data_streams = 2;
  BlockManager bm(w.flash.get(), /*gc_threshold=*/6, GcPolicy::kGreedy, 16, options);
  Ppn hot = kInvalidPpn;
  Ppn cold = kInvalidPpn;
  bm.Program(BlockPool::kData, /*oob_tag=*/1, &hot, /*stream=*/0);
  bm.Program(BlockPool::kData, /*oob_tag=*/2, &cold, /*stream=*/1);
  const FlashGeometry& g = w.flash->geometry();
  EXPECT_NE(g.BlockOf(hot), g.BlockOf(cold));
  // Streams interleave without sharing: each block fills only with its own
  // temperature.
  for (uint64_t i = 0; i < 10; ++i) {
    Ppn p = kInvalidPpn;
    bm.Program(BlockPool::kData, 10 + i, &p, i % 2 == 0 ? 0u : 1u);
    EXPECT_EQ(g.BlockOf(p), i % 2 == 0 ? g.BlockOf(hot) : g.BlockOf(cold));
  }
  const std::vector<uint64_t>& counts = bm.stream_write_counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 6u);
  EXPECT_EQ(counts[1], 6u);
  EXPECT_TRUE(bm.CheckInvariants());
}

TEST(WearLevelingTest, DynamicLevelingSteersAllocationByWear) {
  World w = MakeWorld();
  // Pre-wear the front of the device so the free list has a real gradient.
  for (BlockId b = 0; b < 8; ++b) {
    for (int e = 0; e < 5; ++e) {
      w.flash->EraseBlock(b);
    }
  }
  BlockManagerOptions options;
  options.data_streams = 2;
  options.dynamic_leveling = true;
  BlockManager bm(w.flash.get(), 6, GcPolicy::kGreedy, 16, options);
  const FlashGeometry& g = w.flash->geometry();
  // Hot data gets the least-worn free block; the coldest stream gets the
  // most-worn one, parking rarely-rewritten data on tired blocks.
  Ppn hot = kInvalidPpn;
  bm.Program(BlockPool::kData, 1, &hot, /*stream=*/0);
  EXPECT_EQ(w.flash->block(g.BlockOf(hot)).erase_count(), 0u);
  Ppn cold = kInvalidPpn;
  bm.Program(BlockPool::kData, 2, &cold, /*stream=*/1);
  EXPECT_EQ(w.flash->block(g.BlockOf(cold)).erase_count(), 5u);
  // Translation pages churn like hot data: least-worn again.
  Ppn trans = kInvalidPpn;
  bm.Program(BlockPool::kTranslation, 0, &trans);
  EXPECT_EQ(w.flash->block(g.BlockOf(trans)).erase_count(), 0u);
}

TEST(WearLevelingTest, FifoAllocationIgnoresWearWhenLevelingOff) {
  World w = MakeWorld();
  for (BlockId b = 0; b < 8; ++b) {
    for (int e = 0; e < 5; ++e) {
      w.flash->EraseBlock(b);
    }
  }
  BlockManager bm(w.flash.get(), 6, GcPolicy::kGreedy, 16, {});
  // Legacy FIFO: the first free block is the worn front block, wear or not.
  Ppn p = kInvalidPpn;
  bm.Program(BlockPool::kData, 1, &p);
  EXPECT_EQ(w.flash->geometry().BlockOf(p), 0u);
}

TEST(WearLevelingTest, StaticLevelTriggerTracksTheSpread) {
  World w = MakeWorld();
  const uint64_t per_block = w.flash->geometry().pages_per_block;
  // One far-ahead block sets max_erase_seen at construction.
  for (int e = 0; e < 6; ++e) {
    w.flash->EraseBlock(3);
  }
  BlockManagerOptions options;
  options.static_leveling = true;
  options.static_level_threshold = 4;
  BlockManager bm(w.flash.get(), 6, GcPolicy::kWearAware, 16, options);
  EXPECT_FALSE(bm.StaticLevelWanted());  // No candidates yet.
  // Retire one unworn block into the candidate pool: min candidate erase 0,
  // device max 6, spread 6 >= threshold 4 → migration wanted.
  for (uint64_t i = 0; i < per_block; ++i) {
    bm.Program(BlockPool::kData, i, nullptr);
  }
  ASSERT_GT(bm.candidate_count(), 0u);
  EXPECT_TRUE(bm.StaticLevelWanted());
  const BlockId victim = bm.StaticLevelVictim();
  ASSERT_NE(victim, kInvalidBlock);
  EXPECT_EQ(w.flash->block(victim).erase_count(), bm.MinCandidateErase());
  EXPECT_EQ(bm.max_erase_seen(), 6u);
}

TEST(WearLevelingTest, StaticLevelTriggerStaysOffWhenDisabled) {
  World w = MakeWorld();
  const uint64_t per_block = w.flash->geometry().pages_per_block;
  for (int e = 0; e < 20; ++e) {
    w.flash->EraseBlock(3);
  }
  BlockManager bm(w.flash.get(), 6, GcPolicy::kGreedy, 16, {});
  for (uint64_t i = 0; i < per_block; ++i) {
    bm.Program(BlockPool::kData, i, nullptr);
  }
  EXPECT_FALSE(bm.StaticLevelWanted());
}

// End-to-end: the same skewed churn, with and without the policy layer. The
// leveled run must spread erases more evenly (lower max-min gap), migrate at
// least one cold block, and split its writes across the streams.
TEST(WearLevelingTest, LevelingNarrowsEraseSpreadOnSkewedChurn) {
  const auto drive = [](World& w) {
    auto ftl = CreateFtl(FtlKind::kDftl, w.env);
    Rng rng(2026);
    for (uint64_t i = 0; i < 30000; ++i) {
      // 80% of writes hammer 10% of the space: a worst case for wear.
      const Lpn lpn = rng.Below(10) < 8 ? rng.Below(102) : rng.Below(1024);
      ftl->WritePage(lpn);
    }
    uint64_t lo = ~0ULL;
    uint64_t hi = 0;
    for (BlockId b = 0; b < w.flash->geometry().total_blocks; ++b) {
      const uint64_t e = w.flash->block(b).erase_count();
      lo = std::min(lo, e);
      hi = std::max(hi, e);
    }
    struct Result {
      uint64_t spread;
      AtStats stats;
      std::vector<uint64_t> stream_writes;
    };
    return Result{hi - lo, ftl->stats(), ftl->stream_write_counts()};
  };

  World off = MakeWorld();
  const auto base = drive(off);

  World on = MakeWorld();
  on.env.data_streams = 2;
  on.env.dynamic_leveling = true;
  on.env.static_leveling = true;
  on.env.static_level_threshold = 8;
  const auto leveled = drive(on);

  EXPECT_LT(leveled.spread, base.spread)
      << "leveling failed to narrow the erase spread (off " << base.spread
      << ", on " << leveled.spread << ")";
  EXPECT_GT(leveled.stats.static_level_blocks, 0u);
  EXPECT_EQ(base.stats.static_level_blocks, 0u);
  ASSERT_EQ(leveled.stream_writes.size(), 2u);
  EXPECT_GT(leveled.stream_writes[0], 0u);
  EXPECT_GT(leveled.stream_writes[1], 0u);
  // The skewed-hot set dominates the hot stream.
  EXPECT_GT(leveled.stream_writes[0], leveled.stream_writes[1]);
}

// End-of-life: with a tiny per-block erase budget the device must latch
// worn_out() instead of CHECK-dying in the allocator, and must have retired
// real blocks on the way down.
TEST(WearLevelingTest, EraseBudgetExhaustionLatchesWornOut) {
  World w = MakeWorld(/*logical_pages=*/1024, /*cache_bytes=*/2048,
                      /*total_blocks=*/96, /*gc_threshold=*/6, /*dies=*/1,
                      /*max_erase_cycles=*/6);
  auto ftl = CreateFtl(FtlKind::kDftl, w.env);
  Rng rng(7);
  uint64_t writes = 0;
  for (uint64_t i = 0; i < 2000000 && !ftl->worn_out(); ++i) {
    ftl->WritePage(rng.Below(512));
    ++writes;
  }
  ASSERT_TRUE(ftl->worn_out()) << "device never reached end-of-life";
  EXPECT_GT(writes, 1000u) << "died absurdly early";
  // Latched: still worn after reads (which stay safe on a dead device).
  ftl->ReadPage(1);
  EXPECT_TRUE(ftl->worn_out());
}

}  // namespace
}  // namespace tpftl
