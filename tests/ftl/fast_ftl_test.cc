#include "src/ftl/fast_ftl.h"

#include <gtest/gtest.h>

#include "src/ftl/optimal_ftl.h"
#include "src/testing/world.h"

namespace tpftl {
namespace {

using testing::MakeWorld;
using testing::World;

TEST(FastFtlTest, SequentialFillStaysInPlace) {
  World w = MakeWorld(1024, 64);
  FastFtl ftl(w.env);
  for (Lpn lpn = 0; lpn < 1024; ++lpn) {
    ftl.WritePage(lpn);
  }
  EXPECT_EQ(ftl.full_merges(), 0u);
  EXPECT_EQ(w.flash->stats().page_writes, 1024u);
  EXPECT_DOUBLE_EQ(ftl.stats().write_amplification(), 1.0);
  // Every page at its home offset.
  for (Lpn lpn = 0; lpn < 1024; lpn += 117) {
    const Ppn ppn = ftl.Probe(lpn);
    ASSERT_NE(ppn, kInvalidPpn);
    EXPECT_EQ(w.flash->geometry().OffsetOf(ppn), lpn % 16);
  }
}

TEST(FastFtlTest, OverwriteGoesToLogBlock) {
  World w = MakeWorld(1024, 64);
  FastFtl ftl(w.env);
  for (Lpn lpn = 0; lpn < 16; ++lpn) {
    ftl.WritePage(lpn);
  }
  const Ppn in_place = ftl.Probe(5);
  ftl.WritePage(5);  // Slot taken → log append, no merge yet.
  const Ppn in_log = ftl.Probe(5);
  EXPECT_NE(in_log, in_place);
  EXPECT_EQ(w.flash->StateOf(in_place), PageState::kInvalid);
  EXPECT_EQ(ftl.full_merges(), 0u);
  EXPECT_EQ(w.flash->OobTag(in_log), 5u);
}

TEST(FastFtlTest, RepeatedOverwritesSupersedeLogCopies) {
  World w = MakeWorld(1024, 64);
  FastFtl ftl(w.env);
  ftl.WritePage(3);
  Ppn prev = ftl.Probe(3);
  for (int i = 0; i < 10; ++i) {
    ftl.WritePage(3);
    const Ppn cur = ftl.Probe(3);
    EXPECT_NE(cur, prev);
    EXPECT_EQ(w.flash->StateOf(prev), PageState::kInvalid);
    EXPECT_EQ(w.flash->StateOf(cur), PageState::kValid);
    prev = cur;
  }
}

TEST(FastFtlTest, LogExhaustionTriggersFullMerge) {
  World w = MakeWorld(1024, 64);
  FastFtl ftl(w.env);
  for (Lpn lpn = 0; lpn < 1024; ++lpn) {
    ftl.WritePage(lpn);
  }
  // Random-ish overwrites across many logical blocks until the log wraps.
  for (Lpn lpn = 0; lpn < 1024; lpn += 7) {
    ftl.WritePage(lpn);
  }
  EXPECT_GT(ftl.full_merges(), 0u);
  EXPECT_GT(ftl.stats().gc_data_migrations, 0u);
  // All mappings remain correct.
  for (Lpn lpn = 0; lpn < 1024; ++lpn) {
    const Ppn ppn = ftl.Probe(lpn);
    ASSERT_NE(ppn, kInvalidPpn);
    ASSERT_EQ(w.flash->OobTag(ppn), lpn);
    ASSERT_EQ(w.flash->StateOf(ppn), PageState::kValid);
  }
}

TEST(FastFtlTest, SequentialRewriteOfOneBlockSwitchMerges) {
  World w = MakeWorld(1024, 64);
  FastFtl ftl(w.env);
  // Fill block 2 in place, then rewrite it sequentially: all 16 pages land
  // in one log block in home order → switch merge on reclaim.
  for (Lpn lpn = 32; lpn < 48; ++lpn) {
    ftl.WritePage(lpn);
  }
  for (Lpn lpn = 32; lpn < 48; ++lpn) {
    ftl.WritePage(lpn);  // Log block now exactly this logical block.
  }
  // Force reclaims by filling the remaining log capacity with other traffic.
  for (int round = 0; round < 8; ++round) {
    for (Lpn lpn = 100; lpn < 116; ++lpn) {
      ftl.WritePage(lpn);
    }
  }
  EXPECT_GT(ftl.switch_merges(), 0u);
  for (Lpn lpn = 32; lpn < 48; ++lpn) {
    const Ppn ppn = ftl.Probe(lpn);
    ASSERT_NE(ppn, kInvalidPpn);
    ASSERT_EQ(w.flash->OobTag(ppn), lpn);
  }
}

TEST(FastFtlTest, RandomWritesAreWorseThanPageLevel) {
  // The §2.1 claim: hybrids degrade under random writes while page-level
  // mapping stays cheap.
  World w = MakeWorld(1024, 64, /*total_blocks=*/96);
  FastFtl fast(w.env);
  testing::DriveRandomOps(fast, 1024, 3000, 1.0, 21);
  World w2 = MakeWorld(1024, 64, 96);
  OptimalFtl optimal(w2.env);
  testing::DriveRandomOps(optimal, 1024, 3000, 1.0, 21);
  EXPECT_GT(fast.stats().write_amplification(),
            optimal.stats().write_amplification() * 1.5);
}

TEST(FastFtlTest, ConsistencyUnderChurn) {
  World w = MakeWorld(1024, 64, 96);
  FastFtl ftl(w.env);
  auto written = testing::DriveRandomOps(ftl, 1024, 5000, 0.7, 29);
  for (const auto& [lpn, _] : written) {
    const Ppn ppn = ftl.Probe(lpn);
    ASSERT_NE(ppn, kInvalidPpn);
    ASSERT_EQ(w.flash->OobTag(ppn), lpn);
    ASSERT_EQ(w.flash->StateOf(ppn), PageState::kValid);
  }
}

TEST(FastFtlTest, FlashWriteAttributionBalances) {
  World w = MakeWorld(1024, 64, 96);
  FastFtl ftl(w.env);
  testing::DriveRandomOps(ftl, 1024, 4000, 0.8, 31);
  const AtStats& s = ftl.stats();
  EXPECT_EQ(w.flash->stats().page_writes, s.host_page_writes + s.gc_data_migrations);
}

TEST(FastFtlTest, LogBlockBudgetFromOptions) {
  World w = MakeWorld(1024, 64, 96);
  FastFtlOptions options;
  options.log_block_fraction = 0.10;  // 64 logical blocks → 6 log blocks.
  FastFtl ftl(w.env, options);
  EXPECT_EQ(ftl.log_block_limit(), 6u);
}

}  // namespace
}  // namespace tpftl
