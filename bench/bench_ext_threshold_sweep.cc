// Extension — selective-prefetch threshold sweep.
//
// §4.3: "we empirically found that most sequential accesses in workloads can
// be well recognized when we set the threshold as 3." This harness redoes
// that calibration: TPFTL with thresholds 1..8 on a sequential-leaning and a
// random-leaning workload, reporting hit ratio, prefetch activations, and
// translation reads. Too small a threshold flaps on random traffic; too
// large reacts slowly to real sequential phases.

#include "bench/bench_common.h"

int main() {
  using namespace tpftl;
  using namespace tpftl::bench;

  const uint64_t requests = RequestsFromEnv();
  for (const WorkloadConfig& workload : {MsrTsProfile(requests), Financial1Profile(requests)}) {
    Table table("Selective-prefetch threshold sweep — " + workload.name + " (" +
                std::to_string(requests) + " requests)");
    table.SetColumns({"threshold", "hit ratio", "trans reads", "resp(us)"});
    for (const int threshold : {1, 2, 3, 4, 6, 8}) {
      ExperimentConfig config;
      config.workload = workload;
      config.ftl_kind = FtlKind::kTpftl;
      config.tpftl_options.selective_threshold = threshold;
      std::cerr << "  threshold " << threshold << " on " << workload.name << " ..." << std::endl;
      const RunReport r = RunExperiment(config);
      table.AddRow({std::to_string(threshold), FormatDouble(r.hit_ratio, 4),
                    std::to_string(r.trans_reads), FormatDouble(r.mean_response_us, 0)});
    }
    Emit(table);
  }
  return 0;
}
