// Extension — selective-prefetch threshold sweep.
//
// §4.3: "we empirically found that most sequential accesses in workloads can
// be well recognized when we set the threshold as 3." This harness redoes
// that calibration: TPFTL with thresholds 1..8 on a sequential-leaning and a
// random-leaning workload, reporting hit ratio, prefetch activations, and
// translation reads. Too small a threshold flaps on random traffic; too
// large reacts slowly to real sequential phases.

#include "bench/bench_common.h"

int main() {
  using namespace tpftl;
  using namespace tpftl::bench;

  const uint64_t requests = RequestsFromEnv();
  const std::vector<WorkloadConfig> workloads = {MsrTsProfile(requests),
                                                 Financial1Profile(requests)};
  const std::vector<int> thresholds = {1, 2, 3, 4, 6, 8};

  std::vector<ExperimentConfig> configs;
  for (const WorkloadConfig& workload : workloads) {
    for (const int threshold : thresholds) {
      TpftlOptions options;
      options.selective_threshold = threshold;
      configs.push_back(MakeConfig(workload, FtlKind::kTpftl, options));
    }
  }
  const std::vector<RunReport> results = RunAll(configs);

  for (size_t w = 0; w < workloads.size(); ++w) {
    Table table("Selective-prefetch threshold sweep — " + workloads[w].name + " (" +
                std::to_string(requests) + " requests)");
    table.SetColumns({"threshold", "hit ratio", "trans reads", "resp(us)"});
    for (size_t t = 0; t < thresholds.size(); ++t) {
      const RunReport& r = results[w * thresholds.size() + t];
      table.AddRow({std::to_string(thresholds[t]), FormatDouble(r.hit_ratio, 4),
                    std::to_string(r.trans_reads), FormatDouble(r.mean_response_us, 0)});
    }
    Emit(table);
  }
  return 0;
}
