// Table 2 — deviations of DFTL from the optimal FTL.
//
// Paper values: performance loss 52.6–63.4 %, erasure increase 30.4–56.2 %
// across the four workloads ("extra operations lead to an average of 58.4 %
// performance loss and 42.3 % block erasure increase", §3.3). This harness
// reports the same two rows for the synthetic workload suite.

#include "bench/bench_common.h"

int main() {
  using namespace tpftl;
  using namespace tpftl::bench;

  const uint64_t requests = RequestsFromEnv();
  Table table("Table 2 — Deviations of DFTL from the optimal FTL (" + std::to_string(requests) +
              " requests/workload)");
  table.SetColumns({"Deviation", "Fin1", "Fin2", "ts", "src"});

  std::vector<ExperimentConfig> configs;
  for (const WorkloadConfig& workload : PaperWorkloads(requests)) {
    configs.push_back(MakeConfig(workload, FtlKind::kDftl));
    configs.push_back(MakeConfig(workload, FtlKind::kOptimal));
  }
  const std::vector<RunReport> results = RunAll(configs);

  std::vector<double> perf_loss;
  std::vector<double> erase_increase;
  for (size_t i = 0; i < results.size(); i += 2) {
    const RunReport& dftl = results[i];
    const RunReport& optimal = results[i + 1];
    perf_loss.push_back(100.0 * (dftl.mean_response_us - optimal.mean_response_us) /
                        dftl.mean_response_us);
    erase_increase.push_back(
        100.0 * (static_cast<double>(dftl.block_erases) - static_cast<double>(optimal.block_erases)) /
        static_cast<double>(dftl.block_erases));
  }

  auto to_cells = [](const std::string& label, const std::vector<double>& values) {
    std::vector<std::string> cells = {label};
    for (const double v : values) {
      cells.push_back(FormatDouble(v, 1) + "%");
    }
    return cells;
  };
  table.AddRow(to_cells("Performance", perf_loss));
  table.AddRow(to_cells("Erasure", erase_increase));
  Emit(table);
  return 0;
}
