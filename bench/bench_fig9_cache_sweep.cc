// Figures 8(c) and 9(a)–9(c) — impact of the mapping-cache size on TPFTL.
//
// Cache sizes are normalized to the full page-level mapping table (8 B per
// entry): 1/128 (the default of every other experiment) up to 1 (everything
// cached). Paper shapes: Prd falls to 0 and the hit ratio climbs to 100 % at
// full-table size; response time and write amplification improve
// monotonically; MSR-like workloads saturate early because their hit ratios
// are already high at 1/128.

#include "bench/bench_common.h"

int main() {
  using namespace tpftl;
  using namespace tpftl::bench;

  const uint64_t requests = RequestsFromEnv();
  const std::vector<uint64_t> divisors = {128, 64, 32, 16, 8, 4, 2, 1};
  const std::vector<WorkloadConfig> workloads = PaperWorkloads(requests);

  std::vector<ExperimentConfig> configs;
  for (const WorkloadConfig& workload : workloads) {
    for (const uint64_t divisor : divisors) {
      configs.push_back(
          MakeConfig(workload, FtlKind::kTpftl, {}, FullTableBytes(workload) / divisor));
    }
  }
  const std::vector<RunReport> results = RunAll(configs);

  struct Row {
    std::string workload;
    std::vector<RunReport> by_size;
  };
  std::vector<Row> rows;
  for (size_t w = 0; w < workloads.size(); ++w) {
    Row row;
    row.workload = workloads[w].name;
    for (size_t d = 0; d < divisors.size(); ++d) {
      row.by_size.push_back(results[w * divisors.size() + d]);
    }
    rows.push_back(std::move(row));
  }

  auto emit = [&](const std::string& title, auto metric, int decimals, bool normalize_to_full) {
    Table table(title + " (TPFTL, cache normalized to full table size)");
    std::vector<std::string> headers = {"Workload"};
    for (const uint64_t d : divisors) {
      headers.push_back("1/" + std::to_string(d));
    }
    table.SetColumns(std::move(headers));
    for (const Row& row : rows) {
      std::vector<std::string> cells = {row.workload};
      const double full = metric(row.by_size.back());
      for (const RunReport& r : row.by_size) {
        const double value = metric(r);
        cells.push_back(
            FormatDouble(normalize_to_full ? Normalized(value, full) : value, decimals));
      }
      table.AddRow(std::move(cells));
    }
    Emit(table);
  };

  emit("Figure 8(c) — Probability of replacing a dirty entry vs cache size",
       [](const RunReport& r) { return r.prd; }, 3, false);
  emit("Figure 9(a) — Cache hit ratio vs cache size",
       [](const RunReport& r) { return r.hit_ratio; }, 3, false);
  emit("Figure 9(b) — Response time vs cache size (normalized to full-table cache)",
       [](const RunReport& r) { return r.mean_response_us; }, 3, true);
  emit("Figure 9(c) — Write amplification vs cache size",
       [](const RunReport& r) { return r.write_amplification; }, 2, false);
  return 0;
}
