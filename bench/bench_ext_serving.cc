// Extension — open-loop trace-serving harness (not a paper artifact).
//
// Every other bench replays a fixed request list as fast as the device can
// drain it, which measures capacity but says nothing about sustained
// production traffic. This harness drives the nine FTLs open loop
// (src/ssd/runner.h RunServing) under multi-tenant arrival processes
// (src/workload/arrival.h + tenant_mix.h) and reports offered-vs-achieved
// rate, per-tenant latency quantiles, and the drop/backlog picture:
//
//   1. diurnal_3tenant — an OLTP tenant (YCSB-A, zipf 0.99) on a diurnal
//      rate curve whose peak exceeds the device's capacity, a sequential
//      ingest streamer, and a TRIM-heavy filesystem-aging tenant, each on
//      its own LBA region. No admission control: overload shows up as
//      queue backlog, not drops.
//   2. burst — an on/off tenant whose ON-rate (20k rps) is far beyond any
//      contender's capacity, next to a steady read-mostly victim tenant,
//      with a 50 ms admission-queue bound. Every FTL drops during bursts;
//      the victim's drop/latency numbers show the cross-tenant
//      interference.
//
//   bench_ext_serving [--json=F] [--chrome-trace=F]
// Knobs: TPFTL_BENCH_REQUESTS — offered requests per scenario (default
//        45000, split across tenants). --chrome-trace dumps the first
//        traced requests of TPFTL's diurnal run with one lane per tenant.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/obs/trace_event.h"
#include "src/ssd/runner.h"
#include "src/util/assert.h"
#include "src/util/str.h"
#include "src/workload/arrival.h"
#include "src/workload/tenant_mix.h"

namespace tpftl {
namespace {

constexpr uint64_t kTenantSpaceBytes = 16ULL << 20;

struct Scenario {
  std::string name;
  MicroSec max_queue_us = 0.0;
  std::vector<TenantSpec> specs;
};

// Aggregate mean offered rate ~120 rps: below the point-op capacity of
// every contender but, with the streamer/aging tenants' multi-page
// requests, close enough to aggregate capacity that the diurnal peak
// (1.5× the mean) pushes the slower FTLs into visible backlog.
Scenario DiurnalScenario(uint64_t requests) {
  Scenario s;
  s.name = "diurnal_3tenant";
  s.max_queue_us = 0.0;  // No admission control: backlog, not drops.
  const uint64_t oltp_requests = requests * 70 / 100;
  const uint64_t stream_requests = requests * 15 / 100;
  const uint64_t aging_requests = requests - oltp_requests - stream_requests;
  const double span_us = static_cast<double>(requests) * 8333.0;

  TenantSpec oltp = YcsbTenant('A', kTenantSpaceBytes, oltp_requests, 101);
  oltp.name = "oltp";
  oltp.arrival.kind = ArrivalKind::kDiurnal;
  oltp.arrival.seed = 11;
  oltp.arrival.rate_rps = static_cast<double>(oltp_requests) / span_us * 1e6;
  oltp.arrival.day_us = span_us / 3.0;  // Three simulated "days" per run.
  oltp.arrival.peak_to_trough = 4.0;
  s.specs.push_back(oltp);

  TenantSpec stream =
      StreamerTenant(kTenantSpaceBytes, stream_requests, 202);
  stream.lba_offset_bytes = kTenantSpaceBytes;
  stream.arrival.kind = ArrivalKind::kPoisson;
  stream.arrival.seed = 22;
  stream.arrival.rate_rps =
      static_cast<double>(stream_requests) / span_us * 1e6;
  s.specs.push_back(stream);

  TenantSpec aging = AgingTenant(kTenantSpaceBytes, aging_requests, 303);
  aging.lba_offset_bytes = 2 * kTenantSpaceBytes;
  aging.arrival.kind = ArrivalKind::kPoisson;
  aging.arrival.seed = 33;
  aging.arrival.rate_rps =
      static_cast<double>(aging_requests) / span_us * 1e6;
  s.specs.push_back(aging);
  return s;
}

// The burst tenant's ON-rate (20k rps of YCSB-A point ops) exceeds every
// contender's capacity several times over, so the 50 ms admission bound
// guarantees drops during bursts — for the burster *and* for the steady
// victim that shares the queue.
Scenario BurstScenario(uint64_t requests) {
  Scenario s;
  s.name = "burst";
  s.max_queue_us = 50'000.0;
  const uint64_t burst_requests = requests * 80 / 100;
  const uint64_t victim_requests = requests - burst_requests;

  TenantSpec burst = YcsbTenant('A', kTenantSpaceBytes, burst_requests, 404);
  burst.name = "burst";
  burst.arrival.kind = ArrivalKind::kOnOff;
  burst.arrival.seed = 44;
  burst.arrival.rate_rps = 20'000.0;
  burst.arrival.mean_on_us = 100'000.0;
  burst.arrival.mean_off_us = 400'000.0;
  burst.arrival.off_rate_rps = 0.0;
  s.specs.push_back(burst);

  TenantSpec victim =
      YcsbTenant('C', kTenantSpaceBytes, victim_requests, 505);
  victim.name = "victim";
  victim.lba_offset_bytes = kTenantSpaceBytes;
  victim.arrival.kind = ArrivalKind::kPoisson;
  victim.arrival.seed = 55;
  // Matches the burster's effective span (duty cycle 0.2 → 4k rps), so
  // both tenants stay active for the whole run.
  victim.arrival.rate_rps = 1000.0;
  s.specs.push_back(victim);
  return s;
}

struct ServingRow {
  std::string ftl;
  ServingReport report;
};

ServingRow RunOne(const Scenario& scenario, FtlKind kind, uint64_t requests,
                  const std::string& chrome_trace_path) {
  TenantMixSource mix(scenario.specs);

  ExperimentConfig config;
  config.workload.name = scenario.name;
  config.workload.address_space_bytes = mix.RequiredDeviceBytes();
  config.workload.num_requests = requests;
  config.ftl_kind = kind;
  config.trace_phases = true;  // Per-tenant GC-time shares.
  const bool want_trace = !chrome_trace_path.empty();
  if (want_trace) {
    config.trace_span_requests = 256;
  }

  ServingConfig serving;
  serving.warmup_requests = requests / 10;
  serving.max_queue_us = scenario.max_queue_us;
  serving.tenant_count = mix.tenant_count();
  serving.tenant_names = mix.TenantNames();

  // The span log fills over the first traced requests after warm-up; dump
  // it once full, from inside the run (the device dies with RunServing).
  bool trace_written = false;
  RunObserver observer;
  if (want_trace) {
    observer = [&](const Ssd& ssd, uint64_t index) {
      if (!trace_written && index >= 2 * config.trace_span_requests) {
        std::ofstream out(chrome_trace_path);
        TPFTL_CHECK_MSG(static_cast<bool>(out),
                        "cannot write the chrome trace file");
        obs::WriteChromeTrace(out, ssd.trace_log(),
                              std::string(FtlKindName(kind)) + " " +
                                  scenario.name);
        trace_written = true;
      }
    };
  }

  ServingRow row;
  row.ftl = FtlKindName(kind);
  row.report = RunServing(config, mix, serving, observer);
  return row;
}

std::string JsonTenant(const TenantServingStats& t) {
  std::string out = "{\"name\": \"" + t.name + "\"";
  out += ", \"requests\": " + std::to_string(t.requests);
  out += ", \"dropped\": " + std::to_string(t.dropped);
  out += ", \"pages_read\": " + std::to_string(t.pages_read);
  out += ", \"pages_written\": " + std::to_string(t.pages_written);
  out += ", \"pages_trimmed\": " + std::to_string(t.pages_trimmed);
  out += ", \"gc_migrations\": " + std::to_string(t.gc_migrations);
  out += ", \"block_erases\": " + std::to_string(t.block_erases);
  out += ", \"mean_us\": " + FormatDouble(t.mean_response_us, 3);
  out += ", \"p50_us\": " + FormatDouble(t.p50_response_us, 3);
  out += ", \"p90_us\": " + FormatDouble(t.p90_response_us, 3);
  out += ", \"p99_us\": " + FormatDouble(t.p99_response_us, 3);
  out += ", \"p999_us\": " + FormatDouble(t.p999_response_us, 3);
  out += ", \"max_us\": " + FormatDouble(t.max_response_us, 3);
  out += ", \"write_amp\": " + FormatDouble(t.write_amp, 4);
  out += ", \"gc_time_share\": " + FormatDouble(t.gc_time_share, 4);
  return out + "}";
}

void WriteRowJson(const ServingRow& row, bool last, std::ostream& os) {
  const ServingReport& r = row.report;
  const RunReport& rep = r.report;
  const double service_us = rep.phases.ServiceUs();
  const double gc_share =
      service_us > 0.0 ? rep.phases.PhaseUs(obs::Phase::kGc) / service_us
                       : 0.0;
  os << "      {\"ftl\": \"" << row.ftl << "\""
     << ", \"offered\": " << r.offered << ", \"served\": " << r.served
     << ", \"dropped\": " << r.dropped
     << ", \"offered_rps\": " << FormatDouble(r.offered_rps, 3)
     << ", \"achieved_rps\": " << FormatDouble(r.achieved_rps, 3)
     << ", \"arrival_span_us\": " << FormatDouble(r.arrival_span_us, 3)
     << ", \"makespan_us\": " << FormatDouble(r.makespan_us, 3)
     << ", \"peak_queue_us\": " << FormatDouble(r.peak_queue_us, 3)
     << ", \"final_backlog_us\": " << FormatDouble(r.final_backlog_us, 3)
     << ", \"mean_us\": " << FormatDouble(rep.mean_response_us, 3)
     << ", \"p50_us\": " << FormatDouble(rep.p50_response_us, 3)
     << ", \"p90_us\": " << FormatDouble(rep.p90_response_us, 3)
     << ", \"p99_us\": " << FormatDouble(rep.p99_response_us, 3)
     << ", \"p999_us\": " << FormatDouble(rep.p999_response_us, 3)
     << ", \"max_us\": " << FormatDouble(rep.max_response_us, 3)
     << ", \"wa\": " << FormatDouble(rep.write_amplification, 4)
     << ", \"gc_time_share\": " << FormatDouble(gc_share, 4)
     << ", \"tenants\": [";
  for (size_t i = 0; i < r.tenants.size(); ++i) {
    os << (i > 0 ? ", " : "") << JsonTenant(r.tenants[i]);
  }
  os << "]}" << (last ? "" : ",") << "\n";
}

void WriteScenarioJson(const Scenario& scenario,
                       const std::vector<ServingRow>& rows, bool last,
                       std::ostream& os) {
  os << "    {\"scenario\": \"" << scenario.name << "\""
     << ", \"max_queue_us\": " << FormatDouble(scenario.max_queue_us, 1)
     << ", \"tenant_count\": " << scenario.specs.size() << ",\n"
     << "     \"tenants\": [";
  for (size_t i = 0; i < scenario.specs.size(); ++i) {
    const TenantSpec& spec = scenario.specs[i];
    os << (i > 0 ? ", " : "") << "{\"name\": \"" << spec.name
       << "\", \"arrival\": \"" << ArrivalKindName(spec.arrival.kind)
       << "\", \"rate_rps\": " << FormatDouble(spec.arrival.rate_rps, 3)
       << ", \"requests\": " << spec.ops.num_requests << "}";
  }
  os << "],\n     \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    WriteRowJson(rows[i], i + 1 == rows.size(), os);
  }
  os << "     ]}" << (last ? "" : ",") << "\n";
}

int Main(int argc, char** argv) {
  std::string json_path = "BENCH_serving.json";
  std::string chrome_trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--chrome-trace=", 0) == 0) {
      chrome_trace_path = arg.substr(15);
    } else {
      std::cerr << "usage: bench_ext_serving [--json=F] [--chrome-trace=F]"
                << std::endl;
      return 1;
    }
  }
  const uint64_t requests = bench::RequestsFromEnv(45000);

  const std::vector<Scenario> scenarios = {DiurnalScenario(requests),
                                           BurstScenario(requests)};
  std::vector<std::vector<ServingRow>> results;
  for (const Scenario& scenario : scenarios) {
    std::vector<ServingRow> rows;
    Table summary("Open-loop serving — " + scenario.name + " (" +
                  std::to_string(requests) + " offered requests)");
    summary.SetColumns({"", "offered rps", "achieved rps", "dropped",
                        "peak queue ms", "backlog ms", "p50 us", "p99 us"});
    Table qos("Per-tenant QoS — " + scenario.name);
    qos.SetColumns({"", "requests", "dropped", "p50 us", "p99 us", "WA",
                    "GC share"});
    for (const FtlKind kind : bench::AllFtls()) {
      std::cerr << "  serving " << scenario.name << " on "
                << FtlKindName(kind) << " ..." << std::endl;
      // The Chrome tenant-lane trace comes from TPFTL's diurnal run.
      const bool trace_this = kind == FtlKind::kTpftl &&
                              scenario.name == "diurnal_3tenant" &&
                              !chrome_trace_path.empty();
      ServingRow row = RunOne(scenario, kind, requests,
                              trace_this ? chrome_trace_path : std::string());
      const ServingReport& r = row.report;
      summary.AddRow(
          {row.ftl, FormatDouble(r.offered_rps, 1),
           FormatDouble(r.achieved_rps, 1), std::to_string(r.dropped),
           FormatDouble(r.peak_queue_us / 1000.0, 1),
           FormatDouble(r.final_backlog_us / 1000.0, 1),
           FormatDouble(r.report.p50_response_us, 1),
           FormatDouble(r.report.p99_response_us, 1)});
      for (const TenantServingStats& t : r.tenants) {
        qos.AddRow({row.ftl + "/" + t.name, std::to_string(t.requests),
                    std::to_string(t.dropped),
                    FormatDouble(t.p50_response_us, 1),
                    FormatDouble(t.p99_response_us, 1),
                    FormatDouble(t.write_amp, 2),
                    FormatDouble(t.gc_time_share, 3)});
      }
      rows.push_back(std::move(row));
    }
    bench::Emit(summary);
    bench::Emit(qos);
    results.push_back(std::move(rows));
  }

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "error: cannot write " << json_path << std::endl;
    return 1;
  }
  out << "{\n  \"schema\": \"tpftl.bench_serving.v1\",\n"
      << "  \"requests\": " << requests << ",\n  \"scenarios\": [\n";
  for (size_t i = 0; i < scenarios.size(); ++i) {
    WriteScenarioJson(scenarios[i], results[i], i + 1 == scenarios.size(),
                      out);
  }
  out << "  ]\n}\n";
  std::cerr << "wrote " << json_path << std::endl;
  return 0;
}

}  // namespace
}  // namespace tpftl

int main(int argc, char** argv) { return tpftl::Main(argc, argv); }
