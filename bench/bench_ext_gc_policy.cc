// Extension — GC victim policy ablation (not a paper artifact).
//
// The paper fixes GC to greedy victim selection and notes (§3.1) that Vd,
// Vt, and Hgcr "are decided by the over-provisioning configuration and the
// choice of a GC policy". This harness quantifies that dependence: the same
// TPFTL configuration under greedy, cost-benefit, and wear-aware victim
// selection, reporting write amplification, erase count, mean valid pages
// per collected block (Vd), and the wear spread (max − min block erases).

#include "bench/bench_common.h"

int main() {
  using namespace tpftl;
  using namespace tpftl::bench;

  const uint64_t requests = RequestsFromEnv();
  const std::vector<std::pair<std::string, GcPolicy>> policies = {
      {"greedy", GcPolicy::kGreedy},
      {"cost-benefit", GcPolicy::kCostBenefit},
      {"wear-aware", GcPolicy::kWearAware},
  };

  for (const WorkloadConfig& workload :
       {Financial1Profile(requests), Financial2Profile(requests)}) {
    Table table("GC policy ablation — TPFTL on " + workload.name + " (" +
                std::to_string(requests) + " requests)");
    table.SetColumns({"policy", "WA", "erases", "Vd", "resp(us)", "Hgcr"});
    for (const auto& [name, policy] : policies) {
      ExperimentConfig config;
      config.workload = workload;
      config.ftl_kind = FtlKind::kTpftl;
      config.gc_policy = policy;
      std::cerr << "  running " << name << " on " << workload.name << " ..." << std::endl;
      const RunReport r = RunExperiment(config);
      const double vd = r.stats.gc_data_blocks > 0
                            ? static_cast<double>(r.stats.gc_data_migrations) /
                                  static_cast<double>(r.stats.gc_data_blocks)
                            : 0.0;
      table.AddRow({name, FormatDouble(r.write_amplification, 2), std::to_string(r.block_erases),
                    FormatDouble(vd, 1), FormatDouble(r.mean_response_us, 0),
                    FormatDouble(r.stats.gc_hit_ratio(), 3)});
    }
    Emit(table);
  }
  return 0;
}
