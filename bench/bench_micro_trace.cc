// Micro-benchmarks of the trace parsers.
//
// Not a paper artifact: these track the throughput of the SPC-1 and MSR
// line parsers (lines/sec, MB/s) so that regressions in the hot parse loops
// — which gate how fast multi-hundred-MB trace files load — are visible
// independently of whole-experiment runtimes.
//
// Two modes:
//   default            — google-benchmark micro-benchmarks (ns/line).
//   --throughput[=F]   — fixed-size throughput runs written as
//                        machine-readable JSON to F (default
//                        BENCH_trace_parse.json) and echoed to stdout. Line
//                        count is tunable via TPFTL_BENCH_TRACE_LINES
//                        (default 2000000).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/trace/msr_parser.h"
#include "src/trace/spc_parser.h"
#include "src/util/rng.h"
#include "src/util/str.h"

namespace tpftl {
namespace {

// Synthetic but realistic-shaped trace text: varied field widths, both
// opcodes, a sprinkle of comments and blank lines.
std::string MakeSpcText(uint64_t lines, uint64_t seed) {
  Rng rng(seed);
  std::string text;
  text.reserve(lines * 32);
  char buf[96];
  for (uint64_t i = 0; i < lines; ++i) {
    if (i % 1000 == 0) {
      text += "# comment line\n\n";
    }
    const unsigned asu = static_cast<unsigned>(rng.Below(4));
    const unsigned long long lba = rng.Below(1ULL << 30);
    const unsigned long long size = (1 + rng.Below(64)) * 512ULL;
    const char op = rng.Chance(0.6) ? 'W' : 'R';
    const double ts = static_cast<double>(i) * 0.001;
    std::snprintf(buf, sizeof(buf), "%u,%llu,%llu,%c,%.6f\n", asu, lba, size, op, ts);
    text += buf;
  }
  return text;
}

std::string MakeMsrText(uint64_t lines, uint64_t seed) {
  Rng rng(seed);
  std::string text;
  text.reserve(lines * 56);
  char buf[128];
  for (uint64_t i = 0; i < lines; ++i) {
    if (i % 1000 == 0) {
      text += "# comment line\n\n";
    }
    const unsigned long long ticks = 128166372002061308ULL + i * 10000ULL;
    const unsigned disk = static_cast<unsigned>(rng.Below(2));
    const char* type = rng.Chance(0.6) ? "Write" : "Read";
    const unsigned long long offset = rng.Below(1ULL << 36) * 512ULL;
    const unsigned long long size = (1 + rng.Below(64)) * 512ULL;
    std::snprintf(buf, sizeof(buf), "%llu,hm,%u,%s,%llu,%llu,%llu\n", ticks, disk, type, offset,
                  size, 1000ULL + i % 977);
    text += buf;
  }
  return text;
}

void BM_SpcParseLine(benchmark::State& state) {
  const std::string line = "2,1384545280,8192,W,0.024878";
  SpcParser parser;
  for (auto _ : state) {
    benchmark::DoNotOptimize(parser.ParseLine(line));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpcParseLine);

void BM_MsrParseLine(benchmark::State& state) {
  const std::string line = "128166372002061308,hm,1,Read,383496192,32768,1131";
  MsrParser parser;
  for (auto _ : state) {
    benchmark::DoNotOptimize(parser.ParseLine(line));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MsrParseLine);

void BM_SpcParseText(benchmark::State& state) {
  const std::string text = MakeSpcText(static_cast<uint64_t>(state.range(0)), 7);
  SpcParser parser;
  for (auto _ : state) {
    uint64_t malformed = 0;
    benchmark::DoNotOptimize(parser.ParseText(text, &malformed));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_SpcParseText)->Arg(10000)->Arg(100000);

void BM_MsrParseText(benchmark::State& state) {
  const std::string text = MakeMsrText(static_cast<uint64_t>(state.range(0)), 8);
  for (auto _ : state) {
    MsrParser parser;  // Fresh parser: time rebasing is part of the loop.
    uint64_t malformed = 0;
    benchmark::DoNotOptimize(parser.ParseText(text, &malformed));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_MsrParseText)->Arg(10000)->Arg(100000);

// ---------------------------------------------------------------------------
// Throughput mode.

struct ThroughputResult {
  std::string name;
  uint64_t lines = 0;
  uint64_t bytes = 0;
  double seconds = 0.0;
  double lines_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(lines) / seconds : 0.0;
  }
  double mb_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(bytes) / 1e6 / seconds : 0.0;
  }
};

uint64_t ThroughputLines() {
  if (const char* env = std::getenv("TPFTL_BENCH_TRACE_LINES")) {
    const auto parsed = ParseU64(env);
    if (parsed.has_value() && *parsed > 0) {
      return *parsed;
    }
    std::cerr << "warning: TPFTL_BENCH_TRACE_LINES='" << env
              << "' is not a positive integer; using default 2000000" << std::endl;
  }
  return 2'000'000;
}

template <typename Parser>
ThroughputResult TimeParse(const std::string& name, const std::string& text, uint64_t lines,
                           Parser&& parser) {
  const auto start = std::chrono::steady_clock::now();
  uint64_t malformed = 0;
  const std::vector<IoRequest> requests = parser.ParseText(text, &malformed);
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  benchmark::DoNotOptimize(requests.data());
  if (requests.size() != lines || malformed != 0) {
    std::cerr << "warning: " << name << " parsed " << requests.size() << "/" << lines
              << " lines with " << malformed << " malformed" << std::endl;
  }
  return ThroughputResult{name, lines, text.size(), elapsed.count()};
}

void WriteThroughputJson(const std::vector<ThroughputResult>& results, std::ostream& os) {
  os << "{\n  \"schema\": \"tpftl.bench_trace_parse.v1\",\n  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ThroughputResult& r = results[i];
    os << "    {\"name\": \"" << r.name << "\", \"lines\": " << r.lines
       << ", \"bytes\": " << r.bytes << ", \"seconds\": " << FormatDouble(r.seconds, 6)
       << ", \"lines_per_sec\": " << FormatDouble(r.lines_per_sec(), 0)
       << ", \"mb_per_sec\": " << FormatDouble(r.mb_per_sec(), 1) << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

int RunThroughputMode(const std::string& json_path) {
  const uint64_t lines = ThroughputLines();
  std::cerr << "throughput mode: " << lines << " lines per format" << std::endl;
  std::vector<ThroughputResult> results;
  {
    const std::string text = MakeSpcText(lines, 7);
    results.push_back(TimeParse("spc_parse", text, lines, SpcParser()));
  }
  {
    const std::string text = MakeMsrText(lines, 8);
    MsrParser parser;
    results.push_back(TimeParse("msr_parse", text, lines, parser));
  }
  WriteThroughputJson(results, std::cout);
  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "error: cannot write " << json_path << std::endl;
    return 1;
  }
  WriteThroughputJson(results, out);
  std::cerr << "wrote " << json_path << std::endl;
  return 0;
}

}  // namespace
}  // namespace tpftl

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--throughput") {
      return tpftl::RunThroughputMode("BENCH_trace_parse.json");
    }
    if (arg.rfind("--throughput=", 0) == 0) {
      return tpftl::RunThroughputMode(arg.substr(std::string("--throughput=").size()));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
