// Figures 7(b), 7(c), 8(a), 8(b) — per-technique ablation on Financial1.
//
// Eight TPFTL configurations (§5.2.5): '--' (two-level lists only), the four
// single techniques 'r'/'s'/'b'/'c', the pairs 'bc' and 'rs', and the
// complete 'rsbc'. DFTL is included as the reference row.
//
// Paper shapes: 'b' dominates the Prd reduction and 'c' complements it
// ('bc' cuts Prd by a further ~54 % over 'b'); 'r', 's', and 'rs' carry the
// hit-ratio gains (~+4.7 %, +5.6 %, +11 %); '--' already matches or beats
// DFTL's hit ratio; 'bc' can beat 'rsbc' on response time/WA because
// prefetching slightly raises Prd.

#include "bench/bench_common.h"

int main() {
  using namespace tpftl;
  using namespace tpftl::bench;

  const uint64_t requests = RequestsFromEnv();
  const WorkloadConfig workload = Financial1Profile(requests);
  const std::vector<std::string> configs = {"--", "b", "c", "bc", "r", "s", "rs", "rsbc"};

  const RunReport dftl = RunOne(workload, FtlKind::kDftl);
  std::vector<std::pair<std::string, RunReport>> runs;
  for (const std::string& label : configs) {
    runs.emplace_back(label, RunOne(workload, FtlKind::kTpftl, TpftlOptions::FromLabel(label)));
  }

  auto emit = [&](const std::string& title, auto metric, int decimals, bool normalize) {
    Table table(title + " (Financial1, " + std::to_string(requests) + " requests)");
    table.SetColumns({"Config", "value"});
    const double base = metric(dftl);
    table.AddRow({"DFTL", FormatDouble(normalize ? 1.0 : base, decimals)});
    for (const auto& [label, report] : runs) {
      const double value = metric(report);
      table.AddRow({label, FormatDouble(normalize ? Normalized(value, base) : value, decimals)});
    }
    Emit(table);
  };

  emit("Figure 7(b) — Probability of replacing a dirty entry",
       [](const RunReport& r) { return r.prd; }, 3, false);
  emit("Figure 7(c) — Cache hit ratio",
       [](const RunReport& r) { return r.hit_ratio; }, 3, false);
  emit("Figure 8(a) — System response time (normalized to DFTL)",
       [](const RunReport& r) { return r.mean_response_us; }, 3, true);
  emit("Figure 8(b) — Write amplification",
       [](const RunReport& r) { return r.write_amplification; }, 2, false);
  return 0;
}
