// Shared plumbing for the experiment-reproduction binaries.
//
// Every bench prints the same rows/series its paper artifact reports, via
// util::Table. Run length is tunable without rebuilding:
//   TPFTL_BENCH_REQUESTS  — requests per run (default 300000)
//   TPFTL_BENCH_CSV       — when set, also emit CSV after each table
//   TPFTL_BENCH_THREADS   — worker threads for multi-run benches
//                           (default: hardware concurrency; 1 → serial)

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/ssd/runner.h"
#include "src/util/str.h"
#include "src/util/table.h"
#include "src/workload/profiles.h"

namespace tpftl::bench {

inline uint64_t RequestsFromEnv(uint64_t default_requests = 300000) {
  if (const char* env = std::getenv("TPFTL_BENCH_REQUESTS")) {
    const auto parsed = ParseU64(env);
    if (parsed.has_value() && *parsed > 0) {
      return *parsed;
    }
    std::cerr << "warning: TPFTL_BENCH_REQUESTS='" << env
              << "' is not a positive integer; using default " << default_requests << std::endl;
  }
  return default_requests;
}

inline unsigned ThreadsFromEnv() {
  if (const char* env = std::getenv("TPFTL_BENCH_THREADS")) {
    const auto parsed = ParseU64(env);
    if (parsed.has_value() && *parsed > 0) {
      return static_cast<unsigned>(*parsed);
    }
    std::cerr << "warning: TPFTL_BENCH_THREADS='" << env
              << "' is not a positive integer; using hardware concurrency" << std::endl;
  }
  return 0;  // RunSweep resolves 0 to hardware concurrency.
}

inline void Emit(const Table& table) {
  table.Print(std::cout);
  if (std::getenv("TPFTL_BENCH_CSV") != nullptr) {
    table.PrintCsv(std::cout);
    std::cout << "\n";
  }
}

// The comparison set of §5 (CDFTL was measured but dropped from the paper's
// plots; it and LearnedFTL are included here as extensions).
inline std::vector<FtlKind> PaperFtls() {
  return {FtlKind::kDftl,    FtlKind::kTpftl, FtlKind::kSftl,
          FtlKind::kOptimal, FtlKind::kCdftl, FtlKind::kLearned};
}

// Every implemented FTL, in factory-enum order.
inline std::vector<FtlKind> AllFtls() {
  return {FtlKind::kOptimal, FtlKind::kDftl, FtlKind::kCdftl,
          FtlKind::kSftl,    FtlKind::kTpftl, FtlKind::kBlockFtl,
          FtlKind::kFast,    FtlKind::kZftl,  FtlKind::kLearned};
}

// The GC-heavy end-to-end mix shared by bench_e2e_replay and
// bench_ext_latency_breakdown: Zipf-skewed, write-dominated traffic with
// interleaved sequential scans over a small logical space, so steady-state GC
// is a large share of simulated flash time.
inline WorkloadConfig GcHeavyMix(uint64_t requests) {
  WorkloadConfig w;
  w.name = "e2e_gc_heavy";
  w.address_space_bytes = 64ULL << 20;  // Small space → frequent GC.
  w.num_requests = requests;
  w.seed = 11;
  w.write_ratio = 0.8;
  w.zipf_theta = 1.2;
  w.seq_read_fraction = 0.3;  // Interleaved sequential scans.
  w.seq_write_fraction = 0.2;
  w.chunk_pages = 32;
  w.mean_interarrival_us = 50.0;
  return w;
}

inline RunReport RunOne(const WorkloadConfig& workload, FtlKind kind,
                        const TpftlOptions& tpftl_options = {}, uint64_t cache_bytes = 0,
                        const RunObserver& observer = nullptr) {
  ExperimentConfig config;
  config.workload = workload;
  config.ftl_kind = kind;
  config.tpftl_options = tpftl_options;
  config.cache_bytes = cache_bytes;
  std::cerr << "  running " << FtlKindName(kind)
            << (kind == FtlKind::kTpftl ? "(" + tpftl_options.Label() + ")" : "") << " on "
            << workload.name << " ..." << std::endl;
  return RunExperiment(config, observer);
}

inline ExperimentConfig MakeConfig(const WorkloadConfig& workload, FtlKind kind,
                                   const TpftlOptions& tpftl_options = {},
                                   uint64_t cache_bytes = 0) {
  ExperimentConfig config;
  config.workload = workload;
  config.ftl_kind = kind;
  config.tpftl_options = tpftl_options;
  config.cache_bytes = cache_bytes;
  return config;
}

// Runs a batch of independent configs across TPFTL_BENCH_THREADS workers
// (RunSweep guarantees reports identical to serial execution), reporting
// completion progress on stderr.
inline std::vector<RunReport> RunAll(const std::vector<ExperimentConfig>& configs) {
  const size_t total = configs.size();
  auto done = std::make_shared<size_t>(0);
  return RunSweep(configs, ThreadsFromEnv(), [total, done](size_t, const RunReport& r) {
    std::cerr << "  [" << ++*done << "/" << total << "] finished " << r.ftl_name << " on "
              << r.workload_name << std::endl;
  });
}

inline double Normalized(double value, double baseline) {
  return baseline > 0.0 ? value / baseline : 0.0;
}

// Full page-level mapping table size (8 B per entry), the unit of the
// Figure 8(c)/9/10 cache-size axis.
inline uint64_t FullTableBytes(const WorkloadConfig& workload) {
  return workload.total_pages() * 8;
}

}  // namespace tpftl::bench

#endif  // BENCH_BENCH_COMMON_H_
