// Micro-benchmarks of the NAND simulator and block manager (google-benchmark).
//
// Not a paper artifact: measures the substrate's operation throughput (page
// program/read, invalidate, GC victim selection and collection) to keep the
// whole-experiment harnesses fast.

#include <benchmark/benchmark.h>

#include "src/flash/nand.h"
#include "src/ftl/block_manager.h"
#include "src/util/assert.h"
#include "src/util/rng.h"

namespace tpftl {
namespace {

FlashGeometry MicroGeometry() {
  FlashGeometry g;
  g.page_size_bytes = 4096;
  g.pages_per_block = 64;
  g.total_blocks = 4096;
  return g;
}

void BM_NandProgramReadCycle(benchmark::State& state) {
  NandFlash flash(MicroGeometry());
  BlockId block = 0;
  for (auto _ : state) {
    if (!flash.block(block).HasFreePage()) {
      state.PauseTiming();
      for (uint64_t o = 0; o < 64; ++o) {
        flash.InvalidatePage(flash.geometry().PpnOf(block, o));
      }
      flash.EraseBlock(block);
      state.ResumeTiming();
    }
    Ppn ppn = kInvalidPpn;
    flash.ProgramPage(block, 1, &ppn);
    benchmark::DoNotOptimize(flash.ReadPage(ppn));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NandProgramReadCycle);

void BM_BlockManagerProgramInvalidate(benchmark::State& state) {
  // Steady-state churn: program a page, invalidate a random earlier one,
  // collect fully-invalid victims — the block manager's whole lifecycle.
  NandFlash flash(MicroGeometry());
  BlockManager bm(&flash, 8);
  Rng rng(1);
  std::vector<Ppn> live;
  live.reserve(1 << 18);
  for (auto _ : state) {
    Ppn ppn = kInvalidPpn;
    bm.Program(BlockPool::kData, 1, &ppn);
    live.push_back(ppn);
    if (live.size() > 4096) {
      const size_t idx = rng.Below(live.size());
      bm.Invalidate(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
    while (bm.NeedsGc()) {
      const BlockId victim = bm.PickVictim();
      const FlashGeometry& g = flash.geometry();
      for (uint64_t o = 0; o < g.pages_per_block; ++o) {
        const Ppn p = g.PpnOf(victim, o);
        if (flash.StateOf(p) == PageState::kValid) {
          flash.ReadPage(p);
          Ppn np = kInvalidPpn;
          bm.Program(BlockPool::kData, flash.OobTag(p), &np);
          bm.Invalidate(p);
          for (auto& l : live) {
            if (l == p) {
              l = np;
              break;
            }
          }
        }
      }
      bm.EraseAndFree(victim);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockManagerProgramInvalidate);

void BM_MultiDieProgramOverlap(benchmark::State& state) {
  // One request window programming a page on each of D dies. The per-die
  // timelines must overlap the programs: simulated finish time is ONE
  // program latency (max over dies), not D of them — checked hard every
  // iteration so a regression to serialized timing fails the bench rather
  // than silently re-labelling the numbers. Wall time tracks the bookkeeping
  // cost of the die-sliced path.
  const auto dies = static_cast<uint32_t>(state.range(0));
  FlashGeometry g = MicroGeometry();
  g.dies_per_channel = dies;
  NandFlash flash(g);
  MicroSec window_start = 0.0;
  std::vector<BlockId> die_block(dies);
  for (uint32_t d = 0; d < dies; ++d) {
    die_block[d] = d;  // Low block-id bits select the die.
  }
  for (auto _ : state) {
    flash.BeginRequestAt(window_start);
    for (uint32_t d = 0; d < dies; ++d) {
      BlockId& block = die_block[d];
      if (!flash.block(block).HasFreePage()) {
        for (uint64_t o = 0; o < g.pages_per_block; ++o) {
          flash.InvalidatePage(g.PpnOf(block, o));
        }
        flash.EraseBlock(block);
        // The erase occupied the die inside this window; restart the window
        // afterwards so the overlap check below stays exact.
        window_start = flash.die_free_at(d);
        flash.BeginRequestAt(window_start);
      }
      Ppn ppn = kInvalidPpn;
      flash.ProgramPage(block, 1, &ppn);
    }
    const MicroSec elapsed = flash.request_finish_us() - window_start;
    TPFTL_CHECK_MSG(elapsed == g.page_write_us,
                    "multi-die programs serialized: request took more than "
                    "one program latency");
    window_start = flash.request_finish_us();
  }
  state.SetItemsProcessed(state.iterations() * dies);
}
BENCHMARK(BM_MultiDieProgramOverlap)->Arg(2)->Arg(4)->Arg(8);

void BM_VictimSelection(benchmark::State& state) {
  NandFlash flash(MicroGeometry());
  BlockManager bm(&flash, 8);
  Rng rng(2);
  // Retire 1024 blocks with random garbage levels.
  std::vector<Ppn> pages;
  for (int b = 0; b < 1024; ++b) {
    for (uint64_t o = 0; o < 64; ++o) {
      Ppn ppn = kInvalidPpn;
      bm.Program(BlockPool::kData, 1, &ppn);
      pages.push_back(ppn);
    }
  }
  for (const Ppn ppn : pages) {
    if (rng.Chance(0.4)) {
      bm.Invalidate(ppn);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bm.PickVictim());
  }
}
BENCHMARK(BM_VictimSelection);

}  // namespace
}  // namespace tpftl

BENCHMARK_MAIN();
