// Extension — phase-level latency breakdown across every FTL.
//
// Not a paper figure, but a direct instrument for the paper's response-time
// model (§4.3): for each FTL replaying the shared GC-heavy end-to-end mix,
// split mean response time into its exclusive phases —
//
//   queue        FIFO wait for the device,
//   translation  mapping lookups, commits, dirty write-backs,
//   user         host data page reads/programs,
//   gc           foreground victim migration + erases,
//   flush        write-buffer evictions driving FTL writes (when enabled)
//
// — plus accurate p50/p99/p99.9 from the sub-bucketed response histogram.
// The breakdown is trustworthy by construction: the harness checks that
// queue + phase flash time reconstructs total measured response time within
// 0.1% and fails loudly otherwise.
//
// Usage:
//   bench_ext_latency_breakdown [--json=F] [--label=L] [--ftls=a,b,...]
//                               [--chrome-trace=F]
//     --json=F          output path (default BENCH_latency.json).
//     --label=L         run label recorded in the JSON (default "head").
//     --ftls=...        comma-separated FtlKind names (default: all).
//     --chrome-trace=F  also export span timelines of the first 64 measured
//                       TPFTL requests as Chrome trace-event JSON (open in
//                       chrome://tracing or ui.perfetto.dev).
// Knobs:
//   TPFTL_BENCH_REQUESTS — request count (default 200000).
//   TPFTL_BENCH_THREADS  — sweep workers (default: hardware concurrency).

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/ftl_factory.h"
#include "src/obs/trace_event.h"
#include "src/ssd/runner.h"
#include "src/util/str.h"

namespace tpftl {
namespace {

constexpr uint64_t kChromeTraceRequests = 64;

struct BreakdownRow {
  std::string ftl;
  RunReport report;

  double mean_us(double total) const {
    return report.requests > 0 ? total / static_cast<double>(report.requests) : 0.0;
  }
  double queue_mean_us() const { return mean_us(report.queue_us_total); }
  double phase_mean_us(obs::Phase phase) const {
    return mean_us(report.phases.PhaseUs(phase));
  }
  // queue + service over measured response total; 1.0 when attribution is
  // complete (the 0.1% acceptance bound).
  double sum_check_ratio() const {
    return report.response_total_us > 0.0
               ? (report.queue_us_total + report.phases.ServiceUs()) / report.response_total_us
               : 1.0;
  }
};

std::vector<FtlKind> ParseFtlList(const std::string& list) {
  std::vector<FtlKind> out;
  FieldCursor cursor(list, ',');
  std::string_view name;
  while (cursor.Next(&name)) {
    bool found = false;
    for (const FtlKind kind : bench::AllFtls()) {
      if (EqualsIgnoreCase(Trim(name), FtlKindName(kind))) {
        out.push_back(kind);
        found = true;
        break;
      }
    }
    if (!found) {
      std::cerr << "error: unknown FTL kind '" << std::string(name) << "'" << std::endl;
      std::exit(1);
    }
  }
  return out;
}

void WriteJson(const std::vector<BreakdownRow>& rows, const std::string& label,
               const std::string& workload, std::ostream& os) {
  os << "{\n  \"schema\": \"tpftl.bench_latency.v1\",\n  \"runs\": [\n";
  os << "    {\"label\": \"" << label << "\", \"workload\": \"" << workload
     << "\", \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const BreakdownRow& r = rows[i];
    os << "      {\"ftl\": \"" << r.ftl << "\", \"requests\": " << r.report.requests
       << ", \"mean_response_us\": " << FormatDouble(r.report.mean_response_us, 3)
       << ", \"p50_us\": " << FormatDouble(r.report.p50_response_us, 3)
       << ", \"p90_us\": " << FormatDouble(r.report.p90_response_us, 3)
       << ", \"p99_us\": " << FormatDouble(r.report.p99_response_us, 3)
       << ", \"p999_us\": " << FormatDouble(r.report.p999_response_us, 3)
       << ", \"max_us\": " << FormatDouble(r.report.max_response_us, 3)
       << ",\n       \"queue_us\": " << FormatDouble(r.queue_mean_us(), 3)
       << ", \"translation_us\": " << FormatDouble(r.phase_mean_us(obs::Phase::kTranslation), 3)
       << ", \"user_us\": " << FormatDouble(r.phase_mean_us(obs::Phase::kUser), 3)
       << ", \"gc_us\": " << FormatDouble(r.phase_mean_us(obs::Phase::kGc), 3)
       << ", \"flush_us\": " << FormatDouble(r.phase_mean_us(obs::Phase::kFlush), 3)
       << ",\n       \"trans_reads\": " << r.report.trans_reads
       << ", \"trans_writes\": " << r.report.trans_writes
       << ", \"model_hits\": " << r.report.stats.model_hits
       << ", \"model_misses\": " << r.report.stats.model_misses
       << ", \"model_probe_reads\": " << r.report.stats.model_probe_reads
       << ", \"model_retrains\": " << r.report.stats.model_retrains
       << ",\n       \"gc_victim_scans\": " << r.report.phases.gc_victim_scans
       << ", \"sum_check_ratio\": " << FormatDouble(r.sum_check_ratio(), 6) << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "    ]}\n  ]\n}\n";
}

int Main(int argc, char** argv) {
  std::string json_path = "BENCH_latency.json";
  std::string label = "head";
  std::string chrome_trace_path;
  std::vector<FtlKind> kinds = bench::AllFtls();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--label=", 0) == 0) {
      label = arg.substr(8);
    } else if (arg.rfind("--ftls=", 0) == 0) {
      kinds = ParseFtlList(arg.substr(7));
    } else if (arg.rfind("--chrome-trace=", 0) == 0) {
      chrome_trace_path = arg.substr(15);
    } else {
      std::cerr << "usage: bench_ext_latency_breakdown [--json=F] [--label=L] "
                   "[--ftls=a,b,...] [--chrome-trace=F]"
                << std::endl;
      return 1;
    }
  }

  const uint64_t requests = bench::RequestsFromEnv(200000);
  const WorkloadConfig workload = bench::GcHeavyMix(requests);

  std::vector<ExperimentConfig> configs;
  for (const FtlKind kind : kinds) {
    ExperimentConfig config = bench::MakeConfig(workload, kind);
    config.trace_phases = true;
    config.write_buffer.capacity_pages = 64;  // Exercise the flush phase.
    configs.push_back(config);
  }
  const std::vector<RunReport> reports = bench::RunAll(configs);

  std::vector<BreakdownRow> rows;
  Table table("Latency breakdown — mean response by phase, us/request (" + workload.name + ")");
  table.SetColumns({"FTL", "mean", "queue", "transl", "user", "gc", "flush", "p50", "p99",
                    "p99.9", "max", "sum ok"});
  bool sums_ok = true;
  for (size_t i = 0; i < reports.size(); ++i) {
    BreakdownRow row;
    row.ftl = FtlKindName(kinds[i]);
    row.report = reports[i];
    const double ratio = row.sum_check_ratio();
    const bool ok = ratio > 0.999 && ratio < 1.001;
    sums_ok = sums_ok && ok;
    if (!ok) {
      table.AddWarning(row.ftl + ": phase sum reconstructs only " +
                       FormatDouble(100.0 * ratio, 3) +
                       "% of measured response time — attribution is leaking");
    }
    table.AddRow({row.ftl, FormatDouble(row.report.mean_response_us, 1),
                  FormatDouble(row.queue_mean_us(), 1),
                  FormatDouble(row.phase_mean_us(obs::Phase::kTranslation), 1),
                  FormatDouble(row.phase_mean_us(obs::Phase::kUser), 1),
                  FormatDouble(row.phase_mean_us(obs::Phase::kGc), 1),
                  FormatDouble(row.phase_mean_us(obs::Phase::kFlush), 1),
                  FormatDouble(row.report.p50_response_us, 1),
                  FormatDouble(row.report.p99_response_us, 1),
                  FormatDouble(row.report.p999_response_us, 1),
                  FormatDouble(row.report.max_response_us, 1), ok ? "yes" : "NO"});
    rows.push_back(std::move(row));
  }
  bench::Emit(table);

  if (!chrome_trace_path.empty()) {
    // Span capture needs access to the live SSD: rerun TPFTL serially with
    // the trace log enabled and export on the final measured request.
    ExperimentConfig config = bench::MakeConfig(workload, FtlKind::kTpftl);
    config.trace_phases = true;
    config.write_buffer.capacity_pages = 64;
    config.trace_span_requests = kChromeTraceRequests;
    bool wrote = false;
    // Mirrors the runner's warm-up arithmetic: measured requests are
    // 1..last_index in observer terms.
    const uint64_t last_index =
        requests -
        static_cast<uint64_t>(static_cast<double>(requests) * config.warmup_fraction);
    RunExperiment(config, [&](const Ssd& ssd, uint64_t index) {
      // Export once the log is full (or on the final request of a short run).
      if (wrote || (ssd.trace_log().WantsMore() && index != last_index)) {
        return;
      }
      std::ofstream out(chrome_trace_path);
      if (!out) {
        std::cerr << "error: cannot write " << chrome_trace_path << std::endl;
        return;
      }
      obs::WriteChromeTrace(out, ssd.trace_log(), "TPFTL " + workload.name);
      wrote = true;
    });
    if (wrote) {
      std::cerr << "wrote " << chrome_trace_path << " (" << kChromeTraceRequests
                << " request timelines)" << std::endl;
    }
  }

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "error: cannot write " << json_path << std::endl;
    return 1;
  }
  WriteJson(rows, label, workload.name, out);
  std::cerr << "wrote " << json_path << std::endl;
  return sums_ok ? 0 : 1;
}

}  // namespace
}  // namespace tpftl

int main(int argc, char** argv) { return tpftl::Main(argc, argv); }
