// Extension — power-loss recovery cost (not a paper artifact).
//
// Measures what a crash costs each FTL: drive a uniform mixed workload, cut
// power near the end of the run (flash/fault.h snapshot model), restore the
// device to the cut instant, and time the OOB-scan reboot
// (FtlEnv::recover_from_flash). Two views:
//   1. All FTL kinds at a fixed write ratio — scan/rebuild split, mappings
//      recovered, and the lost-window size per architecture.
//   2. TPFTL across cache budgets spanning the working set — with a small
//      cache, evictions batch-persist translation pages continuously and a
//      cut loses almost nothing; once the cache holds the working set,
//      nothing forces writeback, GC churn keeps every entry dirty, and the
//      whole mapping is in the lost window. Recovery pays one translation-
//      page rewrite per stale page, so its rebuild cost tracks dirtiness
//      (DESIGN.md "Fault model and power-loss recovery").
//
//   bench_ext_recovery [--json=F]   (default BENCH_recovery.json)
// Knobs: TPFTL_BENCH_REQUESTS — operations per run (default 150000).

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/ftl_factory.h"
#include "src/flash/fault.h"
#include "src/flash/nand.h"
#include "src/ftl/recovery.h"
#include "src/util/rng.h"

namespace tpftl {
namespace {

// Big enough for multi-translation-page working sets and steady GC, small
// enough that a full sweep stays in seconds.
FlashGeometry BenchGeometry() {
  FlashGeometry g;
  g.page_size_bytes = 2048;  // 512 entries per translation page.
  g.pages_per_block = 32;
  g.total_blocks = 256;
  return g;
}

constexpr uint64_t kLogicalPages = 6144;  // 75% of the 8192 physical pages.

struct RecoveryRun {
  std::string ftl;
  double write_ratio = 0.0;
  uint64_t cache_bytes = 0;
  uint64_t cut_op = 0;
  RecoveryReport report;
  double recover_wall_ms = 0.0;  // Host wall clock for the whole reboot.
};

void Drive(Ftl& ftl, NandFlash& flash, uint64_t ops, double write_ratio) {
  Rng rng(2024);
  for (uint64_t i = 0; i < ops; ++i) {
    const Lpn lpn = rng.Below(kLogicalPages);
    if (rng.Chance(write_ratio)) {
      ftl.WritePage(lpn);
    } else {
      ftl.ReadPage(lpn);
    }
    if (flash.power_cut_triggered()) {
      return;
    }
  }
}

RecoveryRun MeasureOne(FtlKind kind, uint64_t ops, double write_ratio,
                       uint64_t cache_multiplier = 1) {
  const FlashGeometry geometry = BenchGeometry();
  const uint64_t cache_bytes = PaperCacheBytes(geometry, kLogicalPages) * cache_multiplier;

  // Pass 1 (fault-free): learn where the workload's last flash op lands.
  uint64_t cut_op = 0;
  {
    NandFlash flash(geometry);
    FtlEnv env;
    env.flash = &flash;
    env.logical_pages = kLogicalPages;
    env.cache_bytes = cache_bytes;
    auto ftl = CreateFtl(kind, env);
    Drive(*ftl, flash, ops, write_ratio);
    cut_op = flash.op_index();  // Cut at the very last operation.
  }

  // Pass 2: same run with the power cut armed, then a timed recovery boot.
  NandFlash flash(geometry);
  FaultPlan plan;
  plan.power_cut_at_op = cut_op;
  flash.InstallFaultPlan(plan);
  FtlEnv env;
  env.flash = &flash;
  env.logical_pages = kLogicalPages;
  env.cache_bytes = cache_bytes;
  {
    auto ftl = CreateFtl(kind, env);
    Drive(*ftl, flash, ops, write_ratio);
  }
  flash.RestoreToCutInstant();

  env.recover_from_flash = true;
  const auto start = std::chrono::steady_clock::now();
  auto recovered = CreateFtl(kind, env);
  const std::chrono::duration<double, std::milli> elapsed =
      std::chrono::steady_clock::now() - start;

  RecoveryRun run;
  run.ftl = FtlKindName(kind);
  run.write_ratio = write_ratio;
  run.cache_bytes = cache_bytes;
  run.cut_op = cut_op;
  run.report = *recovered->recovery_report();
  run.recover_wall_ms = elapsed.count();
  return run;
}

void AddRow(Table& table, const RecoveryRun& r, const std::string& first_column) {
  table.AddRow({first_column, std::to_string(r.report.pages_scanned),
                std::to_string(r.report.data_mappings),
                std::to_string(r.report.translation_rewrites),
                std::to_string(r.report.unpersisted_window),
                FormatDouble(r.report.scan_time_us / 1000.0, 2),
                FormatDouble(r.report.rebuild_time_us / 1000.0, 2),
                FormatDouble(r.recover_wall_ms, 1)});
}

void WriteJson(const std::vector<RecoveryRun>& runs, std::ostream& os) {
  os << "{\n  \"schema\": \"tpftl.bench_recovery.v1\",\n  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const RecoveryRun& r = runs[i];
    os << "    {\"ftl\": \"" << r.ftl << "\", \"write_ratio\": " << FormatDouble(r.write_ratio, 2)
       << ", \"cache_bytes\": " << r.cache_bytes << ", \"cut_op\": " << r.cut_op
       << ", \"pages_scanned\": " << r.report.pages_scanned
       << ", \"torn_pages\": " << r.report.torn_pages
       << ", \"data_mappings\": " << r.report.data_mappings
       << ", \"translation_rewrites\": " << r.report.translation_rewrites
       << ", \"unpersisted_window\": " << r.report.unpersisted_window
       << ", \"scan_ms\": " << FormatDouble(r.report.scan_time_us / 1000.0, 3)
       << ", \"rebuild_ms\": " << FormatDouble(r.report.rebuild_time_us / 1000.0, 3)
       << ", \"recover_wall_ms\": " << FormatDouble(r.recover_wall_ms, 3) << "}"
       << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

int Main(int argc, char** argv) {
  std::string json_path = "BENCH_recovery.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::cerr << "usage: bench_ext_recovery [--json=F]" << std::endl;
      return 1;
    }
  }
  const uint64_t ops = bench::RequestsFromEnv(150000);
  const std::vector<std::string> columns = {"", "scanned", "mappings", "tp rewrites",
                                            "lost win", "scan ms", "rebuild ms", "wall ms"};
  std::vector<RecoveryRun> runs;

  Table by_ftl("Recovery after a power cut — all FTLs, 50% writes, " + std::to_string(ops) +
               " ops");
  by_ftl.SetColumns(columns);
  for (const FtlKind kind :
       {FtlKind::kOptimal, FtlKind::kDftl, FtlKind::kCdftl, FtlKind::kSftl, FtlKind::kTpftl,
        FtlKind::kBlockFtl, FtlKind::kFast, FtlKind::kZftl}) {
    std::cerr << "  recovering " << FtlKindName(kind) << " ..." << std::endl;
    RecoveryRun r = MeasureOne(kind, ops, 0.5);
    AddRow(by_ftl, r, r.ftl);
    runs.push_back(std::move(r));
  }
  bench::Emit(by_ftl);

  // The paper budget (1x) caches a few dozen entries; ~170x holds the whole
  // 6144-entry mapping. The sweep crosses that transition.
  Table dirtiness("Recovery cost vs cache dirtiness — TPFTL across cache budgets, 50% writes");
  dirtiness.SetColumns(columns);
  for (const uint64_t multiplier : {1, 16, 48, 96, 192}) {
    std::cerr << "  recovering TPFTL at " << multiplier << "x cache ..." << std::endl;
    RecoveryRun r = MeasureOne(FtlKind::kTpftl, ops, 0.5, multiplier);
    AddRow(dirtiness, r, FormatBytes(r.cache_bytes));
    runs.push_back(std::move(r));
  }
  bench::Emit(dirtiness);

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "error: cannot write " << json_path << std::endl;
    return 1;
  }
  WriteJson(runs, out);
  std::cerr << "wrote " << json_path << std::endl;
  return 0;
}

}  // namespace
}  // namespace tpftl

int main(int argc, char** argv) { return tpftl::Main(argc, argv); }
