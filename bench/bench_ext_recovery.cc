// Extension — power-loss recovery cost (not a paper artifact).
//
// Measures what a crash costs each FTL, and what checkpointed recovery
// (src/ftl/checkpoint.h) buys back. Every run boots the SAME crashed flash
// image twice — once replaying the metadata journal, once forced through the
// full OOB scan — so the comparison is apples-to-apples per cut point:
//   1. All FTL kinds at a fixed write ratio: checkpointed vs scan reboot
//      time, journal replay length, dirty blocks rescanned.
//   2. TPFTL across cache budgets spanning the working set (cache dirtiness
//      drives the lost window and the checkpoint payload).
//   3. Foreground cost: the same workload driven with checkpointing off vs
//      on — the journal+checkpoint overhead must stay small (≤2%).
//   4. Capacity sweep (DFTL, TPFTL) on sparse arena devices up to 1 TB:
//      scan reboot grows linearly with device capacity while the
//      checkpointed reboot tracks the dirty window and stays flat. The TB
//      point is only representable at all because the backing arrays
//      materialize on write (SsdConfig::sparse_segment_pages).
//
//   bench_ext_recovery [--json=F]   (default BENCH_recovery.json)
// Knobs: TPFTL_BENCH_REQUESTS        — operations per run (default 150000).
//        TPFTL_BENCH_MAX_CAPACITY_GB — cap the capacity sweep (default 1024;
//                                      CI smoke uses 64 to bound RAM/wall).

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/ftl_factory.h"
#include "src/flash/fault.h"
#include "src/flash/nand.h"
#include "src/ftl/recovery.h"
#include "src/util/assert.h"
#include "src/util/rng.h"

namespace tpftl {
namespace {

// Big enough for multi-translation-page working sets and steady GC, small
// enough that a full sweep stays in seconds.
FlashGeometry BenchGeometry() {
  FlashGeometry g;
  g.page_size_bytes = 2048;  // 512 entries per translation page.
  g.pages_per_block = 32;
  g.total_blocks = 256;
  return g;
}

constexpr uint64_t kLogicalPages = 6144;  // 75% of the 8192 physical pages.

uint64_t MaxCapacityGbFromEnv() {
  const char* env = std::getenv("TPFTL_BENCH_MAX_CAPACITY_GB");
  if (env != nullptr) {
    const uint64_t parsed = std::strtoull(env, nullptr, 10);
    if (parsed > 0) {
      return parsed;
    }
  }
  return 1024;
}

// Checkpoint cadence. One tight cadence fits every FTL family now: the
// RAM-table kinds (Optimal/BlockFTL/FAST) used to re-serialize their whole
// live map into each record — forcing a parked-high interval and a wide
// dirty window — but with the cumulative data directory they append only
// the mappings changed since the previous checkpoint, the same
// delta-per-record cost profile as the demand FTLs' GTD deltas.
CheckpointConfig PerKindCheckpoint(FtlKind kind) {
  (void)kind;
  CheckpointConfig c;
  c.enabled = true;
  c.interval_host_ops = 256;
  c.max_journal_records = 24;
  return c;
}

struct BootResult {
  RecoveryReport report;
  double wall_ms = 0.0;  // Host wall clock for the whole reboot.
};

// Simulated reboot time: metadata/OOB reading plus state re-persisting.
double RebootMs(const RecoveryReport& r) {
  return (r.scan_time_us + r.rebuild_time_us) / 1000.0;
}

struct RecoveryRun {
  std::string ftl;
  double write_ratio = 0.0;
  uint64_t cache_bytes = 0;
  uint64_t cut_op = 0;
  uint64_t checkpoint_interval = 0;
  BootResult ckpt;  // Journal-replay boot.
  BootResult scan;  // Same image, full-scan boot (force_scan_recovery).

  double speedup() const { return RebootMs(scan.report) / RebootMs(ckpt.report); }
};

struct OverheadRun {
  std::string ftl;
  uint64_t checkpoint_interval = 0;
  double baseline_ms = 0.0;      // Simulated service time, checkpointing off.
  double checkpointed_ms = 0.0;  // Same workload, checkpointing on.

  double overhead_pct() const {
    return baseline_ms > 0.0 ? (checkpointed_ms - baseline_ms) / baseline_ms * 100.0 : 0.0;
  }
};

struct CapacityRun {
  std::string ftl;
  uint64_t capacity_gb = 0;
  uint64_t logical_pages = 0;
  uint64_t footprint_pages = 0;  // Pages the bounded workload actually wrote.
  uint64_t resident_segments = 0;
  BootResult ckpt;
  BootResult scan;

  double speedup() const { return RebootMs(scan.report) / RebootMs(ckpt.report); }
};

MicroSec Drive(Ftl& ftl, NandFlash& flash, uint64_t ops, double write_ratio) {
  Rng rng(2024);
  MicroSec service = 0.0;
  for (uint64_t i = 0; i < ops; ++i) {
    const Lpn lpn = rng.Below(kLogicalPages);
    service += rng.Chance(write_ratio) ? ftl.WritePage(lpn) : ftl.ReadPage(lpn);
    if (flash.power_cut_triggered()) {
      return service;
    }
  }
  return service;
}

RecoveryRun MeasureOne(FtlKind kind, uint64_t ops, double write_ratio,
                       uint64_t cache_multiplier = 1) {
  const FlashGeometry geometry = BenchGeometry();
  const uint64_t cache_bytes = PaperCacheBytes(geometry, kLogicalPages) * cache_multiplier;
  const CheckpointConfig ckpt_cfg = PerKindCheckpoint(kind);

  // Pass 1 (fault-free): learn where the workload's last flash op lands.
  // Journaling is on, so the op index includes the metadata appends.
  uint64_t cut_op = 0;
  {
    NandFlash flash(geometry);
    FtlEnv env;
    env.flash = &flash;
    env.logical_pages = kLogicalPages;
    env.cache_bytes = cache_bytes;
    env.checkpoint = ckpt_cfg;
    auto ftl = CreateFtl(kind, env);
    Drive(*ftl, flash, ops, write_ratio);
    cut_op = flash.op_index();  // Cut at the very last operation.
  }

  // One crashed world per boot flavor: identical drive (same seed, same cut
  // op), then a timed recovery boot through the requested path.
  const auto boot = [&](bool force_scan) {
    NandFlash flash(geometry);
    FaultPlan plan;
    plan.power_cut_at_op = cut_op;
    flash.InstallFaultPlan(plan);
    FtlEnv env;
    env.flash = &flash;
    env.logical_pages = kLogicalPages;
    env.cache_bytes = cache_bytes;
    env.checkpoint = ckpt_cfg;
    {
      auto ftl = CreateFtl(kind, env);
      Drive(*ftl, flash, ops, write_ratio);
    }
    flash.RestoreToCutInstant();

    env.recover_from_flash = true;
    env.checkpoint.force_scan_recovery = force_scan;
    const auto start = std::chrono::steady_clock::now();
    auto recovered = CreateFtl(kind, env);
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    BootResult result;
    result.report = *recovered->recovery_report();
    result.wall_ms = elapsed.count();
    return result;
  };

  RecoveryRun run;
  run.ftl = FtlKindName(kind);
  run.write_ratio = write_ratio;
  run.cache_bytes = cache_bytes;
  run.cut_op = cut_op;
  run.checkpoint_interval = ckpt_cfg.interval_host_ops;
  run.ckpt = boot(/*force_scan=*/false);
  run.scan = boot(/*force_scan=*/true);
  // The two boots saw the same crashed image: they must agree on the state.
  TPFTL_CHECK_MSG(run.ckpt.report.data_mappings == run.scan.report.data_mappings,
                  "checkpointed and scan recovery disagree on the mapping count");
  return run;
}

OverheadRun MeasureOverhead(FtlKind kind, uint64_t ops, double write_ratio) {
  const FlashGeometry geometry = BenchGeometry();
  const uint64_t cache_bytes = PaperCacheBytes(geometry, kLogicalPages);
  const auto drive = [&](const CheckpointConfig& ckpt_cfg) {
    NandFlash flash(geometry);
    FtlEnv env;
    env.flash = &flash;
    env.logical_pages = kLogicalPages;
    env.cache_bytes = cache_bytes;
    env.checkpoint = ckpt_cfg;
    auto ftl = CreateFtl(kind, env);
    return Drive(*ftl, flash, ops, write_ratio);
  };

  OverheadRun run;
  run.ftl = FtlKindName(kind);
  const CheckpointConfig on = PerKindCheckpoint(kind);
  run.checkpoint_interval = on.interval_host_ops;
  run.baseline_ms = drive(CheckpointConfig{}) / 1000.0;
  run.checkpointed_ms = drive(on) / 1000.0;
  return run;
}

// Capacity sweep: a bounded workload (~1 GB footprint) on devices whose
// virtual capacity grows to 1 TB. No cut — the point is the reboot-time
// asymptotics, so each boot flavor drives its own identical fault-free world
// and reboots it from flash.
CapacityRun MeasureCapacity(FtlKind kind, uint64_t capacity_gb, uint64_t hot_updates) {
  FlashGeometry g = MakeGeometry(capacity_gb << 30);
  g.sparse_segment_pages = 1 << 16;  // 64Ki-page arena segments (multiple of
                                     // the 1024-entry translation page).
  const uint64_t logical_pages = (capacity_gb << 30) / g.page_size_bytes;
  const uint64_t prefill = std::min<uint64_t>(logical_pages, 262144);  // ≤1 GB.

  CheckpointConfig ckpt_cfg;
  ckpt_cfg.enabled = true;
  ckpt_cfg.interval_host_ops = 1024;
  ckpt_cfg.max_journal_records = 64;

  CapacityRun run;
  run.ftl = FtlKindName(kind);
  run.capacity_gb = capacity_gb;
  run.logical_pages = logical_pages;
  run.footprint_pages = prefill;

  const auto boot = [&](bool force_scan) {
    NandFlash flash(g);
    FtlEnv env;
    env.flash = &flash;
    env.logical_pages = logical_pages;
    env.cache_bytes = PaperCacheBytes(g, logical_pages);
    env.checkpoint = ckpt_cfg;
    {
      auto ftl = CreateFtl(kind, env);
      for (Lpn lpn = 0; lpn < prefill; ++lpn) {
        ftl->WritePage(lpn);
      }
      Rng rng(7);
      for (uint64_t i = 0; i < hot_updates; ++i) {
        ftl->WritePage(rng.Below(prefill));
      }
    }
    run.resident_segments = flash.ResidentSegments();

    env.recover_from_flash = true;
    env.checkpoint.force_scan_recovery = force_scan;
    const auto start = std::chrono::steady_clock::now();
    auto recovered = CreateFtl(kind, env);
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    BootResult result;
    result.report = *recovered->recovery_report();
    result.wall_ms = elapsed.count();
    return result;
  };

  run.ckpt = boot(/*force_scan=*/false);
  run.scan = boot(/*force_scan=*/true);
  TPFTL_CHECK_MSG(run.ckpt.report.data_mappings == run.scan.report.data_mappings,
                  "checkpointed and scan recovery disagree on the mapping count");
  return run;
}

void AddRow(Table& table, const RecoveryRun& r, const std::string& first_column) {
  table.AddRow({first_column, std::to_string(r.scan.report.pages_scanned),
                std::to_string(r.ckpt.report.pages_scanned),
                std::to_string(r.ckpt.report.journal_records_replayed),
                std::to_string(r.ckpt.report.blocks_rescanned),
                FormatDouble(RebootMs(r.scan.report), 2),
                FormatDouble(RebootMs(r.ckpt.report), 2),
                FormatDouble(r.speedup(), 1) + "x"});
}

void WriteJson(const std::vector<RecoveryRun>& runs,
               const std::vector<OverheadRun>& overheads,
               const std::vector<CapacityRun>& capacities, std::ostream& os) {
  os << "{\n  \"schema\": \"tpftl.bench_recovery.v2\",\n  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const RecoveryRun& r = runs[i];
    os << "    {\"ftl\": \"" << r.ftl << "\", \"write_ratio\": " << FormatDouble(r.write_ratio, 2)
       << ", \"cache_bytes\": " << r.cache_bytes << ", \"cut_op\": " << r.cut_op
       << ", \"checkpoint_interval\": " << r.checkpoint_interval
       << ", \"scan_pages_scanned\": " << r.scan.report.pages_scanned
       << ", \"scan_ms\": " << FormatDouble(RebootMs(r.scan.report), 3)
       << ", \"scan_wall_ms\": " << FormatDouble(r.scan.wall_ms, 3)
       << ", \"ckpt_used_checkpoint\": " << (r.ckpt.report.used_checkpoint ? "true" : "false")
       << ", \"ckpt_pages_scanned\": " << r.ckpt.report.pages_scanned
       << ", \"ckpt_ms\": " << FormatDouble(RebootMs(r.ckpt.report), 3)
       << ", \"ckpt_wall_ms\": " << FormatDouble(r.ckpt.wall_ms, 3)
       << ", \"journal_records_replayed\": " << r.ckpt.report.journal_records_replayed
       << ", \"blocks_rescanned\": " << r.ckpt.report.blocks_rescanned
       << ", \"checkpoint_bytes_read\": " << r.ckpt.report.checkpoint_bytes_read
       << ", \"data_mappings\": " << r.ckpt.report.data_mappings
       << ", \"unpersisted_window\": " << r.ckpt.report.unpersisted_window
       << ", \"reboot_speedup\": " << FormatDouble(r.speedup(), 2) << "}"
       << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"foreground_overhead\": [\n";
  for (size_t i = 0; i < overheads.size(); ++i) {
    const OverheadRun& o = overheads[i];
    os << "    {\"ftl\": \"" << o.ftl
       << "\", \"checkpoint_interval\": " << o.checkpoint_interval
       << ", \"baseline_ms\": " << FormatDouble(o.baseline_ms, 3)
       << ", \"checkpointed_ms\": " << FormatDouble(o.checkpointed_ms, 3)
       << ", \"overhead_pct\": " << FormatDouble(o.overhead_pct(), 3) << "}"
       << (i + 1 < overheads.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"capacity_sweep\": [\n";
  for (size_t i = 0; i < capacities.size(); ++i) {
    const CapacityRun& c = capacities[i];
    os << "    {\"ftl\": \"" << c.ftl << "\", \"capacity_gb\": " << c.capacity_gb
       << ", \"logical_pages\": " << c.logical_pages
       << ", \"footprint_pages\": " << c.footprint_pages
       << ", \"resident_segments\": " << c.resident_segments
       << ", \"scan_pages_scanned\": " << c.scan.report.pages_scanned
       << ", \"scan_ms\": " << FormatDouble(RebootMs(c.scan.report), 3)
       << ", \"scan_wall_ms\": " << FormatDouble(c.scan.wall_ms, 3)
       << ", \"ckpt_ms\": " << FormatDouble(RebootMs(c.ckpt.report), 3)
       << ", \"ckpt_wall_ms\": " << FormatDouble(c.ckpt.wall_ms, 3)
       << ", \"journal_records_replayed\": " << c.ckpt.report.journal_records_replayed
       << ", \"blocks_rescanned\": " << c.ckpt.report.blocks_rescanned
       << ", \"checkpoint_bytes_read\": " << c.ckpt.report.checkpoint_bytes_read
       << ", \"reboot_speedup\": " << FormatDouble(c.speedup(), 2) << "}"
       << (i + 1 < capacities.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

int Main(int argc, char** argv) {
  std::string json_path = "BENCH_recovery.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::cerr << "usage: bench_ext_recovery [--json=F]" << std::endl;
      return 1;
    }
  }
  const uint64_t ops = bench::RequestsFromEnv(150000);
  const uint64_t max_capacity_gb = MaxCapacityGbFromEnv();
  const std::vector<std::string> columns = {"",         "scan pages", "ckpt pages",
                                            "replayed", "rescanned",  "scan ms",
                                            "ckpt ms",  "speedup"};
  std::vector<RecoveryRun> runs;
  std::vector<OverheadRun> overheads;
  std::vector<CapacityRun> capacities;

  Table by_ftl("Reboot after a power cut — checkpointed vs full scan, all FTLs, 50% writes, " +
               std::to_string(ops) + " ops");
  by_ftl.SetColumns(columns);
  for (const FtlKind kind : bench::AllFtls()) {
    std::cerr << "  recovering " << FtlKindName(kind) << " ..." << std::endl;
    RecoveryRun r = MeasureOne(kind, ops, 0.5);
    AddRow(by_ftl, r, r.ftl);
    runs.push_back(std::move(r));
  }
  bench::Emit(by_ftl);

  // The paper budget (1x) caches a few dozen entries; ~170x holds the whole
  // 6144-entry mapping. The sweep crosses that transition.
  Table dirtiness("Reboot cost vs cache dirtiness — TPFTL across cache budgets, 50% writes");
  dirtiness.SetColumns(columns);
  for (const uint64_t multiplier : {1, 16, 48, 96, 192}) {
    std::cerr << "  recovering TPFTL at " << multiplier << "x cache ..." << std::endl;
    RecoveryRun r = MeasureOne(FtlKind::kTpftl, ops, 0.5, multiplier);
    AddRow(dirtiness, r, FormatBytes(r.cache_bytes));
    runs.push_back(std::move(r));
  }
  bench::Emit(dirtiness);

  Table overhead_table("Foreground cost of journaling + checkpoints — same workload, off vs on");
  overhead_table.SetColumns({"", "interval", "baseline ms", "ckpt ms", "overhead %"});
  for (const FtlKind kind : bench::AllFtls()) {
    std::cerr << "  overhead " << FtlKindName(kind) << " ..." << std::endl;
    OverheadRun o = MeasureOverhead(kind, ops, 0.5);
    overhead_table.AddRow({o.ftl, std::to_string(o.checkpoint_interval),
                           FormatDouble(o.baseline_ms, 1), FormatDouble(o.checkpointed_ms, 1),
                           FormatDouble(o.overhead_pct(), 3)});
    overheads.push_back(std::move(o));
  }
  bench::Emit(overhead_table);

  Table capacity_table("Reboot time vs device capacity — 1 GB footprint, sparse arenas (max " +
                       std::to_string(max_capacity_gb) + " GB)");
  capacity_table.SetColumns({"", "capacity", "scan pages", "scan reboot s", "ckpt reboot ms",
                             "resident segs", "speedup"});
  const uint64_t hot_updates = std::min<uint64_t>(ops / 3, 50000);
  for (const uint64_t gb : {4, 32, 256, 1024}) {
    if (gb > max_capacity_gb) {
      std::cerr << "  capacity " << gb << " GB skipped (TPFTL_BENCH_MAX_CAPACITY_GB="
                << max_capacity_gb << ")" << std::endl;
      continue;
    }
    for (const FtlKind kind : {FtlKind::kDftl, FtlKind::kTpftl}) {
      std::cerr << "  capacity " << gb << " GB " << FtlKindName(kind) << " ..." << std::endl;
      CapacityRun c = MeasureCapacity(kind, gb, hot_updates);
      capacity_table.AddRow({c.ftl, std::to_string(gb) + " GB",
                             std::to_string(c.scan.report.pages_scanned),
                             FormatDouble(RebootMs(c.scan.report) / 1000.0, 1),
                             FormatDouble(RebootMs(c.ckpt.report), 1),
                             std::to_string(c.resident_segments),
                             FormatDouble(c.speedup(), 0) + "x"});
      capacities.push_back(std::move(c));
    }
  }
  bench::Emit(capacity_table);

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "error: cannot write " << json_path << std::endl;
    return 1;
  }
  WriteJson(runs, overheads, capacities, out);
  std::cerr << "wrote " << json_path << std::endl;
  return 0;
}

}  // namespace
}  // namespace tpftl

int main(int argc, char** argv) { return tpftl::Main(argc, argv); }
