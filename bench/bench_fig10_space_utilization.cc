// Figure 10 — improvement of cache space utilization over DFTL.
//
// TPFTL stores a mapping entry in 6 B (offset-compressed) versus DFTL's 8 B,
// so at equal byte budgets it holds more entries — up to the 33 % limit of
// the 8 B → 6 B compression, minus TP-node overhead. The improvement grows
// with the cache (fixed overheads amortize) and with sequentiality (entries
// cluster into fewer nodes), so the MSR-like workloads gain the most.
//
// Utilization is sampled during the run (entry counts fluctuate with
// prefetching and batch evictions), matching the paper's methodology of
// measuring the live cache rather than a theoretical bound.

#include "bench/bench_common.h"

#include "src/util/running_stats.h"

int main() {
  using namespace tpftl;
  using namespace tpftl::bench;

  const uint64_t requests = RequestsFromEnv();
  const std::vector<uint64_t> divisors = {128, 64, 32, 16, 8};
  constexpr uint64_t kSampleEvery = 2000;

  Table table("Figure 10 — Cache space utilization improvement of TPFTL over DFTL "
              "(entries held at equal byte budget)");
  std::vector<std::string> headers = {"Workload"};
  for (const uint64_t d : divisors) {
    headers.push_back("1/" + std::to_string(d));
  }
  table.SetColumns(std::move(headers));

  for (const WorkloadConfig& workload : PaperWorkloads(requests)) {
    std::vector<std::string> cells = {workload.name};
    for (const uint64_t divisor : divisors) {
      const uint64_t cache_bytes = FullTableBytes(workload) / divisor;
      RunningStats tpftl_entries;
      RunningStats dftl_entries;
      auto sample_into = [&](RunningStats& stats) {
        return [&stats](const Ssd& ssd, uint64_t index) {
          if (index % kSampleEvery == 0) {
            stats.Add(static_cast<double>(ssd.ftl().cache_entry_count()));
          }
        };
      };
      RunOne(workload, FtlKind::kTpftl, {}, cache_bytes, sample_into(tpftl_entries));
      RunOne(workload, FtlKind::kDftl, {}, cache_bytes, sample_into(dftl_entries));
      const double improvement =
          dftl_entries.mean() > 0.0 ? 100.0 * (tpftl_entries.mean() / dftl_entries.mean() - 1.0)
                                    : 0.0;
      cells.push_back(FormatDouble(improvement, 1) + "%");
    }
    table.AddRow(std::move(cells));
  }
  Emit(table);
  return 0;
}
