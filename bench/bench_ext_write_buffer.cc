// Extension — data buffer + mapping cache interaction (not a paper artifact).
//
// §2.1 notes the internal RAM is split between a data buffer and the mapping
// cache. This harness gives each FTL a CFLRU data buffer of increasing size
// and reports how flash writes, write amplification, and response time react
// — showing that the data buffer attacks *data* traffic while TPFTL's
// contribution attacks *translation* traffic: the two compose.

#include "bench/bench_common.h"

int main() {
  using namespace tpftl;
  using namespace tpftl::bench;

  const uint64_t requests = RequestsFromEnv();
  const WorkloadConfig workload = Financial1Profile(requests);
  const std::vector<uint64_t> buffer_pages = {0, 256, 1024, 4096};

  for (const FtlKind kind : {FtlKind::kDftl, FtlKind::kTpftl}) {
    Table table(std::string("CFLRU data buffer sweep — ") + FtlKindName(kind) +
                " on Financial1 (" + std::to_string(requests) + " requests)");
    table.SetColumns(
        {"buffer (pages)", "flash writes", "WA", "resp(us)", "buffer write hits", "flushes"});
    for (const uint64_t pages : buffer_pages) {
      ExperimentConfig config;
      config.workload = workload;
      config.ftl_kind = kind;
      config.write_buffer.capacity_pages = pages;
      std::cerr << "  running " << FtlKindName(kind) << " buffer=" << pages << " ..."
                << std::endl;
      uint64_t write_hits = 0;
      uint64_t flushes = 0;
      const RunReport r = RunExperiment(config, [&](const Ssd& ssd, uint64_t) {
        write_hits = ssd.write_buffer().stats().write_hits;
        flushes = ssd.write_buffer().stats().flushes;
      });
      table.AddRow({std::to_string(pages), std::to_string(r.flash.page_writes),
                    FormatDouble(r.write_amplification, 2), FormatDouble(r.mean_response_us, 0),
                    std::to_string(write_hits), std::to_string(flushes)});
    }
    Emit(table);
  }
  return 0;
}
