// Figure 1 — distribution of entries in DFTL's mapping cache.
//
// (a) Average number of cached entries per cached translation page, sampled
//     over the run (paper: ≤150, mostly ≤90 — only a small fraction of a
//     1024-entry page is hot at once).
// (b) CDF of cached translation pages by their number of cached *dirty*
//     entries, for the three write-dominant workloads (paper: 53–71 % of
//     pages hold more than one dirty entry; the mean exceeds 15).
//
// Both observations motivate TPFTL: clustering per page (a) and batch
// updates (b).

#include "bench/bench_common.h"

#include "src/ftl/dftl.h"
#include "src/util/histogram.h"
#include "src/util/running_stats.h"

int main() {
  using namespace tpftl;
  using namespace tpftl::bench;

  const uint64_t requests = RequestsFromEnv();
  constexpr uint64_t kSampleEvery = 5000;  // Requests between cache samples.

  struct WorkloadResult {
    std::string name;
    RunningStats entries_per_page;
    RunningStats dirty_per_page;
    Histogram dirty_cdf{256};
    double entries_per_tp_capacity = 0.0;
  };
  std::vector<WorkloadResult> results;

  for (const WorkloadConfig& workload : PaperWorkloads(requests)) {
    WorkloadResult result;
    result.name = workload.name;
    auto observer = [&](const Ssd& ssd, uint64_t index) {
      if (index % kSampleEvery != 0) {
        return;
      }
      const auto* dftl = dynamic_cast<const Dftl*>(&ssd.ftl());
      if (dftl == nullptr) {
        return;
      }
      const auto occupancy = dftl->OccupancyByPage();
      if (occupancy.empty()) {
        return;
      }
      uint64_t entries = 0;
      for (const auto& [vtpn, occ] : occupancy) {
        entries += occ.entries;
        result.dirty_cdf.Add(occ.dirty_entries);
        result.dirty_per_page.Add(static_cast<double>(occ.dirty_entries));
      }
      result.entries_per_page.Add(static_cast<double>(entries) /
                                  static_cast<double>(occupancy.size()));
    };
    const RunReport report = RunOne(workload, FtlKind::kDftl, {}, 0, observer);
    (void)report;
    results.push_back(std::move(result));
  }

  Table fig1a("Figure 1(a) — Avg cached entries per cached translation page (DFTL, " +
              std::to_string(requests) + " requests; 1024 entries per page)");
  fig1a.SetColumns({"Workload", "mean", "min", "max", "fraction of page"});
  for (const auto& r : results) {
    fig1a.AddRow({r.name, FormatDouble(r.entries_per_page.mean(), 1),
                  FormatDouble(r.entries_per_page.min(), 1),
                  FormatDouble(r.entries_per_page.max(), 1),
                  FormatDouble(100.0 * r.entries_per_page.mean() / 1024.0, 1) + "%"});
  }
  Emit(fig1a);

  Table fig1b("Figure 1(b) — CDF of cached translation pages by cached dirty entries "
              "(write-dominant workloads)");
  fig1b.SetColumns({"Workload", "P(d<=0)", "P(d<=1)", "P(d<=2)", "P(d<=5)", "P(d<=10)",
                    "P(d<=15)", "P(d<=30)", "avg dirty"});
  for (const auto& r : results) {
    if (r.name == "Financial2") {
      continue;  // Read-dominant: the paper plots the other three.
    }
    std::vector<std::string> cells = {r.name};
    for (const uint64_t x : {0, 1, 2, 5, 10, 15, 30}) {
      cells.push_back(FormatDouble(100.0 * r.dirty_cdf.CdfAt(x), 1) + "%");
    }
    cells.push_back(FormatDouble(r.dirty_per_page.mean(), 1));
    fig1b.AddRow(std::move(cells));
    if (r.dirty_cdf.overflow() > 0) {
      fig1b.AddWarning(r.name + ": " + std::to_string(r.dirty_cdf.overflow()) +
                       " samples exceeded the " +
                       std::to_string(r.dirty_cdf.max_value()) +
                       "-entry histogram cap — the CDF tail is understated");
    }
  }
  Emit(fig1b);
  return 0;
}
