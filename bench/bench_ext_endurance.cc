// Extension — device-aging endurance harness (not a paper artifact).
//
// Quantifies what the GC-and-endurance subsystem buys: hot/cold write
// streams (src/ftl/heat.h) and the wear-leveling policy layer (dynamic
// least-worn allocation + static cold-data migration), across the FTL
// families that survive aging. Three sections:
//   1. Wear profile under fixed work: the same skewed churn (80% of writes
//      hammer 1/8 of the space) on an unlimited-endurance device, per
//      FTL × GC policy × {off, streams, streams+leveling}. Streams must cut
//      write amplification; leveling must cut the erase-count max and
//      variance. Merge-kind and stream-split counters ride along.
//   2. End-of-life lifetime: the same matrix on an erase-limited device
//      (every block dies after kMaxEraseCycles erases, worn blocks are
//      bad-blocked), driven until the FTL latches worn_out(). The metric is
//      lifetime host bytes written before the device dies.
//   3. Capacity sweep: the skewed churn on sparse arena devices up to 1 TB —
//      heat classification and wear bookkeeping must ride the materialized
//      footprint, not the virtual capacity.
//
//   bench_ext_endurance [--json=F]   (default BENCH_endurance.json)
// Knobs: TPFTL_BENCH_REQUESTS        — operations per run (default 60000).
//        TPFTL_BENCH_MAX_CAPACITY_GB — cap the capacity sweep (default 1024;
//                                      CI smoke uses 64 to bound RAM/wall).

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/ftl_factory.h"
#include "src/flash/nand.h"
#include "src/util/assert.h"
#include "src/util/rng.h"

namespace tpftl {
namespace {

// Small enough that end-of-life is reachable in seconds, big enough for
// steady-state GC and a real erase histogram.
FlashGeometry BenchGeometry(uint64_t max_erase_cycles) {
  FlashGeometry g;
  g.page_size_bytes = 2048;
  g.pages_per_block = 32;
  g.total_blocks = 128;
  g.max_erase_cycles = max_erase_cycles;
  return g;
}

constexpr uint64_t kLogicalPages = 3072;  // 75% of the 4096 physical pages.
// Small enough that the hot set's rewrite interval fits inside the log/GC
// window of every contender — separation can only pay off if hot blocks get
// a chance to self-invalidate before they are reclaimed.
constexpr uint64_t kHotSetPages = kLogicalPages / 16;
constexpr uint64_t kMaxEraseCycles = 16;  // EOL section only; 0 elsewhere.

uint64_t MaxCapacityGbFromEnv() {
  const char* env = std::getenv("TPFTL_BENCH_MAX_CAPACITY_GB");
  if (env != nullptr) {
    const uint64_t parsed = std::strtoull(env, nullptr, 10);
    if (parsed > 0) {
      return parsed;
    }
  }
  return 1024;
}

// The leveling-mode axis. "off" is the legacy single-stream FIFO build;
// "streams" adds hot/cold separation only; "leveling" stacks the dynamic +
// static wear-leveling policy layer on top of the streams.
struct Mode {
  const char* name;
  uint32_t data_streams;
  bool leveling;
};

constexpr Mode kModes[] = {
    {"off", 1, false},
    {"streams", 2, false},
    {"leveling", 2, true},
};

void ApplyMode(FtlEnv& env, const Mode& mode) {
  env.data_streams = mode.data_streams;
  env.dynamic_leveling = mode.leveling;
  env.static_leveling = mode.leveling;
  env.static_level_threshold = 8;
}

// Erase-count distribution over every block of the device.
struct EraseProfile {
  uint64_t min = 0;
  uint64_t max = 0;
  double mean = 0.0;
  double variance = 0.0;
};

EraseProfile ProfileErases(const NandFlash& flash) {
  const uint64_t blocks = flash.geometry().total_blocks;
  EraseProfile p;
  p.min = ~0ULL;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (BlockId b = 0; b < blocks; ++b) {
    const uint64_t e = flash.block(b).erase_count();
    p.min = std::min(p.min, e);
    p.max = std::max(p.max, e);
    sum += static_cast<double>(e);
    sum_sq += static_cast<double>(e) * static_cast<double>(e);
  }
  p.mean = sum / static_cast<double>(blocks);
  p.variance = sum_sq / static_cast<double>(blocks) - p.mean * p.mean;
  return p;
}

uint64_t RetiredBlocks(const NandFlash& flash) {
  uint64_t n = 0;
  for (BlockId b = 0; b < flash.geometry().total_blocks; ++b) {
    if (flash.IsBad(b) || flash.IsWornOut(b)) {
      ++n;
    }
  }
  return n;
}

struct EnduranceRun {
  std::string ftl;
  std::string gc_policy;
  std::string mode;
  uint32_t data_streams = 1;
  bool leveling = false;
  uint64_t host_writes = 0;
  uint64_t lifetime_bytes = 0;
  bool reached_eol = false;
  double wa = 0.0;
  EraseProfile erase;
  uint64_t retired_blocks = 0;
  uint64_t static_level_blocks = 0;
  uint64_t switch_merges = 0;
  uint64_t partial_merges = 0;
  uint64_t full_merges = 0;
  std::vector<uint64_t> stream_writes;
};

// The skewed churn every section shares: 80% of writes land on the hottest
// 1/8 of the logical space. Stops early once the device latches end-of-life.
uint64_t DriveChurn(Ftl& ftl, uint64_t ops, Rng& rng) {
  uint64_t writes = 0;
  for (uint64_t i = 0; i < ops; ++i) {
    if (ftl.worn_out()) {
      break;
    }
    const Lpn lpn =
        rng.Below(10) < 8 ? rng.Below(kHotSetPages) : rng.Below(kLogicalPages);
    ftl.WritePage(lpn);
    ++writes;
  }
  return writes;
}

EnduranceRun MeasureOne(FtlKind kind, GcPolicy policy, const char* policy_name,
                        const Mode& mode, uint64_t ops,
                        uint64_t max_erase_cycles) {
  const FlashGeometry geometry = BenchGeometry(max_erase_cycles);
  NandFlash flash(geometry);
  FtlEnv env;
  env.flash = &flash;
  env.logical_pages = kLogicalPages;
  env.cache_bytes = PaperCacheBytes(geometry, kLogicalPages);
  env.gc_policy = policy;
  ApplyMode(env, mode);
  auto ftl = CreateFtl(kind, env);
  flash.ResetStats();  // Exclude construction-time formatting.

  Rng rng(2026);
  EnduranceRun run;
  run.host_writes = DriveChurn(*ftl, ops, rng);
  run.ftl = FtlKindName(kind);
  run.gc_policy = policy_name;
  run.mode = mode.name;
  run.data_streams = mode.data_streams;
  run.leveling = mode.leveling;
  run.lifetime_bytes = run.host_writes * geometry.page_size_bytes;
  run.reached_eol = ftl->worn_out();
  run.wa = ftl->stats().write_amplification();
  run.erase = ProfileErases(flash);
  run.retired_blocks = RetiredBlocks(flash);
  run.static_level_blocks = ftl->stats().static_level_blocks;
  run.switch_merges = ftl->stats().switch_merges;
  run.partial_merges = ftl->stats().partial_merges;
  run.full_merges = ftl->stats().full_merges;
  run.stream_writes = ftl->stream_write_counts();
  return run;
}

struct CapacityRun {
  std::string ftl;
  uint64_t capacity_gb = 0;
  uint64_t logical_pages = 0;
  uint64_t footprint_pages = 0;
  uint64_t resident_segments = 0;
  uint64_t host_writes = 0;
  double wa = 0.0;
  uint64_t erase_max = 0;
  std::vector<uint64_t> stream_writes;
};

// TB-scale endurance bookkeeping: the same skewed churn bounded to a ~512 MB
// footprint, with streams + leveling on, on sparse arena devices. The heat
// map and wear accounting must stay proportional to the written footprint.
CapacityRun MeasureCapacity(FtlKind kind, uint64_t capacity_gb, uint64_t ops) {
  FlashGeometry g = MakeGeometry(capacity_gb << 30);
  g.sparse_segment_pages = 1 << 16;  // 64Ki-page arena segments.
  const uint64_t logical_pages = (capacity_gb << 30) / g.page_size_bytes;
  const uint64_t footprint = std::min<uint64_t>(logical_pages, 131072);

  NandFlash flash(g);
  FtlEnv env;
  env.flash = &flash;
  env.logical_pages = logical_pages;
  env.cache_bytes = PaperCacheBytes(g, logical_pages);
  ApplyMode(env, kModes[2]);  // streams + leveling.
  auto ftl = CreateFtl(kind, env);
  flash.ResetStats();

  for (Lpn lpn = 0; lpn < footprint; ++lpn) {
    ftl->WritePage(lpn);
  }
  Rng rng(7);
  for (uint64_t i = 0; i < ops; ++i) {
    const Lpn lpn =
        rng.Below(10) < 8 ? rng.Below(footprint / 8) : rng.Below(footprint);
    ftl->WritePage(lpn);
  }

  CapacityRun run;
  run.ftl = FtlKindName(kind);
  run.capacity_gb = capacity_gb;
  run.logical_pages = logical_pages;
  run.footprint_pages = footprint;
  run.resident_segments = flash.ResidentSegments();
  run.host_writes = footprint + ops;
  run.wa = ftl->stats().write_amplification();
  run.erase_max = flash.MaxEraseCount();
  run.stream_writes = ftl->stream_write_counts();
  return run;
}

// The matrix: which GC policies are meaningful per FTL. The log/hybrid FTLs
// (BlockFTL, FAST) run their native merge policy — the BlockManager victim
// policy axis does not exist for them.
struct MatrixEntry {
  FtlKind kind;
  GcPolicy policy;
  const char* policy_name;
};

std::vector<MatrixEntry> Matrix() {
  return {
      {FtlKind::kDftl, GcPolicy::kGreedy, "greedy"},
      {FtlKind::kDftl, GcPolicy::kWearAware, "wear-aware"},
      {FtlKind::kLearned, GcPolicy::kGreedy, "greedy"},
      {FtlKind::kLearned, GcPolicy::kWearAware, "wear-aware"},
      {FtlKind::kBlockFtl, GcPolicy::kGreedy, "native"},
      {FtlKind::kFast, GcPolicy::kGreedy, "native"},
  };
}

std::string JsonUintArray(const std::vector<uint64_t>& v) {
  std::string out = "[";
  for (size_t i = 0; i < v.size(); ++i) {
    out += std::to_string(v[i]);
    if (i + 1 < v.size()) {
      out += ", ";
    }
  }
  return out + "]";
}

void WriteRunJson(const EnduranceRun& r, bool last, std::ostream& os) {
  os << "    {\"ftl\": \"" << r.ftl << "\", \"gc_policy\": \"" << r.gc_policy
     << "\", \"mode\": \"" << r.mode << "\", \"data_streams\": " << r.data_streams
     << ", \"leveling\": " << (r.leveling ? "true" : "false")
     << ", \"host_writes\": " << r.host_writes
     << ", \"lifetime_bytes\": " << r.lifetime_bytes
     << ", \"reached_eol\": " << (r.reached_eol ? "true" : "false")
     << ", \"wa\": " << FormatDouble(r.wa, 3)
     << ", \"erase_min\": " << r.erase.min << ", \"erase_max\": " << r.erase.max
     << ", \"erase_mean\": " << FormatDouble(r.erase.mean, 3)
     << ", \"erase_variance\": " << FormatDouble(r.erase.variance, 3)
     << ", \"retired_blocks\": " << r.retired_blocks
     << ", \"static_level_blocks\": " << r.static_level_blocks
     << ", \"switch_merges\": " << r.switch_merges
     << ", \"partial_merges\": " << r.partial_merges
     << ", \"full_merges\": " << r.full_merges
     << ", \"stream_writes\": " << JsonUintArray(r.stream_writes) << "}"
     << (last ? "" : ",") << "\n";
}

void WriteJson(const std::vector<EnduranceRun>& wear,
               const std::vector<EnduranceRun>& eol,
               const std::vector<CapacityRun>& capacities, std::ostream& os) {
  os << "{\n  \"schema\": \"tpftl.bench_endurance.v1\",\n"
     << "  \"max_erase_cycles\": " << kMaxEraseCycles << ",\n"
     << "  \"wear_profile\": [\n";
  for (size_t i = 0; i < wear.size(); ++i) {
    WriteRunJson(wear[i], i + 1 == wear.size(), os);
  }
  os << "  ],\n  \"end_of_life\": [\n";
  for (size_t i = 0; i < eol.size(); ++i) {
    WriteRunJson(eol[i], i + 1 == eol.size(), os);
  }
  os << "  ],\n  \"capacity_sweep\": [\n";
  for (size_t i = 0; i < capacities.size(); ++i) {
    const CapacityRun& c = capacities[i];
    os << "    {\"ftl\": \"" << c.ftl << "\", \"capacity_gb\": " << c.capacity_gb
       << ", \"logical_pages\": " << c.logical_pages
       << ", \"footprint_pages\": " << c.footprint_pages
       << ", \"resident_segments\": " << c.resident_segments
       << ", \"host_writes\": " << c.host_writes
       << ", \"wa\": " << FormatDouble(c.wa, 3)
       << ", \"erase_max\": " << c.erase_max
       << ", \"stream_writes\": " << JsonUintArray(c.stream_writes) << "}"
       << (i + 1 < capacities.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

std::string RowLabel(const EnduranceRun& r) {
  return r.ftl + "/" + r.gc_policy + "/" + r.mode;
}

int Main(int argc, char** argv) {
  std::string json_path = "BENCH_endurance.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::cerr << "usage: bench_ext_endurance [--json=F]" << std::endl;
      return 1;
    }
  }
  const uint64_t ops = bench::RequestsFromEnv(60000);
  const uint64_t max_capacity_gb = MaxCapacityGbFromEnv();

  std::vector<EnduranceRun> wear;
  Table wear_table("Wear profile under fixed skewed churn — " + std::to_string(ops) +
                   " writes, 80% on 1/16 of the space");
  wear_table.SetColumns({"", "WA", "erase min", "erase mean", "erase max",
                         "variance", "migrated", "stream split"});
  for (const MatrixEntry& entry : Matrix()) {
    for (const Mode& mode : kModes) {
      std::cerr << "  wear " << FtlKindName(entry.kind) << "/" << entry.policy_name
                << "/" << mode.name << " ..." << std::endl;
      EnduranceRun r = MeasureOne(entry.kind, entry.policy, entry.policy_name,
                                  mode, ops, /*max_erase_cycles=*/0);
      std::string split;
      for (size_t s = 0; s < r.stream_writes.size(); ++s) {
        split += (s > 0 ? "/" : "") + std::to_string(r.stream_writes[s]);
      }
      wear_table.AddRow({RowLabel(r), FormatDouble(r.wa, 2), std::to_string(r.erase.min),
                         FormatDouble(r.erase.mean, 1), std::to_string(r.erase.max),
                         FormatDouble(r.erase.variance, 1),
                         std::to_string(r.static_level_blocks), split});
      wear.push_back(std::move(r));
    }
  }
  bench::Emit(wear_table);

  std::vector<EnduranceRun> eol;
  Table eol_table("Lifetime to end-of-life — every block dies after " +
                  std::to_string(kMaxEraseCycles) + " erases");
  eol_table.SetColumns({"", "host writes", "lifetime MB", "WA", "retired", "EOL"});
  const uint64_t eol_cap = ops * 20;  // Safety cap; EOL normally lands first.
  for (const MatrixEntry& entry : Matrix()) {
    for (const Mode& mode : kModes) {
      std::cerr << "  EOL " << FtlKindName(entry.kind) << "/" << entry.policy_name
                << "/" << mode.name << " ..." << std::endl;
      EnduranceRun r = MeasureOne(entry.kind, entry.policy, entry.policy_name,
                                  mode, eol_cap, kMaxEraseCycles);
      eol_table.AddRow({RowLabel(r), std::to_string(r.host_writes),
                        FormatDouble(static_cast<double>(r.lifetime_bytes) / (1 << 20), 1),
                        FormatDouble(r.wa, 2), std::to_string(r.retired_blocks),
                        r.reached_eol ? "yes" : "capped"});
      eol.push_back(std::move(r));
    }
  }
  bench::Emit(eol_table);

  std::vector<CapacityRun> capacities;
  Table capacity_table("Endurance bookkeeping vs device capacity — sparse arenas (max " +
                       std::to_string(max_capacity_gb) + " GB)");
  capacity_table.SetColumns({"", "capacity", "resident segs", "WA", "erase max",
                             "host writes"});
  const uint64_t churn_ops = std::min<uint64_t>(ops / 2, 40000);
  for (const uint64_t gb : {4, 32, 256, 1024}) {
    if (gb > max_capacity_gb) {
      std::cerr << "  capacity " << gb << " GB skipped (TPFTL_BENCH_MAX_CAPACITY_GB="
                << max_capacity_gb << ")" << std::endl;
      continue;
    }
    std::cerr << "  capacity " << gb << " GB ..." << std::endl;
    CapacityRun c = MeasureCapacity(FtlKind::kDftl, gb, churn_ops);
    capacity_table.AddRow({c.ftl, std::to_string(gb) + " GB",
                           std::to_string(c.resident_segments), FormatDouble(c.wa, 2),
                           std::to_string(c.erase_max), std::to_string(c.host_writes)});
    capacities.push_back(std::move(c));
  }
  bench::Emit(capacity_table);

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "error: cannot write " << json_path << std::endl;
    return 1;
  }
  WriteJson(wear, eol, capacities, out);
  std::cerr << "wrote " << json_path << std::endl;
  return 0;
}

}  // namespace
}  // namespace tpftl

int main(int argc, char** argv) { return tpftl::Main(argc, argv); }
