// Micro-benchmarks of the mapping-cache data structures (google-benchmark).
//
// Not a paper artifact: these measure the simulator's own hot paths — cache
// hit/miss/evict costs for TPFTL's two-level cache versus DFTL's segmented
// LRU — so regressions in the data structures are visible independently of
// whole-experiment runtimes.

#include <benchmark/benchmark.h>

#include "src/core/two_level_cache.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace tpftl {
namespace {

TwoLevelCacheOptions CacheOpts(uint64_t budget) {
  TwoLevelCacheOptions o;
  o.budget_bytes = budget;
  o.entries_per_page = 1024;
  return o;
}

void BM_TwoLevelCacheHit(benchmark::State& state) {
  TwoLevelCache cache(CacheOpts(1 << 20));
  for (Lpn lpn = 0; lpn < 10000; ++lpn) {
    cache.Insert(lpn, lpn + 1, false);
  }
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Lookup(rng.Below(10000)));
  }
}
BENCHMARK(BM_TwoLevelCacheHit);

void BM_TwoLevelCacheMissInsertEvict(benchmark::State& state) {
  TwoLevelCache cache(CacheOpts(64 << 10));
  Rng rng(2);
  for (auto _ : state) {
    const Lpn lpn = rng.Below(1 << 20);
    if (!cache.Contains(lpn)) {
      while (!cache.HasSpaceFor(lpn)) {
        const auto victim = cache.PickVictim(true);
        cache.Evict(victim->vtpn, victim->slot);
      }
      cache.Insert(lpn, lpn, rng.Chance(0.5));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoLevelCacheMissInsertEvict);

void BM_TwoLevelCacheZipfMix(benchmark::State& state) {
  // Realistic mixture: Zipf-skewed lookups with inserts on miss.
  TwoLevelCache cache(CacheOpts(256 << 10));
  ZipfGenerator zipf(1 << 20, 1.1);
  Rng rng(3);
  for (auto _ : state) {
    const Lpn lpn = zipf.Sample(rng);
    if (!cache.Lookup(lpn).has_value()) {
      while (!cache.HasSpaceFor(lpn)) {
        const auto victim = cache.PickVictim(true);
        cache.Evict(victim->vtpn, victim->slot);
      }
      cache.Insert(lpn, lpn, false);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoLevelCacheZipfMix);

void BM_BatchCollectDirty(benchmark::State& state) {
  // Cost of DirtyEntriesOf + MarkAllClean on a node with `range(0)` dirty
  // entries — the §4.4 batch-update inner loop.
  const auto dirty = static_cast<uint64_t>(state.range(0));
  TwoLevelCache cache(CacheOpts(1 << 20));
  for (uint64_t i = 0; i < dirty; ++i) {
    cache.Insert(i, i, true);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.DirtyEntriesOf(0));
    benchmark::DoNotOptimize(cache.MarkAllClean(0));
    state.PauseTiming();
    for (uint64_t i = 0; i < dirty; ++i) {
      cache.Update(i, i, true);  // Re-dirty for the next iteration.
    }
    state.ResumeTiming();
  }
}
BENCHMARK(BM_BatchCollectDirty)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_ZipfSample(benchmark::State& state) {
  ZipfGenerator zipf(1 << 22, 1.2);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

}  // namespace
}  // namespace tpftl

BENCHMARK_MAIN();
