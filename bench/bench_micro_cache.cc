// Micro-benchmarks of the mapping-cache data structures.
//
// Not a paper artifact: these measure the simulator's own hot paths — cache
// hit/miss/evict costs for TPFTL's two-level cache — so regressions in the
// data structures are visible independently of whole-experiment runtimes.
//
// Two modes:
//   default            — google-benchmark micro-benchmarks (ns/op).
//   --throughput[=F]   — fixed-op throughput runs (ops/sec) written as
//                        machine-readable JSON to F (default BENCH_cache.json)
//                        and echoed to stdout, so the perf trajectory of the
//                        cache is tracked across PRs. Op count is tunable via
//                        TPFTL_BENCH_CACHE_OPS (default 2000000).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/two_level_cache.h"
#include "src/util/rng.h"
#include "src/util/str.h"
#include "src/util/zipf.h"

namespace tpftl {
namespace {

TwoLevelCacheOptions CacheOpts(uint64_t budget) {
  TwoLevelCacheOptions o;
  o.budget_bytes = budget;
  o.entries_per_page = 1024;
  return o;
}

void BM_TwoLevelCacheHit(benchmark::State& state) {
  TwoLevelCache cache(CacheOpts(1 << 20));
  for (Lpn lpn = 0; lpn < 10000; ++lpn) {
    cache.Insert(lpn, lpn + 1, false);
  }
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Lookup(rng.Below(10000)));
  }
}
BENCHMARK(BM_TwoLevelCacheHit);

void BM_TwoLevelCacheMissInsertEvict(benchmark::State& state) {
  TwoLevelCache cache(CacheOpts(64 << 10));
  Rng rng(2);
  for (auto _ : state) {
    const Lpn lpn = rng.Below(1 << 20);
    if (!cache.Contains(lpn)) {
      while (!cache.HasSpaceFor(lpn)) {
        const auto victim = cache.PickVictim(true);
        cache.Evict(victim->vtpn, victim->slot);
      }
      cache.Insert(lpn, lpn, rng.Chance(0.5));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoLevelCacheMissInsertEvict);

void BM_TwoLevelCacheZipfMix(benchmark::State& state) {
  // Realistic mixture: Zipf-skewed lookups with inserts on miss.
  TwoLevelCache cache(CacheOpts(256 << 10));
  ZipfGenerator zipf(1 << 20, 1.1);
  Rng rng(3);
  for (auto _ : state) {
    const Lpn lpn = zipf.Sample(rng);
    if (!cache.Lookup(lpn).has_value()) {
      while (!cache.HasSpaceFor(lpn)) {
        const auto victim = cache.PickVictim(true);
        cache.Evict(victim->vtpn, victim->slot);
      }
      cache.Insert(lpn, lpn, false);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoLevelCacheZipfMix);

void BM_BatchCollectDirty(benchmark::State& state) {
  // Cost of DirtyEntriesOf + MarkAllClean on a node with `range(0)` dirty
  // entries — the §4.4 batch-update inner loop.
  const auto dirty = static_cast<uint64_t>(state.range(0));
  TwoLevelCache cache(CacheOpts(1 << 20));
  for (uint64_t i = 0; i < dirty; ++i) {
    cache.Insert(i, i, true);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.DirtyEntriesOf(0));
    benchmark::DoNotOptimize(cache.MarkAllClean(0));
    state.PauseTiming();
    for (uint64_t i = 0; i < dirty; ++i) {
      cache.Update(i, i, true);  // Re-dirty for the next iteration.
    }
    state.ResumeTiming();
  }
}
BENCHMARK(BM_BatchCollectDirty)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_ZipfSample(benchmark::State& state) {
  ZipfGenerator zipf(1 << 22, 1.2);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

// ---------------------------------------------------------------------------
// Throughput mode.

struct ThroughputResult {
  std::string name;
  uint64_t ops = 0;
  double seconds = 0.0;
  double ops_per_sec() const { return seconds > 0.0 ? static_cast<double>(ops) / seconds : 0.0; }
};

template <typename Fn>
ThroughputResult TimeOps(const std::string& name, uint64_t ops, Fn&& op) {
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < ops; ++i) {
    op();
  }
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  return ThroughputResult{name, ops, elapsed.count()};
}

uint64_t ThroughputOps() {
  if (const char* env = std::getenv("TPFTL_BENCH_CACHE_OPS")) {
    const auto parsed = ParseU64(env);
    if (parsed.has_value() && *parsed > 0) {
      return *parsed;
    }
    std::cerr << "warning: TPFTL_BENCH_CACHE_OPS='" << env
              << "' is not a positive integer; using default 2000000" << std::endl;
  }
  return 2'000'000;
}

// Pure hit path: every Lookup touches an entry and lazily dirties the
// page-level ordering — the single most-executed operation of a simulation.
ThroughputResult RunHitLookup(uint64_t ops) {
  TwoLevelCache cache(CacheOpts(1 << 20));
  for (Lpn lpn = 0; lpn < 10000; ++lpn) {
    cache.Insert(lpn, lpn + 1, false);
  }
  Rng rng(1);
  uint64_t sink = 0;
  auto result = TimeOps("hit_lookup", ops, [&] {
    const auto hit = cache.Lookup(rng.Below(10000));
    sink += hit.has_value() ? *hit : 0;
  });
  benchmark::DoNotOptimize(sink);
  return result;
}

// Miss-dominated churn: uniform addresses over a space 16× the budget, so
// nearly every op runs PickVictim + Evict + Insert (slab reuse, node
// creation/destruction, lazy-heap reconciliation).
ThroughputResult RunInsertEvictChurn(uint64_t ops) {
  TwoLevelCache cache(CacheOpts(64 << 10));
  Rng rng(2);
  return TimeOps("insert_evict_churn", ops, [&] {
    const Lpn lpn = rng.Below(1 << 20);
    if (!cache.Contains(lpn)) {
      while (!cache.HasSpaceFor(lpn)) {
        const auto victim = cache.PickVictim(true);
        cache.Evict(victim->vtpn, victim->slot);
      }
      cache.Insert(lpn, lpn, rng.Chance(0.5));
    }
  });
}

// Clean-first victim selection under a ~90 % dirty cache: stresses the
// segregated clean/dirty tails (the former reverse scan's worst case).
ThroughputResult RunPickVictimDirty(uint64_t ops) {
  TwoLevelCache cache(CacheOpts(64 << 10));
  Rng rng(5);
  return TimeOps("pick_victim_dirty_churn", ops, [&] {
    const Lpn lpn = rng.Below(1 << 20);
    if (!cache.Contains(lpn)) {
      while (!cache.HasSpaceFor(lpn)) {
        const auto victim = cache.PickVictim(true);
        cache.Evict(victim->vtpn, victim->slot);
      }
      cache.Insert(lpn, lpn, rng.Chance(0.9));
    }
  });
}

// Zipf-skewed hit/miss mixture — the closest microcosm of a real run.
ThroughputResult RunZipfMix(uint64_t ops) {
  TwoLevelCache cache(CacheOpts(256 << 10));
  ZipfGenerator zipf(1 << 20, 1.1);
  Rng rng(3);
  return TimeOps("zipf_mix", ops, [&] {
    const Lpn lpn = zipf.Sample(rng);
    if (!cache.Lookup(lpn).has_value()) {
      while (!cache.HasSpaceFor(lpn)) {
        const auto victim = cache.PickVictim(true);
        cache.Evict(victim->vtpn, victim->slot);
      }
      cache.Insert(lpn, lpn, false);
    }
  });
}

void WriteThroughputJson(const std::vector<ThroughputResult>& results, std::ostream& os) {
  os << "{\n  \"schema\": \"tpftl.bench_cache.v1\",\n  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ThroughputResult& r = results[i];
    os << "    {\"name\": \"" << r.name << "\", \"ops\": " << r.ops
       << ", \"seconds\": " << FormatDouble(r.seconds, 6)
       << ", \"ops_per_sec\": " << FormatDouble(r.ops_per_sec(), 0) << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

int RunThroughputMode(const std::string& json_path) {
  const uint64_t ops = ThroughputOps();
  std::cerr << "throughput mode: " << ops << " ops per scenario" << std::endl;
  std::vector<ThroughputResult> results;
  results.push_back(RunHitLookup(ops));
  results.push_back(RunInsertEvictChurn(ops));
  results.push_back(RunPickVictimDirty(ops));
  results.push_back(RunZipfMix(ops));
  WriteThroughputJson(results, std::cout);
  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "error: cannot write " << json_path << std::endl;
    return 1;
  }
  WriteThroughputJson(results, out);
  std::cerr << "wrote " << json_path << std::endl;
  return 0;
}

}  // namespace
}  // namespace tpftl

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--throughput") {
      return tpftl::RunThroughputMode("BENCH_cache.json");
    }
    if (arg.rfind("--throughput=", 0) == 0) {
      return tpftl::RunThroughputMode(arg.substr(std::string("--throughput=").size()));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
