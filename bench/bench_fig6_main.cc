// Figures 6(a)–6(f) and 7(a) — the main comparison of §5.2.
//
// Four FTLs (DFTL, TPFTL, S-FTL, Optimal; CDFTL added as an extension) on
// the four workloads. One simulation per (workload, FTL) pair feeds all
// seven artifacts:
//   6(a) probability of replacing a dirty entry     (absolute)
//   6(b) cache hit ratio                            (absolute)
//   6(c) translation page reads                     (normalized to DFTL)
//   6(d) translation page writes                    (normalized to DFTL)
//   6(e) system response time                       (normalized to DFTL)
//   6(f) write amplification                        (absolute)
//   7(a) block erase count                          (normalized to DFTL)
//
// Paper shapes: TPFTL's Prd < 4 % everywhere; TPFTL ≥ DFTL hit ratio and
// ≈ S-FTL on the MSR-like workloads; TPFTL has the fewest translation reads
// and (especially) writes; the biggest response-time win is on the random-
// write-heavy Financial1; MSR write amplification ≈ 1.

#include <map>

#include "bench/bench_common.h"

int main() {
  using namespace tpftl;
  using namespace tpftl::bench;

  const uint64_t requests = RequestsFromEnv();
  const std::vector<WorkloadConfig> workloads = PaperWorkloads(requests);
  const std::vector<FtlKind> ftls = PaperFtls();

  std::vector<ExperimentConfig> configs;
  for (const WorkloadConfig& workload : workloads) {
    for (const FtlKind kind : ftls) {
      configs.push_back(MakeConfig(workload, kind));
    }
  }
  const std::vector<RunReport> results = RunAll(configs);

  std::map<std::string, std::map<std::string, RunReport>> reports;  // workload → ftl → report.
  for (size_t i = 0; i < results.size(); ++i) {
    reports[results[i].workload_name][results[i].ftl_name] = results[i];
  }

  const std::vector<std::string> ftl_names = {"DFTL", "TPFTL", "S-FTL", "Optimal", "CDFTL"};
  auto emit_metric = [&](const std::string& title, auto metric, bool normalize_to_dftl,
                         int decimals) {
    Table table(title + " (" + std::to_string(requests) + " requests/workload)");
    std::vector<std::string> headers = {"FTL"};
    for (const WorkloadConfig& w : workloads) {
      headers.push_back(w.name);
    }
    table.SetColumns(std::move(headers));
    for (const std::string& ftl : ftl_names) {
      std::vector<std::string> cells = {ftl};
      for (const WorkloadConfig& w : workloads) {
        const double value = metric(reports[w.name][ftl]);
        const double base = metric(reports[w.name]["DFTL"]);
        cells.push_back(
            FormatDouble(normalize_to_dftl ? Normalized(value, base) : value, decimals));
      }
      table.AddRow(std::move(cells));
    }
    Emit(table);
  };

  emit_metric("Figure 6(a) — Probability of replacing a dirty entry",
              [](const RunReport& r) { return r.prd; }, false, 3);
  emit_metric("Figure 6(b) — Cache hit ratio",
              [](const RunReport& r) { return r.hit_ratio; }, false, 3);
  emit_metric("Figure 6(c) — Translation page reads (normalized to DFTL)",
              [](const RunReport& r) { return static_cast<double>(r.trans_reads); }, true, 3);
  emit_metric("Figure 6(d) — Translation page writes (normalized to DFTL)",
              [](const RunReport& r) { return static_cast<double>(r.trans_writes); }, true, 3);
  emit_metric("Figure 6(e) — System response time (normalized to DFTL)",
              [](const RunReport& r) { return r.mean_response_us; }, true, 3);
  emit_metric("Figure 6(f) — Write amplification",
              [](const RunReport& r) { return r.write_amplification; }, false, 2);
  emit_metric("Figure 7(a) — Block erase count (normalized to DFTL)",
              [](const RunReport& r) { return static_cast<double>(r.block_erases); }, true, 3);
  return 0;
}
