// Figure 2 — spatial locality analysis (Financial1).
//
// (a) Financial1 is random-dominant but contains sequential runs (the
//     diagonal dot lines of the paper's scatter plot). Reported here as the
//     sequential-access fraction and run-length structure per time window.
// (b) When a sequential burst arrives, the number of cached translation
//     pages in DFTL first drops sharply (consecutive entries collapse into
//     few pages, evicting dispersed ones) and rises back once random traffic
//     resumes — the observation behind selective prefetching (§3.2/§4.3).
//
// The harness replays Financial1-like traffic with explicit sequential
// bursts (mirroring the circled region of Fig. 2(a)) and samples DFTL's
// cached-translation-page count around them.

#include <algorithm>

#include "bench/bench_common.h"

#include "src/ftl/dftl.h"
#include "src/trace/vector_trace.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace {

using namespace tpftl;

// Financial1-style random traffic with periodic sequential bursts.
VectorTrace PhasedTrace(uint64_t requests, uint64_t burst_every, uint64_t burst_len,
                        const WorkloadConfig& base) {
  Rng rng(base.seed);
  ZipfGenerator zipf(base.total_pages() / base.chunk_pages, base.zipf_theta);
  std::vector<IoRequest> out;
  out.reserve(requests);
  double clock = 0.0;
  uint64_t cursor = 0;
  uint64_t emitted = 0;
  while (emitted < requests) {
    const bool burst = (emitted / burst_every) % 2 == 1 && emitted % burst_every < burst_len;
    IoRequest req;
    if (burst) {
      if (emitted % burst_every == 0 || cursor == 0) {
        cursor = rng.Below(base.total_pages() - burst_len) * base.page_size;
      }
      req.offset_bytes = cursor;
      req.size_bytes = 2 * base.page_size;
      cursor += req.size_bytes;
      req.kind = IoKind::kRead;
    } else {
      const uint64_t chunk = zipf.Sample(rng);
      req.offset_bytes =
          (chunk * base.chunk_pages + rng.Below(base.chunk_pages)) * base.page_size;
      req.size_bytes = base.page_size;
      req.kind = rng.Chance(base.write_ratio) ? IoKind::kWrite : IoKind::kRead;
    }
    req.offset_bytes = std::min(req.offset_bytes, base.address_space_bytes - req.size_bytes);
    clock += base.mean_interarrival_us;
    req.arrival_us = clock;
    out.push_back(req);
    ++emitted;
  }
  return VectorTrace(std::move(out));
}

}  // namespace

int main() {
  using namespace tpftl;
  using namespace tpftl::bench;

  const uint64_t requests = std::min<uint64_t>(RequestsFromEnv(), 120000);
  const WorkloadConfig base = Financial1Profile(requests);
  constexpr uint64_t kBurstEvery = 10000;
  constexpr uint64_t kBurstLen = 1500;
  constexpr uint64_t kWindow = 1000;

  VectorTrace trace = PhasedTrace(requests, kBurstEvery, kBurstLen, base);

  // Figure 2(a): sequential structure per window.
  {
    Table fig2a("Figure 2(a) — Sequential structure of the Financial1-like stream (window " +
                std::to_string(kWindow) + " requests)");
    fig2a.SetColumns({"window", "requests", "seq fraction", "phase"});
    uint64_t window_index = 0;
    uint64_t seq = 0;
    uint64_t count = 0;
    uint64_t prev_end = ~0ULL;
    for (const IoRequest& req : trace.requests()) {
      seq += req.offset_bytes == prev_end ? 1 : 0;
      prev_end = req.offset_bytes + req.size_bytes;
      if (++count == kWindow) {
        const double fraction = static_cast<double>(seq) / static_cast<double>(count);
        if (window_index < 24) {  // Print the first phases; the pattern repeats.
          fig2a.AddRow({std::to_string(window_index), std::to_string(count),
                        FormatDouble(100.0 * fraction, 1) + "%",
                        fraction > 0.2 ? "sequential burst" : "random"});
        }
        ++window_index;
        seq = 0;
        count = 0;
      }
    }
    Emit(fig2a);
  }

  // Figure 2(b): cached translation pages in DFTL over time.
  {
    ExperimentConfig config;
    config.workload = base;
    config.workload.num_requests = requests;
    config.warmup_fraction = 0.0;

    Table fig2b("Figure 2(b) — Cached translation pages in DFTL over time "
                "(dips align with sequential bursts)");
    fig2b.SetColumns({"request index", "cached trans pages", "phase"});
    auto observer = [&](const Ssd& ssd, uint64_t index) {
      if (index % kWindow != 0 || index > 24 * kWindow) {
        return;
      }
      const auto* dftl = dynamic_cast<const Dftl*>(&ssd.ftl());
      if (dftl == nullptr) {
        return;
      }
      const bool burst = (index / kBurstEvery) % 2 == 1 && index % kBurstEvery < kBurstLen;
      fig2b.AddRow({std::to_string(index), std::to_string(dftl->CachedTranslationPages()),
                    burst ? "sequential burst" : "random"});
    };
    config.ftl_kind = FtlKind::kDftl;
    RunTrace(config, trace, observer);
    Emit(fig2b);
  }
  return 0;
}
