// §3.1 analytical models — predicted vs. measured (Equations 1, 7, 8, 10, 13).
//
// The models take the Table 1 symbols (Hr, Prd, Rw, Hgcr, Vd, Vt, Np and the
// Table 3 latencies) and predict the address-translation time, GC counts,
// translation-write volume, and write amplification. This harness measures
// those symbols from simulation runs of DFTL and TPFTL, evaluates the
// closed forms, and reports prediction vs. measurement with relative error —
// demonstrating that the models capture the §3.1 accounting.

#include <cmath>

#include "bench/bench_common.h"

#include "src/core/model.h"

int main() {
  using namespace tpftl;
  using namespace tpftl::bench;

  const uint64_t requests = RequestsFromEnv();
  const FlashGeometry geometry;  // Table 3 latencies.

  Table table("Analytical models (Eq. 1/7/8/13) — predicted vs measured (" +
              std::to_string(requests) + " requests/workload)");
  table.SetColumns({"Workload", "FTL", "quantity", "predicted", "measured", "rel err"});

  for (const WorkloadConfig& workload : PaperWorkloads(requests)) {
    for (const FtlKind kind : {FtlKind::kDftl, FtlKind::kTpftl}) {
      const RunReport report = RunOne(workload, kind);
      const AtStats& s = report.stats;
      const ModelParams params = ModelParams::FromStats(s, geometry);
      const auto npa = static_cast<double>(s.user_page_accesses());

      auto add = [&](const std::string& quantity, double predicted, double measured) {
        const double err =
            measured != 0.0 ? std::abs(predicted - measured) / std::abs(measured) : 0.0;
        table.AddRow({workload.name, report.ftl_name, quantity, FormatDouble(predicted, 2),
                      FormatDouble(measured, 2), FormatDouble(100.0 * err, 1) + "%"});
      };

      // Eq. 1 — average translation time (µs). Measured: flash time spent on
      // translation page reads/writes during AT per lookup. The model's Prd
      // term assumes one RMW per dirty eviction, so batch updates (TPFTL)
      // should PREDICT ≈ MEASURE once Prd is measured, not assumed.
      const double measured_tat =
          (static_cast<double>(s.trans_reads_at) * geometry.page_read_us +
           static_cast<double>(s.trans_writes_at) * geometry.page_write_us) /
          static_cast<double>(s.lookups);
      add("Tat (us, Eq.1)", ModelTranslationTime(params), measured_tat);

      // Eq. 8 — translation writes during AT.
      add("Ntw (Eq.8)", ModelTranslationWrites(params, npa),
          static_cast<double>(s.trans_writes_at));

      // Eq. 7 — data-block GC operations.
      add("Ngcd (Eq.7)", ModelGcDataCount(params, npa),
          static_cast<double>(s.gc_data_blocks));

      // Eq. 13 — write amplification.
      add("A (Eq.13)", ModelWriteAmplification(params), s.write_amplification());
    }
  }
  Emit(table);
  return 0;
}
