// Extension — background (idle-time) garbage collection.
//
// The paper's timing model charges GC to the triggering request (§3.1's
// Tgcd/Tgct terms); real SSDs also reclaim during idle gaps. This harness
// compares foreground-only and background GC on Financial1 across FTLs:
// total flash work is unchanged, but tail response times collapse because
// GC cascades leave the request path.

#include "bench/bench_common.h"

int main() {
  using namespace tpftl;
  using namespace tpftl::bench;

  const uint64_t requests = RequestsFromEnv();
  const WorkloadConfig workload = Financial1Profile(requests);

  Table table("Background GC — Financial1 (" + std::to_string(requests) + " requests)");
  table.SetColumns({"FTL", "GC mode", "mean resp(us)", "p99 resp(us)", "max resp(us)", "WA", "erases"});
  for (const FtlKind kind : {FtlKind::kDftl, FtlKind::kTpftl}) {
    for (const bool background : {false, true}) {
      ExperimentConfig config;
      config.workload = workload;
      config.ftl_kind = kind;
      config.background_gc = background;
      std::cerr << "  " << FtlKindName(kind) << (background ? " background" : " foreground")
                << " ..." << std::endl;
      const RunReport r = RunExperiment(config);
      table.AddRow({r.ftl_name, background ? "idle-time" : "foreground",
                    FormatDouble(r.mean_response_us, 0), FormatDouble(r.p99_response_us, 0),
                    FormatDouble(r.max_response_us, 0), FormatDouble(r.write_amplification, 2),
                    std::to_string(r.block_erases)});
    }
  }
  Emit(table);
  return 0;
}
