// End-to-end replay throughput harness.
//
// Not a paper artifact: this tracks how fast the simulator itself replays a
// fixed GC-heavy request mix through each FTL — the wall-clock cost of every
// layer together (workload decode, mapping cache, translation store, block
// manager, NAND state arena) — so whole-pipeline performance regressions are
// visible as a single requests/sec number per FTL.
//
// The workload is a Zipf-skewed, write-dominated mix with interleaved
// sequential scans over a small logical space: steady-state GC work is a
// large share of simulated flash time, which is exactly where the block
// manager and NAND arena hot paths matter.
//
// v2 adds the multi-die parallelism section ("parallel_sweep"): closed-loop
// die-count × queue-depth curves for DFTL and TPFTL (simulated req/s, wall
// ns/req, response quantiles, per-die utilization), plus a saturated sharded
// front-end point — 4 shards × 4 worker threads × 2 dies per shard = 8 dies —
// whose aggregate simulated throughput is compared against the flat
// single-die device replaying the identical request list. That speedup is
// the acceptance number for the multi-die/sharding work.
//
// Usage:
//   bench_e2e_replay [--json=F] [--label=L] [--trace=FILE] [--ftls=a,b,...]
//                    [--no-sweep]
//     --json=F     output path (default BENCH_e2e.json).
//     --label=L    run label recorded in the JSON (default "head"); the
//                  tracked BENCH_e2e.json holds one labeled run per commit
//                  being compared (e.g. "parent" and "head").
//     --trace=FILE replay a real SPC/MSR trace file instead of the synthetic
//                  mix (auto-detected format).
//     --ftls=...   comma-separated FtlKind names (default: every kind).
//     --no-sweep   skip the parallel_sweep section (replay table only).
// Knobs:
//   TPFTL_BENCH_REQUESTS       — synthetic request count (default 200000).
//   TPFTL_BENCH_SWEEP_REQUESTS — measured requests per closed-loop sweep
//                                point (default 20000; warm-up is 1/10th).

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/ftl_factory.h"
#include "src/ssd/runner.h"
#include "src/ssd/sharded.h"
#include "src/trace/trace_io.h"
#include "src/trace/vector_trace.h"
#include "src/util/str.h"
#include "src/workload/generator.h"

namespace tpftl {
namespace {

struct E2eResult {
  std::string ftl;
  uint64_t requests = 0;
  double wall_seconds = 0.0;
  double gc_time_share = 0.0;
  RunReport report;

  double requests_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(requests) / wall_seconds : 0.0;
  }
  double ns_per_request() const {
    return requests > 0 ? wall_seconds * 1e9 / static_cast<double>(requests) : 0.0;
  }
};

// One die-count × queue-depth closed-loop point of the parallel sweep.
struct SweepPoint {
  std::string ftl;
  uint32_t channels = 1;
  uint32_t dies_per_channel = 1;
  uint32_t queue_depth = 1;
  double wall_seconds = 0.0;
  ClosedLoopReport loop;

  uint32_t dies() const { return channels * dies_per_channel; }
  double ns_per_request() const {
    return loop.measured > 0 ? wall_seconds * 1e9 / static_cast<double>(loop.measured) : 0.0;
  }
};

// Saturated sharded front-end vs the flat single-die device on the same
// request list (all arrivals at t = 0, so both run at device capacity).
struct ShardedPoint {
  std::string ftl;
  uint32_t shards = 0;
  uint32_t threads = 0;
  uint32_t dies = 0;  // Total across shards.
  uint64_t requests = 0;       // Host requests driven into both devices.
  uint64_t sub_requests = 0;   // Per-shard sub-requests after splitting.
  double sharded_rps = 0.0;    // Simulated host requests per second.
  double baseline_rps = 0.0;   // Flat 1-die device, same request list.
  double wall_seconds = 0.0;   // Wall clock of the sharded (threaded) run.
  std::vector<double> die_utilization;

  double speedup() const { return baseline_rps > 0.0 ? sharded_rps / baseline_rps : 0.0; }
};

// GC's share of simulated flash busy time: data-page migrations (read +
// rewrite), translation traffic triggered by GC, and block erases, over the
// device's total busy time. trans_writes_gc already includes migrated
// translation pages, so gc_trans_migrations is not added separately.
double GcTimeShare(const RunReport& r) {
  const FlashGeometry g;  // Latency model (Table 3 defaults).
  const double gc_us =
      static_cast<double>(r.stats.gc_data_migrations) * (g.page_read_us + g.page_write_us) +
      static_cast<double>(r.stats.trans_reads_gc) * g.page_read_us +
      static_cast<double>(r.stats.trans_writes_gc) * g.page_write_us +
      static_cast<double>(r.flash.block_erases) * g.block_erase_us;
  return r.flash.busy_time_us > 0.0 ? gc_us / r.flash.busy_time_us : 0.0;
}

std::vector<FtlKind> ParseFtlList(const std::string& list) {
  std::vector<FtlKind> out;
  FieldCursor cursor(list, ',');
  std::string_view name;
  while (cursor.Next(&name)) {
    bool found = false;
    for (const FtlKind kind : bench::AllFtls()) {
      if (EqualsIgnoreCase(Trim(name), FtlKindName(kind))) {
        out.push_back(kind);
        found = true;
        break;
      }
    }
    if (!found) {
      std::cerr << "error: unknown FTL kind '" << std::string(name) << "'" << std::endl;
      std::exit(1);
    }
  }
  return out;
}

E2eResult ReplayOne(const ExperimentConfig& config, VectorTrace& trace, FtlKind kind) {
  ExperimentConfig run = config;
  run.ftl_kind = kind;
  std::cerr << "  replaying " << FtlKindName(kind) << " ..." << std::endl;
  const auto start = std::chrono::steady_clock::now();
  const RunReport report = RunTrace(run, trace);
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;

  E2eResult result;
  result.ftl = FtlKindName(kind);
  result.requests = static_cast<uint64_t>(trace.requests().size());
  result.wall_seconds = elapsed.count();
  result.gc_time_share = GcTimeShare(report);
  result.report = report;
  return result;
}

uint64_t SweepRequestsFromEnv() {
  if (const char* env = std::getenv("TPFTL_BENCH_SWEEP_REQUESTS")) {
    const auto parsed = ParseU64(env);
    if (parsed.has_value() && *parsed > 0) {
      return *parsed;
    }
    std::cerr << "warning: TPFTL_BENCH_SWEEP_REQUESTS='" << env
              << "' is not a positive integer; using default 20000" << std::endl;
  }
  return 20000;
}

std::vector<SweepPoint> RunParallelSweep(const ExperimentConfig& base, VectorTrace& trace,
                                         const std::vector<FtlKind>& kinds) {
  // Die axis as (channels, dies_per_channel) so the channel decomposition is
  // exercised too; QD axis covers serial, moderate, and saturated queues.
  const std::vector<std::pair<uint32_t, uint32_t>> die_axis = {
      {1, 1}, {1, 2}, {2, 2}, {2, 4}};
  const std::vector<uint32_t> qd_axis = {1, 4, 16};
  const uint64_t measured = SweepRequestsFromEnv();
  const uint64_t warmup = std::max<uint64_t>(measured / 10, 1);

  std::vector<SweepPoint> points;
  for (const FtlKind kind : kinds) {
    for (const auto& [channels, dies] : die_axis) {
      for (const uint32_t qd : qd_axis) {
        ExperimentConfig config = base;
        config.ftl_kind = kind;
        config.channels = channels;
        config.dies_per_channel = dies;
        ClosedLoopConfig loop;
        loop.queue_depth = qd;
        loop.warmup_requests = warmup;
        loop.measured_requests = measured;

        std::cerr << "  closed loop " << FtlKindName(kind) << " dies=" << channels * dies
                  << " qd=" << qd << " ..." << std::endl;
        trace.Rewind();
        const auto start = std::chrono::steady_clock::now();
        ClosedLoopReport report = RunClosedLoop(config, trace, loop);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;

        SweepPoint point;
        point.ftl = FtlKindName(kind);
        point.channels = channels;
        point.dies_per_channel = dies;
        point.queue_depth = qd;
        point.wall_seconds = elapsed.count();
        point.loop = std::move(report);
        points.push_back(std::move(point));
      }
    }
  }
  return points;
}

ShardedPoint RunShardedPoint(const ExperimentConfig& base, const VectorTrace& trace,
                             FtlKind kind) {
  // The acceptance configuration: 4 shards × 2 dies each = 8 dies, driven by
  // 4 worker threads, against the flat single-die device. Every request
  // arrives at t = 0 so both devices run back-to-back at capacity and the
  // simulated-time ratio is pure parallelism (die overlap + shard overlap).
  std::vector<IoRequest> requests = trace.requests();
  for (IoRequest& r : requests) {
    r.arrival_us = 0.0;
  }

  SsdConfig device;
  device.logical_bytes = base.workload.address_space_bytes;
  device.ftl_kind = kind;
  device.tpftl_options = base.tpftl_options;
  device.cache_bytes = base.cache_bytes;
  device.gc_threshold = base.gc_threshold;

  std::cerr << "  sharded " << FtlKindName(kind)
            << " 4 shards x 2 dies, 4 threads ..." << std::endl;
  ShardedConfig sharded_config;
  sharded_config.base = device;
  sharded_config.base.channels = 1;
  sharded_config.base.dies_per_channel = 2;
  sharded_config.shards = 4;
  sharded_config.threads = 4;
  ShardedSsd sharded(sharded_config);
  sharded.FillSequential();
  sharded.ResetStats();
  const auto start = std::chrono::steady_clock::now();
  for (const IoRequest& r : requests) {
    sharded.Submit(r);
  }
  sharded.Drain();
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  const MicroSec sharded_window = sharded.MaxDeviceFreeAt() - sharded.MinStatsEpoch();

  std::cerr << "  flat 1-die baseline " << FtlKindName(kind) << " ..." << std::endl;
  Ssd flat(device);
  flat.FillSequential();
  flat.ResetStats();
  for (const IoRequest& r : requests) {
    flat.Submit(r);
  }
  const MicroSec flat_window = flat.device_free_at() - flat.stats_epoch_us();

  ShardedPoint point;
  point.ftl = FtlKindName(kind);
  point.shards = sharded.shards();
  point.threads = sharded.threads();
  point.dies = sharded.shards() * 2;
  point.requests = static_cast<uint64_t>(requests.size());
  point.sub_requests = sharded.TotalRequestsServed();
  point.sharded_rps = sharded_window > 0.0
                          ? static_cast<double>(requests.size()) / sharded_window * 1e6
                          : 0.0;
  point.baseline_rps =
      flat_window > 0.0 ? static_cast<double>(requests.size()) / flat_window * 1e6 : 0.0;
  point.wall_seconds = elapsed.count();
  point.die_utilization = sharded.DieUtilization();
  return point;
}

void WriteJsonList(std::ostream& os, const std::vector<double>& values, int digits) {
  os << "[";
  for (size_t i = 0; i < values.size(); ++i) {
    os << FormatDouble(values[i], digits) << (i + 1 < values.size() ? ", " : "");
  }
  os << "]";
}

void WriteJson(const std::vector<E2eResult>& results, const std::vector<SweepPoint>& sweep,
               const std::vector<ShardedPoint>& sharded, const std::string& label,
               const std::string& workload, std::ostream& os) {
  os << "{\n  \"schema\": \"tpftl.bench_e2e.v2\",\n  \"runs\": [\n";
  os << "    {\"label\": \"" << label << "\", \"workload\": \"" << workload
     << "\", \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const E2eResult& r = results[i];
    os << "      {\"ftl\": \"" << r.ftl << "\", \"requests\": " << r.requests
       << ", \"wall_seconds\": " << FormatDouble(r.wall_seconds, 3)
       << ", \"requests_per_sec\": " << FormatDouble(r.requests_per_sec(), 0)
       << ", \"ns_per_request\": " << FormatDouble(r.ns_per_request(), 0)
       << ", \"gc_time_share\": " << FormatDouble(r.gc_time_share, 4)
       << ",\n       \"p99_us\": " << FormatDouble(r.report.p99_response_us, 2)
       << ",\n       \"hit_ratio\": " << FormatDouble(r.report.hit_ratio, 6)
       << ", \"prd\": " << FormatDouble(r.report.prd, 6)
       << ", \"write_amplification\": " << FormatDouble(r.report.write_amplification, 6)
       << ", \"block_erases\": " << r.report.block_erases
       << ", \"trans_reads\": " << r.report.trans_reads
       << ", \"trans_writes\": " << r.report.trans_writes << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "    ]}\n  ],\n";
  os << "  \"parallel_sweep\": {\n    \"workload\": \"" << workload << "\",\n"
     << "    \"points\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    os << "      {\"ftl\": \"" << p.ftl << "\", \"channels\": " << p.channels
       << ", \"dies_per_channel\": " << p.dies_per_channel << ", \"dies\": " << p.dies()
       << ", \"queue_depth\": " << p.queue_depth
       << ",\n       \"sim_requests_per_sec\": " << FormatDouble(p.loop.sim_requests_per_sec, 1)
       << ", \"ns_per_request\": " << FormatDouble(p.ns_per_request(), 0)
       << ", \"mean_us\": " << FormatDouble(p.loop.report.mean_response_us, 2)
       << ", \"p99_us\": " << FormatDouble(p.loop.report.p99_response_us, 2)
       << ",\n       \"die_utilization\": ";
    WriteJsonList(os, p.loop.die_utilization, 4);
    os << "}" << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  os << "    ],\n    \"sharded\": [\n";
  for (size_t i = 0; i < sharded.size(); ++i) {
    const ShardedPoint& p = sharded[i];
    os << "      {\"ftl\": \"" << p.ftl << "\", \"shards\": " << p.shards
       << ", \"threads\": " << p.threads << ", \"dies\": " << p.dies
       << ", \"requests\": " << p.requests << ", \"sub_requests\": " << p.sub_requests
       << ",\n       \"sim_requests_per_sec\": " << FormatDouble(p.sharded_rps, 1)
       << ", \"baseline_1die_requests_per_sec\": " << FormatDouble(p.baseline_rps, 1)
       << ", \"speedup\": " << FormatDouble(p.speedup(), 3)
       << ", \"wall_seconds\": " << FormatDouble(p.wall_seconds, 3)
       << ",\n       \"die_utilization\": ";
    WriteJsonList(os, p.die_utilization, 4);
    os << "}" << (i + 1 < sharded.size() ? "," : "") << "\n";
  }
  os << "    ]\n  }\n}\n";
}

int Main(int argc, char** argv) {
  std::string json_path = "BENCH_e2e.json";
  std::string label = "head";
  std::string trace_path;
  bool run_sweep = true;
  std::vector<FtlKind> kinds = bench::AllFtls();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--label=", 0) == 0) {
      label = arg.substr(8);
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (arg.rfind("--ftls=", 0) == 0) {
      kinds = ParseFtlList(arg.substr(7));
    } else if (arg == "--no-sweep") {
      run_sweep = false;
    } else {
      std::cerr << "usage: bench_e2e_replay [--json=F] [--label=L] [--trace=FILE] "
                   "[--ftls=a,b,...] [--no-sweep]"
                << std::endl;
      return 1;
    }
  }

  ExperimentConfig config;
  config.workload = bench::GcHeavyMix(bench::RequestsFromEnv(200000));
  config.warmup_fraction = 0.0;  // Wall time covers the whole replay.

  VectorTrace trace;
  if (!trace_path.empty()) {
    const auto loaded = LoadTraceFile(trace_path);
    if (!loaded) {
      std::cerr << "error: cannot load trace " << trace_path << std::endl;
      return 1;
    }
    trace = VectorTrace(loaded->requests);
    config.workload.name = trace_path;
    std::cerr << "loaded " << trace.requests().size() << " requests from " << trace_path << " ("
              << loaded->malformed_lines << " malformed lines)" << std::endl;
  } else {
    trace = MaterializeWorkload(config.workload);
  }

  std::vector<E2eResult> results;
  Table table("End-to-end replay throughput (" + config.workload.name + ")");
  table.SetColumns({"FTL", "requests", "wall s", "req/s", "ns/req", "GC share", "Hr", "WA",
                    "erases", "p99 us"});
  for (const FtlKind kind : kinds) {
    E2eResult r = ReplayOne(config, trace, kind);
    table.AddRow({r.ftl, std::to_string(r.requests), FormatDouble(r.wall_seconds, 2),
                  FormatDouble(r.requests_per_sec(), 0), FormatDouble(r.ns_per_request(), 0),
                  FormatDouble(r.gc_time_share, 3), FormatDouble(r.report.hit_ratio, 3),
                  FormatDouble(r.report.write_amplification, 3),
                  std::to_string(r.report.block_erases),
                  FormatDouble(r.report.p99_response_us, 1)});
    results.push_back(std::move(r));
  }
  bench::Emit(table);

  std::vector<SweepPoint> sweep;
  std::vector<ShardedPoint> sharded;
  if (run_sweep) {
    // DFTL and TPFTL carry the parallelism acceptance numbers; the rest of
    // the FTLs are covered by the replay table above.
    const std::vector<FtlKind> sweep_kinds = {FtlKind::kDftl, FtlKind::kTpftl};
    sweep = RunParallelSweep(config, trace, sweep_kinds);

    Table sweep_table("Closed-loop die/QD sweep (" + config.workload.name + ")");
    sweep_table.SetColumns(
        {"FTL", "dies", "QD", "sim req/s", "mean us", "p99 us", "ns/req", "busy sum"});
    for (const SweepPoint& p : sweep) {
      double busy = 0.0;
      for (const double u : p.loop.die_utilization) {
        busy += u;
      }
      sweep_table.AddRow({p.ftl, std::to_string(p.dies()), std::to_string(p.queue_depth),
                          FormatDouble(p.loop.sim_requests_per_sec, 0),
                          FormatDouble(p.loop.report.mean_response_us, 1),
                          FormatDouble(p.loop.report.p99_response_us, 1),
                          FormatDouble(p.ns_per_request(), 0), FormatDouble(busy, 2)});
    }
    bench::Emit(sweep_table);

    Table sharded_table("Sharded front-end, saturated (" + config.workload.name + ")");
    sharded_table.SetColumns(
        {"FTL", "shards", "threads", "dies", "sim req/s", "1-die req/s", "speedup", "wall s"});
    for (const FtlKind kind : sweep_kinds) {
      ShardedPoint p = RunShardedPoint(config, trace, kind);
      sharded_table.AddRow({p.ftl, std::to_string(p.shards), std::to_string(p.threads),
                            std::to_string(p.dies), FormatDouble(p.sharded_rps, 0),
                            FormatDouble(p.baseline_rps, 0), FormatDouble(p.speedup(), 2),
                            FormatDouble(p.wall_seconds, 2)});
      sharded.push_back(std::move(p));
    }
    bench::Emit(sharded_table);
  }

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "error: cannot write " << json_path << std::endl;
    return 1;
  }
  WriteJson(results, sweep, sharded, label, config.workload.name, out);
  std::cerr << "wrote " << json_path << std::endl;
  return 0;
}

}  // namespace
}  // namespace tpftl

int main(int argc, char** argv) { return tpftl::Main(argc, argv); }
