// End-to-end replay throughput harness.
//
// Not a paper artifact: this tracks how fast the simulator itself replays a
// fixed GC-heavy request mix through each FTL — the wall-clock cost of every
// layer together (workload decode, mapping cache, translation store, block
// manager, NAND state arena) — so whole-pipeline performance regressions are
// visible as a single requests/sec number per FTL.
//
// The workload is a Zipf-skewed, write-dominated mix with interleaved
// sequential scans over a small logical space: steady-state GC work is a
// large share of simulated flash time, which is exactly where the block
// manager and NAND arena hot paths matter.
//
// Usage:
//   bench_e2e_replay [--json=F] [--label=L] [--trace=FILE] [--ftls=a,b,...]
//     --json=F     output path (default BENCH_e2e.json).
//     --label=L    run label recorded in the JSON (default "head"); the
//                  tracked BENCH_e2e.json holds one labeled run per commit
//                  being compared (e.g. "parent" and "head").
//     --trace=FILE replay a real SPC/MSR trace file instead of the synthetic
//                  mix (auto-detected format).
//     --ftls=...   comma-separated FtlKind names (default: every kind).
// Knobs:
//   TPFTL_BENCH_REQUESTS — synthetic request count (default 200000).

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/ftl_factory.h"
#include "src/ssd/runner.h"
#include "src/trace/trace_io.h"
#include "src/trace/vector_trace.h"
#include "src/util/str.h"
#include "src/workload/generator.h"

namespace tpftl {
namespace {

struct E2eResult {
  std::string ftl;
  uint64_t requests = 0;
  double wall_seconds = 0.0;
  double gc_time_share = 0.0;
  RunReport report;

  double requests_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(requests) / wall_seconds : 0.0;
  }
  double ns_per_request() const {
    return requests > 0 ? wall_seconds * 1e9 / static_cast<double>(requests) : 0.0;
  }
};

// GC's share of simulated flash busy time: data-page migrations (read +
// rewrite), translation traffic triggered by GC, and block erases, over the
// device's total busy time. trans_writes_gc already includes migrated
// translation pages, so gc_trans_migrations is not added separately.
double GcTimeShare(const RunReport& r) {
  const FlashGeometry g;  // Latency model (Table 3 defaults).
  const double gc_us =
      static_cast<double>(r.stats.gc_data_migrations) * (g.page_read_us + g.page_write_us) +
      static_cast<double>(r.stats.trans_reads_gc) * g.page_read_us +
      static_cast<double>(r.stats.trans_writes_gc) * g.page_write_us +
      static_cast<double>(r.flash.block_erases) * g.block_erase_us;
  return r.flash.busy_time_us > 0.0 ? gc_us / r.flash.busy_time_us : 0.0;
}

std::vector<FtlKind> ParseFtlList(const std::string& list) {
  std::vector<FtlKind> out;
  FieldCursor cursor(list, ',');
  std::string_view name;
  while (cursor.Next(&name)) {
    bool found = false;
    for (const FtlKind kind : bench::AllFtls()) {
      if (EqualsIgnoreCase(Trim(name), FtlKindName(kind))) {
        out.push_back(kind);
        found = true;
        break;
      }
    }
    if (!found) {
      std::cerr << "error: unknown FTL kind '" << std::string(name) << "'" << std::endl;
      std::exit(1);
    }
  }
  return out;
}

E2eResult ReplayOne(const ExperimentConfig& config, VectorTrace& trace, FtlKind kind) {
  ExperimentConfig run = config;
  run.ftl_kind = kind;
  std::cerr << "  replaying " << FtlKindName(kind) << " ..." << std::endl;
  const auto start = std::chrono::steady_clock::now();
  const RunReport report = RunTrace(run, trace);
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;

  E2eResult result;
  result.ftl = FtlKindName(kind);
  result.requests = static_cast<uint64_t>(trace.requests().size());
  result.wall_seconds = elapsed.count();
  result.gc_time_share = GcTimeShare(report);
  result.report = report;
  return result;
}

void WriteJson(const std::vector<E2eResult>& results, const std::string& label,
               const std::string& workload, std::ostream& os) {
  os << "{\n  \"schema\": \"tpftl.bench_e2e.v1\",\n  \"runs\": [\n";
  os << "    {\"label\": \"" << label << "\", \"workload\": \"" << workload
     << "\", \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const E2eResult& r = results[i];
    os << "      {\"ftl\": \"" << r.ftl << "\", \"requests\": " << r.requests
       << ", \"wall_seconds\": " << FormatDouble(r.wall_seconds, 3)
       << ", \"requests_per_sec\": " << FormatDouble(r.requests_per_sec(), 0)
       << ", \"ns_per_request\": " << FormatDouble(r.ns_per_request(), 0)
       << ", \"gc_time_share\": " << FormatDouble(r.gc_time_share, 4)
       << ",\n       \"p99_us\": " << FormatDouble(r.report.p99_response_us, 2)
       << ", \"p99_log2_ub_us\": " << FormatDouble(r.report.p99_log2_ub_us, 0)
       << ",\n       \"hit_ratio\": " << FormatDouble(r.report.hit_ratio, 6)
       << ", \"prd\": " << FormatDouble(r.report.prd, 6)
       << ", \"write_amplification\": " << FormatDouble(r.report.write_amplification, 6)
       << ", \"block_erases\": " << r.report.block_erases
       << ", \"trans_reads\": " << r.report.trans_reads
       << ", \"trans_writes\": " << r.report.trans_writes << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "    ]}\n  ]\n}\n";
}

int Main(int argc, char** argv) {
  std::string json_path = "BENCH_e2e.json";
  std::string label = "head";
  std::string trace_path;
  std::vector<FtlKind> kinds = bench::AllFtls();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--label=", 0) == 0) {
      label = arg.substr(8);
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (arg.rfind("--ftls=", 0) == 0) {
      kinds = ParseFtlList(arg.substr(7));
    } else {
      std::cerr << "usage: bench_e2e_replay [--json=F] [--label=L] [--trace=FILE] "
                   "[--ftls=a,b,...]"
                << std::endl;
      return 1;
    }
  }

  ExperimentConfig config;
  config.workload = bench::GcHeavyMix(bench::RequestsFromEnv(200000));
  config.warmup_fraction = 0.0;  // Wall time covers the whole replay.

  VectorTrace trace;
  if (!trace_path.empty()) {
    const auto loaded = LoadTraceFile(trace_path);
    if (!loaded) {
      std::cerr << "error: cannot load trace " << trace_path << std::endl;
      return 1;
    }
    trace = VectorTrace(loaded->requests);
    config.workload.name = trace_path;
    std::cerr << "loaded " << trace.requests().size() << " requests from " << trace_path << " ("
              << loaded->malformed_lines << " malformed lines)" << std::endl;
  } else {
    trace = MaterializeWorkload(config.workload);
  }

  std::vector<E2eResult> results;
  Table table("End-to-end replay throughput (" + config.workload.name + ")");
  table.SetColumns({"FTL", "requests", "wall s", "req/s", "ns/req", "GC share", "Hr", "WA",
                    "erases", "p99 us", "old p99 ub"});
  for (const FtlKind kind : kinds) {
    E2eResult r = ReplayOne(config, trace, kind);
    // "old p99 ub" is what the retired log2-bucketed histogram would have
    // reported as p99 (its bucket upper bound) — kept to surface how much the
    // old quantiles overstated the tail.
    table.AddRow({r.ftl, std::to_string(r.requests), FormatDouble(r.wall_seconds, 2),
                  FormatDouble(r.requests_per_sec(), 0), FormatDouble(r.ns_per_request(), 0),
                  FormatDouble(r.gc_time_share, 3), FormatDouble(r.report.hit_ratio, 3),
                  FormatDouble(r.report.write_amplification, 3),
                  std::to_string(r.report.block_erases),
                  FormatDouble(r.report.p99_response_us, 1),
                  FormatDouble(r.report.p99_log2_ub_us, 0)});
    results.push_back(std::move(r));
  }
  bench::Emit(table);

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "error: cannot write " << json_path << std::endl;
    return 1;
  }
  WriteJson(results, label, config.workload.name, out);
  std::cerr << "wrote " << json_path << std::endl;
  return 0;
}

}  // namespace
}  // namespace tpftl

int main(int argc, char** argv) { return tpftl::Main(argc, argv); }
