// Extension — the full §2.1 FTL taxonomy on one workload pair.
//
// The paper motivates page-level mapping by the failure modes of the other
// categories: block-level FTLs collapse under any overwrite, hybrids
// (log-buffer FAST) collapse under *random* writes. This harness runs every
// implemented FTL on a sequential and a random write workload; the expected
// shape is block/hybrid ≈ page-level on sequential, and orders of magnitude
// worse on random — while the page-level FTLs differ only in translation
// overhead.

#include "bench/bench_common.h"

namespace {

tpftl::WorkloadConfig MakeMix(const std::string& name, double seq_fraction, uint64_t requests) {
  tpftl::WorkloadConfig c;
  c.name = name;
  c.address_space_bytes = 256ULL << 20;
  c.num_requests = requests;
  c.seed = 77;
  c.write_ratio = 0.9;
  c.seq_read_fraction = seq_fraction;
  c.seq_write_fraction = seq_fraction;
  c.mean_random_bytes = 4096;
  c.mean_seq_bytes = 64 * 1024;
  c.zipf_theta = 1.1;
  c.chunk_pages = 64;
  c.mean_stream_pages = 256;
  c.mean_interarrival_us = 10000.0;
  return c;
}

}  // namespace

int main() {
  using namespace tpftl;
  using namespace tpftl::bench;

  const uint64_t requests = std::min<uint64_t>(RequestsFromEnv(), 150000);
  const std::vector<FtlKind> all = {FtlKind::kBlockFtl, FtlKind::kFast,  FtlKind::kZftl,
                                    FtlKind::kDftl,     FtlKind::kSftl,  FtlKind::kTpftl,
                                    FtlKind::kLearned,  FtlKind::kOptimal};

  for (const auto& workload :
       {MakeMix("sequential-write", 0.95, requests), MakeMix("random-write", 0.0, requests)}) {
    Table table("FTL taxonomy (§2.1) — " + workload.name + " (" + std::to_string(requests) +
                " requests)");
    table.SetColumns({"FTL", "WA", "erases", "resp(us)", "RAM for mapping"});
    for (const FtlKind kind : all) {
      const RunReport r = RunOne(workload, kind);
      table.AddRow({r.ftl_name, FormatDouble(r.write_amplification, 2),
                    std::to_string(r.block_erases), FormatDouble(r.mean_response_us, 0),
                    FormatBytes(r.cache_bytes_used)});
    }
    Emit(table);
  }
  return 0;
}
