# Initial-cache file for the CI configuration: interior checks on, ASan+UBSan
# on. One command stands up the whole thing:
#
#   cmake -B build-asan -S . -C cmake/ci-hardened-sanitized.cmake
#   cmake --build build-asan -j && ctest --test-dir build-asan
#
# (scripts/verify.sh --sanitize drives exactly this.)
set(TPFTL_HARDENED ON CACHE BOOL "Enable interior TPFTL_DCHECK checks" FORCE)
set(TPFTL_SANITIZE ON CACHE BOOL "Build with -fsanitize=address,undefined" FORCE)
set(CMAKE_BUILD_TYPE RelWithDebInfo CACHE STRING "Build type")
