# Initial-cache file for the ThreadSanitizer CI configuration: interior
# checks on, TSan on. Exercises the concurrent surfaces — the ShardedSsd
# dispatcher/worker queues and the RunSweep thread pool:
#
#   cmake -B build-tsan -S . -C cmake/ci-tsan.cmake
#   cmake --build build-tsan -j && \
#     ctest --test-dir build-tsan -R 'Sharded|ClosedLoop|Sweep|ThreadPool'
#
# (The CI "tsan" job drives exactly this.)
set(TPFTL_HARDENED ON CACHE BOOL "Enable interior TPFTL_DCHECK checks" FORCE)
set(TPFTL_TSAN ON CACHE BOOL "Build with -fsanitize=thread" FORCE)
set(CMAKE_BUILD_TYPE RelWithDebInfo CACHE STRING "Build type")
