file(REMOVE_RECURSE
  "CMakeFiles/lifetime_explorer.dir/lifetime_explorer.cpp.o"
  "CMakeFiles/lifetime_explorer.dir/lifetime_explorer.cpp.o.d"
  "lifetime_explorer"
  "lifetime_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifetime_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
