# Empty dependencies file for lifetime_explorer.
# This may be replaced when dependencies are built.
