# Empty dependencies file for cache_inspector.
# This may be replaced when dependencies are built.
