file(REMOVE_RECURSE
  "CMakeFiles/cache_inspector.dir/cache_inspector.cpp.o"
  "CMakeFiles/cache_inspector.dir/cache_inspector.cpp.o.d"
  "cache_inspector"
  "cache_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
