
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/ftl_compare.cpp" "examples/CMakeFiles/ftl_compare.dir/ftl_compare.cpp.o" "gcc" "examples/CMakeFiles/ftl_compare.dir/ftl_compare.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/tpftl_ssd.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_ftl.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_flash.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
