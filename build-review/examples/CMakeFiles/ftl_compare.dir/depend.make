# Empty dependencies file for ftl_compare.
# This may be replaced when dependencies are built.
