file(REMOVE_RECURSE
  "CMakeFiles/ftl_compare.dir/ftl_compare.cpp.o"
  "CMakeFiles/ftl_compare.dir/ftl_compare.cpp.o.d"
  "ftl_compare"
  "ftl_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
