
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/tpftl_util.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/tpftl_util.dir/util/histogram.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/tpftl_util.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/tpftl_util.dir/util/logging.cc.o.d"
  "/root/repo/src/util/str.cc" "src/CMakeFiles/tpftl_util.dir/util/str.cc.o" "gcc" "src/CMakeFiles/tpftl_util.dir/util/str.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/tpftl_util.dir/util/table.cc.o" "gcc" "src/CMakeFiles/tpftl_util.dir/util/table.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/tpftl_util.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/tpftl_util.dir/util/thread_pool.cc.o.d"
  "/root/repo/src/util/zipf.cc" "src/CMakeFiles/tpftl_util.dir/util/zipf.cc.o" "gcc" "src/CMakeFiles/tpftl_util.dir/util/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
