# Empty dependencies file for tpftl_util.
# This may be replaced when dependencies are built.
