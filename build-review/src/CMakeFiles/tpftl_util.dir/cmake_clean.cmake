file(REMOVE_RECURSE
  "CMakeFiles/tpftl_util.dir/util/histogram.cc.o"
  "CMakeFiles/tpftl_util.dir/util/histogram.cc.o.d"
  "CMakeFiles/tpftl_util.dir/util/logging.cc.o"
  "CMakeFiles/tpftl_util.dir/util/logging.cc.o.d"
  "CMakeFiles/tpftl_util.dir/util/str.cc.o"
  "CMakeFiles/tpftl_util.dir/util/str.cc.o.d"
  "CMakeFiles/tpftl_util.dir/util/table.cc.o"
  "CMakeFiles/tpftl_util.dir/util/table.cc.o.d"
  "CMakeFiles/tpftl_util.dir/util/thread_pool.cc.o"
  "CMakeFiles/tpftl_util.dir/util/thread_pool.cc.o.d"
  "CMakeFiles/tpftl_util.dir/util/zipf.cc.o"
  "CMakeFiles/tpftl_util.dir/util/zipf.cc.o.d"
  "libtpftl_util.a"
  "libtpftl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpftl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
