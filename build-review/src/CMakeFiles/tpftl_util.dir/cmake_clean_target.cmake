file(REMOVE_RECURSE
  "libtpftl_util.a"
)
