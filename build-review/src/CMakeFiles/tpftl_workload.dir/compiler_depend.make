# Empty compiler generated dependencies file for tpftl_workload.
# This may be replaced when dependencies are built.
