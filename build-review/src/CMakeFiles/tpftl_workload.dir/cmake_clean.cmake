file(REMOVE_RECURSE
  "CMakeFiles/tpftl_workload.dir/workload/generator.cc.o"
  "CMakeFiles/tpftl_workload.dir/workload/generator.cc.o.d"
  "CMakeFiles/tpftl_workload.dir/workload/profiles.cc.o"
  "CMakeFiles/tpftl_workload.dir/workload/profiles.cc.o.d"
  "libtpftl_workload.a"
  "libtpftl_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpftl_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
