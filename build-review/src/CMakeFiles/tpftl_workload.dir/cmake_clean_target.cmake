file(REMOVE_RECURSE
  "libtpftl_workload.a"
)
