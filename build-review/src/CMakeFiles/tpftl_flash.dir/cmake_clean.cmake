file(REMOVE_RECURSE
  "CMakeFiles/tpftl_flash.dir/flash/block.cc.o"
  "CMakeFiles/tpftl_flash.dir/flash/block.cc.o.d"
  "CMakeFiles/tpftl_flash.dir/flash/nand.cc.o"
  "CMakeFiles/tpftl_flash.dir/flash/nand.cc.o.d"
  "libtpftl_flash.a"
  "libtpftl_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpftl_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
