file(REMOVE_RECURSE
  "libtpftl_flash.a"
)
