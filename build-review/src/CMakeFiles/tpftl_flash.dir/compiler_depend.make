# Empty compiler generated dependencies file for tpftl_flash.
# This may be replaced when dependencies are built.
