file(REMOVE_RECURSE
  "libtpftl_core.a"
)
