# Empty compiler generated dependencies file for tpftl_core.
# This may be replaced when dependencies are built.
