
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ftl_factory.cc" "src/CMakeFiles/tpftl_core.dir/core/ftl_factory.cc.o" "gcc" "src/CMakeFiles/tpftl_core.dir/core/ftl_factory.cc.o.d"
  "/root/repo/src/core/model.cc" "src/CMakeFiles/tpftl_core.dir/core/model.cc.o" "gcc" "src/CMakeFiles/tpftl_core.dir/core/model.cc.o.d"
  "/root/repo/src/core/tpftl.cc" "src/CMakeFiles/tpftl_core.dir/core/tpftl.cc.o" "gcc" "src/CMakeFiles/tpftl_core.dir/core/tpftl.cc.o.d"
  "/root/repo/src/core/two_level_cache.cc" "src/CMakeFiles/tpftl_core.dir/core/two_level_cache.cc.o" "gcc" "src/CMakeFiles/tpftl_core.dir/core/two_level_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/tpftl_ftl.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_flash.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
