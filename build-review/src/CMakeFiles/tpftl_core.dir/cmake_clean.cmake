file(REMOVE_RECURSE
  "CMakeFiles/tpftl_core.dir/core/ftl_factory.cc.o"
  "CMakeFiles/tpftl_core.dir/core/ftl_factory.cc.o.d"
  "CMakeFiles/tpftl_core.dir/core/model.cc.o"
  "CMakeFiles/tpftl_core.dir/core/model.cc.o.d"
  "CMakeFiles/tpftl_core.dir/core/tpftl.cc.o"
  "CMakeFiles/tpftl_core.dir/core/tpftl.cc.o.d"
  "CMakeFiles/tpftl_core.dir/core/two_level_cache.cc.o"
  "CMakeFiles/tpftl_core.dir/core/two_level_cache.cc.o.d"
  "libtpftl_core.a"
  "libtpftl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpftl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
