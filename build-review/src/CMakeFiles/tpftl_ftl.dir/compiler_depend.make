# Empty compiler generated dependencies file for tpftl_ftl.
# This may be replaced when dependencies are built.
