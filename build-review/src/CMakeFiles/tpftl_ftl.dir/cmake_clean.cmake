file(REMOVE_RECURSE
  "CMakeFiles/tpftl_ftl.dir/ftl/block_ftl.cc.o"
  "CMakeFiles/tpftl_ftl.dir/ftl/block_ftl.cc.o.d"
  "CMakeFiles/tpftl_ftl.dir/ftl/block_manager.cc.o"
  "CMakeFiles/tpftl_ftl.dir/ftl/block_manager.cc.o.d"
  "CMakeFiles/tpftl_ftl.dir/ftl/cdftl.cc.o"
  "CMakeFiles/tpftl_ftl.dir/ftl/cdftl.cc.o.d"
  "CMakeFiles/tpftl_ftl.dir/ftl/demand_ftl.cc.o"
  "CMakeFiles/tpftl_ftl.dir/ftl/demand_ftl.cc.o.d"
  "CMakeFiles/tpftl_ftl.dir/ftl/dftl.cc.o"
  "CMakeFiles/tpftl_ftl.dir/ftl/dftl.cc.o.d"
  "CMakeFiles/tpftl_ftl.dir/ftl/fast_ftl.cc.o"
  "CMakeFiles/tpftl_ftl.dir/ftl/fast_ftl.cc.o.d"
  "CMakeFiles/tpftl_ftl.dir/ftl/optimal_ftl.cc.o"
  "CMakeFiles/tpftl_ftl.dir/ftl/optimal_ftl.cc.o.d"
  "CMakeFiles/tpftl_ftl.dir/ftl/sftl.cc.o"
  "CMakeFiles/tpftl_ftl.dir/ftl/sftl.cc.o.d"
  "CMakeFiles/tpftl_ftl.dir/ftl/translation_store.cc.o"
  "CMakeFiles/tpftl_ftl.dir/ftl/translation_store.cc.o.d"
  "CMakeFiles/tpftl_ftl.dir/ftl/zftl.cc.o"
  "CMakeFiles/tpftl_ftl.dir/ftl/zftl.cc.o.d"
  "libtpftl_ftl.a"
  "libtpftl_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpftl_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
