
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/block_ftl.cc" "src/CMakeFiles/tpftl_ftl.dir/ftl/block_ftl.cc.o" "gcc" "src/CMakeFiles/tpftl_ftl.dir/ftl/block_ftl.cc.o.d"
  "/root/repo/src/ftl/block_manager.cc" "src/CMakeFiles/tpftl_ftl.dir/ftl/block_manager.cc.o" "gcc" "src/CMakeFiles/tpftl_ftl.dir/ftl/block_manager.cc.o.d"
  "/root/repo/src/ftl/cdftl.cc" "src/CMakeFiles/tpftl_ftl.dir/ftl/cdftl.cc.o" "gcc" "src/CMakeFiles/tpftl_ftl.dir/ftl/cdftl.cc.o.d"
  "/root/repo/src/ftl/demand_ftl.cc" "src/CMakeFiles/tpftl_ftl.dir/ftl/demand_ftl.cc.o" "gcc" "src/CMakeFiles/tpftl_ftl.dir/ftl/demand_ftl.cc.o.d"
  "/root/repo/src/ftl/dftl.cc" "src/CMakeFiles/tpftl_ftl.dir/ftl/dftl.cc.o" "gcc" "src/CMakeFiles/tpftl_ftl.dir/ftl/dftl.cc.o.d"
  "/root/repo/src/ftl/fast_ftl.cc" "src/CMakeFiles/tpftl_ftl.dir/ftl/fast_ftl.cc.o" "gcc" "src/CMakeFiles/tpftl_ftl.dir/ftl/fast_ftl.cc.o.d"
  "/root/repo/src/ftl/optimal_ftl.cc" "src/CMakeFiles/tpftl_ftl.dir/ftl/optimal_ftl.cc.o" "gcc" "src/CMakeFiles/tpftl_ftl.dir/ftl/optimal_ftl.cc.o.d"
  "/root/repo/src/ftl/sftl.cc" "src/CMakeFiles/tpftl_ftl.dir/ftl/sftl.cc.o" "gcc" "src/CMakeFiles/tpftl_ftl.dir/ftl/sftl.cc.o.d"
  "/root/repo/src/ftl/translation_store.cc" "src/CMakeFiles/tpftl_ftl.dir/ftl/translation_store.cc.o" "gcc" "src/CMakeFiles/tpftl_ftl.dir/ftl/translation_store.cc.o.d"
  "/root/repo/src/ftl/zftl.cc" "src/CMakeFiles/tpftl_ftl.dir/ftl/zftl.cc.o" "gcc" "src/CMakeFiles/tpftl_ftl.dir/ftl/zftl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/tpftl_flash.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
