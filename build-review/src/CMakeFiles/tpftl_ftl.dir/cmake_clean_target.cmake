file(REMOVE_RECURSE
  "libtpftl_ftl.a"
)
