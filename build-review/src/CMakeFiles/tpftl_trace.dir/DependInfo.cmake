
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/msr_parser.cc" "src/CMakeFiles/tpftl_trace.dir/trace/msr_parser.cc.o" "gcc" "src/CMakeFiles/tpftl_trace.dir/trace/msr_parser.cc.o.d"
  "/root/repo/src/trace/spc_parser.cc" "src/CMakeFiles/tpftl_trace.dir/trace/spc_parser.cc.o" "gcc" "src/CMakeFiles/tpftl_trace.dir/trace/spc_parser.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/CMakeFiles/tpftl_trace.dir/trace/trace_io.cc.o" "gcc" "src/CMakeFiles/tpftl_trace.dir/trace/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/tpftl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
