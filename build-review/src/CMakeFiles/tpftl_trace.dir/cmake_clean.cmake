file(REMOVE_RECURSE
  "CMakeFiles/tpftl_trace.dir/trace/msr_parser.cc.o"
  "CMakeFiles/tpftl_trace.dir/trace/msr_parser.cc.o.d"
  "CMakeFiles/tpftl_trace.dir/trace/spc_parser.cc.o"
  "CMakeFiles/tpftl_trace.dir/trace/spc_parser.cc.o.d"
  "CMakeFiles/tpftl_trace.dir/trace/trace_io.cc.o"
  "CMakeFiles/tpftl_trace.dir/trace/trace_io.cc.o.d"
  "libtpftl_trace.a"
  "libtpftl_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpftl_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
