file(REMOVE_RECURSE
  "libtpftl_trace.a"
)
