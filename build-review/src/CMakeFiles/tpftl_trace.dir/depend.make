# Empty dependencies file for tpftl_trace.
# This may be replaced when dependencies are built.
