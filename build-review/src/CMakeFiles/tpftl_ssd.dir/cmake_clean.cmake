file(REMOVE_RECURSE
  "CMakeFiles/tpftl_ssd.dir/ssd/report_json.cc.o"
  "CMakeFiles/tpftl_ssd.dir/ssd/report_json.cc.o.d"
  "CMakeFiles/tpftl_ssd.dir/ssd/runner.cc.o"
  "CMakeFiles/tpftl_ssd.dir/ssd/runner.cc.o.d"
  "CMakeFiles/tpftl_ssd.dir/ssd/ssd.cc.o"
  "CMakeFiles/tpftl_ssd.dir/ssd/ssd.cc.o.d"
  "CMakeFiles/tpftl_ssd.dir/ssd/write_buffer.cc.o"
  "CMakeFiles/tpftl_ssd.dir/ssd/write_buffer.cc.o.d"
  "libtpftl_ssd.a"
  "libtpftl_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpftl_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
