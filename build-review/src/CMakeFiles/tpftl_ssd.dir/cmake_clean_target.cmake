file(REMOVE_RECURSE
  "libtpftl_ssd.a"
)
