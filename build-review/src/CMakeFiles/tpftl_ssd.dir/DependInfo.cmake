
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssd/report_json.cc" "src/CMakeFiles/tpftl_ssd.dir/ssd/report_json.cc.o" "gcc" "src/CMakeFiles/tpftl_ssd.dir/ssd/report_json.cc.o.d"
  "/root/repo/src/ssd/runner.cc" "src/CMakeFiles/tpftl_ssd.dir/ssd/runner.cc.o" "gcc" "src/CMakeFiles/tpftl_ssd.dir/ssd/runner.cc.o.d"
  "/root/repo/src/ssd/ssd.cc" "src/CMakeFiles/tpftl_ssd.dir/ssd/ssd.cc.o" "gcc" "src/CMakeFiles/tpftl_ssd.dir/ssd/ssd.cc.o.d"
  "/root/repo/src/ssd/write_buffer.cc" "src/CMakeFiles/tpftl_ssd.dir/ssd/write_buffer.cc.o" "gcc" "src/CMakeFiles/tpftl_ssd.dir/ssd/write_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/tpftl_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_ftl.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_flash.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
