# Empty dependencies file for tpftl_ssd.
# This may be replaced when dependencies are built.
