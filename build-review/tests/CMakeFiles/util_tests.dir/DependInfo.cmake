
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/histogram_test.cc" "tests/CMakeFiles/util_tests.dir/util/histogram_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/histogram_test.cc.o.d"
  "/root/repo/tests/util/logging_test.cc" "tests/CMakeFiles/util_tests.dir/util/logging_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/logging_test.cc.o.d"
  "/root/repo/tests/util/rng_test.cc" "tests/CMakeFiles/util_tests.dir/util/rng_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/rng_test.cc.o.d"
  "/root/repo/tests/util/running_stats_test.cc" "tests/CMakeFiles/util_tests.dir/util/running_stats_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/running_stats_test.cc.o.d"
  "/root/repo/tests/util/str_test.cc" "tests/CMakeFiles/util_tests.dir/util/str_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/str_test.cc.o.d"
  "/root/repo/tests/util/table_test.cc" "tests/CMakeFiles/util_tests.dir/util/table_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/table_test.cc.o.d"
  "/root/repo/tests/util/thread_pool_test.cc" "tests/CMakeFiles/util_tests.dir/util/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/thread_pool_test.cc.o.d"
  "/root/repo/tests/util/zipf_test.cc" "tests/CMakeFiles/util_tests.dir/util/zipf_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/zipf_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/tpftl_ssd.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_ftl.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_flash.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
