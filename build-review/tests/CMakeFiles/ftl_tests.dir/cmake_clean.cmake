file(REMOVE_RECURSE
  "CMakeFiles/ftl_tests.dir/ftl/block_ftl_test.cc.o"
  "CMakeFiles/ftl_tests.dir/ftl/block_ftl_test.cc.o.d"
  "CMakeFiles/ftl_tests.dir/ftl/block_manager_oracle_test.cc.o"
  "CMakeFiles/ftl_tests.dir/ftl/block_manager_oracle_test.cc.o.d"
  "CMakeFiles/ftl_tests.dir/ftl/block_manager_test.cc.o"
  "CMakeFiles/ftl_tests.dir/ftl/block_manager_test.cc.o.d"
  "CMakeFiles/ftl_tests.dir/ftl/cdftl_test.cc.o"
  "CMakeFiles/ftl_tests.dir/ftl/cdftl_test.cc.o.d"
  "CMakeFiles/ftl_tests.dir/ftl/dftl_test.cc.o"
  "CMakeFiles/ftl_tests.dir/ftl/dftl_test.cc.o.d"
  "CMakeFiles/ftl_tests.dir/ftl/fast_ftl_test.cc.o"
  "CMakeFiles/ftl_tests.dir/ftl/fast_ftl_test.cc.o.d"
  "CMakeFiles/ftl_tests.dir/ftl/gc_policy_test.cc.o"
  "CMakeFiles/ftl_tests.dir/ftl/gc_policy_test.cc.o.d"
  "CMakeFiles/ftl_tests.dir/ftl/gtd_test.cc.o"
  "CMakeFiles/ftl_tests.dir/ftl/gtd_test.cc.o.d"
  "CMakeFiles/ftl_tests.dir/ftl/optimal_ftl_test.cc.o"
  "CMakeFiles/ftl_tests.dir/ftl/optimal_ftl_test.cc.o.d"
  "CMakeFiles/ftl_tests.dir/ftl/sftl_test.cc.o"
  "CMakeFiles/ftl_tests.dir/ftl/sftl_test.cc.o.d"
  "CMakeFiles/ftl_tests.dir/ftl/translation_gc_test.cc.o"
  "CMakeFiles/ftl_tests.dir/ftl/translation_gc_test.cc.o.d"
  "CMakeFiles/ftl_tests.dir/ftl/translation_store_test.cc.o"
  "CMakeFiles/ftl_tests.dir/ftl/translation_store_test.cc.o.d"
  "CMakeFiles/ftl_tests.dir/ftl/zftl_test.cc.o"
  "CMakeFiles/ftl_tests.dir/ftl/zftl_test.cc.o.d"
  "ftl_tests"
  "ftl_tests.pdb"
  "ftl_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
