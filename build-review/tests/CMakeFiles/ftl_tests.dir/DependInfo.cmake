
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ftl/block_ftl_test.cc" "tests/CMakeFiles/ftl_tests.dir/ftl/block_ftl_test.cc.o" "gcc" "tests/CMakeFiles/ftl_tests.dir/ftl/block_ftl_test.cc.o.d"
  "/root/repo/tests/ftl/block_manager_oracle_test.cc" "tests/CMakeFiles/ftl_tests.dir/ftl/block_manager_oracle_test.cc.o" "gcc" "tests/CMakeFiles/ftl_tests.dir/ftl/block_manager_oracle_test.cc.o.d"
  "/root/repo/tests/ftl/block_manager_test.cc" "tests/CMakeFiles/ftl_tests.dir/ftl/block_manager_test.cc.o" "gcc" "tests/CMakeFiles/ftl_tests.dir/ftl/block_manager_test.cc.o.d"
  "/root/repo/tests/ftl/cdftl_test.cc" "tests/CMakeFiles/ftl_tests.dir/ftl/cdftl_test.cc.o" "gcc" "tests/CMakeFiles/ftl_tests.dir/ftl/cdftl_test.cc.o.d"
  "/root/repo/tests/ftl/dftl_test.cc" "tests/CMakeFiles/ftl_tests.dir/ftl/dftl_test.cc.o" "gcc" "tests/CMakeFiles/ftl_tests.dir/ftl/dftl_test.cc.o.d"
  "/root/repo/tests/ftl/fast_ftl_test.cc" "tests/CMakeFiles/ftl_tests.dir/ftl/fast_ftl_test.cc.o" "gcc" "tests/CMakeFiles/ftl_tests.dir/ftl/fast_ftl_test.cc.o.d"
  "/root/repo/tests/ftl/gc_policy_test.cc" "tests/CMakeFiles/ftl_tests.dir/ftl/gc_policy_test.cc.o" "gcc" "tests/CMakeFiles/ftl_tests.dir/ftl/gc_policy_test.cc.o.d"
  "/root/repo/tests/ftl/gtd_test.cc" "tests/CMakeFiles/ftl_tests.dir/ftl/gtd_test.cc.o" "gcc" "tests/CMakeFiles/ftl_tests.dir/ftl/gtd_test.cc.o.d"
  "/root/repo/tests/ftl/optimal_ftl_test.cc" "tests/CMakeFiles/ftl_tests.dir/ftl/optimal_ftl_test.cc.o" "gcc" "tests/CMakeFiles/ftl_tests.dir/ftl/optimal_ftl_test.cc.o.d"
  "/root/repo/tests/ftl/sftl_test.cc" "tests/CMakeFiles/ftl_tests.dir/ftl/sftl_test.cc.o" "gcc" "tests/CMakeFiles/ftl_tests.dir/ftl/sftl_test.cc.o.d"
  "/root/repo/tests/ftl/translation_gc_test.cc" "tests/CMakeFiles/ftl_tests.dir/ftl/translation_gc_test.cc.o" "gcc" "tests/CMakeFiles/ftl_tests.dir/ftl/translation_gc_test.cc.o.d"
  "/root/repo/tests/ftl/translation_store_test.cc" "tests/CMakeFiles/ftl_tests.dir/ftl/translation_store_test.cc.o" "gcc" "tests/CMakeFiles/ftl_tests.dir/ftl/translation_store_test.cc.o.d"
  "/root/repo/tests/ftl/zftl_test.cc" "tests/CMakeFiles/ftl_tests.dir/ftl/zftl_test.cc.o" "gcc" "tests/CMakeFiles/ftl_tests.dir/ftl/zftl_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/tpftl_ssd.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_ftl.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_flash.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tpftl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
