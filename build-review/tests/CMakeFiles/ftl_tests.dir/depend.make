# Empty dependencies file for ftl_tests.
# This may be replaced when dependencies are built.
