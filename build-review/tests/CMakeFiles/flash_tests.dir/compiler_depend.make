# Empty compiler generated dependencies file for flash_tests.
# This may be replaced when dependencies are built.
