file(REMOVE_RECURSE
  "CMakeFiles/flash_tests.dir/flash/block_test.cc.o"
  "CMakeFiles/flash_tests.dir/flash/block_test.cc.o.d"
  "CMakeFiles/flash_tests.dir/flash/endurance_test.cc.o"
  "CMakeFiles/flash_tests.dir/flash/endurance_test.cc.o.d"
  "CMakeFiles/flash_tests.dir/flash/geometry_sweep_test.cc.o"
  "CMakeFiles/flash_tests.dir/flash/geometry_sweep_test.cc.o.d"
  "CMakeFiles/flash_tests.dir/flash/geometry_test.cc.o"
  "CMakeFiles/flash_tests.dir/flash/geometry_test.cc.o.d"
  "CMakeFiles/flash_tests.dir/flash/nand_test.cc.o"
  "CMakeFiles/flash_tests.dir/flash/nand_test.cc.o.d"
  "flash_tests"
  "flash_tests.pdb"
  "flash_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flash_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
