file(REMOVE_RECURSE
  "CMakeFiles/integration_tests.dir/integration/background_gc_test.cc.o"
  "CMakeFiles/integration_tests.dir/integration/background_gc_test.cc.o.d"
  "CMakeFiles/integration_tests.dir/integration/consistency_test.cc.o"
  "CMakeFiles/integration_tests.dir/integration/consistency_test.cc.o.d"
  "CMakeFiles/integration_tests.dir/integration/paper_claims_test.cc.o"
  "CMakeFiles/integration_tests.dir/integration/paper_claims_test.cc.o.d"
  "CMakeFiles/integration_tests.dir/integration/property_test.cc.o"
  "CMakeFiles/integration_tests.dir/integration/property_test.cc.o.d"
  "CMakeFiles/integration_tests.dir/integration/recovery_test.cc.o"
  "CMakeFiles/integration_tests.dir/integration/recovery_test.cc.o.d"
  "CMakeFiles/integration_tests.dir/integration/trim_test.cc.o"
  "CMakeFiles/integration_tests.dir/integration/trim_test.cc.o.d"
  "integration_tests"
  "integration_tests.pdb"
  "integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
