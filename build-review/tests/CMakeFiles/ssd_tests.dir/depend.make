# Empty dependencies file for ssd_tests.
# This may be replaced when dependencies are built.
