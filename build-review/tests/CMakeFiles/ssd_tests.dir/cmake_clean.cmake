file(REMOVE_RECURSE
  "CMakeFiles/ssd_tests.dir/ssd/report_json_test.cc.o"
  "CMakeFiles/ssd_tests.dir/ssd/report_json_test.cc.o.d"
  "CMakeFiles/ssd_tests.dir/ssd/request_edge_test.cc.o"
  "CMakeFiles/ssd_tests.dir/ssd/request_edge_test.cc.o.d"
  "CMakeFiles/ssd_tests.dir/ssd/runner_test.cc.o"
  "CMakeFiles/ssd_tests.dir/ssd/runner_test.cc.o.d"
  "CMakeFiles/ssd_tests.dir/ssd/ssd_test.cc.o"
  "CMakeFiles/ssd_tests.dir/ssd/ssd_test.cc.o.d"
  "CMakeFiles/ssd_tests.dir/ssd/write_buffer_test.cc.o"
  "CMakeFiles/ssd_tests.dir/ssd/write_buffer_test.cc.o.d"
  "ssd_tests"
  "ssd_tests.pdb"
  "ssd_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssd_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
