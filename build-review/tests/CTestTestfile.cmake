# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/util_tests[1]_include.cmake")
include("/root/repo/build-review/tests/flash_tests[1]_include.cmake")
include("/root/repo/build-review/tests/ftl_tests[1]_include.cmake")
include("/root/repo/build-review/tests/core_tests[1]_include.cmake")
include("/root/repo/build-review/tests/trace_tests[1]_include.cmake")
include("/root/repo/build-review/tests/workload_tests[1]_include.cmake")
include("/root/repo/build-review/tests/ssd_tests[1]_include.cmake")
include("/root/repo/build-review/tests/integration_tests[1]_include.cmake")
