file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_threshold_sweep.dir/bench_ext_threshold_sweep.cc.o"
  "CMakeFiles/bench_ext_threshold_sweep.dir/bench_ext_threshold_sweep.cc.o.d"
  "bench_ext_threshold_sweep"
  "bench_ext_threshold_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_threshold_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
