# Empty dependencies file for bench_ext_threshold_sweep.
# This may be replaced when dependencies are built.
