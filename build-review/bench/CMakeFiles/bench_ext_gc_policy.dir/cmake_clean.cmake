file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_gc_policy.dir/bench_ext_gc_policy.cc.o"
  "CMakeFiles/bench_ext_gc_policy.dir/bench_ext_gc_policy.cc.o.d"
  "bench_ext_gc_policy"
  "bench_ext_gc_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_gc_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
