# Empty compiler generated dependencies file for bench_ext_gc_policy.
# This may be replaced when dependencies are built.
