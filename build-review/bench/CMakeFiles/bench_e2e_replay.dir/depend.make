# Empty dependencies file for bench_e2e_replay.
# This may be replaced when dependencies are built.
