file(REMOVE_RECURSE
  "CMakeFiles/bench_e2e_replay.dir/bench_e2e_replay.cc.o"
  "CMakeFiles/bench_e2e_replay.dir/bench_e2e_replay.cc.o.d"
  "bench_e2e_replay"
  "bench_e2e_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2e_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
