# Empty compiler generated dependencies file for bench_ext_taxonomy.
# This may be replaced when dependencies are built.
