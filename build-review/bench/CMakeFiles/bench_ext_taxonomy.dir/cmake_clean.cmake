file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_taxonomy.dir/bench_ext_taxonomy.cc.o"
  "CMakeFiles/bench_ext_taxonomy.dir/bench_ext_taxonomy.cc.o.d"
  "bench_ext_taxonomy"
  "bench_ext_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
