# Empty compiler generated dependencies file for bench_ext_background_gc.
# This may be replaced when dependencies are built.
