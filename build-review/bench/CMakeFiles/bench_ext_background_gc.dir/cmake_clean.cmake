file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_background_gc.dir/bench_ext_background_gc.cc.o"
  "CMakeFiles/bench_ext_background_gc.dir/bench_ext_background_gc.cc.o.d"
  "bench_ext_background_gc"
  "bench_ext_background_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_background_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
