# Empty dependencies file for bench_table2_deviation.
# This may be replaced when dependencies are built.
