file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_deviation.dir/bench_table2_deviation.cc.o"
  "CMakeFiles/bench_table2_deviation.dir/bench_table2_deviation.cc.o.d"
  "bench_table2_deviation"
  "bench_table2_deviation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_deviation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
