# Empty compiler generated dependencies file for bench_micro_flash.
# This may be replaced when dependencies are built.
