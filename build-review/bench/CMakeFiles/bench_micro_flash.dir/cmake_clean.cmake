file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_flash.dir/bench_micro_flash.cc.o"
  "CMakeFiles/bench_micro_flash.dir/bench_micro_flash.cc.o.d"
  "bench_micro_flash"
  "bench_micro_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
