# Empty dependencies file for bench_fig6_main.
# This may be replaced when dependencies are built.
