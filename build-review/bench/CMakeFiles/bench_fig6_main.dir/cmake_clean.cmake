file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_main.dir/bench_fig6_main.cc.o"
  "CMakeFiles/bench_fig6_main.dir/bench_fig6_main.cc.o.d"
  "bench_fig6_main"
  "bench_fig6_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
