file(REMOVE_RECURSE
  "CMakeFiles/bench_models_validation.dir/bench_models_validation.cc.o"
  "CMakeFiles/bench_models_validation.dir/bench_models_validation.cc.o.d"
  "bench_models_validation"
  "bench_models_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_models_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
