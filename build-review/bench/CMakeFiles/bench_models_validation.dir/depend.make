# Empty dependencies file for bench_models_validation.
# This may be replaced when dependencies are built.
