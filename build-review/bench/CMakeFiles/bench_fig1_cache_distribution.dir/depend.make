# Empty dependencies file for bench_fig1_cache_distribution.
# This may be replaced when dependencies are built.
