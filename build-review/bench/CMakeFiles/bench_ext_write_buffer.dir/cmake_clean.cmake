file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_write_buffer.dir/bench_ext_write_buffer.cc.o"
  "CMakeFiles/bench_ext_write_buffer.dir/bench_ext_write_buffer.cc.o.d"
  "bench_ext_write_buffer"
  "bench_ext_write_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_write_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
