# Empty compiler generated dependencies file for bench_ext_write_buffer.
# This may be replaced when dependencies are built.
