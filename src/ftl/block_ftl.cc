#include "src/ftl/block_ftl.h"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "src/obs/phase.h"
#include "src/util/assert.h"

namespace tpftl {

BlockFtl::BlockFtl(const FtlEnv& env)
    : flash_(env.flash),
      pages_per_block_(env.flash->geometry().pages_per_block),
      logical_pages_(env.logical_pages),
      map_((env.logical_pages + pages_per_block_ - 1) / pages_per_block_, kInvalidBlock),
      stream_writes_(env.data_streams, 0),
      dynamic_leveling_(env.dynamic_leveling) {
  TPFTL_CHECK(env.logical_pages > 0);
  if (env.data_streams > 1) {
    heat_ = std::make_unique<HeatClassifier>(env.logical_pages, env.data_streams,
                                             flash_->geometry().sparse_segment_pages);
  }
  CheckpointConfig ckpt_cfg = env.checkpoint;
  ckpt_cfg.cumulative_data = true;  // RAM-only table: checkpoint deltas only.
  ckpt_.Configure(flash_, ckpt_cfg);
  if (env.recover_from_flash) {
    RecoverFromFlash(env.logical_pages);
    return;
  }
  for (BlockId b = 0; b < flash_->geometry().total_blocks; ++b) {
    if (!flash_->IsBad(b)) {
      free_blocks_.push_back(b);
    }
  }
  TPFTL_CHECK_MSG(free_blocks_.size() > map_.size(),
                  "block-level FTL needs at least one spare block");
  if (ckpt_.enabled()) {
    // Boot checkpoint on an empty device: the map is empty and there is no
    // translation directory, so the record is a marker the journal can be
    // trimmed against. Its cost is setup, not workload.
    CommitCheckpoint();
    flash_->ResetStats();
  }
}

void BlockFtl::RecoverFromFlash(uint64_t logical_pages) {
  const FlashGeometry& g = flash_->geometry();
  std::optional<OobScanResult> replayed;
  if (ckpt_.enabled() && !ckpt_.config().force_scan_recovery) {
    replayed = TryCheckpointRecovery(*flash_, logical_pages, /*translation_pages=*/0);
  }
  OobScanResult scan = replayed.has_value()
                           ? *std::move(replayed)
                           : ScanForRecovery(*flash_, logical_pages, /*translation_pages=*/0);
  // Every copy this FTL ever writes sits at its LPN's home offset, so the
  // winners must too; anything else means the scan or the FTL is broken.
  std::vector<uint8_t> holds_winners(g.total_blocks, 0);
  for (Lpn lpn = 0; lpn < logical_pages; ++lpn) {
    if (scan.data_ppn.Get(lpn) == kInvalidPpn) {
      continue;
    }
    TPFTL_CHECK_MSG(g.OffsetOf(scan.data_ppn.Get(lpn)) == OffsetOf(lpn),
                    "block-level winner off its home offset");
    holds_winners[g.BlockOf(scan.data_ppn.Get(lpn))] = 1;
  }
  // Blocks holding no live data go back to the free pool (erased first if
  // touched); bad or worn-out blocks are retired.
  for (BlockId b = 0; b < g.total_blocks; ++b) {
    if (holds_winners[b] != 0 || flash_->IsBad(b)) {
      continue;
    }
    if (scan.blocks[b].programmed > 0) {
      recovery_report_.rebuild_time_us += flash_->EraseBlock(b);
      if (flash_->IsWornOut(b)) {
        continue;
      }
    }
    free_blocks_.push_back(b);
  }
  // Re-attach each logical block. A cut with an open replacement leaves
  // winners split over the home and replacement blocks; finish the merge. The
  // newest-written block is preferred as the merge target — when every winner
  // outside it fits a free slot of it (the common replacement shape), the
  // completion is a partial merge that allocates nothing; otherwise the block
  // is rebuilt into a fresh one.
  for (uint64_t lbn = 0; lbn < map_.size(); ++lbn) {
    const Lpn first = lbn * pages_per_block_;
    const Lpn last = std::min(first + pages_per_block_, logical_pages);
    BlockId home = kInvalidBlock;
    BlockId newest = kInvalidBlock;
    uint64_t newest_seq = 0;
    bool split = false;
    for (Lpn lpn = first; lpn < last; ++lpn) {
      if (scan.data_ppn.Get(lpn) == kInvalidPpn) {
        continue;
      }
      const BlockId b = g.BlockOf(scan.data_ppn.Get(lpn));
      if (home == kInvalidBlock) {
        home = b;
      } else if (home != b) {
        split = true;
      }
      if (newest == kInvalidBlock || scan.data_seq.Get(lpn) > newest_seq) {
        newest = b;
        newest_seq = scan.data_seq.Get(lpn);
      }
    }
    if (home == kInvalidBlock) {
      continue;
    }
    if (!split) {
      map_[lbn] = home;
      continue;
    }
    bool absorbable = true;
    for (Lpn lpn = first; lpn < last && absorbable; ++lpn) {
      const Ppn src = scan.data_ppn.Get(lpn);
      if (src == kInvalidPpn || g.BlockOf(src) == newest) {
        continue;
      }
      absorbable = flash_->StateOf(g.PpnOf(newest, OffsetOf(lpn))) == PageState::kFree;
    }
    const BlockId merged = absorbable ? newest : AllocateBlock();
    std::vector<BlockId> sources;
    for (Lpn lpn = first; lpn < last; ++lpn) {
      const Ppn src = scan.data_ppn.Get(lpn);
      if (src == kInvalidPpn) {
        continue;
      }
      if (g.BlockOf(src) != merged) {
        recovery_report_.rebuild_time_us += flash_->ReadPage(src);
        recovery_report_.rebuild_time_us +=
            flash_->ProgramPageAt(g.PpnOf(merged, OffsetOf(lpn)), lpn);
        flash_->InvalidatePage(src);
      }
      const BlockId sb = g.BlockOf(src);
      if (sb != merged && std::find(sources.begin(), sources.end(), sb) == sources.end()) {
        sources.push_back(sb);
      }
    }
    for (const BlockId sb : sources) {
      TPFTL_CHECK(flash_->block(sb).valid_pages() == 0);
      recovery_report_.rebuild_time_us += flash_->EraseBlock(sb);
      if (!flash_->IsBad(sb) && !flash_->IsWornOut(sb)) {
        free_blocks_.push_back(sb);
      }
    }
    map_[lbn] = merged;
  }
  scan.report.rebuild_time_us = recovery_report_.rebuild_time_us;
  // No flash-resident table: the reconstructed map is all unpersisted.
  scan.report.unpersisted_window = scan.report.data_mappings;
  scan.report.blocks_free = free_blocks_.size();
  for (BlockId b = 0; b < g.total_blocks; ++b) {
    scan.report.bad_blocks += flash_->IsBad(b) ? 1 : 0;
  }
  retired_ = scan.report.bad_blocks;
  if (ckpt_.enabled()) {
    // Epilogue checkpoint: persists the rebuilt map and trims the journal
    // (including any truncated torn record) so the next boot replays only
    // what happens after this one.
    std::vector<DirtyMapping> dirty;
    CollectLiveMappings(&dirty);
    scan.report.rebuild_time_us += ckpt_.Commit({}, dirty);
  }
  recovery_report_ = scan.report;
  recovered_ = true;
  flash_->ResetStats();
}

MicroSec BlockFtl::CommitCheckpoint() {
  // Deltas since the previous checkpoint: each dirty LPN's current mapping,
  // or a clear triple (kInvalidPpn) when it no longer has one.
  std::vector<DirtyMapping> dirty;
  dirty.reserve(ckpt_dirty_.size());
  for (const Lpn lpn : ckpt_dirty_) {
    dirty.push_back({lpn, Probe(lpn)});
  }
  const MicroSec t = ckpt_.Commit({}, dirty);
  ckpt_dirty_.clear();
  return t;
}

void BlockFtl::CollectLiveMappings(std::vector<DirtyMapping>* out) const {
  const FlashGeometry& g = flash_->geometry();
  for (uint64_t lbn = 0; lbn < map_.size(); ++lbn) {
    if (map_[lbn] == kInvalidBlock) {
      continue;
    }
    const Lpn first = lbn * pages_per_block_;
    const Lpn last = std::min(first + pages_per_block_, logical_pages_);
    for (Lpn lpn = first; lpn < last; ++lpn) {
      const Ppn ppn = g.PpnOf(map_[lbn], OffsetOf(lpn));
      if (flash_->StateOf(ppn) == PageState::kValid) {
        out->push_back({lpn, ppn});
      }
    }
  }
}

void BlockFtl::ResetStats() {
  stats_.Reset();
  flash_->ResetStats();
}

BlockId BlockFtl::AllocateBlock() {
  while (!free_blocks_.empty() && flash_->IsBad(free_blocks_.front())) {
    free_blocks_.pop_front();  // Retired since it was freed (injected fault).
    ++retired_;
  }
  TPFTL_CHECK_MSG(!free_blocks_.empty(), "block-level FTL out of spare blocks");
  uint64_t index = 0;
  if (dynamic_leveling_) {
    // Dynamic wear leveling: take the least-worn usable free block instead
    // of rotating FIFO, so churn-heavy logical blocks stop re-landing on the
    // same tired spares. FIFO stays the default for bit-identity.
    uint64_t best = ~0ULL;
    for (uint64_t i = 0; i < free_blocks_.size(); ++i) {
      if (flash_->IsBad(free_blocks_[i])) {
        continue;
      }
      const uint64_t erase = flash_->block(free_blocks_[i]).erase_count();
      if (erase < best) {
        best = erase;
        index = i;
      }
    }
  }
  const BlockId block = free_blocks_[index];
  free_blocks_.erase(free_blocks_.begin() + index);
  return block;
}

uint64_t BlockFtl::UsableFreeBlocks(uint64_t cap) const {
  uint64_t n = 0;
  for (const BlockId b : free_blocks_) {
    if (!flash_->IsBad(b) && ++n >= cap) {
      break;
    }
  }
  return n;
}

bool BlockFtl::worn_out() const {
  // A full-health device (no retirements) can never exhaust its spare pool.
  // One write allocates at most a data block plus a replacement block, and
  // each completed merge's home erase may retire instead of refreeing — so
  // demand headroom for both allocations plus two retired erases.
  return retired_ > 0 && UsableFreeBlocks(4) < 4;
}

MicroSec BlockFtl::ReadPage(Lpn lpn) {
  TPFTL_CHECK(LbnOf(lpn) < map_.size());
  ++stats_.host_page_reads;
  ++stats_.lookups;
  ++stats_.hits;  // The block table is fully RAM-resident.
  MicroSec t = MaybeCheckpoint();
  const Ppn ppn = Probe(lpn);
  return ppn == kInvalidPpn ? t : t + flash_->ReadPage(ppn);
}

MicroSec BlockFtl::WritePage(Lpn lpn) {
  TPFTL_CHECK(LbnOf(lpn) < map_.size());
  ++stats_.host_page_writes;
  ++stats_.lookups;
  ++stats_.hits;
  const uint32_t stream = heat_ ? heat_->OnWrite(lpn) : 0;
  ++stream_writes_[stream];
  MicroSec t = MaybeCheckpoint();
  const uint64_t lbn = LbnOf(lpn);
  const uint64_t offset = OffsetOf(lpn);
  const FlashGeometry& g = flash_->geometry();
  if (const auto it = replace_.find(lbn); it != replace_.end()) {
    const Ppn slot = g.PpnOf(it->second, offset);
    if (flash_->StateOf(slot) == PageState::kFree) {
      // The overwrite lands at its home offset in the replacement; whichever
      // copy was current (home slot, or nothing) is superseded.
      if (map_[lbn] != kInvalidBlock) {
        const Ppn old = g.PpnOf(map_[lbn], offset);
        if (flash_->StateOf(old) == PageState::kValid) {
          flash_->InvalidatePage(old);
        }
      }
      MarkCheckpointDirty(lpn);
      return t + flash_->ProgramPageAt(slot, lpn);
    }
    // The replacement slot itself is spent: collapse the pair first, then
    // the write re-opens a fresh replacement below.
    t += CompleteMerge(lbn);
  }
  if (map_[lbn] == kInvalidBlock) {
    map_[lbn] = AllocateBlock();
  }
  const Ppn target = g.PpnOf(map_[lbn], offset);
  if (flash_->StateOf(target) == PageState::kFree) {
    MarkCheckpointDirty(lpn);
    return t + flash_->ProgramPageAt(target, lpn);
  }
  return t + WriteViaReplacement(lbn, offset, lpn);
}

MicroSec BlockFtl::TrimPage(Lpn lpn) {
  TPFTL_CHECK(LbnOf(lpn) < map_.size());
  MicroSec t = MaybeCheckpoint();
  const Ppn ppn = Probe(lpn);
  if (ppn != kInvalidPpn) {
    flash_->InvalidatePage(ppn);
    MarkCheckpointDirty(lpn);
  }
  return t;
}

MicroSec BlockFtl::WriteViaReplacement(uint64_t lbn, uint64_t offset, Lpn lpn) {
  MicroSec t = 0.0;
  if (replace_.size() >= kMaxOpenReplacements) {
    t += CompleteMerge(PickCompletionVictim());
  }
  const FlashGeometry& g = flash_->geometry();
  const BlockId repl = AllocateBlock();
  replace_[lbn] = repl;
  replace_order_.push_back(lbn);
  const Ppn old = g.PpnOf(map_[lbn], offset);
  if (flash_->StateOf(old) == PageState::kValid) {
    flash_->InvalidatePage(old);
  }
  MarkCheckpointDirty(lpn);
  t += flash_->ProgramPageAt(g.PpnOf(repl, offset), lpn);
  return t;
}

uint64_t BlockFtl::PickCompletionVictim() const {
  TPFTL_CHECK(!replace_order_.empty());
  if (!heat_) {
    return replace_order_.front();
  }
  // Coldest open logical block: the one whose hottest page maps to the
  // coldest stream (least likely to absorb more overwrites soon). Ties keep
  // FIFO order.
  uint64_t best = replace_order_.front();
  uint32_t best_cold = 0;
  bool first = true;
  for (const uint64_t lbn : replace_order_) {
    const Lpn lo = lbn * pages_per_block_;
    const Lpn hi = std::min(lo + pages_per_block_, logical_pages_);
    uint32_t hottest = heat_->streams() - 1;
    for (Lpn lpn = lo; lpn < hi; ++lpn) {
      hottest = std::min(hottest, heat_->StreamOf(lpn));
    }
    if (first || hottest > best_cold) {
      best = lbn;
      best_cold = hottest;
      first = false;
    }
  }
  return best;
}

MicroSec BlockFtl::CompleteMerge(uint64_t lbn) {
  const auto it = replace_.find(lbn);
  TPFTL_CHECK(it != replace_.end());
  const BlockId home = map_[lbn];
  const BlockId repl = it->second;
  replace_.erase(it);
  replace_order_.erase(std::find(replace_order_.begin(), replace_order_.end(), lbn));
  TPFTL_CHECK(home != kInvalidBlock);

  const FlashGeometry& g = flash_->geometry();
  MicroSec t = 0.0;
  ++stats_.gc_data_blocks;
  obs::ScopedPhase gc_phase(obs::Phase::kGc);
  if (flash_->block(home).valid_pages() == 0) {
    ++stats_.switch_merges;  // Home fully superseded: zero copies.
  } else {
    // Partial merge: only the home survivors move, into replacement slots
    // that are free by construction (a replacement write always supersedes
    // its home copy, so a home-valid offset was never written there).
    ++stats_.partial_merges;
    for (uint64_t o = 0; o < pages_per_block_; ++o) {
      const Ppn src = g.PpnOf(home, o);
      if (flash_->StateOf(src) != PageState::kValid) {
        continue;
      }
      t += flash_->ReadPage(src);
      MarkCheckpointDirty(static_cast<Lpn>(flash_->OobTag(src)));
      t += flash_->ProgramPageAt(g.PpnOf(repl, o), flash_->OobTag(src));
      flash_->InvalidatePage(src);
      ++stats_.gc_data_migrations;
      ++stats_.gc_hits;  // The RAM-resident table is always up to date.
    }
  }
  t += flash_->EraseBlock(home);
  if (!flash_->IsBad(home) && !flash_->IsWornOut(home)) {
    free_blocks_.push_back(home);
  } else {
    ++retired_;
  }
  map_[lbn] = repl;
  return t;
}

Ppn BlockFtl::Probe(Lpn lpn) const {
  const FlashGeometry& g = flash_->geometry();
  // At most one of the home and replacement copies is valid (a replacement
  // write invalidates its home copy), so first-match is the winner.
  if (const auto it = replace_.find(LbnOf(lpn)); it != replace_.end()) {
    const Ppn ppn = g.PpnOf(it->second, OffsetOf(lpn));
    if (flash_->StateOf(ppn) == PageState::kValid) {
      return ppn;
    }
  }
  const BlockId pbn = map_[LbnOf(lpn)];
  if (pbn == kInvalidBlock) {
    return kInvalidPpn;
  }
  const Ppn ppn = g.PpnOf(pbn, OffsetOf(lpn));
  return flash_->StateOf(ppn) == PageState::kValid ? ppn : kInvalidPpn;
}

}  // namespace tpftl
