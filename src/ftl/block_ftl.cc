#include "src/ftl/block_ftl.h"

#include "src/util/assert.h"

namespace tpftl {

BlockFtl::BlockFtl(const FtlEnv& env)
    : flash_(env.flash),
      pages_per_block_(env.flash->geometry().pages_per_block),
      map_((env.logical_pages + pages_per_block_ - 1) / pages_per_block_, kInvalidBlock) {
  TPFTL_CHECK(env.logical_pages > 0);
  for (BlockId b = 0; b < flash_->geometry().total_blocks; ++b) {
    free_blocks_.push_back(b);
  }
  TPFTL_CHECK_MSG(free_blocks_.size() > map_.size(),
                  "block-level FTL needs at least one spare block");
}

void BlockFtl::ResetStats() {
  stats_.Reset();
  flash_->ResetStats();
}

BlockId BlockFtl::AllocateBlock() {
  TPFTL_CHECK_MSG(!free_blocks_.empty(), "block-level FTL out of spare blocks");
  const BlockId block = free_blocks_.front();
  free_blocks_.pop_front();
  return block;
}

MicroSec BlockFtl::ReadPage(Lpn lpn) {
  TPFTL_CHECK(LbnOf(lpn) < map_.size());
  ++stats_.host_page_reads;
  ++stats_.lookups;
  ++stats_.hits;  // The block table is fully RAM-resident.
  const BlockId pbn = map_[LbnOf(lpn)];
  if (pbn == kInvalidBlock) {
    return 0.0;
  }
  const Ppn ppn = flash_->geometry().PpnOf(pbn, OffsetOf(lpn));
  if (flash_->StateOf(ppn) != PageState::kValid) {
    return 0.0;  // Never-written page within a mapped block.
  }
  return flash_->ReadPage(ppn);
}

MicroSec BlockFtl::WritePage(Lpn lpn) {
  TPFTL_CHECK(LbnOf(lpn) < map_.size());
  ++stats_.host_page_writes;
  ++stats_.lookups;
  ++stats_.hits;
  const uint64_t lbn = LbnOf(lpn);
  const uint64_t offset = OffsetOf(lpn);
  if (map_[lbn] == kInvalidBlock) {
    map_[lbn] = AllocateBlock();
  }
  const Ppn target = flash_->geometry().PpnOf(map_[lbn], offset);
  if (flash_->StateOf(target) == PageState::kFree) {
    return flash_->ProgramPageAt(target, lpn);
  }
  return MergeAndWrite(lbn, offset, lpn);
}

MicroSec BlockFtl::TrimPage(Lpn lpn) {
  TPFTL_CHECK(LbnOf(lpn) < map_.size());
  const Ppn ppn = Probe(lpn);
  if (ppn != kInvalidPpn) {
    flash_->InvalidatePage(ppn);
  }
  return 0.0;
}

MicroSec BlockFtl::MergeAndWrite(uint64_t lbn, uint64_t offset, Lpn lpn) {
  const FlashGeometry& g = flash_->geometry();
  const BlockId old_block = map_[lbn];
  const BlockId new_block = AllocateBlock();
  MicroSec t = 0.0;
  ++stats_.gc_data_blocks;
  for (uint64_t o = 0; o < pages_per_block_; ++o) {
    const Ppn src = g.PpnOf(old_block, o);
    if (o == offset) {
      // The incoming write replaces this slot; the stale copy is dropped.
      if (flash_->StateOf(src) == PageState::kValid) {
        flash_->InvalidatePage(src);
      }
      t += flash_->ProgramPageAt(g.PpnOf(new_block, o), lpn);
      continue;
    }
    if (flash_->StateOf(src) != PageState::kValid) {
      continue;
    }
    // Relocate the surviving page to its fixed offset in the new block.
    t += flash_->ReadPage(src);
    t += flash_->ProgramPageAt(g.PpnOf(new_block, o), flash_->OobTag(src));
    flash_->InvalidatePage(src);
    ++stats_.gc_data_migrations;
    ++stats_.gc_hits;  // The RAM-resident table is always up to date.
  }
  t += flash_->EraseBlock(old_block);
  free_blocks_.push_back(old_block);
  map_[lbn] = new_block;
  return t;
}

Ppn BlockFtl::Probe(Lpn lpn) const {
  const BlockId pbn = map_[LbnOf(lpn)];
  if (pbn == kInvalidBlock) {
    return kInvalidPpn;
  }
  const Ppn ppn = flash_->geometry().PpnOf(pbn, OffsetOf(lpn));
  return flash_->StateOf(ppn) == PageState::kValid ? ppn : kInvalidPpn;
}

}  // namespace tpftl
