#include "src/ftl/block_ftl.h"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "src/obs/phase.h"
#include "src/util/assert.h"

namespace tpftl {

BlockFtl::BlockFtl(const FtlEnv& env)
    : flash_(env.flash),
      pages_per_block_(env.flash->geometry().pages_per_block),
      logical_pages_(env.logical_pages),
      map_((env.logical_pages + pages_per_block_ - 1) / pages_per_block_, kInvalidBlock) {
  TPFTL_CHECK(env.logical_pages > 0);
  CheckpointConfig ckpt_cfg = env.checkpoint;
  ckpt_cfg.cumulative_data = true;  // RAM-only table: checkpoint deltas only.
  ckpt_.Configure(flash_, ckpt_cfg);
  if (env.recover_from_flash) {
    RecoverFromFlash(env.logical_pages);
    return;
  }
  for (BlockId b = 0; b < flash_->geometry().total_blocks; ++b) {
    if (!flash_->IsBad(b)) {
      free_blocks_.push_back(b);
    }
  }
  TPFTL_CHECK_MSG(free_blocks_.size() > map_.size(),
                  "block-level FTL needs at least one spare block");
  if (ckpt_.enabled()) {
    // Boot checkpoint on an empty device: the map is empty and there is no
    // translation directory, so the record is a marker the journal can be
    // trimmed against. Its cost is setup, not workload.
    CommitCheckpoint();
    flash_->ResetStats();
  }
}

void BlockFtl::RecoverFromFlash(uint64_t logical_pages) {
  const FlashGeometry& g = flash_->geometry();
  std::optional<OobScanResult> replayed;
  if (ckpt_.enabled() && !ckpt_.config().force_scan_recovery) {
    replayed = TryCheckpointRecovery(*flash_, logical_pages, /*translation_pages=*/0);
  }
  OobScanResult scan = replayed.has_value()
                           ? *std::move(replayed)
                           : ScanForRecovery(*flash_, logical_pages, /*translation_pages=*/0);
  // Every copy this FTL ever writes sits at its LPN's home offset, so the
  // winners must too; anything else means the scan or the FTL is broken.
  std::vector<uint8_t> holds_winners(g.total_blocks, 0);
  for (Lpn lpn = 0; lpn < logical_pages; ++lpn) {
    if (scan.data_ppn.Get(lpn) == kInvalidPpn) {
      continue;
    }
    TPFTL_CHECK_MSG(g.OffsetOf(scan.data_ppn.Get(lpn)) == OffsetOf(lpn),
                    "block-level winner off its home offset");
    holds_winners[g.BlockOf(scan.data_ppn.Get(lpn))] = 1;
  }
  // Blocks holding no live data go back to the free pool (erased first if
  // touched); bad or worn-out blocks are retired.
  for (BlockId b = 0; b < g.total_blocks; ++b) {
    if (holds_winners[b] != 0 || flash_->IsBad(b)) {
      continue;
    }
    if (scan.blocks[b].programmed > 0) {
      recovery_report_.rebuild_time_us += flash_->EraseBlock(b);
      if (flash_->IsWornOut(b)) {
        continue;
      }
    }
    free_blocks_.push_back(b);
  }
  // Re-attach each logical block. A cut mid-merge leaves winners split over
  // the merge source and destination; finish the merge into a fresh block.
  for (uint64_t lbn = 0; lbn < map_.size(); ++lbn) {
    const Lpn first = lbn * pages_per_block_;
    const Lpn last = std::min(first + pages_per_block_, logical_pages);
    BlockId home = kInvalidBlock;
    bool split = false;
    for (Lpn lpn = first; lpn < last; ++lpn) {
      if (scan.data_ppn.Get(lpn) == kInvalidPpn) {
        continue;
      }
      const BlockId b = g.BlockOf(scan.data_ppn.Get(lpn));
      if (home == kInvalidBlock) {
        home = b;
      } else if (home != b) {
        split = true;
      }
    }
    if (home == kInvalidBlock) {
      continue;
    }
    if (!split) {
      map_[lbn] = home;
      continue;
    }
    const BlockId merged = AllocateBlock();
    std::vector<BlockId> sources;
    for (Lpn lpn = first; lpn < last; ++lpn) {
      const Ppn src = scan.data_ppn.Get(lpn);
      if (src == kInvalidPpn) {
        continue;
      }
      recovery_report_.rebuild_time_us += flash_->ReadPage(src);
      recovery_report_.rebuild_time_us +=
          flash_->ProgramPageAt(g.PpnOf(merged, OffsetOf(lpn)), lpn);
      flash_->InvalidatePage(src);
      const BlockId sb = g.BlockOf(src);
      if (std::find(sources.begin(), sources.end(), sb) == sources.end()) {
        sources.push_back(sb);
      }
    }
    for (const BlockId sb : sources) {
      TPFTL_CHECK(flash_->block(sb).valid_pages() == 0);
      recovery_report_.rebuild_time_us += flash_->EraseBlock(sb);
      if (!flash_->IsBad(sb) && !flash_->IsWornOut(sb)) {
        free_blocks_.push_back(sb);
      }
    }
    map_[lbn] = merged;
  }
  scan.report.rebuild_time_us = recovery_report_.rebuild_time_us;
  // No flash-resident table: the reconstructed map is all unpersisted.
  scan.report.unpersisted_window = scan.report.data_mappings;
  scan.report.blocks_free = free_blocks_.size();
  for (BlockId b = 0; b < g.total_blocks; ++b) {
    scan.report.bad_blocks += flash_->IsBad(b) ? 1 : 0;
  }
  if (ckpt_.enabled()) {
    // Epilogue checkpoint: persists the rebuilt map and trims the journal
    // (including any truncated torn record) so the next boot replays only
    // what happens after this one.
    std::vector<DirtyMapping> dirty;
    CollectLiveMappings(&dirty);
    scan.report.rebuild_time_us += ckpt_.Commit({}, dirty);
  }
  recovery_report_ = scan.report;
  recovered_ = true;
  flash_->ResetStats();
}

MicroSec BlockFtl::CommitCheckpoint() {
  // Deltas since the previous checkpoint: each dirty LPN's current mapping,
  // or a clear triple (kInvalidPpn) when it no longer has one.
  std::vector<DirtyMapping> dirty;
  dirty.reserve(ckpt_dirty_.size());
  for (const Lpn lpn : ckpt_dirty_) {
    dirty.push_back({lpn, Probe(lpn)});
  }
  const MicroSec t = ckpt_.Commit({}, dirty);
  ckpt_dirty_.clear();
  return t;
}

void BlockFtl::CollectLiveMappings(std::vector<DirtyMapping>* out) const {
  const FlashGeometry& g = flash_->geometry();
  for (uint64_t lbn = 0; lbn < map_.size(); ++lbn) {
    if (map_[lbn] == kInvalidBlock) {
      continue;
    }
    const Lpn first = lbn * pages_per_block_;
    const Lpn last = std::min(first + pages_per_block_, logical_pages_);
    for (Lpn lpn = first; lpn < last; ++lpn) {
      const Ppn ppn = g.PpnOf(map_[lbn], OffsetOf(lpn));
      if (flash_->StateOf(ppn) == PageState::kValid) {
        out->push_back({lpn, ppn});
      }
    }
  }
}

void BlockFtl::ResetStats() {
  stats_.Reset();
  flash_->ResetStats();
}

BlockId BlockFtl::AllocateBlock() {
  while (!free_blocks_.empty() && flash_->IsBad(free_blocks_.front())) {
    free_blocks_.pop_front();  // Retired since it was freed (injected fault).
  }
  TPFTL_CHECK_MSG(!free_blocks_.empty(), "block-level FTL out of spare blocks");
  const BlockId block = free_blocks_.front();
  free_blocks_.pop_front();
  return block;
}

MicroSec BlockFtl::ReadPage(Lpn lpn) {
  TPFTL_CHECK(LbnOf(lpn) < map_.size());
  ++stats_.host_page_reads;
  ++stats_.lookups;
  ++stats_.hits;  // The block table is fully RAM-resident.
  MicroSec t = MaybeCheckpoint();
  const BlockId pbn = map_[LbnOf(lpn)];
  if (pbn == kInvalidBlock) {
    return t;
  }
  const Ppn ppn = flash_->geometry().PpnOf(pbn, OffsetOf(lpn));
  if (flash_->StateOf(ppn) != PageState::kValid) {
    return t;  // Never-written page within a mapped block.
  }
  return t + flash_->ReadPage(ppn);
}

MicroSec BlockFtl::WritePage(Lpn lpn) {
  TPFTL_CHECK(LbnOf(lpn) < map_.size());
  ++stats_.host_page_writes;
  ++stats_.lookups;
  ++stats_.hits;
  MicroSec t = MaybeCheckpoint();
  const uint64_t lbn = LbnOf(lpn);
  const uint64_t offset = OffsetOf(lpn);
  if (map_[lbn] == kInvalidBlock) {
    map_[lbn] = AllocateBlock();
  }
  const Ppn target = flash_->geometry().PpnOf(map_[lbn], offset);
  if (flash_->StateOf(target) == PageState::kFree) {
    MarkCheckpointDirty(lpn);
    return t + flash_->ProgramPageAt(target, lpn);
  }
  return t + MergeAndWrite(lbn, offset, lpn);
}

MicroSec BlockFtl::TrimPage(Lpn lpn) {
  TPFTL_CHECK(LbnOf(lpn) < map_.size());
  MicroSec t = MaybeCheckpoint();
  const Ppn ppn = Probe(lpn);
  if (ppn != kInvalidPpn) {
    flash_->InvalidatePage(ppn);
    MarkCheckpointDirty(lpn);
  }
  return t;
}

MicroSec BlockFtl::MergeAndWrite(uint64_t lbn, uint64_t offset, Lpn lpn) {
  const FlashGeometry& g = flash_->geometry();
  const BlockId old_block = map_[lbn];
  const BlockId new_block = AllocateBlock();
  MicroSec t = 0.0;
  ++stats_.gc_data_blocks;
  obs::ScopedPhase gc_phase(obs::Phase::kGc);
  for (uint64_t o = 0; o < pages_per_block_; ++o) {
    const Ppn src = g.PpnOf(old_block, o);
    if (o == offset) {
      // The incoming write replaces this slot; the stale copy is dropped.
      if (flash_->StateOf(src) == PageState::kValid) {
        flash_->InvalidatePage(src);
      }
      obs::ScopedPhase user_phase(obs::Phase::kUser);
      MarkCheckpointDirty(lpn);
      t += flash_->ProgramPageAt(g.PpnOf(new_block, o), lpn);
      continue;
    }
    if (flash_->StateOf(src) != PageState::kValid) {
      continue;
    }
    // Relocate the surviving page to its fixed offset in the new block.
    t += flash_->ReadPage(src);
    MarkCheckpointDirty(static_cast<Lpn>(flash_->OobTag(src)));
    t += flash_->ProgramPageAt(g.PpnOf(new_block, o), flash_->OobTag(src));
    flash_->InvalidatePage(src);
    ++stats_.gc_data_migrations;
    ++stats_.gc_hits;  // The RAM-resident table is always up to date.
  }
  t += flash_->EraseBlock(old_block);
  if (!flash_->IsBad(old_block) && !flash_->IsWornOut(old_block)) {
    free_blocks_.push_back(old_block);
  }
  map_[lbn] = new_block;
  return t;
}

Ppn BlockFtl::Probe(Lpn lpn) const {
  const BlockId pbn = map_[LbnOf(lpn)];
  if (pbn == kInvalidBlock) {
    return kInvalidPpn;
  }
  const Ppn ppn = flash_->geometry().PpnOf(pbn, OffsetOf(lpn));
  return flash_->StateOf(ppn) == PageState::kValid ? ppn : kInvalidPpn;
}

}  // namespace tpftl
