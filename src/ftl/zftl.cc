#include "src/ftl/zftl.h"

#include <algorithm>

#include "src/util/assert.h"

namespace tpftl {

Zftl::Zftl(const FtlEnv& env, const ZftlOptions& options)
    : DemandFtl(env, /*uses_translation_store=*/true), options_(options) {
  TPFTL_CHECK(options.zones > 0);
  zones_ = std::min(options.zones, env.logical_pages);
  zone_pages_ = (env.logical_pages + zones_ - 1) / zones_;
  const uint64_t page_bytes = flash().geometry().page_size_bytes;
  const uint64_t budget = entry_cache_budget_bytes();
  const uint64_t tier2_bytes = std::min(budget, page_bytes);
  tier1_capacity_ = std::max<uint64_t>(1, (budget - tier2_bytes) / options.entry_bytes);
}

MicroSec Zftl::FlushTier2() {
  if (tier2_vtpn_ == kInvalidVtpn || tier2_dirty_slots_.empty()) {
    tier2_dirty_slots_.clear();
    return 0.0;
  }
  AtStats& s = mutable_stats();
  std::vector<MappingUpdate> updates;
  updates.reserve(tier2_dirty_slots_.size());
  const Lpn base = tier2_vtpn_ * store().entries_per_page();
  for (const auto& [slot, ppn] : tier2_dirty_slots_) {
    updates.push_back({base + slot, ppn});
  }
  const auto r = store().RewriteTranslationPage(tier2_vtpn_, updates, /*have_full_content=*/true);
  TPFTL_DCHECK(!r.did_read);
  ++s.trans_writes_at;
  ++s.evictions;
  ++s.dirty_evictions;
  tier2_dirty_slots_.clear();
  return r.time;
}

MicroSec Zftl::ActivateTier2(Vtpn vtpn) {
  MicroSec t = FlushTier2();
  tier2_vtpn_ = vtpn;
  const auto span = store().PersistedPage(vtpn);
  tier2_content_.assign(span.begin(), span.end());
  return t;
}

MicroSec Zftl::BatchEvictTier1() {
  AtStats& s = mutable_stats();
  TPFTL_CHECK(!tier1_.empty());
  // The LRU entry selects the group: every tier-1 entry of its translation
  // page leaves in one batch.
  const Vtpn victim_vtpn = store().VtpnOf(tier1_.back().lpn);
  std::vector<MappingUpdate> dirty;
  for (auto it = tier1_.begin(); it != tier1_.end();) {
    if (store().VtpnOf(it->lpn) != victim_vtpn) {
      ++it;
      continue;
    }
    ++s.evictions;
    if (it->dirty) {
      dirty.push_back({it->lpn, it->ppn});
    }
    tier1_index_.erase(it->lpn);
    it = tier1_.erase(it);
  }
  MicroSec t = 0.0;
  if (!dirty.empty()) {
    ++s.dirty_evictions;  // One batched replacement of dirty state.
    const auto r =
        store().RewriteTranslationPage(victim_vtpn, dirty, /*have_full_content=*/false);
    ++s.trans_reads_at;
    ++s.trans_writes_at;
    t += r.time;
  }
  return t;
}

MicroSec Zftl::SwitchZone(uint64_t zone) {
  AtStats& s = mutable_stats();
  MicroSec t = 0.0;
  // Flush every dirty first-tier entry, batched per translation page.
  while (!tier1_.empty()) {
    t += BatchEvictTier1();
  }
  t += FlushTier2();
  tier2_vtpn_ = kInvalidVtpn;
  tier2_content_.clear();
  // Bringing in the new zone's directory costs one flash read (the
  // "cumbersome" switch overhead).
  if (active_zone_ != ~0ULL) {
    const Lpn first_lpn = std::min(zone * zone_pages_, logical_pages() - 1);
    t += store().ReadTranslationPage(store().VtpnOf(first_lpn));
    ++s.trans_reads_at;
    ++zone_switches_;
  }
  active_zone_ = zone;
  return t;
}

MicroSec Zftl::Translate(Lpn lpn, bool is_write, Ppn* current) {
  (void)is_write;
  AtStats& s = mutable_stats();
  ++s.lookups;
  MicroSec t = 0.0;
  const uint64_t zone = ZoneOf(lpn);
  if (zone != active_zone_) {
    t += SwitchZone(zone);
  }

  if (const auto it = tier1_index_.find(lpn); it != tier1_index_.end()) {
    ++s.hits;
    tier1_.splice(tier1_.begin(), tier1_, it->second);
    *current = it->second->ppn;
    return t;
  }
  const Vtpn vtpn = store().VtpnOf(lpn);
  if (vtpn == tier2_vtpn_) {
    ++s.hits;
    *current = tier2_content_[store().SlotOf(lpn)];
    return t;
  }

  ++s.misses;
  t += store().ReadTranslationPage(vtpn);
  ++s.trans_reads_at;
  t += ActivateTier2(vtpn);
  const Ppn ppn = tier2_content_[store().SlotOf(lpn)];
  while (tier1_.size() >= tier1_capacity_) {
    t += BatchEvictTier1();
  }
  tier1_.push_front(Tier1Entry{lpn, ppn, false});
  tier1_index_[lpn] = tier1_.begin();
  *current = ppn;
  return t;
}

MicroSec Zftl::CommitMapping(Lpn lpn, Ppn new_ppn) {
  if (const auto it = tier1_index_.find(lpn); it != tier1_index_.end()) {
    it->second->ppn = new_ppn;
    it->second->dirty = true;
    // Keep the tier-2 copy coherent when it covers the same page.
    if (store().VtpnOf(lpn) == tier2_vtpn_) {
      tier2_content_[store().SlotOf(lpn)] = new_ppn;
    }
    return 0.0;
  }
  TPFTL_CHECK_MSG(store().VtpnOf(lpn) == tier2_vtpn_,
                  "CommitMapping without a preceding Translate");
  const uint64_t slot = store().SlotOf(lpn);
  tier2_content_[slot] = new_ppn;
  tier2_dirty_slots_[slot] = new_ppn;
  return 0.0;
}

bool Zftl::GcUpdateCached(Lpn lpn, Ppn new_ppn, MicroSec* extra_time) {
  (void)extra_time;
  bool found = false;
  if (const auto it = tier1_index_.find(lpn); it != tier1_index_.end()) {
    it->second->ppn = new_ppn;
    it->second->dirty = true;
    found = true;
  }
  if (store().VtpnOf(lpn) == tier2_vtpn_) {
    const uint64_t slot = store().SlotOf(lpn);
    tier2_content_[slot] = new_ppn;
    tier2_dirty_slots_[slot] = new_ppn;
    found = true;
  }
  return found;
}

Ppn Zftl::Probe(Lpn lpn) const {
  if (const auto it = tier1_index_.find(lpn); it != tier1_index_.end()) {
    return it->second->ppn;
  }
  if (translation_store().VtpnOf(lpn) == tier2_vtpn_) {
    return tier2_content_[translation_store().SlotOf(lpn)];
  }
  return translation_store().Persisted(lpn);
}

uint64_t Zftl::cache_bytes_used() const {
  return tier1_.size() * options_.entry_bytes +
         (tier2_vtpn_ != kInvalidVtpn ? flash().geometry().page_size_bytes : 0);
}

uint64_t Zftl::cache_entry_count() const {
  return tier1_.size() +
         (tier2_vtpn_ != kInvalidVtpn ? translation_store().entries_per_page() : 0);
}

void Zftl::CollectCheckpointDirty(std::vector<DirtyMapping>* out) {
  for (const Tier1Entry& e : tier1_) {
    if (e.dirty) {
      out->push_back({e.lpn, e.ppn});
    }
  }
  if (tier2_vtpn_ != kInvalidVtpn) {
    const uint64_t entries = translation_store().entries_per_page();
    for (const auto& [slot, ppn] : tier2_dirty_slots_) {
      out->push_back({tier2_vtpn_ * entries + slot, ppn});
    }
  }
}

}  // namespace tpftl
