// Address-translation and GC statistics, mirroring the symbols of Table 1.
//
// Every FTL maintains one AtStats; the evaluation metrics of §5 derive from
// it:
//   Hr  = hits / lookups                       (cache hit ratio)
//   Prd = dirty_evictions / evictions          (prob. of replacing a dirty entry)
//   Ntw = trans_writes_at                      (translation writes during AT)
//   GC hit ratio Hgcr = gc_hits / (gc_hits + gc_misses)
//   A   = (user writes + all extra writes) / user writes   (write amplification)

#ifndef SRC_FTL_AT_STATS_H_
#define SRC_FTL_AT_STATS_H_

#include <cstdint>

namespace tpftl {

struct AtStats {
  // --- address translation phase ---
  uint64_t lookups = 0;           // Page-granular translations requested.
  uint64_t hits = 0;              // Served from the mapping cache.
  uint64_t misses = 0;            // Required a translation page read.
  uint64_t evictions = 0;         // Cache victims (entries, or pages for S-FTL).
  uint64_t dirty_evictions = 0;   // Victims that were dirty.
  uint64_t batch_writebacks = 0;  // Dirty entries cleaned per batch update (TPFTL).
  uint64_t trans_reads_at = 0;    // Translation page reads during AT.
  uint64_t trans_writes_at = 0;   // Translation page writes during AT (= Ntw).

  // --- host data path ---
  uint64_t host_page_reads = 0;
  uint64_t host_page_writes = 0;

  // --- garbage collection ---
  uint64_t gc_data_blocks = 0;        // Ngcd
  uint64_t gc_trans_blocks = 0;       // Ngct
  uint64_t gc_data_migrations = 0;    // Nmd
  uint64_t gc_trans_migrations = 0;   // Nmt
  uint64_t gc_hits = 0;               // Migrated data page's entry found in cache.
  uint64_t gc_misses = 0;
  uint64_t trans_reads_gc = 0;        // Translation page reads during GC.
  uint64_t trans_writes_gc = 0;       // Translation page writes during GC (= Ndt + Nmt).
  uint64_t static_level_blocks = 0;   // Cold blocks migrated by static wear leveling.

  // --- merge kinds (log/hybrid FTLs: BlockFTL, FAST) ---
  // A switch merge promotes a fully-written replacement/log block with zero
  // copies; a partial merge copies only the home block's surviving pages; a
  // full merge rebuilds a complete block from scattered sources.
  uint64_t switch_merges = 0;
  uint64_t partial_merges = 0;
  uint64_t full_merges = 0;

  // --- learned index (LearnedFTL only; zero for the other FTLs) ---
  uint64_t model_hits = 0;         // CMT misses served by a verified prediction.
  uint64_t model_misses = 0;       // Model covered the LPN but no probe verified.
  uint64_t model_probe_reads = 0;  // Flash reads spent on failed probes.
  uint64_t model_retrains = 0;     // Segment-training events (write + GC grouping).

  void Reset() { *this = AtStats(); }

  uint64_t user_page_accesses() const { return host_page_reads + host_page_writes; }  // Npa
  double hit_ratio() const {
    return lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups) : 0.0;
  }
  double dirty_replacement_probability() const {  // Prd
    return evictions > 0 ? static_cast<double>(dirty_evictions) / static_cast<double>(evictions)
                         : 0.0;
  }
  double gc_hit_ratio() const {  // Hgcr
    const uint64_t total = gc_hits + gc_misses;
    return total > 0 ? static_cast<double>(gc_hits) / static_cast<double>(total) : 0.0;
  }
  double model_hit_ratio() const {  // Of CMT misses where the model was consulted.
    const uint64_t consulted = model_hits + model_misses;
    return consulted > 0 ? static_cast<double>(model_hits) / static_cast<double>(consulted) : 0.0;
  }
  uint64_t trans_reads_total() const { return trans_reads_at + trans_reads_gc; }
  uint64_t trans_writes_total() const { return trans_writes_at + trans_writes_gc; }

  // Eq. 12: A = (user writes + extra writes) / user writes. Extra writes are
  // every flash page write beyond the host's own data writes.
  double write_amplification() const {
    if (host_page_writes == 0) {
      return 1.0;
    }
    const uint64_t total =
        host_page_writes + trans_writes_total() + gc_data_migrations;
    return static_cast<double>(total) / static_cast<double>(host_page_writes);
  }
};

}  // namespace tpftl

#endif  // SRC_FTL_AT_STATS_H_
