// CDFTL — two-level caching for demand-based page-level mapping (Qin et al.,
// RTAS 2011; §2.2 of the paper).
//
// Two cooperating caches:
//   * CMT — a small LRU cache of individual 8-byte mapping entries
//     (first-level, exploits temporal locality);
//   * CTP — an LRU cache of entire uncompressed translation pages
//     (second-level, exploits spatial locality and serves as the kick-out
//     buffer for the CMT).
//
// Dirty CMT victims are folded into their translation page's CTP copy when
// that page is cached — replacements of dirty entries then "only occur in
// CTP" — otherwise the dirty entry is skipped and stays resident (cold dirty
// entries reside in CMT), falling back to a single-entry writeback only when
// nothing else is evictable. A dirty CTP page is written back whole on
// eviction (no read needed: the full content is cached).

#ifndef SRC_FTL_CDFTL_H_
#define SRC_FTL_CDFTL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/ftl/demand_ftl.h"

namespace tpftl {

struct CdftlOptions {
  // Fraction of the entry budget given to the CTP (whole-page) cache; at
  // least one page is always provisioned.
  double ctp_fraction = 0.75;
  uint64_t entry_bytes = 8;
  // How far from the CMT LRU end to search for an evictable (clean or
  // CTP-resident) victim before falling back to a single-entry writeback.
  uint64_t evict_scan_limit = 16;
};

class Cdftl : public DemandFtl {
 public:
  Cdftl(const FtlEnv& env, const CdftlOptions& options = {});

  std::string name() const override { return "CDFTL"; }
  Ppn Probe(Lpn lpn) const override;
  uint64_t cache_bytes_used() const override;
  uint64_t cache_entry_count() const override;

  uint64_t ctp_page_capacity() const { return ctp_capacity_; }
  uint64_t cmt_entry_capacity() const { return cmt_capacity_; }

 protected:
  MicroSec Translate(Lpn lpn, bool is_write, Ppn* current) override;
  MicroSec CommitMapping(Lpn lpn, Ppn new_ppn) override;
  bool GcUpdateCached(Lpn lpn, Ppn new_ppn, MicroSec* extra_time) override;
  MicroSec GcRewriteTranslation(Vtpn vtpn, std::vector<MappingUpdate>& updates) override;
  void CollectCheckpointDirty(std::vector<DirtyMapping>* out) override;

 private:
  struct CmtEntry {
    Lpn lpn = kInvalidLpn;
    Ppn ppn = kInvalidPpn;
    bool dirty = false;
  };
  struct CtpPage {
    Vtpn vtpn = kInvalidVtpn;
    std::vector<Ppn> content;
    // Slots modified since load; exactly these are persisted on eviction.
    std::unordered_map<uint64_t, Ppn> dirty_slots;
    bool dirty() const { return !dirty_slots.empty(); }
  };

  using CmtList = std::list<CmtEntry>;
  using CtpList = std::list<CtpPage>;

  // Evicts one CMT entry to make room; returns flash time spent.
  MicroSec EvictCmtEntry();
  // Evicts the LRU CTP page; returns flash time spent.
  MicroSec EvictCtpPage();
  // Loads vtpn's page into the CTP (assumes not present). Flash read is paid
  // by the caller; this handles capacity.
  MicroSec InsertCtp(Vtpn vtpn);
  CtpList::iterator FindCtp(Vtpn vtpn);

  CdftlOptions options_;
  uint64_t cmt_capacity_ = 0;
  uint64_t ctp_capacity_ = 0;
  CmtList cmt_;  // MRU at front.
  std::unordered_map<Lpn, CmtList::iterator> cmt_index_;
  CtpList ctp_;  // MRU at front.
  std::unordered_map<Vtpn, CtpList::iterator> ctp_index_;
};

}  // namespace tpftl

#endif  // SRC_FTL_CDFTL_H_
