// Persistence of the page-level mapping table in flash (§4.1).
//
// The full LPN→PPN table is packed into translation pages in ascending LPN
// order: translation page `vtpn` stores the PPNs of LPNs
// [vtpn * E, (vtpn + 1) * E) where E = geometry.entries_per_translation_page()
// (1024 for 4 KiB pages and 4 B entries). Translation pages live in flash
// blocks of the translation pool and are themselves page-mapped through the
// GTD (VTPN → PTPN).
//
// Because a flash page cannot be updated in place, changing any entry of a
// translation page is a read-modify-write: read the old physical page,
// program a new one, invalidate the old, repoint the GTD. When the caller
// already holds the page's full content (S-FTL's whole-page cache) the read
// is skipped.
//
// The mirror of the *persisted* table (entry values without simulating page
// payloads) lives on the device (NandFlash::PersistedMapping) so that it is
// segment-sparse on TB-scale geometries and rolls back with the power-cut
// snapshot. The mirror is NOT the mapping cache: demand FTLs must pay a
// flash read before consulting it, and tests verify that every consultation
// was paid for. Mirror updates land *after* the page program they describe,
// so a cut during the program never leaves the mirror ahead of flash.
//
// For checkpointing, the store tracks which GTD slots changed since the last
// CollectGtdDeltas() drain; the scheduler folds those deltas into the
// device's cumulative checkpoint directory (src/ftl/checkpoint.h).

#ifndef SRC_FTL_TRANSLATION_STORE_H_
#define SRC_FTL_TRANSLATION_STORE_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/flash/types.h"
#include "src/ftl/block_manager.h"
#include "src/ftl/checkpoint.h"
#include "src/ftl/gtd.h"
#include "src/ftl/recovery.h"

namespace tpftl {

// One pending entry update: lpn must belong to the page being rewritten.
struct MappingUpdate {
  Lpn lpn = kInvalidLpn;
  Ppn ppn = kInvalidPpn;
};

class TranslationStore {
 public:
  TranslationStore(BlockManager* bm, uint64_t logical_pages);

  TranslationStore(const TranslationStore&) = delete;
  TranslationStore& operator=(const TranslationStore&) = delete;

  // Writes the initial (all-invalid) translation pages to flash and fills
  // the GTD. Must be called exactly once before any other operation.
  void Format();

  // Rebuilds the GTD and the persisted table from an OOB scan of the
  // surviving flash state (instead of Format, after a power cut; the block
  // manager must have recovered first). The reconstructed truth is the
  // per-LPN winner from the data-page scan; translation pages whose flash
  // copy lags it — or whose only copy was torn — are re-persisted on the
  // spot, so recovery cost scales with the lost window and the store comes
  // back fully durable. Fills `report` (window size, rewrites, flash time).
  void RecoverFromScan(const OobScanResult& scan, RecoveryReport* report);

  // Simulates reading vtpn's translation page (one flash page read). After
  // this, Persisted() values for that page may be consulted.
  MicroSec ReadTranslationPage(Vtpn vtpn);

  struct RewriteResult {
    MicroSec time = 0.0;
    bool did_read = false;  // True when a read-modify-write read was needed.
  };

  // Applies `updates` (all within `vtpn`'s page) to the persisted table and
  // rewrites the translation page: optional RMW read, program of a new
  // physical page, invalidation of the old one, GTD update.
  RewriteResult RewriteTranslationPage(Vtpn vtpn, std::span<const MappingUpdate> updates,
                                       bool have_full_content);

  // Relocates the translation page currently stored at `ptpn` (GC of a
  // translation block): read + program + invalidate + GTD repoint.
  MicroSec MigrateTranslationPage(Ptpn ptpn);

  // Persisted PPN of `lpn` — the value stored in flash, which can lag the
  // cached value. Free of charge; call only after paying for a page read.
  Ppn Persisted(Lpn lpn) const;

  // Persisted PPNs of one whole translation page (for whole-page caches).
  std::span<const Ppn> PersistedPage(Vtpn vtpn) const;

  // Drains the set of GTD slots changed since the previous drain, as
  // checkpoint deltas (current GTD value per dirty slot). Order follows
  // first-dirtying; each slot appears at most once.
  void CollectGtdDeltas(std::vector<GtdDelta>* out);

  const Gtd& gtd() const { return gtd_; }
  uint64_t translation_pages() const { return gtd_.size(); }
  uint64_t entries_per_page() const { return entries_per_page_; }
  uint64_t logical_pages() const { return logical_pages_; }

  Vtpn VtpnOf(Lpn lpn) const { return lpn / entries_per_page_; }
  uint64_t SlotOf(Lpn lpn) const { return lpn % entries_per_page_; }

 private:
  NandFlash& flash() { return bm_->flash(); }
  const NandFlash& flash() const { return bm_->flash(); }
  void MarkGtdDirty(Vtpn vtpn) {
    if (ckpt_dirty_flag_[vtpn] == 0) {
      ckpt_dirty_flag_[vtpn] = 1;
      ckpt_dirty_vtpns_.push_back(vtpn);
    }
  }

  BlockManager* bm_;
  uint64_t logical_pages_;
  uint64_t entries_per_page_;
  Gtd gtd_;
  bool formatted_ = false;
  // GTD slots changed since the last CollectGtdDeltas() drain.
  std::vector<uint8_t> ckpt_dirty_flag_;
  std::vector<Vtpn> ckpt_dirty_vtpns_;
};

}  // namespace tpftl

#endif  // SRC_FTL_TRANSLATION_STORE_H_
