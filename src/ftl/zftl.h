// ZFTL — zone-based FTL with a two-tier selective cache (Mingbang et al.,
// ICCT 2011; §2.2 of the paper).
//
// Faithful to the paper's description, simplified where the original is
// underspecified:
//
//   * flash is divided into Zones (contiguous slices of the logical space);
//     only the mapping information of the recently accessed zone is cached,
//     so an access outside the active zone forces a *zone switch*: every
//     dirty cached entry is flushed (batched per translation page), the
//     second-tier page is dropped, and the switch itself costs a flash read
//     to bring in the new zone's directory — the "cumbersome" overhead the
//     paper calls out;
//   * the second-tier cache stores one active translation page (whole,
//     uncompressed);
//   * the first-tier cache is a small reserved entry area that performs
//     *batch evictions*: when full, the LRU entry's translation page is
//     selected and every first-tier entry of that page leaves together (one
//     read-modify-write when any of them is dirty).

#ifndef SRC_FTL_ZFTL_H_
#define SRC_FTL_ZFTL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/ftl/demand_ftl.h"

namespace tpftl {

struct ZftlOptions {
  uint64_t zones = 8;
  uint64_t entry_bytes = 8;
};

class Zftl : public DemandFtl {
 public:
  Zftl(const FtlEnv& env, const ZftlOptions& options = {});

  std::string name() const override { return "ZFTL"; }
  Ppn Probe(Lpn lpn) const override;
  uint64_t cache_bytes_used() const override;
  uint64_t cache_entry_count() const override;

  uint64_t zone_count() const { return zones_; }
  uint64_t zone_switches() const { return zone_switches_; }
  uint64_t active_zone() const { return active_zone_; }
  uint64_t tier1_capacity() const { return tier1_capacity_; }

 protected:
  MicroSec Translate(Lpn lpn, bool is_write, Ppn* current) override;
  MicroSec CommitMapping(Lpn lpn, Ppn new_ppn) override;
  bool GcUpdateCached(Lpn lpn, Ppn new_ppn, MicroSec* extra_time) override;
  void CollectCheckpointDirty(std::vector<DirtyMapping>* out) override;

 private:
  struct Tier1Entry {
    Lpn lpn = kInvalidLpn;
    Ppn ppn = kInvalidPpn;
    bool dirty = false;
  };
  using Tier1List = std::list<Tier1Entry>;

  uint64_t ZoneOf(Lpn lpn) const { return lpn / zone_pages_; }

  // Flushes + empties both tiers, then activates `zone` (one directory
  // read). Returns flash time spent.
  MicroSec SwitchZone(uint64_t zone);
  // Batch-evicts the LRU tier-1 entry's translation-page group.
  MicroSec BatchEvictTier1();
  // Writes back the tier-2 page's dirty slots (full content cached → no RMW
  // read) and clears the dirty set.
  MicroSec FlushTier2();
  // Loads `vtpn` as the new tier-2 page (old one flushed first). The flash
  // read for the page itself is paid by the caller.
  MicroSec ActivateTier2(Vtpn vtpn);

  ZftlOptions options_;
  uint64_t zones_;
  uint64_t zone_pages_;
  uint64_t tier1_capacity_;
  uint64_t active_zone_ = ~0ULL;
  uint64_t zone_switches_ = 0;

  Tier1List tier1_;  // MRU at front.
  std::unordered_map<Lpn, Tier1List::iterator> tier1_index_;

  Vtpn tier2_vtpn_ = kInvalidVtpn;
  std::vector<Ppn> tier2_content_;
  std::unordered_map<uint64_t, Ppn> tier2_dirty_slots_;
};

}  // namespace tpftl

#endif  // SRC_FTL_ZFTL_H_
