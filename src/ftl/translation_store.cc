#include "src/ftl/translation_store.h"

#include <algorithm>

#include "src/util/assert.h"

namespace tpftl {
namespace {

uint64_t TranslationPageCount(uint64_t logical_pages, uint64_t entries_per_page) {
  return (logical_pages + entries_per_page - 1) / entries_per_page;
}

}  // namespace

TranslationStore::TranslationStore(BlockManager* bm, uint64_t logical_pages)
    : bm_(bm),
      logical_pages_(logical_pages),
      entries_per_page_(bm->flash().geometry().entries_per_translation_page()),
      gtd_(TranslationPageCount(logical_pages, entries_per_page_)),
      persisted_(gtd_.size() * entries_per_page_, kInvalidPpn) {
  TPFTL_CHECK(logical_pages > 0);
}

void TranslationStore::Format() {
  TPFTL_CHECK_MSG(!formatted_, "double Format()");
  for (Vtpn vtpn = 0; vtpn < gtd_.size(); ++vtpn) {
    Ppn ptpn = kInvalidPtpn;
    bm_->Program(BlockPool::kTranslation, vtpn, &ptpn);
    gtd_.Update(vtpn, ptpn);
  }
  formatted_ = true;
}

void TranslationStore::RecoverFromScan(const OobScanResult& scan, RecoveryReport* report) {
  TPFTL_CHECK_MSG(!formatted_, "recovery into a formatted translation store");
  TPFTL_CHECK(scan.trans_ppn.size() == gtd_.size());
  TPFTL_CHECK(scan.data_ppn.size() == persisted_.size());
  formatted_ = true;  // Low-level rewrites below require it.

  // The reconstructed table: each LPN's winner from the data-page scan.
  for (Lpn lpn = 0; lpn < persisted_.size(); ++lpn) {
    persisted_[lpn] = scan.data_ppn[lpn];
  }

  for (Vtpn vtpn = 0; vtpn < gtd_.size(); ++vtpn) {
    const Ptpn survivor = scan.trans_ppn[vtpn];
    // Entries newer than the surviving flash copy of this translation page
    // were recovered from data OOB alone — the lost window batch-update
    // writeback risks (§4.4). Re-persist such pages immediately.
    uint64_t stale = 0;
    const uint64_t first = vtpn * entries_per_page_;
    const uint64_t last = std::min(first + entries_per_page_, persisted_.size());
    for (Lpn lpn = first; lpn < last; ++lpn) {
      stale += scan.data_seq[lpn] > scan.trans_seq[vtpn] ? 1 : 0;
    }
    report->unpersisted_window += stale;
    if (survivor != kInvalidPtpn && stale == 0) {
      gtd_.Update(vtpn, survivor);
      continue;
    }
    // No RMW read: the OOB scan already paid for reading every page.
    Ptpn new_ptpn = kInvalidPtpn;
    report->rebuild_time_us += bm_->Program(BlockPool::kTranslation, vtpn, &new_ptpn);
    if (survivor != kInvalidPtpn) {
      bm_->Invalidate(survivor);
    }
    gtd_.Update(vtpn, new_ptpn);
    ++report->translation_rewrites;
  }
}

MicroSec TranslationStore::ReadTranslationPage(Vtpn vtpn) {
  TPFTL_CHECK(formatted_);
  const Ptpn ptpn = gtd_.Lookup(vtpn);
  TPFTL_CHECK(ptpn != kInvalidPtpn);
  return bm_->flash().ReadPage(ptpn);
}

TranslationStore::RewriteResult TranslationStore::RewriteTranslationPage(
    Vtpn vtpn, std::span<const MappingUpdate> updates, bool have_full_content) {
  TPFTL_CHECK(formatted_);
  TPFTL_CHECK(vtpn < gtd_.size());
  RewriteResult result;
  const Ptpn old_ptpn = gtd_.Lookup(vtpn);
  if (!have_full_content) {
    result.time += bm_->flash().ReadPage(old_ptpn);
    result.did_read = true;
  }
  for (const MappingUpdate& u : updates) {
    TPFTL_CHECK_MSG(VtpnOf(u.lpn) == vtpn, "update outside the rewritten translation page");
    persisted_[u.lpn] = u.ppn;
  }
  Ptpn new_ptpn = kInvalidPtpn;
  result.time += bm_->Program(BlockPool::kTranslation, vtpn, &new_ptpn);
  bm_->Invalidate(old_ptpn);
  gtd_.Update(vtpn, new_ptpn);
  return result;
}

MicroSec TranslationStore::MigrateTranslationPage(Ptpn ptpn) {
  TPFTL_CHECK(formatted_);
  const auto vtpn = static_cast<Vtpn>(bm_->flash().OobTag(ptpn));
  TPFTL_CHECK_MSG(gtd_.Lookup(vtpn) == ptpn, "valid translation page must match the GTD");
  MicroSec t = bm_->flash().ReadPage(ptpn);
  Ptpn new_ptpn = kInvalidPtpn;
  t += bm_->Program(BlockPool::kTranslation, vtpn, &new_ptpn);
  bm_->Invalidate(ptpn);
  gtd_.Update(vtpn, new_ptpn);
  return t;
}

Ppn TranslationStore::Persisted(Lpn lpn) const {
  TPFTL_CHECK(lpn < persisted_.size());
  return persisted_[lpn];
}

std::span<const Ppn> TranslationStore::PersistedPage(Vtpn vtpn) const {
  TPFTL_CHECK(vtpn < gtd_.size());
  return std::span<const Ppn>(persisted_).subspan(vtpn * entries_per_page_, entries_per_page_);
}

}  // namespace tpftl
