#include "src/ftl/translation_store.h"

#include <algorithm>

#include "src/util/assert.h"

namespace tpftl {
namespace {

uint64_t TranslationPageCount(uint64_t logical_pages, uint64_t entries_per_page) {
  return (logical_pages + entries_per_page - 1) / entries_per_page;
}

}  // namespace

TranslationStore::TranslationStore(BlockManager* bm, uint64_t logical_pages)
    : bm_(bm),
      logical_pages_(logical_pages),
      entries_per_page_(bm->flash().geometry().entries_per_translation_page()),
      gtd_(TranslationPageCount(logical_pages, entries_per_page_)),
      ckpt_dirty_flag_(gtd_.size(), 0) {
  TPFTL_CHECK(logical_pages > 0);
}

void TranslationStore::Format() {
  TPFTL_CHECK_MSG(!formatted_, "double Format()");
  for (Vtpn vtpn = 0; vtpn < gtd_.size(); ++vtpn) {
    Ppn ptpn = kInvalidPtpn;
    bm_->Program(BlockPool::kTranslation, vtpn, &ptpn);
    gtd_.Update(vtpn, ptpn);
    MarkGtdDirty(vtpn);
  }
  formatted_ = true;
}

void TranslationStore::RecoverFromScan(const OobScanResult& scan, RecoveryReport* report) {
  TPFTL_CHECK_MSG(!formatted_, "recovery into a formatted translation store");
  TPFTL_CHECK(scan.trans_ppn.size() == gtd_.size());
  TPFTL_CHECK(scan.data_ppn.size() == logical_pages_);
  formatted_ = true;  // Low-level rewrites below require it.

  // The reconstructed table: each LPN's winner from the data-page scan.
  // Both arrays share the device's segment layout, so the sync walks the
  // union of materialized segments — a segment unmaterialized on both sides
  // is all-unmapped on both sides and needs no work. This keeps recovery on
  // a sparse TB device proportional to its footprint, not its capacity.
  const SegmentedArray<Ppn>& mirror = flash().persisted_mirror();
  // Dense mode: both MaterializedAt calls are trivially true and the walk
  // degenerates to one flat pass. Sparse mode: the mirror and the scan share
  // the geometry's segment size, so their boundaries align.
  TPFTL_CHECK(scan.data_ppn.dense() ||
              mirror.segment_size() == scan.data_ppn.segment_size());
  const uint64_t seg_pages = scan.data_ppn.segment_size();
  for (uint64_t s = 0; s < scan.data_ppn.total_segments(); ++s) {
    const Lpn first = s * seg_pages;
    if (!scan.data_ppn.MaterializedAt(first) && !mirror.MaterializedAt(first)) {
      continue;
    }
    const Lpn last = std::min(first + seg_pages, logical_pages_);
    const Ppn* winners = scan.data_ppn.Span(first, last - first);
    for (Lpn lpn = first; lpn < last; ++lpn) {
      flash().SetPersistedMapping(lpn, winners[lpn - first]);
    }
  }

  for (Vtpn vtpn = 0; vtpn < gtd_.size(); ++vtpn) {
    const Ptpn survivor = scan.trans_ppn[vtpn];
    // Entries newer than the surviving flash copy of this translation page
    // were recovered from data OOB alone — the lost window batch-update
    // writeback risks (§4.4). Re-persist such pages immediately. A span
    // never crosses a segment boundary (segment size is a multiple of the
    // per-page entry count), and an unmaterialized segment holds seq 0
    // everywhere, so the whole span can be skipped.
    uint64_t stale = 0;
    const uint64_t first = vtpn * entries_per_page_;
    const uint64_t last = std::min(first + entries_per_page_, logical_pages_);
    if (scan.data_seq.MaterializedAt(first)) {
      const uint64_t* seqs = scan.data_seq.Span(first, last - first);
      for (uint64_t i = 0; i < last - first; ++i) {
        stale += seqs[i] > scan.trans_seq[vtpn] ? 1 : 0;
      }
    }
    report->unpersisted_window += stale;
    if (survivor != kInvalidPtpn && stale == 0) {
      gtd_.Update(vtpn, survivor);
      MarkGtdDirty(vtpn);
      continue;
    }
    // No RMW read: the OOB scan already paid for reading every page.
    Ptpn new_ptpn = kInvalidPtpn;
    report->rebuild_time_us += bm_->Program(BlockPool::kTranslation, vtpn, &new_ptpn);
    if (survivor != kInvalidPtpn) {
      bm_->Invalidate(survivor);
    }
    gtd_.Update(vtpn, new_ptpn);
    MarkGtdDirty(vtpn);
    ++report->translation_rewrites;
  }
}

MicroSec TranslationStore::ReadTranslationPage(Vtpn vtpn) {
  TPFTL_CHECK(formatted_);
  const Ptpn ptpn = gtd_.Lookup(vtpn);
  TPFTL_CHECK(ptpn != kInvalidPtpn);
  return bm_->flash().ReadPage(ptpn);
}

TranslationStore::RewriteResult TranslationStore::RewriteTranslationPage(
    Vtpn vtpn, std::span<const MappingUpdate> updates, bool have_full_content) {
  TPFTL_CHECK(formatted_);
  TPFTL_CHECK(vtpn < gtd_.size());
  RewriteResult result;
  const Ptpn old_ptpn = gtd_.Lookup(vtpn);
  if (!have_full_content) {
    result.time += bm_->flash().ReadPage(old_ptpn);
    result.did_read = true;
  }
  Ptpn new_ptpn = kInvalidPtpn;
  result.time += bm_->Program(BlockPool::kTranslation, vtpn, &new_ptpn);
  // Mirror updates strictly after the program: a power cut during it rolls
  // the device (mirror included) back to the pre-program state, so the
  // mirror never claims persistence the flash does not have.
  for (const MappingUpdate& u : updates) {
    TPFTL_CHECK_MSG(VtpnOf(u.lpn) == vtpn, "update outside the rewritten translation page");
    flash().SetPersistedMapping(u.lpn, u.ppn);
  }
  bm_->Invalidate(old_ptpn);
  gtd_.Update(vtpn, new_ptpn);
  MarkGtdDirty(vtpn);
  return result;
}

MicroSec TranslationStore::MigrateTranslationPage(Ptpn ptpn) {
  TPFTL_CHECK(formatted_);
  const auto vtpn = static_cast<Vtpn>(bm_->flash().OobTag(ptpn));
  TPFTL_CHECK_MSG(gtd_.Lookup(vtpn) == ptpn, "valid translation page must match the GTD");
  MicroSec t = bm_->flash().ReadPage(ptpn);
  Ptpn new_ptpn = kInvalidPtpn;
  t += bm_->Program(BlockPool::kTranslation, vtpn, &new_ptpn);
  bm_->Invalidate(ptpn);
  gtd_.Update(vtpn, new_ptpn);
  MarkGtdDirty(vtpn);
  return t;
}

Ppn TranslationStore::Persisted(Lpn lpn) const {
  TPFTL_CHECK(lpn < logical_pages_);
  return flash().PersistedMapping(lpn);
}

std::span<const Ppn> TranslationStore::PersistedPage(Vtpn vtpn) const {
  TPFTL_CHECK(vtpn < gtd_.size());
  return std::span<const Ppn>(
      flash().PersistedMappingSpan(vtpn * entries_per_page_, entries_per_page_),
      entries_per_page_);
}

void TranslationStore::CollectGtdDeltas(std::vector<GtdDelta>* out) {
  out->reserve(out->size() + ckpt_dirty_vtpns_.size());
  for (const Vtpn vtpn : ckpt_dirty_vtpns_) {
    out->push_back({vtpn, gtd_.Lookup(vtpn)});
    ckpt_dirty_flag_[vtpn] = 0;
  }
  ckpt_dirty_vtpns_.clear();
}

}  // namespace tpftl
