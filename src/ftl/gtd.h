// Global Translation Directory (§4.1).
//
// Maps each virtual translation page number (VTPN) to the physical flash page
// (PTPN) currently holding that translation page. The GTD is small (4 B per
// translation page) and always resident in the mapping cache; its byte size
// is charged against the cache budget by DemandFtl.

#ifndef SRC_FTL_GTD_H_
#define SRC_FTL_GTD_H_

#include <vector>

#include "src/flash/types.h"
#include "src/util/assert.h"

namespace tpftl {

class Gtd {
 public:
  explicit Gtd(uint64_t num_translation_pages)
      : table_(num_translation_pages, kInvalidPtpn) {}

  Ptpn Lookup(Vtpn vtpn) const {
    TPFTL_CHECK(vtpn < table_.size());
    return table_[vtpn];
  }

  void Update(Vtpn vtpn, Ptpn ptpn) {
    TPFTL_CHECK(vtpn < table_.size());
    table_[vtpn] = ptpn;
  }

  uint64_t size() const { return table_.size(); }
  // 4 B per directory entry, matching the paper's cache-budget arithmetic.
  uint64_t size_bytes() const { return table_.size() * 4; }

 private:
  std::vector<Ptpn> table_;
};

}  // namespace tpftl

#endif  // SRC_FTL_GTD_H_
