#include "src/ftl/optimal_ftl.h"

#include "src/util/assert.h"

namespace tpftl {

FtlEnv OptimalFtl::WithCumulativeCheckpoints(FtlEnv env) {
  env.checkpoint.cumulative_data = true;
  return env;
}

OptimalFtl::OptimalFtl(const FtlEnv& env)
    : DemandFtl(WithCumulativeCheckpoints(env), /*uses_translation_store=*/false),
      table_(env.logical_pages, kInvalidPpn) {
  if (env.recover_from_flash) {
    // Optimal keeps a dense RAM table, so fill it from the (possibly sparse)
    // recovered winner array element-wise.
    const SegmentedArray<Ppn>& winners = recovered_user_map();
    for (Lpn lpn = 0; lpn < winners.size(); ++lpn) {
      table_[lpn] = winners.Get(lpn);
    }
  }
}

MicroSec OptimalFtl::Translate(Lpn lpn, bool is_write, Ppn* current) {
  (void)is_write;
  AtStats& s = mutable_stats();
  ++s.lookups;
  ++s.hits;
  *current = table_[lpn];
  return 0.0;
}

MicroSec OptimalFtl::CommitMapping(Lpn lpn, Ppn new_ppn) {
  table_[lpn] = new_ppn;
  if (checkpoint_scheduler().enabled()) {
    ckpt_dirty_.insert(lpn);
  }
  return 0.0;
}

bool OptimalFtl::GcUpdateCached(Lpn lpn, Ppn new_ppn, MicroSec* extra_time) {
  (void)extra_time;
  table_[lpn] = new_ppn;
  if (checkpoint_scheduler().enabled()) {
    ckpt_dirty_.insert(lpn);
  }
  return true;
}

void OptimalFtl::CollectCheckpointDirty(std::vector<DirtyMapping>* out) {
  // Deltas since the previous checkpoint; table_[lpn] == kInvalidPpn encodes
  // a TRIM and folds as a clear triple. A commit always follows this call,
  // so draining the set here is safe.
  out->reserve(out->size() + ckpt_dirty_.size());
  for (const Lpn lpn : ckpt_dirty_) {
    out->push_back({lpn, table_[lpn]});
  }
  ckpt_dirty_.clear();
}

Ppn OptimalFtl::Probe(Lpn lpn) const {
  TPFTL_CHECK(lpn < table_.size());
  return table_[lpn];
}

}  // namespace tpftl
