#include "src/ftl/optimal_ftl.h"

#include "src/util/assert.h"

namespace tpftl {

OptimalFtl::OptimalFtl(const FtlEnv& env)
    : DemandFtl(env, /*uses_translation_store=*/false),
      table_(env.logical_pages, kInvalidPpn) {
  if (env.recover_from_flash) {
    table_ = recovered_user_map();
  }
}

MicroSec OptimalFtl::Translate(Lpn lpn, bool is_write, Ppn* current) {
  (void)is_write;
  AtStats& s = mutable_stats();
  ++s.lookups;
  ++s.hits;
  *current = table_[lpn];
  return 0.0;
}

MicroSec OptimalFtl::CommitMapping(Lpn lpn, Ppn new_ppn) {
  table_[lpn] = new_ppn;
  return 0.0;
}

bool OptimalFtl::GcUpdateCached(Lpn lpn, Ppn new_ppn, MicroSec* extra_time) {
  (void)extra_time;
  table_[lpn] = new_ppn;
  return true;
}

Ppn OptimalFtl::Probe(Lpn lpn) const {
  TPFTL_CHECK(lpn < table_.size());
  return table_[lpn];
}

}  // namespace tpftl
