// Piecewise-linear learned index over sorted LPN→PPN runs (LearnedFTL,
// arXiv 2303.13226).
//
// A data block written from a sorted (or GC-sorted) stream holds pages whose
// LPNs grow with their PPNs, so a straight line with a small error bound can
// replace the per-entry mapping for the whole run. TrainPlr fits maximal
// segments greedily: each segment anchors at its first point and narrows a
// feasible-slope cone as points arrive; when the cone empties the segment is
// closed and a new one starts. Every covered point is guaranteed to satisfy
// |Predict(lpn) - ppn| <= error_bound (the cone is trained against
// error_bound - 0.5 so integer rounding cannot break the guarantee).
//
// LearnedIndex stores the fitted segments ordered by first LPN, disjoint by
// construction (inserting a segment erases any older overlapping ones), under
// a byte budget with LRU eviction: a verified prediction touches its segment,
// so a segment serving an in-flight scan outlives the churn of concurrent
// training inserts. The replacement half stays deliberately simple beyond
// that because a stale segment is harmless: its prediction fails OOB
// verification and the lookup falls back to the translation-page path.

#ifndef SRC_FTL_PLR_H_
#define SRC_FTL_PLR_H_

#include <cstdint>
#include <list>
#include <map>
#include <vector>

#include "src/flash/types.h"

namespace tpftl {

// One training sample: lpn's current data page.
struct PlrPoint {
  Lpn lpn = kInvalidLpn;
  Ppn ppn = kInvalidPpn;
};

// One fitted segment: covers LPNs in [first_lpn, last_lpn].
struct PlrSegment {
  Lpn first_lpn = kInvalidLpn;
  Lpn last_lpn = kInvalidLpn;
  Ppn first_ppn = kInvalidPpn;
  double slope = 0.0;

  Ppn Predict(Lpn lpn) const {
    const auto dx = static_cast<double>(lpn - first_lpn);
    const auto delta = static_cast<int64_t>(slope * dx + (slope * dx >= 0.0 ? 0.5 : -0.5));
    return first_ppn + static_cast<Ppn>(delta);
  }

  bool Covers(Lpn lpn) const { return lpn >= first_lpn && lpn <= last_lpn; }
};

// Fits greedy maximal segments over `run`, which must be strictly increasing
// in both lpn and ppn. Runs (and sub-segments) shorter than `min_run_points`
// are dropped — a 32-byte segment predicting two pages is not worth its RAM.
std::vector<PlrSegment> TrainPlr(const std::vector<PlrPoint>& run, uint32_t error_bound,
                                 uint64_t min_run_points);

class LearnedIndex {
 public:
  // Serialized footprint per segment: 4 B first LPN + 2 B run length + 4 B
  // first PPN + 4 B fixed-point slope + 2 B pad.
  static constexpr uint64_t kSegmentBytes = 16;

  explicit LearnedIndex(uint64_t budget_bytes)
      : max_segments_(budget_bytes / kSegmentBytes) {}

  bool enabled() const { return max_segments_ > 0; }

  // Inserts one fitted segment at MRU, erasing any older segments its LPN
  // span overlaps, then LRU-evicts down to the budget.
  void Insert(const PlrSegment& seg);

  // Segment covering `lpn`, or nullptr. No side effects.
  const PlrSegment* Lookup(Lpn lpn) const;

  // Moves the segment covering `lpn` to MRU. Called after a verified
  // prediction: a segment actively serving lookups must outlive the training
  // inserts that churn the rest of the cache.
  void Touch(Lpn lpn);

  // Drops the segment covering `lpn`, if any. Called when a prediction fails
  // OOB verification: the segment is provably stale for at least one covered
  // LPN, and evicting it immediately stops every later lookup in its span
  // from paying wasted probe reads.
  void EraseCovering(Lpn lpn);

  // Drops every segment whose predicted PPN span intersects [begin, end).
  // Called when GC erases a data block: segments pointing into it are stale
  // for their whole span (the valid pages just migrated out), and without
  // this they linger until failed verifications evict them one by one.
  void ErasePpnRange(Ppn begin, Ppn end);

  uint64_t segment_count() const { return segments_.size(); }
  uint64_t bytes_used() const { return segments_.size() * kSegmentBytes; }
  uint64_t max_segments() const { return max_segments_; }

 private:
  struct Slot {
    PlrSegment seg;
    std::list<Lpn>::iterator pos;  // This segment's entry in lru_.
  };

  uint64_t max_segments_;
  std::map<Lpn, Slot> segments_;  // Keyed by first_lpn; disjoint spans.
  std::list<Lpn> lru_;            // MRU at front; mirrors segments_'s keys.
};

}  // namespace tpftl

#endif  // SRC_FTL_PLR_H_
