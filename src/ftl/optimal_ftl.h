// The optimal page-level FTL (§5.1): the entire mapping table is held in
// RAM, so address translation costs nothing and never touches flash. It
// bounds from below the overhead any demand-based FTL can achieve and is the
// baseline for Table 2's deviation measurements.

#ifndef SRC_FTL_OPTIMAL_FTL_H_
#define SRC_FTL_OPTIMAL_FTL_H_

#include <vector>

#include "src/ftl/demand_ftl.h"

namespace tpftl {

class OptimalFtl : public DemandFtl {
 public:
  explicit OptimalFtl(const FtlEnv& env);

  std::string name() const override { return "Optimal"; }
  Ppn Probe(Lpn lpn) const override;
  uint64_t cache_bytes_used() const override { return table_.size() * 8; }
  uint64_t cache_entry_count() const override { return table_.size(); }

 protected:
  MicroSec Translate(Lpn lpn, bool is_write, Ppn* current) override;
  MicroSec CommitMapping(Lpn lpn, Ppn new_ppn) override;
  bool GcUpdateCached(Lpn lpn, Ppn new_ppn, MicroSec* extra_time) override;
  // The whole table: none of it is ever persisted to translation pages, so
  // every live mapping is "dirty" in checkpoint terms.
  void CollectCheckpointDirty(std::vector<DirtyMapping>* out) override;

 private:
  std::vector<Ppn> table_;
};

}  // namespace tpftl

#endif  // SRC_FTL_OPTIMAL_FTL_H_
