// The optimal page-level FTL (§5.1): the entire mapping table is held in
// RAM, so address translation costs nothing and never touches flash. It
// bounds from below the overhead any demand-based FTL can achieve and is the
// baseline for Table 2's deviation measurements.

#ifndef SRC_FTL_OPTIMAL_FTL_H_
#define SRC_FTL_OPTIMAL_FTL_H_

#include <set>
#include <vector>

#include "src/ftl/demand_ftl.h"

namespace tpftl {

class OptimalFtl : public DemandFtl {
 public:
  explicit OptimalFtl(const FtlEnv& env);

  std::string name() const override { return "Optimal"; }
  Ppn Probe(Lpn lpn) const override;
  uint64_t cache_bytes_used() const override { return table_.size() * 8; }
  uint64_t cache_entry_count() const override { return table_.size(); }

 protected:
  MicroSec Translate(Lpn lpn, bool is_write, Ppn* current) override;
  MicroSec CommitMapping(Lpn lpn, Ppn new_ppn) override;
  bool GcUpdateCached(Lpn lpn, Ppn new_ppn, MicroSec* extra_time) override;
  // Nothing is ever persisted to translation pages, so the whole table is
  // "dirty" in checkpoint terms — but re-serializing it per record would make
  // checkpoint cost O(live map). Instead the FTL opts into the cumulative
  // data directory (CheckpointConfig::cumulative_data) and emits only the
  // mappings changed since the previous checkpoint, TRIMs as clear triples.
  void CollectCheckpointDirty(std::vector<DirtyMapping>* out) override;

 private:
  // Flips on cumulative-data checkpointing before the base constructor runs
  // (the boot checkpoint and any recovery epilogue happen in there).
  static FtlEnv WithCumulativeCheckpoints(FtlEnv env);

  std::vector<Ppn> table_;
  // LPNs whose mapping changed since the last checkpoint (ordered, so the
  // emitted triples are deterministic). Only tracked when checkpointing.
  std::set<Lpn> ckpt_dirty_;
};

}  // namespace tpftl

#endif  // SRC_FTL_OPTIMAL_FTL_H_
