#include "src/ftl/cdftl.h"

#include <algorithm>

#include "src/util/assert.h"

namespace tpftl {

Cdftl::Cdftl(const FtlEnv& env, const CdftlOptions& options)
    : DemandFtl(env, /*uses_translation_store=*/true), options_(options) {
  const uint64_t page_bytes = flash().geometry().page_size_bytes;
  const uint64_t budget = entry_cache_budget_bytes();
  const auto ctp_bytes = static_cast<uint64_t>(static_cast<double>(budget) * options.ctp_fraction);
  ctp_capacity_ = std::max<uint64_t>(1, ctp_bytes / page_bytes);
  const uint64_t ctp_actual = std::min(budget, ctp_capacity_ * page_bytes);
  cmt_capacity_ = std::max<uint64_t>(1, (budget - ctp_actual) / options.entry_bytes);
}

Cdftl::CtpList::iterator Cdftl::FindCtp(Vtpn vtpn) {
  const auto it = ctp_index_.find(vtpn);
  return it == ctp_index_.end() ? ctp_.end() : it->second;
}

MicroSec Cdftl::EvictCmtEntry() {
  AtStats& s = mutable_stats();
  TPFTL_CHECK(!cmt_.empty());
  // Search from the LRU end for a victim that is clean or whose page is CTP
  // resident (fold-in); dirty entries without a cached page are skipped.
  auto victim = cmt_.end();
  uint64_t scanned = 0;
  for (auto it = std::prev(cmt_.end());; --it) {
    const bool evictable = !it->dirty || FindCtp(store().VtpnOf(it->lpn)) != ctp_.end();
    if (evictable) {
      victim = it;
      break;
    }
    if (++scanned >= options_.evict_scan_limit || it == cmt_.begin()) {
      break;
    }
  }

  MicroSec t = 0.0;
  if (victim == cmt_.end()) {
    // Everything nearby is cold-dirty with no cached page: fall back to a
    // single-entry writeback of the LRU entry (DFTL-style).
    victim = std::prev(cmt_.end());
    ++s.evictions;
    ++s.dirty_evictions;
    const MappingUpdate update{victim->lpn, victim->ppn};
    const auto r = store().RewriteTranslationPage(store().VtpnOf(victim->lpn), {&update, 1},
                                                  /*have_full_content=*/false);
    ++s.trans_reads_at;
    ++s.trans_writes_at;
    t += r.time;
  } else {
    ++s.evictions;
    if (victim->dirty) {
      // Fold into the CTP copy: no flash cost now, page becomes dirty.
      auto page = FindCtp(store().VtpnOf(victim->lpn));
      TPFTL_DCHECK(page != ctp_.end());
      const uint64_t slot = store().SlotOf(victim->lpn);
      page->content[slot] = victim->ppn;
      page->dirty_slots[slot] = victim->ppn;
    }
  }
  cmt_index_.erase(victim->lpn);
  cmt_.erase(victim);
  return t;
}

MicroSec Cdftl::EvictCtpPage() {
  AtStats& s = mutable_stats();
  TPFTL_CHECK(!ctp_.empty());
  auto victim = std::prev(ctp_.end());
  ++s.evictions;
  MicroSec t = 0.0;
  if (victim->dirty()) {
    ++s.dirty_evictions;
    // Whole page cached → write without the RMW read. Only the slots dirtied
    // in this copy are persisted; CMT entries that are newer stay cached and
    // dirty, winning on lookup until their own writeback.
    std::vector<MappingUpdate> updates;
    updates.reserve(victim->dirty_slots.size());
    const Lpn base = victim->vtpn * store().entries_per_page();
    for (const auto& [slot, ppn] : victim->dirty_slots) {
      updates.push_back({base + slot, ppn});
    }
    const auto r =
        store().RewriteTranslationPage(victim->vtpn, updates, /*have_full_content=*/true);
    TPFTL_DCHECK(!r.did_read);
    ++s.trans_writes_at;
    t += r.time;
  }
  ctp_index_.erase(victim->vtpn);
  ctp_.erase(victim);
  return t;
}

MicroSec Cdftl::InsertCtp(Vtpn vtpn) {
  MicroSec t = 0.0;
  while (ctp_.size() >= ctp_capacity_) {
    t += EvictCtpPage();
  }
  const auto page_span = store().PersistedPage(vtpn);
  ctp_.push_front(CtpPage{vtpn, std::vector<Ppn>(page_span.begin(), page_span.end()), {}});
  ctp_index_[vtpn] = ctp_.begin();
  return t;
}

MicroSec Cdftl::Translate(Lpn lpn, bool is_write, Ppn* current) {
  (void)is_write;
  AtStats& s = mutable_stats();
  ++s.lookups;
  // First level: CMT.
  if (const auto it = cmt_index_.find(lpn); it != cmt_index_.end()) {
    ++s.hits;
    cmt_.splice(cmt_.begin(), cmt_, it->second);
    *current = it->second->ppn;
    return 0.0;
  }

  MicroSec t = 0.0;
  const Vtpn vtpn = store().VtpnOf(lpn);
  auto page = FindCtp(vtpn);
  if (page != ctp_.end()) {
    // Second level hit: no flash access.
    ++s.hits;
    ctp_.splice(ctp_.begin(), ctp_, page);
  } else {
    ++s.misses;
    t += store().ReadTranslationPage(vtpn);
    ++s.trans_reads_at;
    t += InsertCtp(vtpn);
    page = ctp_.begin();
  }

  // Copy the entry up into the CMT.
  const Ppn ppn = page->content[store().SlotOf(lpn)];
  while (cmt_.size() >= cmt_capacity_) {
    t += EvictCmtEntry();
  }
  cmt_.push_front(CmtEntry{lpn, ppn, false});
  cmt_index_[lpn] = cmt_.begin();
  *current = ppn;
  return t;
}

MicroSec Cdftl::CommitMapping(Lpn lpn, Ppn new_ppn) {
  const auto it = cmt_index_.find(lpn);
  TPFTL_CHECK_MSG(it != cmt_index_.end(), "CommitMapping without a preceding Translate");
  it->second->ppn = new_ppn;
  it->second->dirty = true;
  return 0.0;
}

bool Cdftl::GcUpdateCached(Lpn lpn, Ppn new_ppn, MicroSec* extra_time) {
  (void)extra_time;
  bool found = false;
  if (const auto it = cmt_index_.find(lpn); it != cmt_index_.end()) {
    it->second->ppn = new_ppn;
    it->second->dirty = true;
    found = true;
  }
  if (const auto page = FindCtp(store().VtpnOf(lpn)); page != ctp_.end()) {
    const uint64_t slot = store().SlotOf(lpn);
    page->content[slot] = new_ppn;
    page->dirty_slots[slot] = new_ppn;
    found = true;
  }
  return found;
}

MicroSec Cdftl::GcRewriteTranslation(Vtpn vtpn, std::vector<MappingUpdate>& updates) {
  // The page cannot be CTP-resident here (that would have been a GC hit), so
  // the default read-modify-write applies.
  TPFTL_DCHECK(ctp_index_.find(vtpn) == ctp_index_.end());
  return DemandFtl::GcRewriteTranslation(vtpn, updates);
}

Ppn Cdftl::Probe(Lpn lpn) const {
  if (const auto it = cmt_index_.find(lpn); it != cmt_index_.end()) {
    return it->second->ppn;
  }
  const auto page = ctp_index_.find(translation_store().VtpnOf(lpn));
  if (page != ctp_index_.end()) {
    return page->second->content[translation_store().SlotOf(lpn)];
  }
  return translation_store().Persisted(lpn);
}

uint64_t Cdftl::cache_bytes_used() const {
  return cmt_.size() * options_.entry_bytes +
         ctp_.size() * flash().geometry().page_size_bytes;
}

uint64_t Cdftl::cache_entry_count() const {
  return cmt_.size() + ctp_.size() * translation_store().entries_per_page();
}

void Cdftl::CollectCheckpointDirty(std::vector<DirtyMapping>* out) {
  for (const CmtEntry& e : cmt_) {
    if (e.dirty) {
      out->push_back({e.lpn, e.ppn});
    }
  }
  const uint64_t entries = translation_store().entries_per_page();
  for (const CtpPage& page : ctp_) {
    for (const auto& [slot, ppn] : page.dirty_slots) {
      out->push_back({page.vtpn * entries + slot, ppn});
    }
  }
}

}  // namespace tpftl
