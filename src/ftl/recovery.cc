#include "src/ftl/recovery.h"

#include <algorithm>

#include "src/util/assert.h"

namespace tpftl {

OobScanResult ScanForRecovery(const NandFlash& flash, uint64_t logical_pages,
                              uint64_t translation_pages) {
  const FlashGeometry& g = flash.geometry();
  OobScanResult r;
  r.data_ppn = SegmentedArray<Ppn>(logical_pages, kInvalidPpn, g.sparse_segment_pages);
  r.data_seq = SegmentedArray<uint64_t>(logical_pages, 0, g.sparse_segment_pages);
  r.trans_ppn.assign(translation_pages, kInvalidPtpn);
  r.trans_seq.assign(translation_pages, 0);
  r.blocks.resize(g.total_blocks);

  for (BlockId b = 0; b < g.total_blocks; ++b) {
    const Block blk = flash.block(b);
    OobScanResult::BlockSummary& summary = r.blocks[b];
    for (uint64_t off = 0; off < g.pages_per_block; ++off) {
      // The scan trusts nothing but per-page OOB (it is the no-metadata
      // fallback), so learning that a page is free still costs its OOB read
      // — the full scan is O(device capacity), not O(programmed).
      ++r.report.pages_scanned;
      r.report.scan_time_us += g.page_read_us;  // OOB read billed as a page read.
      if (blk.StateOf(off) == PageState::kFree) {
        continue;
      }
      ++summary.programmed;
      const Ppn ppn = g.PpnOf(b, off);
      const uint64_t seq = flash.OobSeq(ppn);
      const OobKind kind = flash.OobKindOf(ppn);
      if (seq == 0 || kind == OobKind::kNone) {
        ++r.report.torn_pages;
        continue;
      }
      // Blocks are erased before changing pools, so readable kinds never mix.
      TPFTL_CHECK_MSG(summary.pool == OobKind::kNone || summary.pool == kind,
                      "mixed data/translation pages in one block");
      summary.pool = kind;
      summary.max_seq = std::max(summary.max_seq, seq);
      const uint64_t tag = flash.OobTag(ppn);
      if (kind == OobKind::kData) {
        TPFTL_CHECK_MSG(tag < logical_pages, "data OOB tag outside the logical space");
        if (seq > r.data_seq.Get(tag)) {
          if (r.data_seq.Get(tag) != 0) {
            ++r.report.conflict_copies;
          }
          r.data_ppn.Set(tag, ppn);
          r.data_seq.Set(tag, seq);
        } else {
          ++r.report.conflict_copies;
        }
      } else {
        TPFTL_CHECK_MSG(tag < translation_pages, "translation OOB tag outside the GTD");
        if (seq > r.trans_seq[tag]) {
          if (r.trans_seq[tag] != 0) {
            ++r.report.conflict_copies;
          }
          r.trans_ppn[tag] = ppn;
          r.trans_seq[tag] = seq;
        } else {
          ++r.report.conflict_copies;
        }
      }
    }
  }

  // TRIM cross-check: a winner whose page is no longer valid was
  // deliberately unmapped after it was written — drop the mapping. Winners
  // only live in materialized segments, so walk those instead of the whole
  // logical space (RAM work, not billed flash time).
  const uint64_t seg_pages = r.data_ppn.segment_size();
  for (uint64_t s = r.data_ppn.NextMaterializedSegment(0);
       s < r.data_ppn.total_segments(); s = r.data_ppn.NextMaterializedSegment(s + 1)) {
    const Lpn first = s * seg_pages;
    const Lpn last = std::min(first + seg_pages, logical_pages);
    for (Lpn lpn = first; lpn < last; ++lpn) {
      const Ppn winner = r.data_ppn.Get(lpn);
      if (winner == kInvalidPpn) {
        continue;
      }
      if (flash.StateOf(winner) != PageState::kValid) {
        r.data_ppn.Set(lpn, kInvalidPpn);
        r.data_seq.Set(lpn, 0);
        ++r.report.stale_winners_dropped;
      } else {
        ++r.report.data_mappings;
      }
    }
  }
  for (Vtpn vtpn = 0; vtpn < translation_pages; ++vtpn) {
    if (r.trans_ppn[vtpn] == kInvalidPtpn) {
      continue;
    }
    // Translation pages are superseded write-then-invalidate, never trimmed,
    // so the newest copy must still be valid.
    TPFTL_CHECK_MSG(flash.StateOf(r.trans_ppn[vtpn]) == PageState::kValid,
                    "newest translation page copy is not valid");
    ++r.report.translation_pages_found;
  }

  // Agreement cross-check (the clean-prefix invariant): every valid page is
  // its tag's winner — there is exactly one valid copy per live mapping.
  for (BlockId b = 0; b < g.total_blocks; ++b) {
    const Block blk = flash.block(b);
    for (uint64_t off = 0; off < g.pages_per_block; ++off) {
      if (blk.StateOf(off) != PageState::kValid) {
        continue;
      }
      const Ppn ppn = g.PpnOf(b, off);
      const uint64_t tag = flash.OobTag(ppn);
      if (flash.OobKindOf(ppn) == OobKind::kData) {
        TPFTL_CHECK_MSG(r.data_ppn.Get(tag) == ppn, "valid data page is not its LPN's newest copy");
      } else {
        TPFTL_CHECK_MSG(flash.OobKindOf(ppn) == OobKind::kTranslation && r.trans_ppn[tag] == ppn,
                        "valid page with unreadable OOB");
      }
    }
  }

  return r;
}

}  // namespace tpftl
