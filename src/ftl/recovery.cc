#include "src/ftl/recovery.h"

#include <algorithm>

#include "src/util/assert.h"

namespace tpftl {

OobScanResult ScanForRecovery(const NandFlash& flash, uint64_t logical_pages,
                              uint64_t translation_pages) {
  const FlashGeometry& g = flash.geometry();
  OobScanResult r;
  r.data_ppn.assign(logical_pages, kInvalidPpn);
  r.data_seq.assign(logical_pages, 0);
  r.trans_ppn.assign(translation_pages, kInvalidPtpn);
  r.trans_seq.assign(translation_pages, 0);
  r.blocks.resize(g.total_blocks);

  for (BlockId b = 0; b < g.total_blocks; ++b) {
    const Block blk = flash.block(b);
    OobScanResult::BlockSummary& summary = r.blocks[b];
    for (uint64_t off = 0; off < g.pages_per_block; ++off) {
      if (blk.StateOf(off) == PageState::kFree) {
        continue;
      }
      ++summary.programmed;
      const Ppn ppn = g.PpnOf(b, off);
      ++r.report.pages_scanned;
      r.report.scan_time_us += g.page_read_us;  // OOB read billed as a page read.
      const uint64_t seq = flash.OobSeq(ppn);
      const OobKind kind = flash.OobKindOf(ppn);
      if (seq == 0 || kind == OobKind::kNone) {
        ++r.report.torn_pages;
        continue;
      }
      // Blocks are erased before changing pools, so readable kinds never mix.
      TPFTL_CHECK_MSG(summary.pool == OobKind::kNone || summary.pool == kind,
                      "mixed data/translation pages in one block");
      summary.pool = kind;
      summary.max_seq = std::max(summary.max_seq, seq);
      const uint64_t tag = flash.OobTag(ppn);
      if (kind == OobKind::kData) {
        TPFTL_CHECK_MSG(tag < logical_pages, "data OOB tag outside the logical space");
        if (seq > r.data_seq[tag]) {
          if (r.data_seq[tag] != 0) {
            ++r.report.conflict_copies;
          }
          r.data_ppn[tag] = ppn;
          r.data_seq[tag] = seq;
        } else {
          ++r.report.conflict_copies;
        }
      } else {
        TPFTL_CHECK_MSG(tag < translation_pages, "translation OOB tag outside the GTD");
        if (seq > r.trans_seq[tag]) {
          if (r.trans_seq[tag] != 0) {
            ++r.report.conflict_copies;
          }
          r.trans_ppn[tag] = ppn;
          r.trans_seq[tag] = seq;
        } else {
          ++r.report.conflict_copies;
        }
      }
    }
  }

  // TRIM cross-check: a winner whose page is no longer valid was
  // deliberately unmapped after it was written — drop the mapping.
  for (Lpn lpn = 0; lpn < logical_pages; ++lpn) {
    if (r.data_ppn[lpn] == kInvalidPpn) {
      continue;
    }
    if (flash.StateOf(r.data_ppn[lpn]) != PageState::kValid) {
      r.data_ppn[lpn] = kInvalidPpn;
      r.data_seq[lpn] = 0;
      ++r.report.stale_winners_dropped;
    } else {
      ++r.report.data_mappings;
    }
  }
  for (Vtpn vtpn = 0; vtpn < translation_pages; ++vtpn) {
    if (r.trans_ppn[vtpn] == kInvalidPtpn) {
      continue;
    }
    // Translation pages are superseded write-then-invalidate, never trimmed,
    // so the newest copy must still be valid.
    TPFTL_CHECK_MSG(flash.StateOf(r.trans_ppn[vtpn]) == PageState::kValid,
                    "newest translation page copy is not valid");
    ++r.report.translation_pages_found;
  }

  // Agreement cross-check (the clean-prefix invariant): every valid page is
  // its tag's winner — there is exactly one valid copy per live mapping.
  for (BlockId b = 0; b < g.total_blocks; ++b) {
    const Block blk = flash.block(b);
    for (uint64_t off = 0; off < g.pages_per_block; ++off) {
      if (blk.StateOf(off) != PageState::kValid) {
        continue;
      }
      const Ppn ppn = g.PpnOf(b, off);
      const uint64_t tag = flash.OobTag(ppn);
      if (flash.OobKindOf(ppn) == OobKind::kData) {
        TPFTL_CHECK_MSG(r.data_ppn[tag] == ppn, "valid data page is not its LPN's newest copy");
      } else {
        TPFTL_CHECK_MSG(flash.OobKindOf(ppn) == OobKind::kTranslation && r.trans_ppn[tag] == ppn,
                        "valid page with unreadable OOB");
      }
    }
  }

  return r;
}

}  // namespace tpftl
