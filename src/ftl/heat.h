// Per-LPN update-frequency classification for hot/cold write streams.
//
// Separating frequently rewritten (hot) pages from rarely rewritten (cold)
// ones into different open blocks makes GC victims polarized: hot blocks
// self-invalidate almost completely before collection (cheap victims) while
// cold blocks stay fully valid and are never ground through the GC loop.
// The classifier is an exponential-decay write counter per LPN, packed into
// 16 bits (8-bit saturating count + 8-bit epoch stamp) and decayed lazily:
// instead of sweeping the whole array each decay window, the stored epoch is
// compared on access and the count is right-shifted once per elapsed window.
// Storage rides SegmentedArray, so on a TB-scale sparse device the heat map
// materializes with the written footprint, not the virtual capacity.
//
// Stream indices are temperatures: 0 is the hottest, streams()-1 the
// coldest. Thresholds double per tier, so with two streams an LPN written
// twice within the recent window is hot; with more streams the hottest tiers
// demand geometrically more rewrites.

#ifndef SRC_FTL_HEAT_H_
#define SRC_FTL_HEAT_H_

#include <cstdint>

#include "src/flash/types.h"
#include "src/util/segmented_array.h"

namespace tpftl {

class HeatClassifier {
 public:
  // `streams` >= 1; `sparse_segment_pages` mirrors the device geometry (0 =
  // dense backing). The decay window scales with the logical space so the
  // "recent" horizon is a constant fraction of the device, not a wall-clock.
  HeatClassifier(uint64_t logical_pages, uint32_t streams,
                 uint64_t sparse_segment_pages = 0);

  // Records a host write of `lpn` and returns its stream (post-update).
  uint32_t OnWrite(Lpn lpn);

  // Classifies without recording — GC migrations and leveling moves must not
  // count as host heat, or relocation itself would keep cold data "hot".
  uint32_t StreamOf(Lpn lpn) const;

  uint32_t streams() const { return streams_; }
  // RAM actually committed to the heat map: on a sparse device only the
  // materialized segments count, mirroring the storage promise above.
  uint64_t bytes_used() const {
    return heat_.dense() ? heat_.size() * sizeof(uint16_t)
                         : heat_.materialized_segments() * heat_.segment_size() *
                               sizeof(uint16_t);
  }

 private:
  uint16_t DecayedCount(Lpn lpn) const;
  uint32_t StreamFromCount(uint16_t count) const;

  uint32_t streams_;
  uint64_t window_;     // Host writes per decay epoch.
  uint64_t writes_ = 0;
  uint32_t epoch_ = 0;  // Wraps at 256; deltas >= 8 zero the count anyway.
  SegmentedArray<uint16_t> heat_;  // Low 8 bits count, high 8 bits epoch.
};

}  // namespace tpftl

#endif  // SRC_FTL_HEAT_H_
