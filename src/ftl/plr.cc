#include "src/ftl/plr.h"

#include <algorithm>
#include <limits>

#include "src/util/assert.h"

namespace tpftl {

std::vector<PlrSegment> TrainPlr(const std::vector<PlrPoint>& run, uint32_t error_bound,
                                 uint64_t min_run_points) {
  std::vector<PlrSegment> out;
  if (run.size() < std::max<uint64_t>(min_run_points, 2)) {
    return out;
  }
  // The integer prediction rounds to nearest, so fit against a cone half a
  // page tighter than the probe window: any point the cone admits still lands
  // within ±error_bound after rounding.
  const double eps = static_cast<double>(error_bound) - 0.5;
  TPFTL_CHECK_MSG(eps > 0.0, "error bound must be at least 1 page");
  size_t start = 0;
  while (start < run.size()) {
    double lo = -std::numeric_limits<double>::infinity();
    double hi = std::numeric_limits<double>::infinity();
    size_t end = start + 1;
    for (; end < run.size(); ++end) {
      TPFTL_DCHECK_MSG(run[end].lpn > run[end - 1].lpn && run[end].ppn > run[end - 1].ppn,
                       "PLR run must be strictly increasing in lpn and ppn");
      const auto dx = static_cast<double>(run[end].lpn - run[start].lpn);
      const auto dy = static_cast<double>(run[end].ppn - run[start].ppn);
      const double nlo = std::max(lo, (dy - eps) / dx);
      const double nhi = std::min(hi, (dy + eps) / dx);
      if (nlo > nhi) {
        break;  // Cone emptied: the segment closes before this point.
      }
      lo = nlo;
      hi = nhi;
    }
    if (end - start >= min_run_points) {
      PlrSegment seg;
      seg.first_lpn = run[start].lpn;
      seg.last_lpn = run[end - 1].lpn;
      seg.first_ppn = run[start].ppn;
      seg.slope = (lo + hi) / 2.0;
      out.push_back(seg);
    }
    start = end;
  }
  return out;
}

void LearnedIndex::Insert(const PlrSegment& seg) {
  if (max_segments_ == 0) {
    return;
  }
  // Erase older segments whose span intersects [first_lpn, last_lpn].
  // Spans are disjoint and keyed by first_lpn, so every overlapping segment
  // has first_lpn <= seg.last_lpn; walk left from the first key beyond the
  // new span until one ends before it starts.
  auto it = segments_.upper_bound(seg.last_lpn);
  while (it != segments_.begin()) {
    --it;
    if (it->second.seg.last_lpn < seg.first_lpn) {
      break;
    }
    lru_.erase(it->second.pos);
    it = segments_.erase(it);
  }
  lru_.push_front(seg.first_lpn);
  segments_[seg.first_lpn] = Slot{seg, lru_.begin()};
  while (segments_.size() > max_segments_) {
    segments_.erase(lru_.back());
    lru_.pop_back();
  }
}

void LearnedIndex::Touch(Lpn lpn) {
  auto it = segments_.upper_bound(lpn);
  if (it == segments_.begin()) {
    return;
  }
  --it;
  if (it->second.seg.Covers(lpn)) {
    lru_.splice(lru_.begin(), lru_, it->second.pos);
  }
}

void LearnedIndex::EraseCovering(Lpn lpn) {
  auto it = segments_.upper_bound(lpn);
  if (it == segments_.begin()) {
    return;
  }
  --it;
  if (it->second.seg.Covers(lpn)) {
    lru_.erase(it->second.pos);
    segments_.erase(it);
  }
}

void LearnedIndex::ErasePpnRange(Ppn begin, Ppn end) {
  for (auto it = segments_.begin(); it != segments_.end();) {
    const PlrSegment& s = it->second.seg;
    // Runs ascend in both axes, so the predicted span is [first_ppn,
    // Predict(last_lpn)] inclusive.
    if (s.first_ppn < end && s.Predict(s.last_lpn) >= begin) {
      lru_.erase(it->second.pos);
      it = segments_.erase(it);
    } else {
      ++it;
    }
  }
}

const PlrSegment* LearnedIndex::Lookup(Lpn lpn) const {
  auto it = segments_.upper_bound(lpn);
  if (it == segments_.begin()) {
    return nullptr;
  }
  --it;
  return it->second.seg.Covers(lpn) ? &it->second.seg : nullptr;
}

}  // namespace tpftl
