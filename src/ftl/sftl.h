// S-FTL — spatial-locality-aware address translation (Jiang et al., MSST
// 2011; §2.2 of the paper).
//
// The caching object is an entire translation page, stored compressed
// according to the sequentiality of its PPNs: a page whose PPNs form few
// sequential runs costs only a header plus one descriptor per run, so
// sequential workloads cache the whole table almost for free, while random
// updates inflate a page toward its uncompressed size. Cached pages form a
// page-level LRU.
//
// A small reserved dirty buffer postpones the replacement of sparsely
// dispersed dirty entries: when an evicted page carries only a few dirty
// slots they are parked in the buffer (no flash write); when the buffer
// fills, the largest per-page group is flushed with one read-modify-write.
// A densely dirty page is written back whole on eviction — a single page
// program with no read, since the full content is cached (cf. the Eq. 1
// footnote in §3.1).

#ifndef SRC_FTL_SFTL_H_
#define SRC_FTL_SFTL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/ftl/demand_ftl.h"

namespace tpftl {

struct SftlOptions {
  // Fraction of the entry budget reserved for the dirty buffer.
  double dirty_buffer_fraction = 0.10;
  uint64_t page_header_bytes = 8;
  uint64_t run_bytes = 8;          // Descriptor per sequential PPN run.
  uint64_t buffer_entry_bytes = 8;
  // Evicted pages with at most this many dirty slots park them in the
  // buffer instead of writing the page back.
  uint64_t sparse_dirty_threshold = 8;
};

class Sftl : public DemandFtl {
 public:
  Sftl(const FtlEnv& env, const SftlOptions& options = {});

  std::string name() const override { return "S-FTL"; }
  Ppn Probe(Lpn lpn) const override;
  uint64_t cache_bytes_used() const override;
  uint64_t cache_entry_count() const override;

  uint64_t cached_pages() const { return pages_.size(); }
  uint64_t dirty_buffer_entries() const { return buffer_.size(); }

  // Test support: recomputes every cached page's run count from scratch and
  // compares against the incrementally maintained value and the global byte
  // accounting. Returns true when everything agrees.
  bool CheckRunInvariant() const;

 protected:
  MicroSec Translate(Lpn lpn, bool is_write, Ppn* current) override;
  MicroSec CommitMapping(Lpn lpn, Ppn new_ppn) override;
  bool GcUpdateCached(Lpn lpn, Ppn new_ppn, MicroSec* extra_time) override;
  void CollectCheckpointDirty(std::vector<DirtyMapping>* out) override;

 private:
  struct Page {
    Vtpn vtpn = kInvalidVtpn;
    std::vector<Ppn> content;
    std::unordered_map<uint64_t, Ppn> dirty_slots;
    uint64_t runs = 1;
    uint64_t bytes = 0;  // Capped compressed size, kept in sync with runs.
  };
  using PageList = std::list<Page>;

  uint64_t CappedBytes(uint64_t runs) const;
  static bool Continuous(Ppn a, Ppn b);
  uint64_t CountRuns(const std::vector<Ppn>& content) const;
  // Applies content[slot] = ppn, updating runs/bytes/global byte count.
  void UpdateSlot(Page& page, uint64_t slot, Ppn ppn, bool mark_dirty);

  PageList::iterator FindPage(Vtpn vtpn);
  MicroSec LoadPage(Vtpn vtpn);  // Capacity management + buffer absorption.
  MicroSec EvictLruPage();
  // Pages inflate in place as updates fragment their PPN runs; evict LRU
  // pages until the compressed occupancy fits the budget again.
  MicroSec TrimToBudget();
  MicroSec FlushLargestBufferGroup();
  MicroSec EnsureBufferRoom(uint64_t incoming);

  SftlOptions options_;
  uint64_t page_budget_bytes_ = 0;
  uint64_t buffer_capacity_entries_ = 0;
  uint64_t page_bytes_used_ = 0;

  PageList pages_;  // MRU at front.
  std::unordered_map<Vtpn, PageList::iterator> page_index_;
  std::unordered_map<Lpn, Ppn> buffer_;
};

}  // namespace tpftl

#endif  // SRC_FTL_SFTL_H_
