// LearnedFTL — a learned page-level mapping FTL (arXiv 2303.13226).
//
// The mapping hierarchy is DFTL's GTD + translation pages + entry cache, with
// a piecewise-linear learned index (src/ftl/plr.h) bolted onto the *read*
// miss path. Blocks written from near-sorted streams yield LPN→PPN runs that
// a 32-byte linear segment can index: on a read whose LPN misses the CMT but
// falls inside a trained segment, the FTL probes the predicted physical page
// (± the error bound) and verifies the hit against the page's OOB LPN tag —
// the unique-valid-copy invariant makes a matching valid data page *the*
// current mapping. A verified hit costs zero extra flash reads (the verifying
// probe is the data read itself), eliminating DFTL's translation-page "double
// read". Failed probes are billed as real flash reads; if no probe verifies,
// the lookup falls back to the translation-page path, so a stale or wrong
// segment can cost time but never correctness.
//
// Writes always take the DFTL path (a model probe would cost the same flash
// read as the translation read — there is nothing to save), so CommitMapping
// keeps DFTL's residency requirement and checkpoint/recovery semantics are
// identical to DFTL's. The model is RAM-only, rebuilt from scratch by normal
// operation after a reboot, and never consulted by Probe(), which keeps the
// SimCheck strict oracle and the checkpoint bit-equivalence suite meaningful.
//
// Training: mapping commits accumulate per destination block; when a block's
// sample set fills (or too many blocks are open) it is finalized — split into
// strictly-increasing LPN runs, fitted with greedy PLR, inserted into the
// budgeted segment index. GC keeps runs model-friendly: GcMigrateSorted()
// makes the collector migrate a victim's survivors in LPN order, and each
// migration retrains through the same accumulator. Two more rules keep the
// tiny segment budget productive: every translation-page read *harvests* the
// span it pulled into RAM (fitting segments over its sorted persisted runs,
// so one miss covers the rest of a sequential chunk for free), and a segment
// whose prediction fails OOB verification is erased on the spot — it is
// provably stale, and the fallback's harvest re-learns the span's current
// shape.

#ifndef SRC_FTL_LEARNED_FTL_H_
#define SRC_FTL_LEARNED_FTL_H_

#include <cstdint>
#include <deque>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/ftl/demand_ftl.h"
#include "src/ftl/plr.h"

namespace tpftl {

struct LearnedFtlOptions {
  // Max |predicted - actual| page distance probed; also the PLR fit bound.
  uint32_t error_bound = 2;
  // Runs shorter than this train no segment.
  uint64_t min_run_points = 4;
  // Fraction of the entry-cache budget carved out for segments; the rest is
  // the CMT.
  double model_budget_fraction = 0.25;
  // Open per-block sample sets kept before the oldest is force-finalized
  // (multi-die striping keeps several blocks open at once).
  uint64_t max_open_blocks = 4;
  uint64_t entry_bytes = 8;  // CMT entry: 4 B LPN tag + 4 B PPN.
  // Translation-page entries fitted ahead of a miss when its span is
  // harvested (scans ascend; a window bounds the per-miss CPU work and keeps
  // the harvest from flooding the segment FIFO).
  uint64_t harvest_window = 128;
};

class LearnedFtl : public DemandFtl {
 public:
  explicit LearnedFtl(const FtlEnv& env, const LearnedFtlOptions& options = {});

  std::string name() const override { return "LearnedFTL"; }
  Ppn Probe(Lpn lpn) const override;
  uint64_t cache_bytes_used() const override;
  uint64_t cache_entry_count() const override;

  uint64_t model_segment_count() const { return model_.segment_count(); }
  const LearnedIndex& model() const { return model_; }

 protected:
  MicroSec Translate(Lpn lpn, bool is_write, Ppn* current) override;
  MicroSec CommitMapping(Lpn lpn, Ppn new_ppn) override;
  bool GcUpdateCached(Lpn lpn, Ppn new_ppn, MicroSec* extra_time) override;
  void CollectCheckpointDirty(std::vector<DirtyMapping>* out) override;
  bool GcMigrateSorted() const override { return true; }
  // GC erased `victim`: every model segment predicting into it is stale for
  // its whole span (the valid pages migrated out), as are pending training
  // samples destined for it. Drop both instead of paying failed probe reads
  // until piecemeal eviction catches up.
  void OnGcEraseDataBlock(BlockId victim) override;

 private:
  struct Entry {
    Lpn lpn = kInvalidLpn;
    Ppn ppn = kInvalidPpn;
    bool dirty = false;
  };
  using EntryList = std::list<Entry>;

  MicroSec EvictOne();
  // Probes the predicted page ± error_bound for a valid data page tagged
  // `lpn`. On success sets *found and returns only the failed probes' cost:
  // the successful probe is the data read the caller itself bills.
  MicroSec ProbePredicted(const PlrSegment& seg, Lpn lpn, Ppn* found);
  // Fits segments over the sorted runs of the translation-page span that a
  // miss just read into RAM — free coverage for the rest of a sequential
  // chunk, which would otherwise re-read the same translation page per entry.
  void HarvestPersistedPage(Lpn lpn);
  // Feeds one committed mapping into the per-block training accumulator.
  void Feed(Lpn lpn, Ppn new_ppn);
  // Fits and installs segments from block `b`'s accumulated samples.
  void TrainBlock(BlockId b);

  LearnedFtlOptions options_;
  uint64_t max_entries_ = 0;
  LearnedIndex model_;
  EntryList lru_;  // CMT, MRU at front.
  std::unordered_map<Lpn, EntryList::iterator> index_;

  // Samples by destination block, in program (= PPN) order, finalized when a
  // block fills or the open-set cap forces out the oldest.
  std::unordered_map<BlockId, std::vector<PlrPoint>> accum_;
  std::deque<BlockId> accum_order_;
};

}  // namespace tpftl

#endif  // SRC_FTL_LEARNED_FTL_H_
