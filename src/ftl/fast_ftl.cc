#include "src/ftl/fast_ftl.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "src/obs/phase.h"
#include "src/util/assert.h"

namespace tpftl {

FastFtl::FastFtl(const FtlEnv& env, const FastFtlOptions& options)
    : flash_(env.flash),
      pages_per_block_(env.flash->geometry().pages_per_block),
      logical_pages_(env.logical_pages),
      map_((env.logical_pages + pages_per_block_ - 1) / pages_per_block_, kInvalidBlock),
      active_log_(env.data_streams, kInvalidBlock),
      stream_writes_(env.data_streams, 0),
      dynamic_leveling_(env.dynamic_leveling) {
  TPFTL_CHECK(env.logical_pages > 0);
  if (env.data_streams > 1) {
    heat_ = std::make_unique<HeatClassifier>(env.logical_pages, env.data_streams,
                                             flash_->geometry().sparse_segment_pages);
  }
  const auto by_fraction = static_cast<uint64_t>(
      static_cast<double>(map_.size()) * options.log_block_fraction);
  log_block_limit_ = std::max(options.min_log_blocks, by_fraction);
  CheckpointConfig ckpt_cfg = env.checkpoint;
  ckpt_cfg.cumulative_data = true;  // RAM-only tables: checkpoint deltas only.
  ckpt_.Configure(flash_, ckpt_cfg);
  if (env.recover_from_flash) {
    RecoverFromFlash(env.logical_pages);
    return;
  }
  for (BlockId b = 0; b < flash_->geometry().total_blocks; ++b) {
    if (!flash_->IsBad(b)) {
      free_blocks_.push_back(b);
    }
  }
  TPFTL_CHECK_MSG(free_blocks_.size() > map_.size() + log_block_limit_ + 1,
                  "FAST needs data blocks + log blocks + one merge block");
  if (ckpt_.enabled()) {
    // Boot checkpoint on an empty device (see BlockFtl): marker only.
    CommitCheckpoint();
    flash_->ResetStats();
  }
}

void FastFtl::RecoverFromFlash(uint64_t logical_pages) {
  const FlashGeometry& g = flash_->geometry();
  std::optional<OobScanResult> replayed;
  if (ckpt_.enabled() && !ckpt_.config().force_scan_recovery) {
    replayed = TryCheckpointRecovery(*flash_, logical_pages, /*translation_pages=*/0);
  }
  OobScanResult scan = replayed.has_value()
                           ? *std::move(replayed)
                           : ScanForRecovery(*flash_, logical_pages, /*translation_pages=*/0);
  // Classify each block by the winners it holds. A block whose winners all
  // sit at their home offsets within one logical block can serve as that
  // LBN's data block; everything else holding winners must be a log block.
  struct BlockInfo {
    std::vector<Lpn> winners;
    bool data_shaped = true;
    uint64_t lbn = ~0ULL;
  };
  std::vector<BlockInfo> info(g.total_blocks);
  for (Lpn lpn = 0; lpn < logical_pages; ++lpn) {
    const Ppn ppn = scan.data_ppn.Get(lpn);
    if (ppn == kInvalidPpn) {
      continue;
    }
    BlockInfo& bi = info[g.BlockOf(ppn)];
    bi.winners.push_back(lpn);
    if (g.OffsetOf(ppn) != OffsetOf(lpn)) {
      bi.data_shaped = false;
    }
    if (bi.lbn == ~0ULL) {
      bi.lbn = LbnOf(lpn);
    } else if (bi.lbn != LbnOf(lpn)) {
      bi.data_shaped = false;
    }
  }
  // Best data block per LBN: most winners, newest page as the tiebreak.
  for (BlockId b = 0; b < g.total_blocks; ++b) {
    const BlockInfo& bi = info[b];
    if (bi.winners.empty() || !bi.data_shaped) {
      continue;
    }
    const BlockId cur = map_[bi.lbn];
    if (cur == kInvalidBlock || bi.winners.size() > info[cur].winners.size() ||
        (bi.winners.size() == info[cur].winners.size() &&
         scan.blocks[b].max_seq > scan.blocks[cur].max_seq)) {
      map_[bi.lbn] = b;
    }
  }
  // The rest become log blocks, oldest first (back of the deque is active).
  std::vector<BlockId> logs;
  for (BlockId b = 0; b < g.total_blocks; ++b) {
    const BlockInfo& bi = info[b];
    if (bi.winners.empty() || (bi.data_shaped && map_[bi.lbn] == b)) {
      continue;
    }
    logs.push_back(b);
  }
  std::sort(logs.begin(), logs.end(), [&](BlockId a, BlockId b) {
    return scan.blocks[a].max_seq < scan.blocks[b].max_seq;
  });
  for (const BlockId b : logs) {
    log_blocks_.push_back(b);
    for (const Lpn lpn : info[b].winners) {
      log_map_[lpn] = scan.data_ppn.Get(lpn);
    }
  }
  // Free pool: blocks with no live data, erased back to free (bad or
  // worn-out blocks are retired instead).
  for (BlockId b = 0; b < g.total_blocks; ++b) {
    if (!info[b].winners.empty() || flash_->IsBad(b)) {
      continue;
    }
    if (scan.blocks[b].programmed > 0) {
      TPFTL_CHECK(flash_->block(b).valid_pages() == 0);
      recovery_report_.rebuild_time_us += flash_->EraseBlock(b);
      if (flash_->IsWornOut(b)) {
        continue;
      }
    }
    free_blocks_.push_back(b);
  }
  // A cut can strand more log blocks than the limit allows; merge down.
  while (log_blocks_.size() > log_block_limit_) {
    recovery_report_.rebuild_time_us += ReclaimOldestLog();
  }
  if (!log_blocks_.empty()) {
    // The newest surviving log block resumes taking (hottest-stream) appends.
    active_log_[0] = log_blocks_.back();
  }
  scan.report.rebuild_time_us = recovery_report_.rebuild_time_us;
  // No flash-resident table: the reconstructed map is all unpersisted.
  scan.report.unpersisted_window = scan.report.data_mappings;
  scan.report.blocks_free = free_blocks_.size();
  for (BlockId b = 0; b < g.total_blocks; ++b) {
    scan.report.bad_blocks += flash_->IsBad(b) ? 1 : 0;
  }
  retired_ = scan.report.bad_blocks;
  if (ckpt_.enabled()) {
    // Epilogue checkpoint: persists the rebuilt tables and trims the journal
    // (including any truncated torn record). The full live mapping folds
    // into the cumulative directory, superseding any marks the log-overflow
    // merges above produced.
    std::vector<DirtyMapping> dirty;
    CollectLiveMappings(&dirty);
    scan.report.rebuild_time_us += ckpt_.Commit({}, dirty);
    ckpt_dirty_.clear();
  }
  recovery_report_ = scan.report;
  recovered_ = true;
  stats_.Reset();
  flash_->ResetStats();
}

MicroSec FastFtl::CommitCheckpoint() {
  // Deltas since the previous checkpoint: each dirty LPN's current mapping,
  // or a clear triple (kInvalidPpn) when it no longer has one.
  std::vector<DirtyMapping> dirty;
  dirty.reserve(ckpt_dirty_.size());
  for (const Lpn lpn : ckpt_dirty_) {
    dirty.push_back({lpn, Probe(lpn)});
  }
  const MicroSec t = ckpt_.Commit({}, dirty);
  ckpt_dirty_.clear();
  return t;
}

void FastFtl::CollectLiveMappings(std::vector<DirtyMapping>* out) const {
  const FlashGeometry& g = flash_->geometry();
  for (const auto& [lpn, ppn] : log_map_) {
    out->push_back({lpn, ppn});
  }
  for (uint64_t lbn = 0; lbn < map_.size(); ++lbn) {
    if (map_[lbn] == kInvalidBlock) {
      continue;
    }
    const Lpn first = lbn * pages_per_block_;
    const Lpn last = std::min(first + pages_per_block_, logical_pages_);
    for (Lpn lpn = first; lpn < last; ++lpn) {
      if (log_map_.contains(lpn)) {
        continue;  // A fresher log copy supersedes the in-place slot.
      }
      const Ppn ppn = g.PpnOf(map_[lbn], OffsetOf(lpn));
      if (flash_->StateOf(ppn) == PageState::kValid) {
        out->push_back({lpn, ppn});
      }
    }
  }
}

void FastFtl::ResetStats() {
  stats_.Reset();
  flash_->ResetStats();
}

BlockId FastFtl::AllocateBlock() {
  while (!free_blocks_.empty() && flash_->IsBad(free_blocks_.front())) {
    free_blocks_.pop_front();  // Retired since it was freed (injected fault).
    ++retired_;
  }
  TPFTL_CHECK_MSG(!free_blocks_.empty(), "FAST out of free blocks");
  uint64_t index = 0;
  if (dynamic_leveling_) {
    // Dynamic wear leveling: take the least-worn usable free block instead
    // of rotating FIFO, so the log-block churn stops re-landing on the same
    // tired spares. FIFO stays the default for bit-identity.
    uint64_t best = ~0ULL;
    for (uint64_t i = 0; i < free_blocks_.size(); ++i) {
      if (flash_->IsBad(free_blocks_[i])) {
        continue;
      }
      const uint64_t erase = flash_->block(free_blocks_[i]).erase_count();
      if (erase < best) {
        best = erase;
        index = i;
      }
    }
  }
  const BlockId block = free_blocks_[index];
  free_blocks_.erase(free_blocks_.begin() + index);
  return block;
}

uint64_t FastFtl::UsableFreeBlocks(uint64_t cap) const {
  uint64_t n = 0;
  for (const BlockId b : free_blocks_) {
    if (!flash_->IsBad(b) && ++n >= cap) {
      break;
    }
  }
  return n;
}

bool FastFtl::worn_out() const {
  // A full-health device (no retirements) can never exhaust its spare pool.
  // Once blocks have been lost, one append can reclaim the oldest log block
  // via full merges of up to pages_per_block distinct logical blocks, each
  // allocating a fresh block whose worn-out home may retire on erase — so
  // completion is only guaranteed with that many spares plus the fresh log
  // block itself.
  const uint64_t margin = pages_per_block_ + 2;
  return retired_ > 0 && UsableFreeBlocks(margin) < margin;
}

MicroSec FastFtl::ReadPage(Lpn lpn) {
  TPFTL_CHECK(LbnOf(lpn) < map_.size());
  ++stats_.host_page_reads;
  ++stats_.lookups;
  ++stats_.hits;  // Block table and log map are RAM-resident.
  MicroSec t = MaybeCheckpoint();
  const Ppn ppn = Probe(lpn);
  return ppn == kInvalidPpn ? t : t + flash_->ReadPage(ppn);
}

MicroSec FastFtl::WritePage(Lpn lpn) {
  TPFTL_CHECK(LbnOf(lpn) < map_.size());
  ++stats_.host_page_writes;
  ++stats_.lookups;
  ++stats_.hits;
  const uint32_t stream = heat_ ? heat_->OnWrite(lpn) : 0;
  ++stream_writes_[stream];
  MicroSec t = MaybeCheckpoint();
  const uint64_t lbn = LbnOf(lpn);
  const uint64_t offset = OffsetOf(lpn);
  // In-place path: slot still free and no fresher log copy exists.
  if (!log_map_.contains(lpn)) {
    if (map_[lbn] == kInvalidBlock) {
      map_[lbn] = AllocateBlock();
    }
    const Ppn target = flash_->geometry().PpnOf(map_[lbn], offset);
    if (flash_->StateOf(target) == PageState::kFree) {
      MarkCheckpointDirty(lpn);
      return t + flash_->ProgramPageAt(target, lpn);
    }
  }
  return t + AppendToLog(lpn, stream);
}

MicroSec FastFtl::TrimPage(Lpn lpn) {
  TPFTL_CHECK(LbnOf(lpn) < map_.size());
  MicroSec t = MaybeCheckpoint();
  if (const auto it = log_map_.find(lpn); it != log_map_.end()) {
    flash_->InvalidatePage(it->second);
    log_map_.erase(it);
    MarkCheckpointDirty(lpn);
    return t;
  }
  const Ppn ppn = Probe(lpn);
  if (ppn != kInvalidPpn) {
    flash_->InvalidatePage(ppn);
    MarkCheckpointDirty(lpn);
  }
  return t;
}

MicroSec FastFtl::AppendToLog(Lpn lpn, uint32_t stream) {
  MicroSec t = 0.0;
  Ppn new_ppn = kInvalidPpn;
  do {
    // Appendable means the *write cursor* has room, not merely that free
    // pages exist: recovery can demote an in-place-written data block (holes
    // below a high cursor) to a log block, and sequential programming cannot
    // reach those holes.
    if (active_log_[stream] == kInvalidBlock ||
        flash_->block(active_log_[stream]).write_cursor() >=
            flash_->geometry().pages_per_block) {
      if (log_blocks_.size() >= log_block_limit_) {
        t += ReclaimOldestLog();
      }
      // Reclaim may have compacted survivors into a fresh block for this
      // stream; only open another one if the cursor is still out of room.
      if (active_log_[stream] == kInvalidBlock ||
          flash_->block(active_log_[stream]).write_cursor() >=
              flash_->geometry().pages_per_block) {
        const BlockId fresh = AllocateBlock();
        log_blocks_.push_back(fresh);
        active_log_[stream] = fresh;
      }
    }
    t += flash_->ProgramPage(active_log_[stream], lpn, &new_ppn);
    // An injected program failure consumes the page as unreadable; retry on
    // the next free page (possibly of a freshly allocated log block).
  } while (new_ppn == kInvalidPpn);
  // Supersede the previous copy (log first, then the in-place one).
  if (const auto it = log_map_.find(lpn); it != log_map_.end()) {
    flash_->InvalidatePage(it->second);
    it->second = new_ppn;
  } else {
    const uint64_t lbn = LbnOf(lpn);
    if (map_[lbn] != kInvalidBlock) {
      const Ppn data_ppn = flash_->geometry().PpnOf(map_[lbn], OffsetOf(lpn));
      if (flash_->StateOf(data_ppn) == PageState::kValid) {
        flash_->InvalidatePage(data_ppn);
      }
    }
    log_map_[lpn] = new_ppn;
  }
  MarkCheckpointDirty(lpn);
  return t;
}

bool FastFtl::IsSwitchMergeable(BlockId log_block) const {
  // Switch merge: the log block is exactly one logical block, fully written,
  // with every page valid and at its home offset.
  const Block& block = flash_->block(log_block);
  if (block.valid_pages() != pages_per_block_) {
    return false;
  }
  const Ppn first = flash_->geometry().PpnOf(log_block, 0);
  const auto first_lpn = static_cast<Lpn>(flash_->OobTag(first));
  if (OffsetOf(first_lpn) != 0) {
    return false;
  }
  for (uint64_t off = 1; off < pages_per_block_; ++off) {
    const Ppn ppn = flash_->geometry().PpnOf(log_block, off);
    if (static_cast<Lpn>(flash_->OobTag(ppn)) != first_lpn + off) {
      return false;
    }
  }
  return true;
}

BlockId FastFtl::PickReclaimLog() const {
  // Single stream: strict FIFO, the classic FAST order (bit-identical).
  if (active_log_.size() == 1) {
    return log_blocks_.front();
  }
  // With hot/cold streams the oldest log block is often the slowly-filling
  // cold one, whose scattered live LBNs each cost a full merge. Pick the
  // cheapest reclaim instead: fewest distinct live logical blocks, skipping
  // the streams' open append targets while any sealed block exists. Ties go
  // to the oldest so the log still drains.
  BlockId best = kInvalidBlock;
  uint64_t best_cost = ~0ULL;
  for (int pass = 0; pass < 2 && best == kInvalidBlock; ++pass) {
    const bool allow_active = pass == 1;
    for (const BlockId candidate : log_blocks_) {
      const bool active =
          std::find(active_log_.begin(), active_log_.end(), candidate) !=
          active_log_.end();
      if (active && !allow_active) {
        continue;
      }
      std::vector<uint64_t> lbns;
      for (uint64_t off = 0; off < pages_per_block_; ++off) {
        const Ppn ppn = flash_->geometry().PpnOf(candidate, off);
        if (flash_->StateOf(ppn) != PageState::kValid) {
          continue;
        }
        const uint64_t lbn = LbnOf(static_cast<Lpn>(flash_->OobTag(ppn)));
        if (std::find(lbns.begin(), lbns.end(), lbn) == lbns.end()) {
          lbns.push_back(lbn);
        }
      }
      const uint64_t cost = IsSwitchMergeable(candidate) ? 0 : lbns.size();
      if (cost < best_cost) {
        best_cost = cost;
        best = candidate;
      }
    }
  }
  return best;
}

MicroSec FastFtl::ReclaimOldestLog() {
  TPFTL_CHECK(!log_blocks_.empty());
  const BlockId victim = PickReclaimLog();
  // The victim may still be some stream's append target (e.g. the only log
  // block); that stream reopens on its next append.
  for (BlockId& active : active_log_) {
    if (active == victim) {
      active = kInvalidBlock;
    }
  }
  MicroSec t = 0.0;
  obs::ScopedPhase gc_phase(obs::Phase::kGc);

  if (IsSwitchMergeable(victim)) {
    // The log block becomes the data block for its logical block. No
    // checkpoint-dirty marks: every page keeps its PPN, so no LPN's mapping
    // actually changes.
    const auto first_lpn = static_cast<Lpn>(flash_->OobTag(flash_->geometry().PpnOf(victim, 0)));
    const uint64_t lbn = LbnOf(first_lpn);
    const BlockId old_data = map_[lbn];
    for (uint64_t off = 0; off < pages_per_block_; ++off) {
      log_map_.erase(first_lpn + off);
    }
    map_[lbn] = victim;
    log_blocks_.erase(std::find(log_blocks_.begin(), log_blocks_.end(), victim));
    if (old_data != kInvalidBlock) {
      // All its pages were superseded by the (complete) log block.
      TPFTL_CHECK(flash_->block(old_data).valid_pages() == 0);
      t += flash_->EraseBlock(old_data);
      if (!flash_->IsBad(old_data) && !flash_->IsWornOut(old_data)) {
        free_blocks_.push_back(old_data);
      } else {
        ++retired_;
      }
    }
    ++stats_.switch_merges;
    return t;
  }

  // Log compaction (hot/cold builds only): a mostly-dead log block — the
  // normal fate of a hot log once rewrites supersede its entries — is
  // cheaper to clean by re-appending its few survivors than by full-merging
  // every logical block they touch at pages_per_block copies each.
  if (active_log_.size() > 1) {
    std::vector<std::pair<Lpn, Ppn>> live;
    for (uint64_t off = 0; off < pages_per_block_; ++off) {
      const Ppn ppn = flash_->geometry().PpnOf(victim, off);
      if (flash_->StateOf(ppn) == PageState::kValid) {
        live.push_back({static_cast<Lpn>(flash_->OobTag(ppn)), ppn});
      }
    }
    if (live.size() <= pages_per_block_ / 4) {
      // Remove the victim first so compaction appends can open a fresh log
      // block without re-entering reclaim.
      log_blocks_.erase(std::find(log_blocks_.begin(), log_blocks_.end(), victim));
      for (const auto& [lpn, source] : live) {
        t += flash_->ReadPage(source);
        t += CompactAppend(lpn, source);
      }
      TPFTL_CHECK(flash_->block(victim).valid_pages() == 0);
      t += flash_->EraseBlock(victim);
      if (!flash_->IsBad(victim) && !flash_->IsWornOut(victim)) {
        free_blocks_.push_back(victim);
      } else {
        ++retired_;
      }
      ++stats_.partial_merges;
      return t;
    }
  }

  // Full merge: rebuild every logical block that has a valid page here.
  std::vector<uint64_t> lbns;
  for (uint64_t off = 0; off < pages_per_block_; ++off) {
    const Ppn ppn = flash_->geometry().PpnOf(victim, off);
    if (flash_->StateOf(ppn) != PageState::kValid) {
      continue;
    }
    const uint64_t lbn = LbnOf(static_cast<Lpn>(flash_->OobTag(ppn)));
    if (std::find(lbns.begin(), lbns.end(), lbn) == lbns.end()) {
      lbns.push_back(lbn);
    }
  }
  for (const uint64_t lbn : lbns) {
    t += FullMergeLbn(lbn);
  }
  TPFTL_CHECK(flash_->block(victim).valid_pages() == 0);
  t += flash_->EraseBlock(victim);
  if (!flash_->IsBad(victim) && !flash_->IsWornOut(victim)) {
    free_blocks_.push_back(victim);
  } else {
    ++retired_;
  }
  log_blocks_.erase(std::find(log_blocks_.begin(), log_blocks_.end(), victim));
  return t;
}

MicroSec FastFtl::CompactAppend(Lpn lpn, Ppn source) {
  // A valid page in a log block is that LPN's freshest copy, so this append
  // moves the log_map_ entry. StreamOf (not OnWrite): relocation is not host
  // heat.
  const uint32_t stream = heat_->StreamOf(lpn);
  MicroSec t = 0.0;
  Ppn new_ppn = kInvalidPpn;
  do {
    if (active_log_[stream] == kInvalidBlock ||
        flash_->block(active_log_[stream]).write_cursor() >=
            flash_->geometry().pages_per_block) {
      const BlockId fresh = AllocateBlock();
      log_blocks_.push_back(fresh);
      active_log_[stream] = fresh;
    }
    t += flash_->ProgramPage(active_log_[stream], lpn, &new_ppn);
  } while (new_ppn == kInvalidPpn);
  flash_->InvalidatePage(source);
  log_map_[lpn] = new_ppn;
  MarkCheckpointDirty(lpn);
  ++stats_.gc_data_migrations;
  ++stats_.gc_hits;  // Mapping state is RAM-resident.
  return t;
}

MicroSec FastFtl::FullMergeLbn(uint64_t lbn) {
  const FlashGeometry& g = flash_->geometry();
  const BlockId new_block = AllocateBlock();
  const BlockId old_data = map_[lbn];
  MicroSec t = 0.0;
  ++stats_.gc_data_blocks;
  ++stats_.full_merges;
  for (uint64_t off = 0; off < pages_per_block_; ++off) {
    const Lpn lpn = lbn * pages_per_block_ + off;
    Ppn source = kInvalidPpn;
    if (const auto it = log_map_.find(lpn); it != log_map_.end()) {
      source = it->second;
      log_map_.erase(it);
    } else if (old_data != kInvalidBlock) {
      const Ppn data_ppn = g.PpnOf(old_data, off);
      if (flash_->StateOf(data_ppn) == PageState::kValid) {
        source = data_ppn;
      }
    }
    if (source == kInvalidPpn) {
      continue;  // Never-written page.
    }
    t += flash_->ReadPage(source);
    t += flash_->ProgramPageAt(g.PpnOf(new_block, off), lpn);
    flash_->InvalidatePage(source);
    MarkCheckpointDirty(lpn);
    ++stats_.gc_data_migrations;
    ++stats_.gc_hits;  // Mapping state is RAM-resident.
  }
  if (old_data != kInvalidBlock) {
    TPFTL_CHECK(flash_->block(old_data).valid_pages() == 0);
    t += flash_->EraseBlock(old_data);
    if (!flash_->IsBad(old_data) && !flash_->IsWornOut(old_data)) {
      free_blocks_.push_back(old_data);
    } else {
      ++retired_;
    }
  }
  map_[lbn] = new_block;
  return t;
}

Ppn FastFtl::Probe(Lpn lpn) const {
  if (const auto it = log_map_.find(lpn); it != log_map_.end()) {
    return it->second;
  }
  const BlockId pbn = map_[LbnOf(lpn)];
  if (pbn == kInvalidBlock) {
    return kInvalidPpn;
  }
  const Ppn ppn = flash_->geometry().PpnOf(pbn, OffsetOf(lpn));
  return flash_->StateOf(ppn) == PageState::kValid ? ppn : kInvalidPpn;
}

}  // namespace tpftl
