#include "src/ftl/fast_ftl.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "src/obs/phase.h"
#include "src/util/assert.h"

namespace tpftl {

FastFtl::FastFtl(const FtlEnv& env, const FastFtlOptions& options)
    : flash_(env.flash),
      pages_per_block_(env.flash->geometry().pages_per_block),
      logical_pages_(env.logical_pages),
      map_((env.logical_pages + pages_per_block_ - 1) / pages_per_block_, kInvalidBlock) {
  TPFTL_CHECK(env.logical_pages > 0);
  const auto by_fraction = static_cast<uint64_t>(
      static_cast<double>(map_.size()) * options.log_block_fraction);
  log_block_limit_ = std::max(options.min_log_blocks, by_fraction);
  CheckpointConfig ckpt_cfg = env.checkpoint;
  ckpt_cfg.cumulative_data = true;  // RAM-only tables: checkpoint deltas only.
  ckpt_.Configure(flash_, ckpt_cfg);
  if (env.recover_from_flash) {
    RecoverFromFlash(env.logical_pages);
    return;
  }
  for (BlockId b = 0; b < flash_->geometry().total_blocks; ++b) {
    if (!flash_->IsBad(b)) {
      free_blocks_.push_back(b);
    }
  }
  TPFTL_CHECK_MSG(free_blocks_.size() > map_.size() + log_block_limit_ + 1,
                  "FAST needs data blocks + log blocks + one merge block");
  if (ckpt_.enabled()) {
    // Boot checkpoint on an empty device (see BlockFtl): marker only.
    CommitCheckpoint();
    flash_->ResetStats();
  }
}

void FastFtl::RecoverFromFlash(uint64_t logical_pages) {
  const FlashGeometry& g = flash_->geometry();
  std::optional<OobScanResult> replayed;
  if (ckpt_.enabled() && !ckpt_.config().force_scan_recovery) {
    replayed = TryCheckpointRecovery(*flash_, logical_pages, /*translation_pages=*/0);
  }
  OobScanResult scan = replayed.has_value()
                           ? *std::move(replayed)
                           : ScanForRecovery(*flash_, logical_pages, /*translation_pages=*/0);
  // Classify each block by the winners it holds. A block whose winners all
  // sit at their home offsets within one logical block can serve as that
  // LBN's data block; everything else holding winners must be a log block.
  struct BlockInfo {
    std::vector<Lpn> winners;
    bool data_shaped = true;
    uint64_t lbn = ~0ULL;
  };
  std::vector<BlockInfo> info(g.total_blocks);
  for (Lpn lpn = 0; lpn < logical_pages; ++lpn) {
    const Ppn ppn = scan.data_ppn.Get(lpn);
    if (ppn == kInvalidPpn) {
      continue;
    }
    BlockInfo& bi = info[g.BlockOf(ppn)];
    bi.winners.push_back(lpn);
    if (g.OffsetOf(ppn) != OffsetOf(lpn)) {
      bi.data_shaped = false;
    }
    if (bi.lbn == ~0ULL) {
      bi.lbn = LbnOf(lpn);
    } else if (bi.lbn != LbnOf(lpn)) {
      bi.data_shaped = false;
    }
  }
  // Best data block per LBN: most winners, newest page as the tiebreak.
  for (BlockId b = 0; b < g.total_blocks; ++b) {
    const BlockInfo& bi = info[b];
    if (bi.winners.empty() || !bi.data_shaped) {
      continue;
    }
    const BlockId cur = map_[bi.lbn];
    if (cur == kInvalidBlock || bi.winners.size() > info[cur].winners.size() ||
        (bi.winners.size() == info[cur].winners.size() &&
         scan.blocks[b].max_seq > scan.blocks[cur].max_seq)) {
      map_[bi.lbn] = b;
    }
  }
  // The rest become log blocks, oldest first (back of the deque is active).
  std::vector<BlockId> logs;
  for (BlockId b = 0; b < g.total_blocks; ++b) {
    const BlockInfo& bi = info[b];
    if (bi.winners.empty() || (bi.data_shaped && map_[bi.lbn] == b)) {
      continue;
    }
    logs.push_back(b);
  }
  std::sort(logs.begin(), logs.end(), [&](BlockId a, BlockId b) {
    return scan.blocks[a].max_seq < scan.blocks[b].max_seq;
  });
  for (const BlockId b : logs) {
    log_blocks_.push_back(b);
    for (const Lpn lpn : info[b].winners) {
      log_map_[lpn] = scan.data_ppn.Get(lpn);
    }
  }
  // Free pool: blocks with no live data, erased back to free (bad or
  // worn-out blocks are retired instead).
  for (BlockId b = 0; b < g.total_blocks; ++b) {
    if (!info[b].winners.empty() || flash_->IsBad(b)) {
      continue;
    }
    if (scan.blocks[b].programmed > 0) {
      TPFTL_CHECK(flash_->block(b).valid_pages() == 0);
      recovery_report_.rebuild_time_us += flash_->EraseBlock(b);
      if (flash_->IsWornOut(b)) {
        continue;
      }
    }
    free_blocks_.push_back(b);
  }
  // A cut can strand more log blocks than the limit allows; merge down.
  while (log_blocks_.size() > log_block_limit_) {
    recovery_report_.rebuild_time_us += ReclaimOldestLog();
  }
  scan.report.rebuild_time_us = recovery_report_.rebuild_time_us;
  // No flash-resident table: the reconstructed map is all unpersisted.
  scan.report.unpersisted_window = scan.report.data_mappings;
  scan.report.blocks_free = free_blocks_.size();
  for (BlockId b = 0; b < g.total_blocks; ++b) {
    scan.report.bad_blocks += flash_->IsBad(b) ? 1 : 0;
  }
  if (ckpt_.enabled()) {
    // Epilogue checkpoint: persists the rebuilt tables and trims the journal
    // (including any truncated torn record). The full live mapping folds
    // into the cumulative directory, superseding any marks the log-overflow
    // merges above produced.
    std::vector<DirtyMapping> dirty;
    CollectLiveMappings(&dirty);
    scan.report.rebuild_time_us += ckpt_.Commit({}, dirty);
    ckpt_dirty_.clear();
  }
  recovery_report_ = scan.report;
  recovered_ = true;
  stats_.Reset();
  flash_->ResetStats();
}

MicroSec FastFtl::CommitCheckpoint() {
  // Deltas since the previous checkpoint: each dirty LPN's current mapping,
  // or a clear triple (kInvalidPpn) when it no longer has one.
  std::vector<DirtyMapping> dirty;
  dirty.reserve(ckpt_dirty_.size());
  for (const Lpn lpn : ckpt_dirty_) {
    dirty.push_back({lpn, Probe(lpn)});
  }
  const MicroSec t = ckpt_.Commit({}, dirty);
  ckpt_dirty_.clear();
  return t;
}

void FastFtl::CollectLiveMappings(std::vector<DirtyMapping>* out) const {
  const FlashGeometry& g = flash_->geometry();
  for (const auto& [lpn, ppn] : log_map_) {
    out->push_back({lpn, ppn});
  }
  for (uint64_t lbn = 0; lbn < map_.size(); ++lbn) {
    if (map_[lbn] == kInvalidBlock) {
      continue;
    }
    const Lpn first = lbn * pages_per_block_;
    const Lpn last = std::min(first + pages_per_block_, logical_pages_);
    for (Lpn lpn = first; lpn < last; ++lpn) {
      if (log_map_.contains(lpn)) {
        continue;  // A fresher log copy supersedes the in-place slot.
      }
      const Ppn ppn = g.PpnOf(map_[lbn], OffsetOf(lpn));
      if (flash_->StateOf(ppn) == PageState::kValid) {
        out->push_back({lpn, ppn});
      }
    }
  }
}

void FastFtl::ResetStats() {
  stats_.Reset();
  flash_->ResetStats();
}

BlockId FastFtl::AllocateBlock() {
  while (!free_blocks_.empty() && flash_->IsBad(free_blocks_.front())) {
    free_blocks_.pop_front();  // Retired since it was freed (injected fault).
  }
  TPFTL_CHECK_MSG(!free_blocks_.empty(), "FAST out of free blocks");
  const BlockId block = free_blocks_.front();
  free_blocks_.pop_front();
  return block;
}

MicroSec FastFtl::ReadPage(Lpn lpn) {
  TPFTL_CHECK(LbnOf(lpn) < map_.size());
  ++stats_.host_page_reads;
  ++stats_.lookups;
  ++stats_.hits;  // Block table and log map are RAM-resident.
  MicroSec t = MaybeCheckpoint();
  const Ppn ppn = Probe(lpn);
  return ppn == kInvalidPpn ? t : t + flash_->ReadPage(ppn);
}

MicroSec FastFtl::WritePage(Lpn lpn) {
  TPFTL_CHECK(LbnOf(lpn) < map_.size());
  ++stats_.host_page_writes;
  ++stats_.lookups;
  ++stats_.hits;
  MicroSec t = MaybeCheckpoint();
  const uint64_t lbn = LbnOf(lpn);
  const uint64_t offset = OffsetOf(lpn);
  // In-place path: slot still free and no fresher log copy exists.
  if (!log_map_.contains(lpn)) {
    if (map_[lbn] == kInvalidBlock) {
      map_[lbn] = AllocateBlock();
    }
    const Ppn target = flash_->geometry().PpnOf(map_[lbn], offset);
    if (flash_->StateOf(target) == PageState::kFree) {
      MarkCheckpointDirty(lpn);
      return t + flash_->ProgramPageAt(target, lpn);
    }
  }
  return t + AppendToLog(lpn);
}

MicroSec FastFtl::TrimPage(Lpn lpn) {
  TPFTL_CHECK(LbnOf(lpn) < map_.size());
  MicroSec t = MaybeCheckpoint();
  if (const auto it = log_map_.find(lpn); it != log_map_.end()) {
    flash_->InvalidatePage(it->second);
    log_map_.erase(it);
    MarkCheckpointDirty(lpn);
    return t;
  }
  const Ppn ppn = Probe(lpn);
  if (ppn != kInvalidPpn) {
    flash_->InvalidatePage(ppn);
    MarkCheckpointDirty(lpn);
  }
  return t;
}

MicroSec FastFtl::AppendToLog(Lpn lpn) {
  MicroSec t = 0.0;
  Ppn new_ppn = kInvalidPpn;
  do {
    // Appendable means the *write cursor* has room, not merely that free
    // pages exist: recovery can demote an in-place-written data block (holes
    // below a high cursor) to a log block, and sequential programming cannot
    // reach those holes.
    if (log_blocks_.empty() ||
        flash_->block(log_blocks_.back()).write_cursor() >=
            flash_->geometry().pages_per_block) {
      if (log_blocks_.size() >= log_block_limit_) {
        t += ReclaimOldestLog();
      }
      log_blocks_.push_back(AllocateBlock());
    }
    t += flash_->ProgramPage(log_blocks_.back(), lpn, &new_ppn);
    // An injected program failure consumes the page as unreadable; retry on
    // the next free page (possibly of a freshly allocated log block).
  } while (new_ppn == kInvalidPpn);
  // Supersede the previous copy (log first, then the in-place one).
  if (const auto it = log_map_.find(lpn); it != log_map_.end()) {
    flash_->InvalidatePage(it->second);
    it->second = new_ppn;
  } else {
    const uint64_t lbn = LbnOf(lpn);
    if (map_[lbn] != kInvalidBlock) {
      const Ppn data_ppn = flash_->geometry().PpnOf(map_[lbn], OffsetOf(lpn));
      if (flash_->StateOf(data_ppn) == PageState::kValid) {
        flash_->InvalidatePage(data_ppn);
      }
    }
    log_map_[lpn] = new_ppn;
  }
  MarkCheckpointDirty(lpn);
  return t;
}

bool FastFtl::IsSwitchMergeable(BlockId log_block) const {
  // Switch merge: the log block is exactly one logical block, fully written,
  // with every page valid and at its home offset.
  const Block& block = flash_->block(log_block);
  if (block.valid_pages() != pages_per_block_) {
    return false;
  }
  const Ppn first = flash_->geometry().PpnOf(log_block, 0);
  const auto first_lpn = static_cast<Lpn>(flash_->OobTag(first));
  if (OffsetOf(first_lpn) != 0) {
    return false;
  }
  for (uint64_t off = 1; off < pages_per_block_; ++off) {
    const Ppn ppn = flash_->geometry().PpnOf(log_block, off);
    if (static_cast<Lpn>(flash_->OobTag(ppn)) != first_lpn + off) {
      return false;
    }
  }
  return true;
}

MicroSec FastFtl::ReclaimOldestLog() {
  TPFTL_CHECK(!log_blocks_.empty());
  const BlockId victim = log_blocks_.front();
  MicroSec t = 0.0;
  obs::ScopedPhase gc_phase(obs::Phase::kGc);

  if (IsSwitchMergeable(victim)) {
    // The log block becomes the data block for its logical block. No
    // checkpoint-dirty marks: every page keeps its PPN, so no LPN's mapping
    // actually changes.
    const auto first_lpn = static_cast<Lpn>(flash_->OobTag(flash_->geometry().PpnOf(victim, 0)));
    const uint64_t lbn = LbnOf(first_lpn);
    const BlockId old_data = map_[lbn];
    for (uint64_t off = 0; off < pages_per_block_; ++off) {
      log_map_.erase(first_lpn + off);
    }
    map_[lbn] = victim;
    log_blocks_.pop_front();
    if (old_data != kInvalidBlock) {
      // All its pages were superseded by the (complete) log block.
      TPFTL_CHECK(flash_->block(old_data).valid_pages() == 0);
      t += flash_->EraseBlock(old_data);
      if (!flash_->IsBad(old_data) && !flash_->IsWornOut(old_data)) {
        free_blocks_.push_back(old_data);
      }
    }
    ++switch_merges_;
    return t;
  }

  // Full merge: rebuild every logical block that has a valid page here.
  std::vector<uint64_t> lbns;
  for (uint64_t off = 0; off < pages_per_block_; ++off) {
    const Ppn ppn = flash_->geometry().PpnOf(victim, off);
    if (flash_->StateOf(ppn) != PageState::kValid) {
      continue;
    }
    const uint64_t lbn = LbnOf(static_cast<Lpn>(flash_->OobTag(ppn)));
    if (std::find(lbns.begin(), lbns.end(), lbn) == lbns.end()) {
      lbns.push_back(lbn);
    }
  }
  for (const uint64_t lbn : lbns) {
    t += FullMergeLbn(lbn);
  }
  TPFTL_CHECK(flash_->block(victim).valid_pages() == 0);
  t += flash_->EraseBlock(victim);
  if (!flash_->IsBad(victim) && !flash_->IsWornOut(victim)) {
    free_blocks_.push_back(victim);
  }
  log_blocks_.pop_front();
  return t;
}

MicroSec FastFtl::FullMergeLbn(uint64_t lbn) {
  const FlashGeometry& g = flash_->geometry();
  const BlockId new_block = AllocateBlock();
  const BlockId old_data = map_[lbn];
  MicroSec t = 0.0;
  ++stats_.gc_data_blocks;
  ++full_merges_;
  for (uint64_t off = 0; off < pages_per_block_; ++off) {
    const Lpn lpn = lbn * pages_per_block_ + off;
    Ppn source = kInvalidPpn;
    if (const auto it = log_map_.find(lpn); it != log_map_.end()) {
      source = it->second;
      log_map_.erase(it);
    } else if (old_data != kInvalidBlock) {
      const Ppn data_ppn = g.PpnOf(old_data, off);
      if (flash_->StateOf(data_ppn) == PageState::kValid) {
        source = data_ppn;
      }
    }
    if (source == kInvalidPpn) {
      continue;  // Never-written page.
    }
    t += flash_->ReadPage(source);
    t += flash_->ProgramPageAt(g.PpnOf(new_block, off), lpn);
    flash_->InvalidatePage(source);
    MarkCheckpointDirty(lpn);
    ++stats_.gc_data_migrations;
    ++stats_.gc_hits;  // Mapping state is RAM-resident.
  }
  if (old_data != kInvalidBlock) {
    TPFTL_CHECK(flash_->block(old_data).valid_pages() == 0);
    t += flash_->EraseBlock(old_data);
    if (!flash_->IsBad(old_data) && !flash_->IsWornOut(old_data)) {
      free_blocks_.push_back(old_data);
    }
  }
  map_[lbn] = new_block;
  return t;
}

Ppn FastFtl::Probe(Lpn lpn) const {
  if (const auto it = log_map_.find(lpn); it != log_map_.end()) {
    return it->second;
  }
  const BlockId pbn = map_[LbnOf(lpn)];
  if (pbn == kInvalidBlock) {
    return kInvalidPpn;
  }
  const Ppn ppn = flash_->geometry().PpnOf(pbn, OffsetOf(lpn));
  return flash_->StateOf(ppn) == PageState::kValid ? ppn : kInvalidPpn;
}

}  // namespace tpftl
