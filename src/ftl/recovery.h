// Power-loss recovery by OOB scan (DESIGN.md "Fault model and power-loss
// recovery"; the technique follows Dayan & Bonnet's treatment of
// flash-resident page-mapping FTLs).
//
// After a power cut the only durable state is the NAND itself: page states,
// and per-page OOB records of (tag, kind, program sequence number). A full
// scan reconstructs the logical→physical view:
//
//   * for every LPN, the *winner* is the data page carrying that LPN with
//     the highest sequence number — later programs supersede earlier ones;
//   * for every VTPN, likewise the newest translation page copy;
//   * pages with seq 0 are torn (interrupted or failed programs) and are
//     skipped — the write they carried was never acknowledged durable.
//
// Because power cuts land between flash operations (RAM bookkeeping between
// two flash ops always completes in this simulator — see NandFlash), the
// surviving valid/invalid marks agree with winner-by-seq: every valid data
// page is its LPN's winner. The scan CHECKs that agreement. The converse
// can fail legitimately — a TRIM invalidates the newest copy without
// writing a newer one — so winners whose page is no longer valid are
// dropped as deliberately unmapped (real FTLs persist TRIMs out of band;
// this simulator models that durability via the state cross-check).
//
// The scan itself is FTL-agnostic; each FTL consumes the result its own way
// (BlockManager/TranslationStore::RecoverFromScan for the demand FTLs,
// bespoke rebuilds for the block-level baselines).

#ifndef SRC_FTL_RECOVERY_H_
#define SRC_FTL_RECOVERY_H_

#include <cstdint>
#include <vector>

#include "src/flash/nand.h"
#include "src/flash/types.h"
#include "src/util/segmented_array.h"

namespace tpftl {

// What recovery found and did; exposed via Ftl::recovery_report().
struct RecoveryReport {
  uint64_t pages_scanned = 0;     // Pages whose OOB was read (incl. free pages:
                                  // a scan can't know a page is empty without
                                  // reading it, so the full scan is O(device)).
  uint64_t torn_pages = 0;        // Unreadable pages (failed/torn programs).
  uint64_t data_mappings = 0;     // LPNs with a recovered mapping.
  uint64_t conflict_copies = 0;   // Superseded copies that lost by seq.
  uint64_t stale_winners_dropped = 0;  // Winners dropped by the TRIM cross-check.
  uint64_t translation_pages_found = 0;
  uint64_t translation_rewrites = 0;   // Translation pages re-persisted.
  // Mappings whose newest copy was newer than their translation page — the
  // window that would have been lost without the OOB scan (dirty cached
  // entries at the cut, in FTL terms).
  uint64_t unpersisted_window = 0;
  uint64_t blocks_free = 0;       // Blocks returned to the free pool.
  uint64_t bad_blocks = 0;        // Blocks retired (factory bad or worn).
  MicroSec scan_time_us = 0.0;    // Simulated flash time of the OOB scan.
  MicroSec rebuild_time_us = 0.0;  // Simulated flash time re-persisting state.
  // --- checkpointed-recovery extensions (src/ftl/checkpoint.h) ------------
  bool used_checkpoint = false;   // Directory + journal replay, not full scan.
  uint64_t journal_records_replayed = 0;  // Meta records after the checkpoint.
  uint64_t checkpoint_bytes_read = 0;     // Log + directory + header bytes.
  uint64_t blocks_rescanned = 0;  // Journaled-dirty blocks whose OOB was reread.
};

// Raw OOB-scan output consumed by the per-FTL rebuild steps.
struct OobScanResult {
  struct BlockSummary {
    OobKind pool = OobKind::kNone;  // Kind of the block's readable pages.
    uint64_t max_seq = 0;           // Newest readable page (0 = none).
    uint64_t programmed = 0;
  };

  // The per-LPN winner arrays follow the device's sparse layout (geometry
  // sparse_segment_pages) so a TB-scale checkpointed boot never allocates
  // O(logical) dense transients — only segments holding real winners
  // materialize. The per-VTPN arrays stay dense: the GTD is small.
  SegmentedArray<Ppn> data_ppn;     // LPN → winning copy (kInvalidPpn = unmapped).
  SegmentedArray<uint64_t> data_seq;  // LPN → winner's sequence number (0 = none).
  std::vector<Ptpn> trans_ppn;      // VTPN → winning translation page.
  std::vector<uint64_t> trans_seq;
  std::vector<BlockSummary> blocks;
  RecoveryReport report;
};

// Scans every programmed page's OOB and resolves winners. `logical_pages`
// and `translation_pages` bound the tag spaces (a tag outside its space is
// a corruption bug and CHECK-fails).
OobScanResult ScanForRecovery(const NandFlash& flash, uint64_t logical_pages,
                              uint64_t translation_pages);

}  // namespace tpftl

#endif  // SRC_FTL_RECOVERY_H_
