#include "src/ftl/heat.h"

#include <algorithm>

#include "src/util/assert.h"

namespace tpftl {

HeatClassifier::HeatClassifier(uint64_t logical_pages, uint32_t streams,
                               uint64_t sparse_segment_pages)
    : streams_(streams),
      window_(std::max<uint64_t>(logical_pages / 4, 64)),
      heat_(logical_pages, 0, sparse_segment_pages) {
  TPFTL_CHECK_MSG(streams >= 1, "a heat classifier needs at least one stream");
}

uint16_t HeatClassifier::DecayedCount(Lpn lpn) const {
  const uint16_t packed = heat_.Get(lpn);
  const uint32_t stamp = packed >> 8;
  const uint32_t delta = (epoch_ - stamp) & 0xFFu;
  if (delta >= 8) {
    return 0;  // Fully decayed (and absorbs the 256-epoch stamp wrap).
  }
  return static_cast<uint16_t>((packed & 0xFFu) >> delta);
}

uint32_t HeatClassifier::StreamFromCount(uint16_t count) const {
  // Coldest by default; each doubling of the rewrite count earns one hotter
  // tier. Two streams: count >= 2 is hot.
  uint32_t stream = streams_ - 1;
  uint16_t threshold = 2;
  while (stream > 0 && count >= threshold) {
    --stream;
    threshold = static_cast<uint16_t>(threshold << 1);
  }
  return stream;
}

uint32_t HeatClassifier::OnWrite(Lpn lpn) {
  ++writes_;
  if (writes_ % window_ == 0) {
    epoch_ = (epoch_ + 1) & 0xFFu;
  }
  const uint16_t count = std::min<uint16_t>(DecayedCount(lpn) + 1, 255);
  heat_.Set(lpn, static_cast<uint16_t>((epoch_ << 8) | count));
  return StreamFromCount(count);
}

uint32_t HeatClassifier::StreamOf(Lpn lpn) const {
  return StreamFromCount(DecayedCount(lpn));
}

}  // namespace tpftl
