// Abstract FTL interface.
//
// An Ftl serves page-granular host accesses, performing LPN→PPN translation,
// data page I/O, and garbage collection. Returned times are the flash-time
// cost of the access (translation ops + user page op + any GC triggered by
// it); the SSD layer turns them into response times with queuing.

#ifndef SRC_FTL_FTL_H_
#define SRC_FTL_FTL_H_

#include <string>
#include <vector>

#include "src/flash/types.h"
#include "src/ftl/at_stats.h"
#include "src/trace/request.h"

namespace tpftl {

struct RecoveryReport;

class Ftl {
 public:
  virtual ~Ftl() = default;

  virtual std::string name() const = 0;

  // Serves one page read/write, including any garbage collection it triggers.
  virtual MicroSec ReadPage(Lpn lpn) = 0;
  virtual MicroSec WritePage(Lpn lpn) = 0;

  // TRIM/deallocate: drops the page's mapping without writing new data. The
  // old physical page becomes garbage immediately (cheap GC later) and
  // subsequent reads return nothing. Returns any flash time spent updating
  // mapping state.
  virtual MicroSec TrimPage(Lpn lpn) = 0;

  // Called once per host request before its page accesses; TPFTL uses it for
  // request-level prefetching (§4.3). Default: no-op.
  virtual void BeginRequest(const IoRequest& request) { (void)request; }

  // Current mapping of `lpn` with no side effects (no stats, no cache
  // movement); kInvalidPpn when never written. Used by consistency tests.
  virtual Ppn Probe(Lpn lpn) const = 0;

  // Opportunistic garbage collection during device idle time: reclaim
  // blocks until the free pool is comfortable or `budget_us` of flash time
  // is spent. Returns the flash time actually consumed. Default: no-op
  // (foreground-GC-only FTLs).
  virtual MicroSec BackgroundGc(MicroSec budget_us) {
    (void)budget_us;
    return 0.0;
  }

  virtual const AtStats& stats() const = 0;
  virtual void ResetStats() = 0;

  // True when the device has aged past serving new writes: so many blocks
  // have been retired (erase failures or exhausted endurance budgets) that
  // another write or GC pass could strand data. Reads remain valid forever.
  // The driver contract is check-before-mutate: a WritePage/TrimPage issued
  // while worn_out() was false completes normally; once it flips true the
  // caller must stop issuing mutations. Default: never (unlimited-endurance
  // geometries cannot exhaust the pool).
  virtual bool worn_out() const { return false; }

  // Host data pages written per temperature stream (hot/cold separation).
  // Single-stream FTLs report one bucket; empty means streams are untracked.
  virtual std::vector<uint64_t> stream_write_counts() const { return {}; }

  // Mapping-cache occupancy diagnostics (0 for FTLs without a cache budget).
  virtual uint64_t cache_bytes_used() const { return 0; }
  virtual uint64_t cache_entry_count() const { return 0; }

  // Stats of the power-loss recovery this FTL was constructed from
  // (FtlEnv::recover_from_flash); nullptr when it started from a format.
  virtual const RecoveryReport* recovery_report() const { return nullptr; }

  // Structural self-check used by the SimCheck harness (src/testing/): the
  // FTL verifies its internal bookkeeping (block accounting, candidate
  // buckets, wear histogram) and CHECK-fails on corruption. O(total blocks)
  // — test support, not a request-path operation. Default: nothing to check.
  virtual bool CheckInvariants() const { return true; }

  // Test-only sabotage used by SimCheck to validate that its oracle actually
  // catches lost mappings: the FTL silently drops every mapping commit for
  // `lpn` (the write is acknowledged and the data page programmed, but the
  // mapping table is never updated). kInvalidLpn disarms. Returns false when
  // the FTL does not support the hook.
  virtual bool TestOnlySabotageDropCommits(Lpn lpn) {
    (void)lpn;
    return false;
  }
};

}  // namespace tpftl

#endif  // SRC_FTL_FTL_H_
