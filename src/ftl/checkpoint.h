// Checkpointed recovery: O(dirty-window) reboot instead of O(device) scan.
//
// The full-scan recovery (src/ftl/recovery.h) reads every programmed page's
// OOB — perfect fidelity, but reboot time grows linearly with device
// capacity. This module trades a small amount of foreground work for a
// bounded reboot:
//
//   * NandFlash journals the first program into each block per checkpoint
//     epoch (kBlockDirty WAL records — src/flash/meta.h);
//   * the FTL periodically appends a kCheckpoint record carrying its
//     translation-directory *deltas* and the point-in-time dirty cached
//     mappings, then trims the log before it (CheckpointScheduler);
//   * reboot replays the log tail: the cumulative checkpoint-area directory
//     plus the device's persisted-mapping mirror and block headers provide
//     the pre-checkpoint truth, and only the blocks named dirty since the
//     checkpoint are rescanned (TryCheckpointRecovery).
//
// The reconstruction is bit-equivalent to ScanForRecovery's output arrays —
// the differential tests in tests/integration/checkpoint_recovery_test.cc
// prove it per FTL per cut point — so the scan remains both the oracle and
// the fallback: an interior journal corruption, a sequence gap, or a missing
// checkpoint makes TryCheckpointRecovery return nullopt and the caller runs
// the full scan. A single unverifiable FINAL record is a torn append
// (its guarded operation never happened — WAL order) and is truncated.
//
// Every candidate taken from RAM-speed metadata (mirror entries, directory
// entries, checkpoint triples) is verified against the live OOB of the page
// it names (same seq, tag, kind) before use, so state that went stale
// through GC, erase, or reprogram can never override the journaled truth.

#ifndef SRC_FTL_CHECKPOINT_H_
#define SRC_FTL_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/flash/nand.h"
#include "src/flash/types.h"
#include "src/ftl/recovery.h"

namespace tpftl {

// Knobs carried in FtlEnv. Disabled by default: the journal hook then costs
// one predicted-not-taken branch per program (PR-4 budget).
struct CheckpointConfig {
  bool enabled = false;
  // Append a checkpoint after this many host ops (reads/writes/trims)...
  uint64_t interval_host_ops = 256;
  // ...or sooner, once this many journal records accumulated — bounds the
  // dirty window (and thus reboot rescan work) under write-heavy phases.
  uint64_t max_journal_records = 24;
  // Diagnostics: journal normally, but boot via the full scan (lets tests
  // and benchmarks compare both recovery paths on identical flash images).
  bool force_scan_recovery = false;
  // RAM-table FTLs (FAST, BlockFTL, Optimal): the dirty mappings handed to
  // Commit are *deltas since the previous checkpoint* and fold into the
  // device's cumulative data directory (kCheckpointFlagCumulativeData,
  // src/flash/meta.h) instead of re-serializing the whole live map per
  // record. Cached TRIMs then append as clear triples rather than being
  // dropped. Set by the FTL itself, not by callers.
  bool cumulative_data = false;
};

// One translation-directory delta: GTD slot `vtpn` now points at `ptpn`.
struct GtdDelta {
  Vtpn vtpn = kInvalidVtpn;
  Ptpn ptpn = kInvalidPtpn;
};

// One dirty cached mapping at checkpoint time (not yet persisted to a
// translation page). ppn == kInvalidPpn encodes a cached TRIM and is
// dropped at append time — recovery's TRIM cross-check re-derives it.
struct DirtyMapping {
  Lpn lpn = kInvalidLpn;
  Ppn ppn = kInvalidPpn;
};

// Owns the cadence policy and the append+trim commit sequence. One instance
// per FTL; Configure() is a no-op unless cfg.enabled.
class CheckpointScheduler {
 public:
  CheckpointScheduler() = default;

  void Configure(NandFlash* flash, const CheckpointConfig& cfg) {
    flash_ = flash;
    cfg_ = cfg;
    if (cfg.enabled) {
      flash->EnableMetaJournal(true);
    }
  }

  bool enabled() const { return cfg_.enabled; }
  const CheckpointConfig& config() const { return cfg_; }

  // Called once per host op. True when a checkpoint is due — either the op
  // interval elapsed or the journal hit its record cap.
  bool Due() {
    if (!cfg_.enabled) [[likely]] {
      return false;
    }
    ++ops_since_;
    return ops_since_ >= cfg_.interval_host_ops ||
           flash_->meta_records_since_checkpoint() >= cfg_.max_journal_records;
  }

  // Appends the kCheckpoint record ([G, D, triples] — src/flash/meta.h) and
  // trims every record before it. Sequence numbers for the triples are read
  // from the named pages' OOB, which is why commit must run while every
  // delta still points at a live page. Returns the simulated flash time.
  MicroSec Commit(const std::vector<GtdDelta>& gtd_deltas,
                  const std::vector<DirtyMapping>& dirty);

 private:
  NandFlash* flash_ = nullptr;
  CheckpointConfig cfg_;
  uint64_t ops_since_ = 0;
};

// Attempts the checkpointed reboot. Returns an OobScanResult bit-equivalent
// to ScanForRecovery's (arrays and block summaries; the report differs — it
// bills directory reads and the journaled-block rescan instead of a device
// scan). nullopt ⇒ the caller must fall back to the full scan:
//   * empty log, or no checkpoint record in the valid prefix;
//   * interior corruption: a bad checksum or a sequence gap anywhere but a
//     lone torn final record (which is truncated instead).
std::optional<OobScanResult> TryCheckpointRecovery(const NandFlash& flash,
                                                   uint64_t logical_pages,
                                                   uint64_t translation_pages);

}  // namespace tpftl

#endif  // SRC_FTL_CHECKPOINT_H_
