// DFTL — demand-based FTL with a segmented-LRU entry cache (Gupta et al.,
// ASPLOS 2009; §2.2 of the paper).
//
// The Cached Mapping Table (CMT) holds individual 8-byte LPN→PPN entries in
// two LRU segments (probationary + protected). A hit in the probationary
// segment promotes the entry; overflow of the protected segment demotes its
// LRU entry back to probationary. Victims leave from the probationary LRU
// end; a dirty victim is written back alone — one translation-page
// read-modify-write per dirty eviction — which is exactly the inefficiency
// §3.2 measures (Fig. 1(b)): the other dirty entries of the same translation
// page stay cached and force repeated rewrites of the same page.
//
// During GC, DFTL batches the mapping updates of migrated data pages per
// translation page (the original paper's "lazy copying" batch update).

#ifndef SRC_FTL_DFTL_H_
#define SRC_FTL_DFTL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/ftl/demand_ftl.h"

namespace tpftl {

struct DftlOptions {
  // Fraction of the entry budget reserved for the protected segment.
  double protected_fraction = 0.6;
  uint64_t entry_bytes = 8;  // 4 B LPN tag + 4 B PPN.
};

class Dftl : public DemandFtl {
 public:
  Dftl(const FtlEnv& env, const DftlOptions& options = {});

  std::string name() const override { return "DFTL"; }
  Ppn Probe(Lpn lpn) const override;
  uint64_t cache_bytes_used() const override;
  uint64_t cache_entry_count() const override;

  // --- introspection for the Figure 1 reproduction -----------------------
  // Number of distinct translation pages with >= 1 cached entry.
  uint64_t CachedTranslationPages() const;
  // Per-translation-page counts of cached entries / cached dirty entries.
  struct PageOccupancy {
    uint64_t entries = 0;
    uint64_t dirty_entries = 0;
  };
  std::unordered_map<Vtpn, PageOccupancy> OccupancyByPage() const;

 protected:
  MicroSec Translate(Lpn lpn, bool is_write, Ppn* current) override;
  MicroSec CommitMapping(Lpn lpn, Ppn new_ppn) override;
  bool GcUpdateCached(Lpn lpn, Ppn new_ppn, MicroSec* extra_time) override;
  void CollectCheckpointDirty(std::vector<DirtyMapping>* out) override;

 private:
  enum class Segment : uint8_t { kProbation, kProtected };

  struct Entry {
    Lpn lpn = kInvalidLpn;
    Ppn ppn = kInvalidPpn;
    bool dirty = false;
    Segment segment = Segment::kProbation;
  };

  using EntryList = std::list<Entry>;

  void Touch(EntryList::iterator it);
  MicroSec EvictOne();
  uint64_t max_entries() const { return max_entries_; }

  DftlOptions options_;
  uint64_t max_entries_;
  uint64_t protected_cap_;
  EntryList probation_;  // MRU at front.
  EntryList protected_;  // MRU at front.
  std::unordered_map<Lpn, EntryList::iterator> index_;
};

}  // namespace tpftl

#endif  // SRC_FTL_DFTL_H_
