#include "src/ftl/demand_ftl.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "src/obs/phase.h"
#include "src/util/assert.h"

namespace tpftl {

uint64_t PaperCacheBytes(const FlashGeometry& geometry, uint64_t logical_pages) {
  const uint64_t logical_blocks = logical_pages / geometry.pages_per_block;
  const uint64_t translation_pages =
      (logical_pages + geometry.entries_per_translation_page() - 1) /
      geometry.entries_per_translation_page();
  return logical_blocks * 4 + translation_pages * 4;
}

DemandFtl::DemandFtl(const FtlEnv& env, bool uses_translation_store)
    : flash_(env.flash),
      bm_(env.flash, env.gc_threshold, env.gc_policy, env.wear_spread_limit,
          BlockManagerOptions{env.data_streams, env.dynamic_leveling, env.static_leveling,
                              env.static_level_threshold}),
      store_(&bm_, env.logical_pages),
      uses_translation_store_(uses_translation_store),
      logical_pages_(env.logical_pages),
      static_level_interval_(env.static_leveling ? env.static_level_interval : 0),
      static_level_countdown_(static_level_interval_) {
  TPFTL_CHECK(env.flash != nullptr);
  TPFTL_CHECK(env.logical_pages > 0);
  if (env.data_streams > 1) {
    heat_ = std::make_unique<HeatClassifier>(env.logical_pages, env.data_streams,
                                             flash_->geometry().sparse_segment_pages);
  }
  if (uses_translation_store) {
    TPFTL_CHECK_MSG(env.cache_bytes >= store_.gtd().size_bytes(),
                    "cache budget smaller than the GTD");
    entry_cache_budget_ = env.cache_bytes - store_.gtd().size_bytes();
  } else {
    entry_cache_budget_ = env.cache_bytes;
  }
  // Enable journaling before any program so the first ops of a formatted (or
  // recovered) device are covered from the start.
  ckpt_.Configure(flash_, env.checkpoint);
  if (env.recover_from_flash) {
    RecoverFromFlash(uses_translation_store);
    return;
  }
  if (uses_translation_store) {
    store_.Format();
  }
  if (ckpt_.enabled()) {
    // Boot checkpoint: absorbs Format()'s full-directory delta while the
    // cost is still setup, so the first crash already recovers via the
    // journal. Virtual dispatch resolves to the base CollectCheckpointDirty
    // here (we are inside the base constructor) — correct by construction:
    // no subclass cache holds entries yet.
    CommitCheckpoint();
  }
  if (uses_translation_store || ckpt_.enabled()) {
    // Formatting cost is setup, not workload; start experiments clean.
    flash_->ResetStats();
  }
}

void DemandFtl::RecoverFromFlash(bool uses_translation_store) {
  std::optional<OobScanResult> replayed;
  if (ckpt_.enabled() && !ckpt_.config().force_scan_recovery) {
    replayed = TryCheckpointRecovery(*flash_, logical_pages_, store_.translation_pages());
  }
  OobScanResult scan =
      replayed.has_value()
          ? *std::move(replayed)
          : ScanForRecovery(*flash_, logical_pages_, store_.translation_pages());
  bm_.RecoverFromScan(scan);
  if (uses_translation_store) {
    store_.RecoverFromScan(scan, &scan.report);
  } else {
    // No flash-resident table: the winners themselves are the mapping, and
    // with nothing persisted beyond the data pages the whole reconstructed
    // map is, by definition, the unpersisted window.
    recovered_user_map_ = std::move(scan.data_ppn);
    scan.report.unpersisted_window = scan.report.data_mappings;
  }
  scan.report.blocks_free = bm_.free_block_count();
  scan.report.bad_blocks = bm_.bad_block_count();
  if (ckpt_.enabled()) {
    // Recovery epilogue: checkpoint the recovered state and trim the log.
    // This physically removes any truncated torn record — without it the
    // re-appended tail would read as *interior* corruption at the next boot
    // — and shrinks the next reboot's replay back to an empty window.
    std::vector<GtdDelta> gtd;
    std::vector<DirtyMapping> dirty;
    if (uses_translation_store) {
      store_.CollectGtdDeltas(&gtd);
    } else {
      // No translation pages exist: every recovered mapping lives only in
      // RAM and data-page OOB, so all of them checkpoint as dirty. Mappings
      // only live in materialized segments of the winner array.
      const uint64_t seg = recovered_user_map_.segment_size();
      for (uint64_t s = recovered_user_map_.NextMaterializedSegment(0);
           s < recovered_user_map_.total_segments();
           s = recovered_user_map_.NextMaterializedSegment(s + 1)) {
        const Lpn first = s * seg;
        const Lpn last = std::min(first + seg, recovered_user_map_.size());
        for (Lpn lpn = first; lpn < last; ++lpn) {
          const Ppn ppn = recovered_user_map_.Get(lpn);
          if (ppn != kInvalidPpn) {
            dirty.push_back({lpn, ppn});
          }
        }
      }
    }
    scan.report.rebuild_time_us += ckpt_.Commit(gtd, dirty);
  }
  recovery_report_ = scan.report;
  recovered_ = true;
  // Note: no RunGcIfNeeded() here — it dispatches policy hooks that the
  // derived object does not implement yet during base construction. The
  // first post-recovery host op restores the free-level invariant.
  flash_->ResetStats();
}

void DemandFtl::ResetStats() {
  stats_.Reset();
  flash_->ResetStats();
}

MicroSec DemandFtl::ReadPage(Lpn lpn) {
  TPFTL_CHECK(lpn < logical_pages_);
  ++stats_.host_page_reads;
  Ppn ppn = kInvalidPpn;
  MicroSec t;
  {
    obs::ScopedPhase phase(obs::Phase::kTranslation);
    t = Translate(lpn, /*is_write=*/false, &ppn);
  }
  if (ppn != kInvalidPpn) {
    t += flash_->ReadPage(ppn);
  }
  // Reads never consume free pages, but translation writebacks triggered by
  // the lookup can, so the GC check still runs.
  t += RunGcIfNeeded();
  t += MaybeCheckpoint();
  return t;
}

MicroSec DemandFtl::WritePage(Lpn lpn) {
  TPFTL_CHECK(lpn < logical_pages_);
  ++stats_.host_page_writes;
  Ppn old_ppn = kInvalidPpn;
  MicroSec t;
  {
    obs::ScopedPhase phase(obs::Phase::kTranslation);
    t = Translate(lpn, /*is_write=*/true, &old_ppn);
  }
  Ppn new_ppn = kInvalidPpn;
  t += bm_.Program(BlockPool::kData, lpn, &new_ppn, WriteStream(lpn));
  if (old_ppn != kInvalidPpn) {
    bm_.Invalidate(old_ppn);
  }
  {
    obs::ScopedPhase phase(obs::Phase::kTranslation);
    if (lpn != sabotage_drop_commit_lpn_) [[likely]] {
      t += CommitMapping(lpn, new_ppn);
    }
  }
  t += RunGcIfNeeded();
  t += MaybeStaticLevel();
  t += MaybeCheckpoint();
  return t;
}

MicroSec DemandFtl::TrimPage(Lpn lpn) {
  TPFTL_CHECK(lpn < logical_pages_);
  Ppn old_ppn = kInvalidPpn;
  // The entry must be resident to be rewritten — same as a write (§4.1), but
  // no data page is programmed.
  obs::ScopedPhase phase(obs::Phase::kTranslation);
  MicroSec t = Translate(lpn, /*is_write=*/true, &old_ppn);
  if (old_ppn != kInvalidPpn) {
    bm_.Invalidate(old_ppn);
  }
  t += CommitMapping(lpn, kInvalidPpn);
  t += RunGcIfNeeded();
  t += MaybeCheckpoint();
  return t;
}

MicroSec DemandFtl::BackgroundGc(MicroSec budget_us) {
  if (worn_out()) [[unlikely]] {
    return 0.0;
  }
  MicroSec spent = 0.0;
  const uint64_t soft_watermark = bm_.gc_threshold() * 2;
  while (spent < budget_us && bm_.free_block_count() < soft_watermark) {
    const BlockId victim = bm_.PickVictim();
    if (victim == kInvalidBlock || LowSpareMargin()) {
      break;
    }
    const uint64_t valid = flash_->block(victim).valid_pages();
    if (valid > flash_->geometry().pages_per_block * 3 / 4) {
      break;  // Only nearly-full blocks left; not worth idle churn.
    }
    spent += CollectBlock(victim);
  }
  return spent;
}

MicroSec DemandFtl::CommitCheckpoint() {
  std::vector<GtdDelta> gtd;
  if (uses_translation_store_) {
    store_.CollectGtdDeltas(&gtd);
  }
  std::vector<DirtyMapping> dirty;
  CollectCheckpointDirty(&dirty);
  return ckpt_.Commit(gtd, dirty);
}

MicroSec DemandFtl::RunGcIfNeeded() {
  if (worn_) [[unlikely]] {
    return 0.0;  // End of life: collecting could strand data mid-migration.
  }
  MicroSec t = 0.0;
  obs::ScopedPhase phase(obs::Phase::kGc);
  while (bm_.NeedsGc()) {
    // Over-provisioning can sit at or below the GC threshold on small
    // devices (a sharded front-end slices the spare pool along with the
    // logical space). Once every candidate is fully valid, no collection
    // can raise the free count — serve at whatever headroom is left
    // instead of spinning on net-zero collections forever.
    if (!bm_.HasReclaimableCandidate()) {
      break;
    }
    const BlockId victim = bm_.PickVictim();
    // Graceful end of life instead of a CHECK: once retirements have eaten
    // the spare pool down to where no victim exists, or where a worst-case
    // collection could exhaust the remaining free blocks mid-flight, latch
    // worn-out and stop. A healthy device (no retired blocks) never takes
    // this exit.
    if (victim == kInvalidBlock || LowSpareMargin()) {
      worn_ = true;
      break;
    }
    t += CollectBlock(victim);
  }
  return t;
}

bool DemandFtl::LowSpareMargin() const {
  // Worst case for one collection: a block's worth of migrations fans out
  // over every data stream (<= streams + 1 fresh data blocks at fill
  // boundaries) while their mapping writebacks consume translation blocks
  // (<= 2 more). Erases that retire their block return nothing to the pool,
  // so completion is only guaranteed with that many spare blocks up front.
  return bm_.bad_block_count() > 0 &&
         bm_.free_block_count() < bm_.data_streams() + 3;
}

bool DemandFtl::worn_out() const {
  if (worn_) {
    return true;
  }
  // Lazy check for paths that age the device without tripping the GC latch
  // (e.g. a recovery boot of an end-of-life device): with retired blocks and
  // no headroom for a worst-case collection, the next write is unsafe.
  return LowSpareMargin();
}

MicroSec DemandFtl::CollectBlock(BlockId victim) {
  if (bm_.PoolOf(victim) == BlockPool::kData) {
    return CollectDataBlock(victim);
  }
  return CollectTranslationBlock(victim);
}

MicroSec DemandFtl::MaybeStaticLevel() {
  if (static_level_interval_ == 0 || worn_) [[likely]] {
    return 0.0;
  }
  if (--static_level_countdown_ > 0) {
    return 0.0;
  }
  static_level_countdown_ = static_level_interval_;
  if (LowSpareMargin() || !bm_.StaticLevelWanted()) {
    return 0.0;
  }
  const BlockId victim = bm_.StaticLevelVictim();
  if (victim == kInvalidBlock) {
    return 0.0;
  }
  obs::ScopedPhase phase(obs::Phase::kGc);
  ++stats_.static_level_blocks;
  return CollectBlock(victim);
}

uint32_t DemandFtl::WriteStream(Lpn lpn) {
  return heat_ ? heat_->OnWrite(lpn) : 0;
}

uint32_t DemandFtl::RelocateStream(Lpn lpn) const {
  return heat_ ? heat_->StreamOf(lpn) : 0;
}

MicroSec DemandFtl::CollectDataBlock(BlockId victim) {
  ++stats_.gc_data_blocks;
  const FlashGeometry& g = flash_->geometry();
  MicroSec t = 0.0;

  // Step 2 of a GC operation (§3.1): migrate the remaining valid pages and
  // collect their mapping updates. The valid set is fixed before migrating
  // (programs target the active block, never the victim), which lets a
  // subclass ask for LPN-sorted migration order without changing semantics.
  std::vector<MappingUpdate> live;
  for (uint64_t offset = 0; offset < g.pages_per_block; ++offset) {
    const Ppn ppn = g.PpnOf(victim, offset);
    if (flash_->StateOf(ppn) != PageState::kValid) {
      continue;
    }
    live.push_back({static_cast<Lpn>(flash_->OobTag(ppn)), ppn});
  }
  if (GcMigrateSorted()) {
    std::sort(live.begin(), live.end(),
              [](const MappingUpdate& a, const MappingUpdate& b) { return a.lpn < b.lpn; });
  }
  std::vector<MappingUpdate> updates;
  updates.reserve(live.size());
  for (const MappingUpdate& page : live) {
    t += flash_->ReadPage(page.ppn);
    Ppn new_ppn = kInvalidPpn;
    t += bm_.Program(BlockPool::kData, page.lpn, &new_ppn, RelocateStream(page.lpn));
    bm_.Invalidate(page.ppn);
    ++stats_.gc_data_migrations;
    updates.push_back({page.lpn, new_ppn});
  }

  // Update the migrated pages' mapping entries: in the cache when present
  // (GC hit), otherwise batched per translation page (GC miss).
  std::map<Vtpn, std::vector<MappingUpdate>> missed;
  for (const MappingUpdate& u : updates) {
    if (GcUpdateCached(u.lpn, u.ppn, &t)) {
      ++stats_.gc_hits;
    } else {
      ++stats_.gc_misses;
      missed[store_.VtpnOf(u.lpn)].push_back(u);
    }
  }
  for (auto& [vtpn, batch] : missed) {
    t += GcRewriteTranslation(vtpn, batch);
  }

  OnGcEraseDataBlock(victim);
  t += bm_.EraseAndFree(victim);
  return t;
}

MicroSec DemandFtl::GcRewriteTranslation(Vtpn vtpn, std::vector<MappingUpdate>& updates) {
  const TranslationStore::RewriteResult r =
      store_.RewriteTranslationPage(vtpn, updates, /*have_full_content=*/false);
  if (r.did_read) {
    ++stats_.trans_reads_gc;
  }
  ++stats_.trans_writes_gc;
  return r.time;
}

MicroSec DemandFtl::CollectTranslationBlock(BlockId victim) {
  ++stats_.gc_trans_blocks;
  const FlashGeometry& g = flash_->geometry();
  MicroSec t = 0.0;
  for (uint64_t offset = 0; offset < g.pages_per_block; ++offset) {
    const Ppn ppn = g.PpnOf(victim, offset);
    if (flash_->StateOf(ppn) != PageState::kValid) {
      continue;
    }
    t += store_.MigrateTranslationPage(ppn);
    ++stats_.gc_trans_migrations;
    ++stats_.trans_reads_gc;
    ++stats_.trans_writes_gc;
  }
  t += bm_.EraseAndFree(victim);
  return t;
}

}  // namespace tpftl
