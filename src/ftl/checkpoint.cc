#include "src/ftl/checkpoint.h"

#include <algorithm>
#include <utility>

#include "src/flash/meta.h"
#include "src/util/assert.h"

namespace tpftl {
namespace {

// Serialized footprint of the metadata read at boot, billed at the device's
// byte-proportional read rate: one (ptpn, seq) pair per directory entry and
// one (newest_seq, pool/flags word) pair per block header.
constexpr uint64_t kDirectoryEntryBytes = 16;
constexpr uint64_t kBlockHeaderBytes = 16;

// Validates the log front-to-back. On success returns the number of leading
// records that are usable (a lone unverifiable final record — a torn append
// — is excluded); returns false on interior corruption or a sequence gap.
bool ValidateMetaLog(const std::vector<MetaRecord>& log, size_t* valid_count) {
  for (size_t i = 0; i < log.size(); ++i) {
    const bool contiguous = i == 0 || log[i].seq == log[i - 1].seq + 1;
    if (!contiguous) {
      return false;  // A gap means lost records — even at the tail.
    }
    if (!MetaRecordVerifies(log[i])) {
      if (i + 1 == log.size()) {
        *valid_count = i;  // Torn tail: its guarded op never happened.
        return true;
      }
      return false;  // Interior corruption.
    }
  }
  *valid_count = log.size();
  return true;
}

}  // namespace

MicroSec CheckpointScheduler::Commit(const std::vector<GtdDelta>& gtd_deltas,
                                     const std::vector<DirtyMapping>& dirty) {
  TPFTL_CHECK(cfg_.enabled && flash_ != nullptr);
  ops_since_ = 0;
  std::vector<uint64_t> payload;
  payload.reserve(3 + 3 * (gtd_deltas.size() + dirty.size()));
  payload.push_back(gtd_deltas.size());
  payload.push_back(0);  // Patched below once cached TRIMs are filtered out.
  if (cfg_.cumulative_data) {
    payload.push_back(kCheckpointFlagCumulativeData);
  }
  for (const GtdDelta& d : gtd_deltas) {
    TPFTL_CHECK(d.ptpn != kInvalidPtpn);
    payload.push_back(d.vtpn);
    payload.push_back(d.ptpn);
    payload.push_back(flash_->OobSeq(d.ptpn));
  }
  uint64_t live = 0;
  for (const DirtyMapping& m : dirty) {
    if (m.ppn == kInvalidPpn) {
      if (!cfg_.cumulative_data) {
        continue;  // Cached TRIM — recovery's validity cross-check re-derives it.
      }
      // Cumulative mode: the TRIM must clear its directory entry, or the
      // stale pre-TRIM mapping would survive in the checkpoint area.
      payload.push_back(m.lpn);
      payload.push_back(kInvalidPpn);
      payload.push_back(0);
      ++live;
      continue;
    }
    payload.push_back(m.lpn);
    payload.push_back(m.ppn);
    payload.push_back(flash_->OobSeq(m.ppn));
    ++live;
  }
  payload[1] = live;
  MicroSec t = flash_->AppendMetaRecord(MetaRecordType::kCheckpoint, std::move(payload));
  // Trim strictly before the new checkpoint. If the append itself was cut,
  // the trim lands after the cut instant and is rolled back with it, so the
  // previous checkpoint (and the kBlockDirty tail covering everything since
  // it) survives for recovery.
  t += flash_->TrimMetaLogBefore(flash_->meta_log().back().seq);
  return t;
}

std::optional<OobScanResult> TryCheckpointRecovery(const NandFlash& flash,
                                                   uint64_t logical_pages,
                                                   uint64_t translation_pages) {
  const std::vector<MetaRecord>& log = flash.meta_log();
  size_t valid_count = 0;
  if (!ValidateMetaLog(log, &valid_count)) {
    return std::nullopt;
  }
  size_t ckpt_idx = valid_count;
  for (size_t i = 0; i < valid_count; ++i) {
    if (log[i].type == MetaRecordType::kCheckpoint) {
      ckpt_idx = i;
    }
  }
  if (ckpt_idx == valid_count) {
    return std::nullopt;  // Never checkpointed (or the only one tore).
  }
  CheckpointView ckpt;
  TPFTL_CHECK(ParseCheckpointPayload(log[ckpt_idx].payload, &ckpt));

  const FlashGeometry& g = flash.geometry();
  const double byte_read_us = g.page_read_us / static_cast<double>(g.page_size_bytes);
  OobScanResult r;
  r.data_ppn = SegmentedArray<Ppn>(logical_pages, kInvalidPpn, g.sparse_segment_pages);
  r.data_seq = SegmentedArray<uint64_t>(logical_pages, 0, g.sparse_segment_pages);
  r.trans_ppn.assign(translation_pages, kInvalidPtpn);
  r.trans_seq.assign(translation_pages, 0);
  r.blocks.resize(g.total_blocks);
  r.report.used_checkpoint = true;
  r.report.journal_records_replayed = valid_count - ckpt_idx - 1;

  // Reading and validating the log, the cumulative directory and the block
  // headers is sequential metadata I/O, billed byte-proportionally.
  uint64_t meta_bytes = 0;
  for (size_t i = 0; i < valid_count; ++i) {
    meta_bytes += log[i].size_bytes();
  }
  meta_bytes += translation_pages * kDirectoryEntryBytes;
  // Cumulative data directory (RAM-table FTLs; zero entries for the rest).
  meta_bytes += flash.checkpoint_data_entries() * kDirectoryEntryBytes;
  meta_bytes += g.total_blocks * kBlockHeaderBytes;
  r.report.checkpoint_bytes_read = meta_bytes;
  r.report.scan_time_us += static_cast<double>(meta_bytes) * byte_read_us;

  const auto consider_data = [&r](Lpn lpn, Ppn ppn, uint64_t seq) {
    if (seq > r.data_seq.Get(lpn)) {
      if (r.data_seq.Get(lpn) != 0) {
        ++r.report.conflict_copies;
      }
      r.data_ppn.Set(lpn, ppn);
      r.data_seq.Set(lpn, seq);
    } else if (r.data_ppn.Get(lpn) != ppn) {
      ++r.report.conflict_copies;
    }
  };
  const auto consider_trans = [&r](Vtpn vtpn, Ptpn ptpn, uint64_t seq) {
    if (seq > r.trans_seq[vtpn]) {
      if (r.trans_seq[vtpn] != 0) {
        ++r.report.conflict_copies;
      }
      r.trans_ppn[vtpn] = ptpn;
      r.trans_seq[vtpn] = seq;
    } else if (r.trans_ppn[vtpn] != ptpn) {
      ++r.report.conflict_copies;
    }
  };
  // A RAM-speed metadata entry is only a *claim* about a flash page; it
  // counts as a candidate iff the page's live OOB still matches the claim
  // (same program = same device-unique seq). Erased or reprogrammed pages
  // fail this and newer copies always appear via the journaled-block rescan.
  const auto verified = [&flash](Ppn ppn, uint64_t seq, uint64_t tag, OobKind kind) {
    return flash.StateOf(ppn) != PageState::kFree && flash.OobSeq(ppn) == seq &&
           flash.OobTag(ppn) == tag && flash.OobKindOf(ppn) == kind;
  };

  // 1. Pre-checkpoint translation winners: the cumulative directory.
  for (Vtpn vtpn = 0; vtpn < translation_pages; ++vtpn) {
    const Ptpn ptpn = flash.checkpoint_gtd_ppn(vtpn);
    if (ptpn == kInvalidPtpn) {
      continue;
    }
    const uint64_t seq = flash.checkpoint_gtd_seq(vtpn);
    if (verified(ptpn, seq, vtpn, OobKind::kTranslation)) {
      consider_trans(vtpn, ptpn, seq);
    }
  }

  // 2. Pre-checkpoint persisted data mappings: the device mirror. Mirror
  // entries name the newest *persisted* copy; by the unique-valid-copy
  // invariant a still-valid entry is its LPN's winner outright. The walk
  // skips unmaterialized segments, so sparse TB devices pay only for their
  // written footprint. (The mirror models the translation pages' content;
  // its bytes are not billed — a demand FTL reads translation pages lazily
  // after boot, not during it.)
  const SegmentedArray<Ppn>& mirror = flash.persisted_mirror();
  const uint64_t seg_size = mirror.segment_size();
  for (uint64_t s = mirror.NextMaterializedSegment(0); s < mirror.total_segments();
       s = mirror.NextMaterializedSegment(s + 1)) {
    const Lpn first = s * seg_size;
    const Lpn last = std::min(first + seg_size, logical_pages);
    for (Lpn lpn = first; lpn < last; ++lpn) {
      const Ppn ppn = mirror.Get(lpn);
      if (ppn == kInvalidPpn || flash.StateOf(ppn) != PageState::kValid) {
        continue;  // Unmapped, or superseded/trimmed after it was persisted.
      }
      if (flash.OobTag(ppn) == lpn && flash.OobKindOf(ppn) == OobKind::kData) {
        consider_data(lpn, ppn, flash.OobSeq(ppn));
      }
    }
  }

  // 2b. Pre-checkpoint data mappings of cumulative-data FTLs: the device's
  // cumulative data directory (the RAM-table twin of step 1). The walk skips
  // unmaterialized segments; the directory is empty for GTD-based FTLs.
  if (ckpt.cumulative_data()) {
    const SegmentedArray<Ppn>& dir = flash.checkpoint_data_mirror();
    const uint64_t dir_seg = dir.segment_size();
    for (uint64_t s = dir.NextMaterializedSegment(0); s < dir.total_segments();
         s = dir.NextMaterializedSegment(s + 1)) {
      const Lpn first = s * dir_seg;
      const Lpn last = std::min(first + dir_seg, logical_pages);
      for (Lpn lpn = first; lpn < last; ++lpn) {
        const Ppn ppn = dir.Get(lpn);
        if (ppn == kInvalidPpn) {
          continue;
        }
        const uint64_t seq = flash.checkpoint_data_seq(lpn);
        if (verified(ppn, seq, lpn, OobKind::kData)) {
          consider_data(lpn, ppn, seq);
        }
      }
    }
  }

  // 3. Dirty cached mappings at checkpoint time, replayed from the record.
  // An entry whose page was invalidated after the checkpoint still counts as
  // a candidate (exactly as a scan would see the readable invalid copy); the
  // final validity cross-check drops it like any other stale winner.
  // (Cumulative-data records fold into the directory step 2b already read;
  // their clear triples carry kInvalidPpn and are skipped here.)
  for (uint64_t i = 0; i < ckpt.dirty_count; ++i) {
    const uint64_t* triple = ckpt.dirty + 3 * i;
    const Lpn lpn = triple[0];
    const Ppn ppn = triple[1];
    const uint64_t seq = triple[2];
    TPFTL_CHECK_MSG(lpn < logical_pages, "checkpoint dirty LPN outside the logical space");
    if (ppn == kInvalidPpn) {
      continue;  // Cumulative clear triple — nothing to consider.
    }
    if (verified(ppn, seq, lpn, OobKind::kData)) {
      consider_data(lpn, ppn, seq);
    }
  }

  // 4. The dirty window: rescan the OOB of every block journaled since the
  // checkpoint — the only per-page flash reads of a checkpointed boot.
  std::vector<uint8_t> block_seen(g.total_blocks, 0);
  for (size_t i = ckpt_idx + 1; i < valid_count; ++i) {
    if (log[i].type != MetaRecordType::kBlockDirty) {
      continue;
    }
    const auto b = static_cast<BlockId>(log[i].payload[0]);
    TPFTL_CHECK(b < g.total_blocks);
    if (block_seen[b] != 0) {
      continue;
    }
    block_seen[b] = 1;
    ++r.report.blocks_rescanned;
    const Block blk = flash.block(b);
    // The whole block's OOB is reread (block-level FTLs program at home
    // offsets, so free pages can be interior) — the rescan stays
    // O(journaled blocks), not O(device).
    for (uint64_t off = 0; off < g.pages_per_block; ++off) {
      ++r.report.pages_scanned;
      r.report.scan_time_us += g.page_read_us;
      if (blk.StateOf(off) == PageState::kFree) {
        continue;
      }
      const Ppn ppn = g.PpnOf(b, off);
      const uint64_t seq = flash.OobSeq(ppn);
      const OobKind kind = flash.OobKindOf(ppn);
      if (seq == 0 || kind == OobKind::kNone) {
        ++r.report.torn_pages;
        continue;
      }
      const uint64_t tag = flash.OobTag(ppn);
      if (kind == OobKind::kData) {
        TPFTL_CHECK_MSG(tag < logical_pages, "data OOB tag outside the logical space");
        consider_data(tag, ppn, seq);
      } else {
        TPFTL_CHECK_MSG(tag < translation_pages, "translation OOB tag outside the GTD");
        consider_trans(tag, ppn, seq);
      }
    }
  }

  // 5. Block summaries straight from the device block headers — erase resets
  // them and torn programs never touch them, so they equal what a scan of
  // the readable pages would have summarized.
  for (BlockId b = 0; b < g.total_blocks; ++b) {
    OobScanResult::BlockSummary& summary = r.blocks[b];
    summary.programmed = g.pages_per_block - flash.block(b).free_pages();
    if (summary.programmed == 0) {
      continue;
    }
    summary.pool = flash.block_pool_kind(b);
    summary.max_seq = flash.block_newest_seq(b);
  }

  // 6. Final cross-checks, identical to ScanForRecovery's epilogue. Winners
  // only live in materialized segments, so the walk stays O(footprint).
  for (uint64_t s = r.data_ppn.NextMaterializedSegment(0);
       s < r.data_ppn.total_segments(); s = r.data_ppn.NextMaterializedSegment(s + 1)) {
    const Lpn first = s * r.data_ppn.segment_size();
    const Lpn last = std::min(first + r.data_ppn.segment_size(), logical_pages);
    for (Lpn lpn = first; lpn < last; ++lpn) {
      const Ppn winner = r.data_ppn.Get(lpn);
      if (winner == kInvalidPpn) {
        continue;
      }
      if (flash.StateOf(winner) != PageState::kValid) {
        r.data_ppn.Set(lpn, kInvalidPpn);
        r.data_seq.Set(lpn, 0);
        ++r.report.stale_winners_dropped;
      } else {
        ++r.report.data_mappings;
      }
    }
  }
  for (Vtpn vtpn = 0; vtpn < translation_pages; ++vtpn) {
    if (r.trans_ppn[vtpn] == kInvalidPtpn) {
      continue;
    }
    TPFTL_CHECK_MSG(flash.StateOf(r.trans_ppn[vtpn]) == PageState::kValid,
                    "newest translation page copy is not valid");
    ++r.report.translation_pages_found;
  }

  // Agreement cross-check doubles as the reconstruction's self-check: a
  // coverage bug (a winner the candidate sources missed) surfaces here as a
  // valid page that is not its tag's winner. Untouched blocks skip free.
  for (BlockId b = 0; b < g.total_blocks; ++b) {
    if (r.blocks[b].programmed == 0) {
      continue;
    }
    const Block blk = flash.block(b);
    for (uint64_t off = 0; off < g.pages_per_block; ++off) {
      if (blk.StateOf(off) != PageState::kValid) {
        continue;
      }
      const Ppn ppn = g.PpnOf(b, off);
      const uint64_t tag = flash.OobTag(ppn);
      if (flash.OobKindOf(ppn) == OobKind::kData) {
        TPFTL_CHECK_MSG(r.data_ppn.Get(tag) == ppn, "valid data page is not its LPN's newest copy");
      } else {
        TPFTL_CHECK_MSG(flash.OobKindOf(ppn) == OobKind::kTranslation && r.trans_ppn[tag] == ppn,
                        "valid page with unreadable OOB");
      }
    }
  }

  return r;
}

}  // namespace tpftl
