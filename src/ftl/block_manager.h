// Free-space management and GC victim selection.
//
// Flash blocks are partitioned dynamically into two pools (§4.1): data blocks
// and translation blocks. Each pool has one active block that absorbs new
// programs; retired (fully written) blocks become GC candidates. Victim
// selection is greedy (fewest valid pages), tracked with valid-count buckets
// so each pick is O(pages_per_block) instead of a full scan.
//
// All page programs and invalidations flow through this class so the buckets
// stay consistent with the NAND state; reads go straight to NandFlash.

#ifndef SRC_FTL_BLOCK_MANAGER_H_
#define SRC_FTL_BLOCK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "src/flash/nand.h"
#include "src/flash/types.h"

namespace tpftl {

enum class BlockPool : uint8_t { kNone = 0, kData = 1, kTranslation = 2 };

// GC victim-selection policy.
//
//   kGreedy      — fewest valid pages (the paper's setting; O(1) via
//                  valid-count buckets).
//   kCostBenefit — classic cost-benefit score (Kawaguchi et al.):
//                  maximize age * (1 - u) / (2u), where u is the valid
//                  fraction and age the time since the block last changed;
//                  prefers cold garbage, resists hot blocks about to gain
//                  more invalid pages.
//   kWearAware   — greedy, but blocks whose erase count exceeds the current
//                  minimum by more than a threshold are skipped while any
//                  alternative exists, bounding the wear spread.
enum class GcPolicy : uint8_t { kGreedy = 0, kCostBenefit = 1, kWearAware = 2 };

class BlockManager {
 public:
  // `gc_threshold` — GC is requested while the free-block count is at or
  // below this value. Caller drives the GC loop (it owns mapping updates).
  BlockManager(NandFlash* flash, uint64_t gc_threshold, GcPolicy policy = GcPolicy::kGreedy,
               uint64_t wear_spread_limit = 16);

  BlockManager(const BlockManager&) = delete;
  BlockManager& operator=(const BlockManager&) = delete;

  // Programs the next page of `pool`'s active block (allocating a fresh
  // active block from the free list when needed). Returns the flash latency.
  MicroSec Program(BlockPool pool, uint64_t oob_tag, Ppn* out_ppn);

  // Invalidates a valid page and updates victim bookkeeping.
  void Invalidate(Ppn ppn);

  // True when the caller must run garbage collection before more programs.
  bool NeedsGc() const { return free_blocks_.size() <= gc_threshold_; }

  // Victim per the configured policy, from either pool. Returns
  // kInvalidBlock when no candidate exists.
  BlockId PickVictim();
  // Victim restricted to one pool (used by tests and ablation experiments).
  BlockId PickVictim(BlockPool pool);

  // Erases `block` (all pages must be invalid/free) and returns it to the
  // free list — unless the erase consumed the block's endurance budget, in
  // which case the block is retired as bad and the usable pool shrinks.
  // Returns the erase latency.
  MicroSec EraseAndFree(BlockId block);

  uint64_t bad_block_count() const { return bad_blocks_; }

  BlockPool PoolOf(BlockId block) const;
  uint64_t free_block_count() const { return free_blocks_.size(); }
  uint64_t gc_threshold() const { return gc_threshold_; }
  GcPolicy policy() const { return policy_; }
  uint64_t pool_block_count(BlockPool pool) const;

  // Total free pages still programmable in a pool's active block plus the
  // shared free list (diagnostic; used by tests).
  uint64_t FreePagesUpperBound() const;

  NandFlash& flash() { return *flash_; }
  const NandFlash& flash() const { return *flash_; }

 private:
  struct ActiveBlock {
    BlockId id = kInvalidBlock;
  };

  void RetireIfFull(BlockPool pool);
  void BucketInsert(BlockId block);
  void BucketErase(BlockId block);
  BlockId AllocateFreeBlock(BlockPool pool);
  BlockId PickGreedy() const;
  BlockId PickCostBenefit() const;
  BlockId PickWearAware() const;

  NandFlash* flash_;
  uint64_t gc_threshold_;
  GcPolicy policy_;
  uint64_t wear_spread_limit_;
  uint64_t op_clock_ = 0;               // Logical time for cost-benefit age.
  std::vector<uint64_t> last_touched_;  // Per-block op_clock_ of last change.
  std::deque<BlockId> free_blocks_;
  std::vector<BlockPool> pool_of_;
  ActiveBlock active_data_;
  ActiveBlock active_trans_;
  // buckets_[v] = retired candidate blocks with exactly v valid pages.
  std::vector<std::unordered_set<BlockId>> buckets_;
  std::vector<bool> in_bucket_;
  mutable uint64_t min_bucket_hint_ = 0;
  uint64_t data_blocks_ = 0;
  uint64_t trans_blocks_ = 0;
  uint64_t bad_blocks_ = 0;
};

}  // namespace tpftl

#endif  // SRC_FTL_BLOCK_MANAGER_H_
