// Free-space management and GC victim selection.
//
// Flash blocks are partitioned dynamically into two pools (§4.1): data blocks
// and translation blocks. Each pool has one active block *per die* that
// absorbs new programs; retired (fully written) blocks become GC candidates.
// On a multi-die geometry the free list is split per die (a block's die is a
// pure function of its id, see FlashGeometry::DieOfBlock) and consecutive
// programs rotate round-robin across dies with space, so both data and
// translation pages stripe across the device and NandFlash's per-die
// timelines can overlap them. With one die everything collapses to the
// original single-free-list, single-active-block behavior bit-identically.
//
// Candidates are kept in valid-count buckets implemented as intrusive
// doubly-linked lists over flat per-block index arrays: an invalidation moves
// its block from bucket v to bucket v-1 with two unlink/link operations — no
// hashing, no node allocation (the former std::unordered_set buckets paid
// both on every host write). New candidates enter at the bucket head, so a
// bucket is ordered newest → oldest from the head; because every insertion
// happens with last_touched freshly advanced, within-bucket position order is
// also last_touched order (head = most recent, tail = oldest). Victim
// selection leans on that invariant:
//
//   kGreedy      — fewest valid pages (the paper's setting): first non-empty
//                  bucket at or above a lazily-advancing minimum hint, O(1)
//                  amortized. Ties break to the bucket tail — the oldest
//                  candidate — so equal-valid victims are collected FIFO.
//   kCostBenefit — classic cost-benefit score (Kawaguchi et al.): maximize
//                  age * (1 - u) / (2u). Within a bucket u is constant, so
//                  the bucket's best block is its oldest — the tail. One
//                  score evaluation per non-empty bucket instead of a full
//                  candidate scan.
//   kWearAware   — greedy, but within a bounded quality margin of the greedy
//                  choice the least-worn candidate is taken instead, provided
//                  its erase count stays within a threshold of the current
//                  candidate minimum. When every near-greedy candidate is
//                  over that cap, the least-worn candidate is collected
//                  instead (static leveling: its cold data migrates and the
//                  block rejoins the write rotation).
//                  The minimum is tracked incrementally via an erase-count
//                  histogram of the candidate set (erase counts are frozen
//                  while a block is a candidate), not recomputed by scanning
//                  every bucket.
//
// All page programs and invalidations flow through this class so the buckets
// stay consistent with the NAND state; reads go straight to NandFlash.

#ifndef SRC_FTL_BLOCK_MANAGER_H_
#define SRC_FTL_BLOCK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/flash/nand.h"
#include "src/flash/types.h"

namespace tpftl {

struct OobScanResult;

enum class BlockPool : uint8_t { kNone = 0, kData = 1, kTranslation = 2 };

// GC victim-selection policy (see the class comment for the mechanics).
enum class GcPolicy : uint8_t { kGreedy = 0, kCostBenefit = 1, kWearAware = 2 };

// Hot/cold stream and wear-leveling policy knobs. Everything defaults off:
// one data stream, free blocks allocated in FIFO order, no migration trigger
// — bit-identical to the pre-stream behavior.
struct BlockManagerOptions {
  // Open data blocks per die, one per temperature stream (0 = hottest).
  // Translation programs always use a single dedicated active block per die.
  uint32_t data_streams = 1;
  // Dynamic wear leveling: allocate the least-worn free block for hot data
  // and translation pages, the most-worn for cold data, instead of FIFO.
  bool dynamic_leveling = false;
  // Static wear leveling: expose a cold migration victim (the least-worn GC
  // candidate) once the device-max erase count runs `static_level_threshold`
  // ahead of the candidate minimum. The owning FTL drives the migration.
  bool static_leveling = false;
  uint64_t static_level_threshold = 64;
};

class BlockManager {
 public:
  // `gc_threshold` — GC is requested while the free-block count is at or
  // below this value. Caller drives the GC loop (it owns mapping updates).
  BlockManager(NandFlash* flash, uint64_t gc_threshold, GcPolicy policy = GcPolicy::kGreedy,
               uint64_t wear_spread_limit = 16, const BlockManagerOptions& options = {});

  BlockManager(const BlockManager&) = delete;
  BlockManager& operator=(const BlockManager&) = delete;

  // Programs the next page of `pool`'s active block (allocating a fresh
  // active block from the free list when needed). Returns the flash latency.
  // Injected program failures (flash/fault.h) are absorbed here: the ruined
  // page is left consumed-invalid and the program retries on the next page.
  // `stream` selects the temperature stream for data programs (< data_streams;
  // ignored for the translation pool).
  MicroSec Program(BlockPool pool, uint64_t oob_tag, Ppn* out_ppn, uint32_t stream = 0);

  // Invalidates a valid page and updates victim bookkeeping (an O(1)
  // intrusive-list move for bucketed blocks).
  void Invalidate(Ppn ppn);

  // True when the caller must run garbage collection before more programs.
  bool NeedsGc() const { return free_total_ <= gc_threshold_; }

  // True when some candidate holds at least one invalid page, i.e. a
  // collection can make net forward progress. When false, every candidate is
  // fully valid and no amount of GC can raise the free-block count — a state
  // tiny devices (or shards) reach when live data fills everything above the
  // GC threshold. Callers must bail out of their GC loop instead of grinding
  // fully-valid victims forever.
  bool HasReclaimableCandidate() const;

  // Victim per the configured policy, from either pool. Returns
  // kInvalidBlock when no candidate exists.
  BlockId PickVictim();
  // Victim restricted to one pool (used by tests and ablation experiments).
  BlockId PickVictim(BlockPool pool);

  // Erases `block` (all pages must be invalid/free) and returns it to the
  // free list — unless the erase consumed the block's endurance budget or
  // failed outright (injected fault), in which case the block is retired as
  // bad and the usable pool shrinks. Returns the erase latency.
  MicroSec EraseAndFree(BlockId block);

  uint64_t bad_block_count() const { return bad_blocks_; }

  // Rebuilds all bookkeeping (pools, actives, free list, candidate buckets,
  // wear histogram) from an OOB scan of the surviving flash state after a
  // power cut. The manager must be freshly constructed. Candidates re-enter
  // their buckets oldest-first by each block's newest page, preserving the
  // within-bucket age-order invariant victim selection relies on.
  void RecoverFromScan(const OobScanResult& scan);

  // Exhaustive structural self-check (bucket links, age order, histogram
  // and pool counters, free-list disjointness); CHECK-fails on violation,
  // returns true otherwise. Test support — O(total blocks).
  bool CheckInvariants() const;

  BlockPool PoolOf(BlockId block) const;
  uint64_t free_block_count() const { return free_total_; }
  // Free blocks currently queued for one die (diagnostic; used by tests).
  uint64_t free_block_count(uint32_t die) const { return free_by_die_[die].size(); }
  uint64_t gc_threshold() const { return gc_threshold_; }
  GcPolicy policy() const { return policy_; }
  uint64_t pool_block_count(BlockPool pool) const;

  // Total free pages still programmable in a pool's active block plus the
  // shared free list (diagnostic; used by tests).
  uint64_t FreePagesUpperBound() const;

  // Minimum erase count over the current candidate set (~0ULL when empty);
  // incrementally tracked, exposed for tests.
  uint64_t MinCandidateErase() const;

  // Snapshot of the candidate erase-count histogram (index = erase count).
  // Differential recovery tests recount this from flash and compare.
  const std::vector<uint32_t>& candidate_erase_histogram() const { return erase_hist_; }
  uint64_t candidate_count() const { return candidate_count_; }

  uint32_t data_streams() const { return options_.data_streams; }
  // Data pages programmed per temperature stream (size = data_streams).
  const std::vector<uint64_t>& stream_write_counts() const { return stream_writes_; }

  // True when static leveling is enabled and the device-max erase count has
  // pulled static_level_threshold ahead of the candidate minimum: cold data
  // is pinning a low-wear block out of the write rotation.
  bool StaticLevelWanted() const;
  // The migration victim for a static-leveling pass: the least-worn GC
  // candidate. kInvalidBlock when there is none.
  BlockId StaticLevelVictim() const { return LeastWornCandidate(); }
  uint64_t max_erase_seen() const { return max_erase_seen_; }

  NandFlash& flash() { return *flash_; }
  const NandFlash& flash() const { return *flash_; }

 private:
  struct ActiveBlock {
    BlockId id = kInvalidBlock;
  };

  // Sentinel bucket index for "not a candidate".
  static constexpr uint32_t kNotBucketed = ~0u;

  void RetireIfFull(BlockPool pool, uint32_t die, uint32_t stream);
  void BucketInsert(BlockId block);
  void BucketErase(BlockId block);
  // Unlink/link pair specialized for an invalidation's v → v-1 move.
  void BucketMove(BlockId block, uint64_t new_valid);
  void ListPushFront(uint64_t bucket, BlockId block);
  void ListUnlink(uint64_t bucket, BlockId block);
  // Data actives are indexed [stream * dies_ + die]; translation has a single
  // active per die (stream ignored).
  ActiveBlock& ActiveOf(BlockPool pool, uint32_t die, uint32_t stream) {
    return pool == BlockPool::kData ? active_data_[stream * dies_ + die] : active_trans_[die];
  }
  // Next die that can absorb a program for (`pool`, `stream`): round-robin
  // over dies with active-block space or a free block, so programs stripe.
  // With one die, returns 0 untouched (the legacy path). CHECK-fails when no
  // die has space.
  uint32_t PickProgramDie(BlockPool pool, uint32_t stream);
  // Prunes bad blocks off the die's free-list head; true if a block remains.
  bool DieHasFreeBlock(uint32_t die);
  BlockId AllocateFreeBlock(BlockPool pool, uint32_t die, uint32_t stream);
  // Position in the die's free deque to allocate from: front (FIFO) unless
  // dynamic leveling steers by wear — least-worn for hot/translation
  // allocations, most-worn for cold-stream data.
  uint64_t PickFreeIndex(const std::deque<BlockId>& free, BlockPool pool, uint32_t stream) const;
  BlockId PickGreedy() const;
  BlockId PickCostBenefit() const;
  BlockId PickWearAware() const;
  // Some candidate whose erase count equals the candidate minimum (the
  // wear-aware static-leveling fallback victim).
  BlockId LeastWornCandidate() const;

  NandFlash* flash_;
  uint64_t gc_threshold_;
  GcPolicy policy_;
  uint64_t wear_spread_limit_;
  BlockManagerOptions options_;
  uint32_t dies_;                       // geometry().total_dies(), cached.
  uint64_t op_clock_ = 0;               // Logical time for cost-benefit age.
  std::vector<uint64_t> last_touched_;  // Per-block op_clock_ of last change.
  std::vector<std::deque<BlockId>> free_by_die_;  // [die] → free blocks, id order.
  uint64_t free_total_ = 0;             // Sum over free_by_die_ sizes.
  std::vector<BlockPool> pool_of_;
  std::vector<ActiveBlock> active_data_;   // [stream * dies_ + die] → active data block.
  std::vector<ActiveBlock> active_trans_;  // [die] → active translation block.
  std::vector<uint32_t> next_die_data_;  // Round-robin cursors per stream (multi-die only).
  uint32_t next_die_trans_ = 0;
  std::vector<uint64_t> stream_writes_;  // [stream] → data pages programmed.
  uint64_t max_erase_seen_ = 0;  // Device-max erase count (static-level trigger).

  // Candidate buckets: head/tail per valid count, intrusive links per block.
  std::vector<BlockId> bucket_head_;   // [valid] → newest candidate.
  std::vector<BlockId> bucket_tail_;   // [valid] → oldest candidate.
  std::vector<BlockId> next_;          // Toward the tail (older).
  std::vector<BlockId> prev_;          // Toward the head (newer).
  std::vector<uint32_t> bucket_of_;    // Current bucket, or kNotBucketed.
  mutable uint64_t min_bucket_hint_ = 0;

  // Candidate erase-count histogram for the wear-aware minimum.
  std::vector<uint32_t> erase_hist_;
  mutable uint64_t min_erase_hint_ = 0;
  uint64_t candidate_count_ = 0;

  uint64_t data_blocks_ = 0;
  uint64_t trans_blocks_ = 0;
  uint64_t bad_blocks_ = 0;
};

}  // namespace tpftl

#endif  // SRC_FTL_BLOCK_MANAGER_H_
