// Shared machinery of every demand-based page-level FTL (§2.2).
//
// DemandFtl owns the block manager, the flash-resident mapping table
// (TranslationStore + GTD) and the garbage collector, and implements the
// host data path. Concrete FTLs (DFTL, CDFTL, S-FTL, TPFTL, Optimal) plug in
// their mapping-cache policy through four hooks:
//
//   Translate()           — produce the current PPN of an LPN, loading or
//                           evicting cache state and paying flash time.
//   CommitMapping()       — record a new LPN→PPN binding after a data write
//                           (the binding is dirty in the cache until written
//                           back; Optimal updates its RAM table directly).
//   GcUpdateCached()      — try to apply a GC-migration update in the cache
//                           ("GC hit", §3.1); returns false on a GC miss.
//   GcRewriteTranslation()— persist one translation page's worth of GC-miss
//                           updates (DFTL-style batching groups them per
//                           page; TPFTL additionally flushes that page's
//                           cached dirty entries, §4.4).
//
// The GC victim policy is greedy (fewest valid pages across both pools); a
// single collection migrates the victim's valid pages, applies the mapping
// updates, and erases the block. The loop continues while the free-block
// count is at or below the threshold.

#ifndef SRC_FTL_DEMAND_FTL_H_
#define SRC_FTL_DEMAND_FTL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/flash/nand.h"
#include "src/ftl/block_manager.h"
#include "src/ftl/checkpoint.h"
#include "src/ftl/ftl.h"
#include "src/ftl/heat.h"
#include "src/ftl/recovery.h"
#include "src/ftl/translation_store.h"

namespace tpftl {

// Construction environment shared by all FTLs.
struct FtlEnv {
  NandFlash* flash = nullptr;
  uint64_t logical_pages = 0;
  // Mapping-cache budget in bytes, *including* the always-resident GTD
  // (§5.1: cache = block-level table size + GTD size).
  uint64_t cache_bytes = 0;
  uint64_t gc_threshold = 8;
  GcPolicy gc_policy = GcPolicy::kGreedy;
  // kWearAware only: max erase-count spread tolerated before a victim is
  // skipped in favor of a less-worn alternative.
  uint64_t wear_spread_limit = 16;
  // Hot/cold write separation: open data blocks per temperature stream, fed
  // by a per-LPN update-frequency classifier (src/ftl/heat.h). 1 = off
  // (bit-identical to the single-stream behavior).
  uint32_t data_streams = 1;
  // Wear-leveling policy layer (both off by default for bit-identity):
  // dynamic steers free-block allocation by wear; static migrates cold data
  // out of low-erase blocks when the spread exceeds the threshold.
  bool dynamic_leveling = false;
  bool static_leveling = false;
  uint64_t static_level_threshold = 64;
  // Host writes between static-leveling spread checks.
  uint64_t static_level_interval = 1024;
  // When true, the FTL boots by scanning the surviving flash state (after a
  // power cut) instead of formatting it: mappings and block bookkeeping are
  // rebuilt from page OOB areas, and recovery_report() describes the result.
  bool recover_from_flash = false;
  // Checkpointed-recovery knobs (src/ftl/checkpoint.h). Disabled by default;
  // when enabled, a recover_from_flash boot replays the metadata journal
  // instead of scanning the device, falling back to the scan on corruption.
  CheckpointConfig checkpoint;
};

// The paper's cache budget for a given logical capacity: the size of a
// block-level FTL's mapping table (4 B per block) plus the GTD (4 B per
// translation page). 512 MB → 8.5 KiB; 16 GB → 272 KiB.
uint64_t PaperCacheBytes(const FlashGeometry& geometry, uint64_t logical_pages);

class DemandFtl : public Ftl {
 public:
  DemandFtl(const FtlEnv& env, bool uses_translation_store);

  MicroSec ReadPage(Lpn lpn) final;
  MicroSec WritePage(Lpn lpn) final;
  MicroSec TrimPage(Lpn lpn) final;

  // Idle-time GC (§2.1's FTL duties beyond the request path): collects
  // victims while free blocks sit below the soft watermark (twice the
  // foreground threshold) and the time budget lasts. Only victims with a
  // clear payoff (at most three-quarters valid) are taken — idle time should
  // not be burned grinding nearly-full blocks.
  MicroSec BackgroundGc(MicroSec budget_us) override;

  const AtStats& stats() const final { return stats_; }
  void ResetStats() override;

  bool worn_out() const final;
  std::vector<uint64_t> stream_write_counts() const final {
    return bm_.stream_write_counts();
  }

  // Budget available to cached mapping entries after the GTD's share.
  uint64_t entry_cache_budget_bytes() const { return entry_cache_budget_; }

  const NandFlash& flash() const { return *flash_; }
  const BlockManager& block_manager() const { return bm_; }
  const TranslationStore& translation_store() const { return store_; }
  uint64_t logical_pages() const { return logical_pages_; }

  const RecoveryReport* recovery_report() const final {
    return recovered_ ? &recovery_report_ : nullptr;
  }

  bool CheckInvariants() const override { return bm_.CheckInvariants(); }

  // Drains GTD deltas + dirty cached mappings into a kCheckpoint record and
  // trims the journal before it. The data path calls this when the scheduler
  // says a checkpoint is due; tests call it to pin a checkpoint at a known
  // instant. Requires env.checkpoint.enabled.
  MicroSec CommitCheckpoint();
  const CheckpointScheduler& checkpoint_scheduler() const { return ckpt_; }

  bool TestOnlySabotageDropCommits(Lpn lpn) final {
    sabotage_drop_commit_lpn_ = lpn;
    return true;
  }

 protected:
  // --- policy hooks -------------------------------------------------------
  virtual MicroSec Translate(Lpn lpn, bool is_write, Ppn* current) = 0;
  // Both may spend flash time (e.g. S-FTL evicting pages that inflated in
  // place); they return it so it lands in the request's cost.
  virtual MicroSec CommitMapping(Lpn lpn, Ppn new_ppn) = 0;
  virtual bool GcUpdateCached(Lpn lpn, Ppn new_ppn, MicroSec* extra_time) = 0;
  virtual MicroSec GcRewriteTranslation(Vtpn vtpn, std::vector<MappingUpdate>& updates);
  // Point-in-time dirty cached mappings for a checkpoint: every LPN→PPN
  // binding the cache holds that is not yet persisted to a translation page
  // (cached TRIMs as ppn == kInvalidPpn; the scheduler filters them).
  // Default: none. Optimal overrides with its full table — nothing of it is
  // ever persisted. Called during base construction for the boot checkpoint,
  // where the base default is exactly right: the cache is empty at format.
  virtual void CollectCheckpointDirty(std::vector<DirtyMapping>* /*out*/) {}
  // When true, a data-block collection migrates the victim's valid pages in
  // LPN order instead of physical offset order. The migrations all target the
  // active block (never the victim), so the orders are interchangeable;
  // LearnedFTL sorts so GC writes re-form model-friendly LPN→PPN runs.
  virtual bool GcMigrateSorted() const { return false; }
  // Called just before a collected data block is erased, after its valid
  // pages migrated and the mapping updates were applied. LearnedFTL uses it
  // to invalidate cached model segments whose predictions point into the
  // erased block — without it they linger until a failed verification evicts
  // them, wasting probe reads on aged devices.
  virtual void OnGcEraseDataBlock(BlockId victim) { (void)victim; }

  // --- services for subclasses -------------------------------------------
  BlockManager& bm() { return bm_; }
  TranslationStore& store() { return store_; }
  AtStats& mutable_stats() { return stats_; }
  // Runs garbage collection while the free-block level demands it.
  MicroSec RunGcIfNeeded();

  // For subclasses that bypass the TranslationStore (Optimal): the LPN→PPN
  // winners reconstructed by a recovery boot. Empty unless recover_from_flash
  // was set and uses_translation_store was false.
  const SegmentedArray<Ppn>& recovered_user_map() const { return recovered_user_map_; }

 private:
  void RecoverFromFlash(bool uses_translation_store);
  MicroSec MaybeCheckpoint() {
    if (!ckpt_.Due()) [[likely]] {
      return 0.0;
    }
    return CommitCheckpoint();
  }
  MicroSec CollectBlock(BlockId victim);
  MicroSec CollectDataBlock(BlockId victim);
  MicroSec CollectTranslationBlock(BlockId victim);
  // Static wear leveling: every static_level_interval host writes, when the
  // erase spread exceeds the threshold, collect the least-worn candidate so
  // its cold data migrates and the block rejoins the write rotation.
  MicroSec MaybeStaticLevel();
  // True when retirements have eaten the spare pool below the worst-case
  // free-block cost of one collection; collecting past this would deadlock.
  bool LowSpareMargin() const;
  // Temperature stream for a host write (updates heat) / a relocation (reads
  // heat without updating — relocation is not host activity).
  uint32_t WriteStream(Lpn lpn);
  uint32_t RelocateStream(Lpn lpn) const;

  NandFlash* flash_;
  BlockManager bm_;
  TranslationStore store_;
  CheckpointScheduler ckpt_;
  std::unique_ptr<HeatClassifier> heat_;  // Null when data_streams == 1.
  bool uses_translation_store_;
  AtStats stats_;
  uint64_t logical_pages_;
  uint64_t entry_cache_budget_ = 0;
  uint64_t static_level_interval_ = 0;  // 0 = static leveling off.
  uint64_t static_level_countdown_ = 0;
  bool worn_ = false;  // Latched by a GC pass that found no usable victim.
  bool recovered_ = false;
  RecoveryReport recovery_report_;
  SegmentedArray<Ppn> recovered_user_map_;
  Lpn sabotage_drop_commit_lpn_ = kInvalidLpn;  // See TestOnlySabotageDropCommits.
};

}  // namespace tpftl

#endif  // SRC_FTL_DEMAND_FTL_H_
