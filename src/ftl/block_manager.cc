#include "src/ftl/block_manager.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "src/ftl/recovery.h"
#include "src/obs/phase.h"
#include "src/util/assert.h"

namespace tpftl {

BlockManager::BlockManager(NandFlash* flash, uint64_t gc_threshold, GcPolicy policy,
                           uint64_t wear_spread_limit, const BlockManagerOptions& options)
    : flash_(flash),
      gc_threshold_(gc_threshold),
      policy_(policy),
      wear_spread_limit_(wear_spread_limit),
      options_(options),
      dies_(flash->geometry().total_dies()),
      last_touched_(flash->geometry().total_blocks, 0),
      free_by_die_(flash->geometry().total_dies()),
      pool_of_(flash->geometry().total_blocks, BlockPool::kNone),
      active_data_(static_cast<uint64_t>(options.data_streams) *
                   flash->geometry().total_dies()),
      active_trans_(flash->geometry().total_dies()),
      next_die_data_(options.data_streams, 0),
      stream_writes_(options.data_streams, 0),
      bucket_head_(flash->geometry().pages_per_block + 1, kInvalidBlock),
      bucket_tail_(flash->geometry().pages_per_block + 1, kInvalidBlock),
      next_(flash->geometry().total_blocks, kInvalidBlock),
      prev_(flash->geometry().total_blocks, kInvalidBlock),
      bucket_of_(flash->geometry().total_blocks, kNotBucketed) {
  TPFTL_CHECK(flash != nullptr);
  TPFTL_CHECK_MSG(options_.data_streams >= 1, "need at least one data stream");
  const uint64_t total = flash_->geometry().total_blocks;
  TPFTL_CHECK_MSG(total > gc_threshold + 2, "geometry too small for the GC threshold");
  for (BlockId b = 0; b < total; ++b) {
    max_erase_seen_ = std::max(max_erase_seen_, flash_->block(b).erase_count());
    if (flash_->IsBad(b)) {
      ++bad_blocks_;  // Factory-marked bad (FaultPlan::bad_blocks).
    } else {
      free_by_die_[flash_->geometry().DieOfBlock(b)].push_back(b);
      ++free_total_;
    }
  }
}

bool BlockManager::DieHasFreeBlock(uint32_t die) {
  // Skip blocks that went bad while queued (a plan installed mid-run).
  std::deque<BlockId>& free = free_by_die_[die];
  while (!free.empty() && flash_->IsBad(free.front())) {
    ++bad_blocks_;
    --free_total_;
    free.pop_front();
  }
  return !free.empty();
}

uint32_t BlockManager::PickProgramDie(BlockPool pool, uint32_t stream) {
  if (dies_ == 1) {
    return 0;  // Legacy single-die path: no cursor, no availability scan.
  }
  uint32_t& cursor = pool == BlockPool::kData ? next_die_data_[stream] : next_die_trans_;
  for (uint32_t i = 0; i < dies_; ++i) {
    const uint32_t die = (cursor + i) & (dies_ - 1);
    const ActiveBlock& active = ActiveOf(pool, die, stream);
    if ((active.id != kInvalidBlock && flash_->block(active.id).HasFreePage()) ||
        DieHasFreeBlock(die)) {
      cursor = (die + 1) & (dies_ - 1);
      return die;
    }
  }
  TPFTL_CHECK_MSG(false, "flash out of free blocks — GC deadlock");
  return 0;
}

uint64_t BlockManager::PickFreeIndex(const std::deque<BlockId>& free, BlockPool pool,
                                     uint32_t stream) const {
  if (!options_.dynamic_leveling) {
    return 0;  // Legacy FIFO order, bit-identical to the pre-leveling path.
  }
  // Hot data and translation pages will be invalidated soon: give them the
  // least-worn free block so its erase counter catches up. The coldest data
  // stream gets the most-worn block, which then rests under data that is
  // rarely rewritten. Intermediate streams stay FIFO.
  const bool hottest = pool == BlockPool::kTranslation || stream == 0;
  const bool coldest =
      pool == BlockPool::kData && options_.data_streams > 1 && stream == options_.data_streams - 1;
  if (!hottest && !coldest) {
    return 0;
  }
  uint64_t best = 0;
  uint64_t best_erase = flash_->block(free[0]).erase_count();
  for (uint64_t i = 1; i < free.size(); ++i) {
    const uint64_t erase = flash_->block(free[i]).erase_count();
    const bool better = hottest ? erase < best_erase : erase > best_erase;
    if (better) {
      best = i;
      best_erase = erase;
    }
  }
  return best;
}

BlockId BlockManager::AllocateFreeBlock(BlockPool pool, uint32_t die, uint32_t stream) {
  TPFTL_CHECK_MSG(DieHasFreeBlock(die), "flash out of free blocks — GC deadlock");
  std::deque<BlockId>& free = free_by_die_[die];
  const uint64_t index = PickFreeIndex(free, pool, stream);
  const BlockId block = free[index];
  free.erase(free.begin() + static_cast<std::ptrdiff_t>(index));
  --free_total_;
  pool_of_[block] = pool;
  if (pool == BlockPool::kData) {
    ++data_blocks_;
  } else {
    ++trans_blocks_;
  }
  return block;
}

MicroSec BlockManager::Program(BlockPool pool, uint64_t oob_tag, Ppn* out_ppn, uint32_t stream) {
  TPFTL_DCHECK(pool != BlockPool::kNone);
  TPFTL_DCHECK(pool != BlockPool::kData || stream < options_.data_streams);
  const OobKind kind = pool == BlockPool::kData ? OobKind::kData : OobKind::kTranslation;
  MicroSec t = 0.0;
  for (;;) {
    const uint32_t die = PickProgramDie(pool, stream);
    ActiveBlock& active = ActiveOf(pool, die, stream);
    if (active.id == kInvalidBlock || !flash_->block(active.id).HasFreePage()) {
      RetireIfFull(pool, die, stream);
      active.id = AllocateFreeBlock(pool, die, stream);
    }
    Ppn ppn = kInvalidPpn;
    t += flash_->ProgramPage(active.id, oob_tag, &ppn, kind);
    last_touched_[active.id] = ++op_clock_;
    RetireIfFull(pool, die, stream);
    if (ppn != kInvalidPpn) [[likely]] {
      if (pool == BlockPool::kData) {
        ++stream_writes_[stream];
      }
      if (out_ppn != nullptr) {
        *out_ppn = ppn;
      }
      return t;
    }
    // Injected program failure: the page was consumed as unreadable; retry
    // on the next page (possibly of a freshly allocated block, and on a
    // multi-die device possibly on the next die in the rotation).
  }
}

void BlockManager::RetireIfFull(BlockPool pool, uint32_t die, uint32_t stream) {
  ActiveBlock& active = ActiveOf(pool, die, stream);
  if (active.id != kInvalidBlock && !flash_->block(active.id).HasFreePage()) {
    BucketInsert(active.id);
    active.id = kInvalidBlock;
  }
}

void BlockManager::Invalidate(Ppn ppn) {
  const BlockId block = flash_->geometry().BlockOf(ppn);
  flash_->InvalidatePage(ppn);
  last_touched_[block] = ++op_clock_;
  if (bucket_of_[block] != kNotBucketed) {
    BucketMove(block, flash_->block(block).valid_pages());
  }
}

void BlockManager::ListPushFront(uint64_t bucket, BlockId block) {
  const BlockId head = bucket_head_[bucket];
  // Within-bucket invariant: entrants arrive in last_touched order, so the
  // list stays sorted newest (head) → oldest (tail). PickCostBenefit's
  // tail-only scoring depends on this.
  TPFTL_DCHECK(head == kInvalidBlock || last_touched_[block] >= last_touched_[head]);
  next_[block] = head;
  prev_[block] = kInvalidBlock;
  if (head != kInvalidBlock) {
    prev_[head] = block;
  } else {
    bucket_tail_[bucket] = block;
  }
  bucket_head_[bucket] = block;
  bucket_of_[block] = static_cast<uint32_t>(bucket);
}

void BlockManager::ListUnlink(uint64_t bucket, BlockId block) {
  const BlockId p = prev_[block];
  const BlockId n = next_[block];
  if (p != kInvalidBlock) {
    next_[p] = n;
  } else {
    bucket_head_[bucket] = n;
  }
  if (n != kInvalidBlock) {
    prev_[n] = p;
  } else {
    bucket_tail_[bucket] = p;
  }
  bucket_of_[block] = kNotBucketed;
}

void BlockManager::BucketInsert(BlockId block) {
  TPFTL_DCHECK(bucket_of_[block] == kNotBucketed);
  const uint64_t valid = flash_->block(block).valid_pages();
  ListPushFront(valid, block);
  min_bucket_hint_ = std::min(min_bucket_hint_, valid);
  const uint64_t erase = flash_->block(block).erase_count();
  if (erase >= erase_hist_.size()) {
    erase_hist_.resize(erase + 1, 0);
  }
  ++erase_hist_[erase];
  min_erase_hint_ = std::min(min_erase_hint_, erase);
  ++candidate_count_;
}

void BlockManager::BucketErase(BlockId block) {
  const uint32_t bucket = bucket_of_[block];
  TPFTL_DCHECK(bucket != kNotBucketed);
  ListUnlink(bucket, block);
  const uint64_t erase = flash_->block(block).erase_count();
  TPFTL_DCHECK(erase < erase_hist_.size() && erase_hist_[erase] > 0);
  --erase_hist_[erase];
  --candidate_count_;
}

void BlockManager::BucketMove(BlockId block, uint64_t new_valid) {
  // Invalidation move: erase counts are unchanged, so the histogram stays
  // put; only the two list splices and the min-bucket hint are touched.
  const uint32_t bucket = bucket_of_[block];
  TPFTL_DCHECK(bucket != kNotBucketed);
  ListUnlink(bucket, block);
  ListPushFront(new_valid, block);
  min_bucket_hint_ = std::min(min_bucket_hint_, new_valid);
}

bool BlockManager::HasReclaimableCandidate() const {
  // Same bucket walk as PickGreedy, but stop short of the fully-valid
  // bucket: a candidate there yields zero net pages when collected.
  const uint64_t full = flash_->geometry().pages_per_block;
  for (uint64_t v = min_bucket_hint_; v < full && v < bucket_tail_.size(); ++v) {
    if (bucket_tail_[v] != kInvalidBlock) {
      min_bucket_hint_ = v;
      return true;
    }
  }
  return false;
}

BlockId BlockManager::PickVictim() {
  obs::CountGcVictimScan();
  switch (policy_) {
    case GcPolicy::kGreedy:
      return PickGreedy();
    case GcPolicy::kCostBenefit:
      return PickCostBenefit();
    case GcPolicy::kWearAware:
      return PickWearAware();
  }
  return kInvalidBlock;
}

BlockId BlockManager::PickGreedy() const {
  // Tie-break among equal-valid candidates: the oldest entrant (the tail).
  // Deterministic, and consistent with cost-benefit's age preference.
  for (uint64_t v = min_bucket_hint_; v < bucket_tail_.size(); ++v) {
    if (bucket_tail_[v] != kInvalidBlock) {
      min_bucket_hint_ = v;
      return bucket_tail_[v];
    }
  }
  return kInvalidBlock;
}

BlockId BlockManager::PickCostBenefit() const {
  // Score = age * (1 - u) / (2u); collecting costs reading/writing the valid
  // fraction u twice (read + rewrite) and benefits (1 - u) free pages.
  // Within a bucket all blocks share u, so the oldest (max age) dominates —
  // and the within-bucket ordering invariant makes that the tail. One
  // candidate per non-empty bucket suffices.
  BlockId best = kInvalidBlock;
  double best_score = -1.0;
  const double per_block = static_cast<double>(flash_->geometry().pages_per_block);
  for (uint64_t v = 0; v < bucket_tail_.size(); ++v) {
    const BlockId block = bucket_tail_[v];
    if (block == kInvalidBlock) {
      continue;
    }
    const double u = static_cast<double>(v) / per_block;
    const double age = static_cast<double>(op_clock_ - last_touched_[block]) + 1.0;
    const double score = u == 0.0 ? age * 1e9 : age * (1.0 - u) / (2.0 * u);
    if (score > best_score) {
      best_score = score;
      best = block;
    }
  }
  return best;
}

uint64_t BlockManager::MinCandidateErase() const {
  if (candidate_count_ == 0) {
    return ~0ULL;
  }
  // The hint only advances: it is lowered eagerly on insert and invalidated
  // upward by removals, whose cost this scan amortizes.
  while (min_erase_hint_ < erase_hist_.size() && erase_hist_[min_erase_hint_] == 0) {
    ++min_erase_hint_;
  }
  TPFTL_DCHECK(min_erase_hint_ < erase_hist_.size());
  return min_erase_hint_;
}

BlockId BlockManager::PickWearAware() const {
  // Greedy, but refuse to grind down blocks that are already far ahead of
  // the pack in erase count: within a bounded quality margin of the greedy
  // choice, take the least-worn candidate instead. Unbounded substitution
  // can make a collection consume more free pages (migrations + mapping
  // writebacks) than the erase recovers, so the quality sacrifice is capped
  // at pages_per_block / 8 extra valid pages, and a substitute must stay
  // within wear_spread_limit of the candidate minimum; past that, survival
  // beats wear leveling and the greedy victim is taken.
  const BlockId greedy = PickGreedy();
  if (greedy == kInvalidBlock) {
    return kInvalidBlock;
  }
  const uint64_t min_erase = MinCandidateErase();
  const uint64_t greedy_valid = flash_->block(greedy).valid_pages();
  const uint64_t margin = flash_->geometry().pages_per_block / 8;
  BlockId best = kInvalidBlock;
  uint64_t best_erase = min_erase + wear_spread_limit_ + 1;  // Exclusive cap.
  for (uint64_t v = greedy_valid; v <= greedy_valid + margin && v < bucket_tail_.size(); ++v) {
    for (BlockId block = bucket_tail_[v]; block != kInvalidBlock; block = prev_[block]) {
      const uint64_t erase = flash_->block(block).erase_count();
      if (erase < best_erase) {
        if (erase == min_erase) {
          return block;  // Cannot do better; stop scanning.
        }
        best = block;
        best_erase = erase;
      }
    }
  }
  if (best != kInvalidBlock) {
    return best;
  }
  // Static-leveling fallback: every near-greedy candidate is over the wear
  // cap, which means the write-hot blocks have pulled far ahead of some cold
  // candidate pinning the minimum. Collect that least-worn block instead —
  // migrating its (typically fully valid) data costs a block's worth of page
  // moves, but rotates cold blocks into service and advances the candidate
  // minimum, which is the only way victim selection alone can bound the
  // spread. The linear scan below is noise next to that migration cost.
  return LeastWornCandidate();
}

BlockId BlockManager::LeastWornCandidate() const {
  const uint64_t min_erase = MinCandidateErase();
  for (uint64_t v = 0; v < bucket_tail_.size(); ++v) {
    for (BlockId block = bucket_tail_[v]; block != kInvalidBlock; block = prev_[block]) {
      if (flash_->block(block).erase_count() == min_erase) {
        return block;
      }
    }
  }
  return kInvalidBlock;  // Unreachable while any candidate exists.
}

BlockId BlockManager::PickVictim(BlockPool pool) {
  for (uint64_t v = 0; v < bucket_tail_.size(); ++v) {
    for (BlockId block = bucket_tail_[v]; block != kInvalidBlock; block = prev_[block]) {
      if (pool_of_[block] == pool) {
        return block;
      }
    }
  }
  return kInvalidBlock;
}

MicroSec BlockManager::EraseAndFree(BlockId block) {
  TPFTL_CHECK(block < pool_of_.size());
  TPFTL_CHECK_MSG(pool_of_[block] != BlockPool::kNone, "erase of an unallocated block");
  if (bucket_of_[block] != kNotBucketed) {
    BucketErase(block);
  }
  const MicroSec t = flash_->EraseBlock(block);
  max_erase_seen_ = std::max(max_erase_seen_, flash_->block(block).erase_count());
  if (pool_of_[block] == BlockPool::kData) {
    --data_blocks_;
  } else {
    --trans_blocks_;
  }
  pool_of_[block] = BlockPool::kNone;
  if (flash_->IsBad(block) || flash_->IsWornOut(block)) {
    // Failed erase or exhausted endurance: retired, never returned to the
    // free pool. (A failed erase leaves the block's garbage in place; its
    // pages are all invalid, so nothing is lost.)
    ++bad_blocks_;
  } else {
    free_by_die_[flash_->geometry().DieOfBlock(block)].push_back(block);
    ++free_total_;
  }
  return t;
}

bool BlockManager::StaticLevelWanted() const {
  if (!options_.static_leveling || candidate_count_ == 0) {
    return false;
  }
  const uint64_t min_erase = MinCandidateErase();
  return max_erase_seen_ >= min_erase + options_.static_level_threshold;
}

BlockPool BlockManager::PoolOf(BlockId block) const {
  TPFTL_CHECK(block < pool_of_.size());
  return pool_of_[block];
}

uint64_t BlockManager::pool_block_count(BlockPool pool) const {
  return pool == BlockPool::kData ? data_blocks_ : trans_blocks_;
}

void BlockManager::RecoverFromScan(const OobScanResult& scan) {
  const uint64_t total = flash_->geometry().total_blocks;
  const uint64_t per_block = flash_->geometry().pages_per_block;
  TPFTL_CHECK(scan.blocks.size() == total);
  TPFTL_CHECK_MSG(candidate_count_ == 0 && data_blocks_ == 0 && trans_blocks_ == 0,
                  "recovery into a block manager that already allocated");

  for (std::deque<BlockId>& free : free_by_die_) {
    free.clear();
  }
  free_total_ = 0;
  bad_blocks_ = 0;

  // Classify. Pool guesses come from the readable pages' OOB kind; a block
  // holding only torn pages defaults to the data pool (it only ever held
  // garbage, so the guess is consequence-free).
  std::vector<BlockId> allocated;
  for (BlockId b = 0; b < total; ++b) {
    max_erase_seen_ = std::max(max_erase_seen_, flash_->block(b).erase_count());
    if (flash_->IsBad(b)) {
      ++bad_blocks_;
      continue;
    }
    if (scan.blocks[b].programmed == 0) {
      if (flash_->IsWornOut(b)) {
        ++bad_blocks_;
      } else {
        free_by_die_[flash_->geometry().DieOfBlock(b)].push_back(b);
        ++free_total_;
      }
      continue;
    }
    allocated.push_back(b);
  }

  // Bucket entrants must arrive oldest-first so the within-bucket order ==
  // last-touched order invariant holds; order blocks by their newest page.
  std::sort(allocated.begin(), allocated.end(), [&scan](BlockId a, BlockId b) {
    return scan.blocks[a].max_seq != scan.blocks[b].max_seq
               ? scan.blocks[a].max_seq < scan.blocks[b].max_seq
               : a < b;
  });

  // The newest partially-written blocks of each (pool, die) resume as that
  // die's active blocks — one per data stream (newest partial → stream 0,
  // the hottest), one for translation; every other allocated block becomes a
  // GC candidate. (Normal operation leaves at most data_streams + 1 partial
  // blocks per die — the actives at the cut — but recovery tolerates more;
  // extra partials are bucketed, and GC simply skips their free pages. With
  // one stream this reduces exactly to the legacy newest-partial-wins rule.)
  std::vector<std::vector<BlockId>> data_partials(dies_);  // Ascending seq.
  std::vector<BlockId> active_trans(dies_, kInvalidBlock);
  for (const BlockId b : allocated) {  // Ascending seq: the last partial wins.
    if (scan.blocks[b].programmed == per_block) {
      continue;
    }
    const uint32_t die = flash_->geometry().DieOfBlock(b);
    if (scan.blocks[b].pool == OobKind::kTranslation) {
      active_trans[die] = b;
    } else {
      data_partials[die].push_back(b);
    }
  }
  std::vector<uint32_t> data_stream_of(total, kNotBucketed);
  for (uint32_t die = 0; die < dies_; ++die) {
    const std::vector<BlockId>& partials = data_partials[die];
    const uint64_t take = std::min<uint64_t>(partials.size(), options_.data_streams);
    for (uint64_t i = 0; i < take; ++i) {
      data_stream_of[partials[partials.size() - 1 - i]] = static_cast<uint32_t>(i);
    }
  }

  for (const BlockId b : allocated) {
    const BlockPool pool =
        scan.blocks[b].pool == OobKind::kTranslation ? BlockPool::kTranslation : BlockPool::kData;
    pool_of_[b] = pool;
    if (pool == BlockPool::kData) {
      ++data_blocks_;
    } else {
      ++trans_blocks_;
    }
    last_touched_[b] = ++op_clock_;
    const uint32_t die = flash_->geometry().DieOfBlock(b);
    if (pool == BlockPool::kData && data_stream_of[b] != kNotBucketed) {
      ActiveOf(BlockPool::kData, die, data_stream_of[b]).id = b;
    } else if (b == active_trans[die]) {
      active_trans_[die].id = b;
    } else {
      BucketInsert(b);
    }
  }
}

bool BlockManager::CheckInvariants() const {
  const uint64_t total = flash_->geometry().total_blocks;
  std::vector<char> seen(total, 0);

  // Bucket lists: membership, link symmetry, per-bucket valid counts, and
  // the head-newest → tail-oldest age order.
  uint64_t bucketed = 0;
  for (uint64_t v = 0; v < bucket_head_.size(); ++v) {
    uint64_t prev_touch = ~0ULL;
    for (BlockId b = bucket_head_[v]; b != kInvalidBlock; b = next_[b]) {
      TPFTL_CHECK_MSG(bucket_of_[b] == v, "bucket index disagrees with list membership");
      TPFTL_CHECK_MSG(pool_of_[b] != BlockPool::kNone, "bucketed block has no pool");
      TPFTL_CHECK_MSG(flash_->block(b).valid_pages() == v, "bucket != valid-page count");
      TPFTL_CHECK_MSG(last_touched_[b] <= prev_touch, "bucket not in age order");
      prev_touch = last_touched_[b];
      TPFTL_CHECK_MSG(!seen[b], "block linked twice");
      seen[b] = 1;
      ++bucketed;
      if (prev_[b] == kInvalidBlock) {
        TPFTL_CHECK(bucket_head_[v] == b);
      } else {
        TPFTL_CHECK(next_[prev_[b]] == b);
      }
      if (next_[b] == kInvalidBlock) {
        TPFTL_CHECK(bucket_tail_[v] == b);
      } else {
        TPFTL_CHECK(prev_[next_[b]] == b);
      }
    }
  }
  TPFTL_CHECK_MSG(bucketed == candidate_count_, "candidate count out of sync");

  uint64_t hist_total = 0;
  for (const uint32_t count : erase_hist_) {
    hist_total += count;
  }
  TPFTL_CHECK_MSG(hist_total == candidate_count_, "erase histogram out of sync");

  for (const std::vector<ActiveBlock>* actives : {&active_data_, &active_trans_}) {
    for (uint64_t i = 0; i < actives->size(); ++i) {
      const BlockId id = (*actives)[i].id;
      if (id == kInvalidBlock) {
        continue;
      }
      const uint32_t die = static_cast<uint32_t>(i % dies_);  // [stream * dies_ + die] layout.
      TPFTL_CHECK_MSG(flash_->geometry().DieOfBlock(id) == die,
                      "active block filed under the wrong die");
      TPFTL_CHECK_MSG(pool_of_[id] != BlockPool::kNone, "active block has no pool");
      TPFTL_CHECK_MSG(bucket_of_[id] == kNotBucketed, "active block is bucketed");
      TPFTL_CHECK_MSG(!seen[id], "active block double-tracked");
      seen[id] = 1;
    }
  }
  uint64_t free_seen = 0;
  for (uint32_t die = 0; die < dies_; ++die) {
    for (const BlockId b : free_by_die_[die]) {
      TPFTL_CHECK_MSG(flash_->geometry().DieOfBlock(b) == die,
                      "free block queued on the wrong die");
      TPFTL_CHECK_MSG(pool_of_[b] == BlockPool::kNone, "free block has a pool");
      TPFTL_CHECK_MSG(bucket_of_[b] == kNotBucketed, "free block is bucketed");
      TPFTL_CHECK_MSG(!seen[b], "free block double-tracked");
      seen[b] = 1;
      ++free_seen;
    }
  }
  TPFTL_CHECK_MSG(free_seen == free_total_, "free-block total out of sync");

  // Pool counters, and page-state counter consistency per block.
  uint64_t data = 0;
  uint64_t trans = 0;
  const uint64_t per_block = flash_->geometry().pages_per_block;
  for (BlockId b = 0; b < total; ++b) {
    data += pool_of_[b] == BlockPool::kData ? 1 : 0;
    trans += pool_of_[b] == BlockPool::kTranslation ? 1 : 0;
    TPFTL_CHECK_MSG(pool_of_[b] == BlockPool::kNone || seen[b],
                    "allocated block is neither active nor a candidate");
    const Block blk = flash_->block(b);
    uint64_t valid = 0;
    uint64_t programmed = 0;
    for (uint64_t off = 0; off < per_block; ++off) {
      const PageState state = blk.StateOf(off);
      programmed += state != PageState::kFree ? 1 : 0;
      valid += state == PageState::kValid ? 1 : 0;
    }
    TPFTL_CHECK_MSG(valid == blk.valid_pages(), "valid counter out of sync with states");
    TPFTL_CHECK_MSG(programmed == per_block - blk.free_pages(),
                    "programmed counter out of sync with states");
  }
  TPFTL_CHECK_MSG(data == data_blocks_ && trans == trans_blocks_, "pool counters out of sync");
  return true;
}

uint64_t BlockManager::FreePagesUpperBound() const {
  const uint64_t per_block = flash_->geometry().pages_per_block;
  uint64_t total = free_total_ * per_block;
  for (const std::vector<ActiveBlock>* actives : {&active_data_, &active_trans_}) {
    for (const ActiveBlock& active : *actives) {
      if (active.id != kInvalidBlock) {
        total += flash_->block(active.id).free_pages();
      }
    }
  }
  return total;
}

}  // namespace tpftl
