#include "src/ftl/block_manager.h"

#include <algorithm>

#include "src/util/assert.h"

namespace tpftl {

BlockManager::BlockManager(NandFlash* flash, uint64_t gc_threshold, GcPolicy policy,
                           uint64_t wear_spread_limit)
    : flash_(flash),
      gc_threshold_(gc_threshold),
      policy_(policy),
      wear_spread_limit_(wear_spread_limit),
      last_touched_(flash->geometry().total_blocks, 0),
      pool_of_(flash->geometry().total_blocks, BlockPool::kNone),
      buckets_(flash->geometry().pages_per_block + 1),
      in_bucket_(flash->geometry().total_blocks, false) {
  TPFTL_CHECK(flash != nullptr);
  const uint64_t total = flash_->geometry().total_blocks;
  TPFTL_CHECK_MSG(total > gc_threshold + 2, "geometry too small for the GC threshold");
  for (BlockId b = 0; b < total; ++b) {
    free_blocks_.push_back(b);
  }
}

BlockId BlockManager::AllocateFreeBlock(BlockPool pool) {
  TPFTL_CHECK_MSG(!free_blocks_.empty(), "flash out of free blocks — GC deadlock");
  const BlockId block = free_blocks_.front();
  free_blocks_.pop_front();
  pool_of_[block] = pool;
  if (pool == BlockPool::kData) {
    ++data_blocks_;
  } else {
    ++trans_blocks_;
  }
  return block;
}

MicroSec BlockManager::Program(BlockPool pool, uint64_t oob_tag, Ppn* out_ppn) {
  TPFTL_CHECK(pool != BlockPool::kNone);
  ActiveBlock& active = pool == BlockPool::kData ? active_data_ : active_trans_;
  if (active.id == kInvalidBlock || !flash_->block(active.id).HasFreePage()) {
    RetireIfFull(pool);
    active.id = AllocateFreeBlock(pool);
  }
  const MicroSec t = flash_->ProgramPage(active.id, oob_tag, out_ppn);
  last_touched_[active.id] = ++op_clock_;
  RetireIfFull(pool);
  return t;
}

void BlockManager::RetireIfFull(BlockPool pool) {
  ActiveBlock& active = pool == BlockPool::kData ? active_data_ : active_trans_;
  if (active.id != kInvalidBlock && !flash_->block(active.id).HasFreePage()) {
    BucketInsert(active.id);
    active.id = kInvalidBlock;
  }
}

void BlockManager::Invalidate(Ppn ppn) {
  const BlockId block = flash_->geometry().BlockOf(ppn);
  const bool bucketed = in_bucket_[block];
  if (bucketed) {
    BucketErase(block);
  }
  flash_->InvalidatePage(ppn);
  last_touched_[block] = ++op_clock_;
  if (bucketed) {
    BucketInsert(block);
  }
}

void BlockManager::BucketInsert(BlockId block) {
  const uint64_t valid = flash_->block(block).valid_pages();
  TPFTL_DCHECK(!in_bucket_[block]);
  buckets_[valid].insert(block);
  in_bucket_[block] = true;
  min_bucket_hint_ = std::min(min_bucket_hint_, valid);
}

void BlockManager::BucketErase(BlockId block) {
  const uint64_t valid = flash_->block(block).valid_pages();
  TPFTL_DCHECK(in_bucket_[block]);
  const size_t erased = buckets_[valid].erase(block);
  TPFTL_CHECK(erased == 1);
  in_bucket_[block] = false;
}

BlockId BlockManager::PickVictim() {
  switch (policy_) {
    case GcPolicy::kGreedy:
      return PickGreedy();
    case GcPolicy::kCostBenefit:
      return PickCostBenefit();
    case GcPolicy::kWearAware:
      return PickWearAware();
  }
  return kInvalidBlock;
}

BlockId BlockManager::PickGreedy() const {
  for (uint64_t v = min_bucket_hint_; v < buckets_.size(); ++v) {
    if (!buckets_[v].empty()) {
      min_bucket_hint_ = v;
      return *buckets_[v].begin();
    }
  }
  return kInvalidBlock;
}

BlockId BlockManager::PickCostBenefit() const {
  // Score = age * (1 - u) / (2u); collecting costs reading/writing the valid
  // fraction u twice (read + rewrite) and benefits (1 - u) free pages.
  BlockId best = kInvalidBlock;
  double best_score = -1.0;
  const double per_block = static_cast<double>(flash_->geometry().pages_per_block);
  for (uint64_t v = 0; v < buckets_.size(); ++v) {
    for (const BlockId block : buckets_[v]) {
      const double u = static_cast<double>(v) / per_block;
      const double age = static_cast<double>(op_clock_ - last_touched_[block]) + 1.0;
      const double score = u == 0.0 ? age * 1e9 : age * (1.0 - u) / (2.0 * u);
      if (score > best_score) {
        best_score = score;
        best = block;
      }
    }
  }
  return best;
}

BlockId BlockManager::PickWearAware() const {
  // Greedy, but refuse to grind down blocks that are already far ahead of
  // the pack in erase count — as long as the substitute victim is not much
  // worse than the greedy choice. Unbounded substitution can make a
  // collection consume more free pages (migrations + mapping writebacks)
  // than the erase recovers, so the quality sacrifice is capped at
  // pages_per_block / 8 extra valid pages; past that, survival beats wear
  // leveling and the greedy victim is taken.
  uint64_t min_erase = ~0ULL;
  for (uint64_t v = 0; v < buckets_.size(); ++v) {
    for (const BlockId block : buckets_[v]) {
      min_erase = std::min(min_erase, flash_->block(block).erase_count());
    }
  }
  const BlockId greedy = PickGreedy();
  if (greedy == kInvalidBlock) {
    return kInvalidBlock;
  }
  const uint64_t greedy_valid = flash_->block(greedy).valid_pages();
  const uint64_t margin = flash_->geometry().pages_per_block / 8;
  for (uint64_t v = greedy_valid; v <= greedy_valid + margin && v < buckets_.size(); ++v) {
    for (const BlockId block : buckets_[v]) {
      if (flash_->block(block).erase_count() <= min_erase + wear_spread_limit_) {
        return block;
      }
    }
  }
  return greedy;
}

BlockId BlockManager::PickVictim(BlockPool pool) {
  for (uint64_t v = 0; v < buckets_.size(); ++v) {
    for (const BlockId block : buckets_[v]) {
      if (pool_of_[block] == pool) {
        return block;
      }
    }
  }
  return kInvalidBlock;
}

MicroSec BlockManager::EraseAndFree(BlockId block) {
  TPFTL_CHECK(block < pool_of_.size());
  TPFTL_CHECK_MSG(pool_of_[block] != BlockPool::kNone, "erase of an unallocated block");
  if (in_bucket_[block]) {
    BucketErase(block);
  }
  const MicroSec t = flash_->EraseBlock(block);
  if (pool_of_[block] == BlockPool::kData) {
    --data_blocks_;
  } else {
    --trans_blocks_;
  }
  pool_of_[block] = BlockPool::kNone;
  if (flash_->IsWornOut(block)) {
    ++bad_blocks_;  // Retired: never returned to the free pool.
  } else {
    free_blocks_.push_back(block);
  }
  return t;
}

BlockPool BlockManager::PoolOf(BlockId block) const {
  TPFTL_CHECK(block < pool_of_.size());
  return pool_of_[block];
}

uint64_t BlockManager::pool_block_count(BlockPool pool) const {
  return pool == BlockPool::kData ? data_blocks_ : trans_blocks_;
}

uint64_t BlockManager::FreePagesUpperBound() const {
  const uint64_t per_block = flash_->geometry().pages_per_block;
  uint64_t total = free_blocks_.size() * per_block;
  if (active_data_.id != kInvalidBlock) {
    total += flash_->block(active_data_.id).free_pages();
  }
  if (active_trans_.id != kInvalidBlock) {
    total += flash_->block(active_trans_.id).free_pages();
  }
  return total;
}

}  // namespace tpftl
