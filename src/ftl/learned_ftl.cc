#include "src/ftl/learned_ftl.h"

#include <algorithm>
#include <utility>

#include "src/util/assert.h"

namespace tpftl {
namespace {

uint64_t ModelBudgetBytes(uint64_t entry_budget, double fraction) {
  return static_cast<uint64_t>(static_cast<double>(entry_budget) * fraction);
}

}  // namespace

LearnedFtl::LearnedFtl(const FtlEnv& env, const LearnedFtlOptions& options)
    : DemandFtl(env, /*uses_translation_store=*/true),
      options_(options),
      model_(ModelBudgetBytes(entry_cache_budget_bytes(), options.model_budget_fraction)) {
  const uint64_t model_bytes = model_.max_segments() * LearnedIndex::kSegmentBytes;
  max_entries_ = (entry_cache_budget_bytes() - model_bytes) / options_.entry_bytes;
  TPFTL_CHECK_MSG(max_entries_ >= 2, "cache budget too small for LearnedFTL");
  index_.reserve(max_entries_ * 2);
}

MicroSec LearnedFtl::EvictOne() {
  AtStats& s = mutable_stats();
  TPFTL_CHECK_MSG(!lru_.empty(), "eviction from an empty cache");
  auto victim = std::prev(lru_.end());
  ++s.evictions;
  MicroSec t = 0.0;
  if (victim->dirty) {
    ++s.dirty_evictions;
    // Batched delayed updating (the LearnedFTL paper's eviction): every dirty
    // CMT entry sharing the victim's translation page rides the same
    // read-modify-write and stays resident clean, so a locality burst (a
    // sequential chunk's entries all live on one page) costs one RMW instead
    // of one per entry — DFTL's single-entry writeback is its worst tax here.
    const Vtpn vtpn = store().VtpnOf(victim->lpn);
    std::vector<MappingUpdate> updates;
    for (Entry& e : lru_) {
      if (e.dirty && store().VtpnOf(e.lpn) == vtpn) {
        updates.push_back({e.lpn, e.ppn});
        e.dirty = false;
      }
    }
    const auto r = store().RewriteTranslationPage(vtpn, updates,
                                                  /*have_full_content=*/false);
    ++s.trans_reads_at;
    ++s.trans_writes_at;
    t += r.time;
  }
  index_.erase(victim->lpn);
  lru_.erase(victim);
  return t;
}

MicroSec LearnedFtl::ProbePredicted(const PlrSegment& seg, Lpn lpn, Ppn* found) {
  NandFlash& nand = bm().flash();
  const uint64_t total_pages = nand.geometry().total_pages();
  const auto predicted = static_cast<int64_t>(seg.Predict(lpn));
  AtStats& s = mutable_stats();
  MicroSec t = 0.0;
  // Nearest-first: offset 0, +1, -1, +2, -2, … out to the error bound.
  const int64_t bound = static_cast<int64_t>(options_.error_bound);
  for (int64_t k = 0; k <= 2 * bound; ++k) {
    const int64_t offset = (k % 2 == 1) ? (k + 1) / 2 : -(k / 2);
    const int64_t candidate = predicted + offset;
    if (candidate < 0 || candidate >= static_cast<int64_t>(total_pages)) {
      continue;
    }
    const auto ppn = static_cast<Ppn>(candidate);
    if (nand.StateOf(ppn) == PageState::kFree) {
      // The FTL knows every block's write frontier, so a probe of a
      // never-programmed page is skipped without issuing a flash read.
      continue;
    }
    if (nand.StateOf(ppn) == PageState::kValid && nand.OobKindOf(ppn) == OobKind::kData &&
        nand.OobTag(ppn) == lpn) {
      // Verified: the unique-valid-copy invariant makes this page the
      // current mapping. Its read is the data read the caller bills, so
      // only the failed probes above cost extra.
      *found = ppn;
      return t;
    }
    t += nand.ReadPage(ppn);  // Wrong page: a wasted, billed flash read.
    ++s.model_probe_reads;
  }
  return t;
}

MicroSec LearnedFtl::Translate(Lpn lpn, bool is_write, Ppn* current) {
  AtStats& s = mutable_stats();
  ++s.lookups;
  if (const auto it = index_.find(lpn); it != index_.end()) {
    ++s.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    *current = it->second->ppn;
    return 0.0;
  }
  MicroSec t = 0.0;
  // The model serves only read misses: a write needs a resident CMT entry for
  // CommitMapping anyway, and a model probe would cost the same flash read as
  // the translation-page read it replaces.
  if (!is_write) {
    if (const PlrSegment* seg = model_.Lookup(lpn)) {
      Ppn predicted = kInvalidPpn;
      t += ProbePredicted(*seg, lpn, &predicted);
      if (predicted != kInvalidPpn) {
        ++s.model_hits;
        model_.Touch(lpn);  // Keep a segment serving a live scan at MRU.
        *current = predicted;
        return t;
      }
      ++s.model_misses;
      // The segment mispredicted a covered LPN: it is stale (the page moved
      // under an overwrite or GC since training). Keeping it would bill the
      // same wasted probes on every future lookup in its span; the fresh
      // harvest below re-learns whatever the span still maps linearly.
      model_.EraseCovering(lpn);
    }
  }
  ++s.misses;
  t += store().ReadTranslationPage(store().VtpnOf(lpn));
  ++s.trans_reads_at;
  if (!is_write) {
    // Read misses only: a write gains nothing from model coverage (the probe
    // would cost the flash read it saves), and write-miss harvests — frequent
    // under buffered flushes interleaved into scans — would churn the tiny
    // segment FIFO faster than the scan consumes it.
    HarvestPersistedPage(lpn);
  }
  const Ppn ppn = store().Persisted(lpn);
  while (index_.size() >= max_entries_) {
    t += EvictOne();
  }
  lru_.push_front(Entry{lpn, ppn, /*dirty=*/false});
  index_[lpn] = lru_.begin();
  *current = ppn;
  return t;
}

MicroSec LearnedFtl::CommitMapping(Lpn lpn, Ppn new_ppn) {
  const auto it = index_.find(lpn);
  TPFTL_CHECK_MSG(it != index_.end(), "CommitMapping without a preceding Translate");
  it->second->ppn = new_ppn;
  it->second->dirty = true;
  if (new_ppn != kInvalidPpn) {
    Feed(lpn, new_ppn);
  }
  return 0.0;
}

bool LearnedFtl::GcUpdateCached(Lpn lpn, Ppn new_ppn, MicroSec* extra_time) {
  (void)extra_time;
  // Every GC migration retrains, hit or miss: the sorted migration order
  // re-forms runs and the model must follow the pages to their new block.
  Feed(lpn, new_ppn);
  const auto it = index_.find(lpn);
  if (it == index_.end()) {
    return false;
  }
  it->second->ppn = new_ppn;
  it->second->dirty = true;
  return true;
}

void LearnedFtl::HarvestPersistedPage(Lpn lpn) {
  if (!model_.enabled()) {
    return;
  }
  // The translation page just read into controller RAM holds the persisted
  // PPNs of every LPN it covers, not only the one that missed — DFTL's
  // selective caching throws the other entries away and re-reads the same
  // page once per entry (the cost is brutal under sequential scans: a 32-page
  // chunk is 32 reads of one translation page). Instead of caching them as
  // entries, fit PLR segments over the span's sorted runs: the rest of the
  // chunk then verifies through the model with zero extra flash traffic.
  // Entries that are stale (a newer mapping lives dirty in the CMT) train
  // predictions that simply fail OOB verification, so this costs time at
  // worst, never correctness.
  //
  // Only the window *ahead* of the miss is harvested, and its segments are
  // inserted farthest-first: scans ascend, the FIFO holds only a handful of
  // segments, and whole-span left-to-right insertion would evict the very
  // segment the next chunk page needs before it is ever looked up.
  const auto span = store().PersistedPage(store().VtpnOf(lpn));
  const Lpn base = store().VtpnOf(lpn) * flash().geometry().entries_per_translation_page();
  const uint64_t slot = lpn - base;
  const uint64_t end = std::min<uint64_t>(span.size(), slot + options_.harvest_window);
  std::vector<PlrSegment> fitted;
  std::vector<PlrPoint> run;
  const auto fit = [&] {
    if (run.size() >= options_.min_run_points) {
      for (const PlrSegment& seg : TrainPlr(run, options_.error_bound, options_.min_run_points)) {
        fitted.push_back(seg);
      }
    }
    run.clear();
  };
  for (uint64_t i = slot; i < end; ++i) {
    const Ppn ppn = span[i];
    if (ppn == kInvalidPpn) {
      fit();
      continue;
    }
    if (!run.empty() && ppn <= run.back().ppn) {
      fit();  // PPN order broke: the linear run ends here.
    }
    run.push_back({base + i, ppn});
  }
  fit();
  for (auto it = fitted.rbegin(); it != fitted.rend(); ++it) {
    model_.Insert(*it);
  }
  if (!fitted.empty()) {
    ++mutable_stats().model_retrains;
  }
}

void LearnedFtl::Feed(Lpn lpn, Ppn new_ppn) {
  if (!model_.enabled()) {
    return;
  }
  const FlashGeometry& g = flash().geometry();
  const BlockId b = g.BlockOf(new_ppn);
  auto it = accum_.find(b);
  if (it != accum_.end() && !it->second.empty() && it->second.back().ppn >= new_ppn) {
    // The block was erased and reused while samples from its previous life
    // were still open (possible when injected program failures consume
    // offsets unsampled). Finalize the old life before sampling the new one.
    TrainBlock(b);
    it = accum_.end();
  }
  if (it == accum_.end()) {
    accum_.try_emplace(b);
    accum_order_.push_back(b);
    while (accum_.size() > options_.max_open_blocks) {
      const BlockId oldest = accum_order_.front();
      accum_order_.pop_front();
      if (oldest != b && accum_.find(oldest) != accum_.end()) {
        TrainBlock(oldest);
      }
    }
    it = accum_.find(b);
  }
  it->second.push_back({lpn, new_ppn});
  if (it->second.size() >= g.pages_per_block) {
    TrainBlock(b);  // Block fully sampled: fit it now.
  }
}

void LearnedFtl::TrainBlock(BlockId b) {
  const auto it = accum_.find(b);
  TPFTL_DCHECK(it != accum_.end());
  std::vector<PlrPoint> samples = std::move(it->second);
  accum_.erase(it);
  // accum_order_ keeps stale ids until popped; compact when they pile up
  // (e.g. sequential fills train full blocks without ever popping).
  if (accum_order_.size() > 4 * (options_.max_open_blocks + 1)) {
    std::deque<BlockId> live;
    for (const BlockId id : accum_order_) {
      if (accum_.find(id) != accum_.end()) {
        live.push_back(id);
      }
    }
    accum_order_.swap(live);
  }
  // Split into maximal strictly-increasing LPN runs. PPNs already ascend in
  // program order; an overwrite landing in the same block repeats an LPN and
  // breaks the run (its stale earlier sample can only train a prediction that
  // fails OOB verification).
  bool trained = false;
  size_t i = 0;
  while (i < samples.size()) {
    size_t j = i + 1;
    while (j < samples.size() && samples[j].lpn > samples[j - 1].lpn) {
      ++j;
    }
    if (j - i >= options_.min_run_points) {
      const std::vector<PlrPoint> run(samples.begin() + static_cast<ptrdiff_t>(i),
                                      samples.begin() + static_cast<ptrdiff_t>(j));
      for (const PlrSegment& seg : TrainPlr(run, options_.error_bound, options_.min_run_points)) {
        model_.Insert(seg);
        trained = true;
      }
    }
    i = j;
  }
  if (trained) {
    ++mutable_stats().model_retrains;
  }
}

Ppn LearnedFtl::Probe(Lpn lpn) const {
  if (const auto it = index_.find(lpn); it != index_.end()) {
    return it->second->ppn;
  }
  // Deliberately not model-served: Probe is the correctness oracle's view and
  // must reflect the durable mapping chain, not a learned shortcut.
  return translation_store().Persisted(lpn);
}

uint64_t LearnedFtl::cache_bytes_used() const {
  return index_.size() * options_.entry_bytes + model_.bytes_used();
}

uint64_t LearnedFtl::cache_entry_count() const {
  return index_.size() + model_.segment_count();
}

void LearnedFtl::CollectCheckpointDirty(std::vector<DirtyMapping>* out) {
  for (const Entry& e : lru_) {
    if (e.dirty) {
      out->push_back({e.lpn, e.ppn});
    }
  }
}

void LearnedFtl::OnGcEraseDataBlock(BlockId victim) {
  const FlashGeometry& g = flash().geometry();
  const Ppn begin = g.PpnOf(victim, 0);
  model_.ErasePpnRange(begin, begin + g.pages_per_block);
  // Pending samples destined for the victim describe pages that no longer
  // exist; accum_order_ tolerates the stale id until compaction.
  accum_.erase(victim);
}

}  // namespace tpftl
