#include "src/ftl/dftl.h"

#include <algorithm>

#include "src/util/assert.h"

namespace tpftl {

Dftl::Dftl(const FtlEnv& env, const DftlOptions& options)
    : DemandFtl(env, /*uses_translation_store=*/true), options_(options) {
  max_entries_ = entry_cache_budget_bytes() / options_.entry_bytes;
  TPFTL_CHECK_MSG(max_entries_ >= 2, "cache budget too small for DFTL");
  protected_cap_ = std::max<uint64_t>(
      1, static_cast<uint64_t>(static_cast<double>(max_entries_) * options_.protected_fraction));
  index_.reserve(max_entries_ * 2);
}

void Dftl::Touch(EntryList::iterator it) {
  if (it->segment == Segment::kProtected) {
    protected_.splice(protected_.begin(), protected_, it);
    return;
  }
  // Promote probationary hit into the protected segment.
  it->segment = Segment::kProtected;
  protected_.splice(protected_.begin(), probation_, it);
  if (protected_.size() > protected_cap_) {
    // Demote the protected LRU entry to the probationary MRU position.
    auto lru = std::prev(protected_.end());
    lru->segment = Segment::kProbation;
    probation_.splice(probation_.begin(), protected_, lru);
  }
}

MicroSec Dftl::EvictOne() {
  AtStats& s = mutable_stats();
  EntryList& source = !probation_.empty() ? probation_ : protected_;
  TPFTL_CHECK_MSG(!source.empty(), "eviction from an empty cache");
  auto victim = std::prev(source.end());
  ++s.evictions;
  MicroSec t = 0.0;
  if (victim->dirty) {
    ++s.dirty_evictions;
    // Write back only this entry: one read-modify-write of its translation
    // page, regardless of other dirty co-residents (§3.2).
    const MappingUpdate update{victim->lpn, victim->ppn};
    const auto r = store().RewriteTranslationPage(store().VtpnOf(victim->lpn), {&update, 1},
                                                  /*have_full_content=*/false);
    ++s.trans_reads_at;
    ++s.trans_writes_at;
    t += r.time;
  }
  index_.erase(victim->lpn);
  source.erase(victim);
  return t;
}

MicroSec Dftl::Translate(Lpn lpn, bool is_write, Ppn* current) {
  (void)is_write;
  AtStats& s = mutable_stats();
  ++s.lookups;
  if (const auto it = index_.find(lpn); it != index_.end()) {
    ++s.hits;
    Touch(it->second);
    *current = it->second->ppn;
    return 0.0;
  }
  ++s.misses;
  MicroSec t = store().ReadTranslationPage(store().VtpnOf(lpn));
  ++s.trans_reads_at;
  const Ppn ppn = store().Persisted(lpn);
  while (index_.size() >= max_entries_) {
    t += EvictOne();
  }
  probation_.push_front(Entry{lpn, ppn, /*dirty=*/false, Segment::kProbation});
  index_[lpn] = probation_.begin();
  *current = ppn;
  return t;
}

MicroSec Dftl::CommitMapping(Lpn lpn, Ppn new_ppn) {
  const auto it = index_.find(lpn);
  TPFTL_CHECK_MSG(it != index_.end(), "CommitMapping without a preceding Translate");
  it->second->ppn = new_ppn;
  it->second->dirty = true;
  return 0.0;
}

bool Dftl::GcUpdateCached(Lpn lpn, Ppn new_ppn, MicroSec* extra_time) {
  (void)extra_time;
  const auto it = index_.find(lpn);
  if (it == index_.end()) {
    return false;
  }
  it->second->ppn = new_ppn;
  it->second->dirty = true;
  return true;
}

Ppn Dftl::Probe(Lpn lpn) const {
  if (const auto it = index_.find(lpn); it != index_.end()) {
    return it->second->ppn;
  }
  return translation_store().Persisted(lpn);
}

uint64_t Dftl::cache_bytes_used() const { return index_.size() * options_.entry_bytes; }

uint64_t Dftl::cache_entry_count() const { return index_.size(); }

uint64_t Dftl::CachedTranslationPages() const { return OccupancyByPage().size(); }

void Dftl::CollectCheckpointDirty(std::vector<DirtyMapping>* out) {
  for (const EntryList* list : {&probation_, &protected_}) {
    for (const Entry& e : *list) {
      if (e.dirty) {
        out->push_back({e.lpn, e.ppn});
      }
    }
  }
}

std::unordered_map<Vtpn, Dftl::PageOccupancy> Dftl::OccupancyByPage() const {
  std::unordered_map<Vtpn, PageOccupancy> result;
  for (const auto& [lpn, it] : index_) {
    PageOccupancy& occ = result[translation_store().VtpnOf(lpn)];
    ++occ.entries;
    occ.dirty_entries += it->dirty ? 1 : 0;
  }
  return result;
}

}  // namespace tpftl
