// Block-level FTL baseline (§2.1).
//
// One mapping entry per flash block: a logical block maps to a physical
// block and pages keep their in-block offsets, so the whole table fits in a
// few kilobytes of RAM (this table's size is exactly the paper's mapping-
// cache budget for the demand-based FTLs). The price is rigid placement:
// overwriting a page whose slot is already programmed forces a full
// copy-merge of the block, which is why block-level mapping collapses under
// random writes. Included to complete the paper's FTL taxonomy and to derive
// the cache-size arithmetic from a real implementation.

#ifndef SRC_FTL_BLOCK_FTL_H_
#define SRC_FTL_BLOCK_FTL_H_

#include <deque>
#include <set>
#include <vector>

#include "src/flash/nand.h"
#include "src/ftl/checkpoint.h"
#include "src/ftl/demand_ftl.h"
#include "src/ftl/ftl.h"
#include "src/ftl/recovery.h"

namespace tpftl {

class BlockFtl : public Ftl {
 public:
  // Uses env.flash and env.logical_pages; the cache budget is ignored (the
  // block table always fits by construction).
  explicit BlockFtl(const FtlEnv& env);

  std::string name() const override { return "BlockFTL"; }
  MicroSec ReadPage(Lpn lpn) override;
  MicroSec WritePage(Lpn lpn) override;
  MicroSec TrimPage(Lpn lpn) override;
  Ppn Probe(Lpn lpn) const override;
  const AtStats& stats() const override { return stats_; }
  void ResetStats() override;

  uint64_t cache_bytes_used() const override { return map_.size() * 4; }
  uint64_t cache_entry_count() const override { return map_.size(); }

  const RecoveryReport* recovery_report() const override {
    return recovered_ ? &recovery_report_ : nullptr;
  }

 private:
  uint64_t LbnOf(Lpn lpn) const { return lpn / pages_per_block_; }
  uint64_t OffsetOf(Lpn lpn) const { return lpn % pages_per_block_; }
  BlockId AllocateBlock();
  // Rebuilds map_ and the free list from an OOB scan after a power cut. A
  // cut mid-merge can leave a logical block's winners split across the merge
  // source and destination; the merge is completed during recovery.
  void RecoverFromFlash(uint64_t logical_pages);
  // Copy-merges `lbn`'s block into a fresh block so `offset` becomes free
  // again, then programs the new data there.
  MicroSec MergeAndWrite(uint64_t lbn, uint64_t offset, Lpn lpn);
  // The block table lives only in RAM, so checkpoints use the cumulative
  // data directory (CheckpointConfig::cumulative_data): each record carries
  // only the mappings changed since the previous one, TRIMs as clear
  // triples. The recovery epilogue still folds the whole live mapping to
  // rebuild the directory (same treatment as FastFtl and OptimalFtl).
  void CollectLiveMappings(std::vector<DirtyMapping>* out) const;
  void MarkCheckpointDirty(Lpn lpn) {
    if (ckpt_.enabled()) {
      ckpt_dirty_.insert(lpn);
    }
  }
  MicroSec CommitCheckpoint();
  MicroSec MaybeCheckpoint() {
    if (!ckpt_.Due()) [[likely]] {
      return 0.0;
    }
    return CommitCheckpoint();
  }

  NandFlash* flash_;
  uint64_t pages_per_block_;
  uint64_t logical_pages_;
  std::vector<BlockId> map_;  // LBN → physical block.
  std::deque<BlockId> free_blocks_;
  // LPNs whose mapping changed since the last checkpoint (ordered, so the
  // emitted triples are deterministic). Empty unless checkpointing.
  std::set<Lpn> ckpt_dirty_;
  CheckpointScheduler ckpt_;
  AtStats stats_;
  bool recovered_ = false;
  RecoveryReport recovery_report_;
};

}  // namespace tpftl

#endif  // SRC_FTL_BLOCK_FTL_H_
