// Block-level FTL baseline (§2.1).
//
// One mapping entry per flash block: a logical block maps to a physical
// block and pages keep their in-block offsets, so the whole table fits in a
// few kilobytes of RAM (this table's size is exactly the paper's mapping-
// cache budget for the demand-based FTLs). Placement stays rigid — every
// page copy sits at its home offset — but overwrites no longer force an
// immediate full copy-merge: an overwritten logical block opens a
// *replacement block* that absorbs subsequent overwrites at their home
// offsets. The merge is deferred until the replacement slot itself is
// overwritten (or the open-replacement cap forces one) and then takes the
// cheapest applicable form: a *switch merge* (home fully superseded — the
// replacement simply becomes the block, zero copies) or a *partial merge*
// (only the home block's surviving pages are copied across). Full rebuilds
// survive only in power-cut recovery. Block-level mapping still collapses
// under wide random writes — the taxonomy point stands — but no longer pays
// a 16-page merge for every single overwrite.

#ifndef SRC_FTL_BLOCK_FTL_H_
#define SRC_FTL_BLOCK_FTL_H_

#include <deque>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/flash/nand.h"
#include "src/ftl/checkpoint.h"
#include "src/ftl/demand_ftl.h"
#include "src/ftl/ftl.h"
#include "src/ftl/heat.h"
#include "src/ftl/recovery.h"

namespace tpftl {

class BlockFtl : public Ftl {
 public:
  // Uses env.flash and env.logical_pages; the cache budget is ignored (the
  // block table always fits by construction).
  explicit BlockFtl(const FtlEnv& env);

  std::string name() const override { return "BlockFTL"; }
  MicroSec ReadPage(Lpn lpn) override;
  MicroSec WritePage(Lpn lpn) override;
  MicroSec TrimPage(Lpn lpn) override;
  Ppn Probe(Lpn lpn) const override;
  const AtStats& stats() const override { return stats_; }
  void ResetStats() override;

  bool worn_out() const override;
  std::vector<uint64_t> stream_write_counts() const override { return stream_writes_; }

  // Block table plus one entry per open replacement block.
  uint64_t cache_bytes_used() const override { return (map_.size() + replace_.size()) * 4; }
  uint64_t cache_entry_count() const override { return map_.size() + replace_.size(); }

  const RecoveryReport* recovery_report() const override {
    return recovered_ ? &recovery_report_ : nullptr;
  }

 private:
  // Open replacement blocks kept at once; exceeding it completes one merge.
  static constexpr uint64_t kMaxOpenReplacements = 4;

  uint64_t LbnOf(Lpn lpn) const { return lpn / pages_per_block_; }
  uint64_t OffsetOf(Lpn lpn) const { return lpn % pages_per_block_; }
  BlockId AllocateBlock();
  // Rebuilds map_ and the free list from an OOB scan after a power cut. A
  // cut can leave a logical block's winners split across its home and
  // replacement blocks; the merge is completed during recovery, absorbing
  // into the newer block when its free slots allow (else a fresh rebuild).
  void RecoverFromFlash(uint64_t logical_pages);
  // Opens a replacement block for `lbn` (completing another merge first if
  // the cap demands) and programs the overwrite into it.
  MicroSec WriteViaReplacement(uint64_t lbn, uint64_t offset, Lpn lpn);
  // Collapses `lbn`'s replacement back to a single block: a switch merge
  // when the home block holds no valid pages, else a partial merge copying
  // the home survivors into the replacement's free slots.
  MicroSec CompleteMerge(uint64_t lbn);
  // Open replacement to complete under cap pressure: the coldest one by the
  // heat classifier when streams are on, else the oldest.
  uint64_t PickCompletionVictim() const;
  // Non-bad blocks in the free pool, counted up to `cap` (worn-out probing).
  uint64_t UsableFreeBlocks(uint64_t cap) const;
  // The block table lives only in RAM, so checkpoints use the cumulative
  // data directory (CheckpointConfig::cumulative_data): each record carries
  // only the mappings changed since the previous one, TRIMs as clear
  // triples. The recovery epilogue still folds the whole live mapping to
  // rebuild the directory (same treatment as FastFtl and OptimalFtl).
  void CollectLiveMappings(std::vector<DirtyMapping>* out) const;
  void MarkCheckpointDirty(Lpn lpn) {
    if (ckpt_.enabled()) {
      ckpt_dirty_.insert(lpn);
    }
  }
  MicroSec CommitCheckpoint();
  MicroSec MaybeCheckpoint() {
    if (!ckpt_.Due()) [[likely]] {
      return 0.0;
    }
    return CommitCheckpoint();
  }

  NandFlash* flash_;
  uint64_t pages_per_block_;
  uint64_t logical_pages_;
  std::vector<BlockId> map_;  // LBN → physical block.
  std::unordered_map<uint64_t, BlockId> replace_;  // LBN → open replacement.
  std::deque<uint64_t> replace_order_;             // Open LBNs, oldest first.
  std::deque<BlockId> free_blocks_;
  std::unique_ptr<HeatClassifier> heat_;  // Null when data_streams == 1.
  std::vector<uint64_t> stream_writes_;   // [stream] → host data writes.
  bool dynamic_leveling_ = false;  // Least-worn allocation instead of FIFO.
  uint64_t retired_ = 0;  // Blocks lost to faults or endurance exhaustion.
  // LPNs whose mapping changed since the last checkpoint (ordered, so the
  // emitted triples are deterministic). Empty unless checkpointing.
  std::set<Lpn> ckpt_dirty_;
  CheckpointScheduler ckpt_;
  AtStats stats_;
  bool recovered_ = false;
  RecoveryReport recovery_report_;
};

}  // namespace tpftl

#endif  // SRC_FTL_BLOCK_FTL_H_
