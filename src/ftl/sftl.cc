#include "src/ftl/sftl.h"

#include <algorithm>

#include "src/util/assert.h"

namespace tpftl {

Sftl::Sftl(const FtlEnv& env, const SftlOptions& options)
    : DemandFtl(env, /*uses_translation_store=*/true), options_(options) {
  const uint64_t budget = entry_cache_budget_bytes();
  const auto buffer_bytes =
      static_cast<uint64_t>(static_cast<double>(budget) * options.dirty_buffer_fraction);
  buffer_capacity_entries_ = std::max<uint64_t>(1, buffer_bytes / options.buffer_entry_bytes);
  page_budget_bytes_ = budget - buffer_capacity_entries_ * options.buffer_entry_bytes;
  TPFTL_CHECK_MSG(page_budget_bytes_ >= options.page_header_bytes + options.run_bytes,
                  "cache budget too small for S-FTL");
}

uint64_t Sftl::CappedBytes(uint64_t runs) const {
  const uint64_t uncompressed = flash().geometry().page_size_bytes + options_.page_header_bytes;
  return std::min(options_.page_header_bytes + runs * options_.run_bytes, uncompressed);
}

bool Sftl::Continuous(Ppn a, Ppn b) {
  if (a == kInvalidPpn && b == kInvalidPpn) {
    return true;  // A stretch of unmapped slots compresses to one run.
  }
  return a != kInvalidPpn && b == a + 1;
}

uint64_t Sftl::CountRuns(const std::vector<Ppn>& content) const {
  uint64_t runs = 1;
  for (size_t i = 0; i + 1 < content.size(); ++i) {
    runs += Continuous(content[i], content[i + 1]) ? 0 : 1;
  }
  return runs;
}

void Sftl::UpdateSlot(Page& page, uint64_t slot, Ppn ppn, bool mark_dirty) {
  const Ppn old = page.content[slot];
  if (old == ppn && !mark_dirty) {
    return;
  }
  int64_t delta = 0;
  if (slot > 0) {
    const Ppn left = page.content[slot - 1];
    delta += (Continuous(left, old) ? 0 : -1) + (Continuous(left, ppn) ? 0 : 1);
  }
  if (slot + 1 < page.content.size()) {
    const Ppn right = page.content[slot + 1];
    delta += (Continuous(old, right) ? 0 : -1) + (Continuous(ppn, right) ? 0 : 1);
  }
  page.content[slot] = ppn;
  page.runs = static_cast<uint64_t>(static_cast<int64_t>(page.runs) + delta);
  page_bytes_used_ -= page.bytes;
  page.bytes = CappedBytes(page.runs);
  page_bytes_used_ += page.bytes;
  if (mark_dirty) {
    page.dirty_slots[slot] = ppn;
  }
}

Sftl::PageList::iterator Sftl::FindPage(Vtpn vtpn) {
  const auto it = page_index_.find(vtpn);
  return it == page_index_.end() ? pages_.end() : it->second;
}

MicroSec Sftl::FlushLargestBufferGroup() {
  AtStats& s = mutable_stats();
  TPFTL_CHECK(!buffer_.empty());
  // Group buffered entries by translation page; flush the largest group with
  // a single read-modify-write ("batch eviction" of the dirty buffer).
  std::unordered_map<Vtpn, uint64_t> counts;
  for (const auto& [lpn, ppn] : buffer_) {
    ++counts[store().VtpnOf(lpn)];
  }
  Vtpn best = kInvalidVtpn;
  uint64_t best_count = 0;
  for (const auto& [vtpn, count] : counts) {
    if (count > best_count) {
      best = vtpn;
      best_count = count;
    }
  }
  std::vector<MappingUpdate> updates;
  updates.reserve(best_count);
  for (auto it = buffer_.begin(); it != buffer_.end();) {
    if (store().VtpnOf(it->first) == best) {
      updates.push_back({it->first, it->second});
      it = buffer_.erase(it);
    } else {
      ++it;
    }
  }
  const auto r = store().RewriteTranslationPage(best, updates, /*have_full_content=*/false);
  ++s.trans_reads_at;
  ++s.trans_writes_at;
  ++s.evictions;
  ++s.dirty_evictions;
  return r.time;
}

MicroSec Sftl::EnsureBufferRoom(uint64_t incoming) {
  MicroSec t = 0.0;
  while (buffer_.size() + incoming > buffer_capacity_entries_) {
    t += FlushLargestBufferGroup();
  }
  return t;
}

MicroSec Sftl::EvictLruPage() {
  AtStats& s = mutable_stats();
  TPFTL_CHECK(!pages_.empty());
  auto victim = std::prev(pages_.end());
  MicroSec t = 0.0;
  ++s.evictions;
  if (!victim->dirty_slots.empty()) {
    if (victim->dirty_slots.size() <= options_.sparse_dirty_threshold &&
        victim->dirty_slots.size() <= buffer_capacity_entries_) {
      // Sparse dirty page: park the dirty entries in the buffer, no write.
      t += EnsureBufferRoom(victim->dirty_slots.size());
      const Lpn base = victim->vtpn * store().entries_per_page();
      for (const auto& [slot, ppn] : victim->dirty_slots) {
        buffer_[base + slot] = ppn;
      }
    } else {
      // Densely dirty page: full-page writeback, no RMW read needed.
      ++s.dirty_evictions;
      std::vector<MappingUpdate> updates;
      updates.reserve(victim->dirty_slots.size());
      const Lpn base = victim->vtpn * store().entries_per_page();
      for (const auto& [slot, ppn] : victim->dirty_slots) {
        updates.push_back({base + slot, ppn});
      }
      const auto r =
          store().RewriteTranslationPage(victim->vtpn, updates, /*have_full_content=*/true);
      TPFTL_DCHECK(!r.did_read);
      ++s.trans_writes_at;
      t += r.time;
    }
  }
  page_bytes_used_ -= victim->bytes;
  page_index_.erase(victim->vtpn);
  pages_.erase(victim);
  return t;
}

MicroSec Sftl::TrimToBudget() {
  MicroSec t = 0.0;
  while (page_bytes_used_ > page_budget_bytes_ && pages_.size() > 1) {
    t += EvictLruPage();
  }
  return t;
}

MicroSec Sftl::LoadPage(Vtpn vtpn) {
  MicroSec t = 0.0;
  Page page;
  page.vtpn = vtpn;
  const auto span = store().PersistedPage(vtpn);
  page.content.assign(span.begin(), span.end());
  // Absorb buffered dirty entries belonging to this page; they are newer
  // than the persisted values just read.
  const Lpn base = vtpn * store().entries_per_page();
  const Lpn end = base + store().entries_per_page();
  for (auto it = buffer_.begin(); it != buffer_.end();) {
    if (it->first >= base && it->first < end) {
      page.content[it->first - base] = it->second;
      page.dirty_slots[it->first - base] = it->second;
      it = buffer_.erase(it);
    } else {
      ++it;
    }
  }
  page.runs = CountRuns(page.content);
  page.bytes = CappedBytes(page.runs);

  while (page_bytes_used_ + page.bytes > page_budget_bytes_ && !pages_.empty()) {
    t += EvictLruPage();
  }
  page_bytes_used_ += page.bytes;
  pages_.push_front(std::move(page));
  page_index_[vtpn] = pages_.begin();
  return t;
}

MicroSec Sftl::Translate(Lpn lpn, bool is_write, Ppn* current) {
  (void)is_write;
  AtStats& s = mutable_stats();
  ++s.lookups;
  const Vtpn vtpn = store().VtpnOf(lpn);
  if (auto page = FindPage(vtpn); page != pages_.end()) {
    ++s.hits;
    pages_.splice(pages_.begin(), pages_, page);
    *current = page->content[store().SlotOf(lpn)];
    return 0.0;
  }
  if (const auto it = buffer_.find(lpn); it != buffer_.end()) {
    ++s.hits;
    *current = it->second;
    return 0.0;
  }
  ++s.misses;
  MicroSec t = store().ReadTranslationPage(vtpn);
  ++s.trans_reads_at;
  t += LoadPage(vtpn);
  *current = pages_.front().content[store().SlotOf(lpn)];
  return t;
}

MicroSec Sftl::CommitMapping(Lpn lpn, Ppn new_ppn) {
  const Vtpn vtpn = store().VtpnOf(lpn);
  if (auto page = FindPage(vtpn); page != pages_.end()) {
    UpdateSlot(*page, store().SlotOf(lpn), new_ppn, /*mark_dirty=*/true);
    return TrimToBudget();
  }
  const auto it = buffer_.find(lpn);
  TPFTL_CHECK_MSG(it != buffer_.end(), "CommitMapping without a preceding Translate");
  it->second = new_ppn;
  return 0.0;
}

bool Sftl::GcUpdateCached(Lpn lpn, Ppn new_ppn, MicroSec* extra_time) {
  const Vtpn vtpn = store().VtpnOf(lpn);
  if (auto page = FindPage(vtpn); page != pages_.end()) {
    UpdateSlot(*page, store().SlotOf(lpn), new_ppn, /*mark_dirty=*/true);
    *extra_time += TrimToBudget();
    return true;
  }
  if (const auto it = buffer_.find(lpn); it != buffer_.end()) {
    it->second = new_ppn;
    return true;
  }
  return false;
}

Ppn Sftl::Probe(Lpn lpn) const {
  const Vtpn vtpn = translation_store().VtpnOf(lpn);
  if (const auto it = page_index_.find(vtpn); it != page_index_.end()) {
    return it->second->content[translation_store().SlotOf(lpn)];
  }
  if (const auto it = buffer_.find(lpn); it != buffer_.end()) {
    return it->second;
  }
  return translation_store().Persisted(lpn);
}

uint64_t Sftl::cache_bytes_used() const {
  return page_bytes_used_ + buffer_.size() * options_.buffer_entry_bytes;
}

bool Sftl::CheckRunInvariant() const {
  uint64_t total_bytes = 0;
  for (const Page& page : pages_) {
    const uint64_t expected_runs = CountRuns(page.content);
    if (page.runs != expected_runs) {
      return false;
    }
    if (page.bytes != CappedBytes(page.runs)) {
      return false;
    }
    total_bytes += page.bytes;
  }
  return total_bytes == page_bytes_used_;
}

uint64_t Sftl::cache_entry_count() const {
  return pages_.size() * translation_store().entries_per_page() + buffer_.size();
}

void Sftl::CollectCheckpointDirty(std::vector<DirtyMapping>* out) {
  const uint64_t entries = translation_store().entries_per_page();
  for (const Page& page : pages_) {
    for (const auto& [slot, ppn] : page.dirty_slots) {
      out->push_back({page.vtpn * entries + slot, ppn});
    }
  }
  for (const auto& [lpn, ppn] : buffer_) {
    out->push_back({lpn, ppn});
  }
}

}  // namespace tpftl
