// FAST-style log-buffer hybrid FTL (Lee et al., "A log buffer-based flash
// translation layer using fully-associative sector translation", TECS 2007 —
// reference [23] of the paper; §2.1's hybrid category).
//
// Data blocks use block-level mapping (page at fixed in-block offset); a
// small set of log blocks absorbs overwrites with page-level mapping and is
// fully associative (any logical page can go to any log block):
//
//   * a write whose slot is still free in its data block goes there;
//   * otherwise it is appended to the current log block;
//   * when log space runs out, the oldest log block is reclaimed by a *full
//     merge*: every logical block with pages in it is rebuilt into a fresh
//     data block from the newest copies (log blocks searched first, then the
//     old data block), and the old blocks are erased;
//   * a log block that ends up holding exactly one logical block's pages in
//     order is *switch-merged*: it simply becomes the data block (free).
//
// Hybrids need little RAM (block table + tiny log map) but collapse under
// random writes — the §2.1 motivation for page-level FTLs. Included as the
// missing member of the paper's FTL taxonomy.

#ifndef SRC_FTL_FAST_FTL_H_
#define SRC_FTL_FAST_FTL_H_

#include <deque>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/flash/nand.h"
#include "src/ftl/checkpoint.h"
#include "src/ftl/demand_ftl.h"
#include "src/ftl/ftl.h"
#include "src/ftl/heat.h"
#include "src/ftl/recovery.h"

namespace tpftl {

struct FastFtlOptions {
  // Log blocks as a fraction of logical blocks (FAST evaluations commonly
  // use a few percent).
  double log_block_fraction = 0.03;
  uint64_t min_log_blocks = 2;
};

class FastFtl : public Ftl {
 public:
  FastFtl(const FtlEnv& env, const FastFtlOptions& options = {});

  std::string name() const override { return "FAST"; }
  MicroSec ReadPage(Lpn lpn) override;
  MicroSec WritePage(Lpn lpn) override;
  MicroSec TrimPage(Lpn lpn) override;
  Ppn Probe(Lpn lpn) const override;
  const AtStats& stats() const override { return stats_; }
  void ResetStats() override;

  uint64_t cache_bytes_used() const override {
    return map_.size() * 4 + log_map_.size() * 8;
  }
  uint64_t cache_entry_count() const override { return map_.size() + log_map_.size(); }

  bool worn_out() const override;
  std::vector<uint64_t> stream_write_counts() const override { return stream_writes_; }

  uint64_t log_block_limit() const { return log_block_limit_; }
  uint64_t full_merges() const { return stats_.full_merges; }
  uint64_t switch_merges() const { return stats_.switch_merges; }

  const RecoveryReport* recovery_report() const override {
    return recovered_ ? &recovery_report_ : nullptr;
  }

 private:
  uint64_t LbnOf(Lpn lpn) const { return lpn / pages_per_block_; }
  uint64_t OffsetOf(Lpn lpn) const { return lpn % pages_per_block_; }
  BlockId AllocateBlock();
  // Rebuilds map_, the log set and the free list from an OOB scan after a
  // power cut, then reclaims any log overflow down to the limit.
  void RecoverFromFlash(uint64_t logical_pages);
  // Appends to `stream`'s active log block, opening a new one (and merging
  // when at the limit) as needed. With hot/cold separation each temperature
  // stream fills its own log block, so hot overwrites cluster — their blocks
  // die (fully superseded) or switch-merge instead of forcing full merges.
  MicroSec AppendToLog(Lpn lpn, uint32_t stream);
  // Non-bad blocks in the free pool, counted up to `cap` (worn-out probing).
  uint64_t UsableFreeBlocks(uint64_t cap) const;
  // Reclaims the oldest log block via switch or full merge.
  BlockId PickReclaimLog() const;
  MicroSec CompactAppend(Lpn lpn, Ppn source);
  MicroSec ReclaimOldestLog();
  // Rebuilds one logical block from its freshest page copies.
  MicroSec FullMergeLbn(uint64_t lbn);
  bool IsSwitchMergeable(BlockId log_block) const;
  // Both the block table and the log map are RAM-only, so checkpoints use
  // the cumulative data directory (CheckpointConfig::cumulative_data): each
  // record carries only the mappings changed since the previous one, TRIMs
  // as clear triples. The recovery epilogue still folds the whole live
  // mapping to rebuild the directory (same treatment as BlockFtl/OptimalFtl).
  void CollectLiveMappings(std::vector<DirtyMapping>* out) const;
  // Records that `lpn`'s mapping changed. Every site that moves, creates or
  // drops a copy calls this — except a switch merge, which re-homes the
  // block without moving any page, so the mappings it covers are unchanged.
  void MarkCheckpointDirty(Lpn lpn) {
    if (ckpt_.enabled()) {
      ckpt_dirty_.insert(lpn);
    }
  }
  MicroSec CommitCheckpoint();
  MicroSec MaybeCheckpoint() {
    if (!ckpt_.Due()) [[likely]] {
      return 0.0;
    }
    return CommitCheckpoint();
  }

  NandFlash* flash_;
  uint64_t pages_per_block_;
  uint64_t logical_pages_;
  uint64_t log_block_limit_;
  std::vector<BlockId> map_;                 // LBN → data block.
  std::unordered_map<Lpn, Ppn> log_map_;     // Freshest log copy per LPN.
  std::deque<BlockId> log_blocks_;           // Allocation order; front is reclaimed.
  std::vector<BlockId> active_log_;          // [stream] → log block taking appends.
  std::deque<BlockId> free_blocks_;
  std::unique_ptr<HeatClassifier> heat_;  // Null when data_streams == 1.
  std::vector<uint64_t> stream_writes_;   // [stream] → host data writes.
  bool dynamic_leveling_ = false;  // Least-worn allocation instead of FIFO.
  uint64_t retired_ = 0;  // Blocks lost to faults or endurance exhaustion.
  // LPNs whose mapping changed since the last checkpoint (ordered, so the
  // emitted triples are deterministic). Empty unless checkpointing.
  std::set<Lpn> ckpt_dirty_;
  CheckpointScheduler ckpt_;
  AtStats stats_;
  bool recovered_ = false;
  RecoveryReport recovery_report_;
};

}  // namespace tpftl

#endif  // SRC_FTL_FAST_FTL_H_
