#include "src/obs/metrics.h"

namespace tpftl::obs {
namespace {

template <typename Map>
auto* FindOrCreate(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    using Value = typename Map::mapped_type::element_type;
    it = map.emplace(std::string(name), std::make_unique<Value>()).first;
  }
  return it->second.get();
}

template <typename Map>
const auto* FindOnly(const Map& map, std::string_view name) {
  auto it = map.find(name);
  using Value = typename Map::mapped_type::element_type;
  return it == map.end() ? static_cast<const Value*>(nullptr)
                         : it->second.get();
}

}  // namespace

Counter* MetricsRegistry::counter(std::string_view name) {
  return FindOrCreate(counters_, name);
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  return FindOrCreate(gauges_, name);
}

LatencyHistogram* MetricsRegistry::histogram(std::string_view name) {
  return FindOrCreate(histograms_, name);
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  return FindOnly(counters_, name);
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  return FindOnly(gauges_, name);
}

const LatencyHistogram* MetricsRegistry::FindHistogram(
    std::string_view name) const {
  return FindOnly(histograms_, name);
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, counter] : other.counters_) {
    FindOrCreate(counters_, name)->MergeFrom(*counter);
  }
  for (const auto& [name, gauge] : other.gauges_) {
    FindOrCreate(gauges_, name)->MergeFrom(*gauge);
  }
  for (const auto& [name, histogram] : other.histograms_) {
    FindOrCreate(histograms_, name)->MergeFrom(*histogram);
  }
}

void MetricsRegistry::ResetValues() {
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

}  // namespace tpftl::obs
