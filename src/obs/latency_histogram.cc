#include "src/obs/latency_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "src/util/assert.h"

namespace tpftl::obs {

uint64_t Log2UpperBound(uint64_t value) {
  if (value == 0) {
    return 0;
  }
  const int width = static_cast<int>(std::bit_width(value));
  if (width >= 64) {
    return ~uint64_t{0};
  }
  return (uint64_t{1} << width) - 1;
}

size_t LatencyHistogram::BucketIndex(uint64_t scaled) {
  if (scaled < kSubBuckets) {
    return static_cast<size_t>(scaled);
  }
  const int log =
      static_cast<int>(std::bit_width(scaled)) - 1;  // >= kSubBucketBits
  const int shift = log - kSubBucketBits;
  const uint64_t sub = (scaled - (uint64_t{1} << log)) >> shift;
  return kSubBuckets +
         static_cast<size_t>(log - kSubBucketBits) * kSubBuckets +
         static_cast<size_t>(sub);
}

double LatencyHistogram::BucketMidpointUs(size_t index) {
  if (index < kSubBuckets) {
    return static_cast<double>(index) / kScale;
  }
  const size_t rel = index - kSubBuckets;
  const int log = static_cast<int>(rel / kSubBuckets) + kSubBucketBits;
  const uint64_t sub = rel % kSubBuckets;
  const int shift = log - kSubBucketBits;
  const double lo = static_cast<double>((uint64_t{1} << log) +
                                        (sub << shift));
  const double width = static_cast<double>(uint64_t{1} << shift);
  return (lo + width / 2.0) / kScale;
}

void LatencyHistogram::Add(double us) {
  TPFTL_DCHECK_MSG(us >= 0.0, "negative latency sample");
  if (us < 0.0 || std::isnan(us)) {
    us = 0.0;
  }
  const double scaled_d = std::nearbyint(us * kScale);
  const uint64_t scaled =
      scaled_d >= 9.0e18 ? uint64_t{9000000000000000000ULL}
                         : static_cast<uint64_t>(scaled_d);
  ++buckets_[BucketIndex(scaled)];
  if (total_ == 0) {
    min_ = us;
    max_ = us;
  } else {
    min_ = std::min(min_, us);
    max_ = std::max(max_, us);
  }
  ++total_;
  sum_ += us;
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  if (other.total_ == 0) {
    return;
  }
  for (size_t i = 0; i < kBucketCount; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (total_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  total_ += other.total_;
  sum_ += other.sum_;
}

void LatencyHistogram::Reset() { *this = LatencyHistogram(); }

double LatencyHistogram::Quantile(double q) const {
  if (total_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double exact_rank = q * static_cast<double>(total_);
  uint64_t rank = static_cast<uint64_t>(std::ceil(exact_rank));
  rank = std::clamp<uint64_t>(rank, 1, total_);
  uint64_t seen = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return std::clamp(BucketMidpointUs(i), min_, max_);
    }
  }
  return max_;
}

}  // namespace tpftl::obs
