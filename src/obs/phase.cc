#include "src/obs/phase.h"

#include "src/obs/trace_event.h"

namespace tpftl::obs {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kUser:
      return "user";
    case Phase::kTranslation:
      return "translation";
    case Phase::kGc:
      return "gc";
    case Phase::kFlush:
      return "flush";
    case Phase::kBackground:
      return "background";
  }
  return "unknown";
}

const char* FlashOpName(FlashOp op) {
  switch (op) {
    case FlashOp::kRead:
      return "read";
    case FlashOp::kProgram:
      return "program";
    case FlashOp::kErase:
      return "erase";
  }
  return "unknown";
}

#if TPFTL_OBS_ENABLED
namespace internal {

void ChargeFlashSlow(TraceContext& ctx, FlashOp op, double us) {
  ctx.times->Charge(ctx.phase, op, us);
  if (ctx.spans != nullptr) {
    ctx.spans->Charge(ctx.phase, op, us);
  }
}

void GcVictimScanSlow(TraceContext& ctx) {
  ++ctx.times->gc_victim_scans;
  if (ctx.spans != nullptr) {
    ctx.spans->Instant("gc_victim_scan");
  }
}

void SpanInstant(TraceContext& ctx, const char* name) {
  ctx.spans->Instant(name);
}

}  // namespace internal
#endif  // TPFTL_OBS_ENABLED

}  // namespace tpftl::obs
