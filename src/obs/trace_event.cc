#include "src/obs/trace_event.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace tpftl::obs {
namespace {

void WriteEscaped(std::ostream& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

void WriteDouble(std::ostream& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  out << buf;
}

class EventWriter {
 public:
  explicit EventWriter(std::ostream& out) : out_(out) {}

  // Starts one event object; follow with Field calls, end with Close.
  void Open() {
    out_ << (first_ ? "\n  {" : ",\n  {");
    first_ = false;
    first_field_ = true;
  }
  void Str(const char* key, const std::string& value) {
    Key(key);
    out_ << '"';
    WriteEscaped(out_, value);
    out_ << '"';
  }
  void Num(const char* key, double value) {
    Key(key);
    WriteDouble(out_, value);
  }
  void Int(const char* key, uint64_t value) {
    Key(key);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out_ << buf;
  }
  void Raw(const char* key, const char* value) {
    Key(key);
    out_ << value;
  }
  void Close() { out_ << '}'; }

 private:
  void Key(const char* key) {
    out_ << (first_field_ ? "\"" : ", \"") << key << "\": ";
    first_field_ = false;
  }

  std::ostream& out_;
  bool first_ = true;
  bool first_field_ = true;
};

}  // namespace

void WriteChromeTrace(std::ostream& out, const RequestTraceLog& log,
                      const std::string& label) {
  EventWriter ev(out);
  out << "{\n\"traceEvents\": [";

  // One process lane per tenant present in the log (pid = tenant + 1).
  // Single-tenant logs emit exactly the one pid-1 lane they always did.
  uint16_t max_tenant = 0;
  for (const RequestTraceRecord& rec : log.records()) {
    max_tenant = std::max(max_tenant, rec.tenant);
  }
  for (uint32_t tenant = 0; tenant <= max_tenant; ++tenant) {
    ev.Open();
    ev.Str("name", "process_name");
    ev.Str("ph", "M");
    ev.Int("pid", tenant + 1);
    ev.Int("tid", 0);
    ev.Raw("args", "{\"name\": \"");
    WriteEscaped(out, label);
    if (max_tenant > 0) {
      char suffix[32];
      std::snprintf(suffix, sizeof(suffix), " tenant %u", tenant);
      WriteEscaped(out, suffix);
    }
    out << "\"}";
    ev.Close();
  }

  for (const RequestTraceRecord& rec : log.records()) {
    const uint64_t pid = rec.tenant + 1u;
    const uint64_t tid = rec.index + 1;  // tid 0 is metadata.

    ev.Open();
    ev.Str("name", "thread_name");
    ev.Str("ph", "M");
    ev.Int("pid", pid);
    ev.Int("tid", tid);
    char tname[64];
    std::snprintf(tname, sizeof(tname), "req %" PRIu64 " %s lpn=%" PRIu64,
                  rec.index, rec.is_write ? "W" : "R", rec.lpn);
    ev.Raw("args", "{\"name\": \"");
    WriteEscaped(out, tname);
    out << "\"}";
    ev.Close();

    if (rec.queue_us > 0.0) {
      ev.Open();
      ev.Str("name", "queue");
      ev.Str("ph", "X");
      ev.Str("cat", "queue");
      ev.Int("pid", pid);
      ev.Int("tid", tid);
      ev.Num("ts", rec.arrival_us);
      ev.Num("dur", rec.queue_us);
      ev.Close();
    }

    for (const Span& span : rec.spans) {
      ev.Open();
      ev.Str("name", PhaseName(span.phase));
      ev.Str("ph", "X");
      ev.Str("cat", "phase");
      ev.Int("pid", pid);
      ev.Int("tid", tid);
      ev.Num("ts", rec.start_us + span.start_us);
      ev.Num("dur", span.dur_us);
      char args[128];
      std::snprintf(args, sizeof(args),
                    "{\"reads\": %" PRIu64 ", \"programs\": %" PRIu64
                    ", \"erases\": %" PRIu64 "}",
                    span.ops[0], span.ops[1], span.ops[2]);
      ev.Raw("args", args);
      ev.Close();
    }

    for (const InstantEvent& inst : rec.instants) {
      ev.Open();
      ev.Str("name", inst.name);
      ev.Str("ph", "i");
      ev.Str("cat", "event");
      ev.Str("s", "t");
      ev.Int("pid", pid);
      ev.Int("tid", tid);
      ev.Num("ts", rec.start_us + inst.at_us);
      ev.Close();
    }
  }

  out << "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
}

}  // namespace tpftl::obs
