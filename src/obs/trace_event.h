// Span capture and Chrome-trace export for single-request drill-down.
//
// When span capture is on (SsdConfig::trace_span_requests > 0) each traced
// request records a timeline of phase segments in *simulated* time: adjacent
// flash charges in the same phase merge into one span, zero-cost events
// (cache misses, evictions, victim scans) land as instants. The log can be
// written as Chrome trace-event JSON ("traceEvents" array of "X" complete
// events and "i" instants, timestamps in microseconds) and loaded in
// chrome://tracing or https://ui.perfetto.dev.

#ifndef SRC_OBS_TRACE_EVENT_H_
#define SRC_OBS_TRACE_EVENT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/obs/phase.h"

namespace tpftl::obs {

// One contiguous stretch of a single phase within a request's service time.
// Offsets are relative to the request's service start (device start time).
struct Span {
  Phase phase = Phase::kUser;
  double start_us = 0.0;
  double dur_us = 0.0;
  uint64_t ops[kFlashOpCount] = {};
};

// Zero-duration marker (e.g. "cache_miss") at a service-relative offset.
// Names must be string literals (they are stored unowned).
struct InstantEvent {
  const char* name = "";
  double at_us = 0.0;
};

// Span sink for one request, filled by ChargeFlash/EmitInstant via the
// thread-local TraceContext while the request is being served.
class RequestSpans {
 public:
  void Clear() {
    spans_.clear();
    instants_.clear();
    cursor_us_ = 0.0;
  }

  // Books `us` of flash time in `phase`, extending the open span when the
  // phase is unchanged and contiguous, else opening a new one.
  void Charge(Phase phase, FlashOp op, double us) {
    if (spans_.empty() || spans_.back().phase != phase) {
      Span span;
      span.phase = phase;
      span.start_us = cursor_us_;
      spans_.push_back(span);
    }
    Span& open = spans_.back();
    open.dur_us += us;
    ++open.ops[static_cast<size_t>(op)];
    cursor_us_ += us;
  }

  void Instant(const char* name) { instants_.push_back({name, cursor_us_}); }

  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<InstantEvent>& instants() const { return instants_; }
  // Total service time recorded so far (sum of span durations).
  double cursor_us() const { return cursor_us_; }

 private:
  std::vector<Span> spans_;
  std::vector<InstantEvent> instants_;
  double cursor_us_ = 0.0;
};

// One fully served request in the trace log, stamped with absolute simulated
// times by the SSD layer.
struct RequestTraceRecord {
  uint64_t index = 0;       // Submission index since the last ResetStats.
  uint64_t lpn = 0;         // First LPN of the request.
  uint32_t length = 0;      // Pages.
  bool is_write = false;
  uint16_t tenant = 0;      // Tenant lane (0 unless tenant accounting is on).
  double arrival_us = 0.0;  // Stats-epoch-adjusted arrival.
  double start_us = 0.0;    // Device start (end of queueing).
  double finish_us = 0.0;
  double queue_us = 0.0;
  PhaseTimes phases;
  std::vector<Span> spans;
  std::vector<InstantEvent> instants;
};

// Bounded in-memory log of traced requests (first `capacity` after the last
// ResetStats). `dropped` counts requests not recorded once full.
class RequestTraceLog {
 public:
  explicit RequestTraceLog(size_t capacity = 0) : capacity_(capacity) {}

  bool WantsMore() const { return records_.size() < capacity_; }
  void Add(RequestTraceRecord record) {
    if (records_.size() < capacity_) {
      records_.push_back(std::move(record));
    } else {
      ++dropped_;
    }
  }
  // Records a request that was served without span capture because the log
  // was already full (the SSD skips the capture work entirely in that case).
  void NoteDropped() { ++dropped_; }
  void Clear() {
    records_.clear();
    dropped_ = 0;
  }

  size_t capacity() const { return capacity_; }
  uint64_t dropped() const { return dropped_; }
  const std::vector<RequestTraceRecord>& records() const { return records_; }

 private:
  size_t capacity_;
  uint64_t dropped_ = 0;
  std::vector<RequestTraceRecord> records_;
};

// Writes the log as Chrome trace-event JSON. Requests are grouped into one
// process lane per tenant (pid = tenant + 1; single-tenant logs collapse to
// the one pid-1 lane) and each request gets one row within its lane
// (tid = request index): a "queue" span from arrival to start, one span per
// phase segment, and instant markers. `label` becomes the process name,
// suffixed with the tenant id on lanes past the first.
void WriteChromeTrace(std::ostream& out, const RequestTraceLog& log,
                      const std::string& label);

}  // namespace tpftl::obs

#endif  // SRC_OBS_TRACE_EVENT_H_
