// Named-metric registry: counters, gauges, and latency histograms.
//
// One registry per Ssd instance (and per RunSweep shard). Metrics are
// created on first use via counter()/gauge()/histogram() and live as long
// as the registry, so call sites can cache the returned pointer and bump it
// without further lookups. Iteration order is the metric name order
// (std::map), which keeps every text/JSON dump deterministic.
//
// MergeFrom folds another registry in — counters and histograms accumulate,
// gauges keep the maximum (peak-style semantics) — which is how RunSweep
// shards running on ThreadPool workers aggregate into one report.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "src/obs/latency_histogram.h"

namespace tpftl::obs {

class Counter {
 public:
  void Increment(uint64_t n = 1) { value_ += n; }
  // Overwrite semantics, for counters mirrored from an authoritative source
  // (e.g. device flash stats synced into the registry). MergeFrom still
  // sums, which stays correct when each shard mirrors its own device.
  void Set(uint64_t value) { value_ = value; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }
  void MergeFrom(const Counter& other) { value_ += other.value_; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double value) { value_ = value; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }
  // Peak semantics: merging sweep shards keeps the largest observed value.
  void MergeFrom(const Gauge& other) {
    value_ = std::max(value_, other.value_);
  }

 private:
  double value_ = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. Returned pointers are stable for the registry lifetime.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  LatencyHistogram* histogram(std::string_view name);

  // Lookup without creating; nullptr when absent.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const LatencyHistogram* FindHistogram(std::string_view name) const;

  // Folds `other` in, creating any metrics this registry lacks.
  void MergeFrom(const MetricsRegistry& other);

  // Zeroes every value but keeps registrations (and cached pointers) alive.
  void ResetValues();

  using CounterMap =
      std::map<std::string, std::unique_ptr<Counter>, std::less<>>;
  using GaugeMap = std::map<std::string, std::unique_ptr<Gauge>, std::less<>>;
  using HistogramMap =
      std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>;

  const CounterMap& counters() const { return counters_; }
  const GaugeMap& gauges() const { return gauges_; }
  const HistogramMap& histograms() const { return histograms_; }

 private:
  CounterMap counters_;
  GaugeMap gauges_;
  HistogramMap histograms_;
};

}  // namespace tpftl::obs

#endif  // SRC_OBS_METRICS_H_
