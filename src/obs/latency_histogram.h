// HDR-style sub-bucketed log histogram with bounded relative quantile error.
//
// Replaces util::LogHistogram as the response-time sink. LogHistogram's
// Quantile returned the log2 bucket's *upper bound* — q=0.5 over all-25 µs
// samples reported 31, and around 800 µs the reported "p99" could overstate
// the true quantile by nearly 2x. Here each power-of-two range [2^k, 2^(k+1))
// is split into 64 equal sub-buckets, so a bucket's midpoint representative
// is within 1/128 (~0.8%) of any value it holds — comfortably inside the
// ≤2% contract pinned by tests/obs/latency_histogram_test.cc.
//
// Values are doubles in microseconds, recorded at 1/16 µs resolution
// (scaled to integers before bucketing), so sub-4 µs samples land in exact
// unit buckets and the sub-bucket scheme takes over above that. Exact min,
// max, and sum are tracked on the side: min/max are always exact, Quantile
// results are clamped into [min, max], and Mean() has no bucketing error.
//
// The histogram is plain-old-data copyable and supports MergeFrom so
// RunSweep shards and the metrics registry can aggregate across threads.

#ifndef SRC_OBS_LATENCY_HISTOGRAM_H_
#define SRC_OBS_LATENCY_HISTOGRAM_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace tpftl::obs {

// Legacy LogHistogram bucket ceiling for a value: the smallest 2^k - 1 at or
// above it. Kept only so benches can surface the old-vs-new p99 delta.
uint64_t Log2UpperBound(uint64_t value);

class LatencyHistogram {
 public:
  // 1/16 µs recording resolution.
  static constexpr double kScale = 16.0;
  static constexpr int kSubBucketBits = 6;  // 64 sub-buckets per log2 range.
  static constexpr size_t kSubBuckets = size_t{1} << kSubBucketBits;
  // Scaled values < kSubBuckets use exact unit buckets; above that, ranges
  // [2^k, 2^(k+1)) for k in [kSubBucketBits, 63] each get kSubBuckets.
  static constexpr size_t kBucketCount =
      kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;

  void Add(double us);
  void MergeFrom(const LatencyHistogram& other);
  void Reset();

  uint64_t total() const { return total_; }
  double sum() const { return sum_; }
  double min() const { return total_ == 0 ? 0.0 : min_; }
  double max() const { return total_ == 0 ? 0.0 : max_; }
  double Mean() const {
    return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
  }

  // Smallest recorded value v such that at least ceil(q * total) samples are
  // <= v, reported as the holding bucket's midpoint and clamped to
  // [min, max]. Relative error <= ~0.8% for values above 4 µs; exact (to the
  // recording resolution) below. q outside (0, 1] is clamped.
  double Quantile(double q) const;

 private:
  static size_t BucketIndex(uint64_t scaled);
  static double BucketMidpointUs(size_t index);

  std::array<uint64_t, kBucketCount> buckets_{};
  uint64_t total_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace tpftl::obs

#endif  // SRC_OBS_LATENCY_HISTOGRAM_H_
