// Phase-level request tracing: where does a request's flash time go?
//
// The paper's system-response-time metric (§4.3, Eq. 1–13) decomposes a
// request into address translation, user page accesses, and GC. This header
// is the hot-path half of the observability layer that makes the simulator
// report that decomposition instead of a single end-to-end number:
//
//   * A thread-local TraceContext carries the *current phase* of the request
//     being served (user access by default; the FTL layers scope translation,
//     GC, flush, and background-GC sections with ScopedPhase).
//   * Every NAND operation calls ChargeFlash(op, us); when tracing is active
//     the latency is booked to (current phase × op kind) in the request's
//     PhaseTimes, and — when span capture is on — appended to the request's
//     span timeline for the Chrome-trace exporter (obs/trace_event.h).
//
// Cost model: with tracing disabled (the default) the entire charge path is
// one thread-local load and a predicted-taken branch per NAND op; building
// with -DTPFTL_OBS=OFF compiles even that out (the TPFTL_DCHECK pattern —
// every function below becomes an empty inline). Tracing never changes any
// timing arithmetic: enabled vs. disabled produces bit-identical reports.

#ifndef SRC_OBS_PHASE_H_
#define SRC_OBS_PHASE_H_

#include <cstddef>
#include <cstdint>

#if defined(TPFTL_OBS_DISABLED)
#define TPFTL_OBS_ENABLED 0
#else
#define TPFTL_OBS_ENABLED 1
#endif

namespace tpftl::obs {

// Exclusive phases of a host request's service time. Time is booked to the
// innermost active scope; kFlush and kBackground pin themselves so that the
// translation/user/GC work they trigger stays attributed to them.
enum class Phase : uint8_t {
  kUser = 0,     // Host data page access (the default phase).
  kTranslation,  // Mapping lookups, commits, and dirty-entry writebacks.
  kGc,           // Foreground garbage collection charged to the request.
  kFlush,        // Write-buffer eviction flushing through the FTL.
  kBackground,   // Background GC in idle gaps (not part of response time).
};
inline constexpr size_t kPhaseCount = 5;

enum class FlashOp : uint8_t { kRead = 0, kProgram, kErase };
inline constexpr size_t kFlashOpCount = 3;

const char* PhaseName(Phase phase);
const char* FlashOpName(FlashOp op);

// Per-request (or aggregated) phase accounting cell: simulated microseconds
// and operation counts per phase × flash-op kind, plus event counters with
// no simulated cost (GC victim scans).
struct PhaseTimes {
  double us[kPhaseCount][kFlashOpCount] = {};
  uint64_t ops[kPhaseCount][kFlashOpCount] = {};
  uint64_t gc_victim_scans = 0;

  void Charge(Phase phase, FlashOp op, double t) {
    us[static_cast<size_t>(phase)][static_cast<size_t>(op)] += t;
    ++ops[static_cast<size_t>(phase)][static_cast<size_t>(op)];
  }

  void Merge(const PhaseTimes& other) {
    for (size_t p = 0; p < kPhaseCount; ++p) {
      for (size_t o = 0; o < kFlashOpCount; ++o) {
        us[p][o] += other.us[p][o];
        ops[p][o] += other.ops[p][o];
      }
    }
    gc_victim_scans += other.gc_victim_scans;
  }

  void Reset() { *this = PhaseTimes(); }

  double PhaseUs(Phase phase) const {
    const size_t p = static_cast<size_t>(phase);
    return us[p][0] + us[p][1] + us[p][2];
  }
  uint64_t PhaseOps(Phase phase) const {
    const size_t p = static_cast<size_t>(phase);
    return ops[p][0] + ops[p][1] + ops[p][2];
  }
  double OpUs(Phase phase, FlashOp op) const {
    return us[static_cast<size_t>(phase)][static_cast<size_t>(op)];
  }
  uint64_t OpCount(Phase phase, FlashOp op) const {
    return ops[static_cast<size_t>(phase)][static_cast<size_t>(op)];
  }
  // Flash time that is part of the request's response (every phase except
  // background GC, which runs in idle gaps before the request starts).
  double ServiceUs() const {
    double total = 0.0;
    for (size_t p = 0; p < kPhaseCount; ++p) {
      if (p == static_cast<size_t>(Phase::kBackground)) {
        continue;
      }
      total += us[p][0] + us[p][1] + us[p][2];
    }
    return total;
  }
  double TotalUs() const { return ServiceUs() + PhaseUs(Phase::kBackground); }
};

class RequestSpans;  // Span timeline of one request (obs/trace_event.h).

// Thread-local tracing state. `times == nullptr` means tracing is off — the
// invariant every hot-path check relies on. Installed per request by the SSD
// layer (ScopedRequestContext); never shared across threads, so RunSweep
// workers trace independently.
struct TraceContext {
  PhaseTimes* times = nullptr;
  RequestSpans* spans = nullptr;
  Phase phase = Phase::kUser;
  bool pinned = false;
};

#if TPFTL_OBS_ENABLED

namespace internal {
inline thread_local TraceContext tls_ctx;
// Out-of-line tracing-active paths: keeps the inline fast path at every NAND
// call site down to one thread-local load, a predicted-taken test, and a cold
// call — no icache bloat in the flash hot loops when tracing is off.
void ChargeFlashSlow(TraceContext& ctx, FlashOp op, double us);
void GcVictimScanSlow(TraceContext& ctx);
void SpanInstant(TraceContext& ctx, const char* name);
}  // namespace internal

inline bool TracingActive() { return internal::tls_ctx.times != nullptr; }

// Books one NAND operation's latency to the current request's current phase.
// Called by NandFlash on every page read/program and block erase.
inline void ChargeFlash(FlashOp op, double us) {
  TraceContext& ctx = internal::tls_ctx;
  if (ctx.times == nullptr) [[likely]] {
    return;
  }
  internal::ChargeFlashSlow(ctx, op, us);
}

// Counts a GC victim-selection scan (no simulated cost; RAM-side work).
inline void CountGcVictimScan() {
  TraceContext& ctx = internal::tls_ctx;
  if (ctx.times == nullptr) [[likely]] {
    return;
  }
  internal::GcVictimScanSlow(ctx);
}

// Zero-duration marker in the request's span timeline (cache miss, eviction,
// zone switch, ...). `name` must be a string literal or otherwise outlive the
// trace log.
inline void EmitInstant(const char* name) {
  TraceContext& ctx = internal::tls_ctx;
  if (ctx.spans != nullptr) [[unlikely]] {
    internal::SpanInstant(ctx, name);
  }
}

// Sets the current phase for the enclosed scope. A pinned scope (kFlush,
// kBackground) wins over any scope opened inside it, keeping attribution
// exclusive: GC triggered by a write-buffer flush is flush time, not GC time.
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase phase, bool pin = false) {
    TraceContext& ctx = internal::tls_ctx;
    if (ctx.times == nullptr || ctx.pinned) {
      return;
    }
    active_ = true;
    prev_ = ctx.phase;
    ctx.phase = phase;
    ctx.pinned = pin;
  }
  ~ScopedPhase() {
    if (active_) {
      TraceContext& ctx = internal::tls_ctx;
      ctx.phase = prev_;
      ctx.pinned = false;  // Only an unpinned context lets a scope activate.
    }
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  bool active_ = false;
  Phase prev_ = Phase::kUser;
};

// Installs the per-request tracing sinks for the duration of one
// Ssd::Submit. Passing times == nullptr leaves tracing off.
class ScopedRequestContext {
 public:
  ScopedRequestContext(PhaseTimes* times, RequestSpans* spans) {
    TraceContext& ctx = internal::tls_ctx;
    ctx.times = times;
    ctx.spans = spans;
    ctx.phase = Phase::kUser;
    ctx.pinned = false;
  }
  ~ScopedRequestContext() {
    TraceContext& ctx = internal::tls_ctx;
    ctx.times = nullptr;
    ctx.spans = nullptr;
    ctx.phase = Phase::kUser;
    ctx.pinned = false;
  }
  ScopedRequestContext(const ScopedRequestContext&) = delete;
  ScopedRequestContext& operator=(const ScopedRequestContext&) = delete;
};

#else  // !TPFTL_OBS_ENABLED — every tracing entry point compiles to nothing.

inline bool TracingActive() { return false; }
inline void ChargeFlash(FlashOp, double) {}
inline void CountGcVictimScan() {}
inline void EmitInstant(const char*) {}

class ScopedPhase {
 public:
  explicit ScopedPhase(Phase, bool = false) {}
};

class ScopedRequestContext {
 public:
  ScopedRequestContext(PhaseTimes*, RequestSpans*) {}
};

#endif  // TPFTL_OBS_ENABLED

}  // namespace tpftl::obs

#endif  // SRC_OBS_PHASE_H_
