// Fundamental address types shared across the repository.
//
// The paper's terminology (§1, §4.1) is kept verbatim:
//   LPN  — logical page number (host address / page size)
//   PPN  — physical page number in flash
//   VTPN — virtual translation page number (index of a translation page in
//          the logical mapping table)
//   PTPN — physical translation page number (flash page storing that
//          translation page)

#ifndef SRC_FLASH_TYPES_H_
#define SRC_FLASH_TYPES_H_

#include <cstdint>

namespace tpftl {

using Lpn = uint64_t;
using Ppn = uint64_t;
using Vtpn = uint64_t;
using Ptpn = uint64_t;
using BlockId = uint64_t;

inline constexpr Lpn kInvalidLpn = ~0ULL;
inline constexpr Ppn kInvalidPpn = ~0ULL;
inline constexpr Vtpn kInvalidVtpn = ~0ULL;
inline constexpr Ptpn kInvalidPtpn = ~0ULL;
inline constexpr BlockId kInvalidBlock = ~0ULL;

// Simulated time is carried in microseconds.
using MicroSec = double;

}  // namespace tpftl

#endif  // SRC_FLASH_TYPES_H_
