#include "src/flash/fault.h"

#include <algorithm>

namespace tpftl {

FaultInjector::FaultInjector(const FaultPlan& plan) : plan_(plan), rng_(plan.seed) {
  std::sort(plan_.fail_program_at.begin(), plan_.fail_program_at.end());
  std::sort(plan_.fail_erase_at.begin(), plan_.fail_erase_at.end());
}

bool FaultInjector::ShouldFailProgram(uint64_t op_index) {
  if (std::binary_search(plan_.fail_program_at.begin(), plan_.fail_program_at.end(), op_index)) {
    return true;
  }
  return plan_.program_fail_prob > 0.0 && rng_.Chance(plan_.program_fail_prob);
}

bool FaultInjector::ShouldFailErase(uint64_t op_index) {
  if (std::binary_search(plan_.fail_erase_at.begin(), plan_.fail_erase_at.end(), op_index)) {
    return true;
  }
  return plan_.erase_fail_prob > 0.0 && rng_.Chance(plan_.erase_fail_prob);
}

}  // namespace tpftl
