// The device metadata log: sequenced, checksummed records in a small
// reserved region, surviving power cuts under the snapshot-restore model.
//
// Two record types build the checkpointed-recovery protocol (DESIGN.md
// "Checkpointed recovery"):
//
//   kBlockDirty  — WAL record appended by NandFlash itself immediately
//                  before the *first* program into a block within the
//                  current checkpoint epoch. Replaying the tail of these
//                  records names every block whose contents may have changed
//                  since the last checkpoint — the dirty window recovery
//                  rescans instead of the whole device.
//   kCheckpoint  — an FTL-built snapshot of its durable directory state
//                  (translation directory, block pools, dirty cached
//                  entries; format in src/ftl/checkpoint.h). Appending one
//                  atomically advances the journal epoch, so the next
//                  program into any block re-journals it.
//
// Records carry their own contiguous sequence numbers (independent of the
// page program sequence) and an FNV-1a checksum over (seq, type, payload).
// A power cut can land inside an append: the record survives torn, with a
// checksum that does not verify. Recovery validates the log front-to-back —
// a single unverifiable FINAL record is a torn tail and is truncated (its
// guarded operation never happened: the WAL record is written first), while
// a bad checksum or sequence gap in the interior means corruption and forces
// the full-scan fallback.

#ifndef SRC_FLASH_META_H_
#define SRC_FLASH_META_H_

#include <cstdint>
#include <vector>

namespace tpftl {

enum class MetaRecordType : uint8_t { kBlockDirty = 0, kCheckpoint = 1 };

struct MetaRecord {
  uint64_t seq = 0;  // Contiguous per-log sequence, starting at 1.
  MetaRecordType type = MetaRecordType::kBlockDirty;
  std::vector<uint64_t> payload;
  uint64_t checksum = 0;

  // Serialized size: seq + type + length + payload words + checksum.
  uint64_t size_bytes() const { return (4 + payload.size()) * sizeof(uint64_t); }
};

// FNV-1a over the record header and payload words.
inline uint64_t MetaChecksum(uint64_t seq, MetaRecordType type,
                             const std::vector<uint64_t>& payload) {
  uint64_t h = 0xCBF29CE484222325ULL;
  const auto mix = [&h](uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      h ^= (word >> (i * 8)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  };
  mix(seq);
  mix(static_cast<uint64_t>(type));
  mix(payload.size());
  for (const uint64_t word : payload) {
    mix(word);
  }
  return h;
}

inline bool MetaRecordVerifies(const MetaRecord& r) {
  return r.checksum == MetaChecksum(r.seq, r.type, r.payload);
}

// kBlockDirty payload: [block, oob_kind_of_first_program].
inline std::vector<uint64_t> EncodeBlockDirty(uint64_t block, uint8_t kind) {
  return {block, static_cast<uint64_t>(kind)};
}

// kCheckpoint payload, two layouts:
//   legacy:  [G, D,        G × (vtpn, ptpn, seq), D × (lpn, ppn, seq)]
//   flagged: [G, D, flags, G × (vtpn, ptpn, seq), D × (lpn, ppn, seq)]
// The layouts are unambiguous — their sizes differ by exactly one word for
// any (G, D) — and legacy parses as flags == 0.
//
// The G translation-directory triples are *deltas* — entries whose GTD slot
// changed since the previous checkpoint. The device folds them into its
// cumulative checkpoint-area directory atomically with the append (real FTLs
// update map-block directories in place the same way), so a single record
// stays proportional to the dirty window while recovery still reads a full
// directory. The D data triples are the point-in-time dirty cached mappings
// (not yet persisted to translation pages) and are replayed from the log.
//
// With kCheckpointFlagCumulativeData set (RAM-table FTLs — their whole map
// is "dirty cache", nothing is ever persisted to translation pages), the D
// triples are *deltas since the previous checkpoint* instead, folded into a
// device-side cumulative data directory exactly like the GTD triples; a
// triple with ppn == kInvalidPpn clears its entry (a TRIM or a mapping that
// vanished). Recovery then reads the cumulative directory rather than
// replaying one record's full map.
constexpr uint64_t kCheckpointFlagCumulativeData = 1;

struct CheckpointView {
  uint64_t gtd_count = 0;
  uint64_t dirty_count = 0;
  uint64_t flags = 0;
  const uint64_t* gtd = nullptr;    // G triples, 3 words each.
  const uint64_t* dirty = nullptr;  // D triples, 3 words each.

  bool cumulative_data() const { return (flags & kCheckpointFlagCumulativeData) != 0; }
};

inline bool ParseCheckpointPayload(const std::vector<uint64_t>& payload, CheckpointView* view) {
  if (payload.size() < 2) {
    return false;
  }
  const uint64_t g = payload[0];
  const uint64_t d = payload[1];
  uint64_t header = 0;
  if (payload.size() == 2 + 3 * (g + d)) {
    header = 2;
    view->flags = 0;
  } else if (payload.size() == 3 + 3 * (g + d)) {
    header = 3;
    view->flags = payload[2];
  } else {
    return false;
  }
  view->gtd_count = g;
  view->dirty_count = d;
  view->gtd = payload.data() + header;
  view->dirty = payload.data() + header + 3 * g;
  return true;
}

}  // namespace tpftl

#endif  // SRC_FLASH_META_H_
