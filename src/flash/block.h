// Per-block page-state bookkeeping.
//
// A flash block is the erase unit; pages within it must be programmed
// sequentially (enforced via the write cursor, matching real NAND ordering
// constraints) and transition free → valid → invalid → (erase) → free.

#ifndef SRC_FLASH_BLOCK_H_
#define SRC_FLASH_BLOCK_H_

#include <cstdint>
#include <vector>

#include "src/flash/types.h"

namespace tpftl {

enum class PageState : uint8_t { kFree = 0, kValid = 1, kInvalid = 2 };

class Block {
 public:
  explicit Block(uint64_t pages_per_block);

  // Marks the next sequential free page as valid; returns its offset.
  // Requires HasFreePage().
  uint64_t Program();

  // Programs a specific free page (out-of-order). Modern NAND mandates
  // sequential in-block programming; this entry point exists for the
  // block-level FTL baseline, which models older SLC parts where pages map
  // to fixed in-block offsets.
  void ProgramAt(uint64_t offset);

  // valid → invalid.
  void Invalidate(uint64_t offset);

  // Clears all pages, advances the erase counter.
  void Erase();

  PageState StateOf(uint64_t offset) const;
  bool HasFreePage() const { return programmed_count_ < states_.size(); }
  uint64_t free_pages() const { return states_.size() - programmed_count_; }
  uint64_t valid_pages() const { return valid_count_; }
  uint64_t invalid_pages() const { return programmed_count_ - valid_count_; }
  uint64_t erase_count() const { return erase_count_; }
  uint64_t write_cursor() const { return write_cursor_; }
  uint64_t pages_per_block() const { return states_.size(); }

 private:
  std::vector<PageState> states_;
  uint64_t write_cursor_ = 0;  // Next offset for sequential Program().
  uint64_t programmed_count_ = 0;
  uint64_t valid_count_ = 0;
  uint64_t erase_count_ = 0;
};

}  // namespace tpftl

#endif  // SRC_FLASH_BLOCK_H_
