// Per-block page-state bookkeeping on a device-wide packed arena.
//
// A flash block is the erase unit; pages within it must be programmed
// sequentially (enforced via the write cursor, matching real NAND ordering
// constraints) and transition free → valid → invalid → (erase) → free.
//
// Page states for the whole device live in one PageStateArena: a packed
// 2-bit-per-page state array (32 states per 64-bit word, each block padded to
// whole words so erase is a plain word fill) plus a flat array of per-block
// counters (write cursor, programmed/valid counts, erase count). Replaying
// millions of requests hammers Program/Invalidate/StateOf, so these compile
// down to branch-light index arithmetic on two contiguous allocations —
// no per-block heap nodes, no pointer chasing.
//
// `Block` is a thin view (arena pointer + block id) kept source-compatible
// with the old per-block class: BlockManager, the GC loops, and tests use the
// same accessor API. Views are cheap to copy and are invalidated only by
// destroying the arena.

#ifndef SRC_FLASH_BLOCK_H_
#define SRC_FLASH_BLOCK_H_

#include <cstdint>
#include <vector>

#include "src/flash/types.h"
#include "src/util/assert.h"

namespace tpftl {

enum class PageState : uint8_t { kFree = 0, kValid = 1, kInvalid = 2 };

class Block;

// Device-wide packed page-state storage. Owned by NandFlash; tests may
// construct one directly to exercise single blocks.
class PageStateArena {
 public:
  PageStateArena(uint64_t total_blocks, uint64_t pages_per_block);

  uint64_t total_blocks() const { return counters_.size(); }
  uint64_t pages_per_block() const { return pages_per_block_; }

  // View of one block (valid while the arena lives).
  Block block(BlockId id);

  PageState StateAt(BlockId block, uint64_t offset) const {
    TPFTL_DCHECK(block < counters_.size() && offset < pages_per_block_);
    const uint64_t word = state_words_[block * words_per_block_ + (offset >> 5)];
    return static_cast<PageState>((word >> ((offset & 31) * 2)) & 3);
  }

 private:
  friend class Block;

  struct Counters {
    uint32_t write_cursor = 0;  // Next offset for sequential Program().
    uint32_t programmed = 0;
    uint32_t valid = 0;
    uint32_t erase = 0;
  };

  void SetState(BlockId block, uint64_t offset, PageState state) {
    TPFTL_DCHECK(block < counters_.size() && offset < pages_per_block_);
    uint64_t& word = state_words_[block * words_per_block_ + (offset >> 5)];
    const uint64_t shift = (offset & 31) * 2;
    word = (word & ~(uint64_t{3} << shift)) |
           (static_cast<uint64_t>(state) << shift);
  }

  uint64_t pages_per_block_;
  uint64_t words_per_block_;  // ceil(pages_per_block / 32): blocks don't share words.
  std::vector<uint64_t> state_words_;
  std::vector<Counters> counters_;
};

class Block {
 public:
  Block(PageStateArena* arena, BlockId id) : arena_(arena), id_(id) {
    TPFTL_DCHECK(arena != nullptr && id < arena->total_blocks());
  }

  // Marks the next sequential free page as valid; returns its offset.
  // Requires HasFreePage().
  uint64_t Program() {
    PageStateArena::Counters& c = counters();
    TPFTL_DCHECK_MSG(c.programmed < arena_->pages_per_block_, "program on a full block");
    TPFTL_DCHECK_MSG(c.write_cursor < arena_->pages_per_block_ &&
                         arena_->StateAt(id_, c.write_cursor) == PageState::kFree,
                     "sequential programming past an out-of-order write");
    const uint64_t offset = c.write_cursor++;
    arena_->SetState(id_, offset, PageState::kValid);
    ++c.valid;
    ++c.programmed;
    return offset;
  }

  // Programs a specific free page (out-of-order). Modern NAND mandates
  // sequential in-block programming; this entry point exists for the
  // block-level FTL baseline, which models older SLC parts where pages map
  // to fixed in-block offsets.
  void ProgramAt(uint64_t offset) {
    TPFTL_DCHECK(offset < arena_->pages_per_block_);
    TPFTL_DCHECK_MSG(arena_->StateAt(id_, offset) == PageState::kFree,
                     "program of a non-free page");
    PageStateArena::Counters& c = counters();
    arena_->SetState(id_, offset, PageState::kValid);
    ++c.valid;
    ++c.programmed;
    if (offset >= c.write_cursor) {
      c.write_cursor = static_cast<uint32_t>(offset + 1);
    }
  }

  // Consumes a specific free page as unreadable (free → invalid directly):
  // a program that failed verify, or one interrupted by power loss. The page
  // counts as programmed (it can never be written again before an erase) but
  // never as valid. Advances the write cursor like ProgramAt so sequential
  // programming resumes past the ruined page.
  void ProgramFailedAt(uint64_t offset) {
    TPFTL_DCHECK(offset < arena_->pages_per_block_);
    TPFTL_DCHECK_MSG(arena_->StateAt(id_, offset) == PageState::kFree,
                     "failed program of a non-free page");
    PageStateArena::Counters& c = counters();
    arena_->SetState(id_, offset, PageState::kInvalid);
    ++c.programmed;
    if (offset >= c.write_cursor) {
      c.write_cursor = static_cast<uint32_t>(offset + 1);
    }
  }

  // valid → invalid.
  void Invalidate(uint64_t offset) {
    TPFTL_DCHECK(offset < arena_->pages_per_block_);
    TPFTL_DCHECK_MSG(arena_->StateAt(id_, offset) == PageState::kValid,
                     "invalidate of a non-valid page");
    PageStateArena::Counters& c = counters();
    arena_->SetState(id_, offset, PageState::kInvalid);
    TPFTL_DCHECK(c.valid > 0);
    --c.valid;
  }

  // Clears all pages, advances the erase counter.
  void Erase();

  PageState StateOf(uint64_t offset) const { return arena_->StateAt(id_, offset); }
  bool HasFreePage() const { return counters().programmed < arena_->pages_per_block_; }
  uint64_t free_pages() const { return arena_->pages_per_block_ - counters().programmed; }
  uint64_t valid_pages() const { return counters().valid; }
  uint64_t invalid_pages() const { return counters().programmed - counters().valid; }
  uint64_t erase_count() const { return counters().erase; }
  uint64_t write_cursor() const { return counters().write_cursor; }
  uint64_t pages_per_block() const { return arena_->pages_per_block_; }
  BlockId id() const { return id_; }

 private:
  PageStateArena::Counters& counters() const { return arena_->counters_[id_]; }

  PageStateArena* arena_;
  BlockId id_;
};

inline Block PageStateArena::block(BlockId id) { return Block(this, id); }

}  // namespace tpftl

#endif  // SRC_FLASH_BLOCK_H_
