#include "src/flash/block.h"

#include <algorithm>

#include "src/util/assert.h"

namespace tpftl {

Block::Block(uint64_t pages_per_block) : states_(pages_per_block, PageState::kFree) {
  TPFTL_CHECK(pages_per_block > 0);
}

uint64_t Block::Program() {
  TPFTL_CHECK_MSG(HasFreePage(), "program on a full block");
  TPFTL_CHECK_MSG(write_cursor_ < states_.size() && states_[write_cursor_] == PageState::kFree,
                  "sequential programming past an out-of-order write");
  const uint64_t offset = write_cursor_++;
  states_[offset] = PageState::kValid;
  ++valid_count_;
  ++programmed_count_;
  return offset;
}

void Block::ProgramAt(uint64_t offset) {
  TPFTL_CHECK(offset < states_.size());
  TPFTL_CHECK_MSG(states_[offset] == PageState::kFree, "program of a non-free page");
  states_[offset] = PageState::kValid;
  ++valid_count_;
  ++programmed_count_;
  if (offset >= write_cursor_) {
    write_cursor_ = offset + 1;
  }
}

void Block::Invalidate(uint64_t offset) {
  TPFTL_CHECK(offset < states_.size());
  TPFTL_CHECK_MSG(states_[offset] == PageState::kValid, "invalidate of a non-valid page");
  states_[offset] = PageState::kInvalid;
  TPFTL_DCHECK(valid_count_ > 0);
  --valid_count_;
}

void Block::Erase() {
  std::fill(states_.begin(), states_.end(), PageState::kFree);
  write_cursor_ = 0;
  programmed_count_ = 0;
  valid_count_ = 0;
  ++erase_count_;
}

PageState Block::StateOf(uint64_t offset) const {
  TPFTL_CHECK(offset < states_.size());
  return states_[offset];
}

}  // namespace tpftl
