#include "src/flash/block.h"

#include <algorithm>

#include "src/util/assert.h"

namespace tpftl {

PageStateArena::PageStateArena(uint64_t total_blocks, uint64_t pages_per_block)
    : pages_per_block_(pages_per_block),
      words_per_block_((pages_per_block + 31) / 32),
      state_words_(total_blocks * ((pages_per_block + 31) / 32), 0),
      counters_(total_blocks) {
  TPFTL_CHECK(total_blocks > 0);
  TPFTL_CHECK(pages_per_block > 0);
  TPFTL_CHECK_MSG(pages_per_block <= (uint64_t{1} << 32),
                  "pages_per_block exceeds the 32-bit counter range");
}

void Block::Erase() {
  const uint64_t first = id_ * arena_->words_per_block_;
  std::fill(arena_->state_words_.begin() + first,
            arena_->state_words_.begin() + first + arena_->words_per_block_, uint64_t{0});
  PageStateArena::Counters& c = counters();
  c.write_cursor = 0;
  c.programmed = 0;
  c.valid = 0;
  ++c.erase;
}

}  // namespace tpftl
