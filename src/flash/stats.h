// Raw operation counters of the NAND device.
//
// The flash layer counts physical operations and accumulated device busy
// time; semantic attribution (data vs. translation, host vs. GC) happens in
// the FTL layer's AtStats. Keeping the two separate lets tests cross-check
// that FTL-attributed counts sum to the raw device counts.

#ifndef SRC_FLASH_STATS_H_
#define SRC_FLASH_STATS_H_

#include <cstdint>

#include "src/flash/types.h"

namespace tpftl {

struct FlashStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t block_erases = 0;
  // Injected failures (see flash/fault.h). Failed operations still consume
  // device busy time but are not counted as completed reads/writes/erases,
  // so the FTL-attribution cross-checks stay exact on fault-free runs.
  uint64_t program_failures = 0;
  uint64_t erase_failures = 0;
  // Metadata-log traffic (flash/meta.h): journal/checkpoint record appends
  // and their serialized bytes. Billed into busy time at the byte-
  // proportional page-write rate, but kept out of page_writes so write-
  // amplification and FTL-attribution cross-checks see data traffic only.
  uint64_t meta_appends = 0;
  uint64_t meta_bytes_written = 0;
  uint64_t meta_trims = 0;
  MicroSec busy_time_us = 0.0;

  void Reset() { *this = FlashStats(); }
};

}  // namespace tpftl

#endif  // SRC_FLASH_STATS_H_
