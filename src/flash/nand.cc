#include "src/flash/nand.h"

#include <algorithm>

#include "src/flash/fault.h"
#include "src/util/assert.h"

namespace tpftl {

// Everything RestoreToCutInstant must roll back. op_index_ is deliberately
// not part of the snapshot: operation indices keep advancing monotonically
// across the cut so a plan can never re-fire.
struct NandFlash::PowerSnapshot {
  PageStateArena arena;
  std::vector<uint64_t> oob;
  std::vector<uint64_t> oob_seq;
  std::vector<uint8_t> oob_kind;
  std::vector<uint8_t> bad;
  FlashStats stats;
  std::vector<MicroSec> die_free_at;
  std::vector<MicroSec> die_busy_us;
  uint64_t program_seq = 0;
};

NandFlash::NandFlash(const FlashGeometry& geometry)
    : geometry_(geometry),
      arena_(geometry.total_blocks, geometry.pages_per_block),
      oob_(geometry.total_pages(), ~0ULL),
      oob_seq_(geometry.total_pages(), 0),
      oob_kind_(geometry.total_pages(), static_cast<uint8_t>(OobKind::kNone)),
      bad_(geometry.total_blocks, 0),
      multi_die_(geometry.total_dies() > 1),
      die_free_at_(geometry.total_dies(), 0.0),
      die_busy_us_(geometry.total_dies(), 0.0) {
  TPFTL_CHECK(geometry.total_blocks > 0);
  TPFTL_CHECK_MSG(geometry.ParallelLayoutValid(),
                  "channels/dies/planes must be powers of two");
  TPFTL_CHECK_MSG(geometry.total_blocks % geometry.total_dies() == 0,
                  "blocks must stripe uniformly across dies (see MakeGeometryParallel)");
}

NandFlash::~NandFlash() = default;

MicroSec NandFlash::ProgramPageAt(Ppn ppn, uint64_t oob_tag) {
  const BlockId block = geometry_.BlockOf(ppn);
  TPFTL_DCHECK(block < arena_.total_blocks());
  if (fault_ != nullptr) [[unlikely]] {
    if (MaybeArmPowerCut(++op_index_)) {
      torn_ppn_ = ppn;
    }
  } else {
    ++op_index_;
  }
  arena_.block(block).ProgramAt(geometry_.OffsetOf(ppn));
  oob_[ppn] = oob_tag;
  oob_seq_[ppn] = ++program_seq_;
  oob_kind_[ppn] = static_cast<uint8_t>(OobKind::kData);
  ++stats_.page_writes;
  stats_.busy_time_us += geometry_.page_write_us;
  obs::ChargeFlash(obs::FlashOp::kProgram, geometry_.page_write_us);
  if (multi_die_) [[unlikely]] {
    AdvanceDie(geometry_.DieOfBlock(block), geometry_.page_write_us);
  }
  return geometry_.page_write_us;
}

MicroSec NandFlash::ProgramPageFaulty(BlockId block, uint64_t oob_tag, Ppn* out_ppn,
                                      OobKind kind) {
  TPFTL_DCHECK(block < arena_.total_blocks());
  const uint64_t op = ++op_index_;
  const bool is_cut_op = MaybeArmPowerCut(op);
  if (!power_cut_ && fault_->ShouldFailProgram(op)) {
    // Failed verify: the page is consumed as unreadable, never handed out.
    const uint64_t offset = arena_.block(block).write_cursor();
    arena_.block(block).ProgramFailedAt(offset);
    TearPage(geometry_.PpnOf(block, offset));
    ++stats_.program_failures;
    stats_.busy_time_us += geometry_.page_write_us;
    obs::ChargeFlash(obs::FlashOp::kProgram, geometry_.page_write_us);
    if (multi_die_) [[unlikely]] {
      AdvanceDie(geometry_.DieOfBlock(block), geometry_.page_write_us);
    }
    if (out_ppn != nullptr) {
      *out_ppn = kInvalidPpn;
    }
    return geometry_.page_write_us;
  }
  const uint64_t offset = arena_.block(block).Program();
  const Ppn ppn = geometry_.PpnOf(block, offset);
  if (is_cut_op) {
    torn_ppn_ = ppn;
  }
  oob_[ppn] = oob_tag;
  oob_seq_[ppn] = ++program_seq_;
  oob_kind_[ppn] = static_cast<uint8_t>(kind);
  if (out_ppn != nullptr) {
    *out_ppn = ppn;
  }
  ++stats_.page_writes;
  stats_.busy_time_us += geometry_.page_write_us;
  obs::ChargeFlash(obs::FlashOp::kProgram, geometry_.page_write_us);
  if (multi_die_) [[unlikely]] {
    AdvanceDie(geometry_.DieOfBlock(block), geometry_.page_write_us);
  }
  return geometry_.page_write_us;
}

MicroSec NandFlash::EraseBlock(BlockId block) {
  TPFTL_CHECK(block < arena_.total_blocks());
  TPFTL_CHECK_MSG(arena_.block(block).valid_pages() == 0,
                  "erase of a block that still holds valid pages");
  if (fault_ != nullptr) [[unlikely]] {
    const uint64_t op = ++op_index_;
    // A cut during an erase leaves the block intact: the snapshot is taken
    // before the erase applies, so the restore discards it wholesale.
    MaybeArmPowerCut(op);
    if (!power_cut_ && fault_->ShouldFailErase(op)) {
      bad_[block] = 1;
      ++stats_.erase_failures;
      stats_.busy_time_us += geometry_.block_erase_us;
      obs::ChargeFlash(obs::FlashOp::kErase, geometry_.block_erase_us);
      if (multi_die_) [[unlikely]] {
        AdvanceDie(geometry_.DieOfBlock(block), geometry_.block_erase_us);
      }
      return geometry_.block_erase_us;
    }
  } else {
    ++op_index_;
  }
  arena_.block(block).Erase();
  ++stats_.block_erases;
  stats_.busy_time_us += geometry_.block_erase_us;
  obs::ChargeFlash(obs::FlashOp::kErase, geometry_.block_erase_us);
  if (multi_die_) [[unlikely]] {
    AdvanceDie(geometry_.DieOfBlock(block), geometry_.block_erase_us);
  }
  return geometry_.block_erase_us;
}

bool NandFlash::MaybeArmPowerCut(uint64_t op) {
  if (power_cut_ || !fault_->PowerCutReached(op)) {
    return false;
  }
  snapshot_ = std::make_unique<PowerSnapshot>(PowerSnapshot{
      arena_, oob_, oob_seq_, oob_kind_, bad_, stats_, die_free_at_, die_busy_us_,
      program_seq_});
  power_cut_ = true;
  return true;
}

void NandFlash::TearPage(Ppn ppn) {
  oob_[ppn] = ~0ULL;
  oob_seq_[ppn] = 0;
  oob_kind_[ppn] = static_cast<uint8_t>(OobKind::kNone);
}

void NandFlash::RestoreToCutInstant() {
  TPFTL_CHECK_MSG(power_cut_ && snapshot_ != nullptr, "no power cut to restore");
  arena_ = snapshot_->arena;
  oob_ = std::move(snapshot_->oob);
  oob_seq_ = std::move(snapshot_->oob_seq);
  oob_kind_ = std::move(snapshot_->oob_kind);
  bad_ = std::move(snapshot_->bad);
  stats_ = snapshot_->stats;
  die_free_at_ = std::move(snapshot_->die_free_at);
  die_busy_us_ = std::move(snapshot_->die_busy_us);
  program_seq_ = snapshot_->program_seq;
  snapshot_.reset();
  if (torn_ppn_ != kInvalidPpn) {
    // The interrupted program consumed its page without completing: after
    // the rollback the page is free again, so re-consume it as torn.
    const BlockId block = geometry_.BlockOf(torn_ppn_);
    arena_.block(block).ProgramFailedAt(geometry_.OffsetOf(torn_ppn_));
    TearPage(torn_ppn_);
    torn_ppn_ = kInvalidPpn;
  }
  power_cut_ = false;
  fault_.reset();  // Power is back; recovery runs fault-free.
}

void NandFlash::InstallFaultPlan(const FaultPlan& plan) {
  TPFTL_CHECK_MSG(!power_cut_, "fault plan installed while power is cut");
  fault_ = std::make_unique<FaultInjector>(plan);
  for (const BlockId b : plan.bad_blocks) {
    TPFTL_CHECK(b < bad_.size());
    bad_[b] = 1;
  }
}

void NandFlash::ClearFaultPlan() {
  TPFTL_CHECK_MSG(!power_cut_, "fault plan cleared while power is cut");
  fault_.reset();
}

bool NandFlash::IsWornOut(BlockId block) const {
  TPFTL_CHECK(block < arena_.total_blocks());
  return geometry_.max_erase_cycles > 0 &&
         this->block(block).erase_count() >= geometry_.max_erase_cycles;
}

uint64_t NandFlash::TotalEraseCount() const {
  uint64_t total = 0;
  for (BlockId b = 0; b < arena_.total_blocks(); ++b) {
    total += block(b).erase_count();
  }
  return total;
}

uint64_t NandFlash::MaxEraseCount() const {
  uint64_t max = 0;
  for (BlockId b = 0; b < arena_.total_blocks(); ++b) {
    max = std::max(max, block(b).erase_count());
  }
  return max;
}

}  // namespace tpftl
