#include "src/flash/nand.h"

#include "src/util/assert.h"

namespace tpftl {

NandFlash::NandFlash(const FlashGeometry& geometry)
    : geometry_(geometry), oob_(geometry.total_pages(), ~0ULL) {
  TPFTL_CHECK(geometry.total_blocks > 0);
  blocks_.reserve(geometry.total_blocks);
  for (uint64_t i = 0; i < geometry.total_blocks; ++i) {
    blocks_.emplace_back(geometry.pages_per_block);
  }
}

MicroSec NandFlash::ReadPage(Ppn ppn) {
  const BlockId block = geometry_.BlockOf(ppn);
  TPFTL_CHECK(block < blocks_.size());
  TPFTL_CHECK_MSG(blocks_[block].StateOf(geometry_.OffsetOf(ppn)) != PageState::kFree,
                  "read of an unprogrammed page");
  ++stats_.page_reads;
  stats_.busy_time_us += geometry_.page_read_us;
  return geometry_.page_read_us;
}

MicroSec NandFlash::ProgramPage(BlockId block, uint64_t oob_tag, Ppn* out_ppn) {
  TPFTL_CHECK(block < blocks_.size());
  const uint64_t offset = blocks_[block].Program();
  const Ppn ppn = geometry_.PpnOf(block, offset);
  oob_[ppn] = oob_tag;
  if (out_ppn != nullptr) {
    *out_ppn = ppn;
  }
  ++stats_.page_writes;
  stats_.busy_time_us += geometry_.page_write_us;
  return geometry_.page_write_us;
}

MicroSec NandFlash::ProgramPageAt(Ppn ppn, uint64_t oob_tag) {
  const BlockId block = geometry_.BlockOf(ppn);
  TPFTL_CHECK(block < blocks_.size());
  blocks_[block].ProgramAt(geometry_.OffsetOf(ppn));
  oob_[ppn] = oob_tag;
  ++stats_.page_writes;
  stats_.busy_time_us += geometry_.page_write_us;
  return geometry_.page_write_us;
}

void NandFlash::InvalidatePage(Ppn ppn) {
  const BlockId block = geometry_.BlockOf(ppn);
  TPFTL_CHECK(block < blocks_.size());
  blocks_[block].Invalidate(geometry_.OffsetOf(ppn));
}

MicroSec NandFlash::EraseBlock(BlockId block) {
  TPFTL_CHECK(block < blocks_.size());
  TPFTL_CHECK_MSG(blocks_[block].valid_pages() == 0,
                  "erase of a block that still holds valid pages");
  blocks_[block].Erase();
  ++stats_.block_erases;
  stats_.busy_time_us += geometry_.block_erase_us;
  return geometry_.block_erase_us;
}

bool NandFlash::IsWornOut(BlockId block) const {
  TPFTL_CHECK(block < blocks_.size());
  return geometry_.max_erase_cycles > 0 &&
         blocks_[block].erase_count() >= geometry_.max_erase_cycles;
}

uint64_t NandFlash::OobTag(Ppn ppn) const {
  TPFTL_CHECK(ppn < oob_.size());
  return oob_[ppn];
}

PageState NandFlash::StateOf(Ppn ppn) const {
  const BlockId block = geometry_.BlockOf(ppn);
  TPFTL_CHECK(block < blocks_.size());
  return blocks_[block].StateOf(geometry_.OffsetOf(ppn));
}

const Block& NandFlash::block(BlockId id) const {
  TPFTL_CHECK(id < blocks_.size());
  return blocks_[id];
}

uint64_t NandFlash::TotalEraseCount() const {
  uint64_t total = 0;
  for (const Block& b : blocks_) {
    total += b.erase_count();
  }
  return total;
}

uint64_t NandFlash::MaxEraseCount() const {
  uint64_t max = 0;
  for (const Block& b : blocks_) {
    if (b.erase_count() > max) {
      max = b.erase_count();
    }
  }
  return max;
}

}  // namespace tpftl
