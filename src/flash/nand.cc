#include "src/flash/nand.h"

#include <algorithm>

#include "src/flash/fault.h"
#include "src/util/assert.h"

namespace tpftl {

namespace {
// block_epoch_ sentinel: the block has no journal record in any live epoch
// and must (re-)journal on its next program. Also the post-erase value — an
// erased block can be re-allocated to a different pool, so the stale record
// from before the erase must not suppress a fresh one with the new kind.
constexpr uint64_t kNeverJournaled = ~0ULL;
}  // namespace

// Everything RestoreToCutInstant must roll back. op_index_ is deliberately
// not part of the snapshot: operation indices keep advancing monotonically
// across the cut so a plan can never re-fire.
struct NandFlash::PowerSnapshot {
  PageStateArena arena;
  SegmentedArray<uint64_t> oob;
  SegmentedArray<uint64_t> oob_seq;
  SegmentedArray<uint8_t> oob_kind;
  std::vector<uint8_t> bad;
  FlashStats stats;
  std::vector<MicroSec> die_free_at;
  std::vector<MicroSec> die_busy_us;
  uint64_t program_seq = 0;
  std::vector<MetaRecord> meta_log;
  uint64_t meta_seq = 0;
  uint64_t meta_epoch = 0;
  std::vector<uint64_t> block_epoch;
  std::vector<uint64_t> block_newest_seq;
  std::vector<uint8_t> block_pool_kind;
  uint64_t meta_records_since_checkpoint = 0;
  SegmentedArray<Ppn> persisted;
  SegmentedArray<Ppn> ckpt_gtd_ppn;
  SegmentedArray<uint64_t> ckpt_gtd_seq;
  SegmentedArray<Ppn> ckpt_data_ppn;
  SegmentedArray<uint64_t> ckpt_data_seq;
  uint64_t ckpt_data_entries = 0;
};

NandFlash::NandFlash(const FlashGeometry& geometry)
    : geometry_(geometry),
      arena_(geometry.total_blocks, geometry.pages_per_block),
      oob_(geometry.total_pages(), ~0ULL, geometry.sparse_segment_pages),
      oob_seq_(geometry.total_pages(), 0, geometry.sparse_segment_pages),
      oob_kind_(geometry.total_pages(), static_cast<uint8_t>(OobKind::kNone),
                geometry.sparse_segment_pages),
      bad_(geometry.total_blocks, 0),
      multi_die_(geometry.total_dies() > 1),
      die_free_at_(geometry.total_dies(), 0.0),
      die_busy_us_(geometry.total_dies(), 0.0),
      block_epoch_(geometry.total_blocks, kNeverJournaled),
      block_newest_seq_(geometry.total_blocks, 0),
      block_pool_kind_(geometry.total_blocks, static_cast<uint8_t>(OobKind::kNone)),
      persisted_(geometry.total_pages(), kInvalidPpn, geometry.sparse_segment_pages),
      ckpt_gtd_ppn_(geometry.total_pages(), kInvalidPpn, geometry.sparse_segment_pages),
      ckpt_gtd_seq_(geometry.total_pages(), 0, geometry.sparse_segment_pages),
      ckpt_data_ppn_(geometry.total_pages(), kInvalidPpn, geometry.sparse_segment_pages),
      ckpt_data_seq_(geometry.total_pages(), 0, geometry.sparse_segment_pages) {
  TPFTL_CHECK(geometry.total_blocks > 0);
  TPFTL_CHECK_MSG(geometry.ParallelLayoutValid(),
                  "channels/dies/planes must be powers of two");
  TPFTL_CHECK_MSG(geometry.total_blocks % geometry.total_dies() == 0,
                  "blocks must stripe uniformly across dies (see MakeGeometryParallel)");
  TPFTL_CHECK_MSG(geometry.sparse_segment_pages == 0 ||
                      geometry.sparse_segment_pages %
                              geometry.entries_per_translation_page() ==
                          0,
                  "sparse segments must hold whole translation-page spans");
}

NandFlash::~NandFlash() = default;

MicroSec NandFlash::ProgramPageAt(Ppn ppn, uint64_t oob_tag) {
  const BlockId block = geometry_.BlockOf(ppn);
  TPFTL_DCHECK(block < arena_.total_blocks());
  if (journal_enabled_) [[unlikely]] {
    MaybeJournalDirty(block, OobKind::kData);
  }
  if (fault_ != nullptr) [[unlikely]] {
    if (MaybeArmPowerCut(++op_index_)) {
      torn_ppn_ = ppn;
    }
  } else {
    ++op_index_;
  }
  arena_.block(block).ProgramAt(geometry_.OffsetOf(ppn));
  oob_.Set(ppn, oob_tag);
  oob_seq_.Set(ppn, ++program_seq_);
  oob_kind_.Set(ppn, static_cast<uint8_t>(OobKind::kData));
  block_newest_seq_[block] = program_seq_;
  if (block_pool_kind_[block] == static_cast<uint8_t>(OobKind::kNone)) {
    block_pool_kind_[block] = static_cast<uint8_t>(OobKind::kData);
  }
  ++stats_.page_writes;
  stats_.busy_time_us += geometry_.page_write_us;
  obs::ChargeFlash(obs::FlashOp::kProgram, geometry_.page_write_us);
  if (multi_die_) [[unlikely]] {
    AdvanceDie(geometry_.DieOfBlock(block), geometry_.page_write_us);
  }
  return geometry_.page_write_us;
}

MicroSec NandFlash::ProgramPageFaulty(BlockId block, uint64_t oob_tag, Ppn* out_ppn,
                                      OobKind kind) {
  TPFTL_DCHECK(block < arena_.total_blocks());
  const uint64_t op = ++op_index_;
  const bool is_cut_op = MaybeArmPowerCut(op);
  if (!power_cut_ && fault_->ShouldFailProgram(op)) {
    // Failed verify: the page is consumed as unreadable, never handed out.
    const uint64_t offset = arena_.block(block).write_cursor();
    arena_.block(block).ProgramFailedAt(offset);
    TearPage(geometry_.PpnOf(block, offset));
    ++stats_.program_failures;
    stats_.busy_time_us += geometry_.page_write_us;
    obs::ChargeFlash(obs::FlashOp::kProgram, geometry_.page_write_us);
    if (multi_die_) [[unlikely]] {
      AdvanceDie(geometry_.DieOfBlock(block), geometry_.page_write_us);
    }
    if (out_ppn != nullptr) {
      *out_ppn = kInvalidPpn;
    }
    return geometry_.page_write_us;
  }
  const uint64_t offset = arena_.block(block).Program();
  const Ppn ppn = geometry_.PpnOf(block, offset);
  if (is_cut_op) {
    torn_ppn_ = ppn;
  }
  oob_.Set(ppn, oob_tag);
  oob_seq_.Set(ppn, ++program_seq_);
  oob_kind_.Set(ppn, static_cast<uint8_t>(kind));
  block_newest_seq_[block] = program_seq_;
  if (block_pool_kind_[block] == static_cast<uint8_t>(OobKind::kNone)) {
    block_pool_kind_[block] = static_cast<uint8_t>(kind);
  }
  if (out_ppn != nullptr) {
    *out_ppn = ppn;
  }
  ++stats_.page_writes;
  stats_.busy_time_us += geometry_.page_write_us;
  obs::ChargeFlash(obs::FlashOp::kProgram, geometry_.page_write_us);
  if (multi_die_) [[unlikely]] {
    AdvanceDie(geometry_.DieOfBlock(block), geometry_.page_write_us);
  }
  return geometry_.page_write_us;
}

MicroSec NandFlash::EraseBlock(BlockId block) {
  TPFTL_CHECK(block < arena_.total_blocks());
  TPFTL_CHECK_MSG(arena_.block(block).valid_pages() == 0,
                  "erase of a block that still holds valid pages");
  if (fault_ != nullptr) [[unlikely]] {
    const uint64_t op = ++op_index_;
    // A cut during an erase leaves the block intact: the snapshot is taken
    // before the erase applies, so the restore discards it wholesale.
    MaybeArmPowerCut(op);
    if (!power_cut_ && fault_->ShouldFailErase(op)) {
      bad_[block] = 1;
      ++stats_.erase_failures;
      stats_.busy_time_us += geometry_.block_erase_us;
      obs::ChargeFlash(obs::FlashOp::kErase, geometry_.block_erase_us);
      if (multi_die_) [[unlikely]] {
        AdvanceDie(geometry_.DieOfBlock(block), geometry_.block_erase_us);
      }
      return geometry_.block_erase_us;
    }
  } else {
    ++op_index_;
  }
  arena_.block(block).Erase();
  block_newest_seq_[block] = 0;
  block_pool_kind_[block] = static_cast<uint8_t>(OobKind::kNone);
  // The erased block can be re-allocated to any pool, so its pre-erase
  // journal record (if any) must not suppress a fresh one.
  block_epoch_[block] = kNeverJournaled;
  ++stats_.block_erases;
  stats_.busy_time_us += geometry_.block_erase_us;
  obs::ChargeFlash(obs::FlashOp::kErase, geometry_.block_erase_us);
  if (multi_die_) [[unlikely]] {
    AdvanceDie(geometry_.DieOfBlock(block), geometry_.block_erase_us);
  }
  return geometry_.block_erase_us;
}

MicroSec NandFlash::AppendMetaRecord(MetaRecordType type, std::vector<uint64_t> payload) {
  const uint64_t op = ++op_index_;
  bool is_cut_op = false;
  if (fault_ != nullptr) [[unlikely]] {
    is_cut_op = MaybeArmPowerCut(op);
  }
  MetaRecord r;
  r.seq = ++meta_seq_;
  r.type = type;
  r.payload = std::move(payload);
  r.checksum = MetaChecksum(r.seq, r.type, r.payload);
  if (is_cut_op) {
    // The cut landed mid-append: RestoreToCutInstant re-appends the record
    // torn (unverifiable checksum) on top of the rolled-back log.
    torn_meta_ = true;
    torn_meta_record_ = r;
  }
  if (type == MetaRecordType::kCheckpoint) {
    // Atomic with the append: a torn checkpoint rolls the epoch, the
    // directory folds and the record counter back too, so blocks keep
    // journaling against the last *durable* checkpoint.
    ++meta_epoch_;
    meta_records_since_checkpoint_ = 0;
    CheckpointView view;
    TPFTL_CHECK_MSG(ParseCheckpointPayload(r.payload, &view),
                    "malformed checkpoint payload");
    for (uint64_t i = 0; i < view.gtd_count; ++i) {
      const uint64_t* triple = view.gtd + 3 * i;
      ckpt_gtd_ppn_.Set(triple[0], triple[1]);
      ckpt_gtd_seq_.Set(triple[0], triple[2]);
    }
    if (view.cumulative_data()) {
      // Cumulative-data mode: the dirty triples are deltas against the
      // device-side data directory; fold them like the GTD triples. A
      // kInvalidPpn triple clears its entry (TRIM / vanished mapping).
      for (uint64_t i = 0; i < view.dirty_count; ++i) {
        const uint64_t* triple = view.dirty + 3 * i;
        const Lpn lpn = triple[0];
        const bool was_live = ckpt_data_ppn_.Get(lpn) != kInvalidPpn;
        if (triple[1] == kInvalidPpn) {
          if (was_live) {
            ckpt_data_ppn_.Set(lpn, kInvalidPpn);
            ckpt_data_seq_.Set(lpn, 0);
            --ckpt_data_entries_;
          }
        } else {
          ckpt_data_ppn_.Set(lpn, triple[1]);
          ckpt_data_seq_.Set(lpn, triple[2]);
          if (!was_live) {
            ++ckpt_data_entries_;
          }
        }
      }
    }
  } else {
    ++meta_records_since_checkpoint_;
  }
  const uint64_t bytes = r.size_bytes();
  meta_log_.push_back(std::move(r));
  ++stats_.meta_appends;
  stats_.meta_bytes_written += bytes;
  // Records coalesce into the device's metadata page buffer: bill the
  // byte-proportional share of a page program.
  const MicroSec latency = geometry_.page_write_us * static_cast<double>(bytes) /
                           static_cast<double>(geometry_.page_size_bytes);
  stats_.busy_time_us += latency;
  obs::ChargeFlash(obs::FlashOp::kProgram, latency);
  obs::EmitInstant(type == MetaRecordType::kCheckpoint ? "checkpoint_flush"
                                                       : "journal_append");
  if (multi_die_) [[unlikely]] {
    // The metadata region lives on die 0.
    AdvanceDie(0, latency);
  }
  return latency;
}

MicroSec NandFlash::TrimMetaLogBefore(uint64_t before_seq) {
  const uint64_t op = ++op_index_;
  if (fault_ != nullptr) [[unlikely]] {
    // Atomic superblock-pointer update: a cut discards the trim wholesale
    // (the snapshot precedes the erase below); there is no torn-trim state.
    MaybeArmPowerCut(op);
  }
  auto it = meta_log_.begin();
  while (it != meta_log_.end() && it->seq < before_seq) {
    ++it;
  }
  meta_log_.erase(meta_log_.begin(), it);
  ++stats_.meta_trims;
  const MicroSec latency = geometry_.page_write_us;  // One pointer-page update.
  stats_.busy_time_us += latency;
  obs::ChargeFlash(obs::FlashOp::kProgram, latency);
  if (multi_die_) [[unlikely]] {
    AdvanceDie(0, latency);
  }
  return latency;
}

void NandFlash::MaybeJournalDirty(BlockId block, OobKind kind) {
  TPFTL_DCHECK(block < block_epoch_.size());
  if (block_epoch_[block] == meta_epoch_) {
    return;
  }
  AppendMetaRecord(MetaRecordType::kBlockDirty,
                   EncodeBlockDirty(block, static_cast<uint8_t>(kind)));
  // Marked only after the append: if a power cut tears the record, the mark
  // lands past the snapshot and is rolled back with everything else, so the
  // block journals again once power is restored.
  block_epoch_[block] = meta_epoch_;
}

void NandFlash::TestOnlyCorruptMetaRecord(size_t index) {
  TPFTL_CHECK(index < meta_log_.size());
  meta_log_[index].checksum ^= 0x1;
}

void NandFlash::TestOnlyDropMetaRecord(size_t index) {
  TPFTL_CHECK(index < meta_log_.size());
  meta_log_.erase(meta_log_.begin() + static_cast<ptrdiff_t>(index));
}

bool NandFlash::MaybeArmPowerCut(uint64_t op) {
  if (power_cut_ || !fault_->PowerCutReached(op)) {
    return false;
  }
  snapshot_ = std::make_unique<PowerSnapshot>(PowerSnapshot{
      arena_, oob_, oob_seq_, oob_kind_, bad_, stats_, die_free_at_, die_busy_us_,
      program_seq_, meta_log_, meta_seq_, meta_epoch_, block_epoch_,
      block_newest_seq_, block_pool_kind_, meta_records_since_checkpoint_,
      persisted_, ckpt_gtd_ppn_, ckpt_gtd_seq_, ckpt_data_ppn_, ckpt_data_seq_,
      ckpt_data_entries_});
  power_cut_ = true;
  return true;
}

void NandFlash::TearPage(Ppn ppn) {
  oob_.Set(ppn, ~0ULL);
  oob_seq_.Set(ppn, 0);
  oob_kind_.Set(ppn, static_cast<uint8_t>(OobKind::kNone));
}

void NandFlash::RestoreToCutInstant() {
  TPFTL_CHECK_MSG(power_cut_ && snapshot_ != nullptr, "no power cut to restore");
  arena_ = snapshot_->arena;
  oob_ = std::move(snapshot_->oob);
  oob_seq_ = std::move(snapshot_->oob_seq);
  oob_kind_ = std::move(snapshot_->oob_kind);
  bad_ = std::move(snapshot_->bad);
  stats_ = snapshot_->stats;
  die_free_at_ = std::move(snapshot_->die_free_at);
  die_busy_us_ = std::move(snapshot_->die_busy_us);
  program_seq_ = snapshot_->program_seq;
  meta_log_ = std::move(snapshot_->meta_log);
  meta_seq_ = snapshot_->meta_seq;
  meta_epoch_ = snapshot_->meta_epoch;
  block_epoch_ = std::move(snapshot_->block_epoch);
  block_newest_seq_ = std::move(snapshot_->block_newest_seq);
  block_pool_kind_ = std::move(snapshot_->block_pool_kind);
  meta_records_since_checkpoint_ = snapshot_->meta_records_since_checkpoint;
  persisted_ = std::move(snapshot_->persisted);
  ckpt_gtd_ppn_ = std::move(snapshot_->ckpt_gtd_ppn);
  ckpt_gtd_seq_ = std::move(snapshot_->ckpt_gtd_seq);
  ckpt_data_ppn_ = std::move(snapshot_->ckpt_data_ppn);
  ckpt_data_seq_ = std::move(snapshot_->ckpt_data_seq);
  ckpt_data_entries_ = snapshot_->ckpt_data_entries;
  snapshot_.reset();
  if (torn_ppn_ != kInvalidPpn) {
    // The interrupted program consumed its page without completing: after
    // the rollback the page is free again, so re-consume it as torn.
    const BlockId block = geometry_.BlockOf(torn_ppn_);
    arena_.block(block).ProgramFailedAt(geometry_.OffsetOf(torn_ppn_));
    TearPage(torn_ppn_);
    torn_ppn_ = kInvalidPpn;
  }
  if (torn_meta_) {
    // The interrupted append made it into the log without completing:
    // re-append it with a checksum that does not verify. Recovery truncates
    // it as the torn tail, and its epilogue checkpoint + trim drop it from
    // the device for good.
    MetaRecord r = std::move(torn_meta_record_);
    r.seq = ++meta_seq_;
    r.checksum = MetaChecksum(r.seq, r.type, r.payload) ^ 0x1;
    meta_log_.push_back(std::move(r));
    torn_meta_ = false;
  }
  power_cut_ = false;
  fault_.reset();  // Power is back; recovery runs fault-free.
}

void NandFlash::InstallFaultPlan(const FaultPlan& plan) {
  TPFTL_CHECK_MSG(!power_cut_, "fault plan installed while power is cut");
  fault_ = std::make_unique<FaultInjector>(plan);
  for (const BlockId b : plan.bad_blocks) {
    TPFTL_CHECK(b < bad_.size());
    bad_[b] = 1;
  }
}

void NandFlash::ClearFaultPlan() {
  TPFTL_CHECK_MSG(!power_cut_, "fault plan cleared while power is cut");
  fault_.reset();
}

bool NandFlash::IsWornOut(BlockId block) const {
  TPFTL_CHECK(block < arena_.total_blocks());
  return geometry_.max_erase_cycles > 0 &&
         this->block(block).erase_count() >= geometry_.max_erase_cycles;
}

uint64_t NandFlash::TotalEraseCount() const {
  uint64_t total = 0;
  for (BlockId b = 0; b < arena_.total_blocks(); ++b) {
    total += block(b).erase_count();
  }
  return total;
}

uint64_t NandFlash::MaxEraseCount() const {
  uint64_t max = 0;
  for (BlockId b = 0; b < arena_.total_blocks(); ++b) {
    max = std::max(max, block(b).erase_count());
  }
  return max;
}

}  // namespace tpftl
