#include "src/flash/nand.h"

#include <algorithm>

#include "src/util/assert.h"

namespace tpftl {

NandFlash::NandFlash(const FlashGeometry& geometry)
    : geometry_(geometry),
      arena_(geometry.total_blocks, geometry.pages_per_block),
      oob_(geometry.total_pages(), ~0ULL) {
  TPFTL_CHECK(geometry.total_blocks > 0);
}

MicroSec NandFlash::ProgramPageAt(Ppn ppn, uint64_t oob_tag) {
  const BlockId block = geometry_.BlockOf(ppn);
  TPFTL_DCHECK(block < arena_.total_blocks());
  arena_.block(block).ProgramAt(geometry_.OffsetOf(ppn));
  oob_[ppn] = oob_tag;
  ++stats_.page_writes;
  stats_.busy_time_us += geometry_.page_write_us;
  return geometry_.page_write_us;
}

MicroSec NandFlash::EraseBlock(BlockId block) {
  TPFTL_CHECK(block < arena_.total_blocks());
  TPFTL_CHECK_MSG(arena_.block(block).valid_pages() == 0,
                  "erase of a block that still holds valid pages");
  arena_.block(block).Erase();
  ++stats_.block_erases;
  stats_.busy_time_us += geometry_.block_erase_us;
  return geometry_.block_erase_us;
}

bool NandFlash::IsWornOut(BlockId block) const {
  TPFTL_CHECK(block < arena_.total_blocks());
  return geometry_.max_erase_cycles > 0 &&
         this->block(block).erase_count() >= geometry_.max_erase_cycles;
}

uint64_t NandFlash::TotalEraseCount() const {
  uint64_t total = 0;
  for (BlockId b = 0; b < arena_.total_blocks(); ++b) {
    total += block(b).erase_count();
  }
  return total;
}

uint64_t NandFlash::MaxEraseCount() const {
  uint64_t max = 0;
  for (BlockId b = 0; b < arena_.total_blocks(); ++b) {
    max = std::max(max, block(b).erase_count());
  }
  return max;
}

}  // namespace tpftl
