// Physical layout and timing parameters of the simulated NAND device.
//
// Defaults reproduce Table 3 of the paper (taken from Agrawal et al., "Design
// tradeoffs for SSD performance", USENIX ATC 2008): 4 KiB pages, 256 KiB
// blocks (64 pages), 25 µs read / 200 µs write / 1.5 ms erase, and 15 %
// over-provisioning.
//
// Parallel structure: the device is channels × dies-per-channel ×
// planes-per-die × blocks × pages. The die is the unit of parallelism — each
// die executes one read/program/erase at a time while independent dies
// overlap (NandFlash keeps a busy-until timeline per die). Addressing is
// bit-sliced, NVDIMMSim-style: with pages_per_block a power of two a PPN
// decomposes into pure bit fields
//
//   ppn = [ block-in-die | plane | die-in-channel | channel | page ]
//
// i.e. the page index occupies the low bits and the channel/die/plane
// coordinates are the low bits of the block id, so consecutively allocated
// blocks stripe across channels first, then dies, then planes. All three
// parallelism counts must be powers of two (1 is the default and reproduces
// the paper's flat single-die device exactly: every slice field is empty and
// the PPN math collapses to block * pages_per_block + page).

#ifndef SRC_FLASH_GEOMETRY_H_
#define SRC_FLASH_GEOMETRY_H_

#include <cstdint>

#include "src/flash/types.h"
#include "src/util/assert.h"

namespace tpftl {

// Full physical coordinate of one page (DecomposePpn).
struct FlashAddress {
  uint32_t channel = 0;
  uint32_t die = 0;    // Die within its channel.
  uint32_t plane = 0;  // Plane within its die.
  uint64_t block = 0;  // Block within its plane.
  uint64_t page = 0;   // Page within its block.
};

struct FlashGeometry {
  // --- layout ---
  uint64_t page_size_bytes = 4096;
  uint64_t pages_per_block = 64;
  uint64_t total_blocks = 0;  // Physical blocks, including over-provisioned space.

  // --- parallel structure (all powers of two; 1 = the paper's flat device) ---
  uint32_t channels = 1;
  uint32_t dies_per_channel = 1;
  uint32_t planes_per_die = 1;

  // --- timing (Table 3) ---
  MicroSec page_read_us = 25.0;
  MicroSec page_write_us = 200.0;
  MicroSec block_erase_us = 1500.0;

  // --- endurance ---
  // Erase cycles a block sustains before it must be retired as bad (§1:
  // "each block can only sustain a limited number of erasures").
  // 0 = unlimited (the paper's experiments do not wear blocks out).
  uint64_t max_erase_cycles = 0;

  // --- mapping-table packing ---
  // Each persisted mapping entry stores only the 4-byte PPN (§3.2: "only the
  // PPNs of mapping entries are stored in flash memory"), so a 4 KiB
  // translation page covers 1024 LPNs.
  uint64_t bytes_per_persisted_entry = 4;

  // --- sparse (materialize-on-write) per-page state ---
  // 0 (the default) keeps the per-page OOB arrays and the persisted-mapping
  // mirror dense — flat arrays, the PR-2 hot-path layout. A power of two
  // switches them to lazily materialized segments of this many pages, so a
  // TB-scale virtual device only pays memory for the footprint it actually
  // writes (util/segmented_array.h). Must be a multiple of
  // entries_per_translation_page() so persisted-page spans never cross a
  // segment boundary.
  uint64_t sparse_segment_pages = 0;

  uint64_t total_pages() const { return total_blocks * pages_per_block; }
  uint64_t block_size_bytes() const { return page_size_bytes * pages_per_block; }
  uint64_t entries_per_translation_page() const {
    return page_size_bytes / bytes_per_persisted_entry;
  }

  // Dies across the whole device — the independent command queues.
  uint32_t total_dies() const { return channels * dies_per_channel; }
  // True when the parallel fields describe a legal bit-sliced layout.
  bool ParallelLayoutValid() const {
    const auto pow2 = [](uint64_t v) { return v != 0 && (v & (v - 1)) == 0; };
    return pow2(channels) && pow2(dies_per_channel) && pow2(planes_per_die);
  }

  BlockId BlockOf(Ppn ppn) const { return ppn / pages_per_block; }
  uint64_t OffsetOf(Ppn ppn) const { return ppn % pages_per_block; }
  Ppn PpnOf(BlockId block, uint64_t offset) const {
    TPFTL_DCHECK(offset < pages_per_block);
    return block * pages_per_block + offset;
  }

  // Die coordinate of a block / page: the low bits of the block id, so block
  // allocation in id order stripes across dies. Returns a device-wide die
  // index in [0, total_dies()).
  uint32_t DieOfBlock(BlockId block) const {
    return static_cast<uint32_t>(block & (total_dies() - 1));
  }
  uint32_t DieOf(Ppn ppn) const { return DieOfBlock(BlockOf(ppn)); }
  // Channel a device-wide die index lives on (dies interleave across
  // channels: die d is channel d mod channels).
  uint32_t ChannelOfDie(uint32_t die) const { return die & (channels - 1); }
  uint32_t PlaneOfBlock(BlockId block) const {
    const uint32_t die_bits_mask = total_dies() - 1;
    return static_cast<uint32_t>((block >> BitWidth(die_bits_mask)) & (planes_per_die - 1));
  }

  // Full bit-sliced decomposition (diagnostics, tests, per-die reporting).
  FlashAddress DecomposePpn(Ppn ppn) const {
    const BlockId b = BlockOf(ppn);
    const uint32_t die_global = DieOfBlock(b);
    FlashAddress a;
    a.page = OffsetOf(ppn);
    a.channel = ChannelOfDie(die_global);
    a.die = die_global >> BitWidth(channels - 1);
    a.plane = PlaneOfBlock(b);
    a.block = b >> (BitWidth(total_dies() - 1) + BitWidth(planes_per_die - 1));
    return a;
  }
  Ppn ComposePpn(const FlashAddress& a) const {
    const uint32_t die_global =
        a.channel | (a.die << BitWidth(channels - 1));
    const BlockId b = die_global |
                      (static_cast<BlockId>(a.plane) << BitWidth(total_dies() - 1)) |
                      (a.block << (BitWidth(total_dies() - 1) + BitWidth(planes_per_die - 1)));
    return PpnOf(b, a.page);
  }

  Vtpn VtpnOf(Lpn lpn) const { return lpn / entries_per_translation_page(); }
  uint64_t SlotOf(Lpn lpn) const { return lpn % entries_per_translation_page(); }

 private:
  // Bits needed to hold `mask` (mask is 2^k - 1 for power-of-two counts).
  static uint32_t BitWidth(uint64_t mask) {
    uint32_t bits = 0;
    while (mask != 0) {
      ++bits;
      mask >>= 1;
    }
    return bits;
  }
};

// Builds a geometry sized for `logical_bytes` of user-visible capacity plus
// `over_provision` (fraction of logical space) spare blocks and enough extra
// blocks to persist the full mapping table. The paper sets the SSD as large
// as the trace's logical address space with 15 % over-provisioning (§5.1).
inline FlashGeometry MakeGeometry(uint64_t logical_bytes, double over_provision = 0.15) {
  FlashGeometry g;
  TPFTL_CHECK(logical_bytes % g.block_size_bytes() == 0);
  const uint64_t logical_blocks = logical_bytes / g.block_size_bytes();
  const uint64_t logical_pages = logical_bytes / g.page_size_bytes;
  // Blocks needed to store one full copy of the translation table.
  const uint64_t translation_pages =
      (logical_pages + g.entries_per_translation_page() - 1) / g.entries_per_translation_page();
  const uint64_t translation_blocks =
      (translation_pages + g.pages_per_block - 1) / g.pages_per_block;
  const auto spare_blocks =
      static_cast<uint64_t>(static_cast<double>(logical_blocks) * over_provision) + 1;
  // Translation blocks get their own matching spare factor plus slack so
  // translation GC always has somewhere to write.
  const uint64_t translation_spare = translation_blocks + 2;
  g.total_blocks = logical_blocks + spare_blocks + translation_blocks + translation_spare;
  return g;
}

// Multi-die variant: same sizing, then the parallel structure is applied and
// the block count is rounded up to a whole number of blocks per die so every
// die owns the same share of the device (uniform striping). The default
// (1 × 1 × 1) leaves the block count untouched and is bit-identical to
// MakeGeometry.
inline FlashGeometry MakeGeometryParallel(uint64_t logical_bytes, uint32_t channels,
                                          uint32_t dies_per_channel,
                                          uint32_t planes_per_die = 1,
                                          double over_provision = 0.15) {
  FlashGeometry g = MakeGeometry(logical_bytes, over_provision);
  g.channels = channels;
  g.dies_per_channel = dies_per_channel;
  g.planes_per_die = planes_per_die;
  TPFTL_CHECK_MSG(g.ParallelLayoutValid(), "channels/dies/planes must be powers of two");
  const uint64_t dies = g.total_dies();
  g.total_blocks = (g.total_blocks + dies - 1) / dies * dies;
  return g;
}

// Number of user-visible logical pages for a logical capacity in bytes.
inline uint64_t LogicalPages(const FlashGeometry& g, uint64_t logical_bytes) {
  return logical_bytes / g.page_size_bytes;
}

}  // namespace tpftl

#endif  // SRC_FLASH_GEOMETRY_H_
