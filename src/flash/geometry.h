// Physical layout and timing parameters of the simulated NAND device.
//
// Defaults reproduce Table 3 of the paper (taken from Agrawal et al., "Design
// tradeoffs for SSD performance", USENIX ATC 2008): 4 KiB pages, 256 KiB
// blocks (64 pages), 25 µs read / 200 µs write / 1.5 ms erase, and 15 %
// over-provisioning.

#ifndef SRC_FLASH_GEOMETRY_H_
#define SRC_FLASH_GEOMETRY_H_

#include <cstdint>

#include "src/flash/types.h"
#include "src/util/assert.h"

namespace tpftl {

struct FlashGeometry {
  // --- layout ---
  uint64_t page_size_bytes = 4096;
  uint64_t pages_per_block = 64;
  uint64_t total_blocks = 0;  // Physical blocks, including over-provisioned space.

  // --- timing (Table 3) ---
  MicroSec page_read_us = 25.0;
  MicroSec page_write_us = 200.0;
  MicroSec block_erase_us = 1500.0;

  // --- endurance ---
  // Erase cycles a block sustains before it must be retired as bad (§1:
  // "each block can only sustain a limited number of erasures").
  // 0 = unlimited (the paper's experiments do not wear blocks out).
  uint64_t max_erase_cycles = 0;

  // --- mapping-table packing ---
  // Each persisted mapping entry stores only the 4-byte PPN (§3.2: "only the
  // PPNs of mapping entries are stored in flash memory"), so a 4 KiB
  // translation page covers 1024 LPNs.
  uint64_t bytes_per_persisted_entry = 4;

  uint64_t total_pages() const { return total_blocks * pages_per_block; }
  uint64_t block_size_bytes() const { return page_size_bytes * pages_per_block; }
  uint64_t entries_per_translation_page() const {
    return page_size_bytes / bytes_per_persisted_entry;
  }

  BlockId BlockOf(Ppn ppn) const { return ppn / pages_per_block; }
  uint64_t OffsetOf(Ppn ppn) const { return ppn % pages_per_block; }
  Ppn PpnOf(BlockId block, uint64_t offset) const {
    TPFTL_DCHECK(offset < pages_per_block);
    return block * pages_per_block + offset;
  }

  Vtpn VtpnOf(Lpn lpn) const { return lpn / entries_per_translation_page(); }
  uint64_t SlotOf(Lpn lpn) const { return lpn % entries_per_translation_page(); }
};

// Builds a geometry sized for `logical_bytes` of user-visible capacity plus
// `over_provision` (fraction of logical space) spare blocks and enough extra
// blocks to persist the full mapping table. The paper sets the SSD as large
// as the trace's logical address space with 15 % over-provisioning (§5.1).
inline FlashGeometry MakeGeometry(uint64_t logical_bytes, double over_provision = 0.15) {
  FlashGeometry g;
  TPFTL_CHECK(logical_bytes % g.block_size_bytes() == 0);
  const uint64_t logical_blocks = logical_bytes / g.block_size_bytes();
  const uint64_t logical_pages = logical_bytes / g.page_size_bytes;
  // Blocks needed to store one full copy of the translation table.
  const uint64_t translation_pages =
      (logical_pages + g.entries_per_translation_page() - 1) / g.entries_per_translation_page();
  const uint64_t translation_blocks =
      (translation_pages + g.pages_per_block - 1) / g.pages_per_block;
  const auto spare_blocks =
      static_cast<uint64_t>(static_cast<double>(logical_blocks) * over_provision) + 1;
  // Translation blocks get their own matching spare factor plus slack so
  // translation GC always has somewhere to write.
  const uint64_t translation_spare = translation_blocks + 2;
  g.total_blocks = logical_blocks + spare_blocks + translation_blocks + translation_spare;
  return g;
}

// Number of user-visible logical pages for a logical capacity in bytes.
inline uint64_t LogicalPages(const FlashGeometry& g, uint64_t logical_bytes) {
  return logical_bytes / g.page_size_bytes;
}

}  // namespace tpftl

#endif  // SRC_FLASH_GEOMETRY_H_
