// Page-granularity NAND flash device simulator.
//
// Models what the FTL layers need from real NAND:
//   * read/program at page granularity, erase at block granularity;
//   * erase-before-write — a programmed page can never be overwritten, only
//     invalidated and reclaimed by erasing its block;
//   * sequential in-block programming order;
//   * asymmetric latencies (geometry.page_read_us / page_write_us /
//     block_erase_us) accumulated into device busy time;
//   * out-of-band (OOB) metadata per page, used by FTLs to store the owning
//     LPN (data pages) or VTPN (translation pages) so GC can find the forward
//     mapping of a migrated page, as real FTLs do.
//
// The simulator carries no page payload: experiments only need addresses and
// timing. Correctness of the mapping layers is instead validated by tests
// that mirror writes into a shadow map and compare against FTL lookups.
//
// Page states and per-block counters live in a single packed PageStateArena
// (see block.h); the per-page operations below are inline array math so the
// replay hot path has no call or pointer-chasing overhead. Interior state
// checks are TPFTL_DCHECK — compiled out of release replays, re-enabled by
// -DTPFTL_HARDENED=ON (debug and CI builds).

#ifndef SRC_FLASH_NAND_H_
#define SRC_FLASH_NAND_H_

#include <cstdint>
#include <vector>

#include "src/flash/block.h"
#include "src/flash/geometry.h"
#include "src/flash/stats.h"
#include "src/flash/types.h"
#include "src/util/assert.h"

namespace tpftl {

class NandFlash {
 public:
  explicit NandFlash(const FlashGeometry& geometry);

  NandFlash(const NandFlash&) = delete;
  NandFlash& operator=(const NandFlash&) = delete;

  // Reads one page; the page must hold data (valid or invalid — FTLs read
  // just-superseded translation pages during read-modify-write). Returns the
  // operation latency.
  MicroSec ReadPage(Ppn ppn) {
    (void)ppn;  // Only inspected by the interior checks (no page payload).
    TPFTL_DCHECK(ppn < geometry_.total_pages());
    TPFTL_DCHECK_MSG(arena_.StateAt(geometry_.BlockOf(ppn), geometry_.OffsetOf(ppn)) !=
                         PageState::kFree,
                     "read of an unprogrammed page");
    ++stats_.page_reads;
    stats_.busy_time_us += geometry_.page_read_us;
    return geometry_.page_read_us;
  }

  // Programs the next sequential page of `block`, tagging it with `oob_tag`
  // (LPN for data pages, VTPN for translation pages). Returns the programmed
  // PPN via out-param and the latency. The block must have a free page.
  MicroSec ProgramPage(BlockId block, uint64_t oob_tag, Ppn* out_ppn) {
    TPFTL_DCHECK(block < arena_.total_blocks());
    const uint64_t offset = arena_.block(block).Program();
    const Ppn ppn = geometry_.PpnOf(block, offset);
    oob_[ppn] = oob_tag;
    if (out_ppn != nullptr) {
      *out_ppn = ppn;
    }
    ++stats_.page_writes;
    stats_.busy_time_us += geometry_.page_write_us;
    return geometry_.page_write_us;
  }

  // Programs a specific free page (out-of-order; see Block::ProgramAt).
  MicroSec ProgramPageAt(Ppn ppn, uint64_t oob_tag);

  // valid → invalid; the FTL calls this when superseding a page.
  void InvalidatePage(Ppn ppn) {
    TPFTL_DCHECK(ppn < geometry_.total_pages());
    arena_.block(geometry_.BlockOf(ppn)).Invalidate(geometry_.OffsetOf(ppn));
  }

  // Erases one block; all its pages must already be invalid or free.
  // Returns the latency.
  MicroSec EraseBlock(BlockId block);

  // True once the block has consumed its erase budget (geometry
  // max_erase_cycles; never true when the budget is 0 = unlimited). Worn
  // blocks still hold data but must not be programmed again.
  bool IsWornOut(BlockId block) const;

  // OOB tag of a programmed page.
  uint64_t OobTag(Ppn ppn) const {
    TPFTL_DCHECK(ppn < oob_.size());
    return oob_[ppn];
  }

  PageState StateOf(Ppn ppn) const {
    TPFTL_DCHECK(ppn < geometry_.total_pages());
    return arena_.StateAt(geometry_.BlockOf(ppn), geometry_.OffsetOf(ppn));
  }

  // Cheap by-value view (arena pointer + id); see block.h. Mutations flow
  // through the NandFlash page operations — callers use views read-only.
  Block block(BlockId id) const {
    TPFTL_DCHECK(id < arena_.total_blocks());
    return const_cast<PageStateArena&>(arena_).block(id);
  }
  const FlashGeometry& geometry() const { return geometry_; }

  const FlashStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  // Total erases across all blocks since construction (not reset by
  // ResetStats — lifetime analysis uses both views).
  uint64_t TotalEraseCount() const;
  uint64_t MaxEraseCount() const;

 private:
  FlashGeometry geometry_;
  PageStateArena arena_;
  std::vector<uint64_t> oob_;
  FlashStats stats_;
};

}  // namespace tpftl

#endif  // SRC_FLASH_NAND_H_
